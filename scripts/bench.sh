#!/bin/sh
# Run the parallel-engine benchmark sweep and record the results as JSON.
#
# Usage: scripts/bench.sh [extra go-test args...]
#
# Writes BENCH_<yyyy-mm-dd>.json in the repo root: one object per
# benchmark with its sub-case (workers=N, cache=on/off, obs=on/off),
# ns/op, and iteration count, plus the host parameters needed to
# interpret the sweep (CPU count matters: on a single core every pool
# size degenerates to the sequential schedule).
set -eu

cd "$(dirname "$0")/.."

date="$(date +%Y-%m-%d)"
out="BENCH_${date}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkParallelRouteMapDiff|BenchmarkDiffBatch|BenchmarkFullPairDiff|BenchmarkDiffAllFleet|BenchmarkDiffObservability|BenchmarkSemanticDiffRouteMap300|BenchmarkSemanticDiffRouteMap10000|BenchmarkRouteMapOrderSearch|BenchmarkIntraPairACL10000|BenchmarkFleetAudit|BenchmarkRepairFigure1' \
    -benchmem -benchtime "${BENCHTIME:-2s}" "$@" . | tee "$raw"

awk -v date="$date" '
BEGIN { n = 0 }
/^cpu:/    { sub(/^cpu: */, ""); cpu = $0 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^Benchmark/ {
    name = $1
    iters = $2
    nsop = $3
    workers = 0
    if (match(name, /workers=[0-9]+/)) {
        workers = substr(name, RSTART + 8, RLENGTH - 8) + 0
    }
    # strip the -<GOMAXPROCS> suffix go test appends
    sub(/-[0-9]+$/, "", name)
    # the sub-benchmark case, e.g. workers=4, cache=off, obs=on
    subcase = ""
    if (match(name, /\//)) {
        subcase = substr(name, RSTART + 1)
    }
    bytes = ""; allocs = ""; idnodes = ""; bestnodes = ""
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op") bytes = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
        # ordering-comparison row: BenchmarkRouteMapOrderSearch reports
        # arena sizes under the identity order vs the search winner
        if ($(i) == "identity-nodes/op") idnodes = $(i - 1)
        if ($(i) == "best-nodes/op") bestnodes = $(i - 1)
    }
    line = sprintf("    {\"name\": \"%s\", \"case\": \"%s\", \"workers\": %d, \"iterations\": %s, \"ns_per_op\": %s", \
                   name, subcase, workers, iters, nsop)
    if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    if (idnodes != "")   line = line sprintf(", \"identity_nodes\": %s", idnodes)
    if (bestnodes != "") line = line sprintf(", \"best_nodes\": %s", bestnodes)
    line = line "}"
    results[n++] = line
}
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", results[i], (i < n - 1 ? "," : "")
    printf "  ]\n"
    printf "}\n"
}' "$raw" > "$out"

echo "wrote $out"
