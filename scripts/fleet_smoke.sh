#!/bin/sh
# CI smoke for the fleet-scale path: generate a 200-device fleet, audit
# it cold and warm through one -cache-dir, and assert the two properties
# the clustering + cache design promises — far fewer semantic classes
# than devices, and a warm rerun at least 5x faster than cold.
set -eu

cd "$(dirname "$0")/.."

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

go build -o "$work/campion" ./cmd/campion
go build -o "$work/fleetgen" ./cmd/fleetgen
# One template: the §5.1 scenario (all devices expected identical, a
# few drifted), so the audit cost is parsing + hashing + a handful of
# representative diffs rather than rendering thousands of reports.
"$work/fleetgen" -n 200 -templates 1 -mutate 0.02 -seed 1 -out "$work/fleet"

t0=$(date +%s%N)
"$work/campion" -all -cache-dir "$work/cache" -stats "$work/fleet" \
    > "$work/cold.out" 2> "$work/cold.err" || true
cold_ms=$((($(date +%s%N) - t0) / 1000000))

t0=$(date +%s%N)
"$work/campion" -all -cache-dir "$work/cache" -stats "$work/fleet" \
    > "$work/warm.out" 2> "$work/warm.err" || true
warm_ms=$((($(date +%s%N) - t0) / 1000000))

classes=$(sed -n 's/.*classes: \([0-9]*\).*/\1/p' "$work/cold.err" | head -1)
echo "fleet smoke: 200 devices, $classes classes, cold ${cold_ms}ms, warm ${warm_ms}ms"

if [ -z "$classes" ] || [ "$classes" -ge 200 ]; then
    echo "FAIL: expected semantic clustering to find fewer classes than devices" >&2
    exit 1
fi
if ! cmp -s "$work/cold.out" "$work/warm.out"; then
    echo "FAIL: warm rerun output differs from cold run" >&2
    exit 1
fi
if ! grep -q 'parses avoided: 200' "$work/warm.err"; then
    echo "FAIL: warm rerun did not skip parsing" >&2
    sed -n '/--- fleet ---/,$p' "$work/warm.err" >&2
    exit 1
fi
if [ "$((warm_ms * 5))" -gt "$cold_ms" ]; then
    echo "FAIL: warm rerun (${warm_ms}ms) not >=5x faster than cold (${cold_ms}ms)" >&2
    exit 1
fi
echo "fleet smoke: OK"
