#!/bin/sh
# CI smoke for the fleet-scale path: generate a 200-device fleet, audit
# it cold and warm through one -cache-dir, and assert the two properties
# the clustering + cache design promises — far fewer semantic classes
# than devices, and a warm rerun at least 5x faster than cold. The cold
# run records a flight-recorder journal, which `campion report` must
# replay into a deterministic summary and a valid Chrome trace.
#
# Set FLEET_SMOKE_ARTIFACTS to a directory to keep the journal, the
# report, and the trace after the run (CI uploads them).
set -eu

cd "$(dirname "$0")/.."

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

go build -o "$work/campion" ./cmd/campion
go build -o "$work/fleetgen" ./cmd/fleetgen
# One template: the §5.1 scenario (all devices expected identical, a
# few drifted), so the audit cost is parsing + hashing + a handful of
# representative diffs rather than rendering thousands of reports.
"$work/fleetgen" -n 200 -templates 1 -mutate 0.02 -seed 1 -out "$work/fleet"

t0=$(date +%s%N)
"$work/campion" -all -cache-dir "$work/cache" -stats -journal "$work/run.jsonl" "$work/fleet" \
    > "$work/cold.out" 2> "$work/cold.err" || true
cold_ms=$((($(date +%s%N) - t0) / 1000000))

t0=$(date +%s%N)
"$work/campion" -all -cache-dir "$work/cache" -stats "$work/fleet" \
    > "$work/warm.out" 2> "$work/warm.err" || true
warm_ms=$((($(date +%s%N) - t0) / 1000000))

classes=$(sed -n 's/.*classes: \([0-9]*\).*/\1/p' "$work/cold.err" | head -1)
echo "fleet smoke: 200 devices, $classes classes, cold ${cold_ms}ms, warm ${warm_ms}ms"

if [ -z "$classes" ] || [ "$classes" -ge 200 ]; then
    echo "FAIL: expected semantic clustering to find fewer classes than devices" >&2
    exit 1
fi
if ! cmp -s "$work/cold.out" "$work/warm.out"; then
    echo "FAIL: warm rerun output differs from cold run" >&2
    exit 1
fi
if ! grep -q 'parses avoided: 200' "$work/warm.err"; then
    echo "FAIL: warm rerun did not skip parsing" >&2
    sed -n '/--- fleet ---/,$p' "$work/warm.err" >&2
    exit 1
fi
if [ "$((warm_ms * 5))" -gt "$cold_ms" ]; then
    echo "FAIL: warm rerun (${warm_ms}ms) not >=5x faster than cold (${cold_ms}ms)" >&2
    exit 1
fi

# Flight-recorder replay: the journal must exist, report deterministically,
# export a valid Chrome trace, and agree with the run it recorded.
if [ ! -s "$work/run.jsonl" ]; then
    echo "FAIL: -journal wrote no flight-recorder file" >&2
    exit 1
fi
"$work/campion" report -trace "$work/trace.json" "$work/run.jsonl" > "$work/report1.txt"
"$work/campion" report "$work/run.jsonl" > "$work/report2.txt"
if ! cmp -s "$work/report1.txt" "$work/report2.txt"; then
    echo "FAIL: campion report is not deterministic over the same journal" >&2
    exit 1
fi
if ! grep -q 'status: complete' "$work/report1.txt"; then
    echo "FAIL: report does not mark the recorded run complete" >&2
    cat "$work/report1.txt" >&2
    exit 1
fi
if ! grep -q "clustering: 200 devices -> $classes classes" "$work/report1.txt"; then
    echo "FAIL: report clustering disagrees with the run (wanted 200 -> $classes)" >&2
    cat "$work/report1.txt" >&2
    exit 1
fi
if grep -q 'consistency: .*reconciled\|consistency: .*over-published' "$work/report1.txt"; then
    echo "FAIL: incremental metrics publication disagreed with final stats" >&2
    grep 'consistency:' "$work/report1.txt" >&2
    exit 1
fi
# Chrome trace_event JSON is an array; json.tool rejects torn output.
if ! python3 -m json.tool "$work/trace.json" > /dev/null 2>&1; then
    echo "FAIL: exported Chrome trace is not valid JSON" >&2
    exit 1
fi
echo "fleet smoke: journal replay OK ($(wc -l < "$work/run.jsonl") events)"

if [ -n "${FLEET_SMOKE_ARTIFACTS:-}" ]; then
    mkdir -p "$FLEET_SMOKE_ARTIFACTS"
    cp "$work/run.jsonl" "$work/report1.txt" "$work/trace.json" "$FLEET_SMOKE_ARTIFACTS/"
fi
echo "fleet smoke: OK"
