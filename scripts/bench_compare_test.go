package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCompareGatesOnRegression(t *testing.T) {
	base := map[string]float64{
		"BenchmarkA":      1000,
		"BenchmarkB/sub":  2000,
		"BenchmarkOrphan": 500, // absent from current: never gates
	}
	cur := map[string]float64{
		"BenchmarkA":     1100, // +10%: within a 15% threshold
		"BenchmarkB/sub": 2600, // +30%: regression
		"BenchmarkNew":   42,   // absent from baseline: never gates
	}
	regressed, ok := compare(base, cur, 0.15)
	if len(regressed) != 1 || regressed[0].Name != "BenchmarkB/sub" {
		t.Fatalf("regressed = %+v", regressed)
	}
	if len(ok) != 1 || ok[0].Name != "BenchmarkA" {
		t.Fatalf("ok = %+v", ok)
	}
	// A tighter threshold also catches the +10% drift; worst ratio first.
	regressed, _ = compare(base, cur, 0.05)
	if len(regressed) != 2 || regressed[0].Name != "BenchmarkB/sub" {
		t.Fatalf("tight threshold regressed = %+v", regressed)
	}
	// Improvements never gate.
	if r, _ := compare(map[string]float64{"X": 100}, map[string]float64{"X": 10}, 0.15); len(r) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", r)
	}
	// Disjoint files: nothing compared, nothing gated.
	r, o := compare(map[string]float64{"A": 1}, map[string]float64{"B": 1}, 0.15)
	if len(r)+len(o) != 0 {
		t.Fatalf("disjoint files compared something: %v %v", r, o)
	}
}

func TestLoadBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	body := `{"pr": 7, "benchmarks": [
		{"name": "BenchmarkA", "ns_per_op": 1234, "note": "x"},
		{"name": "BenchmarkA", "ns_per_op": 1500},
		{"name": "", "ns_per_op": 9},
		{"name": "BenchmarkZero", "ns_per_op": 0}
	]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := loadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	// Last duplicate wins; empty names and zero samples are dropped.
	if len(m) != 1 || m["BenchmarkA"] != 1500 {
		t.Fatalf("loadBench = %v", m)
	}
	if _, err := loadBench(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := loadBench(bad); err == nil {
		t.Fatal("malformed JSON should error")
	}
}

// TestCompareAgainstCommittedBaseline sanity-checks that the committed
// PR7 baseline parses and self-compares clean — the exact file the CI
// gate reads.
func TestCompareAgainstCommittedBaseline(t *testing.T) {
	m, err := loadBench("../BENCH_PR7.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) == 0 {
		t.Fatal("committed baseline has no benchmarks")
	}
	if r, ok := compare(m, m, 0.15); len(r) != 0 || len(ok) != len(m) {
		t.Fatalf("baseline does not self-compare clean: %d regressed, %d ok", len(r), len(ok))
	}
}
