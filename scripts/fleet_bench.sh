#!/bin/sh
# Fleet-scale wall-time curve: generate synthetic fleets at N devices
# (8 templates, 1% mutation), audit each with `campion -all` clustered
# cold, clustered warm (second run over the same -cache-dir), and — at
# the smallest N — naive (-cluster=false). Naive cost at larger N is
# projected from the measured per-pair cost, since half a million
# quadratic diffs is precisely the bill clustering exists to avoid.
#
# Usage: scripts/fleet_bench.sh [N...]   (default: 100 1000 10000)
set -eu

cd "$(dirname "$0")/.."

ns=${*:-"100 1000 10000"}
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

go build -o "$work/campion" ./cmd/campion
go build -o "$work/fleetgen" ./cmd/fleetgen

ms() { echo $((($(date +%s%N) - $1) / 1000000)); }

naive_ms=""
naive_pairs=""
for n in $ns; do
    dir="$work/fleet$n"
    cache="$work/cache$n"
    "$work/fleetgen" -n "$n" -templates 1 -mutate 0.01 -seed 1 -out "$dir" >&2

    t0=$(date +%s%N)
    "$work/campion" -all -cache-dir "$cache" -stats "$dir" >/dev/null 2>"$work/stats$n" || true
    cold=$(ms "$t0")

    t0=$(date +%s%N)
    "$work/campion" -all -cache-dir "$cache" "$dir" >/dev/null 2>&1 || true
    warm=$(ms "$t0")

    classes=$(sed -n 's/.*classes: \([0-9]*\).*/\1/p' "$work/stats$n" | head -1)
    pairs=$((n * (n - 1) / 2))

    if [ -z "$naive_ms" ]; then
        t0=$(date +%s%N)
        "$work/campion" -all -cluster=false "$dir" >/dev/null 2>&1 || true
        naive_ms=$(ms "$t0")
        naive_pairs=$pairs
        naive="$naive_ms (measured)"
    else
        naive="$((naive_ms * pairs / naive_pairs)) (projected)"
    fi

    echo "n=$n classes=$classes pairs=$pairs cold_ms=$cold warm_ms=$warm naive_ms=$naive"
done
