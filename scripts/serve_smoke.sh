#!/bin/sh
# CI smoke for the `campion serve` daemon: start it on the address the
# README's operations guide documents, run the README's own curl
# examples verbatim against it (every `^curl` line in the "Pushing
# snapshots" section executes here, so the docs stay honest), then push
# a single-device edit and assert the audit was incremental — the
# re-diff ratio scraped from /metrics must be strictly below 100%.
set -eu

cd "$(dirname "$0")/.."
repo="$(pwd)"

work="$(mktemp -d)"
trap 'rm -rf "$work"; [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null || true' EXIT

go build -o "$work/campion" ./cmd/campion

# Four distinct routers: different policies so each is its own semantic
# class, which makes the incremental-vs-full distinction visible (an
# edit to one of four classes re-diffs 3 of 6 representative pairs).
for i in 1 2 3 4; do
    cat > "$work/r$i.cfg" <<EOF
hostname r$i
ip prefix-list NETS permit 10.$i.0.0/16 le 24
route-map IMPORT permit 10
 match ip address NETS
 set local-preference 1${i}0
route-map IMPORT deny 20
router bgp 65001
 neighbor 10.0.$i.2 remote-as 6510$i
 neighbor 10.0.$i.2 route-map IMPORT in
EOF
done

"$work/campion" serve -addr 127.0.0.1:9090 > "$work/serve.log" 2>&1 &
SERVE_PID=$!
for i in $(seq 1 50); do
    curl -sf http://127.0.0.1:9090/healthz >/dev/null 2>&1 && break
    sleep 0.2
done
curl -sf http://127.0.0.1:9090/healthz >/dev/null || {
    echo "FAIL: daemon did not come up" >&2; cat "$work/serve.log" >&2; exit 1
}

# The README's own curl examples, extracted and executed verbatim from
# the work directory (they reference r1.cfg / r2.cfg relative paths).
cd "$work"
readme_curls="$work/readme_curls.sh"
grep '^curl ' "$repo/README.md" > "$readme_curls"
if [ "$(wc -l < "$readme_curls")" -lt 4 ]; then
    echo "FAIL: expected at least 4 curl examples in README.md, got:" >&2
    cat "$readme_curls" >&2
    exit 1
fi
echo "serve smoke: running $(wc -l < "$readme_curls") README curl examples"
sh -e "$readme_curls" > "$work/readme_curls.out"

# Seed the remaining devices, then the incremental edit: one appended
# static route on r1.
curl -sf --data-binary @r3.cfg http://127.0.0.1:9090/snapshot/r3 >/dev/null
curl -sf --data-binary @r4.cfg http://127.0.0.1:9090/snapshot/r4 >/dev/null
echo 'ip route 10.99.0.0 255.255.255.0 10.0.1.254' >> r1.cfg
edit_resp="$(curl -sf --data-binary @r1.cfg http://127.0.0.1:9090/snapshot/r1)"
echo "edit response: $edit_resp"
case "$edit_resp" in
    *'"op": "ingest"'*) ;;
    *) echo "FAIL: edited push was not ingested" >&2; exit 1 ;;
esac

# The daemon's core promise: the post-edit audit re-diffed strictly
# fewer representative pairs than it needed — scraped from the session
# metrics, not inferred.
ratio="$(curl -sf http://127.0.0.1:9090/metrics \
    | awk '$1 == "campion_session_rediff_ratio_percent" { print $2 }')"
echo "serve smoke: post-edit re-diff ratio ${ratio}%"
if [ -z "$ratio" ]; then
    echo "FAIL: campion_session_rediff_ratio_percent missing from /metrics" >&2
    exit 1
fi
if [ "$ratio" -ge 100 ] || [ "$ratio" -le 0 ]; then
    echo "FAIL: re-diff ratio ${ratio}% not strictly between 0 and 100 — the audit was not incremental" >&2
    curl -sf http://127.0.0.1:9090/metrics | grep campion_session >&2 || true
    exit 1
fi

# The edit is visible in the report, and the fleet reflects all four
# devices.
curl -sf http://127.0.0.1:9090/report/r1/r2 | grep -q '10.99.0.0' || {
    echo "FAIL: pushed edit not visible in /report/r1/r2" >&2; exit 1
}
curl -sf http://127.0.0.1:9090/fleet | grep -c '"name"' | grep -qx 4 || {
    echo "FAIL: /fleet does not list 4 devices" >&2; exit 1
}

kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "serve smoke: OK"
