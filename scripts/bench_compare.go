// Command bench_compare gates CI on benchmark regressions: it compares
// a fresh BENCH_<date>.json (written by scripts/bench.sh) against a
// committed per-PR baseline (BENCH_PR7.json, ...) and exits non-zero
// when any benchmark present in both slowed down by more than the
// threshold.
//
// Usage:
//
//	go run ./scripts -baseline BENCH_PR7.json [-threshold 0.15] BENCH_2026-08-08.json
//
// Matching is by full benchmark name including the sub-case
// ("BenchmarkFleetAudit/clustered"); benchmarks present in only one
// file are listed but never gate. CI machines differ from the baseline
// machine, so the threshold is a tripwire for order-of-magnitude
// mistakes (an accidental O(N^2) path, a dropped cache), not a
// microbenchmark referee — the workflow label skip-bench-gate disables
// the step for intentionally slower PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// benchFile is the subset of the BENCH_*.json schema the gate reads.
type benchFile struct {
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// loadBench reads one BENCH_*.json into name -> ns/op. Duplicate names
// (rerun sweeps) keep the last sample.
func loadBench(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		if b.Name != "" && b.NsPerOp > 0 {
			out[b.Name] = b.NsPerOp
		}
	}
	return out, nil
}

// delta is one benchmark's baseline-to-current movement.
type delta struct {
	Name      string
	Base, Cur float64
	Ratio     float64 // Cur / Base; > 1 is slower
}

// compare splits the benchmarks present in both files into regressions
// (slower than 1+threshold times the baseline) and the rest, each
// sorted worst-first by ratio.
func compare(base, cur map[string]float64, threshold float64) (regressed, ok []delta) {
	for name, b := range base {
		c, found := cur[name]
		if !found {
			continue
		}
		d := delta{Name: name, Base: b, Cur: c, Ratio: c / b}
		if d.Ratio > 1+threshold {
			regressed = append(regressed, d)
		} else {
			ok = append(ok, d)
		}
	}
	worstFirst := func(s []delta) {
		sort.Slice(s, func(i, j int) bool {
			if s[i].Ratio != s[j].Ratio {
				return s[i].Ratio > s[j].Ratio
			}
			return s[i].Name < s[j].Name
		})
	}
	worstFirst(regressed)
	worstFirst(ok)
	return regressed, ok
}

func main() {
	baseline := flag.String("baseline", "", "committed BENCH_*.json to compare against")
	threshold := flag.Float64("threshold", 0.15, "allowed slowdown fraction before failing (0.15 = 15%)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bench_compare -baseline OLD.json [-threshold 0.15] NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *baseline == "" || flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	base, err := loadBench(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench_compare: %v\n", err)
		os.Exit(2)
	}
	cur, err := loadBench(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench_compare: %v\n", err)
		os.Exit(2)
	}

	regressed, ok := compare(base, cur, *threshold)
	if len(regressed)+len(ok) == 0 {
		fmt.Fprintf(os.Stderr, "bench_compare: WARNING: no benchmark names overlap between %s and %s — nothing gated\n",
			*baseline, flag.Arg(0))
		return
	}

	row := func(tag string, d delta) {
		fmt.Printf("%-4s %-55s %14.0f -> %14.0f ns/op  (%+.1f%%)\n",
			tag, d.Name, d.Base, d.Cur, 100*(d.Ratio-1))
	}
	for _, d := range ok {
		row("ok", d)
	}
	for _, d := range regressed {
		row("FAIL", d)
	}
	fmt.Printf("bench_compare: %d compared vs %s, %d regressed beyond %.0f%%\n",
		len(regressed)+len(ok), *baseline, len(regressed), 100**threshold)
	if len(regressed) > 0 {
		os.Exit(1)
	}
}
