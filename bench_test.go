// Benchmarks regenerating the paper's evaluation artifacts: one benchmark
// per table and figure (see the per-experiment index in DESIGN.md), plus
// ablations for the design choices called out there. Run with:
//
//	go test -bench=. -benchmem .
package repro_test

import (
	"context"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/campion"
	"repro/internal/aclgen"
	"repro/internal/bdd"
	"repro/internal/cisco"
	"repro/internal/core"
	"repro/internal/ddnf"
	"repro/internal/headerloc"
	"repro/internal/ir"
	"repro/internal/juniper"
	"repro/internal/minesweeper"
	"repro/internal/netaddr"
	"repro/internal/obs"
	"repro/internal/policygen"
	"repro/internal/semdiff"
	"repro/internal/srp"
	"repro/internal/symbolic"
	"repro/internal/testnets"
)

const figure1a = `hostname cisco_router
ip prefix-list NETS permit 10.9.0.0/16 le 32
ip prefix-list NETS permit 10.100.0.0/16 le 32
ip community-list standard COMM permit 10:10
ip community-list standard COMM permit 10:11
route-map POL deny 10
 match ip address NETS
route-map POL deny 20
 match community COMM
route-map POL permit 30
 set local-preference 30
`

const figure1b = `system { host-name juniper_router; }
policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    community COMM members [ 10:10 10:11 ];
    policy-statement POL {
        term rule1 { from prefix-list NETS; then reject; }
        term rule2 { from community COMM; then reject; }
        term rule3 { then { local-preference 30; accept; } }
    }
}
`

func mustFigure1(b *testing.B) (*ir.Config, *ir.Config) {
	b.Helper()
	c, err := cisco.Parse("c.cfg", figure1a)
	if err != nil {
		b.Fatal(err)
	}
	j, err := juniper.Parse("j.cfg", figure1b)
	if err != nil {
		b.Fatal(err)
	}
	return c, j
}

// BenchmarkFigure1RouteMapDiff regenerates Table 2: the full SemanticDiff
// + HeaderLocalize pipeline on the Figure 1 route maps.
func BenchmarkFigure1RouteMapDiff(b *testing.B) {
	c, j := mustFigure1(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.Diff(c, j, core.Options{Components: []core.Component{core.ComponentRouteMaps}})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.RouteMapDiffs) != 2 {
			b.Fatalf("diffs = %d", len(rep.RouteMapDiffs))
		}
	}
}

// BenchmarkRepairFigure1 measures the full repair pipeline on the
// paper's Figure 1 translation bug: initial diff, witness collection,
// candidate generation, the two-depth search (~70 candidate re-diffs),
// and oracle verification of the winner.
func BenchmarkRepairFigure1(b *testing.B) {
	c, j := mustFigure1(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := campion.Repair(context.Background(), c, j, campion.RepairOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Repaired() {
			b.Fatal("Figure 1 pair not repaired")
		}
	}
}

// BenchmarkMinesweeperFirstCounterexample regenerates Table 3: the
// monolithic baseline's single-counterexample query.
func BenchmarkMinesweeperFirstCounterexample(b *testing.B) {
	c, j := mustFigure1(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := minesweeper.NewRouteMapChecker(c, c.RouteMaps["POL"], j, j.RouteMaps["POL"])
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := ch.NextCounterexample(); !ok {
			b.Fatal("no counterexample")
		}
	}
}

// BenchmarkStaticStructuralDiff regenerates Table 4.
func BenchmarkStaticStructuralDiff(b *testing.B) {
	c, _ := cisco.Parse("c.cfg", "ip route 10.1.1.2 255.255.255.254 10.2.2.2\n")
	j, _ := juniper.Parse("j.cfg", "routing-options { static { } }\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.Diff(c, j, core.Options{Components: []core.Component{core.ComponentStatic}})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Structural) != 1 {
			b.Fatal("want 1 diff")
		}
	}
}

// BenchmarkMinesweeperStatic regenerates Table 5.
func BenchmarkMinesweeperStatic(b *testing.B) {
	c, _ := cisco.Parse("c.cfg", "ip route 10.1.1.2 255.255.255.254 10.2.2.2\n")
	j, _ := juniper.Parse("j.cfg", "routing-options { static { } }\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := minesweeper.StaticForwardingCounterexample(c, j); !ok {
			b.Fatal("no counterexample")
		}
	}
}

// BenchmarkDatacenterScenario1 regenerates Table 6 row 1 (redundant ToR
// pairs: BGP + static differences).
func BenchmarkDatacenterScenario1(b *testing.B) {
	pairs := testnets.DatacenterToRPairs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, p := range pairs {
			rep, err := core.Diff(p.Config1, p.Config2, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			total += len(rep.RouteMapDiffs)
		}
		if total != 5 {
			b.Fatalf("bgp diffs = %d", total)
		}
	}
}

// BenchmarkDatacenterScenario2 regenerates Table 6 row 2 (replacement).
func BenchmarkDatacenterScenario2(b *testing.B) {
	p := testnets.DatacenterReplacement()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.Diff(p.Config1, p.Config2, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.RouteMapDiffs) != 4 {
			b.Fatal("want 4 diffs")
		}
	}
}

// BenchmarkDatacenterScenario3 regenerates Table 6 row 3 and Table 7
// (gateway ACLs).
func BenchmarkDatacenterScenario3(b *testing.B) {
	p := testnets.DatacenterGateway()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.Diff(p.Config1, p.Config2, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.ACLDiffs) != 3 {
			b.Fatal("want 3 diffs")
		}
	}
}

// BenchmarkUniversityCore and BenchmarkUniversityBorder regenerate
// Table 8 (and the §5.4 claim that a pair compares in seconds).
func BenchmarkUniversityCore(b *testing.B) {
	p := testnets.UniversityCore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Diff(p.Config1, p.Config2, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUniversityBorder(b *testing.B) {
	p := testnets.UniversityBorder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Diff(p.Config1, p.Config2, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2PathEnumeration regenerates Figure 2: partitioning the
// Figure 1(a) route map into equivalence classes.
func BenchmarkFigure2PathEnumeration(b *testing.B) {
	c, j := mustFigure1(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := symbolic.NewRouteEncoding(c, j)
		paths, err := enc.EnumeratePaths(c, c.RouteMaps["POL"])
		if err != nil {
			b.Fatal(err)
		}
		if len(paths) != 3 {
			b.Fatal("want 3 classes")
		}
	}
}

// BenchmarkFigure3GetMatch regenerates Figure 3: the ddNF DAG build and
// the GetMatch traversal.
func BenchmarkFigure3GetMatch(b *testing.B) {
	rB := netaddr.MustParsePrefixRange("10.0.0.0/8 : 8-32")
	rC := netaddr.MustParsePrefixRange("20.0.0.0/8 : 8-32")
	rD := netaddr.MustParsePrefixRange("10.1.0.0/16 : 16-32")
	rE := netaddr.MustParsePrefixRange("10.2.0.0/16 : 16-32")
	rF := netaddr.MustParsePrefixRange("20.1.0.0/16 : 16-32")
	rG := netaddr.MustParsePrefixRange("20.1.1.0/24 : 24-32")
	enc := symbolic.NewRouteEncoding()
	ops := ddnf.SetOps{F: enc.F, RangeBDD: enc.PrefixRangeBDD, Universe: enc.WellFormed}
	s := enc.F.OrN(
		enc.F.Diff(enc.F.And(ops.RangeBDD(rB), ops.Universe), ops.RangeBDD(rD)),
		enc.F.Diff(enc.F.And(ops.RangeBDD(rC), ops.Universe), ops.RangeBDD(rF)),
		enc.F.And(ops.RangeBDD(rG), ops.Universe),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := ddnf.Build([]netaddr.PrefixRange{rB, rC, rD, rE, rF, rG})
		terms, exact := d.GetMatch(ops, s)
		if !exact || len(ddnf.Simplify(terms)) != 3 {
			b.Fatal("unexpected GetMatch result")
		}
	}
}

// BenchmarkTheoremSRPSolve regenerates the Theorem 3.3 experiment: one
// whole-network SRP solve through the Figure 1 policy.
func BenchmarkTheoremSRPSolve(b *testing.B) {
	c, _ := mustFigure1(b)
	adverts := []*ir.Route{
		ir.NewRoute(netaddr.MustParsePrefix("10.9.1.0/24")),
		ir.NewRoute(netaddr.MustParsePrefix("192.0.2.0/24")),
	}
	for _, r := range adverts {
		r.ASPath = []int64{65002}
	}
	net := &srp.BGPNetwork{
		Nodes: 3,
		Sessions: []srp.BGPSession{
			{Edge: srp.Edge{From: 0, To: 1}, FromASN: 65002, ToASN: 65001,
				ImportConfig: c, Import: []string{"POL"}},
			{Edge: srp.Edge{From: 1, To: 2}, FromASN: 65001, ToASN: 65001},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := net.NewBGPProblem(0, adverts).Solve(); !ok {
			b.Fatal("no convergence")
		}
	}
}

// BenchmarkMinesweeperEnumeration regenerates the §2 fragility
// measurement: counterexamples until Difference 1's ranges are covered.
func BenchmarkMinesweeperEnumeration(b *testing.B) {
	c, j := mustFigure1(b)
	targets := []func(*ir.Route) bool{
		func(r *ir.Route) bool {
			return netaddr.MustParsePrefixRange("10.9.0.0/16 : 17-32").ContainsPrefix(r.Prefix)
		},
		func(r *ir.Route) bool {
			return netaddr.MustParsePrefixRange("10.100.0.0/16 : 17-32").ContainsPrefix(r.Prefix)
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := minesweeper.NewRouteMapChecker(c, c.RouteMaps["POL"], j, j.RouteMaps["POL"])
		if err != nil {
			b.Fatal(err)
		}
		if _, covered := ch.CountUntilCovered(targets, 2000); !covered {
			b.Fatal("not covered")
		}
	}
}

// benchACLDiff is the §5.4 scalability harness: generated
// nearly-equivalent ACL pairs with 10 injected differences.
func benchACLDiff(b *testing.B, rules int) {
	pair := aclgen.Generate(aclgen.Params{Seed: 1, Rules: rules, Differences: 10})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := symbolic.NewPacketEncoding()
		diffs := semdiff.DiffACLs(enc, pair.Cisco, pair.Juniper)
		if len(diffs) == 0 {
			b.Fatal("expected diffs")
		}
	}
}

func BenchmarkSemanticDiffACL100(b *testing.B)   { benchACLDiff(b, 100) }
func BenchmarkSemanticDiffACL1000(b *testing.B)  { benchACLDiff(b, 1000) }
func BenchmarkSemanticDiffACL10000(b *testing.B) { benchACLDiff(b, 10000) }

// BenchmarkACLParse measures the parsing side of §5.4 (the paper compares
// Batfish's 13 s parse at 10k rules against the 15 s diff).
func BenchmarkACLParse1000(b *testing.B) {
	pair := aclgen.Generate(aclgen.Params{Seed: 1, Rules: 1000, Differences: 10})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cisco.Parse("c.cfg", pair.CiscoText); err != nil {
			b.Fatal(err)
		}
		if _, err := juniper.Parse("j.cfg", pair.JuniperText); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullPairDiff measures the §5.4 end-to-end claim: a full router
// pair comparison (all components) in seconds.
func BenchmarkFullPairDiff(b *testing.B) {
	pairs := []testnets.Pair{
		testnets.UniversityCore(), testnets.UniversityBorder(),
		testnets.DatacenterReplacement(), testnets.DatacenterGateway(),
	}
	pairs = append(pairs, testnets.DatacenterToRPairs()...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			if _, err := core.Diff(p.Config1, p.Config2, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkSemanticDiffPruning vs BenchmarkSemanticDiffNaive: the
// difference-set pruning pass against the quadratic class product.
func BenchmarkSemanticDiffPruning(b *testing.B) {
	pair := aclgen.Generate(aclgen.Params{Seed: 2, Rules: 2000, Differences: 10})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := symbolic.NewPacketEncoding()
		semdiff.DiffACLs(enc, pair.Cisco, pair.Juniper)
	}
}

func BenchmarkSemanticDiffNaive(b *testing.B) {
	pair := aclgen.Generate(aclgen.Params{Seed: 2, Rules: 2000, Differences: 10})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := symbolic.NewPacketEncoding()
		semdiff.DiffACLsNaive(enc, pair.Cisco, pair.Juniper)
	}
}

// The pruning win is largest on equal pairs: the XOR short-circuits the
// whole product.
func BenchmarkSemanticDiffPruningEqualPair(b *testing.B) {
	pair := aclgen.Generate(aclgen.Params{Seed: 2, Rules: 2000, Differences: 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := symbolic.NewPacketEncoding()
		if len(semdiff.DiffACLs(enc, pair.Cisco, pair.Juniper)) != 0 {
			b.Fatal("equal pair")
		}
	}
}

func BenchmarkSemanticDiffNaiveEqualPair(b *testing.B) {
	pair := aclgen.Generate(aclgen.Params{Seed: 2, Rules: 2000, Differences: 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := symbolic.NewPacketEncoding()
		if len(semdiff.DiffACLsNaive(enc, pair.Cisco, pair.Juniper)) != 0 {
			b.Fatal("equal pair")
		}
	}
}

// BenchmarkHeaderLocalizeDDNF vs BenchmarkHeaderLocalizeCubes: rendering
// a difference's prefix space via the ddNF DAG against raw BDD cube
// enumeration.
func BenchmarkHeaderLocalizeDDNF(b *testing.B) {
	c, j := mustFigure1(b)
	enc := symbolic.NewRouteEncoding(c, j)
	diffs, err := semdiff.DiffRouteMaps(enc, c, c.RouteMaps["POL"], j, j.RouteMaps["POL"])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc := headerloc.NewRouteLocalizer(enc, c, j)
		for _, d := range diffs {
			if l := loc.Localize(d.Inputs); len(l.Terms) == 0 {
				b.Fatal("no terms")
			}
		}
	}
}

func BenchmarkHeaderLocalizeCubes(b *testing.B) {
	c, j := mustFigure1(b)
	enc := symbolic.NewRouteEncoding(c, j)
	diffs, err := semdiff.DiffRouteMaps(enc, c, c.RouteMaps["POL"], j, j.RouteMaps["POL"])
	if err != nil {
		b.Fatal(err)
	}
	nonPrefix := enc.NonPrefixVars()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range diffs {
			projected := enc.F.Exists(d.Inputs, nonPrefix)
			count := 0
			enc.F.WalkCubes(projected, func(bdd.Assignment) bool {
				count++
				return count < 100000
			})
			if count == 0 {
				b.Fatal("no cubes")
			}
		}
	}
}

// BenchmarkBDDOps tracks the raw engine cost of the symbolic substrate.
func BenchmarkBDDOps(b *testing.B) {
	f := bdd.NewFactory(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := bdd.True
		for v := 0; v < 64; v += 2 {
			n = f.And(n, f.Or(f.Var(v), f.NVar(v+1)))
		}
		if n == bdd.False {
			b.Fatal("unexpected")
		}
	}
}

// BenchmarkConfigParse measures the vendor parsers on the university
// configurations.
func BenchmarkConfigParse(b *testing.B) {
	p := testnets.UniversityCore()
	_ = p
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testnets.UniversityCore()
	}
}

// benchRouteMapDiff scales SemanticDiff on generated cross-vendor policy
// pairs (route maps are the paper's other semantic component; its
// scalability experiment covered ACLs only).
func benchRouteMapDiff(b *testing.B, clauses int) {
	pair := policygen.Generate(policygen.Params{Seed: 3, Clauses: clauses, Differences: 5})
	c, err := cisco.Parse("c.cfg", pair.CiscoText)
	if err != nil {
		b.Fatal(err)
	}
	j, err := juniper.Parse("j.cfg", pair.JuniperText)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := symbolic.NewRouteEncoding(c, j)
		if _, err := semdiff.DiffRouteMaps(enc, c, c.RouteMaps[pair.PolicyName], j, j.RouteMaps[pair.PolicyName]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSemanticDiffRouteMap20(b *testing.B)  { benchRouteMapDiff(b, 20) }
func BenchmarkSemanticDiffRouteMap100(b *testing.B) { benchRouteMapDiff(b, 100) }
func BenchmarkSemanticDiffRouteMap300(b *testing.B) { benchRouteMapDiff(b, 300) }

// BenchmarkSemanticDiffRouteMap10000 is the kernel-scale tier: 10k
// generated clauses through encoding + enumeration + pairwise diff
// (~1M nodes per iteration). Header localization is measured separately
// — its DDNF dag is the known wall at this clause count.
func BenchmarkSemanticDiffRouteMap10000(b *testing.B) { benchRouteMapDiff(b, 10000) }

// BenchmarkRouteMapOrderSearch measures the static variable-order search
// itself (5 candidate layouts, a 96-clause sample each) and reports the
// sample node counts of the identity layout and the winner — the
// ordering-comparison row of scripts/bench.sh.
func BenchmarkRouteMapOrderSearch(b *testing.B) {
	pair := policygen.Generate(policygen.Params{Seed: 3, Clauses: 300, Differences: 5})
	c, err := cisco.Parse("c.cfg", pair.CiscoText)
	if err != nil {
		b.Fatal(err)
	}
	j, err := juniper.Parse("j.cfg", pair.JuniperText)
	if err != nil {
		b.Fatal(err)
	}
	var idN, bestN int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, idN, bestN = symbolic.ChooseRouteOrder(c, j)
	}
	b.ReportMetric(float64(idN), "identity-nodes/op")
	b.ReportMetric(float64(bestN), "best-nodes/op")
}

// BenchmarkIntraPairACL10000 sweeps intra-pair striping over ONE
// 10k-rule ACL pair — the workload where inter-pair fan-out has nothing
// to parallelize. workers>1 engages the striped engine; the win is
// superadditive (region signatures let each stripe skip the lines that
// cannot match its region), so workers=4 beats workers=1 even on one
// CPU.
func BenchmarkIntraPairACL10000(b *testing.B) {
	pair := aclgen.Generate(aclgen.Params{Seed: 1, Rules: 10000, Differences: 10})
	mk := func(host string, acl *ir.ACL) *ir.Config {
		return &ir.Config{Hostname: host, ACLs: map[string]*ir.ACL{"BIG": acl}}
	}
	c1, c2 := mk("r1", pair.Cisco), mk("r2", pair.Juniper)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := core.Options{Components: []core.Component{core.ComponentACLs}, Workers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := core.Diff(c1, c2, opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.ACLDiffs) == 0 {
					b.Fatal("expected diffs")
				}
			}
		})
	}
}

// --- Parallel engine (worker sweep; compare workers=1 to workers=N) ---

// parallelFleetPair builds one config pair with many distinct route-map
// chains so the route-map worker pool has enough independent comparisons
// to spread across cores.
func parallelFleetPair(b *testing.B) (*ir.Config, *ir.Config) {
	b.Helper()
	build := func(side int) string {
		var s strings.Builder
		fmt.Fprintf(&s, "hostname r%d\n", side)
		for p := 0; p < 12; p++ {
			fmt.Fprintf(&s, "ip prefix-list NETS%d permit 10.%d.0.0/16 le 24\n", p, p+1)
			pref := 100 + p
			if side == 2 && p%2 == 1 {
				pref += 50
			}
			fmt.Fprintf(&s, "route-map POL%d permit 10\n match ip address NETS%d\n set local-preference %d\n", p, p, pref)
			fmt.Fprintf(&s, "route-map POL%d deny 20\n", p)
		}
		s.WriteString("router bgp 65001\n")
		for p := 0; p < 12; p++ {
			addr := fmt.Sprintf("10.%d.0.2", 200+p)
			fmt.Fprintf(&s, " neighbor %s remote-as 65002\n", addr)
			fmt.Fprintf(&s, " neighbor %s route-map POL%d in\n", addr, p)
		}
		return s.String()
	}
	c1, err := cisco.Parse("r1.cfg", build(1))
	if err != nil {
		b.Fatal(err)
	}
	c2, err := cisco.Parse("r2.cfg", build(2))
	if err != nil {
		b.Fatal(err)
	}
	return c1, c2
}

// BenchmarkParallelRouteMapDiff sweeps the route-map worker pool over one
// many-policy pair. On a single-CPU machine every size degenerates to the
// sequential schedule; on 4+ cores workers=4 should be >=2x workers=1.
func BenchmarkParallelRouteMapDiff(b *testing.B) {
	c1, c2 := parallelFleetPair(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := core.Options{
				Components: []core.Component{core.ComponentRouteMaps},
				Workers:    workers,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := core.Diff(c1, c2, opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.RouteMapDiffs) == 0 {
					b.Fatal("expected diffs")
				}
			}
		})
	}
}

// BenchmarkDiffBatch sweeps the batch-level pool over the testnets
// workload (university + datacenter pairs), each pair sequential inside.
func BenchmarkDiffBatch(b *testing.B) {
	var pairs []campion.ConfigPair
	add := func(name string, p testnets.Pair) {
		pairs = append(pairs, campion.ConfigPair{Name: name, Config1: p.Config1, Config2: p.Config2})
	}
	add("university-core", testnets.UniversityCore())
	add("university-border", testnets.UniversityBorder())
	add("datacenter-replacement", testnets.DatacenterReplacement())
	add("datacenter-gateway", testnets.DatacenterGateway())
	for i, p := range testnets.DatacenterToRPairs() {
		add(fmt.Sprintf("datacenter-tor-%d", i), p)
	}
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := campion.BatchOptions{BatchWorkers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := campion.DiffBatch(ctx, pairs, opts)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkDiffObservability measures the cost of the obs layer on one
// many-policy pair: off (nil tracer, nil registry — the default) must be
// indistinguishable from the pre-obs engine, since every instrument site
// is a nil check; on pays span records and atomic counter flushes at
// component/worker/task granularity only.
func BenchmarkDiffObservability(b *testing.B) {
	c1, c2 := parallelFleetPair(b)
	opts0 := core.Options{Components: []core.Component{core.ComponentRouteMaps}, Workers: 1}
	b.Run("obs=off", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Diff(c1, c2, opts0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("obs=on", func(b *testing.B) {
		opts := opts0
		opts.Metrics = obs.NewRegistry()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			opts.Tracer = obs.NewTracer()
			if _, err := core.Diff(c1, c2, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("journal=on", func(b *testing.B) {
		opts := opts0
		opts.Journal = obs.NewJournal(io.Discard)
		opts.JournalPair = "bench pair"
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Diff(c1, c2, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// fleetConfigs builds n near-identical router configurations (the backup
// fleet of §5.1): same policy structure and vocabulary, small per-router
// local-preference drifts, so an all-pairs audit re-resolves the same
// per-device chains on every pair.
func fleetConfigs(b *testing.B, n int) []campion.NamedConfig {
	b.Helper()
	build := func(r int) string {
		var s strings.Builder
		s.WriteString("hostname fleet\n")
		for p := 0; p < 8; p++ {
			fmt.Fprintf(&s, "ip prefix-list NETS%d permit 10.%d.0.0/16 le 24\n", p, p+1)
			pref := 100 + p
			if r%3 == 1 && p == 3 {
				pref += 40 // a drifted router
			}
			fmt.Fprintf(&s, "route-map POL%d permit 10\n match ip address NETS%d\n set local-preference %d\n", p, p, pref)
			fmt.Fprintf(&s, "route-map POL%d deny 20\n", p)
		}
		s.WriteString("router bgp 65001\n")
		for p := 0; p < 8; p++ {
			addr := fmt.Sprintf("10.%d.0.2", 200+p)
			fmt.Fprintf(&s, " neighbor %s remote-as 65002\n", addr)
			fmt.Fprintf(&s, " neighbor %s route-map POL%d in\n", addr, p)
		}
		return s.String()
	}
	cfgs := make([]campion.NamedConfig, n)
	for r := 0; r < n; r++ {
		cfg, err := cisco.Parse(fmt.Sprintf("r%d.cfg", r), build(r))
		if err != nil {
			b.Fatal(err)
		}
		cfgs[r] = campion.NamedConfig{Name: fmt.Sprintf("r%d", r), Config: cfg}
	}
	return cfgs
}

// BenchmarkDiffAllFleet measures the all-pairs fleet audit with and
// without the cross-pair compiled-policy cache: with it, each batch
// worker re-encodes every device's policies once instead of once per
// pair, so the audit's encoding cost is O(N) rather than O(N^2).
func BenchmarkDiffAllFleet(b *testing.B) {
	cfgs := fleetConfigs(b, 8)
	ctx := context.Background()
	for _, cache := range []bool{true, false} {
		name := "cache=on"
		if !cache {
			name = "cache=off"
		}
		b.Run(name, func(b *testing.B) {
			opts := campion.BatchOptions{BatchWorkers: 1, NoPolicyCache: !cache}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := campion.DiffAll(ctx, cfgs, opts)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkFleetAudit measures the fleet-scale all-pairs path: a
// synthetic 100-device fleet (8 templates, 5% mutated) audited naive
// (every pair diffed), clustered (class representatives only), and warm
// (clustered over a pre-populated persistent cache — no parsing, no
// diffing, pure expansion). The N=1000/10000 curve lives in
// scripts/fleet_bench.sh; go-bench loops at that scale take minutes per
// iteration.
func BenchmarkFleetAudit(b *testing.B) {
	members := testnets.Fleet(testnets.FleetParams{
		Devices: 100, Templates: 8, MutationRate: 0.05, Seed: 1})
	devices := make([]campion.FleetDevice, len(members))
	for i, m := range members {
		cfg, err := campion.Parse(m.Name+".cfg", m.Text)
		if err != nil {
			b.Fatal(err)
		}
		devices[i] = campion.FleetDevice{Name: m.Name, Config: cfg}
	}
	ctx := context.Background()

	run := func(b *testing.B, opts campion.FleetOptions) {
		fr, err := campion.DiffFleet(ctx, devices, opts)
		if err != nil {
			b.Fatal(err)
		}
		pairs := 0
		fr.Each(func(res campion.BatchResult) bool {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			pairs++
			return true
		})
		if pairs != len(devices)*(len(devices)-1)/2 {
			b.Fatalf("expanded %d pairs", pairs)
		}
	}

	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, campion.FleetOptions{NoCluster: true})
		}
	})
	b.Run("clustered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, campion.FleetOptions{})
		}
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		run(b, campion.FleetOptions{CacheDir: dir}) // populate
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, campion.FleetOptions{CacheDir: dir})
		}
	})
}
