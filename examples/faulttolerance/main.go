// Faulttolerance: survive the ugly parts of a real fleet audit. A batch
// over hundreds of configuration pairs always contains a few casualties —
// a file that does not parse, a pathological policy that explodes the
// symbolic representation, a run that has to stop at a deadline. The
// hardened pipeline turns each of those into a structured *PairError on
// its own pair (classified as ErrParse / ErrBudget / ErrCanceled /
// ErrInternal, with configuration file/line provenance) while every
// healthy pair still gets its report.
//
// This example assembles exactly that batch: one healthy pair with a
// planted difference, one malformed configuration, and one pair whose
// route map is expensive enough to blow a deliberately small BDD node
// budget. It then shows deadline behavior with a context that is already
// expired.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/campion"
)

// healthy builds a small well-formed configuration; the local preference
// differs between the two sides so the pair has a real difference.
func healthy(host string, pref int) string {
	return fmt.Sprintf(`hostname %s
ip prefix-list NETS permit 10.9.0.0/16 le 24
route-map POL permit 10
 match ip address NETS
 set local-preference %d
route-map POL deny 20
router bgp 65001
 neighbor 10.0.12.2 remote-as 65002
 neighbor 10.0.12.2 route-map POL in
`, host, pref)
}

// monster builds a configuration whose single import chain has hundreds
// of stanzas over distinct prefix lists — cheap to parse, expensive to
// compare symbolically. Against the example's 20k-node budget the chain
// comparison aborts; without a budget it completes fine.
func monster(host string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hostname %s\n", host)
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&b, "ip prefix-list P%d permit 10.%d.%d.0/24 le 28\n", i, i%200, (i*7)%250)
	}
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&b, "route-map HEAVY permit %d\n match ip address P%d\n set local-preference %d\n", 10+i*10, i, 100+i)
	}
	b.WriteString("router bgp 65001\n neighbor 10.0.12.2 remote-as 65002\n neighbor 10.0.12.2 route-map HEAVY in\n")
	return b.String()
}

const malformed = "### exported from the wrong tool ###\n{{{ not a router config }}}\n"

func main() {
	// Parse what parses; a malformed file yields a nil config and its
	// pair degrades to an ErrParse result instead of aborting the batch.
	parse := func(name, text string) *campion.Config {
		cfg, err := campion.Parse(name, text)
		if err != nil {
			fmt.Printf("parse %s: %v (its pair will carry ErrParse)\n", name, err)
			return nil
		}
		return cfg
	}
	pairs := []campion.ConfigPair{
		{Name: "healthy", Config1: parse("h1.cfg", healthy("h1", 100)), Config2: parse("h2.cfg", healthy("h2", 300))},
		{Name: "malformed", Config1: parse("ok.cfg", healthy("ok", 100)), Config2: parse("bad.cfg", malformed)},
		{Name: "monster", Config1: parse("m1.cfg", monster("m1")), Config2: parse("m2.cfg", monster("m2"))},
	}

	opts := campion.BatchOptions{}
	opts.MaxNodes = 20000 // per-task BDD node budget (CLI: -max-nodes)
	fmt.Println("\n-- degraded batch: every pair answers, one way or the other --")
	results, err := campion.DiffBatch(context.Background(), pairs, opts)
	if err != nil {
		log.Fatal(err) // nil unless the context ended: per-pair errors stay per-pair
	}
	for _, res := range results {
		classify(res.Name, res.Report, res.Err)
	}

	// Deadlines cut through in-flight comparisons too: the context is
	// polled from inside the BDD kernels, so even the monster pair stops
	// promptly. Here the deadline is already expired, so every pair
	// reports ErrCanceled and DiffBatch returns the context's error.
	fmt.Println("\n-- expired deadline: partial results, all classified --")
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	results, err = campion.DiffBatch(ctx, pairs, campion.BatchOptions{})
	fmt.Printf("batch error: %v\n", err)
	for _, res := range results {
		classify(res.Name, res.Report, res.Err)
	}
}

// classify shows the two classification tools: errors.Is against the
// four failure sentinels (also matching the wrapped context error), and
// campion.ErrKind for a metrics-style label. The *PairError itself
// carries file/line provenance for the offending configuration text.
func classify(name string, rep *campion.Report, err error) {
	if err == nil {
		fmt.Printf("  %-10s ok — %d difference(s)\n", name, rep.TotalDifferences())
		return
	}
	var pe *campion.PairError
	where := ""
	if errors.As(err, &pe) && pe.File != "" {
		where = fmt.Sprintf(" [%s:%d]", pe.File, pe.Line)
	}
	switch {
	case errors.Is(err, campion.ErrParse):
		fmt.Printf("  %-10s parse failure%s: %v\n", name, where, err)
	case errors.Is(err, campion.ErrBudget):
		fmt.Printf("  %-10s budget abort%s (kind=%s)\n", name, where, campion.ErrKind(err))
	case errors.Is(err, campion.ErrCanceled):
		fmt.Printf("  %-10s canceled (deadline exceeded: %v)\n", name, errors.Is(err, context.DeadlineExceeded))
	default:
		fmt.Printf("  %-10s internal: %v\n", name, err)
	}
}
