// Soundness: demonstrate the paper's Theorem 3.3 end to end. Campion
// never models BGP or OSPF, yet its verdict transfers to whole-network
// behavior: when the per-component checks find no differences, the two
// routers compute identical routing solutions in any network. This
// example builds a three-node network twice — once with a Cisco policy
// router and once with its Juniper translation — runs the Stable Routing
// Problem simulator on both, and shows that (a) a faithful translation
// yields identical solutions while (b) the buggy Figure 1 translation
// diverges on exactly the advertisements Campion localizes.
//
// Run with: go run ./examples/soundness
package main

import (
	"fmt"
	"log"

	"repro/campion"
	"repro/internal/ir"
	"repro/internal/netaddr"
	"repro/internal/srp"
)

const ciscoPolicy = `hostname policy_router
ip prefix-list NETS permit 10.9.0.0/16 le 32
ip prefix-list NETS permit 10.100.0.0/16 le 32
ip community-list standard COMM permit 10:10
ip community-list standard COMM permit 10:11
route-map POL deny 10
 match ip address NETS
route-map POL deny 20
 match community COMM
route-map POL permit 30
 set local-preference 30
`

const juniperBuggy = `system { host-name policy_router_backup; }
policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    community COMM members [ 10:10 10:11 ];
    policy-statement POL {
        term rule1 { from prefix-list NETS; then reject; }
        term rule2 { from community COMM; then reject; }
        term rule3 { then { local-preference 30; accept; } }
    }
}
`

const juniperFixed = `system { host-name policy_router_backup; }
policy-options {
    community C10 members 10:10;
    community C11 members 10:11;
    policy-statement POL {
        term rule1 {
            from {
                route-filter 10.9.0.0/16 orlonger;
                route-filter 10.100.0.0/16 orlonger;
            }
            then reject;
        }
        term rule2 { from community [ C10 C11 ]; then reject; }
        term rule3 { then { local-preference 30; accept; } }
    }
}
`

func main() {
	cisco := mustParse("cisco.cfg", ciscoPolicy)
	buggy := mustParse("buggy.cfg", juniperBuggy)
	fixed := mustParse("fixed.cfg", juniperFixed)

	// Step 1: Campion's modular verdicts.
	for _, alt := range []*campion.Config{fixed, buggy} {
		rep, err := campion.Diff(cisco, alt, campion.Options{
			Components: []campion.Component{campion.ComponentRouteMaps},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("campion: %s vs %s -> %d localized difference(s)\n",
			cisco.Hostname, alt.File, len(rep.RouteMapDiffs))
	}

	// Step 2: whole-network behavior under the SRP simulator.
	adverts := []*ir.Route{
		ir.NewRoute(netaddr.MustParsePrefix("10.9.1.0/24")),
		ir.NewRoute(netaddr.MustParsePrefix("192.0.2.0/24")),
		ir.NewRoute(netaddr.MustParsePrefix("203.0.113.0/24")),
	}
	adverts[2].Communities["10:10"] = true
	for _, r := range adverts {
		r.ASPath = []int64{65002}
	}
	solve := func(mid *ir.Config) *srp.Solution {
		net := &srp.BGPNetwork{
			Nodes: 3,
			Sessions: []srp.BGPSession{
				{Edge: srp.Edge{From: 0, To: 1}, FromASN: 65002, ToASN: 65001,
					ImportConfig: mid, Import: []string{"POL"}},
				{Edge: srp.Edge{From: 1, To: 2}, FromASN: 65001, ToASN: 65001},
			},
		}
		sol, ok := net.NewBGPProblem(0, adverts).Solve()
		if !ok {
			log.Fatal("network did not converge")
		}
		return sol
	}
	ciscoSol := solve(cisco)
	fixedSol := solve(fixed)
	buggySol := solve(buggy)

	fmt.Println()
	fmt.Printf("srp: cisco network == fixed-juniper network?  %v  (Theorem 3.3)\n", ciscoSol.Equal(fixedSol))
	fmt.Printf("srp: cisco network == buggy-juniper network?  %v\n\n", ciscoSol.Equal(buggySol))

	fmt.Println("routes learned by the observer node:")
	fmt.Printf("  %-28s %-16s %s\n", "advertisement", "cisco network", "buggy network")
	for _, r := range adverts {
		label := r.Prefix.String()
		if cs := r.CommunityStrings(); len(cs) > 0 {
			label += " +" + cs[0]
		}
		fmt.Printf("  %-28s %-16s %s\n", label, learned(ciscoSol, r), learned(buggySol, r))
	}
}

func learned(s *srp.Solution, r *ir.Route) string {
	if s.Selected[2][r.Prefix] != nil {
		return "learned"
	}
	return "dropped"
}

func mustParse(name, text string) *campion.Config {
	cfg, err := campion.Parse(name, text)
	if err != nil {
		log.Fatal(err)
	}
	return cfg
}
