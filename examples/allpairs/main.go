// Allpairs: audit every backup pair across two directories of router
// configurations — the §5.1 Scenario 1 workflow, where operators ran
// Campion over all pairs of redundant ToR routers. This example writes a
// small fleet (two pairs, with the paper's bug classes planted in the
// backups) to a temporary directory and audits it with campion.DiffDirs.
//
// Run with: go run ./examples/allpairs
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/campion"
)

var primaries = map[string]string{
	"tor1": `hostname tor1-primary
ip prefix-list CUST permit 10.10.0.0/16 le 24
route-map CUSTOMER-IN permit 10
 match ip address CUST
 set local-preference 200
route-map CUSTOMER-IN deny 20
ip route 10.70.0.0 255.255.0.0 10.128.1.254
router bgp 65010
 neighbor 10.128.1.2 remote-as 65020
 neighbor 10.128.1.2 route-map CUSTOMER-IN in
 neighbor 10.128.1.2 send-community
`,
	"tor2": `hostname tor2-primary
ip prefix-list SVC permit 10.20.0.0/16 le 24
route-map SERVICE-IN permit 10
 match ip address SVC
 set local-preference 300
route-map SERVICE-IN deny 20
router bgp 65010
 neighbor 10.129.1.2 remote-as 65040
 neighbor 10.129.1.2 route-map SERVICE-IN in
 neighbor 10.129.1.2 send-community
`,
}

var backups = map[string]string{
	// tor1's backup: wrong static next hop.
	"tor1": `system { host-name tor1-backup; }
policy-options {
    policy-statement CUSTOMER-IN {
        term customers {
            from { route-filter 10.10.0.0/16 upto /24; }
            then { local-preference 200; accept; }
        }
        term final { then reject; }
    }
}
routing-options {
    static { route 10.70.0.0/16 { next-hop 10.128.1.250; preference 1; } }
    autonomous-system 65010;
}
protocols {
    bgp {
        group customers {
            type external;
            peer-as 65020;
            neighbor 10.128.1.2 { import CUSTOMER-IN; }
        }
    }
}
`,
	// tor2's backup: wrong local preference.
	"tor2": `system { host-name tor2-backup; }
policy-options {
    policy-statement SERVICE-IN {
        term services {
            from { route-filter 10.20.0.0/16 upto /24; }
            then { local-preference 350; accept; }
        }
        term final { then reject; }
    }
}
routing-options { autonomous-system 65010; }
protocols {
    bgp {
        group services {
            type external;
            peer-as 65040;
            neighbor 10.129.1.2 { import SERVICE-IN; }
        }
    }
}
`,
}

func main() {
	base, err := os.MkdirTemp("", "campion-allpairs")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)
	dir1 := filepath.Join(base, "primary")
	dir2 := filepath.Join(base, "backup")
	for dir, set := range map[string]map[string]string{dir1: primaries, dir2: backups} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		for name, text := range set {
			if err := os.WriteFile(filepath.Join(dir, name+".cfg"), []byte(text), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}

	results, err := campion.DiffDirs(dir1, dir2, campion.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		fmt.Printf("=== pair %s ===\n", res.Pair.Name)
		switch {
		case res.Err != nil:
			fmt.Println("error:", res.Err)
		case res.Report.TotalDifferences() == 0:
			fmt.Println("equivalent")
		default:
			fmt.Printf("%d difference(s):\n", res.Report.TotalDifferences())
			campion.WriteSummary(os.Stdout, res.Report)
		}
		fmt.Println()
	}
}
