// Allpairs: audit a fleet of router configurations — the §5.1 Scenario 1
// workflow, where operators ran Campion over all pairs of redundant ToR
// routers. This example builds a small fleet (two primary/backup pairs,
// with the paper's bug classes planted in the backups) and audits it two
// ways on the parallel batch engine:
//
//  1. campion.DiffBatch over the matched primary/backup pairs — the
//     "did my backup drift?" check, with results in input order and
//     per-pair error isolation;
//  2. campion.DiffAll over every unordered pair of the whole fleet —
//     the "are any two of these routers configured differently?" audit.
//
// Run with: go run ./examples/allpairs
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/campion"
)

var primaries = map[string]string{
	"tor1": `hostname tor1-primary
ip prefix-list CUST permit 10.10.0.0/16 le 24
route-map CUSTOMER-IN permit 10
 match ip address CUST
 set local-preference 200
route-map CUSTOMER-IN deny 20
ip route 10.70.0.0 255.255.0.0 10.128.1.254
router bgp 65010
 neighbor 10.128.1.2 remote-as 65020
 neighbor 10.128.1.2 route-map CUSTOMER-IN in
 neighbor 10.128.1.2 send-community
`,
	"tor2": `hostname tor2-primary
ip prefix-list SVC permit 10.20.0.0/16 le 24
route-map SERVICE-IN permit 10
 match ip address SVC
 set local-preference 300
route-map SERVICE-IN deny 20
router bgp 65010
 neighbor 10.129.1.2 remote-as 65040
 neighbor 10.129.1.2 route-map SERVICE-IN in
 neighbor 10.129.1.2 send-community
`,
}

var backups = map[string]string{
	// tor1's backup: wrong static next hop.
	"tor1": `system { host-name tor1-backup; }
policy-options {
    policy-statement CUSTOMER-IN {
        term customers {
            from { route-filter 10.10.0.0/16 upto /24; }
            then { local-preference 200; accept; }
        }
        term final { then reject; }
    }
}
routing-options {
    static { route 10.70.0.0/16 { next-hop 10.128.1.250; preference 1; } }
    autonomous-system 65010;
}
protocols {
    bgp {
        group customers {
            type external;
            peer-as 65020;
            neighbor 10.128.1.2 { import CUSTOMER-IN; }
        }
    }
}
`,
	// tor2's backup: wrong local preference.
	"tor2": `system { host-name tor2-backup; }
policy-options {
    policy-statement SERVICE-IN {
        term services {
            from { route-filter 10.20.0.0/16 upto /24; }
            then { local-preference 350; accept; }
        }
        term final { then reject; }
    }
}
routing-options { autonomous-system 65010; }
protocols {
    bgp {
        group services {
            type external;
            peer-as 65040;
            neighbor 10.129.1.2 { import SERVICE-IN; }
        }
    }
}
`,
}

func parse(name, text string) *campion.Config {
	cfg, err := campion.Parse(name+".cfg", text)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return cfg
}

func report(name string, rep *campion.Report, err error) {
	fmt.Printf("=== %s ===\n", name)
	switch {
	case err != nil:
		fmt.Println("error:", err)
	case rep.TotalDifferences() == 0:
		fmt.Println("equivalent")
	default:
		fmt.Printf("%d difference(s):\n", rep.TotalDifferences())
		campion.WriteSummary(os.Stdout, rep)
	}
	fmt.Println()
}

func main() {
	ctx := context.Background()

	// 1. Backup audit: each primary against its own backup, as one batch.
	var pairs []campion.ConfigPair
	for _, name := range []string{"tor1", "tor2"} {
		pairs = append(pairs, campion.ConfigPair{
			Name:    name + " primary vs backup",
			Config1: parse(name+"-primary", primaries[name]),
			Config2: parse(name+"-backup", backups[name]),
		})
	}
	fmt.Println("-- backup audit (DiffBatch) --")
	results, err := campion.DiffBatch(ctx, pairs, campion.BatchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		report(res.Name, res.Report, res.Err)
	}

	// 2. Fleet audit: every unordered pair of every router.
	fleet := []campion.NamedConfig{
		{Name: "tor1-primary", Config: parse("tor1-primary", primaries["tor1"])},
		{Name: "tor1-backup", Config: parse("tor1-backup", backups["tor1"])},
		{Name: "tor2-primary", Config: parse("tor2-primary", primaries["tor2"])},
		{Name: "tor2-backup", Config: parse("tor2-backup", backups["tor2"])},
	}
	fmt.Println("-- fleet audit (DiffAll) --")
	all, err := campion.DiffAll(ctx, fleet, campion.BatchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range all {
		report(res.Name, res.Report, res.Err)
	}
}
