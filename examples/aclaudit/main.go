// ACL audit: check that two gateway routers enforce identical access
// control — the paper's §5.1 Scenario 3 (Table 7). The Cisco gateway
// blacklists 9.140.0.0/23 before its whitelist terms; the Juniper gateway
// is missing that term and additionally accepts NTP toward the DNS block.
// Campion finds all three differences, localizes the affected packets to
// the source/destination blocks from the configs, and points at the
// exact rule and term.
//
// Run with: go run ./examples/aclaudit
package main

import (
	"fmt"
	"log"
	"os"

	"repro/campion"
)

const gatewayCisco = `hostname gw-cisco
!
interface GigabitEthernet0/0
 ip address 10.150.1.1 255.255.255.0
 ip access-group VM_FILTER_1 in
!
ip access-list extended VM_FILTER_1
 2299 deny ipv4 9.140.0.0 0.0.1.255 any
 2300 permit tcp any 10.60.0.0 0.0.255.255 eq 80 443
 2301 permit udp any 10.61.0.0 0.0.255.255 eq 53
`

const gatewayJuniper = `system { host-name gw-juniper; }
interfaces {
    ge-0/0/0 {
        unit 0 {
            family inet {
                address 10.150.1.2/24;
                filter { input VM_FILTER_1; }
            }
        }
    }
}
firewall {
    family inet {
        filter VM_FILTER_1 {
            term permit_whitelist {
                from {
                    protocol tcp;
                    destination-address { 10.60.0.0/16; }
                    destination-port [ 80 443 ];
                }
                then accept;
            }
            term permit_dns {
                from {
                    protocol udp;
                    destination-address { 10.61.0.0/16; }
                    destination-port [ 53 123 ];
                }
                then accept;
            }
            term final {
                then discard;
            }
        }
    }
}
`

func main() {
	cfg1, err := campion.Parse("gw-cisco.cfg", gatewayCisco)
	if err != nil {
		log.Fatal(err)
	}
	cfg2, err := campion.Parse("gw-juniper.cfg", gatewayJuniper)
	if err != nil {
		log.Fatal(err)
	}
	report, err := campion.Diff(cfg1, cfg2, campion.Options{
		Components: []campion.Component{campion.ComponentACLs},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gateway ACL audit: %d difference(s) in VM_FILTER_1\n\n", len(report.ACLDiffs))
	if err := campion.Write(os.Stdout, report); err != nil {
		log.Fatal(err)
	}
}
