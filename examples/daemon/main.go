// Daemon: the `campion serve` loop end to end, in one process. This
// example stands up the incremental re-diff daemon on a loopback
// listener, then plays an operator session against it over real HTTP:
//
//  1. push a three-router fleet (POST /snapshot/{device}) — the cold
//     audit parses, hashes, and diffs everything;
//  2. re-push one router unchanged — a content no-op, no audit at all;
//  3. push a one-line local-preference edit to one router — the
//     incremental audit re-hashes only that device and re-diffs only
//     the representative pairs its class change touched (watch
//     rep_computed / rep_pairs in the ingest response);
//  4. read the localized difference back from GET /report/{a}/{b} and
//     the fleet state from GET /fleet.
//
// The daemon's answers are byte-identical to a from-scratch fleet audit
// over the same snapshots; the incrementality is real but purely a cost
// property. README.md's "Running campion as a daemon" section documents
// the endpoint surface this example walks.
//
// Run with: go run ./examples/daemon
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"repro/internal/obs"
	"repro/internal/session"
)

var fleet = map[string]string{
	"edge1": `hostname edge1
ip prefix-list CUST permit 10.10.0.0/16 le 24
route-map CUSTOMER-IN permit 10
 match ip address CUST
 set local-preference 200
route-map CUSTOMER-IN deny 20
router bgp 65001
 neighbor 10.0.1.2 remote-as 65100
 neighbor 10.0.1.2 route-map CUSTOMER-IN in
`,
	// edge2 is edge1's redundant twin: identical routing policy, its own
	// hostname and neighbor address (structural diffs the cold audit
	// reports once; the edit below then adds a policy difference).
	"edge2": `hostname edge2
ip prefix-list CUST permit 10.10.0.0/16 le 24
route-map CUSTOMER-IN permit 10
 match ip address CUST
 set local-preference 200
route-map CUSTOMER-IN deny 20
router bgp 65001
 neighbor 10.0.2.2 remote-as 65100
 neighbor 10.0.2.2 route-map CUSTOMER-IN in
`,
	"core1": `hostname core1
ip prefix-list INFRA permit 10.250.0.0/16 le 28
route-map INFRA-IN permit 10
 match ip address INFRA
route-map INFRA-IN deny 20
router bgp 65001
 neighbor 10.0.9.2 remote-as 65001
 neighbor 10.0.9.2 route-map INFRA-IN in
`,
}

func main() {
	// The daemon: a Session (snapshot state + incremental audits) under
	// the HTTP Server, exactly what `campion serve` constructs. The
	// in-memory fleet store keeps every hash and report warm between
	// pushes; pass campion.OpenFleetStore for cross-restart persistence.
	sess := session.New(session.Options{})
	srv := &session.Server{Session: sess, Obs: &obs.Server{Registry: obs.NewRegistry()}}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Printf("daemon listening on %s\n\n", base)

	// 1. Cold seed: push every router. The first audits do real work.
	for _, name := range []string{"edge1", "edge2", "core1"} {
		res := push(base, name, fleet[name])
		fmt.Printf("push %-6s op=%-6s audit: %d devices, %d classes, %d/%d rep pairs diffed\n",
			name, res.Op, res.Audit.Devices, res.Audit.Classes,
			res.Audit.RepComputed, res.Audit.RepPairs)
	}

	// 2. Re-push an identical snapshot: content-addressed no-op.
	res := push(base, "edge2", fleet["edge2"])
	fmt.Printf("\nidentical re-push of edge2: op=%s (no audit ran)\n", res.Op)

	// 3. The incremental path: one edited line on edge2. The ingest
	// response says what the edit touched (changed line range, dirty
	// component chain) and what the audit actually recomputed.
	edited := strings.Replace(fleet["edge2"],
		"set local-preference 200", "set local-preference 300", 1)
	res = push(base, "edge2", edited)
	fmt.Printf("\nedited edge2 (local-preference 200 -> 300):\n")
	fmt.Printf("  changed lines %s, dirty components %v\n", res.Changed, res.Dirty)
	fmt.Printf("  audit re-diffed %d of %d representative pairs (%d devices re-hashed: just edge2)\n",
		res.Audit.RepComputed, res.Audit.RepPairs, 1)

	// 4. Read the difference back.
	var pair struct {
		Name  string `json:"name"`
		Diffs int    `json:"diffs"`
	}
	get(base+"/report/edge1/edge2", &pair)
	fmt.Printf("\nGET /report/edge1/edge2: %q now shows %d localized difference(s)\n",
		pair.Name, pair.Diffs)

	var sum session.FleetSummary
	get(base+"/fleet", &sum)
	fmt.Printf("GET /fleet: %d devices in %d classes after %d snapshots\n",
		len(sum.Devices), len(sum.Classes), sum.Snapshots)
}

// push POSTs one snapshot and decodes the ingest result.
func push(base, device, config string) session.IngestResult {
	resp, err := http.Post(base+"/snapshot/"+device, "text/plain", strings.NewReader(config))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST /snapshot/%s: %d: %s", device, resp.StatusCode, body)
	}
	var res session.IngestResult
	if err := json.Unmarshal(body, &res); err != nil {
		log.Fatal(err)
	}
	return res
}

// get fetches a JSON endpoint into v.
func get(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		log.Fatal(err)
	}
}
