// Quickstart: compare the two route maps of the paper's Figure 1 — a
// Cisco policy and its intended Juniper translation — and print every
// behavioral difference with header and text localization (the paper's
// Table 2).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/campion"
)

const ciscoConfig = `hostname cisco_router
ip prefix-list NETS permit 10.9.0.0/16 le 32
ip prefix-list NETS permit 10.100.0.0/16 le 32
!
ip community-list standard COMM permit 10:10
ip community-list standard COMM permit 10:11
!
route-map POL deny 10
 match ip address NETS
route-map POL deny 20
 match community COMM
route-map POL permit 30
 set local-preference 30
`

const juniperConfig = `system { host-name juniper_router; }
policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    community COMM members [ 10:10 10:11 ];
    policy-statement POL {
        term rule1 {
            from prefix-list NETS;
            then reject;
        }
        term rule2 {
            from community COMM;
            then reject;
        }
        term rule3 {
            then {
                local-preference 30;
                accept;
            }
        }
    }
}
`

func main() {
	cfg1, err := campion.Parse("cisco.cfg", ciscoConfig)
	if err != nil {
		log.Fatal(err)
	}
	cfg2, err := campion.Parse("juniper.cfg", juniperConfig)
	if err != nil {
		log.Fatal(err)
	}

	report, err := campion.Diff(cfg1, cfg2, campion.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Comparing %s (%s) with %s (%s): %d difference(s)\n\n",
		cfg1.Hostname, cfg1.Vendor, cfg2.Hostname, cfg2.Vendor,
		report.TotalDifferences())
	if err := campion.Write(os.Stdout, report); err != nil {
		log.Fatal(err)
	}
}
