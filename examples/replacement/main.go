// Replacement: proactively validate a router replacement before the
// maintenance window — the paper's §5.1 Scenario 2. An aging Cisco
// aggregation router is being replaced by a Juniper device; the operator
// has manually rewritten the configuration and wants to know whether the
// rewrite is behaviorally identical. The rewrite below contains the four
// bugs the paper reports finding across 30 replacements: three wrong
// local preferences (one on the route-reflector policy — the would-be
// severe outage) and one wrong community number.
//
// Run with: go run ./examples/replacement [-json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/campion"
)

const oldCisco = `hostname agg-old-cisco
!
ip prefix-list TIER1 permit 10.30.0.0/16 le 24
ip prefix-list TIER2 permit 10.31.0.0/16 le 24
ip prefix-list TIER3 permit 10.32.0.0/16 le 24
ip prefix-list TAGGED permit 10.33.0.0/16 le 24
!
route-map RR-POLICY permit 10
 match ip address TIER1
 set local-preference 400
route-map RR-POLICY permit 20
 match ip address TIER2
 set local-preference 300
route-map RR-POLICY permit 30
 match ip address TIER3
 set local-preference 200
route-map RR-POLICY permit 40
 match ip address TAGGED
 set community 65010:100 additive
route-map RR-POLICY deny 50
!
router bgp 65010
 neighbor 10.140.1.2 remote-as 65010
 neighbor 10.140.1.2 route-reflector-client
 neighbor 10.140.1.2 route-map RR-POLICY out
 neighbor 10.140.1.2 send-community
`

const newJuniper = `system { host-name agg-new-juniper; }
policy-options {
    community TAG members 65010:101;
    policy-statement RR-POLICY {
        term tier1 {
            from { route-filter 10.30.0.0/16 upto /24; }
            then { local-preference 410; accept; }
        }
        term tier2 {
            from { route-filter 10.31.0.0/16 upto /24; }
            then { local-preference 310; accept; }
        }
        term tier3 {
            from { route-filter 10.32.0.0/16 upto /24; }
            then { local-preference 210; accept; }
        }
        term tagged {
            from { route-filter 10.33.0.0/16 upto /24; }
            then { community add TAG; accept; }
        }
        term final { then reject; }
    }
}
routing-options { autonomous-system 65010; }
protocols {
    bgp {
        group rr-clients {
            type internal;
            cluster 10.140.0.2;
            neighbor 10.140.1.2 {
                export RR-POLICY;
            }
        }
    }
}
`

func main() {
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	oldCfg, err := campion.Parse("agg-old.cfg", oldCisco)
	if err != nil {
		log.Fatal(err)
	}
	newCfg, err := campion.Parse("agg-new.cfg", newJuniper)
	if err != nil {
		log.Fatal(err)
	}
	report, err := campion.Diff(oldCfg, newCfg, campion.Options{})
	if err != nil {
		log.Fatal(err)
	}

	if *asJSON {
		data, err := campion.JSON(report)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(data))
		return
	}

	if report.TotalDifferences() == 0 {
		fmt.Println("replacement validated: the new configuration is behaviorally identical")
		return
	}
	fmt.Printf("DO NOT PROCEED: %d behavioral difference(s) between the old and new router\n\n",
		report.TotalDifferences())
	if err := campion.Write(os.Stdout, report); err != nil {
		log.Fatal(err)
	}
	fmt.Println("summary by component:")
	campion.WriteSummary(os.Stdout, report)
}
