// Package semdiff implements Campion's SemanticDiff algorithm (§3.1):
// each of a pair of components (route maps or ACLs) is partitioned into
// path equivalence classes, and every intersecting pair of classes with
// differing actions is reported as a behavioral difference
// (i, a₁, a₂, t₁, t₂) — the impacted input set, the two actions, and the
// two text locations.
package semdiff

import (
	"repro/internal/bdd"
	"repro/internal/ir"
	"repro/internal/symbolic"
)

// RouteMapDiff is one behavioral difference between two route maps.
type RouteMapDiff struct {
	// Inputs is the set of route advertisements treated differently
	// (λ₁ ∩ λ₂ in the paper), as a BDD over the shared route encoding.
	Inputs bdd.Node
	// Path1 and Path2 are the equivalence classes involved; their Accept,
	// Transform, and Terminal fields carry the actions and text.
	Path1, Path2 symbolic.RoutePath
}

// pathActionsDiffer reports whether two route-map classes act differently:
// one accepts and the other rejects, or both accept with different
// attribute transformations.
func pathActionsDiffer(p1, p2 *symbolic.RoutePath) bool {
	if p1.Accept != p2.Accept {
		return true
	}
	if !p1.Accept {
		return false
	}
	return !p1.Transform.Equal(p2.Transform)
}

// DiffRouteMaps reports every behavioral difference between two route
// maps under their respective configurations. The two configurations must
// share the given encoding (constructed over both).
func DiffRouteMaps(enc *symbolic.RouteEncoding, cfg1 *ir.Config, rm1 *ir.RouteMap, cfg2 *ir.Config, rm2 *ir.RouteMap) ([]RouteMapDiff, error) {
	return DiffRouteMapsLimit(enc, cfg1, rm1, cfg2, rm2, 0)
}

// DiffRouteMapsLimit is DiffRouteMaps that stops as soon as limit
// differences have been found (limit <= 0 means no bound). The repair
// search drives it with limit 1 as an emptiness probe and with the
// current best residual count as a scoring cutoff — a candidate already
// worse than the best does not need its remaining class product.
func DiffRouteMapsLimit(enc *symbolic.RouteEncoding, cfg1 *ir.Config, rm1 *ir.RouteMap, cfg2 *ir.Config, rm2 *ir.RouteMap, limit int) ([]RouteMapDiff, error) {
	paths1, err := enc.EnumeratePaths(cfg1, rm1)
	if err != nil {
		return nil, err
	}
	paths2, err := enc.EnumeratePaths(cfg2, rm2)
	if err != nil {
		return nil, err
	}
	return diffRouteMapPaths(enc, paths1, paths2, limit), nil
}

// DiffRouteMapPaths is DiffRouteMaps over already-compiled path
// equivalence classes. Both path sets must live on enc's factory; callers
// that cache compiled chains (core's cross-pair compiled-policy cache)
// enter here to skip re-enumeration.
func DiffRouteMapPaths(enc *symbolic.RouteEncoding, paths1, paths2 []symbolic.RoutePath) []RouteMapDiff {
	return diffRouteMapPaths(enc, paths1, paths2, 0)
}

func diffRouteMapPaths(enc *symbolic.RouteEncoding, paths1, paths2 []symbolic.RoutePath, limit int) []RouteMapDiff {
	var diffs []RouteMapDiff
	// Pointer iteration: RoutePath is a large struct and the product
	// visits |paths1|×|paths2| cells, so by-value ranging would copy two
	// structs per cell. The signature test runs first — two word ops that
	// prove most intersections empty before any field of the paths is
	// compared (symbolic.Sig); both filters are exact, so the output is
	// unchanged.
	for i := range paths1 {
		p1 := &paths1[i]
		for j := range paths2 {
			p2 := &paths2[j]
			if !p1.Sig.Overlap(p2.Sig) {
				continue
			}
			if !pathActionsDiffer(p1, p2) {
				continue
			}
			inter := enc.F.And(p1.Guard, p2.Guard)
			if inter == bdd.False {
				continue
			}
			diffs = append(diffs, RouteMapDiff{Inputs: inter, Path1: *p1, Path2: *p2})
			if limit > 0 && len(diffs) >= limit {
				return diffs
			}
		}
	}
	return diffs
}

// EquivalentRouteMaps reports whether the two route maps are behaviorally
// identical (no differences).
func EquivalentRouteMaps(enc *symbolic.RouteEncoding, cfg1 *ir.Config, rm1 *ir.RouteMap, cfg2 *ir.Config, rm2 *ir.RouteMap) (bool, error) {
	d, err := DiffRouteMaps(enc, cfg1, rm1, cfg2, rm2)
	return len(d) == 0, err
}

// UnionRouteMapInputs returns the union of the diffs' input sets — the
// complete set of route advertisements the two maps treat differently.
// The differential harness checks concrete disagreements against this
// set: completeness demands every concretely-differing route lie inside
// it, soundness demands every route inside it differ concretely.
func UnionRouteMapInputs(enc *symbolic.RouteEncoding, diffs []RouteMapDiff) bdd.Node {
	u := bdd.False
	for _, d := range diffs {
		u = enc.F.Or(u, d.Inputs)
	}
	return u
}

// ACLDiff is one behavioral difference between two ACLs.
type ACLDiff struct {
	Inputs       bdd.Node
	Path1, Path2 symbolic.ACLPath
}

// DiffACLs reports every behavioral difference between two ACLs. Because
// ACL actions are binary, the space of differing packets is exactly
// Accept₁ ⊕ Accept₂; the pairwise class product is pruned to the classes
// that intersect it, keeping the check near-linear for large, mostly
// equal ACLs (§5.4 scalability).
func DiffACLs(enc *symbolic.PacketEncoding, acl1, acl2 *ir.ACL) []ACLDiff {
	diffSet := enc.F.Xor(enc.AcceptSet(acl1), enc.AcceptSet(acl2))
	if diffSet == bdd.False {
		return nil
	}
	paths1 := enc.EnumerateACLPaths(acl1)
	paths2 := enc.EnumerateACLPaths(acl2)

	// Guard signatures (symbolic.Sig): a line's class guard is a subset
	// of its match set, so disjoint line signatures prove an empty
	// intersection and skip the BDD work. The filter is exact.
	sigs := symbolic.NewACLSigTable(acl1, acl2)

	// Restrict the second component's classes to the differing space once.
	var hot2 []symbolic.ACLPath
	var sig2 []symbolic.Sig
	for _, p2 := range paths2 {
		g := enc.F.And(p2.Guard, diffSet)
		if g == bdd.False {
			continue
		}
		hot2 = append(hot2, symbolic.ACLPath{Guard: g, Accept: p2.Accept, Line: p2.Line})
		sig2 = append(sig2, sigs.LineSig(p2.Line))
	}

	var diffs []ACLDiff
	for _, p1 := range paths1 {
		s1 := sigs.LineSig(p1.Line)
		d1 := enc.F.And(p1.Guard, diffSet)
		if d1 == bdd.False {
			continue
		}
		for i := range hot2 {
			p2 := hot2[i]
			if !s1.Overlap(sig2[i]) {
				continue
			}
			inter := enc.F.And(d1, p2.Guard)
			if inter == bdd.False {
				continue
			}
			// Within diffSet, intersecting classes necessarily act
			// differently; record with the original (unrestricted)
			// class actions and lines.
			diffs = append(diffs, ACLDiff{Inputs: inter, Path1: p1, Path2: p2})
			d1 = enc.F.Diff(d1, inter)
			if d1 == bdd.False {
				break
			}
		}
	}
	return diffs
}

// DiffACLsRegion is DiffACLs restricted to one region of packet space
// (the striped intra-pair engine's unit of work). sigs must cover both
// ACLs and regionSig must be a valid signature of the region. Within the
// region the reported pairs and their intersections equal
// "the unrestricted pair intersections ∧ region": class guards of one
// ACL are pairwise disjoint, so the subtract/early-break of DiffACLs
// never changes which pairs report, only how fast the scan stops — the
// striped merge can therefore Or the per-region inputs back together
// exactly.
func DiffACLsRegion(enc *symbolic.PacketEncoding, acl1, acl2 *ir.ACL, region bdd.Node, regionSig symbolic.Sig, sigs *symbolic.ACLSigTable) []ACLDiff {
	diffSet := enc.F.Xor(
		enc.AcceptSetRegion(acl1, region, regionSig, sigs),
		enc.AcceptSetRegion(acl2, region, regionSig, sigs))
	if diffSet == bdd.False {
		return nil
	}
	paths1 := enc.EnumerateACLPathsRegion(acl1, region, regionSig, sigs)
	paths2 := enc.EnumerateACLPathsRegion(acl2, region, regionSig, sigs)

	var hot2 []symbolic.ACLPath
	var sig2 []symbolic.Sig
	for _, p2 := range paths2 {
		g := enc.F.And(p2.Guard, diffSet)
		if g == bdd.False {
			continue
		}
		hot2 = append(hot2, symbolic.ACLPath{Guard: g, Accept: p2.Accept, Line: p2.Line})
		sig2 = append(sig2, sigs.LineSig(p2.Line))
	}

	var diffs []ACLDiff
	for _, p1 := range paths1 {
		s1 := sigs.LineSig(p1.Line)
		d1 := enc.F.And(p1.Guard, diffSet)
		if d1 == bdd.False {
			continue
		}
		for i := range hot2 {
			p2 := hot2[i]
			if !s1.Overlap(sig2[i]) {
				continue
			}
			inter := enc.F.And(d1, p2.Guard)
			if inter == bdd.False {
				continue
			}
			diffs = append(diffs, ACLDiff{Inputs: inter, Path1: p1, Path2: p2})
			d1 = enc.F.Diff(d1, inter)
			if d1 == bdd.False {
				break
			}
		}
	}
	return diffs
}

// DiffACLsNaive is the unpruned quadratic product, kept as the ablation
// baseline for the pruning optimization (see DESIGN.md).
func DiffACLsNaive(enc *symbolic.PacketEncoding, acl1, acl2 *ir.ACL) []ACLDiff {
	paths1 := enc.EnumerateACLPaths(acl1)
	paths2 := enc.EnumerateACLPaths(acl2)
	var diffs []ACLDiff
	for _, p1 := range paths1 {
		for _, p2 := range paths2 {
			if p1.Accept == p2.Accept {
				continue
			}
			inter := enc.F.And(p1.Guard, p2.Guard)
			if inter == bdd.False {
				continue
			}
			diffs = append(diffs, ACLDiff{Inputs: inter, Path1: p1, Path2: p2})
		}
	}
	return diffs
}

// UnionACLInputs returns the union of the diffs' input sets — the
// complete set of packets the two ACLs treat differently.
func UnionACLInputs(enc *symbolic.PacketEncoding, diffs []ACLDiff) bdd.Node {
	u := bdd.False
	for _, d := range diffs {
		u = enc.F.Or(u, d.Inputs)
	}
	return u
}

// EquivalentACLs reports whether two ACLs accept exactly the same packets.
func EquivalentACLs(enc *symbolic.PacketEncoding, acl1, acl2 *ir.ACL) bool {
	return enc.F.Xor(enc.AcceptSet(acl1), enc.AcceptSet(acl2)) == bdd.False
}
