package semdiff

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/cisco"
	"repro/internal/ir"
	"repro/internal/juniper"
	"repro/internal/netaddr"
	"repro/internal/policygen"
	"repro/internal/symbolic"
)

// sampleRoutes derives probe advertisements from the prefix constants of
// the two configurations — members just inside and outside each range —
// plus community variations.
func sampleRoutes(cfgs ...*ir.Config) []*ir.Route {
	var out []*ir.Route
	addPrefix := func(p netaddr.Prefix) {
		out = append(out, ir.NewRoute(p))
	}
	comms := map[string]bool{}
	for _, cfg := range cfgs {
		for _, pl := range cfg.PrefixLists {
			for _, e := range pl.Entries {
				r := e.Range
				addPrefix(netaddr.NewPrefix(r.Prefix.Addr, r.Lo))
				addPrefix(netaddr.NewPrefix(r.Prefix.Addr, r.Hi))
				if r.Hi < 32 {
					addPrefix(netaddr.NewPrefix(r.Prefix.Addr, r.Hi+1))
				}
				addPrefix(netaddr.NewPrefix(r.Prefix.Addr|1<<8, 32))
			}
		}
		for _, rm := range cfg.RouteMaps {
			for _, cl := range rm.Clauses {
				for _, m := range cl.Matches {
					if mr, ok := m.(ir.MatchPrefixRanges); ok {
						for _, r := range mr.Ranges {
							addPrefix(netaddr.NewPrefix(r.Prefix.Addr, r.Lo))
							addPrefix(netaddr.NewPrefix(r.Prefix.Addr, r.Hi))
						}
					}
				}
			}
		}
		for _, cl := range cfg.CommunityLists {
			for _, e := range cl.Entries {
				for _, m := range e.Conjuncts {
					if m.Literal != "" {
						comms[m.Literal] = true
					}
				}
			}
		}
	}
	// Tag a copy of each sampled route with each community literal.
	base := out
	for c := range comms {
		for _, r := range base[:minInt(len(base), 10)] {
			r2 := r.Clone()
			r2.Communities[c] = true
			out = append(out, r2)
		}
	}
	out = append(out, ir.NewRoute(netaddr.MustParsePrefix("203.0.113.0/24")))
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestSemanticDiffSoundAndCompleteOnSamples is the central correctness
// property, checked over generated cross-vendor policy pairs: for every
// probe route, the concrete evaluations differ on the two routers exactly
// when the route falls inside some reported difference's input set.
func TestSemanticDiffSoundAndCompleteOnSamples(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		pair := policygen.Generate(policygen.Params{Seed: seed, Clauses: 10, Differences: int(seed % 4)})
		c, err := cisco.Parse("c.cfg", pair.CiscoText)
		if err != nil {
			t.Fatal(err)
		}
		j, err := juniper.Parse("j.cfg", pair.JuniperText)
		if err != nil {
			t.Fatal(err)
		}
		rm1, rm2 := c.RouteMaps[pair.PolicyName], j.RouteMaps[pair.PolicyName]
		enc := symbolic.NewRouteEncoding(c, j)
		diffs, err := DiffRouteMaps(enc, c, rm1, j, rm2)
		if err != nil {
			t.Fatal(err)
		}
		union := bdd.Node(bdd.False)
		for _, d := range diffs {
			union = enc.F.Or(union, d.Inputs)
		}
		for _, r := range sampleRoutes(c, j) {
			res1 := c.EvalRouteMap(rm1, r)
			res2 := j.EvalRouteMap(rm2, r)
			concreteDiffer := res1.Action != res2.Action ||
				(res1.Action == ir.Permit && !res1.Route.Equal(res2.Route))
			inUnion := enc.F.And(union, enc.RouteCube(r)) != bdd.False
			if concreteDiffer != inUnion {
				t.Errorf("seed %d: route %v concrete-differ=%v symbolic-differ=%v (r1=%v r2=%v)",
					seed, r, concreteDiffer, inUnion, res1.Action, res2.Action)
			}
		}
	}
}

// TestDiffInputsAreWitnessed: each reported difference's input set must
// contain at least one concrete route whose evaluations actually differ —
// SemanticDiff never reports vacuous differences.
func TestDiffInputsAreWitnessed(t *testing.T) {
	for seed := uint64(20); seed < 26; seed++ {
		pair := policygen.Generate(policygen.Params{Seed: seed, Clauses: 8, Differences: 2})
		c, _ := cisco.Parse("c.cfg", pair.CiscoText)
		j, _ := juniper.Parse("j.cfg", pair.JuniperText)
		rm1, rm2 := c.RouteMaps[pair.PolicyName], j.RouteMaps[pair.PolicyName]
		enc := symbolic.NewRouteEncoding(c, j)
		diffs, err := DiffRouteMaps(enc, c, rm1, j, rm2)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range diffs {
			a := enc.F.AnySat(d.Inputs)
			if a == nil {
				t.Fatalf("seed %d diff %d: empty input set", seed, i)
			}
			r := enc.RouteFromAssignment(a)
			res1 := c.EvalRouteMap(rm1, r)
			res2 := j.EvalRouteMap(rm2, r)
			differ := res1.Action != res2.Action ||
				(res1.Action == ir.Permit && !res1.Route.Equal(res2.Route))
			if !differ {
				t.Errorf("seed %d diff %d: witness %v does not differ (%v / %v)",
					seed, i, r, res1.Action, res2.Action)
			}
		}
	}
}
