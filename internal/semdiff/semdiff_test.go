package semdiff

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/cisco"
	"repro/internal/ir"
	"repro/internal/juniper"
	"repro/internal/netaddr"
	"repro/internal/symbolic"
)

const figure1a = `ip prefix-list NETS permit 10.9.0.0/16 le 32
ip prefix-list NETS permit 10.100.0.0/16 le 32
!
ip community-list standard COMM permit 10:10
ip community-list standard COMM permit 10:11
!
route-map POL deny 10
 match ip address NETS
route-map POL deny 20
 match community COMM
route-map POL permit 30
 set local-preference 30
`

const figure1b = `policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    community COMM members [ 10:10 10:11 ];
    policy-statement POL {
        term rule1 {
            from prefix-list NETS;
            then reject;
        }
        term rule2 {
            from community COMM;
            then reject;
        }
        term rule3 {
            then {
                local-preference 30;
                accept;
            }
        }
    }
}
`

func parseFigure1(t *testing.T) (*ir.Config, *ir.Config) {
	t.Helper()
	c, err := cisco.Parse("cisco.cfg", figure1a)
	if err != nil {
		t.Fatal(err)
	}
	j, err := juniper.Parse("juniper.cfg", figure1b)
	if err != nil {
		t.Fatal(err)
	}
	return c, j
}

// TestFigure1TwoDifferences reproduces Table 2 of the paper: SemanticDiff
// finds exactly the two distinct configuration errors, localized to the
// responsible clauses.
func TestFigure1TwoDifferences(t *testing.T) {
	c, j := parseFigure1(t)
	enc := symbolic.NewRouteEncoding(c, j)
	diffs, err := DiffRouteMaps(enc, c, c.RouteMaps["POL"], j, j.RouteMaps["POL"])
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 2 {
		t.Fatalf("got %d differences, want 2 (Table 2)", len(diffs))
	}

	// Difference 1: Cisco clause 10 (deny via NETS) vs Juniper rule3
	// (accept with lp 30). The impacted space includes 10.9.1.0/24 but
	// not 10.9.0.0/16.
	d1 := diffs[0]
	if d1.Path1.Terminal == nil || d1.Path1.Terminal.Seq != 10 {
		t.Errorf("d1 cisco terminal = %+v", d1.Path1.Terminal)
	}
	if d1.Path2.Terminal == nil || d1.Path2.Terminal.Name != "rule3" {
		t.Errorf("d1 juniper terminal = %+v", d1.Path2.Terminal)
	}
	if d1.Path1.Accept || !d1.Path2.Accept {
		t.Error("d1 actions should be REJECT vs ACCEPT")
	}
	in24 := enc.F.And(d1.Inputs, enc.PrefixBDD(netaddr.MustParsePrefix("10.9.1.0/24")))
	if in24 == bdd.False {
		t.Error("d1 should impact 10.9.1.0/24")
	}
	in16 := enc.F.And(d1.Inputs, enc.PrefixBDD(netaddr.MustParsePrefix("10.9.0.0/16")))
	if in16 != bdd.False {
		t.Error("d1 should not impact the exact /16 (both reject it)")
	}

	// Difference 2: Cisco clause 20 (deny via COMM) vs Juniper rule3.
	d2 := diffs[1]
	if d2.Path1.Terminal == nil || d2.Path1.Terminal.Seq != 20 {
		t.Errorf("d2 cisco terminal = %+v", d2.Path1.Terminal)
	}
	if d2.Path2.Terminal == nil || d2.Path2.Terminal.Name != "rule3" {
		t.Errorf("d2 juniper terminal = %+v", d2.Path2.Terminal)
	}
	// A route with only community 10:10 outside NETS is impacted.
	r := ir.NewRoute(netaddr.MustParsePrefix("192.0.2.0/24"))
	r.Communities["10:10"] = true
	if enc.F.And(d2.Inputs, enc.RouteCube(r)) == bdd.False {
		t.Error("d2 should impact a route carrying only 10:10")
	}
	// A route with both communities is rejected by both routers.
	r2 := ir.NewRoute(netaddr.MustParsePrefix("192.0.2.0/24"))
	r2.Communities["10:10"] = true
	r2.Communities["10:11"] = true
	if enc.F.And(d2.Inputs, enc.RouteCube(r2)) != bdd.False {
		t.Error("d2 should not impact a route carrying both communities")
	}
	// Text localization: the quintuple carries the original text.
	if d1.Path1.Terminal.Span.Text() == "" || d1.Path2.Terminal.Span.Text() == "" {
		t.Error("difference should carry configuration text")
	}
}

func TestIdenticalRouteMapsNoDiffs(t *testing.T) {
	c1, _ := cisco.Parse("a.cfg", figure1a)
	c2, _ := cisco.Parse("b.cfg", figure1a)
	enc := symbolic.NewRouteEncoding(c1, c2)
	eq, err := EquivalentRouteMaps(enc, c1, c1.RouteMaps["POL"], c2, c2.RouteMaps["POL"])
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("identical route maps should be equivalent")
	}
}

// TestCrossVendorEquivalentRouteMaps checks that a *correctly* translated
// Juniper version of the Cisco policy yields no differences — the
// modular check does not raise spurious cross-vendor diffs.
func TestCrossVendorEquivalentRouteMaps(t *testing.T) {
	c, _ := cisco.Parse("cisco.cfg", figure1a)
	fixed := `policy-options {
    community C10 members 10:10;
    community C11 members 10:11;
    policy-statement POL {
        term rule1 {
            from {
                route-filter 10.9.0.0/16 orlonger;
                route-filter 10.100.0.0/16 orlonger;
            }
            then reject;
        }
        term rule2 {
            from community [ C10 C11 ];
            then reject;
        }
        term rule3 {
            then {
                local-preference 30;
                accept;
            }
        }
    }
}
`
	j, err := juniper.Parse("juniper.cfg", fixed)
	if err != nil {
		t.Fatal(err)
	}
	enc := symbolic.NewRouteEncoding(c, j)
	diffs, err := DiffRouteMaps(enc, c, c.RouteMaps["POL"], j, j.RouteMaps["POL"])
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diffs {
		a := enc.F.AnySat(d.Inputs)
		t.Errorf("unexpected diff: example route %v, %v vs %v",
			enc.RouteFromAssignment(a), d.Path1.Accept, d.Path2.Accept)
	}
}

func TestTransformOnlyDifference(t *testing.T) {
	// Same accept/reject structure, different local-preference: the
	// Scenario-2 bug class (incorrect local preferences, §5.1).
	mk := func(lp int64) *ir.Config {
		cfg := ir.NewConfig("r", ir.VendorCisco)
		cfg.RouteMaps["P"] = &ir.RouteMap{
			Name: "P", DefaultAction: ir.Deny,
			Clauses: []*ir.RouteMapClause{
				{Action: ir.ClausePermit, Sets: []ir.SetAction{ir.SetLocalPref{Value: lp}}},
			},
		}
		return cfg
	}
	c1, c2 := mk(200), mk(300)
	enc := symbolic.NewRouteEncoding(c1, c2)
	diffs, err := DiffRouteMaps(enc, c1, c1.RouteMaps["P"], c2, c2.RouteMaps["P"])
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 {
		t.Fatalf("got %d diffs, want 1", len(diffs))
	}
	if diffs[0].Path1.Accept != true || diffs[0].Path2.Accept != true {
		t.Error("both sides accept; difference is the transform")
	}
	if diffs[0].Path1.Transform.Equal(diffs[0].Path2.Transform) {
		t.Error("transforms should differ")
	}
}

func TestCommunityNumberDifference(t *testing.T) {
	// Scenario-2 bug class: an incorrect community number in the
	// replacement config.
	mk := func(comm string) *ir.Config {
		cfg := ir.NewConfig("r", ir.VendorCisco)
		cfg.RouteMaps["P"] = &ir.RouteMap{
			Name: "P", DefaultAction: ir.Deny,
			Clauses: []*ir.RouteMapClause{
				{Action: ir.ClausePermit, Sets: []ir.SetAction{ir.SetCommunities{Communities: []string{comm}, Additive: true}}},
			},
		}
		return cfg
	}
	c1, c2 := mk("65000:100"), mk("65000:101")
	enc := symbolic.NewRouteEncoding(c1, c2)
	diffs, _ := DiffRouteMaps(enc, c1, c1.RouteMaps["P"], c2, c2.RouteMaps["P"])
	if len(diffs) != 1 {
		t.Fatalf("got %d diffs, want 1", len(diffs))
	}
}

func TestEquivalentRegexCommunitiesNoFalsePositive(t *testing.T) {
	// Semantically equal community regexes spelled differently must not
	// be flagged.
	c1 := ir.NewConfig("r1", ir.VendorCisco)
	c1.CommunityLists["L"] = &ir.CommunityList{Name: "L", Entries: []ir.CommunityListEntry{
		{Action: ir.Permit, Conjuncts: []ir.CommunityMatcher{{Regex: "^10:(10|11)$"}}},
	}}
	c2 := ir.NewConfig("r2", ir.VendorCisco)
	c2.CommunityLists["L"] = &ir.CommunityList{Name: "L", Entries: []ir.CommunityListEntry{
		{Action: ir.Permit, Conjuncts: []ir.CommunityMatcher{{Regex: "^10:1[01]$"}}},
	}}
	for _, cfg := range []*ir.Config{c1, c2} {
		cfg.RouteMaps["P"] = &ir.RouteMap{Name: "P", DefaultAction: ir.Permit,
			Clauses: []*ir.RouteMapClause{
				{Action: ir.ClauseDeny, Matches: []ir.Match{ir.MatchCommunity{Lists: []string{"L"}}}},
			}}
	}
	enc := symbolic.NewRouteEncoding(c1, c2)
	diffs, _ := DiffRouteMaps(enc, c1, c1.RouteMaps["P"], c2, c2.RouteMaps["P"])
	if len(diffs) != 0 {
		t.Errorf("equivalent regexes flagged: %d diffs", len(diffs))
	}
}

func TestDifferentRegexCommunitiesCaught(t *testing.T) {
	// The university border-router bug class: regex differences in
	// community matching (Export 3/4, §5.2).
	c1 := ir.NewConfig("r1", ir.VendorCisco)
	c1.CommunityLists["L"] = &ir.CommunityList{Name: "L", Entries: []ir.CommunityListEntry{
		{Action: ir.Permit, Conjuncts: []ir.CommunityMatcher{{Regex: "^10:1[01]$"}}},
	}}
	c2 := ir.NewConfig("r2", ir.VendorCisco)
	c2.CommunityLists["L"] = &ir.CommunityList{Name: "L", Entries: []ir.CommunityListEntry{
		{Action: ir.Permit, Conjuncts: []ir.CommunityMatcher{{Regex: "^10:1[012]$"}}},
	}}
	for _, cfg := range []*ir.Config{c1, c2} {
		cfg.RouteMaps["P"] = &ir.RouteMap{Name: "P", DefaultAction: ir.Permit,
			Clauses: []*ir.RouteMapClause{
				{Action: ir.ClauseDeny, Matches: []ir.Match{ir.MatchCommunity{Lists: []string{"L"}}}},
			}}
	}
	enc := symbolic.NewRouteEncoding(c1, c2)
	diffs, _ := DiffRouteMaps(enc, c1, c1.RouteMaps["P"], c2, c2.RouteMaps["P"])
	if len(diffs) == 0 {
		t.Error("differing regexes should be flagged")
	}
}

func TestFallthroughDefaultDifference(t *testing.T) {
	// University finding: different fall-through behavior (accept vs
	// deny) for advertisements matching no clause.
	c := ir.NewConfig("r1", ir.VendorCisco)
	c.RouteMaps["P"] = &ir.RouteMap{Name: "P", DefaultAction: ir.Deny,
		Clauses: []*ir.RouteMapClause{
			{Action: ir.ClausePermit, Matches: []ir.Match{ir.MatchPrefixRanges{
				Ranges: []netaddr.PrefixRange{netaddr.MustParsePrefixRange("10.0.0.0/8 : 8-32")}}}},
		}}
	j := ir.NewConfig("r2", ir.VendorJuniper)
	j.RouteMaps["P"] = &ir.RouteMap{Name: "P", DefaultAction: ir.Permit,
		Clauses: []*ir.RouteMapClause{
			{Action: ir.ClausePermit, Matches: []ir.Match{ir.MatchPrefixRanges{
				Ranges: []netaddr.PrefixRange{netaddr.MustParsePrefixRange("10.0.0.0/8 : 8-32")}}}},
		}}
	enc := symbolic.NewRouteEncoding(c, j)
	diffs, _ := DiffRouteMaps(enc, c, c.RouteMaps["P"], j, j.RouteMaps["P"])
	if len(diffs) != 1 {
		t.Fatalf("got %d diffs, want 1 (default action)", len(diffs))
	}
	d := diffs[0]
	if d.Path1.Terminal != nil || d.Path2.Terminal != nil {
		t.Error("difference should be between the two default actions")
	}
	// Impacted space excludes 10/8.
	if enc.F.And(d.Inputs, enc.PrefixBDD(netaddr.MustParsePrefix("10.1.0.0/16"))) != bdd.False {
		t.Error("10.1/16 is matched by both and should not be impacted")
	}
}

func buildACL(name string, lines ...*ir.ACLLine) *ir.ACL {
	return &ir.ACL{Name: name, Lines: lines}
}

func TestDiffACLsFindsAllInjected(t *testing.T) {
	base := func() []*ir.ACLLine {
		var out []*ir.ACLLine
		for i := 0; i < 20; i++ {
			l := ir.NewACLLine(ir.Permit)
			l.Protocol = ir.ProtoNumber(ir.ProtoNumTCP)
			l.Dst = []netaddr.Wildcard{netaddr.WildcardFromPrefix(
				netaddr.NewPrefix(netaddr.Addr(uint32(10)<<24|uint32(i)<<16), 16))}
			l.DstPorts = []netaddr.PortRange{{Lo: 80, Hi: 80}}
			out = append(out, l)
		}
		return out
	}
	lines1, lines2 := base(), base()
	// Injected differences: flip an action, change a port, drop a rule.
	lines2[3] = ir.NewACLLine(ir.Deny)
	*lines2[3] = *lines1[3]
	lines2[3].Action = ir.Deny
	changed := ir.NewACLLine(ir.Permit)
	*changed = *lines1[7]
	changed.DstPorts = []netaddr.PortRange{{Lo: 443, Hi: 443}}
	lines2[7] = changed
	lines2 = append(lines2[:15], lines2[16:]...)

	enc := symbolic.NewPacketEncoding()
	acl1, acl2 := buildACL("A", lines1...), buildACL("A", lines2...)
	diffs := DiffACLs(enc, acl1, acl2)
	if len(diffs) == 0 {
		t.Fatal("expected differences")
	}
	// Verify every reported difference is real and every injected
	// difference is covered by probing concrete packets.
	probe := func(dst string, port uint16) (bool, bool) {
		pkt := ir.Packet{Src: netaddr.MustParseAddr("1.1.1.1"), Dst: netaddr.MustParseAddr(dst), Protocol: ir.ProtoNumTCP, DstPort: port}
		a1, _ := acl1.Evaluate(pkt)
		a2, _ := acl2.Evaluate(pkt)
		cube := enc.PacketCube(pkt)
		var inDiff bool
		for _, d := range diffs {
			if enc.F.And(d.Inputs, cube) != bdd.False {
				inDiff = true
			}
		}
		return a1 != a2, inDiff
	}
	cases := []struct {
		dst  string
		port uint16
	}{
		{"10.3.0.1", 80},  // flipped action
		{"10.7.0.1", 80},  // port changed: 80 now denied on r2
		{"10.7.0.1", 443}, // port changed: 443 now permitted on r2
		{"10.15.0.1", 80}, // dropped rule
		{"10.4.0.1", 80},  // unchanged: no diff
		{"10.3.0.1", 22},  // not matched by either: no diff
	}
	for _, c := range cases {
		concrete, symbolic := probe(c.dst, c.port)
		if concrete != symbolic {
			t.Errorf("probe %s:%d concrete-diff=%v symbolic-diff=%v", c.dst, c.port, concrete, symbolic)
		}
	}
	// Pruned and naive must agree on the differing space.
	naive := DiffACLsNaive(enc, acl1, acl2)
	union := func(ds []ACLDiff) bdd.Node {
		u := bdd.False
		for _, d := range ds {
			u = enc.F.Or(u, d.Inputs)
		}
		return u
	}
	if union(diffs) != union(naive) {
		t.Error("pruned and naive differ on the impacted packet space")
	}
}

func TestEquivalentACLsDifferentStructure(t *testing.T) {
	// Split rules vs one range rule: structurally different, semantically
	// equal — SemanticDiff must not flag them.
	l1 := ir.NewACLLine(ir.Permit)
	l1.Protocol = ir.ProtoNumber(ir.ProtoNumTCP)
	l1.DstPorts = []netaddr.PortRange{{Lo: 80, Hi: 81}}
	a1 := buildACL("X", l1)

	l2a := ir.NewACLLine(ir.Permit)
	l2a.Protocol = ir.ProtoNumber(ir.ProtoNumTCP)
	l2a.DstPorts = []netaddr.PortRange{{Lo: 80, Hi: 80}}
	l2b := ir.NewACLLine(ir.Permit)
	l2b.Protocol = ir.ProtoNumber(ir.ProtoNumTCP)
	l2b.DstPorts = []netaddr.PortRange{{Lo: 81, Hi: 81}}
	a2 := buildACL("X", l2a, l2b)

	enc := symbolic.NewPacketEncoding()
	if !EquivalentACLs(enc, a1, a2) {
		t.Error("structurally different but equal ACLs flagged")
	}
	if len(DiffACLs(enc, a1, a2)) != 0 {
		t.Error("DiffACLs should report nothing")
	}
}

func TestACLImplicitDenyDifference(t *testing.T) {
	// One ACL ends with explicit permit-any; the other falls to implicit
	// deny.
	permitAny := ir.NewACLLine(ir.Permit)
	a1 := buildACL("X", permitAny)
	a2 := buildACL("X")
	enc := symbolic.NewPacketEncoding()
	diffs := DiffACLs(enc, a1, a2)
	if len(diffs) != 1 {
		t.Fatalf("got %d diffs, want 1", len(diffs))
	}
	if diffs[0].Path2.Line != nil {
		t.Error("second path should be the implicit deny (nil line)")
	}
	if diffs[0].Inputs != bdd.True {
		t.Error("every packet differs")
	}
}
