// Package aclgen generates large, nearly-equivalent ACL pairs in Cisco
// and Juniper syntax — the role Capirca plays in the paper's §5.4
// scalability experiment: "randomly generate nearly equivalent ACLs for
// Cisco and Juniper configurations", with a configurable rule count and a
// configurable number of injected differences.
package aclgen

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/netaddr"
)

// Params controls generation. The same Seed always yields the same pair.
type Params struct {
	Seed        uint64
	Rules       int
	Pools       int // number of distinct address pools (Capirca "networks")
	Differences int // differences injected into the second copy
}

// ParamsFromBytes derives bounded generation parameters from raw fuzz
// input (see policygen.ParamsFromBytes); rule and pool counts stay small
// so fuzzing iterates quickly.
func ParamsFromBytes(data []byte) Params {
	at := func(i int) uint64 {
		if i < len(data) {
			return uint64(data[i])
		}
		return 0
	}
	seed := uint64(0)
	for i := 0; i < 8; i++ {
		seed = seed<<8 | at(i)
	}
	return Params{
		Seed:        seed,
		Rules:       1 + int(at(8)%20),
		Pools:       1 + int(at(9)%8),
		Differences: int(at(10) % 5),
	}
}

// Pair is a generated ACL pair plus its vendor-syntax renderings.
type Pair struct {
	Name        string
	Cisco       *ir.ACL
	Juniper     *ir.ACL
	CiscoText   string
	JuniperText string
	// Injected describes each difference planted into the Juniper copy.
	Injected []string
}

type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state >> 33
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

var servicePorts = []uint16{22, 25, 53, 80, 123, 179, 443, 514, 3306, 8080}

var protocols = []ir.ProtocolMatch{
	ir.ProtoNumber(ir.ProtoNumTCP),
	ir.ProtoNumber(ir.ProtoNumTCP),
	ir.ProtoNumber(ir.ProtoNumUDP),
	ir.ProtoNumber(ir.ProtoNumICMP),
	ir.AnyProtocol,
}

// Generate builds the pair deterministically from the parameters.
func Generate(p Params) *Pair {
	if p.Rules <= 0 {
		p.Rules = 100
	}
	if p.Pools <= 0 {
		p.Pools = 32
	}
	r := &rng{state: p.Seed ^ 0x9e3779b97f4a7c15}

	// Address pools: contiguous prefixes of varying length, so the
	// generated rules reuse a bounded vocabulary the way Capirca network
	// definitions do.
	pools := make([]netaddr.Prefix, p.Pools)
	for i := range pools {
		length := 8 + r.intn(17) // /8 .. /24
		addr := netaddr.Addr(uint32(10)<<24 | uint32(r.next())&0x00ffffff<<0 | uint32(i)<<8)
		pools[i] = netaddr.NewPrefix(addr, uint8(length))
	}

	// Each rule guards its own destination /24 (Capirca terms have
	// distinct destinations/services), so every rule is reachable and an
	// injected difference is always behavioral. Sources reuse the pools.
	makeLine := func(i int) *ir.ACLLine {
		l := ir.NewACLLine(ir.Permit)
		if r.intn(5) == 0 {
			l.Action = ir.Deny
		}
		l.Protocol = protocols[r.intn(len(protocols))]
		if r.intn(3) != 0 {
			l.Src = []netaddr.Wildcard{netaddr.WildcardFromPrefix(pools[r.intn(len(pools))])}
		}
		dst := netaddr.NewPrefix(netaddr.Addr(uint32(10)<<24|uint32(i&0xffff)<<8), 24)
		l.Dst = []netaddr.Wildcard{netaddr.WildcardFromPrefix(dst)}
		if n := l.Protocol.Number; !l.Protocol.Any && (n == ir.ProtoNumTCP || n == ir.ProtoNumUDP) {
			switch r.intn(3) {
			case 0:
				l.DstPorts = []netaddr.PortRange{netaddr.SinglePort(servicePorts[r.intn(len(servicePorts))])}
			case 1:
				lo := servicePorts[r.intn(len(servicePorts))]
				l.DstPorts = []netaddr.PortRange{{Lo: lo, Hi: lo + uint16(r.intn(100))}}
			}
		}
		return l
	}

	lines1 := make([]*ir.ACLLine, p.Rules)
	for i := range lines1 {
		lines1[i] = makeLine(i)
	}
	// Final catch-all so both ACLs share a default.
	catchAll := ir.NewACLLine(ir.Deny)
	lines1 = append(lines1, catchAll)

	// Copy, then inject differences.
	lines2 := make([]*ir.ACLLine, len(lines1))
	for i, l := range lines1 {
		cp := *l
		lines2[i] = &cp
	}
	var injected []string
	for d := 0; d < p.Differences && len(lines2) > 1; d++ {
		i := r.intn(len(lines2) - 1) // never the catch-all
		switch r.intn(3) {
		case 0: // flip action
			cp := *lines2[i]
			if cp.Action == ir.Permit {
				cp.Action = ir.Deny
			} else {
				cp.Action = ir.Permit
			}
			lines2[i] = &cp
			injected = append(injected, fmt.Sprintf("rule %d: flipped action", i))
		case 1: // change/add a destination port
			cp := *lines2[i]
			if !cp.Protocol.Any && cp.Protocol.Number == ir.ProtoNumICMP {
				cp.Protocol = ir.ProtoNumber(ir.ProtoNumTCP)
				injected = append(injected, fmt.Sprintf("rule %d: protocol icmp→tcp", i))
			} else {
				port := servicePorts[r.intn(len(servicePorts))]
				cp.DstPorts = append(append([]netaddr.PortRange{}, cp.DstPorts...), netaddr.SinglePort(port))
				injected = append(injected, fmt.Sprintf("rule %d: extra port %d", i, port))
			}
			lines2[i] = &cp
		default: // drop the rule
			lines2 = append(lines2[:i], lines2[i+1:]...)
			injected = append(injected, fmt.Sprintf("rule %d: dropped", i))
		}
	}

	name := fmt.Sprintf("GEN_%d", p.Seed)
	pair := &Pair{
		Name:     name,
		Cisco:    &ir.ACL{Name: name, Lines: lines1},
		Juniper:  &ir.ACL{Name: name, Lines: lines2},
		Injected: injected,
	}
	pair.CiscoText = RenderCisco(pair.Cisco)
	pair.JuniperText = RenderJuniper(pair.Juniper)
	return pair
}

// RenderCisco unparses an ACL into IOS "ip access-list extended" syntax.
func RenderCisco(acl *ir.ACL) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ip access-list extended %s\n", acl.Name)
	for _, l := range acl.Lines {
		b.WriteString(" ")
		b.WriteString(l.Action.String())
		b.WriteString(" ")
		b.WriteString(ciscoProto(l.Protocol))
		b.WriteString(" ")
		b.WriteString(ciscoAddr(l.Src))
		b.WriteString(ciscoPorts(l.SrcPorts))
		b.WriteString(" ")
		b.WriteString(ciscoAddr(l.Dst))
		b.WriteString(ciscoPorts(l.DstPorts))
		if l.Established {
			b.WriteString(" established")
		}
		if l.ICMPType >= 0 {
			fmt.Fprintf(&b, " %d", l.ICMPType)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func ciscoProto(p ir.ProtocolMatch) string {
	if p.Any {
		return "ip"
	}
	return p.String()
}

func ciscoAddr(ws []netaddr.Wildcard) string {
	if len(ws) == 0 {
		return "any"
	}
	w := ws[0]
	if w.Mask == 0 {
		return "host " + w.Addr.String()
	}
	return w.Addr.String() + " " + w.Mask.String()
}

func ciscoPorts(ps []netaddr.PortRange) string {
	if len(ps) == 0 {
		return ""
	}
	if len(ps) == 1 && ps[0].Lo == ps[0].Hi {
		return fmt.Sprintf(" eq %d", ps[0].Lo)
	}
	if len(ps) == 1 {
		return fmt.Sprintf(" range %d %d", ps[0].Lo, ps[0].Hi)
	}
	// Multiple singleton ports render as an eq list.
	out := " eq"
	for _, p := range ps {
		if p.Lo != p.Hi {
			return fmt.Sprintf(" range %d %d", p.Lo, p.Hi)
		}
		out += fmt.Sprintf(" %d", p.Lo)
	}
	return out
}

// RenderJuniper unparses an ACL into a JunOS firewall filter.
func RenderJuniper(acl *ir.ACL) string {
	var b strings.Builder
	b.WriteString("firewall {\n    family inet {\n")
	fmt.Fprintf(&b, "        filter %s {\n", acl.Name)
	for i, l := range acl.Lines {
		fmt.Fprintf(&b, "            term t%d {\n", i)
		var from []string
		if !l.Protocol.Any {
			from = append(from, fmt.Sprintf("protocol %s;", l.Protocol))
		}
		if len(l.Src) > 0 {
			from = append(from, "source-address { "+juniperAddrs(l.Src)+" }")
		}
		if len(l.Dst) > 0 {
			from = append(from, "destination-address { "+juniperAddrs(l.Dst)+" }")
		}
		if len(l.SrcPorts) > 0 {
			from = append(from, "source-port "+juniperPorts(l.SrcPorts)+";")
		}
		if len(l.DstPorts) > 0 {
			from = append(from, "destination-port "+juniperPorts(l.DstPorts)+";")
		}
		if l.Established {
			from = append(from, "tcp-established;")
		}
		if l.ICMPType >= 0 {
			from = append(from, fmt.Sprintf("icmp-type %d;", l.ICMPType))
		}
		if len(from) > 0 {
			b.WriteString("                from {\n")
			for _, f := range from {
				b.WriteString("                    " + f + "\n")
			}
			b.WriteString("                }\n")
		}
		if l.Action == ir.Permit {
			b.WriteString("                then accept;\n")
		} else {
			b.WriteString("                then discard;\n")
		}
		b.WriteString("            }\n")
	}
	b.WriteString("        }\n    }\n}\n")
	return b.String()
}

func juniperAddrs(ws []netaddr.Wildcard) string {
	var parts []string
	for _, w := range ws {
		if p, ok := w.AsPrefix(); ok {
			parts = append(parts, p.String()+";")
		}
	}
	return strings.Join(parts, " ")
}

func juniperPorts(ps []netaddr.PortRange) string {
	var parts []string
	for _, p := range ps {
		if p.Lo == p.Hi {
			parts = append(parts, fmt.Sprintf("%d", p.Lo))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", p.Lo, p.Hi))
		}
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "[ " + strings.Join(parts, " ") + " ]"
}
