package aclgen

import (
	"testing"

	"repro/internal/cisco"
	"repro/internal/juniper"
	"repro/internal/semdiff"
	"repro/internal/symbolic"
)

func TestDeterministic(t *testing.T) {
	p := Params{Seed: 42, Rules: 50, Differences: 3}
	a := Generate(p)
	b := Generate(p)
	if a.CiscoText != b.CiscoText || a.JuniperText != b.JuniperText {
		t.Error("same seed must generate identical pairs")
	}
	c := Generate(Params{Seed: 43, Rules: 50, Differences: 3})
	if a.CiscoText == c.CiscoText {
		t.Error("different seeds should differ")
	}
}

func TestZeroDifferencesEquivalent(t *testing.T) {
	pair := Generate(Params{Seed: 7, Rules: 200, Differences: 0})
	enc := symbolic.NewPacketEncoding()
	if !semdiff.EquivalentACLs(enc, pair.Cisco, pair.Juniper) {
		t.Error("zero-difference pair must be equivalent")
	}
}

func TestInjectedDifferencesAreFound(t *testing.T) {
	pair := Generate(Params{Seed: 11, Rules: 300, Differences: 10})
	if len(pair.Injected) != 10 {
		t.Fatalf("injected = %d", len(pair.Injected))
	}
	enc := symbolic.NewPacketEncoding()
	diffs := semdiff.DiffACLs(enc, pair.Cisco, pair.Juniper)
	if len(diffs) == 0 {
		t.Error("injected differences should surface behaviorally")
	}
	t.Logf("10 injected edits -> %d behavioral difference classes", len(diffs))
}

// TestCiscoRoundTrip verifies the unparser against the parser: rendering
// the generated ACL to IOS syntax and parsing it back preserves behavior.
func TestCiscoRoundTrip(t *testing.T) {
	pair := Generate(Params{Seed: 5, Rules: 120, Differences: 0})
	cfg, err := cisco.Parse("gen.cfg", pair.CiscoText)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range cfg.Unrecognized {
		t.Errorf("unparser emitted unrecognized line: %q", u.Text())
	}
	parsed := cfg.ACLs[pair.Name]
	if parsed == nil {
		t.Fatal("ACL missing after round trip")
	}
	enc := symbolic.NewPacketEncoding()
	if !semdiff.EquivalentACLs(enc, pair.Cisco, parsed) {
		t.Error("cisco round trip changed ACL behavior")
	}
}

// TestJuniperRoundTrip does the same for the JunOS rendering.
func TestJuniperRoundTrip(t *testing.T) {
	pair := Generate(Params{Seed: 5, Rules: 120, Differences: 0})
	cfg, err := juniper.Parse("gen.cfg", pair.JuniperText)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range cfg.Unrecognized {
		t.Errorf("unparser emitted unrecognized statement: %q", u.Text())
	}
	parsed := cfg.ACLs[pair.Name]
	if parsed == nil {
		t.Fatal("filter missing after round trip")
	}
	enc := symbolic.NewPacketEncoding()
	if !semdiff.EquivalentACLs(enc, pair.Juniper, parsed) {
		t.Error("juniper round trip changed ACL behavior")
	}
}

// TestCrossVendorTextEquivalence is the full §5.4 pipeline at small
// scale: generate, render both vendors, parse both texts, diff — with
// zero injected differences the parsed pair must be equivalent.
func TestCrossVendorTextEquivalence(t *testing.T) {
	pair := Generate(Params{Seed: 19, Rules: 100, Differences: 0})
	ccfg, err := cisco.Parse("c.cfg", pair.CiscoText)
	if err != nil {
		t.Fatal(err)
	}
	jcfg, err := juniper.Parse("j.cfg", pair.JuniperText)
	if err != nil {
		t.Fatal(err)
	}
	enc := symbolic.NewPacketEncoding()
	if !semdiff.EquivalentACLs(enc, ccfg.ACLs[pair.Name], jcfg.ACLs[pair.Name]) {
		diffs := semdiff.DiffACLs(enc, ccfg.ACLs[pair.Name], jcfg.ACLs[pair.Name])
		t.Errorf("cross-vendor renderings diverge: %d diffs", len(diffs))
	}
}

func TestDefaultParams(t *testing.T) {
	pair := Generate(Params{Seed: 1})
	if len(pair.Cisco.Lines) != 101 { // 100 rules + catch-all
		t.Errorf("default rules = %d", len(pair.Cisco.Lines))
	}
}
