// Package structdiff implements Campion's StructuralDiff (§3.3): the
// configuration components whose behavioral equivalence coincides with
// structural equality — static routes, connected routes, BGP neighbor
// properties, OSPF link properties, and administrative distances — are
// represented as atoms, tuples, and sets, and compared directly. Because
// the comparison happens on the component structure itself, localization
// is immediate: every difference carries the two source spans.
package structdiff

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/netaddr"
)

// Difference is a single structural mismatch between corresponding
// components of the two configurations. Value1/Value2 render the two
// sides; "None" marks absence (matching the paper's Table 4 output).
type Difference struct {
	// Component classifies the difference: "static-route",
	// "connected-route", "bgp-neighbor", "bgp-config", "ospf-interface",
	// "admin-distance".
	Component string
	// Key identifies the compared element (prefix, neighbor address,
	// interface name, protocol).
	Key string
	// Field is the attribute that differs; "presence" when the element
	// exists on one side only.
	Field string
	// Value1 and Value2 render the two sides' values.
	Value1, Value2 string
	// Span1 and Span2 locate the relevant configuration text (zero span
	// when the element is absent on that side).
	Span1, Span2 ir.TextSpan
}

func (d Difference) String() string {
	return fmt.Sprintf("[%s] %s %s: %s vs %s", d.Component, d.Key, d.Field, d.Value1, d.Value2)
}

const none = "None"

// DiffAll runs every structural comparison between two configurations.
func DiffAll(c1, c2 *ir.Config) []Difference {
	var out []Difference
	out = append(out, DiffStaticRoutes(c1, c2)...)
	out = append(out, DiffConnectedRoutes(c1, c2)...)
	out = append(out, DiffBGPConfig(c1, c2)...)
	out = append(out, DiffBGPNeighbors(c1, c2)...)
	out = append(out, DiffOSPF(c1, c2)...)
	out = append(out, DiffAdminDistances(c1, c2)...)
	return out
}

// staticKey renders the comparable attribute tuple of a static route.
func staticKey(r *ir.StaticRoute) string {
	nh := r.Interface
	if r.HasNextHop {
		nh = r.NextHop.String()
	}
	s := fmt.Sprintf("next-hop %s, admin-distance %d", nh, r.AdminDistance)
	if r.HasTag {
		s += fmt.Sprintf(", tag %d", r.Tag)
	}
	return s
}

// DiffStaticRoutes compares the two static route sets: routes for a
// prefix present on one side only, and same-prefix routes whose
// attribute tuples (next hop, administrative distance, tag) differ.
func DiffStaticRoutes(c1, c2 *ir.Config) []Difference {
	group := func(c *ir.Config) map[netaddr.Prefix][]*ir.StaticRoute {
		m := map[netaddr.Prefix][]*ir.StaticRoute{}
		for _, r := range c.StaticRoutes {
			m[r.Prefix] = append(m[r.Prefix], r)
		}
		return m
	}
	g1, g2 := group(c1), group(c2)
	var prefixes []netaddr.Prefix
	seen := map[netaddr.Prefix]bool{}
	for p := range g1 {
		if !seen[p] {
			seen[p] = true
			prefixes = append(prefixes, p)
		}
	}
	for p := range g2 {
		if !seen[p] {
			seen[p] = true
			prefixes = append(prefixes, p)
		}
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Compare(prefixes[j]) < 0 })

	var out []Difference
	for _, p := range prefixes {
		r1, r2 := g1[p], g2[p]
		switch {
		case len(r1) == 0:
			for _, r := range r2 {
				out = append(out, Difference{
					Component: "static-route", Key: p.String(), Field: "presence",
					Value1: none, Value2: staticKey(r), Span2: r.Span,
				})
			}
		case len(r2) == 0:
			for _, r := range r1 {
				out = append(out, Difference{
					Component: "static-route", Key: p.String(), Field: "presence",
					Value1: staticKey(r), Value2: none, Span1: r.Span,
				})
			}
		default:
			// Same prefix on both sides: set-difference of attribute
			// tuples.
			t1 := map[string]*ir.StaticRoute{}
			t2 := map[string]*ir.StaticRoute{}
			for _, r := range r1 {
				t1[staticKey(r)] = r
			}
			for _, r := range r2 {
				t2[staticKey(r)] = r
			}
			for _, k := range sortedKeys(t1) {
				if _, ok := t2[k]; !ok {
					d := Difference{
						Component: "static-route", Key: p.String(), Field: "attributes",
						Value1: k, Value2: renderTuples(t2), Span1: t1[k].Span,
					}
					for _, r := range r2 {
						d.Span2 = d.Span2.Merge(r.Span)
					}
					out = append(out, d)
				}
			}
			for _, k := range sortedKeys(t2) {
				if _, ok := t1[k]; !ok {
					d := Difference{
						Component: "static-route", Key: p.String(), Field: "attributes",
						Value1: renderTuples(t1), Value2: k, Span2: t2[k].Span,
					}
					for _, r := range r1 {
						d.Span1 = d.Span1.Merge(r.Span)
					}
					out = append(out, d)
				}
			}
		}
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func renderTuples(m map[string]*ir.StaticRoute) string {
	return strings.Join(sortedKeys(m), "; ")
}

// DiffConnectedRoutes compares the sets of subnets attached to active
// interfaces.
func DiffConnectedRoutes(c1, c2 *ir.Config) []Difference {
	collect := func(c *ir.Config) map[netaddr.Prefix]*ir.Interface {
		m := map[netaddr.Prefix]*ir.Interface{}
		for _, i := range c.Interfaces {
			if i.HasAddress && !i.Shutdown {
				m[i.Subnet] = i
			}
		}
		return m
	}
	m1, m2 := collect(c1), collect(c2)
	var out []Difference
	var prefixes []netaddr.Prefix
	for p := range m1 {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Compare(prefixes[j]) < 0 })
	for _, p := range prefixes {
		if _, ok := m2[p]; !ok {
			out = append(out, Difference{
				Component: "connected-route", Key: p.String(), Field: "presence",
				Value1: "interface " + m1[p].Name, Value2: none, Span1: m1[p].Span,
			})
		}
	}
	prefixes = prefixes[:0]
	for p := range m2 {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Compare(prefixes[j]) < 0 })
	for _, p := range prefixes {
		if _, ok := m1[p]; !ok {
			out = append(out, Difference{
				Component: "connected-route", Key: p.String(), Field: "presence",
				Value1: none, Value2: "interface " + m2[p].Name, Span2: m2[p].Span,
			})
		}
	}
	return out
}

// DiffBGPConfig compares process-level BGP attributes: presence, ASN, and
// the originated network set.
func DiffBGPConfig(c1, c2 *ir.Config) []Difference {
	b1, b2 := c1.BGP, c2.BGP
	switch {
	case b1 == nil && b2 == nil:
		return nil
	case b1 == nil:
		return []Difference{{Component: "bgp-config", Key: "process", Field: "presence",
			Value1: none, Value2: fmt.Sprintf("asn %d", b2.ASN), Span2: b2.Span}}
	case b2 == nil:
		return []Difference{{Component: "bgp-config", Key: "process", Field: "presence",
			Value1: fmt.Sprintf("asn %d", b1.ASN), Value2: none, Span1: b1.Span}}
	}
	var out []Difference
	if b1.ASN != b2.ASN {
		out = append(out, Difference{Component: "bgp-config", Key: "process", Field: "asn",
			Value1: fmt.Sprintf("%d", b1.ASN), Value2: fmt.Sprintf("%d", b2.ASN),
			Span1: b1.Span, Span2: b2.Span})
	}
	n1 := map[string]bool{}
	n2 := map[string]bool{}
	for _, p := range b1.Networks {
		n1[p.String()] = true
	}
	for _, p := range b2.Networks {
		n2[p.String()] = true
	}
	for _, p := range sortedKeys(n1) {
		if !n2[p] {
			out = append(out, Difference{Component: "bgp-config", Key: p, Field: "network",
				Value1: "advertised", Value2: none, Span1: b1.Span, Span2: b2.Span})
		}
	}
	for _, p := range sortedKeys(n2) {
		if !n1[p] {
			out = append(out, Difference{Component: "bgp-config", Key: p, Field: "network",
				Value1: none, Value2: "advertised", Span1: b1.Span, Span2: b2.Span})
		}
	}
	return out
}

// neighborProps lists the structural attributes of a BGP session compared
// per Table 1's "Other BGP Properties" (policies are handled by
// SemanticDiff).
func neighborProps(n *ir.BGPNeighbor) map[string]string {
	return map[string]string{
		"remote-as":              fmt.Sprintf("%d", n.RemoteAS),
		"route-reflector-client": fmt.Sprintf("%v", n.RouteReflectorClient),
		"send-community":         fmt.Sprintf("%v", n.SendCommunity),
		"next-hop-self":          fmt.Sprintf("%v", n.NextHopSelf),
		"ebgp-multihop":          fmt.Sprintf("%v", n.EBGPMultihop),
		"shutdown":               fmt.Sprintf("%v", n.Shutdown),
	}
}

// DiffBGPNeighbors compares the neighbor sets (matched by peer address —
// the MatchPolicies heuristic of §4) and each matched pair's structural
// session attributes.
func DiffBGPNeighbors(c1, c2 *ir.Config) []Difference {
	var out []Difference
	get := func(c *ir.Config) map[string]*ir.BGPNeighbor {
		if c.BGP == nil {
			return map[string]*ir.BGPNeighbor{}
		}
		return c.BGP.Neighbors
	}
	m1, m2 := get(c1), get(c2)
	var addrs []string
	seen := map[string]bool{}
	for a := range m1 {
		if !seen[a] {
			seen[a] = true
			addrs = append(addrs, a)
		}
	}
	for a := range m2 {
		if !seen[a] {
			seen[a] = true
			addrs = append(addrs, a)
		}
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		n1, n2 := m1[a], m2[a]
		switch {
		case n1 == nil:
			out = append(out, Difference{Component: "bgp-neighbor", Key: a, Field: "presence",
				Value1: none, Value2: "configured", Span2: n2.Span})
		case n2 == nil:
			out = append(out, Difference{Component: "bgp-neighbor", Key: a, Field: "presence",
				Value1: "configured", Value2: none, Span1: n1.Span})
		default:
			p1, p2 := neighborProps(n1), neighborProps(n2)
			for _, field := range sortedKeys(p1) {
				if p1[field] != p2[field] {
					out = append(out, Difference{Component: "bgp-neighbor", Key: a, Field: field,
						Value1: p1[field], Value2: p2[field], Span1: n1.Span, Span2: n2.Span})
				}
			}
		}
	}
	return out
}

// MatchOSPFInterfaces pairs OSPF interfaces across the two routers: by
// name when the names coincide, otherwise by attached subnet (backup
// routers usually have different addresses but advertise the same
// subnets — §4's matching heuristic).
func MatchOSPFInterfaces(o1, o2 *ir.OSPFConfig) (pairs [][2]*ir.OSPFInterface, only1, only2 []*ir.OSPFInterface) {
	used2 := map[string]bool{}
	for _, name := range o1.InterfaceNames() {
		i1 := o1.Interfaces[name]
		if i2, ok := o2.Interfaces[name]; ok {
			pairs = append(pairs, [2]*ir.OSPFInterface{i1, i2})
			used2[name] = true
			continue
		}
		var bySubnet *ir.OSPFInterface
		if i1.Subnet.Len > 0 {
			for _, n2 := range o2.InterfaceNames() {
				i2 := o2.Interfaces[n2]
				if !used2[n2] && i2.Subnet == i1.Subnet {
					bySubnet = i2
					used2[n2] = true
					break
				}
			}
		}
		if bySubnet != nil {
			pairs = append(pairs, [2]*ir.OSPFInterface{i1, bySubnet})
		} else {
			only1 = append(only1, i1)
		}
	}
	for _, n2 := range o2.InterfaceNames() {
		if !used2[n2] {
			only2 = append(only2, o2.Interfaces[n2])
		}
	}
	return pairs, only1, only2
}

func ospfProps(i *ir.OSPFInterface) map[string]string {
	m := map[string]string{
		"cost":    fmt.Sprintf("%d", i.Cost),
		"area":    fmt.Sprintf("%d", i.Area),
		"passive": fmt.Sprintf("%v", i.Passive),
	}
	if i.HelloInterval != 0 {
		m["hello-interval"] = fmt.Sprintf("%d", i.HelloInterval)
	}
	if i.DeadInterval != 0 {
		m["dead-interval"] = fmt.Sprintf("%d", i.DeadInterval)
	}
	return m
}

// DiffOSPF compares matched OSPF links' attributes and reports unmatched
// links.
func DiffOSPF(c1, c2 *ir.Config) []Difference {
	o1, o2 := c1.OSPF, c2.OSPF
	switch {
	case o1 == nil && o2 == nil:
		return nil
	case o1 == nil:
		return []Difference{{Component: "ospf-config", Key: "process", Field: "presence",
			Value1: none, Value2: "configured", Span2: o2.Span}}
	case o2 == nil:
		return []Difference{{Component: "ospf-config", Key: "process", Field: "presence",
			Value1: "configured", Value2: none, Span1: o1.Span}}
	}
	var out []Difference
	pairs, only1, only2 := MatchOSPFInterfaces(o1, o2)
	for _, pr := range pairs {
		i1, i2 := pr[0], pr[1]
		p1, p2 := ospfProps(i1), ospfProps(i2)
		fields := map[string]bool{}
		for f := range p1 {
			fields[f] = true
		}
		for f := range p2 {
			fields[f] = true
		}
		key := i1.Name
		if i2.Name != i1.Name {
			key = i1.Name + "~" + i2.Name
		}
		var names []string
		for f := range fields {
			names = append(names, f)
		}
		sort.Strings(names)
		for _, f := range names {
			v1, ok1 := p1[f]
			v2, ok2 := p2[f]
			if !ok1 {
				v1 = none
			}
			if !ok2 {
				v2 = none
			}
			if v1 != v2 {
				out = append(out, Difference{Component: "ospf-interface", Key: key, Field: f,
					Value1: v1, Value2: v2, Span1: i1.Span, Span2: i2.Span})
			}
		}
	}
	for _, i1 := range only1 {
		out = append(out, Difference{Component: "ospf-interface", Key: i1.Name, Field: "presence",
			Value1: "enabled", Value2: none, Span1: i1.Span})
	}
	for _, i2 := range only2 {
		out = append(out, Difference{Component: "ospf-interface", Key: i2.Name, Field: "presence",
			Value1: none, Value2: "enabled", Span2: i2.Span})
	}
	return out
}

// DiffAdminDistances compares per-protocol administrative distances.
// Vendor defaults differ by design (IOS static=1, JunOS static=5), so a
// protocol is only compared when at least one side configured its
// distance explicitly.
func DiffAdminDistances(c1, c2 *ir.Config) []Difference {
	var out []Difference
	protos := []ir.Protocol{ir.ProtoConnected, ir.ProtoStatic, ir.ProtoOSPF, ir.ProtoBGP, ir.ProtoIBGP}
	for _, p := range protos {
		d1, ok1 := c1.AdminDistances[p]
		d2, ok2 := c2.AdminDistances[p]
		if !ok1 || !ok2 {
			continue
		}
		if !c1.ExplicitDistances[p] && !c2.ExplicitDistances[p] {
			continue
		}
		if d1 != d2 {
			out = append(out, Difference{Component: "admin-distance", Key: p.String(), Field: "distance",
				Value1: fmt.Sprintf("%d", d1), Value2: fmt.Sprintf("%d", d2)})
		}
	}
	return out
}
