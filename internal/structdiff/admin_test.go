package structdiff

import (
	"testing"

	"repro/internal/arista"
	"repro/internal/cisco"
	"repro/internal/ir"
)

func mustParse(t *testing.T, parse func(string, string) (*ir.Config, error), name, text string) *ir.Config {
	t.Helper()
	cfg, err := parse(name, text)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return cfg
}

// TestAdminDistanceExplicitPaths covers the DiffAdminDistances decision
// table: a protocol is compared only when both sides model it and at
// least one side configured the distance explicitly.
func TestAdminDistanceExplicitPaths(t *testing.T) {
	bgpExplicit := `router bgp 65001
 distance bgp 25 210 200
`
	t.Run("explicit both sides, differing", func(t *testing.T) {
		c1 := mustParse(t, cisco.Parse, "a", bgpExplicit)
		c2 := mustParse(t, cisco.Parse, "b", "router bgp 65001\n distance bgp 30 210 200\n")
		diffs := DiffAdminDistances(c1, c2)
		if len(diffs) != 1 {
			t.Fatalf("diffs = %+v, want 1", diffs)
		}
		d := diffs[0]
		if d.Key != "bgp" || d.Value1 != "25" || d.Value2 != "30" {
			t.Errorf("d = %+v", d)
		}
	})
	t.Run("explicit both sides, equal", func(t *testing.T) {
		c1 := mustParse(t, cisco.Parse, "a", bgpExplicit)
		c2 := mustParse(t, cisco.Parse, "b", bgpExplicit)
		if diffs := DiffAdminDistances(c1, c2); len(diffs) != 0 {
			t.Errorf("equal explicit distances should be silent: %+v", diffs)
		}
	})
	t.Run("explicit ibgp compared independently", func(t *testing.T) {
		c1 := mustParse(t, cisco.Parse, "a", "router bgp 65001\n distance bgp 20 150 200\n")
		c2 := mustParse(t, cisco.Parse, "b", "router bgp 65001\n distance bgp 20 180 200\n")
		diffs := DiffAdminDistances(c1, c2)
		if len(diffs) != 1 || diffs[0].Key != "ibgp" || diffs[0].Value1 != "150" || diffs[0].Value2 != "180" {
			t.Fatalf("diffs = %+v, want one ibgp difference", diffs)
		}
	})
	t.Run("protocol missing from one model is skipped", func(t *testing.T) {
		c1 := mustParse(t, cisco.Parse, "a", bgpExplicit)
		c2 := mustParse(t, cisco.Parse, "b", "hostname b\n")
		delete(c2.AdminDistances, ir.ProtoBGP)
		delete(c2.AdminDistances, ir.ProtoIBGP)
		if diffs := DiffAdminDistances(c1, c2); len(diffs) != 0 {
			t.Errorf("unmodeled protocol should be skipped: %+v", diffs)
		}
	})
}

// TestAdminDistanceAristaDefaults: EOS defaults eBGP to 200 where IOS
// uses 20, but defaults are never reported — only an explicit distance
// on either side exposes the difference. This is the router-replacement
// pitfall the paper's §5.1 replacement scenario describes.
func TestAdminDistanceAristaDefaults(t *testing.T) {
	ios := mustParse(t, cisco.Parse, "ios.cfg", "router bgp 65001\n neighbor 10.0.0.2 remote-as 65002\n")
	eos := mustParse(t, arista.Parse, "eos.cfg", "router bgp 65001\n neighbor 10.0.0.2 remote-as 65002\n")

	if ios.AdminDistances[ir.ProtoBGP] != 20 || eos.AdminDistances[ir.ProtoBGP] != 200 {
		t.Fatalf("vendor defaults: ios=%d eos=%d, want 20/200",
			ios.AdminDistances[ir.ProtoBGP], eos.AdminDistances[ir.ProtoBGP])
	}
	// Both sides on vendor defaults: silent by design.
	if diffs := DiffAdminDistances(ios, eos); len(diffs) != 0 {
		t.Errorf("default-vs-default should be silent: %+v", diffs)
	}

	// The operator pins the distance on the IOS side; now the EOS default
	// disagrees and the difference must surface with both values.
	pinned := mustParse(t, cisco.Parse, "ios2.cfg", "router bgp 65001\n distance bgp 20 200 200\n")
	diffs := DiffAdminDistances(pinned, eos)
	if len(diffs) != 1 || diffs[0].Key != "bgp" || diffs[0].Value1 != "20" || diffs[0].Value2 != "200" {
		t.Fatalf("diffs = %+v, want one bgp 20-vs-200 difference", diffs)
	}
	// Symmetrically, explicit on the EOS side only.
	eosPinned := mustParse(t, arista.Parse, "eos2.cfg", "router bgp 65001\n distance bgp 200 200 200\n")
	diffs = DiffAdminDistances(ios, eosPinned)
	if len(diffs) != 1 || diffs[0].Value1 != "20" || diffs[0].Value2 != "200" {
		t.Fatalf("diffs = %+v, want one bgp difference", diffs)
	}
}

// TestOSPFIntervalProps covers the optional hello/dead-interval
// properties: unset on both sides they are absent from the comparison,
// set on one side they diff against "None".
func TestOSPFIntervalProps(t *testing.T) {
	base := `interface GigabitEthernet0/0
 ip address 10.0.1.1 255.255.255.0
 ip ospf 1 area 0
router ospf 1
`
	// The timers have IR fields but no vendor syntax in this parser yet,
	// so they are planted on the parsed model directly.
	withIntervals := func(name string) *ir.Config {
		cfg := mustParse(t, cisco.Parse, name, base)
		i := cfg.OSPF.Interfaces["GigabitEthernet0/0"]
		i.HelloInterval = 5
		i.DeadInterval = 20
		return cfg
	}
	c1 := withIntervals("a")
	c2 := mustParse(t, cisco.Parse, "b", base)
	diffs := DiffOSPF(c1, c2)
	got := map[string]string{}
	for _, d := range diffs {
		got[d.Field] = d.Value1 + "/" + d.Value2
	}
	if got["hello-interval"] != "5/None" || got["dead-interval"] != "20/None" {
		t.Fatalf("interval diffs = %+v", diffs)
	}
	// Identical intervals are silent.
	c3 := withIntervals("c")
	if diffs := DiffOSPF(c1, c3); len(diffs) != 0 {
		t.Errorf("equal intervals should be silent: %+v", diffs)
	}
}

// TestOSPFPresence covers the nil-config arms of DiffOSPF.
func TestOSPFPresence(t *testing.T) {
	with := mustParse(t, cisco.Parse, "a", "router ospf 1\n network 10.0.1.0 0.0.0.255 area 0\n")
	without := mustParse(t, cisco.Parse, "b", "hostname b\n")
	if diffs := DiffOSPF(without, without); diffs != nil {
		t.Errorf("no OSPF on either side: %+v", diffs)
	}
	diffs := DiffOSPF(with, without)
	if len(diffs) != 1 || diffs[0].Component != "ospf-config" || diffs[0].Value2 != "None" {
		t.Fatalf("diffs = %+v", diffs)
	}
	diffs = DiffOSPF(without, with)
	if len(diffs) != 1 || diffs[0].Value1 != "None" {
		t.Fatalf("diffs = %+v", diffs)
	}
}
