package structdiff

import (
	"strings"
	"testing"

	"repro/internal/cisco"
	"repro/internal/ir"
	"repro/internal/juniper"
)

// TestTable4StaticRoute reproduces the paper's Table 4: a static route
// present in the Cisco router but absent from the Juniper one, localized
// to the exact configuration line.
func TestTable4StaticRoute(t *testing.T) {
	c, err := cisco.Parse("cisco.cfg", "ip route 10.1.1.2 255.255.255.254 10.2.2.2\n")
	if err != nil {
		t.Fatal(err)
	}
	j, err := juniper.Parse("juniper.cfg", "routing-options { static { } }\n")
	if err != nil {
		t.Fatal(err)
	}
	diffs := DiffStaticRoutes(c, j)
	if len(diffs) != 1 {
		t.Fatalf("diffs = %+v, want 1", diffs)
	}
	d := diffs[0]
	if d.Key != "10.1.1.2/31" || d.Field != "presence" {
		t.Errorf("d = %+v", d)
	}
	if !strings.Contains(d.Value1, "next-hop 10.2.2.2") || !strings.Contains(d.Value1, "admin-distance 1") {
		t.Errorf("value1 = %q", d.Value1)
	}
	if d.Value2 != "None" {
		t.Errorf("value2 = %q", d.Value2)
	}
	if !strings.Contains(d.Span1.Text(), "ip route 10.1.1.2 255.255.255.254 10.2.2.2") {
		t.Errorf("text = %q", d.Span1.Text())
	}
}

func TestStaticRouteAttributeDifference(t *testing.T) {
	// The data-center Scenario-1 bug class: same prefix, different next
	// hops on backup routers (§5.1).
	c1, _ := cisco.Parse("a", "ip route 10.5.0.0 255.255.0.0 10.0.0.1\n")
	c2, _ := cisco.Parse("b", "ip route 10.5.0.0 255.255.0.0 10.0.0.9\n")
	diffs := DiffStaticRoutes(c1, c2)
	if len(diffs) != 2 { // tuple missing from each side
		t.Fatalf("diffs = %+v", diffs)
	}
	if diffs[0].Field != "attributes" {
		t.Errorf("field = %q", diffs[0].Field)
	}
	// The synthetic outage case: tags configured differently due to
	// vendor semantics misunderstanding (§5.1 Scenario 2).
	c3, _ := cisco.Parse("a", "ip route 10.6.0.0 255.255.0.0 10.0.0.1 tag 100\n")
	c4, _ := cisco.Parse("b", "ip route 10.6.0.0 255.255.0.0 10.0.0.1 tag 200\n")
	diffs = DiffStaticRoutes(c3, c4)
	if len(diffs) != 2 {
		t.Fatalf("tag diffs = %+v", diffs)
	}
	if !strings.Contains(diffs[0].Value1, "tag 100") || !strings.Contains(diffs[0].Value2, "tag 200") {
		t.Errorf("tag values = %q / %q", diffs[0].Value1, diffs[0].Value2)
	}
}

func TestStaticRoutesEqualNoDiff(t *testing.T) {
	c1, _ := cisco.Parse("a", "ip route 10.5.0.0 255.255.0.0 10.0.0.1\nip route 10.6.0.0 255.255.0.0 10.0.0.2\n")
	c2, _ := cisco.Parse("b", "ip route 10.6.0.0 255.255.0.0 10.0.0.2\nip route 10.5.0.0 255.255.0.0 10.0.0.1\n")
	if diffs := DiffStaticRoutes(c1, c2); len(diffs) != 0 {
		t.Errorf("order must not matter: %+v", diffs)
	}
}

func TestConnectedRoutes(t *testing.T) {
	c1, _ := cisco.Parse("a", `interface Gi0/0
 ip address 10.0.12.1 255.255.255.0
interface Gi0/1
 ip address 10.0.13.1 255.255.255.0
interface Gi0/2
 ip address 10.0.99.1 255.255.255.0
 shutdown
`)
	c2, _ := cisco.Parse("b", `interface Gi0/0
 ip address 10.0.12.2 255.255.255.0
`)
	diffs := DiffConnectedRoutes(c1, c2)
	// 10.0.13/24 only on c1; shutdown interface excluded; 10.0.12/24
	// shared (different addresses, same subnet).
	if len(diffs) != 1 {
		t.Fatalf("diffs = %+v", diffs)
	}
	if diffs[0].Key != "10.0.13.0/24" || diffs[0].Value2 != "None" {
		t.Errorf("d = %+v", diffs[0])
	}
}

// TestSendCommunityDifference reproduces the university finding: Cisco
// iBGP neighbors missing send-community while Juniper sends communities
// by default (§5.2).
func TestSendCommunityDifference(t *testing.T) {
	c, _ := cisco.Parse("cisco.cfg", `router bgp 65001
 neighbor 10.0.13.3 remote-as 65001
`)
	j, _ := juniper.Parse("juniper.cfg", `routing-options { autonomous-system 65001; }
protocols {
    bgp {
        group internal {
            type internal;
            neighbor 10.0.13.3;
        }
    }
}
`)
	diffs := DiffBGPNeighbors(c, j)
	var found bool
	for _, d := range diffs {
		if d.Field == "send-community" && d.Value1 == "false" && d.Value2 == "true" {
			found = true
		}
	}
	if !found {
		t.Errorf("send-community difference missing: %+v", diffs)
	}
}

func TestRouteReflectorClientDifference(t *testing.T) {
	// The Scenario-2 severe-outage class: a route reflector client
	// mismatch on a replacement device (§5.1).
	c1, _ := cisco.Parse("a", `router bgp 65001
 neighbor 10.0.13.3 remote-as 65001
 neighbor 10.0.13.3 route-reflector-client
 neighbor 10.0.13.3 send-community
`)
	c2, _ := cisco.Parse("b", `router bgp 65001
 neighbor 10.0.13.3 remote-as 65001
 neighbor 10.0.13.3 send-community
`)
	diffs := DiffBGPNeighbors(c1, c2)
	if len(diffs) != 1 || diffs[0].Field != "route-reflector-client" {
		t.Fatalf("diffs = %+v", diffs)
	}
	if diffs[0].Value1 != "true" || diffs[0].Value2 != "false" {
		t.Errorf("values = %q %q", diffs[0].Value1, diffs[0].Value2)
	}
}

func TestNeighborPresence(t *testing.T) {
	c1, _ := cisco.Parse("a", `router bgp 65001
 neighbor 10.0.12.2 remote-as 65002
 neighbor 10.0.13.3 remote-as 65003
`)
	c2, _ := cisco.Parse("b", `router bgp 65001
 neighbor 10.0.12.2 remote-as 65002
`)
	diffs := DiffBGPNeighbors(c1, c2)
	if len(diffs) != 1 || diffs[0].Key != "10.0.13.3" || diffs[0].Field != "presence" {
		t.Fatalf("diffs = %+v", diffs)
	}
}

func TestBGPConfigDiffs(t *testing.T) {
	c1, _ := cisco.Parse("a", `router bgp 65001
 network 10.99.0.0 mask 255.255.0.0
`)
	c2, _ := cisco.Parse("b", `router bgp 65002
 network 10.98.0.0 mask 255.255.0.0
`)
	diffs := DiffBGPConfig(c1, c2)
	var sawASN, sawNet1, sawNet2 bool
	for _, d := range diffs {
		switch {
		case d.Field == "asn":
			sawASN = true
		case d.Field == "network" && d.Key == "10.99.0.0/16":
			sawNet1 = true
		case d.Field == "network" && d.Key == "10.98.0.0/16":
			sawNet2 = true
		}
	}
	if !sawASN || !sawNet1 || !sawNet2 {
		t.Errorf("diffs = %+v", diffs)
	}
	// Process on one side only.
	c3 := ir.NewConfig("x", ir.VendorCisco)
	diffs = DiffBGPConfig(c3, c1)
	if len(diffs) != 1 || diffs[0].Field != "presence" {
		t.Errorf("presence diffs = %+v", diffs)
	}
	if len(DiffBGPConfig(c3, c3)) != 0 {
		t.Error("both nil should be empty")
	}
}

func TestOSPFInterfaceDiffByName(t *testing.T) {
	c1, _ := cisco.Parse("a", `interface Gi0/0
 ip address 10.0.12.1 255.255.255.0
 ip ospf cost 10
router ospf 1
 network 10.0.0.0 0.255.255.255 area 0
`)
	c2, _ := cisco.Parse("b", `interface Gi0/0
 ip address 10.0.12.2 255.255.255.0
 ip ospf cost 20
router ospf 1
 network 10.0.0.0 0.255.255.255 area 0
`)
	diffs := DiffOSPF(c1, c2)
	if len(diffs) != 1 || diffs[0].Field != "cost" || diffs[0].Value1 != "10" || diffs[0].Value2 != "20" {
		t.Fatalf("diffs = %+v", diffs)
	}
}

func TestOSPFInterfaceMatchBySubnet(t *testing.T) {
	// Cross-vendor: interface names differ entirely; matching falls back
	// to the shared subnet.
	c, _ := cisco.Parse("a", `interface GigabitEthernet0/0
 ip address 10.0.12.1 255.255.255.0
 ip ospf cost 10
router ospf 1
 network 10.0.12.0 0.0.0.255 area 0
`)
	j, _ := juniper.Parse("b", `interfaces {
    ge-0/0/0 { unit 0 { family inet { address 10.0.12.2/24; } } }
}
protocols {
    ospf {
        area 0 {
            interface ge-0/0/0.0 { metric 10; }
        }
    }
}
`)
	diffs := DiffOSPF(c, j)
	if len(diffs) != 0 {
		t.Errorf("equal costs over matched subnets should not differ: %+v", diffs)
	}
	// Now with differing area.
	j2, _ := juniper.Parse("b", `interfaces {
    ge-0/0/0 { unit 0 { family inet { address 10.0.12.2/24; } } }
}
protocols {
    ospf {
        area 5 {
            interface ge-0/0/0.0 { metric 10; }
        }
    }
}
`)
	diffs = DiffOSPF(c, j2)
	if len(diffs) != 1 || diffs[0].Field != "area" {
		t.Errorf("area diff = %+v", diffs)
	}
}

func TestOSPFUnmatchedInterfaces(t *testing.T) {
	c1, _ := cisco.Parse("a", `interface Gi0/0
 ip address 10.0.12.1 255.255.255.0
router ospf 1
 network 10.0.0.0 0.255.255.255 area 0
`)
	c2 := ir.NewConfig("b", ir.VendorCisco)
	c2.OSPF = ir.NewOSPFConfig(1)
	diffs := DiffOSPF(c1, c2)
	if len(diffs) != 1 || diffs[0].Field != "presence" || diffs[0].Value2 != "None" {
		t.Errorf("diffs = %+v", diffs)
	}
}

func TestAdminDistances(t *testing.T) {
	// Neither explicit: vendor defaults are not compared.
	c, _ := cisco.Parse("a", "hostname a\n")
	j, _ := juniper.Parse("b", "system { host-name b; }\n")
	if diffs := DiffAdminDistances(c, j); len(diffs) != 0 {
		t.Errorf("default-vs-default should be silent: %+v", diffs)
	}
	// Explicit on one side.
	c2, _ := cisco.Parse("a", `router ospf 1
 distance 115
`)
	c3, _ := cisco.Parse("b", "hostname b\n")
	diffs := DiffAdminDistances(c2, c3)
	if len(diffs) != 1 || diffs[0].Key != "ospf" || diffs[0].Value1 != "115" || diffs[0].Value2 != "110" {
		t.Errorf("diffs = %+v", diffs)
	}
}

func TestDiffAllAggregates(t *testing.T) {
	c1, _ := cisco.Parse("a", `ip route 10.1.1.2 255.255.255.254 10.2.2.2
router bgp 65001
 neighbor 10.0.12.2 remote-as 65002
`)
	c2, _ := cisco.Parse("b", "hostname b\n")
	diffs := DiffAll(c1, c2)
	comps := map[string]bool{}
	for _, d := range diffs {
		comps[d.Component] = true
	}
	if !comps["static-route"] || !comps["bgp-config"] {
		t.Errorf("DiffAll components = %v", comps)
	}
	if (Difference{Component: "x", Key: "k", Field: "f", Value1: "a", Value2: "b"}).String() == "" {
		t.Error("String")
	}
}
