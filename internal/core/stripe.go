// Intra-pair parallel diff: striping one oversized comparison across
// workers. The pool in parallel.go parallelizes *across* matched pairs,
// which strands all but one worker when a run has fewer unique
// comparisons than workers — the common shape of "diff these two huge
// policies". Striping recovers the parallelism *inside* a single pair by
// partitioning the input space into disjoint contiguous regions of the
// encoding's signature window (symbolic.StripeRegions): each stripe
// diffs the pair restricted to its region on a private factory, and the
// merge Ors the per-region input sets back together on a fresh main
// factory via bdd.Transfer.
//
// Exactness: the regions partition the input space, so for every class
// pair (λ₁, λ₂) the union of per-region intersections is exactly
// λ₁ ∩ λ₂ — the merged report carries the same canonical input BDDs a
// sequential run builds, and localization on them is byte-identical.
// Pair order is restored deterministically: a path is identified by the
// set of clauses it takes, rendered as a big-endian index key whose
// ascending sort reproduces the sequential walk's emission order.
//
// The win is superadditive on top of the CPU count: a stripe's region
// signature lets the enumeration walk skip every clause (and the ACL
// scans skip every line) whose match prefixes cannot fall inside the
// region, so each stripe compiles a fraction of the ruleset — workers=4
// beats workers=1 even on one CPU.
package core

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"repro/internal/bdd"
	"repro/internal/headerloc"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/semdiff"
	"repro/internal/symbolic"
)

// stripeMinClauses and stripeMinLines gate striping to comparisons big
// enough to amortize the per-stripe encoding build and the merge
// transfer. Note MaxNodes applies per stripe once a comparison is
// striped — each stripe is its own unit of work, compiling only its
// region's share of the ruleset. Variables so tests can lower them;
// treat as constants.
var (
	stripeMinClauses = 1024 // total resolved clauses across both chains
	stripeMinLines   = 2048 // total ACL lines across both sides
)

// effectiveWorkers resolves Options.Workers without a task-count clamp
// (stripes exist precisely because tasks < workers).
func (o Options) effectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// routeMapStripes decides whether (and how wide) to stripe the route-map
// component: only when workers would otherwise idle — fewer unique
// comparisons than workers — and at least one chain pair is oversized.
// Returns 0 or 1 for "don't stripe".
func (o Options) routeMapStripes(c1, c2 *ir.Config, tasks []rmTask) int {
	w := o.effectiveWorkers()
	if w <= 1 || len(tasks) >= w {
		return 0
	}
	big := false
	for _, t := range tasks {
		n := len(ResolveChain(c1, t.names1).Clauses) + len(ResolveChain(c2, t.names2).Clauses)
		if n >= stripeMinClauses {
			big = true
			break
		}
	}
	if !big {
		return 0
	}
	if w > 32 { // the signature window has 32 values
		w = 32
	}
	return w
}

// aclStripes is routeMapStripes for one ACL pair.
func (o Options) aclStripes(pairs int, acl1, acl2 *ir.ACL) int {
	w := o.effectiveWorkers()
	if w <= 1 || pairs >= w {
		return 0
	}
	if len(acl1.Lines)+len(acl2.Lines) < stripeMinLines {
		return 0
	}
	if w > 32 {
		w = 32
	}
	return w
}

// runRouteMapTasksStriped executes the unique chain comparisons
// sequentially, each one partitioned across stripes (parallel.go
// dispatches here instead of the pool when routeMapStripes fires).
func runRouteMapTasksStriped(ctx context.Context, c1, c2 *ir.Config, tasks []rmTask, stripes int, opts Options, stats *ComponentStats, span *obs.Span, results []rmTaskResult) {
	stats.Workers = stripes
	stats.Stripes = stripes
	for i := range tasks {
		results[i] = runStripedRouteMapTask(ctx, c1, c2, tasks[i], stripes, opts, stats, span)
	}
	opts.recordStripes(string(stats.Component), stripes*len(tasks))
}

// stripeResult is one region's share of a striped route-map comparison.
// The diffs' nodes live on enc's private factory until the merge
// transfers them out.
type stripeResult struct {
	enc   *symbolic.RouteEncoding
	diffs []semdiff.RouteMapDiff
	err   error
}

// runStripedRouteMapTask compares one chain pair with the input space
// partitioned into stripes: per-stripe enumeration + diff on private
// factories in parallel, then a deterministic merge and localization on
// a fresh main factory.
func runStripedRouteMapTask(ctx context.Context, c1, c2 *ir.Config, t rmTask, stripes int, opts Options, stats *ComponentStats, parent *obs.Span) rmTaskResult {
	var tsp *obs.Span
	if parent != nil {
		tsp = parent.Child("striped-chain-pair",
			obs.Str("chain1", chainName(t.names1)), obs.Str("chain2", chainName(t.names2)),
			obs.Int("stripes", stripes))
		defer tsp.End()
	}
	rm1 := ResolveChain(c1, t.names1)
	rm2 := ResolveChain(c2, t.names2)
	regions := symbolic.StripeRegions(stripes)
	res := make([]stripeResult, len(regions))

	var wg sync.WaitGroup
	// The merge factory, its encoding, and the localizer build on this
	// goroutine while the stripes run: localizer construction (the DDNF
	// dag over the pair's prefix vocabulary) is the serial fraction of a
	// striped comparison, so overlapping it with the stripe diffs is
	// where a multi-core machine recovers it.
	var mainEnc *symbolic.RouteEncoding
	var loc *headerloc.RouteLocalizer
	var mainErr error
	buildMain := func() {
		defer func() {
			if r := recover(); r != nil {
				mainErr = taskFailure(r, c1, c2, t)
				mainEnc, loc = nil, nil
			}
		}()
		e := symbolic.NewRouteEncodingIntoOrdered(newArmedFactory(ctx, opts), opts.routeOrder, c1, c2)
		loc = headerloc.NewRouteLocalizer(e, c1, c2)
		e.F.BeginWork()
		mainEnc = e
	}
	for s := range regions {
		wg.Add(1)
		go func(s int, lo, hi uint32) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					res[s].err = taskFailure(r, c1, c2, t)
				}
			}()
			if err := ctxErr(ctx); err != nil {
				file, line := chainProvenance(c1, c2, t.names1, t.names2)
				res[s].err = &PairError{Pair: t.label(), Kind: ErrCanceled, File: file, Line: line, Err: err}
				return
			}
			enc := symbolic.NewRouteEncodingIntoOrdered(newArmedFactory(ctx, opts), opts.routeOrder, c1, c2)
			res[s].enc = enc
			enc.F.BeginWork()
			region := enc.RegionBDD(lo, hi)
			rsig := symbolic.RegionSig(lo, hi)
			p1, err := enc.EnumeratePathsRegion(c1, rm1, region, rsig)
			if err != nil {
				res[s].err = err
				return
			}
			p2, err := enc.EnumeratePathsRegion(c2, rm2, region, rsig)
			if err != nil {
				res[s].err = err
				return
			}
			res[s].diffs = semdiff.DiffRouteMapPaths(enc, p1, p2)
		}(s, regions[s][0], regions[s][1])
	}
	buildMain()
	wg.Wait()

	// account charges one stripe factory's work to the component and
	// recycles it (unless an unknown panic left its state suspect).
	account := func(s int) {
		enc := res[s].enc
		if enc == nil {
			return
		}
		st := enc.F.Stats()
		stats.BDDNodes += st.Nodes
		stats.CacheHits += st.CacheHits
		stats.CacheMisses += st.CacheMisses
		if !isInternalFailure(res[s].err) {
			putFactory(enc.F)
		}
		res[s].enc = nil
	}
	accountMain := func(err error) {
		if mainEnc == nil {
			return
		}
		st := mainEnc.F.Stats()
		stats.BDDNodes += st.Nodes
		stats.CacheHits += st.CacheHits
		stats.CacheMisses += st.CacheMisses
		if err == nil || !isInternalFailure(err) {
			putFactory(mainEnc.F)
		}
		mainEnc = nil
	}
	fail := func(err error) rmTaskResult {
		for j := range res {
			account(j)
		}
		accountMain(err)
		return rmTaskResult{err: err}
	}
	for s := range res {
		if res[s].err != nil {
			// Deterministic failure: the lowest-region error wins, exactly
			// the one a sequential region scan would hit first.
			return fail(res[s].err)
		}
	}
	if mainErr != nil {
		return fail(mainErr)
	}
	out := mergeStripedRouteMapDiffs(mainEnc, loc, c1, c2, rm1, rm2, t, res, opts)
	for j := range res {
		account(j) // shards already transferred (or the merge failed)
	}
	accountMain(out.err)
	return out
}

// clauseIndex maps each clause of a resolved chain to its position.
func clauseIndex(rm *ir.RouteMap) map[*ir.RouteMapClause]int {
	m := make(map[*ir.RouteMapClause]int, len(rm.Clauses))
	for i, cl := range rm.Clauses {
		m[cl] = i
	}
	return m
}

// pathKey renders a path's identity — the indices of the clauses it
// takes — as a big-endian byte key whose ascending sort reproduces the
// sequential enumeration order: at the first index where two paths
// differ, the one that took the earlier clause was emitted first, and a
// path extending another's taken set (sentinel 0xFFFFFFFF > any index)
// was emitted before its prefix.
func pathKey(idx map[*ir.RouteMapClause]int, p symbolic.RoutePath) string {
	b := make([]byte, 0, 4*(len(p.Taken)+1))
	for _, cl := range p.Taken {
		i := idx[cl]
		b = append(b, byte(i>>24), byte(i>>16), byte(i>>8), byte(i))
	}
	b = append(b, 0xff, 0xff, 0xff, 0xff)
	return string(b)
}

// mergedRouteDiff accumulates one class pair's input set across stripes.
type mergedRouteDiff struct {
	k1, k2 string
	d      semdiff.RouteMapDiff
}

// mergeStripedRouteMapDiffs rebuilds the sequential report from the
// per-stripe shards: transfer every shard's input set onto the main
// factory, Or shards of the same class pair together, sort pairs into
// the sequential emission order, and localize.
func mergeStripedRouteMapDiffs(mainEnc *symbolic.RouteEncoding, loc *headerloc.RouteLocalizer, c1, c2 *ir.Config, rm1, rm2 *ir.RouteMap, t rmTask, res []stripeResult, opts Options) (out rmTaskResult) {
	defer func() {
		if r := recover(); r != nil {
			out = rmTaskResult{err: taskFailure(r, c1, c2, t)}
		}
	}()
	idx1, idx2 := clauseIndex(rm1), clauseIndex(rm2)
	merged := map[string]*mergedRouteDiff{}
	var order []*mergedRouteDiff
	for s := range res {
		memo := map[bdd.Node]bdd.Node{}
		for _, d := range res[s].diffs {
			in := bdd.Transfer(mainEnc.F, res[s].enc.F, d.Inputs, memo)
			k1, k2 := pathKey(idx1, d.Path1), pathKey(idx2, d.Path2)
			key := k1 + k2 // unambiguous: k1 self-terminates with the sentinel
			if m, ok := merged[key]; ok {
				m.d.Inputs = mainEnc.F.Or(m.d.Inputs, in)
				continue
			}
			d.Inputs = in
			// The stripe-local guards die with the stripe factory; the
			// report only reads the paths' Accept/Transform/Terminal.
			d.Path1.Guard, d.Path2.Guard = bdd.False, bdd.False
			m := &mergedRouteDiff{k1: k1, k2: k2, d: d}
			merged[key] = m
			order = append(order, m)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].k1 != order[j].k1 {
			return order[i].k1 < order[j].k1
		}
		return order[i].k2 < order[j].k2
	})

	diffs := make([]localizedRouteDiff, 0, len(order))
	for _, m := range order {
		localization := loc.Localize(m.d.Inputs)
		if opts.ExhaustiveCommunities {
			localization.CommunityTerms, localization.CommunityComplete =
				loc.LocalizeCommunities(m.d.Inputs, maxCommunityTerms)
		}
		diffs = append(diffs, localizedRouteDiff{
			Localization: localization,
			Action1:      describeRouteAction(m.d.Path1),
			Action2:      describeRouteAction(m.d.Path2),
			Text1:        routePathText(m.d.Path1),
			Text2:        routePathText(m.d.Path2),
		})
	}
	return rmTaskResult{diffs: diffs}
}

// aclStripeResult is one region's share of a striped ACL comparison.
type aclStripeResult struct {
	enc   *symbolic.PacketEncoding
	diffs []semdiff.ACLDiff
	err   error
}

// runStripedACLPair compares one oversized ACL pair partitioned across
// source-address regions: per-stripe diff on private factories, then a
// deterministic line-order merge and localization on a fresh main
// factory. Returns the pair's localized diffs and the BDD work summed
// over every factory used.
func runStripedACLPair(ctx context.Context, name string, acl1, acl2 *ir.ACL, stripes int, opts Options) (out []ACLPairDiff, work bdd.Stats, err error) {
	sigs := symbolic.NewACLSigTable(acl1, acl2)
	// Warm the signature memo before fan-out: LineSig caches lazily, and
	// a fully-populated table is read-only — safe to share across stripes.
	for _, l := range acl1.Lines {
		sigs.LineSig(l)
	}
	for _, l := range acl2.Lines {
		sigs.LineSig(l)
	}
	w := sigs.SrcWindow()
	regions := symbolic.StripeRegions(stripes)
	res := make([]aclStripeResult, len(regions))

	var wg sync.WaitGroup
	for s := range regions {
		wg.Add(1)
		go func(s int, lo, hi uint32) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					res[s].err = aclPairFailure(r, name, acl1)
				}
			}()
			if cerr := ctxErr(ctx); cerr != nil {
				res[s].err = &PairError{Pair: "acl " + name, Kind: ErrCanceled, Err: cerr}
				return
			}
			enc := symbolic.NewPacketEncodingInto(newArmedFactory(ctx, opts))
			res[s].enc = enc
			enc.F.BeginWork()
			region := enc.SrcRegionBDD(w, lo, hi)
			rsig := symbolic.RegionSig(lo, hi)
			res[s].diffs = semdiff.DiffACLsRegion(enc, acl1, acl2, region, rsig, sigs)
		}(s, regions[s][0], regions[s][1])
	}
	wg.Wait()

	account := func(s int) {
		enc := res[s].enc
		if enc == nil {
			return
		}
		st := enc.F.Stats()
		work.Nodes += st.Nodes
		work.CacheHits += st.CacheHits
		work.CacheMisses += st.CacheMisses
		if res[s].err == nil || ErrKind(res[s].err) != "internal" {
			putFactory(enc.F)
		}
		res[s].enc = nil
	}
	for s := range res {
		if res[s].err != nil {
			for j := range res {
				account(j)
			}
			return nil, work, res[s].err
		}
	}

	func() {
		defer func() {
			if r := recover(); r != nil {
				err = aclPairFailure(r, name, acl1)
			}
		}()
		mainEnc := symbolic.NewPacketEncodingInto(newArmedFactory(ctx, opts))
		defer func() {
			st := mainEnc.F.Stats()
			work.Nodes += st.Nodes
			work.CacheHits += st.CacheHits
			work.CacheMisses += st.CacheMisses
			if err == nil || ErrKind(err) != "internal" {
				putFactory(mainEnc.F)
			}
		}()
		mainEnc.F.BeginWork()

		// A class pair is identified by its two line positions; the
		// implicit-deny tail sorts last, matching enumeration order.
		lineIdx := func(acl *ir.ACL) map[*ir.ACLLine]int {
			m := make(map[*ir.ACLLine]int, len(acl.Lines))
			for i, l := range acl.Lines {
				m[l] = i
			}
			return m
		}
		idx1, idx2 := lineIdx(acl1), lineIdx(acl2)
		pos := func(idx map[*ir.ACLLine]int, l *ir.ACLLine) int {
			if l == nil {
				return 1 << 30
			}
			return idx[l]
		}
		type mergedACLDiff struct {
			i1, i2 int
			d      semdiff.ACLDiff
		}
		merged := map[[2]int]*mergedACLDiff{}
		var order []*mergedACLDiff
		for s := range res {
			memo := map[bdd.Node]bdd.Node{}
			for _, d := range res[s].diffs {
				in := bdd.Transfer(mainEnc.F, res[s].enc.F, d.Inputs, memo)
				i1, i2 := pos(idx1, d.Path1.Line), pos(idx2, d.Path2.Line)
				if m, ok := merged[[2]int{i1, i2}]; ok {
					m.d.Inputs = mainEnc.F.Or(m.d.Inputs, in)
					continue
				}
				d.Inputs = in
				d.Path1.Guard, d.Path2.Guard = bdd.False, bdd.False
				m := &mergedACLDiff{i1: i1, i2: i2, d: d}
				merged[[2]int{i1, i2}] = m
				order = append(order, m)
			}
			account(s)
		}
		sort.Slice(order, func(i, j int) bool {
			if order[i].i1 != order[j].i1 {
				return order[i].i1 < order[j].i1
			}
			return order[i].i2 < order[j].i2
		})
		if len(order) == 0 {
			return
		}
		loc := headerloc.NewACLLocalizer(mainEnc, acl1, acl2)
		for _, m := range order {
			out = append(out, ACLPairDiff{
				Name1: name, Name2: name,
				Localization: loc.Localize(m.d.Inputs),
				Action1:      describeACLAction(m.d.Path1.Accept),
				Action2:      describeACLAction(m.d.Path2.Accept),
				Text1:        aclPathText(m.d.Path1),
				Text2:        aclPathText(m.d.Path2),
			})
		}
	}()
	if err != nil {
		return nil, work, err
	}
	return out, work, nil
}
