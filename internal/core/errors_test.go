package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/bdd"
)

// TestPairErrorClassification is the table over the whole error
// taxonomy: every sentinel kind, with and without an underlying cause,
// must classify correctly through errors.Is, errors.As, and ErrKind —
// including when the PairError is itself wrapped by fmt.Errorf.
func TestPairErrorClassification(t *testing.T) {
	cases := []struct {
		name     string
		err      *PairError
		is       []error // sentinels errors.Is must accept
		isNot    []error // sentinels errors.Is must reject
		kind     string
		contains []string // substrings of Error()
	}{
		{
			name:     "parse with cause",
			err:      &PairError{Pair: "r1 vs r2", Kind: ErrParse, File: "r2.cfg", Err: errors.New("unknown dialect")},
			is:       []error{ErrParse},
			isNot:    []error{ErrCanceled, ErrBudget, ErrInternal},
			kind:     "parse",
			contains: []string{"r1 vs r2", "parse error", "unknown dialect", "(r2.cfg)"},
		},
		{
			name:     "parse without cause",
			err:      &PairError{Pair: "solo", Kind: ErrParse},
			is:       []error{ErrParse},
			isNot:    []error{ErrInternal},
			kind:     "parse",
			contains: []string{"solo: parse error"},
		},
		{
			name:     "canceled carries context.Canceled",
			err:      canceledError("pair", context.Canceled),
			is:       []error{ErrCanceled, context.Canceled},
			isNot:    []error{ErrParse, ErrBudget, context.DeadlineExceeded},
			kind:     "canceled",
			contains: []string{"comparison canceled", "context canceled"},
		},
		{
			name:     "deadline carries context.DeadlineExceeded",
			err:      canceledError("pair", context.DeadlineExceeded),
			is:       []error{ErrCanceled, context.DeadlineExceeded},
			isNot:    []error{context.Canceled},
			kind:     "canceled",
			contains: []string{"deadline exceeded"},
		},
		{
			name:     "budget carries the bdd sentinel",
			err:      &PairError{Pair: "big", Kind: ErrBudget, Err: bdd.ErrNodeBudget},
			is:       []error{ErrBudget, bdd.ErrNodeBudget},
			isNot:    []error{ErrCanceled},
			kind:     "budget",
			contains: []string{"resource budget exceeded"},
		},
		{
			name:     "internal with provenance line",
			err:      &PairError{Pair: "POL", Kind: ErrInternal, File: "a.cfg", Line: 42, Err: fmt.Errorf("panic: boom")},
			is:       []error{ErrInternal},
			isNot:    []error{ErrParse, ErrCanceled, ErrBudget},
			kind:     "internal",
			contains: []string{"internal error", "panic: boom", "(a.cfg:42)"},
		},
		{
			name:     "line without file is not rendered",
			err:      &PairError{Kind: ErrParse, Line: 7},
			is:       []error{ErrParse},
			kind:     "parse",
			contains: []string{"parse error"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Classify both the bare error and a wrapped one: callers see
			// PairErrors through fmt.Errorf chains in batch summaries.
			for _, err := range []error{tc.err, fmt.Errorf("batch: %w", tc.err)} {
				for _, want := range tc.is {
					if !errors.Is(err, want) {
						t.Errorf("errors.Is(%v, %v) = false, want true", err, want)
					}
				}
				for _, not := range tc.isNot {
					if errors.Is(err, not) {
						t.Errorf("errors.Is(%v, %v) = true, want false", err, not)
					}
				}
				var pe *PairError
				if !errors.As(err, &pe) {
					t.Fatalf("errors.As failed on %v", err)
				}
				if pe != tc.err {
					t.Fatalf("errors.As recovered a different PairError")
				}
				if got := ErrKind(err); got != tc.kind {
					t.Errorf("ErrKind(%v) = %q, want %q", err, got, tc.kind)
				}
			}
			msg := tc.err.Error()
			for _, sub := range tc.contains {
				if !strings.Contains(msg, sub) {
					t.Errorf("Error() = %q, missing %q", msg, sub)
				}
			}
			if tc.err.File == "" && strings.Contains(msg, "(") && !strings.Contains(msg, "panic") {
				t.Errorf("Error() = %q renders provenance with no file", msg)
			}
		})
	}
}

// TestPairErrorUnwrap pins the multi-Unwrap contract: the kind sentinel
// always unwraps, the cause only when present.
func TestPairErrorUnwrap(t *testing.T) {
	cause := errors.New("root cause")
	both := &PairError{Kind: ErrBudget, Err: cause}
	if got := both.Unwrap(); len(got) != 2 || got[0] != ErrBudget || got[1] != cause {
		t.Fatalf("Unwrap with cause = %v, want [ErrBudget, cause]", got)
	}
	bare := &PairError{Kind: ErrParse}
	if got := bare.Unwrap(); len(got) != 1 || got[0] != ErrParse {
		t.Fatalf("Unwrap without cause = %v, want [ErrParse]", got)
	}

	// A doubly-nested chain: PairError wrapping a PairError (a chain task
	// failure surfaced through a batch) keeps every layer reachable.
	inner := &PairError{Pair: "chain POL", Kind: ErrBudget, Err: bdd.ErrNodeBudget}
	outer := &PairError{Pair: "r1 vs r2", Kind: ErrInternal, Err: inner}
	for _, want := range []error{ErrInternal, ErrBudget, bdd.ErrNodeBudget} {
		if !errors.Is(outer, want) {
			t.Errorf("nested chain lost %v", want)
		}
	}
	var pe *PairError
	if !errors.As(outer, &pe) || pe != outer {
		t.Fatalf("errors.As should find the outermost PairError first")
	}
}

// TestErrKindUnclassified: nil maps to "", foreign errors to "internal"
// (the conservative batch label for an unexplained failure), and raw
// context errors classify as canceled even without a PairError wrapper.
func TestErrKindUnclassified(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{errors.New("mystery"), "internal"},
		{context.Canceled, "canceled"},
		{context.DeadlineExceeded, "canceled"},
		{bdd.ErrNodeBudget, "budget"},
		{fmt.Errorf("wrapped: %w", bdd.ErrNodeBudget), "budget"},
	}
	for _, tc := range cases {
		if got := ErrKind(tc.err); got != tc.want {
			t.Errorf("ErrKind(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}
