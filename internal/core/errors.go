// Error taxonomy of the hardened diff pipeline. A batch audit must
// terminate with an explanation for every pair, including the pairs that
// could not be compared: each failure is classified into one of four
// kinds and carried as a PairError with configuration-file/line
// provenance, so a partial DiffAll result is diagnosable rather than a
// bare "it broke".
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/bdd"
	"repro/internal/ir"
)

// ctxErr reports the context's error, additionally treating an
// already-passed deadline as exceeded even when the context's timer has
// not fired yet. Deadlines shorter than the Go timer granularity (the
// CI's `-timeout 1ms` smoke) stay deterministic this way: the first
// cancellation point after the deadline always observes it.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}

// The failure kinds of a comparison. Every error a Diff/DiffBatch run
// reports wraps exactly one of these sentinels; classify with errors.Is
// or ErrKind.
var (
	// ErrParse marks input failures: a configuration that could not be
	// read, parsed, or dialect-detected, or a pair missing a side.
	ErrParse = errors.New("parse error")
	// ErrCanceled marks comparisons abandoned because the context was
	// canceled or its deadline passed. The underlying context error is in
	// the chain, so errors.Is(err, context.Canceled) and
	// errors.Is(err, context.DeadlineExceeded) also work.
	ErrCanceled = errors.New("comparison canceled")
	// ErrBudget marks comparisons aborted by a resource ceiling
	// (Options.MaxNodes); the offending pair is reported, the rest of the
	// batch completes.
	ErrBudget = errors.New("resource budget exceeded")
	// ErrInternal marks a crash (panic) inside one comparison, isolated
	// by the worker so sibling pairs are unaffected.
	ErrInternal = errors.New("internal error")
)

// PairError is the structured failure of one comparison (or one chain
// task inside it): what failed (Pair), why (Kind, one of the four
// sentinels), where in the input (File/Line, when attributable to a
// configuration span), and the underlying cause (Err). It implements
// errors.Is for both its Kind and its cause, so callers classify with
// errors.Is(err, core.ErrBudget) or errors.Is(err, context.Canceled).
type PairError struct {
	// Pair names the failed unit: the batch pair name, or the chain-pair
	// label for a task-level failure inside one Diff.
	Pair string
	// Kind is one of ErrParse, ErrCanceled, ErrBudget, ErrInternal.
	Kind error
	// File and Line locate the responsible configuration text when known
	// (the route-map chain under comparison, the unparseable file);
	// Line 0 means "whole file", an empty File means "not attributable".
	File string
	Line int
	// Err is the underlying cause (a context error, the bdd budget
	// error, the recovered panic value).
	Err error
	// Stack holds the goroutine stack for ErrInternal failures, so a
	// crash isolated at a worker is still debuggable from the report.
	Stack string
}

// Error renders "pair: kind: cause @ file:line".
func (e *PairError) Error() string {
	msg := e.Kind.Error()
	if e.Err != nil {
		msg = fmt.Sprintf("%s: %v", msg, e.Err)
	}
	if e.Pair != "" {
		msg = fmt.Sprintf("%s: %s", e.Pair, msg)
	}
	if e.File != "" {
		if e.Line > 0 {
			msg = fmt.Sprintf("%s (%s:%d)", msg, e.File, e.Line)
		} else {
			msg = fmt.Sprintf("%s (%s)", msg, e.File)
		}
	}
	return msg
}

// Unwrap exposes both the kind sentinel and the underlying cause.
func (e *PairError) Unwrap() []error {
	if e.Err == nil {
		return []error{e.Kind}
	}
	return []error{e.Kind, e.Err}
}

// ErrKind returns the short label of an error's failure kind — "parse",
// "canceled", "budget", or "internal" — and "" for nil or unclassified
// errors. It is the metrics/RunLog label vocabulary.
func ErrKind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrParse):
		return "parse"
	case errors.Is(err, ErrCanceled), errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	case errors.Is(err, ErrBudget), errors.Is(err, bdd.ErrNodeBudget):
		return "budget"
	case errors.Is(err, ErrInternal):
		return "internal"
	default:
		return "internal"
	}
}

// canceledError wraps a context error as a structured cancellation.
func canceledError(pair string, cause error) *PairError {
	return &PairError{Pair: pair, Kind: ErrCanceled, Err: cause}
}

// abortKind classifies a recovered bdd.Abort: budget ceilings are
// ErrBudget, everything else (the poll's context error) is ErrCanceled.
func abortKind(a bdd.Abort) error {
	if errors.Is(a.Err, bdd.ErrNodeBudget) {
		return ErrBudget
	}
	return ErrCanceled
}

// chainProvenance locates a chain comparison in its source text: the
// first named policy that resolves on either side wins, preferring side 1.
func chainProvenance(c1, c2 *ir.Config, names1, names2 []string) (file string, line int) {
	find := func(cfg *ir.Config, names []string) (string, int) {
		for _, n := range names {
			if rm := cfg.RouteMaps[n]; rm != nil && rm.Span.File != "" {
				return rm.Span.File, rm.Span.StartLine
			}
		}
		return "", 0
	}
	if f, l := find(c1, names1); f != "" {
		return f, l
	}
	return find(c2, names2)
}
