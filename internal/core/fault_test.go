package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// withTaskHook installs a fault-injection hook for the duration of the
// test. TestTaskHook is global state, so hooked tests must not run in
// parallel.
func withTaskHook(t *testing.T, hook func(names1, names2 []string)) {
	t.Helper()
	TestTaskHook = hook
	t.Cleanup(func() { TestTaskHook = nil })
}

// TestTaskPanicIsInternalPairError: a crash inside one route-map task is
// recovered by the worker and reported as a structured ErrInternal
// PairError carrying chain provenance and the goroutine stack, at every
// pool size — and the engine (with its shared factory pool) stays
// healthy for the next call.
func TestTaskPanicIsInternalPairError(t *testing.T) {
	c1, c2 := syntheticFleetPair(t, 6, 2)
	withTaskHook(t, func(names1, _ []string) {
		for _, n := range names1 {
			if n == "POL3" {
				panic("injected task crash")
			}
		}
	})
	for _, workers := range []int{1, 4} {
		_, err := Diff(c1, c2, Options{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: injected panic did not surface", workers)
		}
		var pe *PairError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want *PairError, got %T: %v", workers, err, err)
		}
		if !errors.Is(err, ErrInternal) || ErrKind(err) != "internal" {
			t.Fatalf("workers=%d: want ErrInternal, got %v", workers, err)
		}
		if pe.Stack == "" {
			t.Errorf("workers=%d: internal failure missing stack", workers)
		}
		if pe.File == "" || pe.Line == 0 {
			t.Errorf("workers=%d: missing provenance, got %q:%d", workers, pe.File, pe.Line)
		}
		if !strings.Contains(pe.Pair, "POL3") {
			t.Errorf("workers=%d: pair label %q does not name the chain", workers, pe.Pair)
		}
	}
	// The crash must not poison pooled factories: a clean run succeeds.
	TestTaskHook = nil
	if _, err := Diff(c1, c2, Options{Workers: 4}); err != nil {
		t.Fatalf("post-crash Diff failed: %v", err)
	}
}

// TestPanicIsolationKeepsSiblingResults: with Workers=4 a single crashing
// task fails its own chain while sibling tasks on other workers still
// compute — observed indirectly: the error names exactly the crashed
// chain, and rerunning without the hook yields the full report.
func TestPanicIsolationKeepsSiblingResults(t *testing.T) {
	c1, c2 := syntheticFleetPair(t, 8, 1)
	want, err := Diff(c1, c2, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	withTaskHook(t, func(names1, _ []string) {
		for _, n := range names1 {
			if n == "POL5" {
				panic("boom")
			}
		}
	})
	_, err = Diff(c1, c2, Options{Workers: 4})
	var pe *PairError
	if !errors.As(err, &pe) || !strings.Contains(pe.Pair, "POL5") {
		t.Fatalf("want POL5 PairError, got %v", err)
	}
	TestTaskHook = nil
	rep, err := Diff(c1, c2, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderReport(rep); got != renderReport(want) {
		t.Fatal("report after recovered crash diverges from clean run")
	}
}

// TestPreCanceledContext: DiffContext on an already-canceled context
// returns ErrCanceled without doing semantic work, and the underlying
// context.Canceled stays reachable through errors.Is.
func TestPreCanceledContext(t *testing.T) {
	c1, c2 := syntheticFleetPair(t, 2, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := DiffContext(ctx, c1, c2, Options{})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled, got %v", err)
	}
}

// TestCancelMidRun: a cancellation landing while tasks are in flight
// (injected deterministically via the task hook) surfaces as ErrCanceled
// with the chain's provenance.
func TestCancelMidRun(t *testing.T) {
	c1, c2 := syntheticFleetPair(t, 6, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withTaskHook(t, func(names1, _ []string) {
		for _, n := range names1 {
			if n == "POL2" {
				cancel()
			}
		}
	})
	_, err := DiffContext(ctx, c1, c2, Options{Workers: 1})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled, got %v", err)
	}
	if ErrKind(err) != "canceled" {
		t.Fatalf("ErrKind = %q, want canceled", ErrKind(err))
	}
}

// TestTimeoutOption: Options.Timeout derives the deadline internally;
// an immediately-expired one classifies as canceled and wraps
// context.DeadlineExceeded (ctxErr observes a passed deadline even
// before the timer fires, keeping tiny timeouts deterministic).
func TestTimeoutOption(t *testing.T) {
	c1, c2 := syntheticFleetPair(t, 2, 1)
	_, err := Diff(c1, c2, Options{Timeout: time.Nanosecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded in chain, got %v", err)
	}
	if ErrKind(err) != "canceled" {
		t.Fatalf("ErrKind = %q, want canceled", ErrKind(err))
	}
}

// TestBudgetAbortDeterministic: a MaxNodes ceiling far below what the
// comparison allocates aborts with ErrBudget at Workers=1 and Workers=4
// alike. The budget is a per-task ceiling measured from each task's
// BeginWork baseline, so classification (though not necessarily the
// exact failing chain) is stable across pool sizes.
func TestBudgetAbortDeterministic(t *testing.T) {
	c1, c2 := syntheticFleetPair(t, 4, 1)
	for _, workers := range []int{1, 4} {
		_, err := Diff(c1, c2, Options{Workers: workers, MaxNodes: 8})
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("workers=%d: want ErrBudget, got %v", workers, err)
		}
		if ErrKind(err) != "budget" {
			t.Fatalf("workers=%d: ErrKind = %q, want budget", workers, ErrKind(err))
		}
	}
	// A generous budget admits the same comparison.
	if _, err := Diff(c1, c2, Options{Workers: 4, MaxNodes: 1 << 22}); err != nil {
		t.Fatalf("generous budget still aborted: %v", err)
	}
}

// TestBudgetAbortWithPolicyCache: the sequential cross-pair path must
// also honor the budget, invalidate the poisoned cache, and recover on
// the next (unbudgeted) call through the same cache.
func TestBudgetAbortWithPolicyCache(t *testing.T) {
	c1, c2 := syntheticFleetPair(t, 4, 1)
	pc := NewPolicyCache()
	_, err := Diff(c1, c2, Options{Workers: 1, PolicyCache: pc, MaxNodes: 8})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("cached path ignored the budget: %v", err)
	}
	rep, err := Diff(c1, c2, Options{Workers: 1, PolicyCache: pc})
	if err != nil {
		t.Fatalf("cache did not recover after budget abort: %v", err)
	}
	want, err := Diff(c1, c2, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if renderReport(rep) != renderReport(want) {
		t.Fatal("post-abort cached report diverges from a fresh run")
	}
}

// TestPairErrorRendering: the Error string carries pair, kind, cause,
// and file:line provenance in a greppable shape.
func TestPairErrorRendering(t *testing.T) {
	e := &PairError{
		Pair: "POL1 vs POL1", Kind: ErrBudget, File: "r1.cfg", Line: 12,
		Err: errors.New("7000 nodes allocated (budget 4096)"),
	}
	got := e.Error()
	for _, part := range []string{"POL1 vs POL1", "resource budget exceeded", "r1.cfg:12"} {
		if !strings.Contains(got, part) {
			t.Errorf("Error() = %q, missing %q", got, part)
		}
	}
	if ErrKind(e) != "budget" {
		t.Errorf("ErrKind = %q", ErrKind(e))
	}
}
