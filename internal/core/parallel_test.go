package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cisco"
	"repro/internal/ir"
)

// syntheticFleetPair builds a Cisco config pair with `policies` distinct
// route maps, each applied to `fanout` neighbors (so the chain-identity
// cache has work to do), with a local-preference difference injected into
// every odd policy. It also carries a pair of slightly different ACLs.
func syntheticFleetPair(t testing.TB, policies, fanout int) (*ir.Config, *ir.Config) {
	t.Helper()
	build := func(side int) string {
		var b strings.Builder
		fmt.Fprintf(&b, "hostname r%d\n", side)
		for p := 0; p < policies; p++ {
			fmt.Fprintf(&b, "ip prefix-list NETS%d permit 10.%d.0.0/16 le 24\n", p, p+1)
			pref := 100 + p
			if side == 2 && p%2 == 1 {
				pref += 50 // injected difference
			}
			fmt.Fprintf(&b, "route-map POL%d permit 10\n match ip address NETS%d\n set local-preference %d\n", p, p, pref)
			fmt.Fprintf(&b, "route-map POL%d deny 20\n", p)
		}
		b.WriteString("ip access-list extended EDGE\n permit tcp any any eq 80\n")
		if side == 2 {
			b.WriteString(" permit tcp any any eq 443\n")
		}
		b.WriteString("router bgp 65001\n")
		for p := 0; p < policies; p++ {
			for n := 0; n < fanout; n++ {
				addr := fmt.Sprintf("10.%d.%d.2", 200+p, n+1)
				fmt.Fprintf(&b, " neighbor %s remote-as 65002\n", addr)
				fmt.Fprintf(&b, " neighbor %s route-map POL%d in\n", addr, p)
			}
		}
		return b.String()
	}
	c1, err := cisco.Parse("r1.cfg", build(1))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cisco.Parse("r2.cfg", build(2))
	if err != nil {
		t.Fatal(err)
	}
	return c1, c2
}

// renderReport flattens a report into a canonical string for byte-exact
// comparison across runs and worker counts.
func renderReport(rep *Report) string {
	var b strings.Builder
	for _, d := range rep.RouteMapDiffs {
		b.WriteString(d.Pair.String())
		b.WriteString("|" + d.Action1 + "|" + d.Action2)
		b.WriteString("|" + d.Text1.Location() + "|" + d.Text2.Location())
		for _, term := range d.Localization.Terms {
			b.WriteString("|" + term.String())
		}
		if d.Localization.ExampleRoute != nil {
			fmt.Fprintf(&b, "|%v", d.Localization.ExampleRoute)
		}
		for _, ct := range d.Localization.CommunityTerms {
			b.WriteString("|" + ct.String())
		}
		b.WriteString("\n")
	}
	for _, d := range rep.ACLDiffs {
		fmt.Fprintf(&b, "%s|%s|%s|%s|%s|%v|%v\n", d.Name1, d.Action1, d.Action2,
			d.Text1.Location(), d.Text2.Location(), d.Localization.SrcTerms, d.Localization.DstTerms)
	}
	for _, d := range rep.Structural {
		b.WriteString(d.String() + "\n")
	}
	return b.String()
}

// TestParallelMatchesSequential: the worker-pool engine must produce
// byte-identical output to a fully sequential run, at every pool size.
func TestParallelMatchesSequential(t *testing.T) {
	c1, c2 := syntheticFleetPair(t, 6, 4)
	sequential, err := Diff(c1, c2, Options{Workers: 1, ExhaustiveCommunities: true})
	if err != nil {
		t.Fatal(err)
	}
	want := renderReport(sequential)
	if !strings.Contains(want, "SET LOCAL PREF") {
		t.Fatalf("synthetic pair found no differences:\n%s", want)
	}
	for _, workers := range []int{2, 3, 8, 0} {
		rep, err := Diff(c1, c2, Options{Workers: workers, ExhaustiveCommunities: true})
		if err != nil {
			t.Fatal(err)
		}
		if got := renderReport(rep); got != want {
			t.Errorf("workers=%d diverges from sequential:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestParallelDeterminism: repeated parallel runs are byte-identical.
func TestParallelDeterminism(t *testing.T) {
	c1, c2 := syntheticFleetPair(t, 5, 3)
	run := func() string {
		rep, err := Diff(c1, c2, Options{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		return renderReport(rep)
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("parallel run %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}

// TestChainIdentityCache: the same policy applied to many neighbors is
// checked once — UniquePairs collapses below Pairs.
func TestChainIdentityCache(t *testing.T) {
	c1, c2 := syntheticFleetPair(t, 3, 5)
	rep, err := Diff(c1, c2, Options{Components: []Component{ComponentRouteMaps}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stats) != 1 {
		t.Fatalf("stats entries = %d, want 1", len(rep.Stats))
	}
	st := rep.Stats[0]
	// 3 policies × 5 neighbors × {import, export} = 30 matched pairs, but
	// only 4 unique comparisons: 3 distinct import chains + the shared
	// empty export chain.
	if st.Pairs != 30 {
		t.Errorf("pairs = %d, want 30", st.Pairs)
	}
	if st.UniquePairs != 4 {
		t.Errorf("unique pairs = %d, want 4", st.UniquePairs)
	}
	if st.Workers < 1 {
		t.Errorf("workers = %d", st.Workers)
	}
	if st.BDDNodes == 0 || st.CacheMisses == 0 {
		t.Errorf("BDD stats not recorded: %+v", st)
	}
}

// TestPlusNamedPolicy: a route-map whose name contains '+' must be
// resolved as one policy, not split into nonexistent ones.
func TestPlusNamedPolicy(t *testing.T) {
	text := func(pref int) string {
		return fmt.Sprintf(`hostname r
route-map A+B permit 10
 set local-preference %d
router bgp 65001
 neighbor 10.0.12.2 remote-as 65002
 neighbor 10.0.12.2 route-map A+B in
`, pref)
	}
	c1, err := cisco.Parse("r1.cfg", text(100))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cisco.Parse("r2.cfg", text(200))
	if err != nil {
		t.Fatal(err)
	}
	if c1.RouteMaps["A+B"] == nil {
		t.Skip("parser does not accept '+' in route-map names")
	}
	rep, err := Diff(c1, c2, Options{Components: []Component{ComponentRouteMaps}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RouteMapDiffs) != 1 {
		t.Fatalf("diffs = %d, want 1 (the local-pref difference)", len(rep.RouteMapDiffs))
	}
	d := rep.RouteMapDiffs[0]
	if len(d.Pair.Names1) != 1 || d.Pair.Names1[0] != "A+B" {
		t.Errorf("Names1 = %v, want [A+B]", d.Pair.Names1)
	}
	// Had the chain been round-tripped through the display string, the
	// undefined policies "A" and "B" would resolve to permit-all and the
	// SET LOCAL PREF difference would vanish.
	if !strings.Contains(d.Action1, "SET LOCAL PREF 100") || !strings.Contains(d.Action2, "SET LOCAL PREF 200") {
		t.Errorf("actions = %q / %q", d.Action1, d.Action2)
	}
}

// TestComponentStatsRecorded: every enabled component records a profile.
func TestComponentStatsRecorded(t *testing.T) {
	c1, c2 := syntheticFleetPair(t, 2, 2)
	rep, err := Diff(c1, c2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stats) != len(AllComponents) {
		t.Fatalf("stats entries = %d, want %d", len(rep.Stats), len(AllComponents))
	}
	for i, st := range rep.Stats {
		if st.Component != AllComponents[i] {
			t.Errorf("stats[%d] = %s, want %s (canonical order)", i, st.Component, AllComponents[i])
		}
		if st.Kind != CheckKind(st.Component) {
			t.Errorf("%s kind = %q", st.Component, st.Kind)
		}
		if st.Duration < 0 {
			t.Errorf("%s duration negative", st.Component)
		}
	}
	// The ACL component also runs through the pool and records stats.
	for _, st := range rep.Stats {
		if st.Component == ComponentACLs {
			if st.Pairs != 1 || st.Workers < 1 || st.BDDNodes == 0 {
				t.Errorf("ACL stats = %+v", st)
			}
		}
	}
}
