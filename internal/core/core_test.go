package core

import (
	"strings"
	"testing"

	"repro/internal/cisco"
	"repro/internal/juniper"
)

const ciscoRouter = `hostname cisco_router
!
ip prefix-list NETS permit 10.9.0.0/16 le 32
ip prefix-list NETS permit 10.100.0.0/16 le 32
!
ip community-list standard COMM permit 10:10
ip community-list standard COMM permit 10:11
!
route-map POL deny 10
 match ip address NETS
route-map POL deny 20
 match community COMM
route-map POL permit 30
 set local-preference 30
!
ip route 10.1.1.2 255.255.255.254 10.2.2.2
!
router bgp 65001
 neighbor 10.0.12.2 remote-as 65002
 neighbor 10.0.12.2 route-map POL out
 neighbor 10.0.12.2 send-community
`

const juniperRouter = `system { host-name juniper_router; }
policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    community COMM members [ 10:10 10:11 ];
    policy-statement POL {
        term rule1 { from prefix-list NETS; then reject; }
        term rule2 { from community COMM; then reject; }
        term rule3 { then { local-preference 30; accept; } }
    }
}
routing-options {
    autonomous-system 65001;
}
protocols {
    bgp {
        group peers {
            type external;
            peer-as 65002;
            neighbor 10.0.12.2 {
                export POL;
            }
        }
    }
}
`

func parsePair(t *testing.T) (*Report, error) {
	t.Helper()
	c, err := cisco.Parse("cisco.cfg", ciscoRouter)
	if err != nil {
		t.Fatal(err)
	}
	j, err := juniper.Parse("juniper.cfg", juniperRouter)
	if err != nil {
		t.Fatal(err)
	}
	return Diff(c, j, Options{})
}

func TestFullPairDiff(t *testing.T) {
	rep, err := parsePair(t)
	if err != nil {
		t.Fatal(err)
	}
	// Route maps: the two Figure 1 differences, via the matched
	// bgp-export pair on neighbor 10.0.12.2.
	if len(rep.RouteMapDiffs) != 2 {
		t.Fatalf("route map diffs = %d, want 2", len(rep.RouteMapDiffs))
	}
	for _, d := range rep.RouteMapDiffs {
		if d.Pair.Kind != "bgp-export" || d.Pair.Neighbor != "10.0.12.2" {
			t.Errorf("pair = %+v", d.Pair)
		}
		if d.Pair.Name1 != "POL" || d.Pair.Name2 != "POL" {
			t.Errorf("names = %s %s", d.Pair.Name1, d.Pair.Name2)
		}
	}
	d1 := rep.RouteMapDiffs[0]
	if d1.Action1 != "REJECT" {
		t.Errorf("action1 = %q", d1.Action1)
	}
	if !strings.Contains(d1.Action2, "SET LOCAL PREF 30") || !strings.Contains(d1.Action2, "ACCEPT") {
		t.Errorf("action2 = %q", d1.Action2)
	}
	if !strings.Contains(d1.Text1.Text(), "route-map POL deny 10") {
		t.Errorf("text1 = %q", d1.Text1.Text())
	}
	if !strings.Contains(d1.Text2.Text(), "rule3") {
		t.Errorf("text2 = %q", d1.Text2.Text())
	}

	// Structural: the Table 4 static route plus the send-community BGP
	// property (Cisco has it explicitly; both true → no diff for that
	// field, but check static).
	var staticCount int
	for _, d := range rep.Structural {
		if d.Component == "static-route" {
			staticCount++
		}
	}
	if staticCount != 1 {
		t.Errorf("static route diffs = %d, want 1", staticCount)
	}
}

func TestComponentFiltering(t *testing.T) {
	c, _ := cisco.Parse("cisco.cfg", ciscoRouter)
	j, _ := juniper.Parse("juniper.cfg", juniperRouter)
	rep, err := Diff(c, j, Options{Components: []Component{ComponentStatic}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RouteMapDiffs) != 0 {
		t.Error("route maps should be skipped")
	}
	if len(rep.Structural) == 0 {
		t.Error("static diff should be present")
	}
	for _, d := range rep.Structural {
		if d.Component != "static-route" {
			t.Errorf("unexpected component %s", d.Component)
		}
	}
}

func TestMatchPolicies(t *testing.T) {
	c, _ := cisco.Parse("cisco.cfg", ciscoRouter)
	j, _ := juniper.Parse("juniper.cfg", juniperRouter)
	pairs := MatchPolicies(c, j)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %+v", pairs)
	}
	if pairs[0].Kind != "bgp-import" || pairs[0].Name1 != "(none)" || pairs[0].Name2 != "(none)" {
		t.Errorf("import pair = %+v", pairs[0])
	}
	if pairs[1].Kind != "bgp-export" || pairs[1].Name1 != "POL" || pairs[1].Name2 != "POL" {
		t.Errorf("export pair = %+v", pairs[1])
	}
}

func TestNoBGPFallsBackToNameMatching(t *testing.T) {
	c1, _ := cisco.Parse("a.cfg", `route-map X permit 10
 set local-preference 100
`)
	c2, _ := cisco.Parse("b.cfg", `route-map X permit 10
 set local-preference 200
`)
	rep, err := Diff(c1, c2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RouteMapDiffs) != 1 {
		t.Fatalf("diffs = %d, want 1", len(rep.RouteMapDiffs))
	}
	if rep.RouteMapDiffs[0].Pair.Kind != "route-map" {
		t.Errorf("pair = %+v", rep.RouteMapDiffs[0].Pair)
	}
}

func TestACLMatchingByName(t *testing.T) {
	c1, _ := cisco.Parse("a.cfg", `ip access-list extended EDGE
 permit tcp any any eq 80
ip access-list extended ONLY1
 permit ip any any
`)
	c2, _ := cisco.Parse("b.cfg", `ip access-list extended EDGE
 permit tcp any any eq 80
 permit tcp any any eq 443
`)
	rep, err := Diff(c1, c2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ACLDiffs) != 1 {
		t.Fatalf("acl diffs = %d, want 1", len(rep.ACLDiffs))
	}
	if rep.ACLDiffs[0].Action1 != "REJECT" || rep.ACLDiffs[0].Action2 != "ACCEPT" {
		t.Errorf("actions = %q %q", rep.ACLDiffs[0].Action1, rep.ACLDiffs[0].Action2)
	}
	if len(rep.UnmatchedACLs1) != 1 || rep.UnmatchedACLs1[0] != "ONLY1" {
		t.Errorf("unmatched = %v", rep.UnmatchedACLs1)
	}
}

func TestIdenticalConfigsNoDifferences(t *testing.T) {
	c1, _ := cisco.Parse("a.cfg", ciscoRouter)
	c2, _ := cisco.Parse("b.cfg", ciscoRouter)
	rep, err := Diff(c1, c2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalDifferences() != 0 {
		t.Errorf("identical configs should have no differences, got %d", rep.TotalDifferences())
	}
}

func TestCheckKindTable1(t *testing.T) {
	// Table 1 of the paper: which check applies to which component.
	want := map[Component]string{
		ComponentRouteMaps: "SemanticDiff",
		ComponentACLs:      "SemanticDiff",
		ComponentStatic:    "StructuralDiff",
		ComponentConnected: "StructuralDiff",
		ComponentBGP:       "StructuralDiff",
		ComponentOSPF:      "StructuralDiff",
		ComponentAdmin:     "StructuralDiff",
	}
	for c, k := range want {
		if CheckKind(c) != k {
			t.Errorf("CheckKind(%s) = %s, want %s", c, CheckKind(c), k)
		}
	}
	if len(AllComponents) != len(want) {
		t.Error("AllComponents out of sync")
	}
}

func TestChainHelpers(t *testing.T) {
	if chainName(nil) != "(none)" {
		t.Error("empty chain name")
	}
	if chainName([]string{"A", "B"}) != "A+B" {
		t.Error("chain join")
	}
	p := newPolicyPair("bgp-export", "10.0.0.1", []string{"A", "B"}, nil)
	if p.Name1 != "A+B" || p.Name2 != "(none)" {
		t.Errorf("display names = %q %q", p.Name1, p.Name2)
	}
	if len(p.Names1) != 2 || p.Names1[0] != "A" || p.Names1[1] != "B" || p.Names2 != nil {
		t.Errorf("name sequences = %v %v", p.Names1, p.Names2)
	}
	// Chains are identified by their sequences, never by re-splitting the
	// display string: a policy whose name contains '+' stays one policy.
	plus := newPolicyPair("bgp-import", "10.0.0.1", []string{"A+B"}, []string{"A", "B"})
	if chainKeyOf(plus.Names1, plus.Names2) == chainKeyOf(p.Names1, p.Names1) {
		t.Error("chain keys must distinguish [A+B] from [A, B]")
	}
	if len(plus.Names1) != 1 {
		t.Errorf("Names1 = %v, want the single policy %q", plus.Names1, "A+B")
	}
}

func TestResolveChainMissingPolicy(t *testing.T) {
	c, _ := cisco.Parse("a.cfg", "hostname a\n")
	rm := ResolveChain(c, []string{"NOPE"})
	if rm.DefaultAction.String() != "permit" {
		t.Error("missing policy should be permit-all")
	}
	rm = ResolveChain(c, nil)
	if rm.Name != "(none)" {
		t.Error("empty chain should be the identity policy")
	}
}

func TestExhaustiveCommunities(t *testing.T) {
	c, _ := cisco.Parse("cisco.cfg", ciscoRouter)
	j, _ := juniper.Parse("juniper.cfg", juniperRouter)
	rep, err := Diff(c, j, Options{ExhaustiveCommunities: true})
	if err != nil {
		t.Fatal(err)
	}
	var withTerms int
	for _, d := range rep.RouteMapDiffs {
		if len(d.Localization.CommunityTerms) > 0 {
			withTerms++
			if !d.Localization.CommunityComplete {
				t.Error("small example should localize completely")
			}
		}
	}
	if withTerms == 0 {
		t.Error("exhaustive community terms missing")
	}
	// Off by default.
	rep2, _ := Diff(c, j, Options{})
	for _, d := range rep2.RouteMapDiffs {
		if len(d.Localization.CommunityTerms) != 0 {
			t.Error("community terms should be opt-in")
		}
	}
}

// TestDegradationWithUnsupportedSyntax mirrors the paper's fifth
// Scenario-1 bug: one configuration uses constructs the tool does not
// fully support. Campion must still detect and localize the difference
// (with the unsupported lines surfaced, not silently dropped), even if
// the text is less precise.
func TestDegradationWithUnsupportedSyntax(t *testing.T) {
	c1, _ := cisco.Parse("a.cfg", `route-map X permit 10
 set local-preference 100
 set dampening 15 750 2000 60
`)
	c2, _ := cisco.Parse("b.cfg", `route-map X permit 10
 set local-preference 200
`)
	if len(c1.Unrecognized) != 1 {
		t.Fatalf("unsupported line should be collected: %v", c1.Unrecognized)
	}
	rep, err := Diff(c1, c2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RouteMapDiffs) != 1 {
		t.Fatalf("diff still detected despite unsupported syntax: got %d", len(rep.RouteMapDiffs))
	}
	// The clause text still covers the whole clause, including the
	// unsupported line, so the operator sees everything relevant.
	if !strings.Contains(rep.RouteMapDiffs[0].Text1.Text(), "set dampening") {
		t.Errorf("text1 = %q", rep.RouteMapDiffs[0].Text1.Text())
	}
}

// TestDiffDeterminism: two runs over the same pair must produce
// identically ordered, identically rendered reports (atom universes,
// policy matching, and path enumeration are all order-stable).
func TestDiffDeterminism(t *testing.T) {
	run := func() string {
		c, _ := cisco.Parse("cisco.cfg", ciscoRouter)
		j, _ := juniper.Parse("juniper.cfg", juniperRouter)
		rep, err := Diff(c, j, Options{ExhaustiveCommunities: true})
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, d := range rep.RouteMapDiffs {
			out += d.Pair.String() + "|" + d.Action1 + "|" + d.Action2
			for _, term := range d.Localization.Terms {
				out += "|" + term.String()
			}
			for _, ct := range d.Localization.CommunityTerms {
				out += "|" + ct.String()
			}
			out += "\n"
		}
		for _, d := range rep.Structural {
			out += d.String() + "\n"
		}
		return out
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}

// TestRedistributionPolicyPairing covers Table 1's "Route Maps (BGP,
// Route Redistribution)" row: redistribution policies are matched by
// source protocol and compared semantically.
func TestRedistributionPolicyPairing(t *testing.T) {
	c1, _ := cisco.Parse("a.cfg", `ip prefix-list STATICS permit 10.50.0.0/16 le 24
route-map STATIC-TO-BGP permit 10
 match ip address STATICS
 set metric 100
route-map STATIC-TO-BGP deny 20
router bgp 65001
 neighbor 10.0.12.2 remote-as 65002
 redistribute static route-map STATIC-TO-BGP
`)
	c2, _ := cisco.Parse("b.cfg", `ip prefix-list STATICS permit 10.50.0.0/16 le 24
route-map STATIC-TO-BGP permit 10
 match ip address STATICS
 set metric 200
route-map STATIC-TO-BGP deny 20
router bgp 65001
 neighbor 10.0.12.2 remote-as 65002
 redistribute static route-map STATIC-TO-BGP
`)
	pairs := MatchPolicies(c1, c2)
	var sawRedist bool
	for _, p := range pairs {
		if p.Kind == "redistribution-bgp" && p.Neighbor == "static" {
			sawRedist = true
		}
	}
	if !sawRedist {
		t.Fatalf("redistribution pair missing: %+v", pairs)
	}
	rep, err := Diff(c1, c2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var redistDiffs int
	for _, d := range rep.RouteMapDiffs {
		if d.Pair.Kind == "redistribution-bgp" {
			redistDiffs++
			if !strings.Contains(d.Action1, "SET MED 100") || !strings.Contains(d.Action2, "SET MED 200") {
				t.Errorf("actions = %q / %q", d.Action1, d.Action2)
			}
		}
	}
	if redistDiffs != 1 {
		t.Errorf("redistribution diffs = %d, want 1", redistDiffs)
	}
}

// TestOSPFRedistributionCrossVendor pairs a Cisco "redistribute bgp"
// under OSPF with a Juniper OSPF export policy.
func TestOSPFRedistributionCrossVendor(t *testing.T) {
	c, _ := cisco.Parse("a.cfg", `interface Gi0/0
 ip address 10.0.12.1 255.255.255.0
router ospf 1
 network 10.0.0.0 0.255.255.255 area 0
 redistribute bgp route-map BGP-TO-OSPF
route-map BGP-TO-OSPF permit 10
 set metric 20
route-map BGP-TO-OSPF deny 20
`)
	j, _ := juniper.Parse("b.cfg", `interfaces {
    ge-0/0/0 { unit 0 { family inet { address 10.0.12.2/24; } } }
}
policy-options {
    policy-statement BGP-TO-OSPF {
        term all {
            then { metric 30; accept; }
        }
        term final { then reject; }
    }
}
protocols {
    ospf {
        export BGP-TO-OSPF;
        area 0 { interface ge-0/0/0.0 { metric 1; } }
    }
}
`)
	rep, err := Diff(c, j, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, d := range rep.RouteMapDiffs {
		if d.Pair.Kind == "redistribution-ospf" {
			found = true
		}
	}
	if !found {
		t.Errorf("ospf redistribution diff missing; pairs: %+v", MatchPolicies(c, j))
	}
}
