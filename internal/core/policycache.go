// Cross-pair compiled-policy cache. A DiffAll over N routers runs
// O(N²) pairwise comparisons, and without help each one re-encodes the
// same per-device policies from scratch: the pair (A,B) compiles A's
// export chain, and the pair (A,C) compiles it again. A PolicyCache keys
// compiled chains by (configuration identity, chain name sequence) and
// reuses them across every pair its owner is assigned, which is sound
// exactly when the pairs induce the same encoding — the cache checks
// that with symbolic.VocabFingerprint and rebuilds (recycling the
// factory through Reset) when the vocabulary shifts.
package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/bdd"
	"repro/internal/ir"
	"repro/internal/symbolic"
)

// PolicyCache carries a BDD factory, its route encoding, and the chains
// compiled on it across Diff calls. It is single-goroutine state: one
// cache per worker, never shared. Reports are byte-identical with and
// without a cache — BDDs are canonical given the variable order, so a
// recalled chain is structurally identical to a re-encoded one, and every
// report artifact (AnySat examples, cube walks) depends only on BDD
// structure.
type PolicyCache struct {
	fp    string
	enc   *symbolic.RouteEncoding
	paths map[policyKey]policyEntry

	// ChainHits and ChainMisses count compiled-chain recalls vs
	// compilations; Rebuilds counts vocabulary changes (each one resets
	// the factory and flushes the compiled chains).
	ChainHits, ChainMisses int
	Rebuilds               int
}

// policyKey identifies a compiled chain: the owning configuration (by
// pointer — parsed configs are immutable) and the exact chain name
// sequence.
type policyKey struct {
	cfg   *ir.Config
	chain string
}

type policyEntry struct {
	paths []symbolic.RoutePath
	err   error
}

// NewPolicyCache returns an empty cache. The first encodingFor call
// builds its factory.
func NewPolicyCache() *PolicyCache {
	return &PolicyCache{paths: map[policyKey]policyEntry{}}
}

// newWorkerPolicyCache wraps an already-built encoding in a transient
// cache, so a parallel worker deduplicates chain compilations across the
// tasks it pulls even when no cross-call cache was supplied.
func newWorkerPolicyCache(enc *symbolic.RouteEncoding) *PolicyCache {
	return &PolicyCache{enc: enc, paths: map[policyKey]policyEntry{}}
}

// encodingFor returns an encoding valid for the pair (c1, c2), reusing
// the cached encoding — and every chain compiled on it — when the
// derived vocabulary is identical, and rebuilding into the recycled
// factory otherwise. The factory is armed with the run's interrupt
// (MaxNodes budget + context poll) before any encoding work, whether
// recalled or rebuilt, so even vocabulary atomization honors
// cancellation.
func (pc *PolicyCache) encodingFor(ctx context.Context, c1, c2 *ir.Config, opts Options) *symbolic.RouteEncoding {
	// The chosen variable order is part of the cache identity: a cached
	// encoding built under one order must not serve a run that chose
	// another. With Options.Reorder the search reruns every Diff call, so
	// a workload drift that flips the winner lands here as a rebuild —
	// that rebuild is the "dynamic reordering" of long-lived factories.
	fp := symbolic.VocabFingerprint(c1, c2) + orderKey(opts.routeOrder)
	if pc.enc != nil && pc.fp == fp {
		pc.enc.F.SetInterrupt(opts.MaxNodes, func() error { return ctxErr(ctx) })
		return pc.enc
	}
	var f *bdd.Factory
	if pc.enc != nil {
		// Recycle the cache's own factory (Reset inside the constructor
		// keeps its allocations).
		f = pc.enc.F
		f.SetInterrupt(opts.MaxNodes, func() error { return ctxErr(ctx) })
	} else {
		f = newArmedFactory(ctx, opts)
	}
	pc.enc = symbolic.NewRouteEncodingIntoOrdered(f, opts.routeOrder, c1, c2)
	pc.fp = fp
	clear(pc.paths)
	pc.Rebuilds++
	return pc.enc
}

// orderKey renders a variable order for fingerprinting (nil — the
// default layout — is the empty string).
func orderKey(order []int) string {
	if order == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('\x02')
	for _, v := range order {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// gcNodeThreshold is the arena size (in nodes) past which an enabled
// collection actually runs. Below it a sweep would save little and cost
// a full mark pass; above it the arena is dominated by dead product
// intermediates from completed comparisons. A var so tests can lower it.
var gcNodeThreshold = 1 << 17

// maybeGC collects the cache factory's unique table if the arena has
// outgrown the threshold. Roots are the encoding's own state (WellFormed
// plus all memo tables) and every compiled chain's path guards; the
// guards are reseated in place, so recalled chains stay valid. Callers
// must not hold any other node from this factory across the call.
func (pc *PolicyCache) maybeGC() {
	if pc.enc == nil || pc.enc.F.Stats().Nodes < gcNodeThreshold {
		return
	}
	var extra []bdd.Node
	var slots []func(bdd.Node)
	for k := range pc.paths {
		e := pc.paths[k]
		for j := range e.paths {
			paths, j := e.paths, j
			extra = append(extra, paths[j].Guard)
			slots = append(slots, func(n bdd.Node) { paths[j].Guard = n })
		}
	}
	for i, n := range pc.enc.GC(extra) {
		slots[i](n)
	}
}

// invalidate flushes the compiled chains and forces the next encodingFor
// to rebuild the encoding. Called after a budget abort (the arena holds
// unreferenced garbage from the abandoned computation) or a recovered
// crash (the symbolic state is unverified); the factory allocation is
// still recycled through the rebuild's Reset.
func (pc *PolicyCache) invalidate() {
	pc.fp = ""
	clear(pc.paths)
}

// pathsFor compiles (or recalls) the path equivalence classes of the
// resolved chain names on cfg.
func (pc *PolicyCache) pathsFor(cfg *ir.Config, names []string) ([]symbolic.RoutePath, error) {
	k := policyKey{cfg: cfg, chain: strings.Join(names, "\x00")}
	if e, ok := pc.paths[k]; ok {
		pc.ChainHits++
		return e.paths, e.err
	}
	pc.ChainMisses++
	paths, err := pc.enc.EnumeratePaths(cfg, ResolveChain(cfg, names))
	pc.paths[k] = policyEntry{paths: paths, err: err}
	return paths, err
}
