// Cross-pair compiled-policy cache. A DiffAll over N routers runs
// O(N²) pairwise comparisons, and without help each one re-encodes the
// same per-device policies from scratch: the pair (A,B) compiles A's
// export chain, and the pair (A,C) compiles it again. A PolicyCache keys
// compiled chains by (configuration identity, chain name sequence) and
// reuses them across every pair its owner is assigned, which is sound
// exactly when the pairs induce the same encoding — the cache checks
// that with symbolic.VocabFingerprint and rebuilds (recycling the
// factory through Reset) when the vocabulary shifts.
package core

import (
	"context"
	"strings"

	"repro/internal/bdd"
	"repro/internal/ir"
	"repro/internal/symbolic"
)

// PolicyCache carries a BDD factory, its route encoding, and the chains
// compiled on it across Diff calls. It is single-goroutine state: one
// cache per worker, never shared. Reports are byte-identical with and
// without a cache — BDDs are canonical given the variable order, so a
// recalled chain is structurally identical to a re-encoded one, and every
// report artifact (AnySat examples, cube walks) depends only on BDD
// structure.
type PolicyCache struct {
	fp    string
	enc   *symbolic.RouteEncoding
	paths map[policyKey]policyEntry

	// ChainHits and ChainMisses count compiled-chain recalls vs
	// compilations; Rebuilds counts vocabulary changes (each one resets
	// the factory and flushes the compiled chains).
	ChainHits, ChainMisses int
	Rebuilds               int
}

// policyKey identifies a compiled chain: the owning configuration (by
// pointer — parsed configs are immutable) and the exact chain name
// sequence.
type policyKey struct {
	cfg   *ir.Config
	chain string
}

type policyEntry struct {
	paths []symbolic.RoutePath
	err   error
}

// NewPolicyCache returns an empty cache. The first encodingFor call
// builds its factory.
func NewPolicyCache() *PolicyCache {
	return &PolicyCache{paths: map[policyKey]policyEntry{}}
}

// newWorkerPolicyCache wraps an already-built encoding in a transient
// cache, so a parallel worker deduplicates chain compilations across the
// tasks it pulls even when no cross-call cache was supplied.
func newWorkerPolicyCache(enc *symbolic.RouteEncoding) *PolicyCache {
	return &PolicyCache{enc: enc, paths: map[policyKey]policyEntry{}}
}

// encodingFor returns an encoding valid for the pair (c1, c2), reusing
// the cached encoding — and every chain compiled on it — when the
// derived vocabulary is identical, and rebuilding into the recycled
// factory otherwise. The factory is armed with the run's interrupt
// (MaxNodes budget + context poll) before any encoding work, whether
// recalled or rebuilt, so even vocabulary atomization honors
// cancellation.
func (pc *PolicyCache) encodingFor(ctx context.Context, c1, c2 *ir.Config, opts Options) *symbolic.RouteEncoding {
	fp := symbolic.VocabFingerprint(c1, c2)
	if pc.enc != nil && pc.fp == fp {
		pc.enc.F.SetInterrupt(opts.MaxNodes, func() error { return ctxErr(ctx) })
		return pc.enc
	}
	var f *bdd.Factory
	if pc.enc != nil {
		// Recycle the cache's own factory (Reset inside the constructor
		// keeps its allocations).
		f = pc.enc.F
		f.SetInterrupt(opts.MaxNodes, func() error { return ctxErr(ctx) })
	} else {
		f = newArmedFactory(ctx, opts)
	}
	pc.enc = symbolic.NewRouteEncodingInto(f, c1, c2)
	pc.fp = fp
	clear(pc.paths)
	pc.Rebuilds++
	return pc.enc
}

// invalidate flushes the compiled chains and forces the next encodingFor
// to rebuild the encoding. Called after a budget abort (the arena holds
// unreferenced garbage from the abandoned computation) or a recovered
// crash (the symbolic state is unverified); the factory allocation is
// still recycled through the rebuild's Reset.
func (pc *PolicyCache) invalidate() {
	pc.fp = ""
	clear(pc.paths)
}

// pathsFor compiles (or recalls) the path equivalence classes of the
// resolved chain names on cfg.
func (pc *PolicyCache) pathsFor(cfg *ir.Config, names []string) ([]symbolic.RoutePath, error) {
	k := policyKey{cfg: cfg, chain: strings.Join(names, "\x00")}
	if e, ok := pc.paths[k]; ok {
		pc.ChainHits++
		return e.paths, e.err
	}
	pc.ChainMisses++
	paths, err := pc.enc.EnumeratePaths(cfg, ResolveChain(cfg, names))
	pc.paths[k] = policyEntry{paths: paths, err: err}
	return paths, err
}
