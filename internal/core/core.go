// Package core implements Campion's top-level ConfigDiff algorithm (§3):
// corresponding configuration components of two routers are paired up by
// the MatchPolicies heuristics (§4), each pair is dispatched to
// SemanticDiff or StructuralDiff per the paper's Table 1, and every
// difference is localized — headers via HeaderLocalize, text via the
// source spans the parsers preserved.
package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/bdd"
	"repro/internal/headerloc"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/semdiff"
	"repro/internal/structdiff"
	"repro/internal/symbolic"
)

// Component selects which checks Diff runs.
type Component string

// The comparable components, mirroring Table 1 of the paper.
const (
	ComponentRouteMaps Component = "route-maps" // SemanticDiff
	ComponentACLs      Component = "acls"       // SemanticDiff
	ComponentStatic    Component = "static"     // StructuralDiff
	ComponentConnected Component = "connected"  // StructuralDiff
	ComponentBGP       Component = "bgp"        // StructuralDiff
	ComponentOSPF      Component = "ospf"       // StructuralDiff
	ComponentAdmin     Component = "admin"      // StructuralDiff
)

// AllComponents lists every component in canonical order.
var AllComponents = []Component{
	ComponentRouteMaps, ComponentACLs, ComponentStatic, ComponentConnected,
	ComponentBGP, ComponentOSPF, ComponentAdmin,
}

// CheckKind names the analysis used for a component (Table 1).
func CheckKind(c Component) string {
	switch c {
	case ComponentRouteMaps, ComponentACLs:
		return "SemanticDiff"
	default:
		return "StructuralDiff"
	}
}

// Options configures a Diff run.
type Options struct {
	// Components restricts the checks; empty means all.
	Components []Component
	// ExhaustiveCommunities additionally localizes the community
	// dimension of every route-map difference completely (the §4
	// HeaderLocalize extension), instead of the default single example.
	ExhaustiveCommunities bool
	// Workers bounds the concurrency of the semantic checks: route-map
	// chain comparisons and ACL pairs fan out over a worker pool, each
	// worker owning a private BDD factory. 0 means one worker per CPU;
	// 1 runs fully sequentially. Output is identical either way.
	Workers int
	// PolicyCache, when non-nil and Workers is 1, carries compiled
	// route-map chains (and the BDD factory they live on) across Diff
	// calls, so batch drivers comparing many pairs of the same devices
	// skip re-encoding unchanged policies. The cache is single-goroutine
	// state: never share one across concurrent Diff calls. Reports are
	// byte-identical with and without it.
	PolicyCache *PolicyCache
	// Tracer, when non-nil, records a span tree of the run: the diff,
	// each component check, each worker, and each chain-pair comparison.
	// Disabled tracing (nil) costs one branch per span site — spans are
	// opened at task granularity, never per BDD operation.
	Tracer *obs.Tracer
	// TraceParent nests this Diff's spans under an existing span (the
	// batch engine points it at the pair's span). With a nil TraceParent
	// and a non-nil Tracer, Diff opens a root span.
	TraceParent *obs.Span
	// Metrics, when non-nil, receives the run's counters and histograms:
	// BDD node allocations and op-cache hits, policy-cache recalls per
	// vocabulary fingerprint, encoding memo hits, worker queue-wait vs
	// compute time, and per-component latency. All instruments are
	// atomics resolved once per component, so the enabled path stays off
	// the BDD hot loops and the disabled path is a nil check.
	Metrics *obs.Registry
	// Reorder enables the static variable-order search: before the
	// route-map component runs, a small family of block permutations is
	// scored by compiling a clause sample and counting nodes, and the
	// winning order (if any beats the default layout) is applied to every
	// factory the component builds. Reports are byte-identical across
	// orders — candidates preserve intra-block variable order and witness
	// extraction is order-canonical. With a cross-call PolicyCache the
	// search reruns each Diff call and a changed winner forces a cache
	// rebuild, so long-lived factories re-evaluate their order as the
	// workload drifts (rebuild-based dynamic reordering).
	Reorder bool
	// GC enables unique-table garbage collection on long-lived factories:
	// after each Diff call's route-map tasks, a cross-call PolicyCache
	// whose arena exceeds a threshold is mark-swept down to its live
	// encoding, memo tables, and compiled chains. Product intermediates
	// and dead path guards from earlier pairs are reclaimed, keeping batch
	// (DiffAll) memory flat instead of monotone. No effect on reports.
	GC bool
	// routeOrder carries the order chosen by the Reorder search to every
	// encoding constructor of the route-map component (internal plumbing;
	// nil means the default layout).
	routeOrder []int
	// MaxNodes bounds the BDD nodes one semantic task (a route-map chain
	// comparison, an ACL pair, or the shared encoding construction) may
	// allocate before it is aborted with an ErrBudget PairError — the
	// guard against BDD state explosion on pathological policies. The
	// abort is per comparison: sibling tasks and sibling batch pairs
	// complete normally. 0 means unlimited. The bound is a ceiling per
	// unit of work, not an exact cross-configuration invariant:
	// hash-consing lets a task reuse nodes built by earlier tasks on the
	// same worker, so set it with an order-of-magnitude margin.
	MaxNodes int
	// Timeout, when positive, caps the wall time of this one Diff call by
	// deriving a deadline context — convenient per-pair protection for
	// batch drivers whose outer context spans the whole run. Expiry
	// surfaces as an ErrCanceled PairError wrapping
	// context.DeadlineExceeded.
	Timeout time.Duration
	// Journal, when non-nil, receives flight-recorder events: one
	// component event per enabled check (duration, BDD node delta). The
	// batch and fleet drivers emit the surrounding pair/phase/run events.
	// Like Tracer and Metrics, nil costs one branch per site.
	Journal *obs.Journal
	// JournalPair labels this Diff's journal events with the pair name
	// (set by the batch driver; empty for standalone Diff calls).
	JournalPair string
}

// diffSpan opens the top-level span of one Diff call (nil when tracing
// is off).
func (o Options) diffSpan(c1, c2 *ir.Config) *obs.Span {
	attrs := func() []obs.Attr {
		return []obs.Attr{obs.Str("host1", c1.Hostname), obs.Str("host2", c2.Hostname)}
	}
	if o.TraceParent != nil {
		return o.TraceParent.Child("diff", attrs()...)
	}
	if o.Tracer != nil {
		return o.Tracer.Root("diff", attrs()...)
	}
	return nil
}

// Stable metric names. DESIGN.md's Observability section documents their
// semantics; tests and dashboards rely on them, so treat them as API.
const (
	MetricBDDNodes          = "campion_bdd_nodes_allocated_total"
	MetricBDDCacheHits      = "campion_bdd_op_cache_hits_total"
	MetricBDDCacheMisses    = "campion_bdd_op_cache_misses_total"
	MetricEncodingMemoHits  = "campion_encoding_memo_hits_total"
	MetricEncodingMemoMiss  = "campion_encoding_memo_misses_total"
	MetricPolicyChainHits   = "campion_policy_cache_chain_hits_total"
	MetricPolicyChainMisses = "campion_policy_cache_chain_misses_total"
	MetricPolicyRebuilds    = "campion_policy_cache_rebuilds_total"
	MetricWorkerBusy        = "campion_worker_busy_nanoseconds_total"
	MetricWorkerWait        = "campion_worker_wait_nanoseconds_total"
	MetricComponentLatency  = "campion_component_duration_nanoseconds"
	MetricDiffsFound        = "campion_diffs_total"
	MetricBDDLiveNodes      = "campion_bdd_live_nodes"
	MetricGCRuns            = "campion_bdd_gc_runs_total"
	MetricGCReclaimed       = "campion_bdd_gc_reclaimed_nodes_total"
	MetricReorderPasses     = "campion_reorder_passes_total"
	MetricReorderNodeDelta  = "campion_reorder_node_delta"
	MetricIntraPairStripes  = "campion_intra_pair_stripes_total"
)

// recordComponent flushes one component's profile into the registry.
func (o Options) recordComponent(st ComponentStats) {
	m := o.Metrics
	if m == nil {
		return
	}
	comp := obs.L("component", string(st.Component))
	m.Histogram(MetricComponentLatency, "wall time of one component check", comp).
		Observe(int64(st.Duration))
	if st.Kind != "SemanticDiff" {
		return
	}
	m.Counter(MetricBDDNodes, "BDD nodes allocated across all factories", comp).
		Add(uint64(st.BDDNodes))
	m.Counter(MetricBDDCacheHits, "BDD op-cache hits", comp).Add(st.CacheHits)
	m.Counter(MetricBDDCacheMisses, "BDD op-cache misses", comp).Add(st.CacheMisses)
}

// recordMemo flushes an encoding's memo-table counters into the registry.
func (o Options) recordMemo(ms symbolic.MemoStats) {
	m := o.Metrics
	if m == nil {
		return
	}
	m.Counter(MetricEncodingMemoHits, "route-encoding memo recalls", obs.L("kind", "range")).
		Add(uint64(ms.RangeHits))
	m.Counter(MetricEncodingMemoMiss, "route-encoding memo builds", obs.L("kind", "range")).
		Add(uint64(ms.RangeMisses))
	m.Counter(MetricEncodingMemoHits, "route-encoding memo recalls", obs.L("kind", "list")).
		Add(uint64(ms.ListHits))
	m.Counter(MetricEncodingMemoMiss, "route-encoding memo builds", obs.L("kind", "list")).
		Add(uint64(ms.ListMisses))
}

// recordPolicyCache flushes compiled-chain cache deltas, labeled by the
// (hashed) vocabulary fingerprint so misbehaving device groups — the ones
// forcing rebuilds or missing constantly — are identifiable on /metrics.
func (o Options) recordPolicyCache(fp string, hits, misses, rebuilds int) {
	m := o.Metrics
	if m == nil || (hits == 0 && misses == 0 && rebuilds == 0) {
		return
	}
	l := obs.L("fingerprint", fpLabel(fp))
	m.Counter(MetricPolicyChainHits, "compiled-chain recalls from a policy cache", l).
		Add(uint64(hits))
	m.Counter(MetricPolicyChainMisses, "compiled-chain compilations", l).
		Add(uint64(misses))
	if rebuilds > 0 {
		m.Counter(MetricPolicyRebuilds, "policy-cache encoding rebuilds (vocabulary changed)", l).
			Add(uint64(rebuilds))
	}
}

// recordGC flushes a unique-table collection profile: how many
// collections ran, how many nodes they reclaimed, and the live arena
// size left behind (a gauge — the number batch drivers watch for
// flatness).
func (o Options) recordGC(component string, runs, reclaimed uint64, liveNodes int) {
	m := o.Metrics
	if m == nil {
		return
	}
	comp := obs.L("component", component)
	m.Gauge(MetricBDDLiveNodes, "live BDD nodes on the long-lived factory after GC", comp).
		Set(int64(liveNodes))
	if runs == 0 {
		return
	}
	m.Counter(MetricGCRuns, "unique-table garbage collections", comp).Add(runs)
	m.Counter(MetricGCReclaimed, "BDD nodes reclaimed by unique-table GC", comp).Add(reclaimed)
}

// recordReorder flushes one variable-order search: a pass counter split
// by whether an alternative order won, and the node savings the winner
// showed on the scoring sample.
func (o Options) recordReorder(identityNodes, bestNodes int, won bool) {
	m := o.Metrics
	if m == nil {
		return
	}
	outcome := "identity"
	if won {
		outcome = "reordered"
	}
	m.Counter(MetricReorderPasses, "variable-order searches run", obs.L("outcome", outcome)).Add(1)
	m.Histogram(MetricReorderNodeDelta, "sample-node savings of the winning order").
		Observe(int64(identityNodes - bestNodes))
}

// recordStripes counts one intra-pair striped comparison at its stripe
// width.
func (o Options) recordStripes(component string, stripes int) {
	m := o.Metrics
	if m == nil {
		return
	}
	m.Counter(MetricIntraPairStripes, "stripes launched by intra-pair parallel diffs",
		obs.L("component", component)).Add(uint64(stripes))
}

// recordWorker flushes one worker's queue-wait vs compute split.
func (o Options) recordWorker(pool string, wait, busy time.Duration) {
	m := o.Metrics
	if m == nil {
		return
	}
	l := obs.L("pool", pool)
	m.Counter(MetricWorkerWait, "time workers spent blocked on the job queue", l).
		Add(uint64(wait))
	m.Counter(MetricWorkerBusy, "time workers spent computing", l).
		Add(uint64(busy))
}

// fpLabel digests a vocabulary fingerprint (an unbounded binary string)
// into a short stable hex label.
func fpLabel(fp string) string {
	if fp == "" {
		return "(worker)"
	}
	h := fnv.New64a()
	h.Write([]byte(fp))
	return fmt.Sprintf("%016x", h.Sum64())
}

func (o Options) enabled(c Component) bool {
	if len(o.Components) == 0 {
		return true
	}
	for _, x := range o.Components {
		if x == c {
			return true
		}
	}
	return false
}

// PolicyPair identifies a matched pair of routing policies.
type PolicyPair struct {
	// Kind is "bgp-import", "bgp-export", or "redistribution".
	Kind string
	// Neighbor is the shared peer address (bgp kinds) or the source
	// protocol (redistribution).
	Neighbor string
	// Names1 and Names2 are the policy-chain name sequences on each
	// router; empty when a side applies no policy. They identify the
	// chains exactly — policy names may contain any character, so the
	// sequences are never round-tripped through a joined string.
	Names1, Names2 []string
	// Name1 and Name2 render the chains for display: "(none)" for an
	// empty chain, "A+B" for a JunOS policy chain.
	Name1, Name2 string
}

// newPolicyPair builds a pair with both the identifying sequences and
// their display forms.
func newPolicyPair(kind, neighbor string, names1, names2 []string) PolicyPair {
	return PolicyPair{
		Kind: kind, Neighbor: neighbor,
		Names1: names1, Names2: names2,
		Name1: chainName(names1), Name2: chainName(names2),
	}
}

// String renders the pair as "kind neighbor: chain1 vs chain2".
func (p PolicyPair) String() string {
	return fmt.Sprintf("%s %s: %s vs %s", p.Kind, p.Neighbor, p.Name1, p.Name2)
}

// RouteMapDiff is one localized behavioral difference between a matched
// pair of routing policies.
type RouteMapDiff struct {
	Pair PolicyPair
	// Localization carries the included/excluded prefix ranges and the
	// single-example fields.
	Localization headerloc.RouteLocalization
	// Action1/Action2 render each router's disposition (REJECT, ACCEPT,
	// ACCEPT + sets).
	Action1, Action2 string
	// Text1/Text2 are the responsible configuration lines.
	Text1, Text2 ir.TextSpan
}

// ACLPairDiff is one localized behavioral difference between a matched
// pair of ACLs.
type ACLPairDiff struct {
	Name1, Name2     string
	Localization     headerloc.ACLLocalization
	Action1, Action2 string
	Text1, Text2     ir.TextSpan
}

// ComponentStats profiles one component check of a Diff run, so speedups
// from the parallel engine are measurable per component.
type ComponentStats struct {
	Component Component
	// Kind is the analysis used (Table 1): SemanticDiff or StructuralDiff.
	Kind string
	// Duration is the component's wall time.
	Duration time.Duration
	// Workers is the pool size used (semantic components only).
	Workers int
	// Pairs counts the matched pairs dispatched; UniquePairs counts the
	// distinct comparisons left after chain-identity deduplication.
	Pairs, UniquePairs int
	// BDDNodes sums the nodes allocated by this component's factories
	// during this Diff call; CacheHits and CacheMisses sum their op-cache
	// counters over the same interval. When a factory outlives the call
	// (a cross-pair PolicyCache), the numbers are deltas against its
	// state at entry, so per-pair stats never double-count earlier pairs.
	BDDNodes               int
	CacheHits, CacheMisses uint64
	// PolicyCacheHits counts route-map chains recalled from a policy
	// cache (cross-pair or per-worker transient) instead of recompiled.
	PolicyCacheHits int
	// GCRuns and GCReclaimed count unique-table collections (and the
	// nodes they freed) on this component's long-lived factory during
	// this call (Options.GC).
	GCRuns, GCReclaimed uint64
	// Stripes is the intra-pair stripe width used when a single oversized
	// comparison was partitioned across workers; 0 when unstriped.
	Stripes int
}

// Report is the full result of comparing two router configurations.
type Report struct {
	Config1, Config2 *ir.Config

	RouteMapDiffs []RouteMapDiff
	ACLDiffs      []ACLPairDiff
	Structural    []structdiff.Difference

	// UnmatchedACLs lists ACL names present on exactly one router.
	UnmatchedACLs1, UnmatchedACLs2 []string

	// Stats profiles each component check that ran. It is execution
	// metadata (wall times vary run to run) and is excluded from the
	// rendered difference tables and JSON, which stay deterministic.
	Stats []ComponentStats
}

// TotalDifferences counts every reported difference.
func (r *Report) TotalDifferences() int {
	return len(r.RouteMapDiffs) + len(r.ACLDiffs) + len(r.Structural) +
		len(r.UnmatchedACLs1) + len(r.UnmatchedACLs2)
}

// Diff runs Campion's full comparison of two router configurations.
// It is DiffContext without cancellation.
func Diff(c1, c2 *ir.Config, opts Options) (*Report, error) {
	return DiffContext(context.Background(), c1, c2, opts)
}

// DiffContext runs Campion's full comparison of two router
// configurations under a context. Cancellation and deadline expiry are
// honored between components, between semantic tasks, and — via the BDD
// factory interrupt — inside the symbolic kernels themselves, with
// microseconds of latency; the call then returns an ErrCanceled
// PairError. Options.Timeout derives a per-call deadline;
// Options.MaxNodes bounds each semantic task's BDD allocation
// (ErrBudget). A nil ctx means context.Background().
func DiffContext(ctx context.Context, c1, c2 *ir.Config, opts Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	rep := &Report{Config1: c1, Config2: c2}
	dsp := opts.diffSpan(c1, c2)
	defer dsp.End()

	// timed runs one enabled component check and records its profile,
	// both into the report and (when enabled) the tracer and registry.
	// A context already done skips the component and surfaces the
	// cancellation instead.
	timed := func(c Component, fn func(st *ComponentStats, sp *obs.Span) error) error {
		if !opts.enabled(c) {
			return nil
		}
		if err := ctxErr(ctx); err != nil {
			return &PairError{Pair: string(c), Kind: ErrCanceled, Err: err}
		}
		st := ComponentStats{Component: c, Kind: CheckKind(c)}
		var sp *obs.Span
		if dsp != nil {
			sp = dsp.Child(string(c), obs.Str("kind", st.Kind))
		}
		start := time.Now()
		err := fn(&st, sp)
		st.Duration = time.Since(start)
		if sp != nil {
			sp.SetAttrs(obs.Int("pairs", st.Pairs), obs.Int("uniquePairs", st.UniquePairs),
				obs.Int("bddNodes", st.BDDNodes), obs.Int("policyCacheHits", st.PolicyCacheHits))
			sp.End()
		}
		opts.recordComponent(st)
		opts.Journal.Emit(obs.Event{
			Type:      obs.EvComponent,
			Pair:      opts.JournalPair,
			Component: string(c),
			Kind:      st.Kind,
			Dur:       int64(st.Duration),
			Nodes:     int64(st.BDDNodes),
		})
		rep.Stats = append(rep.Stats, st)
		return err
	}
	structural := func(fn func() []structdiff.Difference) func(*ComponentStats, *obs.Span) error {
		return func(st *ComponentStats, _ *obs.Span) error {
			rep.Structural = append(rep.Structural, fn()...)
			return nil
		}
	}

	checks := []struct {
		c  Component
		fn func(st *ComponentStats, sp *obs.Span) error
	}{
		{ComponentRouteMaps, func(st *ComponentStats, sp *obs.Span) error {
			return diffRouteMaps(ctx, rep, c1, c2, opts, st, sp)
		}},
		{ComponentACLs, func(st *ComponentStats, sp *obs.Span) error {
			return diffACLs(ctx, rep, c1, c2, opts, st, sp)
		}},
		{ComponentStatic, structural(func() []structdiff.Difference {
			return structdiff.DiffStaticRoutes(c1, c2)
		})},
		{ComponentConnected, structural(func() []structdiff.Difference {
			return structdiff.DiffConnectedRoutes(c1, c2)
		})},
		{ComponentBGP, structural(func() []structdiff.Difference {
			return append(structdiff.DiffBGPConfig(c1, c2), structdiff.DiffBGPNeighbors(c1, c2)...)
		})},
		{ComponentOSPF, structural(func() []structdiff.Difference {
			return structdiff.DiffOSPF(c1, c2)
		})},
		{ComponentAdmin, structural(func() []structdiff.Difference {
			return structdiff.DiffAdminDistances(c1, c2)
		})},
	}
	for _, check := range checks {
		if err := timed(check.c, check.fn); err != nil {
			return nil, err
		}
	}
	if opts.Metrics != nil {
		opts.Metrics.Counter(MetricDiffsFound, "localized differences reported").
			Add(uint64(rep.TotalDifferences()))
	}
	return rep, nil
}

// MatchPolicies pairs up the routing policies of the two configurations
// using the paper's heuristics: BGP policies are matched per shared
// neighbor address and direction; redistribution policies per source
// protocol.
func MatchPolicies(c1, c2 *ir.Config) []PolicyPair {
	var pairs []PolicyPair
	if c1.BGP != nil && c2.BGP != nil {
		for _, addr := range c1.BGP.NeighborAddrs() {
			n1 := c1.BGP.Neighbors[addr]
			n2 := c2.BGP.Neighbors[addr]
			if n2 == nil {
				continue // presence handled by StructuralDiff
			}
			pairs = append(pairs,
				newPolicyPair("bgp-import", addr, n1.ImportPolicies, n2.ImportPolicies),
				newPolicyPair("bgp-export", addr, n1.ExportPolicies, n2.ExportPolicies),
			)
		}
	}
	// Redistribution policies, paired by target process + source protocol.
	redistPairs := func(kind string, r1, r2 []ir.Redistribution) {
		byProto := func(rs []ir.Redistribution) map[ir.Protocol]ir.Redistribution {
			m := map[ir.Protocol]ir.Redistribution{}
			for _, r := range rs {
				m[r.From] = r
			}
			return m
		}
		m1, m2 := byProto(r1), byProto(r2)
		var protos []int
		for p := range m1 {
			protos = append(protos, int(p))
		}
		sort.Ints(protos)
		for _, pi := range protos {
			p := ir.Protocol(pi)
			if r2, ok := m2[p]; ok {
				r1 := m1[p]
				pairs = append(pairs, newPolicyPair(kind, p.String(),
					sliceIfNonEmpty(r1.RouteMap), sliceIfNonEmpty(r2.RouteMap)))
			}
		}
	}
	if c1.BGP != nil && c2.BGP != nil {
		redistPairs("redistribution-bgp", c1.BGP.Redistribute, c2.BGP.Redistribute)
	}
	if c1.OSPF != nil && c2.OSPF != nil {
		redistPairs("redistribution-ospf", c1.OSPF.Redistribute, c2.OSPF.Redistribute)
	}
	return pairs
}

func sliceIfNonEmpty(s string) []string {
	if s == "" {
		return nil
	}
	return []string{s}
}

func chainName(names []string) string {
	if len(names) == 0 {
		return "(none)"
	}
	out := names[0]
	for _, n := range names[1:] {
		out += "+" + n
	}
	return out
}

// ResolveChain turns a policy chain into a single route map: an empty
// chain is the identity policy (accept everything unchanged); a JunOS
// chain concatenates the policies' terms with the protocol's
// default-accept at the end; an IOS chain is its single route map.
func ResolveChain(cfg *ir.Config, names []string) *ir.RouteMap {
	if len(names) == 0 {
		return &ir.RouteMap{Name: "(none)", DefaultAction: ir.Permit}
	}
	if len(names) == 1 {
		if rm := cfg.RouteMaps[names[0]]; rm != nil {
			return rm
		}
		// A referenced but undefined policy: IOS treats it as permit-all.
		return &ir.RouteMap{Name: names[0], DefaultAction: ir.Permit}
	}
	merged := &ir.RouteMap{Name: chainName(names), DefaultAction: ir.Permit}
	for _, n := range names {
		rm := cfg.RouteMaps[n]
		if rm == nil {
			continue
		}
		merged.Clauses = append(merged.Clauses, rm.Clauses...)
		merged.Span = merged.Span.Merge(rm.Span)
		merged.DefaultAction = rm.DefaultAction
	}
	return merged
}

// maxCommunityTerms bounds exhaustive community localization output.
const maxCommunityTerms = 64

// diffRouteMaps runs the SemanticDiff of every matched policy pair over
// the parallel engine and assembles the localized differences in matched
// order. The first failed task's structured error aborts the pair (the
// batch layer isolates it from sibling pairs).
func diffRouteMaps(ctx context.Context, rep *Report, c1, c2 *ir.Config, opts Options, stats *ComponentStats, span *obs.Span) error {
	pairs := MatchPolicies(c1, c2)
	if len(pairs) == 0 {
		// No BGP context: compare same-named route maps directly, so
		// standalone policy files can still be checked.
		names := map[string]bool{}
		for n := range c1.RouteMaps {
			if _, ok := c2.RouteMaps[n]; ok {
				names[n] = true
			}
		}
		var sorted []string
		for n := range names {
			sorted = append(sorted, n)
		}
		sort.Strings(sorted)
		for _, n := range sorted {
			pairs = append(pairs, newPolicyPair("route-map", n, []string{n}, []string{n}))
		}
	}
	if len(pairs) == 0 {
		return nil
	}

	// Cross-pair result cache keyed by resolved chain identity: the same
	// export policy applied to many neighbors becomes one task, checked
	// once — concurrently with the other unique tasks.
	taskIndex := map[string]int{}
	var tasks []rmTask
	pairTask := make([]int, len(pairs))
	for i, pair := range pairs {
		k := chainKeyOf(pair.Names1, pair.Names2)
		ti, ok := taskIndex[k]
		if !ok {
			ti = len(tasks)
			taskIndex[k] = ti
			tasks = append(tasks, rmTask{names1: pair.Names1, names2: pair.Names2})
		}
		pairTask[i] = ti
	}
	stats.Pairs = len(pairs)
	stats.UniquePairs = len(tasks)

	if opts.Reorder {
		// Static order search: score a handful of block permutations on a
		// clause sample and thread the winner to every factory below. The
		// search runs under the same fault guard as encoding construction
		// — a pathological vocabulary aborts the component, not the
		// process.
		var searchErr error
		func() {
			defer func() {
				if r := recover(); r != nil {
					searchErr = buildFailure(r, c1)
				}
			}()
			order, idN, bestN := symbolic.ChooseRouteOrder(c1, c2)
			opts.routeOrder = order
			opts.recordReorder(idN, bestN, order != nil)
		}()
		if searchErr != nil {
			return searchErr
		}
	}

	results := runRouteMapTasks(ctx, c1, c2, tasks, opts, stats, span)

	// Deterministic assembly: walk the pairs in matched order and splice
	// in each one's task results, whatever order the workers finished in.
	// A task error surfaces at its first referencing pair, exactly where
	// a sequential run would have stopped.
	for i, pair := range pairs {
		res := results[pairTask[i]]
		if res.err != nil {
			return res.err
		}
		for _, d := range res.diffs {
			rep.RouteMapDiffs = append(rep.RouteMapDiffs, RouteMapDiff{
				Pair:         pair,
				Localization: d.Localization,
				Action1:      d.Action1,
				Action2:      d.Action2,
				Text1:        d.Text1,
				Text2:        d.Text2,
			})
		}
	}
	// Avoid re-reporting shared policies per neighbor: collapse exact
	// duplicates (same pair names and same localization text).
	rep.RouteMapDiffs = dedupeRouteMapDiffs(rep.RouteMapDiffs)
	return nil
}

func dedupeRouteMapDiffs(ds []RouteMapDiff) []RouteMapDiff {
	seen := map[string]bool{}
	var out []RouteMapDiff
	for _, d := range ds {
		k := d.Pair.Kind + "|" + d.Pair.Neighbor + "|" + d.Pair.Name1 + "|" + d.Pair.Name2 + "|" +
			d.Action1 + "|" + d.Action2 + "|" + d.Text1.Location() + "|" + d.Text2.Location()
		for _, t := range d.Localization.Terms {
			k += "|" + t.String()
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, d)
	}
	return out
}

// describeRouteAction renders a path's action for the Action row of the
// report (REJECT, ACCEPT, or ACCEPT with its attribute sets).
func describeRouteAction(p symbolic.RoutePath) string {
	if !p.Accept {
		return "REJECT"
	}
	if p.Transform.IsIdentity() {
		return "ACCEPT"
	}
	return p.Transform.String() + "\nACCEPT"
}

// routePathText returns the deciding clause's text span; for the default
// action it synthesizes a descriptive pseudo-span.
func routePathText(p symbolic.RoutePath) ir.TextSpan {
	if p.Terminal != nil {
		return p.Terminal.Span
	}
	return ir.TextSpan{Lines: []string{"(default action: no clause matched)"}}
}

// aclPairFailure classifies a panic recovered from one ACL pair
// comparison, locating it at the first side's ACL definition.
func aclPairFailure(r any, name string, acl1 *ir.ACL) error {
	var file string
	var line int
	if acl1 != nil {
		file, line = acl1.Span.File, acl1.Span.StartLine
	}
	label := "acl " + name
	if a, ok := r.(bdd.Abort); ok {
		return &PairError{Pair: label, Kind: abortKind(a), File: file, Line: line, Err: a.Err}
	}
	return &PairError{
		Pair: label, Kind: ErrInternal, File: file, Line: line,
		Err: fmt.Errorf("panic: %v", r), Stack: string(debug.Stack()),
	}
}

// diffACLs compares every same-named ACL pair on a bounded worker pool,
// matching the route-map engine: each worker owns one BDD factory,
// recycled between its ACL pairs, so no allocation happens until a worker
// actually holds a job. Every pair runs under the fault guard — a budget
// or cancellation abort (or a crash) fails this configuration pair with a
// structured error while other workers' pairs still compute.
func diffACLs(ctx context.Context, rep *Report, c1, c2 *ir.Config, opts Options, stats *ComponentStats, span *obs.Span) error {
	// MatchPolicies for ACLs: same name (§4).
	var shared []string
	for name := range c1.ACLs {
		if _, ok := c2.ACLs[name]; ok {
			shared = append(shared, name)
		} else {
			rep.UnmatchedACLs1 = append(rep.UnmatchedACLs1, name)
		}
	}
	for name := range c2.ACLs {
		if _, ok := c1.ACLs[name]; !ok {
			rep.UnmatchedACLs2 = append(rep.UnmatchedACLs2, name)
		}
	}
	sort.Strings(shared)
	sort.Strings(rep.UnmatchedACLs1)
	sort.Strings(rep.UnmatchedACLs2)
	stats.Pairs = len(shared)
	stats.UniquePairs = len(shared)
	if len(shared) == 0 {
		return nil
	}

	perName := make([][]ACLPairDiff, len(shared))
	perErr := make([]error, len(shared))
	workers := opts.workerCount(len(shared))
	stats.Workers = workers
	var mu sync.Mutex // guards stats aggregation across workers
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var wsp *obs.Span
			if span != nil {
				wsp = span.Child("worker", obs.Int("worker", w))
			}
			var f *bdd.Factory
			var nodes int
			var hits, misses uint64
			var wait, busy time.Duration
			mark := time.Now()
			for i := range jobs {
				now := time.Now()
				wait += now.Sub(mark)
				name := shared[i]
				var asp *obs.Span
				if wsp != nil {
					asp = wsp.Child("acl-pair", obs.Str("acl", name))
				}
				acl1, acl2 := c1.ACLs[name], c2.ACLs[name]
				// One guarded unit per pair. NewPacketEncodingInto Resets
				// the factory, so the budget baseline and the per-pair
				// Stats both start from the fresh arena.
				func() {
					defer func() {
						if r := recover(); r != nil {
							perErr[i] = aclPairFailure(r, name, acl1)
							f = nil // state unverified: rebuild next pair
						}
					}()
					if err := ctxErr(ctx); err != nil {
						perErr[i] = &PairError{Pair: "acl " + name, Kind: ErrCanceled, Err: err}
						return
					}
					if stripes := opts.aclStripes(len(shared), acl1, acl2); stripes > 1 {
						// One oversized pair with idle workers: partition it
						// across source-address regions instead of leaving
						// the pool starved (see stripe.go).
						ds, st, err := runStripedACLPair(ctx, name, acl1, acl2, stripes, opts)
						perName[i], perErr[i] = ds, err
						nodes += st.Nodes
						hits += st.CacheHits
						misses += st.CacheMisses
						opts.recordStripes("acls", stripes)
						mu.Lock()
						if stripes > stats.Stripes {
							stats.Stripes = stripes
						}
						mu.Unlock()
						if asp != nil && err == nil {
							asp.SetAttrs(obs.Int("diffs", len(ds)), obs.Int("stripes", stripes))
							asp.End()
							asp = nil
						}
						return
					}
					if f == nil {
						f = newArmedFactory(ctx, opts)
					}
					enc := symbolic.NewPacketEncodingInto(f)
					f = enc.F
					diffs := semdiff.DiffACLs(enc, acl1, acl2)
					if len(diffs) > 0 {
						loc := headerloc.NewACLLocalizer(enc, acl1, acl2)
						for _, d := range diffs {
							perName[i] = append(perName[i], ACLPairDiff{
								Name1: name, Name2: name,
								Localization: loc.Localize(d.Inputs),
								Action1:      describeACLAction(d.Path1.Accept),
								Action2:      describeACLAction(d.Path2.Accept),
								Text1:        aclPathText(d.Path1),
								Text2:        aclPathText(d.Path2),
							})
						}
					}
					st := f.Stats()
					nodes += st.Nodes
					hits += st.CacheHits
					misses += st.CacheMisses
					if asp != nil {
						asp.SetAttrs(obs.Int("diffs", len(perName[i])), obs.Int("bddNodes", st.Nodes))
						asp.End()
					}
				}()
				if asp != nil && perErr[i] != nil {
					asp.SetAttrs(obs.Str("error", ErrKind(perErr[i])))
					asp.End()
				}
				mark = time.Now()
				busy += mark.Sub(now)
			}
			wait += time.Since(mark)
			if wsp != nil {
				wsp.SetAttrs(obs.Dur("queueWait", wait), obs.Dur("compute", busy))
				wsp.End()
			}
			opts.recordWorker("acl", wait, busy)
			mu.Lock()
			stats.BDDNodes += nodes
			stats.CacheHits += hits
			stats.CacheMisses += misses
			mu.Unlock()
			putFactory(f)
		}(w)
	}
	for i := range shared {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, ds := range perName {
		rep.ACLDiffs = append(rep.ACLDiffs, ds...)
	}
	// The first failed pair (in name order) aborts this configuration
	// pair, exactly where a sequential run would have stopped.
	for _, err := range perErr {
		if err != nil {
			return err
		}
	}
	return nil
}

func describeACLAction(accept bool) string {
	if accept {
		return "ACCEPT"
	}
	return "REJECT"
}

func aclPathText(p symbolic.ACLPath) ir.TextSpan {
	if p.Line != nil {
		return p.Line.Span
	}
	return ir.TextSpan{Lines: []string{"(implicit deny: no rule matched)"}}
}
