// Package core implements Campion's top-level ConfigDiff algorithm (§3):
// corresponding configuration components of two routers are paired up by
// the MatchPolicies heuristics (§4), each pair is dispatched to
// SemanticDiff or StructuralDiff per the paper's Table 1, and every
// difference is localized — headers via HeaderLocalize, text via the
// source spans the parsers preserved.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/headerloc"
	"repro/internal/ir"
	"repro/internal/semdiff"
	"repro/internal/structdiff"
	"repro/internal/symbolic"
)

// Component selects which checks Diff runs.
type Component string

// The comparable components, mirroring Table 1 of the paper.
const (
	ComponentRouteMaps Component = "route-maps" // SemanticDiff
	ComponentACLs      Component = "acls"       // SemanticDiff
	ComponentStatic    Component = "static"     // StructuralDiff
	ComponentConnected Component = "connected"  // StructuralDiff
	ComponentBGP       Component = "bgp"        // StructuralDiff
	ComponentOSPF      Component = "ospf"       // StructuralDiff
	ComponentAdmin     Component = "admin"      // StructuralDiff
)

// AllComponents lists every component in canonical order.
var AllComponents = []Component{
	ComponentRouteMaps, ComponentACLs, ComponentStatic, ComponentConnected,
	ComponentBGP, ComponentOSPF, ComponentAdmin,
}

// CheckKind names the analysis used for a component (Table 1).
func CheckKind(c Component) string {
	switch c {
	case ComponentRouteMaps, ComponentACLs:
		return "SemanticDiff"
	default:
		return "StructuralDiff"
	}
}

// Options configures a Diff run.
type Options struct {
	// Components restricts the checks; empty means all.
	Components []Component
	// ExhaustiveCommunities additionally localizes the community
	// dimension of every route-map difference completely (the §4
	// HeaderLocalize extension), instead of the default single example.
	ExhaustiveCommunities bool
}

func (o Options) enabled(c Component) bool {
	if len(o.Components) == 0 {
		return true
	}
	for _, x := range o.Components {
		if x == c {
			return true
		}
	}
	return false
}

// PolicyPair identifies a matched pair of routing policies.
type PolicyPair struct {
	// Kind is "bgp-import", "bgp-export", or "redistribution".
	Kind string
	// Neighbor is the shared peer address (bgp kinds) or the source
	// protocol (redistribution).
	Neighbor string
	// Name1 and Name2 are the policy-chain names on each router;
	// "(none)" when a side applies no policy.
	Name1, Name2 string
}

func (p PolicyPair) String() string {
	return fmt.Sprintf("%s %s: %s vs %s", p.Kind, p.Neighbor, p.Name1, p.Name2)
}

// RouteMapDiff is one localized behavioral difference between a matched
// pair of routing policies.
type RouteMapDiff struct {
	Pair PolicyPair
	// Localization carries the included/excluded prefix ranges and the
	// single-example fields.
	Localization headerloc.RouteLocalization
	// Action1/Action2 render each router's disposition (REJECT, ACCEPT,
	// ACCEPT + sets).
	Action1, Action2 string
	// Text1/Text2 are the responsible configuration lines.
	Text1, Text2 ir.TextSpan
}

// ACLPairDiff is one localized behavioral difference between a matched
// pair of ACLs.
type ACLPairDiff struct {
	Name1, Name2     string
	Localization     headerloc.ACLLocalization
	Action1, Action2 string
	Text1, Text2     ir.TextSpan
}

// Report is the full result of comparing two router configurations.
type Report struct {
	Config1, Config2 *ir.Config

	RouteMapDiffs []RouteMapDiff
	ACLDiffs      []ACLPairDiff
	Structural    []structdiff.Difference

	// UnmatchedACLs lists ACL names present on exactly one router.
	UnmatchedACLs1, UnmatchedACLs2 []string
}

// TotalDifferences counts every reported difference.
func (r *Report) TotalDifferences() int {
	return len(r.RouteMapDiffs) + len(r.ACLDiffs) + len(r.Structural) +
		len(r.UnmatchedACLs1) + len(r.UnmatchedACLs2)
}

// Diff runs Campion's full comparison of two router configurations.
func Diff(c1, c2 *ir.Config, opts Options) (*Report, error) {
	rep := &Report{Config1: c1, Config2: c2}

	if opts.enabled(ComponentRouteMaps) {
		if err := diffRouteMaps(rep, c1, c2, opts); err != nil {
			return nil, err
		}
	}
	if opts.enabled(ComponentACLs) {
		diffACLs(rep, c1, c2)
	}
	if opts.enabled(ComponentStatic) {
		rep.Structural = append(rep.Structural, structdiff.DiffStaticRoutes(c1, c2)...)
	}
	if opts.enabled(ComponentConnected) {
		rep.Structural = append(rep.Structural, structdiff.DiffConnectedRoutes(c1, c2)...)
	}
	if opts.enabled(ComponentBGP) {
		rep.Structural = append(rep.Structural, structdiff.DiffBGPConfig(c1, c2)...)
		rep.Structural = append(rep.Structural, structdiff.DiffBGPNeighbors(c1, c2)...)
	}
	if opts.enabled(ComponentOSPF) {
		rep.Structural = append(rep.Structural, structdiff.DiffOSPF(c1, c2)...)
	}
	if opts.enabled(ComponentAdmin) {
		rep.Structural = append(rep.Structural, structdiff.DiffAdminDistances(c1, c2)...)
	}
	return rep, nil
}

// MatchPolicies pairs up the routing policies of the two configurations
// using the paper's heuristics: BGP policies are matched per shared
// neighbor address and direction; redistribution policies per source
// protocol.
func MatchPolicies(c1, c2 *ir.Config) []PolicyPair {
	var pairs []PolicyPair
	if c1.BGP != nil && c2.BGP != nil {
		for _, addr := range c1.BGP.NeighborAddrs() {
			n1 := c1.BGP.Neighbors[addr]
			n2 := c2.BGP.Neighbors[addr]
			if n2 == nil {
				continue // presence handled by StructuralDiff
			}
			pairs = append(pairs,
				PolicyPair{Kind: "bgp-import", Neighbor: addr,
					Name1: chainName(n1.ImportPolicies), Name2: chainName(n2.ImportPolicies)},
				PolicyPair{Kind: "bgp-export", Neighbor: addr,
					Name1: chainName(n1.ExportPolicies), Name2: chainName(n2.ExportPolicies)},
			)
		}
	}
	// Redistribution policies, paired by target process + source protocol.
	redistPairs := func(kind string, r1, r2 []ir.Redistribution) {
		byProto := func(rs []ir.Redistribution) map[ir.Protocol]ir.Redistribution {
			m := map[ir.Protocol]ir.Redistribution{}
			for _, r := range rs {
				m[r.From] = r
			}
			return m
		}
		m1, m2 := byProto(r1), byProto(r2)
		var protos []int
		for p := range m1 {
			protos = append(protos, int(p))
		}
		sort.Ints(protos)
		for _, pi := range protos {
			p := ir.Protocol(pi)
			if r2, ok := m2[p]; ok {
				r1 := m1[p]
				pairs = append(pairs, PolicyPair{
					Kind: kind, Neighbor: p.String(),
					Name1: chainName(sliceIfNonEmpty(r1.RouteMap)),
					Name2: chainName(sliceIfNonEmpty(r2.RouteMap)),
				})
			}
		}
	}
	if c1.BGP != nil && c2.BGP != nil {
		redistPairs("redistribution-bgp", c1.BGP.Redistribute, c2.BGP.Redistribute)
	}
	if c1.OSPF != nil && c2.OSPF != nil {
		redistPairs("redistribution-ospf", c1.OSPF.Redistribute, c2.OSPF.Redistribute)
	}
	return pairs
}

func sliceIfNonEmpty(s string) []string {
	if s == "" {
		return nil
	}
	return []string{s}
}

func chainName(names []string) string {
	if len(names) == 0 {
		return "(none)"
	}
	out := names[0]
	for _, n := range names[1:] {
		out += "+" + n
	}
	return out
}

// resolveChain turns a policy chain into a single route map: an empty
// chain is the identity policy (accept everything unchanged); a JunOS
// chain concatenates the policies' terms with the protocol's
// default-accept at the end; an IOS chain is its single route map.
func resolveChain(cfg *ir.Config, names []string) *ir.RouteMap {
	if len(names) == 0 {
		return &ir.RouteMap{Name: "(none)", DefaultAction: ir.Permit}
	}
	if len(names) == 1 {
		if rm := cfg.RouteMaps[names[0]]; rm != nil {
			return rm
		}
		// A referenced but undefined policy: IOS treats it as permit-all.
		return &ir.RouteMap{Name: names[0], DefaultAction: ir.Permit}
	}
	merged := &ir.RouteMap{Name: chainName(names), DefaultAction: ir.Permit}
	for _, n := range names {
		rm := cfg.RouteMaps[n]
		if rm == nil {
			continue
		}
		merged.Clauses = append(merged.Clauses, rm.Clauses...)
		merged.Span = merged.Span.Merge(rm.Span)
		merged.DefaultAction = rm.DefaultAction
	}
	return merged
}

// maxCommunityTerms bounds exhaustive community localization output.
const maxCommunityTerms = 64

func diffRouteMaps(rep *Report, c1, c2 *ir.Config, opts Options) error {
	pairs := MatchPolicies(c1, c2)
	if len(pairs) == 0 {
		// No BGP context: compare same-named route maps directly, so
		// standalone policy files can still be checked.
		names := map[string]bool{}
		for n := range c1.RouteMaps {
			if _, ok := c2.RouteMaps[n]; ok {
				names[n] = true
			}
		}
		var sorted []string
		for n := range names {
			sorted = append(sorted, n)
		}
		sort.Strings(sorted)
		for _, n := range sorted {
			pairs = append(pairs, PolicyPair{Kind: "route-map", Neighbor: n, Name1: n, Name2: n})
		}
	}
	if len(pairs) == 0 {
		return nil
	}

	enc := symbolic.NewRouteEncoding(c1, c2)
	loc := headerloc.NewRouteLocalizer(enc, c1, c2)

	// Deduplicate repeated (name1, name2) comparisons: the same export
	// policy applied to many neighbors is compared once, then reported
	// per pair.
	type key struct{ n1, n2 string }
	cache := map[key][]semdiff.RouteMapDiff{}
	for _, pair := range pairs {
		k := key{pair.Name1, pair.Name2}
		diffs, ok := cache[k]
		if !ok {
			var names1, names2 []string
			if pair.Name1 != "(none)" {
				names1 = splitChain(pair.Name1)
			}
			if pair.Name2 != "(none)" {
				names2 = splitChain(pair.Name2)
			}
			rm1 := resolveChain(c1, names1)
			rm2 := resolveChain(c2, names2)
			var err error
			diffs, err = semdiff.DiffRouteMaps(enc, c1, rm1, c2, rm2)
			if err != nil {
				return err
			}
			cache[k] = diffs
		}
		for _, d := range diffs {
			localization := loc.Localize(d.Inputs)
			if opts.ExhaustiveCommunities {
				localization.CommunityTerms, localization.CommunityComplete =
					loc.LocalizeCommunities(d.Inputs, maxCommunityTerms)
			}
			rep.RouteMapDiffs = append(rep.RouteMapDiffs, RouteMapDiff{
				Pair:         pair,
				Localization: localization,
				Action1:      describeRouteAction(d.Path1),
				Action2:      describeRouteAction(d.Path2),
				Text1:        routePathText(d.Path1),
				Text2:        routePathText(d.Path2),
			})
		}
	}
	// Avoid re-reporting shared policies per neighbor: collapse exact
	// duplicates (same pair names and same localization text).
	rep.RouteMapDiffs = dedupeRouteMapDiffs(rep.RouteMapDiffs)
	return nil
}

func splitChain(name string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '+' {
			if i > start {
				out = append(out, name[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func dedupeRouteMapDiffs(ds []RouteMapDiff) []RouteMapDiff {
	seen := map[string]bool{}
	var out []RouteMapDiff
	for _, d := range ds {
		k := d.Pair.Kind + "|" + d.Pair.Neighbor + "|" + d.Pair.Name1 + "|" + d.Pair.Name2 + "|" +
			d.Action1 + "|" + d.Action2 + "|" + d.Text1.Location() + "|" + d.Text2.Location()
		for _, t := range d.Localization.Terms {
			k += "|" + t.String()
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, d)
	}
	return out
}

// describeRouteAction renders a path's action for the Action row of the
// report (REJECT, ACCEPT, or ACCEPT with its attribute sets).
func describeRouteAction(p symbolic.RoutePath) string {
	if !p.Accept {
		return "REJECT"
	}
	if p.Transform.IsIdentity() {
		return "ACCEPT"
	}
	return p.Transform.String() + "\nACCEPT"
}

// routePathText returns the deciding clause's text span; for the default
// action it synthesizes a descriptive pseudo-span.
func routePathText(p symbolic.RoutePath) ir.TextSpan {
	if p.Terminal != nil {
		return p.Terminal.Span
	}
	return ir.TextSpan{Lines: []string{"(default action: no clause matched)"}}
}

func diffACLs(rep *Report, c1, c2 *ir.Config) {
	// MatchPolicies for ACLs: same name (§4).
	var shared []string
	for name := range c1.ACLs {
		if _, ok := c2.ACLs[name]; ok {
			shared = append(shared, name)
		} else {
			rep.UnmatchedACLs1 = append(rep.UnmatchedACLs1, name)
		}
	}
	for name := range c2.ACLs {
		if _, ok := c1.ACLs[name]; !ok {
			rep.UnmatchedACLs2 = append(rep.UnmatchedACLs2, name)
		}
	}
	sort.Strings(shared)
	sort.Strings(rep.UnmatchedACLs1)
	sort.Strings(rep.UnmatchedACLs2)

	// Each ACL pair gets its own packet encoding, so pairs are
	// independent and compared in parallel.
	perName := make([][]ACLPairDiff, len(shared))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, name := range shared {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			acl1, acl2 := c1.ACLs[name], c2.ACLs[name]
			enc := symbolic.NewPacketEncoding()
			diffs := semdiff.DiffACLs(enc, acl1, acl2)
			if len(diffs) == 0 {
				return
			}
			loc := headerloc.NewACLLocalizer(enc, acl1, acl2)
			for _, d := range diffs {
				perName[i] = append(perName[i], ACLPairDiff{
					Name1: name, Name2: name,
					Localization: loc.Localize(d.Inputs),
					Action1:      describeACLAction(d.Path1.Accept),
					Action2:      describeACLAction(d.Path2.Accept),
					Text1:        aclPathText(d.Path1),
					Text2:        aclPathText(d.Path2),
				})
			}
		}(i, name)
	}
	wg.Wait()
	for _, ds := range perName {
		rep.ACLDiffs = append(rep.ACLDiffs, ds...)
	}
}

func describeACLAction(accept bool) string {
	if accept {
		return "ACCEPT"
	}
	return "REJECT"
}

func aclPathText(p symbolic.ACLPath) ir.TextSpan {
	if p.Line != nil {
		return p.Line.Span
	}
	return ir.TextSpan{Lines: []string{"(implicit deny: no rule matched)"}}
}
