package core

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// spanIndex maps a span snapshot by ID for parent-edge checks.
func spanIndex(spans []obs.SpanInfo) map[int]obs.SpanInfo {
	byID := make(map[int]obs.SpanInfo, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	return byID
}

// TestDiffSpanTree: a sequential Diff on the cross-pair cache path emits
// one "diff" root whose children are exactly the component spans, with
// chain-pair spans nested directly under the route-maps component (no
// worker pool in between).
func TestDiffSpanTree(t *testing.T) {
	c1, c2 := syntheticFleetPair(t, 3, 2)
	tr := obs.NewTracer()
	if _, err := Diff(c1, c2, Options{Workers: 1, PolicyCache: NewPolicyCache(), Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	byID := spanIndex(spans)

	var roots, components, chainPairs int
	for _, s := range spans {
		switch {
		case s.Parent == -1:
			roots++
			if s.Name != "diff" {
				t.Errorf("root span %q, want diff", s.Name)
			}
			if s.Attr("host1") != "r1" || s.Attr("host2") != "r2" {
				t.Errorf("diff attrs = %v", s.Attrs)
			}
		case s.Name == "chain-pair":
			chainPairs++
			// Sequential runs nest chain pairs directly under route-maps.
			if p := byID[s.Parent]; p.Name != string(ComponentRouteMaps) {
				t.Errorf("chain-pair parented by %q", p.Name)
			}
		case byID[s.Parent].Name == "diff":
			components++
			if s.Attr("kind") == "" {
				t.Errorf("component span %s lacks kind attr", s.Name)
			}
		}
	}
	if roots != 1 {
		t.Errorf("roots = %d, want 1", roots)
	}
	if components != len(AllComponents) {
		t.Errorf("component spans = %d, want %d", components, len(AllComponents))
	}
	// 3 distinct import chains + the shared empty export chain.
	if chainPairs != 4 {
		t.Errorf("chain-pair spans = %d, want 4", chainPairs)
	}
}

// TestDiffSpanTreeParallel: under a worker pool the parent edges stay
// exact — every chain-pair hangs off a worker span, every worker span off
// the route-maps component — because edges are explicit, never inferred
// from goroutine identity. Run with -race.
func TestDiffSpanTreeParallel(t *testing.T) {
	c1, c2 := syntheticFleetPair(t, 6, 3)
	tr := obs.NewTracer()
	if _, err := Diff(c1, c2, Options{Workers: 4, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	byID := spanIndex(spans)

	var chainPairs int
	for _, s := range spans {
		if s.Name != "chain-pair" {
			continue
		}
		chainPairs++
		w := byID[s.Parent]
		if w.Name != "worker" {
			t.Fatalf("chain-pair parented by %q, want worker", w.Name)
		}
		if w.Attr("worker") == "" {
			t.Errorf("worker span lacks worker attr: %v", w.Attrs)
		}
		if comp := byID[w.Parent]; comp.Name != string(ComponentRouteMaps) {
			t.Errorf("worker parented by %q, want %s", comp.Name, ComponentRouteMaps)
		}
	}
	// 6 distinct import chains + the shared empty export chain.
	if chainPairs != 7 {
		t.Errorf("chain-pair spans = %d, want 7", chainPairs)
	}
	// Worker spans must carry the queue accounting they advertise.
	for _, s := range spans {
		if s.Name == "worker" && (s.Attr("queueWait") == "" || s.Attr("compute") == "") {
			t.Errorf("worker span missing wait/compute attrs: %v", s.Attrs)
		}
	}
}

// TestPolicyCacheStatsDelta is the double-count regression test: with a
// shared PolicyCache, the factory and its counters live across Diff
// calls, so each call must report only its own delta. Before the fix the
// second identical call re-reported the full cumulative node count.
func TestPolicyCacheStatsDelta(t *testing.T) {
	c1, c2 := syntheticFleetPair(t, 4, 3)
	pc := NewPolicyCache()
	opts := Options{Workers: 1, PolicyCache: pc, Components: []Component{ComponentRouteMaps}}

	first, err := Diff(c1, c2, opts)
	if err != nil {
		t.Fatal(err)
	}
	st1 := first.Stats[0]
	if st1.BDDNodes == 0 {
		t.Fatalf("first call charged no BDD nodes: %+v", st1)
	}
	if st1.PolicyCacheHits != 0 {
		t.Errorf("first call hit a cold cache %d times", st1.PolicyCacheHits)
	}

	second, err := Diff(c1, c2, opts)
	if err != nil {
		t.Fatal(err)
	}
	st2 := second.Stats[0]
	// Every chain is compiled, every BDD interned: the second call does
	// only the (cached) compare work. A tiny number of fresh nodes is
	// fine; re-reporting the first call's thousands is the bug.
	if st2.BDDNodes*10 > st1.BDDNodes {
		t.Errorf("second call charged %d nodes vs first call's %d — cumulative, not delta",
			st2.BDDNodes, st1.BDDNodes)
	}
	if st2.PolicyCacheHits == 0 {
		t.Error("second call recorded no policy-cache hits")
	}

	// A different pair forces an encoding rebuild, which Resets the
	// factory; the delta must not go negative.
	c3, c4 := syntheticFleetPair(t, 2, 1)
	third, err := Diff(c3, c4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st3 := third.Stats[0]; st3.BDDNodes <= 0 {
		t.Errorf("post-rebuild call charged %d nodes, want > 0", st3.BDDNodes)
	}
}

// TestPolicyCacheMetrics: the cross-pair cache reports fingerprint-
// labeled hit/miss/rebuild counters into the registry.
func TestPolicyCacheMetrics(t *testing.T) {
	c1, c2 := syntheticFleetPair(t, 3, 2)
	reg := obs.NewRegistry()
	pc := NewPolicyCache()
	opts := Options{Workers: 1, PolicyCache: pc, Metrics: reg,
		Components: []Component{ComponentRouteMaps}}
	for i := 0; i < 2; i++ {
		if _, err := Diff(c1, c2, opts); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, metric := range []string{
		MetricPolicyChainHits, MetricPolicyChainMisses,
		MetricBDDNodes, MetricComponentLatency + "_count", MetricDiffsFound,
	} {
		if !strings.Contains(out, metric) {
			t.Errorf("exposition missing %s:\n%s", metric, out)
		}
	}
	// The fingerprint label is a bounded digest, not the raw vocabulary.
	if !strings.Contains(out, `fingerprint="`) {
		t.Errorf("policy-cache series lack a fingerprint label:\n%s", out)
	}
}

// TestObsDisabledIsFreeOfSpans: with no tracer and no registry, Diff must
// not record anything anywhere (guard against accidentally defaulting to
// the global registry in the hot path).
func TestObsDisabledIsFreeOfSpans(t *testing.T) {
	c1, c2 := syntheticFleetPair(t, 2, 2)
	if _, err := Diff(c1, c2, Options{}); err != nil {
		t.Fatal(err)
	}
	var tr *obs.Tracer
	if tr.Spans() != nil {
		t.Error("nil tracer accumulated spans")
	}
}
