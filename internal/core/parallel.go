// Parallel SemanticDiff execution engine. Every matched policy pair is an
// independent semantic check (the modularity of §3 is what makes the
// comparison parallelizable), so unique chain comparisons fan out over a
// worker pool. Each worker owns a private symbolic.RouteEncoding — and
// therefore a private BDD factory — so BDD nodes never cross goroutines;
// workers hand back fully localized, factory-independent results, and the
// report is assembled in matched-pair order regardless of completion
// order, keeping output byte-identical to a sequential run.
package core

import (
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/bdd"
	"repro/internal/headerloc"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/semdiff"
	"repro/internal/symbolic"
)

// factoryPool recycles BDD factories across workers and Diff calls. The
// encoding constructors Reset a recycled factory, so its grown arena,
// unique table, and op cache are reused at full size — regrowth
// (rehashing, cache doubling, arena copies) otherwise dominates
// hash-consing on every fresh comparison.
var factoryPool sync.Pool

// getFactory returns a recycled factory, or nil on a cold pool — the
// encoding constructors treat nil as "allocate fresh".
func getFactory() *bdd.Factory {
	f, _ := factoryPool.Get().(*bdd.Factory)
	return f
}

// putFactory returns a factory for reuse once every node referencing it
// has been localized into factory-independent results.
func putFactory(f *bdd.Factory) {
	if f != nil {
		factoryPool.Put(f)
	}
}

// workerCount resolves Options.Workers against the task count.
func (o Options) workerCount(tasks int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// chainKeyOf identifies a resolved chain comparison by the exact policy
// name sequences on both sides. Keying on the sequences rather than a
// joined display string keeps chains distinct even when a policy name
// contains a separator character.
func chainKeyOf(names1, names2 []string) string {
	return strings.Join(names1, "\x00") + "\x01" + strings.Join(names2, "\x00")
}

// rmTask is one unique chain comparison; many matched pairs can share it
// (the same export policy applied to 40 neighbors is checked once).
type rmTask struct {
	names1, names2 []string
}

// localizedRouteDiff is a factory-independent difference: everything the
// report needs, with no live BDD nodes, so it can safely cross goroutines.
type localizedRouteDiff struct {
	Localization     headerloc.RouteLocalization
	Action1, Action2 string
	Text1, Text2     ir.TextSpan
}

type rmTaskResult struct {
	diffs []localizedRouteDiff
	err   error
}

// runRouteMapTasks executes the unique chain comparisons on a pool of
// workers. Each worker builds its own encoding over the configuration
// pair (the construction is deterministic, so every worker sees the same
// variable order and atom vocabulary) and reuses it — and its growing op
// caches — across all tasks it pulls.
func runRouteMapTasks(c1, c2 *ir.Config, tasks []rmTask, opts Options, stats *ComponentStats, span *obs.Span) []rmTaskResult {
	results := make([]rmTaskResult, len(tasks))
	workers := opts.workerCount(len(tasks))
	stats.Workers = workers

	// A sequential run with a caller-provided PolicyCache is the
	// cross-pair path: the cache's encoding and compiled chains persist
	// across Diff calls, so a DiffAll worker re-encodes each device's
	// policies once, not once per pair.
	if workers == 1 && opts.PolicyCache != nil {
		pc := opts.PolicyCache
		// The cache's factory (and its counters) outlive this Diff call:
		// snapshot at entry and charge this call the delta, so per-pair
		// stats never re-count nodes and cache traffic from earlier
		// pairs. An encoding rebuild Resets the factory (zeroing the
		// counters), so the baseline falls back to the empty arena.
		var st0 bdd.Stats
		if pc.enc != nil {
			st0 = pc.enc.F.Stats()
		}
		rebuilds0, hits0, misses0 := pc.Rebuilds, pc.ChainHits, pc.ChainMisses
		memo0 := symbolic.MemoStats{}
		if pc.enc != nil {
			memo0 = pc.enc.Memo()
		}
		enc := pc.encodingFor(c1, c2)
		if pc.Rebuilds != rebuilds0 {
			st0 = bdd.Stats{Nodes: 1}
			memo0 = symbolic.MemoStats{}
		}
		loc := headerloc.NewRouteLocalizer(enc, c1, c2)
		for i := range tasks {
			results[i] = runRouteMapTask(enc, loc, pc, c1, c2, tasks[i], opts, span)
		}
		d := enc.F.Stats().Delta(st0)
		stats.BDDNodes += d.Nodes
		stats.CacheHits += d.CacheHits
		stats.CacheMisses += d.CacheMisses
		stats.PolicyCacheHits += pc.ChainHits - hits0
		opts.recordPolicyCache(pc.fp, pc.ChainHits-hits0, pc.ChainMisses-misses0, pc.Rebuilds-rebuilds0)
		memo := enc.Memo()
		opts.recordMemo(symbolic.MemoStats{
			RangeHits: memo.RangeHits - memo0.RangeHits, RangeMisses: memo.RangeMisses - memo0.RangeMisses,
			ListHits: memo.ListHits - memo0.ListHits, ListMisses: memo.ListMisses - memo0.ListMisses,
		})
		return results
	}

	var mu sync.Mutex // guards stats aggregation across workers
	worker := func(w int, jobs <-chan int) {
		var wsp *obs.Span
		if span != nil {
			wsp = span.Child("worker", obs.Int("worker", w))
		}
		enc := symbolic.NewRouteEncodingInto(getFactory(), c1, c2)
		loc := headerloc.NewRouteLocalizer(enc, c1, c2)
		// A transient per-worker cache: tasks often share a chain on one
		// side (one export policy against many), so each worker memoizes
		// the chains it compiles even without a cross-call cache.
		pc := newWorkerPolicyCache(enc)
		var wait, busy time.Duration
		mark := time.Now()
		for i := range jobs {
			now := time.Now()
			wait += now.Sub(mark)
			results[i] = runRouteMapTask(enc, loc, pc, c1, c2, tasks[i], opts, wsp)
			mark = time.Now()
			busy += mark.Sub(now)
		}
		wait += time.Since(mark)
		st := enc.F.Stats()
		if wsp != nil {
			wsp.SetAttrs(obs.Dur("queueWait", wait), obs.Dur("compute", busy),
				obs.Int("bddNodes", st.Nodes), obs.Int("chainHits", pc.ChainHits))
			wsp.End()
		}
		opts.recordWorker("routemap", wait, busy)
		opts.recordPolicyCache("", pc.ChainHits, pc.ChainMisses, 0)
		opts.recordMemo(enc.Memo())
		mu.Lock()
		stats.BDDNodes += st.Nodes
		stats.CacheHits += st.CacheHits
		stats.CacheMisses += st.CacheMisses
		stats.PolicyCacheHits += pc.ChainHits
		mu.Unlock()
		putFactory(enc.F)
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker(w, jobs)
		}(w)
	}
	for i := range tasks {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// runRouteMapTask compares one resolved chain pair and localizes every
// difference while still on the worker's own factory. Chain compilation
// goes through the worker's policy cache. The parent span receives one
// "chain-pair" child covering compile + compare + localize, annotated
// with the chain names and whether the compilations were cache recalls.
func runRouteMapTask(enc *symbolic.RouteEncoding, loc *headerloc.RouteLocalizer, pc *PolicyCache, c1, c2 *ir.Config, t rmTask, opts Options, parent *obs.Span) (res rmTaskResult) {
	var tsp *obs.Span
	if parent != nil {
		tsp = parent.Child("chain-pair",
			obs.Str("chain1", chainName(t.names1)), obs.Str("chain2", chainName(t.names2)))
		hits0 := pc.ChainHits
		defer func() {
			tsp.SetAttrs(obs.Int("cachedChains", pc.ChainHits-hits0), obs.Int("diffs", len(res.diffs)))
			tsp.End()
		}()
	}
	paths1, err := pc.pathsFor(c1, t.names1)
	if err != nil {
		return rmTaskResult{err: err}
	}
	paths2, err := pc.pathsFor(c2, t.names2)
	if err != nil {
		return rmTaskResult{err: err}
	}
	diffs := semdiff.DiffRouteMapPaths(enc, paths1, paths2)
	out := make([]localizedRouteDiff, 0, len(diffs))
	for _, d := range diffs {
		localization := loc.Localize(d.Inputs)
		if opts.ExhaustiveCommunities {
			localization.CommunityTerms, localization.CommunityComplete =
				loc.LocalizeCommunities(d.Inputs, maxCommunityTerms)
		}
		out = append(out, localizedRouteDiff{
			Localization: localization,
			Action1:      describeRouteAction(d.Path1),
			Action2:      describeRouteAction(d.Path2),
			Text1:        routePathText(d.Path1),
			Text2:        routePathText(d.Path2),
		})
	}
	return rmTaskResult{diffs: out}
}
