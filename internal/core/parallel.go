// Parallel SemanticDiff execution engine. Every matched policy pair is an
// independent semantic check (the modularity of §3 is what makes the
// comparison parallelizable), so unique chain comparisons fan out over a
// worker pool. Each worker owns a private symbolic.RouteEncoding — and
// therefore a private BDD factory — so BDD nodes never cross goroutines;
// workers hand back fully localized, factory-independent results, and the
// report is assembled in matched-pair order regardless of completion
// order, keeping output byte-identical to a sequential run.
//
// The engine is hardened for unattended batch audits: every task honors
// the run's context (polled from inside the BDD kernels via the factory
// interrupt), respects the Options.MaxNodes budget, and runs under a
// panic guard that converts a crash or kernel abort into a structured
// PairError while sibling tasks keep running on intact state.
package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/bdd"
	"repro/internal/headerloc"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/semdiff"
	"repro/internal/symbolic"
)

// TestTaskHook, when non-nil, runs at the start of every guarded
// route-map task with the chain names of both sides. It is the
// fault-injection point of the engine's tests — a hook that panics
// simulates a worker crash, one that cancels a context simulates a
// deadline landing mid-batch. Set it only from tests, while no Diff is
// running.
var TestTaskHook func(names1, names2 []string)

// factoryPool recycles BDD factories across workers and Diff calls. The
// encoding constructors Reset a recycled factory, so its grown arena,
// unique table, and op cache are reused at full size — regrowth
// (rehashing, cache doubling, arena copies) otherwise dominates
// hash-consing on every fresh comparison.
var factoryPool sync.Pool

// getFactory returns a recycled factory, or nil on a cold pool — the
// encoding constructors treat nil as "allocate fresh".
func getFactory() *bdd.Factory {
	f, _ := factoryPool.Get().(*bdd.Factory)
	return f
}

// newArmedFactory returns a pooled (or fresh) factory with the run's
// interrupt installed: the MaxNodes budget and a poll of the context.
// Arming happens before any encoding work, so vocabulary atomization and
// WellFormed construction are already under the guard.
func newArmedFactory(ctx context.Context, opts Options) *bdd.Factory {
	f := getFactory()
	if f == nil {
		f = bdd.NewFactory(0) // resized by the encoding constructor's Reset
	}
	f.SetInterrupt(opts.MaxNodes, func() error { return ctxErr(ctx) })
	return f
}

// putFactory returns a factory for reuse once every node referencing it
// has been localized into factory-independent results. The interrupt is
// stripped so a stale poll closure can never abort the next owner.
func putFactory(f *bdd.Factory) {
	if f != nil {
		f.ClearInterrupt()
		factoryPool.Put(f)
	}
}

// workerCount resolves Options.Workers against the task count.
func (o Options) workerCount(tasks int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// chainKeyOf identifies a resolved chain comparison by the exact policy
// name sequences on both sides. Keying on the sequences rather than a
// joined display string keeps chains distinct even when a policy name
// contains a separator character.
func chainKeyOf(names1, names2 []string) string {
	return strings.Join(names1, "\x00") + "\x01" + strings.Join(names2, "\x00")
}

// rmTask is one unique chain comparison; many matched pairs can share it
// (the same export policy applied to 40 neighbors is checked once).
type rmTask struct {
	names1, names2 []string
}

// label renders the task for error provenance.
func (t rmTask) label() string {
	return chainName(t.names1) + " vs " + chainName(t.names2)
}

// localizedRouteDiff is a factory-independent difference: everything the
// report needs, with no live BDD nodes, so it can safely cross goroutines.
type localizedRouteDiff struct {
	Localization     headerloc.RouteLocalization
	Action1, Action2 string
	Text1, Text2     ir.TextSpan
}

type rmTaskResult struct {
	diffs []localizedRouteDiff
	err   error
}

// taskFailure converts a recovered panic value into the task's structured
// error: a bdd.Abort becomes ErrBudget or ErrCanceled per its cause, any
// other panic becomes ErrInternal carrying the goroutine stack. Both get
// the chain's configuration-file/line provenance.
func taskFailure(r any, c1, c2 *ir.Config, t rmTask) error {
	file, line := chainProvenance(c1, c2, t.names1, t.names2)
	if a, ok := r.(bdd.Abort); ok {
		return &PairError{Pair: t.label(), Kind: abortKind(a), File: file, Line: line, Err: a.Err}
	}
	return &PairError{
		Pair: t.label(), Kind: ErrInternal, File: file, Line: line,
		Err: fmt.Errorf("panic: %v", r), Stack: string(debug.Stack()),
	}
}

// buildFailure classifies a panic recovered while constructing a
// worker's route encoding (vocabulary atomization + WellFormed build).
func buildFailure(r any, c1 *ir.Config) error {
	file := ""
	if c1 != nil {
		file = c1.File
	}
	if a, ok := r.(bdd.Abort); ok {
		return &PairError{Pair: "route-encoding", Kind: abortKind(a), File: file, Err: a.Err}
	}
	return &PairError{
		Pair: "route-encoding", Kind: ErrInternal, File: file,
		Err: fmt.Errorf("panic: %v", r), Stack: string(debug.Stack()),
	}
}

// guardedRouteMapTask runs one chain comparison under the engine's fault
// guard: a cancellation check on entry, a fresh budget baseline, and a
// recover that converts any kernel abort or crash into the task's error.
// The factory and encoding remain consistent after an abort unwind (all
// memo tables store only fully-built entries), so the caller may keep
// using them for sibling tasks — only an ErrInternal panic leaves state
// unknown.
func guardedRouteMapTask(ctx context.Context, enc *symbolic.RouteEncoding, loc *headerloc.RouteLocalizer, pc *PolicyCache, c1, c2 *ir.Config, t rmTask, opts Options, parent *obs.Span) (res rmTaskResult) {
	defer func() {
		if r := recover(); r != nil {
			res = rmTaskResult{err: taskFailure(r, c1, c2, t)}
		}
	}()
	if hook := TestTaskHook; hook != nil {
		hook(t.names1, t.names2)
	}
	if err := ctxErr(ctx); err != nil {
		file, line := chainProvenance(c1, c2, t.names1, t.names2)
		return rmTaskResult{err: &PairError{Pair: t.label(), Kind: ErrCanceled, File: file, Line: line, Err: err}}
	}
	enc.F.BeginWork()
	return runRouteMapTask(enc, loc, pc, c1, c2, t, opts, parent)
}

// isInternalFailure reports whether a task error means the worker's
// symbolic state can no longer be trusted (an arbitrary panic, as opposed
// to a controlled kernel abort).
func isInternalFailure(err error) bool {
	return ErrKind(err) == "internal"
}

// runRouteMapTasks executes the unique chain comparisons on a pool of
// workers. Each worker builds its own encoding over the configuration
// pair (the construction is deterministic, so every worker sees the same
// variable order and atom vocabulary) and reuses it — and its growing op
// caches — across all tasks it pulls. Task failures (cancellation,
// budget, crash) land in the task's result slot; healthy siblings are
// unaffected.
func runRouteMapTasks(ctx context.Context, c1, c2 *ir.Config, tasks []rmTask, opts Options, stats *ComponentStats, span *obs.Span) []rmTaskResult {
	results := make([]rmTaskResult, len(tasks))
	workers := opts.workerCount(len(tasks))
	stats.Workers = workers

	// A sequential run with a caller-provided PolicyCache is the
	// cross-pair path: the cache's encoding and compiled chains persist
	// across Diff calls, so a DiffAll worker re-encodes each device's
	// policies once, not once per pair.
	if workers == 1 && opts.PolicyCache != nil {
		runRouteMapTasksCached(ctx, c1, c2, tasks, opts, stats, span, results)
		return results
	}

	// Fewer unique comparisons than workers and at least one oversized
	// chain: inter-pair fan-out would leave workers idle, so partition
	// each comparison itself across prefix regions (see stripe.go).
	if stripes := opts.routeMapStripes(c1, c2, tasks); stripes > 1 {
		runRouteMapTasksStriped(ctx, c1, c2, tasks, stripes, opts, stats, span, results)
		return results
	}

	var mu sync.Mutex // guards stats aggregation across workers
	worker := func(w int, jobs <-chan int) {
		var wsp *obs.Span
		if span != nil {
			wsp = span.Child("worker", obs.Int("worker", w))
		}
		var enc *symbolic.RouteEncoding
		var loc *headerloc.RouteLocalizer
		var pc *PolicyCache
		var buildErr error
		// build constructs the worker's symbolic state under the same
		// guard as the tasks: a budget or cancellation abort during
		// vocabulary encoding fails the tasks, not the process.
		build := func() {
			defer func() {
				if r := recover(); r != nil {
					buildErr = buildFailure(r, c1)
					enc, loc, pc = nil, nil, nil
				}
			}()
			e := symbolic.NewRouteEncodingIntoOrdered(newArmedFactory(ctx, opts), opts.routeOrder, c1, c2)
			loc = headerloc.NewRouteLocalizer(e, c1, c2)
			pc = newWorkerPolicyCache(e)
			enc = e
		}
		var wait, busy time.Duration
		var chainHits, chainMisses int
		mark := time.Now()
		for i := range jobs {
			now := time.Now()
			wait += now.Sub(mark)
			if enc == nil && buildErr == nil {
				build()
			}
			if buildErr != nil {
				results[i] = rmTaskResult{err: buildErr}
			} else {
				results[i] = guardedRouteMapTask(ctx, enc, loc, pc, c1, c2, tasks[i], opts, wsp)
				if isInternalFailure(results[i].err) {
					// Unknown crash: the factory's invariants are suspect.
					// Account for what it did, then discard it — the next
					// task rebuilds on a fresh factory from the pool.
					st := enc.F.Stats()
					chainHits += pc.ChainHits
					chainMisses += pc.ChainMisses
					mu.Lock()
					stats.BDDNodes += st.Nodes
					stats.CacheHits += st.CacheHits
					stats.CacheMisses += st.CacheMisses
					mu.Unlock()
					enc, loc, pc = nil, nil, nil
				}
			}
			mark = time.Now()
			busy += mark.Sub(now)
		}
		wait += time.Since(mark)
		if pc != nil {
			chainHits += pc.ChainHits
			chainMisses += pc.ChainMisses
		}
		if wsp != nil {
			attrs := []obs.Attr{obs.Dur("queueWait", wait), obs.Dur("compute", busy),
				obs.Int("chainHits", chainHits)}
			if enc != nil {
				attrs = append(attrs, obs.Int("bddNodes", enc.F.Stats().Nodes))
			}
			wsp.SetAttrs(attrs...)
			wsp.End()
		}
		opts.recordWorker("routemap", wait, busy)
		opts.recordPolicyCache("", chainHits, chainMisses, 0)
		if enc != nil {
			st := enc.F.Stats()
			opts.recordMemo(enc.Memo())
			mu.Lock()
			stats.BDDNodes += st.Nodes
			stats.CacheHits += st.CacheHits
			stats.CacheMisses += st.CacheMisses
			stats.PolicyCacheHits += chainHits
			mu.Unlock()
			putFactory(enc.F)
		} else {
			mu.Lock()
			stats.PolicyCacheHits += chainHits
			mu.Unlock()
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker(w, jobs)
		}(w)
	}
	for i := range tasks {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// runRouteMapTasksCached is the sequential cross-pair path of
// runRouteMapTasks: one goroutine, one long-lived PolicyCache whose
// factory (and its counters) outlive this Diff call. Stats are charged as
// deltas against the entry snapshot, so per-pair numbers never re-count
// earlier pairs; an encoding rebuild Resets the factory (zeroing the
// counters), so the baseline falls back to the empty arena.
func runRouteMapTasksCached(ctx context.Context, c1, c2 *ir.Config, tasks []rmTask, opts Options, stats *ComponentStats, span *obs.Span, results []rmTaskResult) {
	pc := opts.PolicyCache
	var st0 bdd.Stats
	if pc.enc != nil {
		st0 = pc.enc.F.Stats()
	}
	rebuilds0, hits0, misses0 := pc.Rebuilds, pc.ChainHits, pc.ChainMisses
	memo0 := symbolic.MemoStats{}
	if pc.enc != nil {
		memo0 = pc.enc.Memo()
	}

	var enc *symbolic.RouteEncoding
	var loc *headerloc.RouteLocalizer
	var buildErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				buildErr = buildFailure(r, c1)
			}
		}()
		enc = pc.encodingFor(ctx, c1, c2, opts)
		loc = headerloc.NewRouteLocalizer(enc, c1, c2)
	}()
	if buildErr != nil {
		for i := range tasks {
			results[i] = rmTaskResult{err: buildErr}
		}
		pc.invalidate()
		return
	}
	if pc.Rebuilds != rebuilds0 {
		st0 = bdd.Stats{Nodes: 1}
		memo0 = symbolic.MemoStats{}
	}
	poisoned := false
	for i := range tasks {
		results[i] = guardedRouteMapTask(ctx, enc, loc, pc, c1, c2, tasks[i], opts, span)
		if err := results[i].err; err != nil && ErrKind(err) != "canceled" {
			// Budget garbage accumulates in the arena; an unknown panic
			// leaves state unverified. Either way the cache must rebuild
			// before its next Diff call.
			poisoned = true
			if isInternalFailure(err) {
				// Fail the remaining tasks rather than trust the state.
				for j := i + 1; j < len(tasks); j++ {
					results[j] = results[i]
				}
				break
			}
		}
	}
	d := enc.F.Stats().Delta(st0) // allocation deltas, before any compaction
	if opts.GC && !poisoned {
		// Between-pairs collection point of the cross-pair path: the diff
		// products of this call's tasks are dead, the compiled chains and
		// memo tables are live and get reseated. Skipped on a poisoned
		// cache — invalidate rebuilds it anyway.
		pc.maybeGC()
	}
	enc.F.ClearInterrupt() // the cache factory outlives this ctx
	gcd := enc.F.Stats().Delta(st0)
	stats.GCRuns += gcd.GCRuns
	stats.GCReclaimed += gcd.GCReclaimed
	opts.recordGC(string(stats.Component), gcd.GCRuns, gcd.GCReclaimed, enc.F.Stats().Nodes)
	stats.BDDNodes += d.Nodes
	stats.CacheHits += d.CacheHits
	stats.CacheMisses += d.CacheMisses
	stats.PolicyCacheHits += pc.ChainHits - hits0
	opts.recordPolicyCache(pc.fp, pc.ChainHits-hits0, pc.ChainMisses-misses0, pc.Rebuilds-rebuilds0)
	memo := enc.Memo()
	opts.recordMemo(symbolic.MemoStats{
		RangeHits: memo.RangeHits - memo0.RangeHits, RangeMisses: memo.RangeMisses - memo0.RangeMisses,
		ListHits: memo.ListHits - memo0.ListHits, ListMisses: memo.ListMisses - memo0.ListMisses,
	})
	if poisoned {
		pc.invalidate()
	}
}

// runRouteMapTask compares one resolved chain pair and localizes every
// difference while still on the worker's own factory. Chain compilation
// goes through the worker's policy cache. The parent span receives one
// "chain-pair" child covering compile + compare + localize, annotated
// with the chain names and whether the compilations were cache recalls.
func runRouteMapTask(enc *symbolic.RouteEncoding, loc *headerloc.RouteLocalizer, pc *PolicyCache, c1, c2 *ir.Config, t rmTask, opts Options, parent *obs.Span) (res rmTaskResult) {
	var tsp *obs.Span
	if parent != nil {
		tsp = parent.Child("chain-pair",
			obs.Str("chain1", chainName(t.names1)), obs.Str("chain2", chainName(t.names2)))
		hits0 := pc.ChainHits
		defer func() {
			tsp.SetAttrs(obs.Int("cachedChains", pc.ChainHits-hits0), obs.Int("diffs", len(res.diffs)))
			tsp.End()
		}()
	}
	paths1, err := pc.pathsFor(c1, t.names1)
	if err != nil {
		return rmTaskResult{err: err}
	}
	paths2, err := pc.pathsFor(c2, t.names2)
	if err != nil {
		return rmTaskResult{err: err}
	}
	diffs := semdiff.DiffRouteMapPaths(enc, paths1, paths2)
	out := make([]localizedRouteDiff, 0, len(diffs))
	for _, d := range diffs {
		localization := loc.Localize(d.Inputs)
		if opts.ExhaustiveCommunities {
			localization.CommunityTerms, localization.CommunityComplete =
				loc.LocalizeCommunities(d.Inputs, maxCommunityTerms)
		}
		out = append(out, localizedRouteDiff{
			Localization: localization,
			Action1:      describeRouteAction(d.Path1),
			Action2:      describeRouteAction(d.Path2),
			Text1:        routePathText(d.Path1),
			Text2:        routePathText(d.Path2),
		})
	}
	return rmTaskResult{diffs: out}
}
