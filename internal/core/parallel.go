// Parallel SemanticDiff execution engine. Every matched policy pair is an
// independent semantic check (the modularity of §3 is what makes the
// comparison parallelizable), so unique chain comparisons fan out over a
// worker pool. Each worker owns a private symbolic.RouteEncoding — and
// therefore a private BDD factory — so BDD nodes never cross goroutines;
// workers hand back fully localized, factory-independent results, and the
// report is assembled in matched-pair order regardless of completion
// order, keeping output byte-identical to a sequential run.
package core

import (
	"runtime"
	"strings"
	"sync"

	"repro/internal/headerloc"
	"repro/internal/ir"
	"repro/internal/semdiff"
	"repro/internal/symbolic"
)

// workerCount resolves Options.Workers against the task count.
func (o Options) workerCount(tasks int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// chainKeyOf identifies a resolved chain comparison by the exact policy
// name sequences on both sides. Keying on the sequences rather than a
// joined display string keeps chains distinct even when a policy name
// contains a separator character.
func chainKeyOf(names1, names2 []string) string {
	return strings.Join(names1, "\x00") + "\x01" + strings.Join(names2, "\x00")
}

// rmTask is one unique chain comparison; many matched pairs can share it
// (the same export policy applied to 40 neighbors is checked once).
type rmTask struct {
	names1, names2 []string
}

// localizedRouteDiff is a factory-independent difference: everything the
// report needs, with no live BDD nodes, so it can safely cross goroutines.
type localizedRouteDiff struct {
	Localization     headerloc.RouteLocalization
	Action1, Action2 string
	Text1, Text2     ir.TextSpan
}

type rmTaskResult struct {
	diffs []localizedRouteDiff
	err   error
}

// runRouteMapTasks executes the unique chain comparisons on a pool of
// workers. Each worker builds its own encoding over the configuration
// pair (the construction is deterministic, so every worker sees the same
// variable order and atom vocabulary) and reuses it — and its growing op
// caches — across all tasks it pulls.
func runRouteMapTasks(c1, c2 *ir.Config, tasks []rmTask, opts Options, stats *ComponentStats) []rmTaskResult {
	results := make([]rmTaskResult, len(tasks))
	workers := opts.workerCount(len(tasks))
	stats.Workers = workers

	var mu sync.Mutex // guards stats aggregation across workers
	worker := func(jobs <-chan int) {
		enc := symbolic.NewRouteEncoding(c1, c2)
		loc := headerloc.NewRouteLocalizer(enc, c1, c2)
		for i := range jobs {
			results[i] = runRouteMapTask(enc, loc, c1, c2, tasks[i], opts)
		}
		st := enc.F.Stats()
		mu.Lock()
		stats.BDDNodes += st.Nodes
		stats.CacheHits += st.CacheHits
		stats.CacheMisses += st.CacheMisses
		mu.Unlock()
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker(jobs)
		}()
	}
	for i := range tasks {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// runRouteMapTask compares one resolved chain pair and localizes every
// difference while still on the worker's own factory.
func runRouteMapTask(enc *symbolic.RouteEncoding, loc *headerloc.RouteLocalizer, c1, c2 *ir.Config, t rmTask, opts Options) rmTaskResult {
	rm1 := resolveChain(c1, t.names1)
	rm2 := resolveChain(c2, t.names2)
	diffs, err := semdiff.DiffRouteMaps(enc, c1, rm1, c2, rm2)
	if err != nil {
		return rmTaskResult{err: err}
	}
	out := make([]localizedRouteDiff, 0, len(diffs))
	for _, d := range diffs {
		localization := loc.Localize(d.Inputs)
		if opts.ExhaustiveCommunities {
			localization.CommunityTerms, localization.CommunityComplete =
				loc.LocalizeCommunities(d.Inputs, maxCommunityTerms)
		}
		out = append(out, localizedRouteDiff{
			Localization: localization,
			Action1:      describeRouteAction(d.Path1),
			Action2:      describeRouteAction(d.Path2),
			Text1:        routePathText(d.Path1),
			Text2:        routePathText(d.Path2),
		})
	}
	return rmTaskResult{diffs: out}
}
