package core

import (
	"strings"
	"testing"

	"repro/internal/aclgen"
	"repro/internal/cisco"
	"repro/internal/ir"
	"repro/internal/juniper"
	"repro/internal/policygen"
)

// genPolicyConfigs parses a generated route-map pair into standalone
// configs: one same-named policy, so the diff is a single task — the
// shape intra-pair striping exists for.
func genPolicyConfigs(t testing.TB, seed uint64, clauses int) (*ir.Config, *ir.Config) {
	t.Helper()
	pair := policygen.Generate(policygen.Params{Seed: seed, Clauses: clauses, Communities: 3, Differences: 4})
	c1, err := cisco.Parse("c.cfg", pair.CiscoText)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := juniper.Parse("j.cfg", pair.JuniperText)
	if err != nil {
		t.Fatal(err)
	}
	return c1, c2
}

// genACLConfigs wraps a generated ACL pair in minimal configs sharing
// one ACL name.
func genACLConfigs(t testing.TB, seed uint64, rules int) (*ir.Config, *ir.Config) {
	t.Helper()
	pair := aclgen.Generate(aclgen.Params{Seed: seed, Rules: rules, Pools: 6, Differences: 5})
	mk := func(host string, acl *ir.ACL) *ir.Config {
		return &ir.Config{Hostname: host, ACLs: map[string]*ir.ACL{"BIG": acl}}
	}
	return mk("r1", pair.Cisco), mk("r2", pair.Juniper)
}

// TestStripedRouteMapMatchesSequential: with the striping threshold
// lowered so a small pair qualifies, the region-partitioned engine must
// produce byte-identical reports to the sequential one at every worker
// count — and must actually engage (Stripes recorded).
func TestStripedRouteMapMatchesSequential(t *testing.T) {
	defer func(v int) { stripeMinClauses = v }(stripeMinClauses)
	stripeMinClauses = 4

	c1, c2 := genPolicyConfigs(t, 2, 12)
	seq, err := Diff(c1, c2, Options{Workers: 1, Components: []Component{ComponentRouteMaps}})
	if err != nil {
		t.Fatal(err)
	}
	want := renderReport(seq)
	if len(seq.RouteMapDiffs) == 0 {
		t.Fatal("generated pair produced no diffs; test is vacuous")
	}
	for _, workers := range []int{2, 3, 4} {
		rep, err := Diff(c1, c2, Options{Workers: workers, Components: []Component{ComponentRouteMaps}})
		if err != nil {
			t.Fatal(err)
		}
		if got := renderReport(rep); got != want {
			t.Errorf("workers=%d striped report diverges:\n%s\nvs\n%s", workers, got, want)
		}
		if st := rep.Stats[0]; st.Stripes < workers {
			t.Errorf("workers=%d: stripes=%d, striping did not engage", workers, st.Stripes)
		}
	}
}

// TestStripedACLMatchesSequential: same exactness contract for the ACL
// striping path.
func TestStripedACLMatchesSequential(t *testing.T) {
	defer func(v int) { stripeMinLines = v }(stripeMinLines)
	stripeMinLines = 8

	c1, c2 := genACLConfigs(t, 3, 60)
	seq, err := Diff(c1, c2, Options{Workers: 1, Components: []Component{ComponentACLs}})
	if err != nil {
		t.Fatal(err)
	}
	want := renderReport(seq)
	if len(seq.ACLDiffs) == 0 {
		t.Fatal("generated ACL pair produced no diffs; test is vacuous")
	}
	for _, workers := range []int{2, 4} {
		rep, err := Diff(c1, c2, Options{Workers: workers, Components: []Component{ComponentACLs}})
		if err != nil {
			t.Fatal(err)
		}
		if got := renderReport(rep); got != want {
			t.Errorf("workers=%d striped ACL report diverges:\n%s\nvs\n%s", workers, got, want)
		}
		if st := rep.Stats[0]; st.Stripes < workers {
			t.Errorf("workers=%d: stripes=%d, striping did not engage", workers, st.Stripes)
		}
	}
}

// TestStripedDeterminism: repeated striped runs are byte-identical (the
// merge sorts by DFS path keys, so goroutine scheduling cannot leak in).
func TestStripedDeterminism(t *testing.T) {
	defer func(v int) { stripeMinClauses = v }(stripeMinClauses)
	stripeMinClauses = 4
	c1, c2 := genPolicyConfigs(t, 9, 10)
	run := func() string {
		rep, err := Diff(c1, c2, Options{Workers: 4, Components: []Component{ComponentRouteMaps}})
		if err != nil {
			t.Fatal(err)
		}
		return renderReport(rep)
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("striped run %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}

// TestReorderMatchesDefault: variable-order search changes only node
// counts, never output — with and without the worker pool.
func TestReorderMatchesDefault(t *testing.T) {
	c1, c2 := syntheticFleetPair(t, 4, 2)
	base, err := Diff(c1, c2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := renderReport(base)
	if !strings.Contains(want, "SET LOCAL PREF") {
		t.Fatal("synthetic pair found no differences")
	}
	for _, opts := range []Options{
		{Reorder: true},
		{Reorder: true, Workers: 4},
		{Reorder: true, Workers: 1, PolicyCache: NewPolicyCache()},
	} {
		rep, err := Diff(c1, c2, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderReport(rep); got != want {
			t.Errorf("%+v: reordered report diverges:\n%s\nvs\n%s", opts, got, want)
		}
	}
}

// TestGCBoundsCacheNodes: with collection enabled and the threshold
// lowered, a long-lived PolicyCache's arena must stay under a fixed
// ceiling across many calls, the collector must actually run, and the
// reports must match a GC-off baseline byte for byte.
func TestGCBoundsCacheNodes(t *testing.T) {
	defer func(v int) { gcNodeThreshold = v }(gcNodeThreshold)
	gcNodeThreshold = 1 << 12

	c1, c2 := syntheticFleetPair(t, 12, 2)
	baseline, err := Diff(c1, c2, Options{Workers: 1, Components: []Component{ComponentRouteMaps}})
	if err != nil {
		t.Fatal(err)
	}
	want := renderReport(baseline)

	pc := NewPolicyCache()
	var gcRuns uint64
	for i := 0; i < 6; i++ {
		rep, err := Diff(c1, c2, Options{Workers: 1, GC: true, PolicyCache: pc,
			Components: []Component{ComponentRouteMaps}})
		if err != nil {
			t.Fatal(err)
		}
		if got := renderReport(rep); got != want {
			t.Fatalf("call %d: GC'd report diverges:\n%s\nvs\n%s", i, got, want)
		}
		gcRuns += rep.Stats[0].GCRuns
	}
	if gcRuns == 0 {
		t.Fatal("collector never ran despite lowered threshold")
	}
	// Node ceiling: after each call ends with a sweep, the cache factory
	// must hold only live state — nowhere near the unswept accumulation.
	live := 0
	if pc.enc != nil {
		live = pc.enc.F.Stats().Nodes
	}
	if live == 0 {
		t.Fatal("policy cache empty after cached runs")
	}
	ceiling := gcNodeThreshold * 4
	if live > ceiling {
		t.Fatalf("cache factory holds %d nodes, ceiling %d: GC is not bounding memory", live, ceiling)
	}
}
