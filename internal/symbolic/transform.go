package symbolic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/netaddr"
)

// Transform is the canonical form of a sequence of route-map set actions:
// two clauses (or clause sequences) are behaviourally equal exactly when
// their Transforms are equal. Community effects are canonicalized over the
// encoding's atom universe, so "set community" sequences with the same net
// effect compare equal regardless of spelling.
type Transform struct {
	LocalPref *int64
	MED       *int64
	Weight    *int64
	Tag       *int64
	NextHop   *netaddr.Addr

	CommClear  bool
	CommAdd    []string // sorted community strings added
	CommDelete []string // sorted universe atoms deleted (empty if CommClear)

	Prepend []int64
}

// TransformOf canonicalizes an ordered list of set actions under the named
// lists of cfg and the encoding's community universe.
func (e *RouteEncoding) TransformOf(cfg *ir.Config, sets []ir.SetAction) Transform {
	var t Transform
	added := map[string]bool{}
	deleted := map[string]bool{}
	for _, s := range sets {
		switch s := s.(type) {
		case ir.SetLocalPref:
			v := s.Value
			t.LocalPref = &v
		case ir.SetMED:
			v := s.Value
			t.MED = &v
		case ir.SetWeight:
			v := s.Value
			t.Weight = &v
		case ir.SetTag:
			v := s.Value
			t.Tag = &v
		case ir.SetNextHop:
			a := s.Addr
			t.NextHop = &a
		case ir.SetASPathPrepend:
			t.Prepend = append(t.Prepend, s.ASNs...)
		case ir.SetCommunities:
			if !s.Additive {
				t.CommClear = true
				added = map[string]bool{}
				deleted = map[string]bool{}
			}
			for _, c := range s.Communities {
				added[c] = true
				delete(deleted, c)
			}
		case ir.DeleteCommunity:
			cl := cfg.CommunityLists[s.List]
			if cl == nil {
				continue
			}
			// Deleting affects both the original communities (tracked as
			// deleted atoms) and any previously added ones.
			for _, e2 := range cl.Entries {
				if len(e2.Conjuncts) != 1 || e2.Action != ir.Permit {
					continue
				}
				m := e2.Conjuncts[0]
				matcher := e.deleteMatcher(m)
				for _, atom := range e.Comms.Atoms() {
					if matcher(atom) {
						deleted[atom] = true
					}
				}
				for c := range added {
					if matcher(c) {
						delete(added, c)
					}
				}
			}
		}
	}
	t.CommAdd = sortedKeys(added)
	if !t.CommClear {
		// Atoms re-added after deletion are present, not deleted.
		for c := range added {
			delete(deleted, c)
		}
		t.CommDelete = sortedKeys(deleted)
	}
	return t
}

func (e *RouteEncoding) deleteMatcher(m ir.CommunityMatcher) func(string) bool {
	if m.Regex == "" {
		return func(s string) bool { return s == m.Literal }
	}
	cm := e.matcherFor(m.Regex)
	return cm.Matches
}

func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Equal reports canonical equality of two transforms.
func (t Transform) Equal(o Transform) bool {
	return eqInt64Ptr(t.LocalPref, o.LocalPref) &&
		eqInt64Ptr(t.MED, o.MED) &&
		eqInt64Ptr(t.Weight, o.Weight) &&
		eqInt64Ptr(t.Tag, o.Tag) &&
		eqAddrPtr(t.NextHop, o.NextHop) &&
		t.CommClear == o.CommClear &&
		eqStrings(t.CommAdd, o.CommAdd) &&
		eqStrings(t.CommDelete, o.CommDelete) &&
		eqInt64s(t.Prepend, o.Prepend)
}

// IsIdentity reports whether the transform changes nothing.
func (t Transform) IsIdentity() bool {
	return t.Equal(Transform{})
}

func eqInt64Ptr(a, b *int64) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

func eqAddrPtr(a, b *netaddr.Addr) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders the transform for the Action rows of Campion's output
// (e.g. "SET LOCAL PREF 30").
func (t Transform) String() string {
	var parts []string
	if t.LocalPref != nil {
		parts = append(parts, fmt.Sprintf("SET LOCAL PREF %d", *t.LocalPref))
	}
	if t.MED != nil {
		parts = append(parts, fmt.Sprintf("SET MED %d", *t.MED))
	}
	if t.Weight != nil {
		parts = append(parts, fmt.Sprintf("SET WEIGHT %d", *t.Weight))
	}
	if t.Tag != nil {
		parts = append(parts, fmt.Sprintf("SET TAG %d", *t.Tag))
	}
	if t.NextHop != nil {
		parts = append(parts, "SET NEXT HOP "+t.NextHop.String())
	}
	if t.CommClear {
		parts = append(parts, "SET COMMUNITIES ["+strings.Join(t.CommAdd, " ")+"]")
	} else {
		if len(t.CommAdd) > 0 {
			parts = append(parts, "ADD COMMUNITIES ["+strings.Join(t.CommAdd, " ")+"]")
		}
		if len(t.CommDelete) > 0 {
			parts = append(parts, "DELETE COMMUNITIES ["+strings.Join(t.CommDelete, " ")+"]")
		}
	}
	if len(t.Prepend) > 0 {
		ss := make([]string, len(t.Prepend))
		for i, a := range t.Prepend {
			ss[i] = fmt.Sprintf("%d", a)
		}
		parts = append(parts, "PREPEND "+strings.Join(ss, " "))
	}
	return strings.Join(parts, "\n")
}

// Apply runs the transform on a concrete route (for cross-checks and the
// SRP simulator). The route is mutated in place.
func (t Transform) Apply(r *ir.Route) {
	if t.LocalPref != nil {
		r.LocalPref = *t.LocalPref
	}
	if t.MED != nil {
		r.MED = *t.MED
	}
	if t.Weight != nil {
		r.Weight = *t.Weight
	}
	if t.Tag != nil {
		r.Tag = *t.Tag
	}
	if t.NextHop != nil {
		r.NextHop = *t.NextHop
	}
	if t.CommClear {
		r.Communities = map[string]bool{}
	}
	for _, c := range t.CommDelete {
		delete(r.Communities, c)
	}
	for _, c := range t.CommAdd {
		r.Communities[c] = true
	}
	if len(t.Prepend) > 0 {
		r.ASPath = append(append([]int64{}, t.Prepend...), r.ASPath...)
	}
}
