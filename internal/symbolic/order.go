package symbolic

import (
	"sort"

	"repro/internal/ir"
)

// Static variable-order search. The route encoding's default layout
// (prefix bits, length, next hop, then the atom blocks) is good but not
// always best: policies dominated by community matching, say, pay for
// keeping the community atoms at the bottom of every clause guard.
// ChooseRouteOrder evaluates a small family of block permutations by
// actually compiling a sample of the configurations' clauses on scratch
// factories and counting nodes — the only score that reflects the real
// interaction between the policy structure and the order.
//
// Candidates permute whole variable blocks and may split the prefix-bit
// block around the length field, but every candidate preserves the
// relative order of variables *within* a block. That invariant matters
// beyond node counts: cube and support walks emit variables in level
// order, so intra-block preservation plus the canonical witness
// extraction (bdd.AnySat's variable-index ordering) keeps reports
// byte-identical across orders.

// orderSampleClauses bounds how many clauses the scorer compiles per
// candidate. Sampling keeps the search a small fraction of one real
// compile while still touching every match kind the policies use.
const orderSampleClauses = 96

// routeBlocks returns the encoding's variable blocks as index slices, in
// layout order, keyed by name.
func routeBlocks(e *RouteEncoding) map[string][]int {
	seq := func(first, width int) []int {
		out := make([]int, width)
		for i := range out {
			out[i] = first + i
		}
		return out
	}
	return map[string][]int{
		"pbHi":  seq(e.prefixBits.first, 8),
		"pbLo":  seq(e.prefixBits.first+8, 24),
		"pl":    seq(e.prefixLen.first, e.prefixLen.width),
		"nh":    seq(e.nextHop.first, e.nextHop.width),
		"med":   seq(e.medVar0, len(e.medVals)),
		"tag":   seq(e.tagVar0, len(e.tagVals)),
		"proto": seq(e.protoVar0, len(protocolOrder)),
		"comm":  seq(e.commVar0, e.Comms.Size()),
		"as":    seq(e.asVar0, len(e.asAtoms)),
	}
}

// routeOrderCandidates are the block sequences the search scores. The
// identity comes first; the alternatives move the prefix length next to
// (or inside) the address bits, pull the atom blocks above the next hop,
// or lead with the community/as-path atoms.
var routeOrderCandidates = [][]string{
	{"pbHi", "pbLo", "pl", "nh", "med", "tag", "proto", "comm", "as"}, // identity
	{"pl", "pbHi", "pbLo", "nh", "med", "tag", "proto", "comm", "as"}, // length first
	{"pbHi", "pl", "pbLo", "nh", "med", "tag", "proto", "comm", "as"}, // length interleaved
	{"pbHi", "pbLo", "pl", "med", "tag", "proto", "comm", "as", "nh"}, // atoms before next hop
	{"comm", "as", "pbHi", "pbLo", "pl", "nh", "med", "tag", "proto"}, // communities first
}

// sampleClauses gathers a deterministic clause sample across the
// configurations (route maps in sorted-name order), paired with their
// owning config for list resolution.
func sampleClauses(cfgs []*ir.Config) (out []struct {
	cfg *ir.Config
	cl  *ir.RouteMapClause
}) {
	for _, cfg := range cfgs {
		if cfg == nil {
			continue
		}
		names := make([]string, 0, len(cfg.RouteMaps))
		for n := range cfg.RouteMaps {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			for _, cl := range cfg.RouteMaps[n].Clauses {
				if len(out) >= orderSampleClauses {
					return out
				}
				out = append(out, struct {
					cfg *ir.Config
					cl  *ir.RouteMapClause
				}{cfg, cl})
			}
		}
	}
	return out
}

// ChooseRouteOrder scores the candidate block orders for the given
// configurations and returns the winner as a bdd.SetOrder permutation,
// along with the node counts of the identity layout and the winner (the
// reorder gain surfaced on /metrics). A nil order means the identity won
// — callers skip SetOrder and keep the unpermuted fast path.
func ChooseRouteOrder(cfgs ...*ir.Config) (order []int, identityNodes, bestNodes int) {
	sample := sampleClauses(cfgs)
	if len(sample) == 0 {
		return nil, 0, 0
	}
	score := func(ord []int) int {
		e := NewRouteEncodingIntoOrdered(nil, ord, cfgs...)
		for _, s := range sample {
			e.ClauseGuardBDD(s.cfg, s.cl)
		}
		return e.F.Size()
	}
	// Block extents come from a throwaway identity encoding; its factory
	// doubles as the identity candidate's scorer.
	e0 := NewRouteEncodingInto(nil, cfgs...)
	blocks := routeBlocks(e0)
	for _, s := range sample {
		e0.ClauseGuardBDD(s.cfg, s.cl)
	}
	identityNodes = e0.F.Size()

	bestNodes = identityNodes
	for _, cand := range routeOrderCandidates[1:] {
		ord := make([]int, 0, e0.NumVars())
		for _, b := range cand {
			ord = append(ord, blocks[b]...)
		}
		if n := score(ord); n < bestNodes {
			bestNodes, order = n, ord
		}
	}
	return order, identityNodes, bestNodes
}
