package symbolic

import (
	"strings"
	"testing"

	"repro/internal/aclgen"
	"repro/internal/bdd"
	"repro/internal/cisco"
	"repro/internal/ir"
	"repro/internal/juniper"
	"repro/internal/policygen"
)

// TestStripeRegions: for every stripe count the regions are contiguous,
// pairwise disjoint, and cover all 32 window values exactly.
func TestStripeRegions(t *testing.T) {
	for n := -1; n <= 40; n++ {
		regions := StripeRegions(n)
		want := n
		if want < 1 {
			want = 1
		}
		if want > 32 {
			want = 32
		}
		if len(regions) != want {
			t.Fatalf("n=%d: %d regions", n, len(regions))
		}
		var covered [32]int
		prev := -1
		for _, r := range regions {
			lo, hi := int(r[0]), int(r[1])
			if lo != prev+1 || hi < lo || hi > 31 {
				t.Fatalf("n=%d: bad region [%d,%d] after %d", n, lo, hi, prev)
			}
			for v := lo; v <= hi; v++ {
				covered[v]++
			}
			prev = hi
		}
		if prev != 31 {
			t.Fatalf("n=%d: coverage stops at %d", n, prev)
		}
		for v, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d: value %d covered %d times", n, v, c)
			}
		}
	}
}

func TestWindowRunMask(t *testing.T) {
	if m := windowRunMask(0, 31); m != ^uint32(0) {
		t.Fatalf("full run = %08x", m)
	}
	if m := windowRunMask(3, 3); m != 1<<3 {
		t.Fatalf("singleton = %08x", m)
	}
	if m := windowRunMask(4, 7); m != 0xf0 {
		t.Fatalf("[4,7] = %08x", m)
	}
}

func genPolicyPair(t *testing.T, seed uint64, clauses int) (*ir.Config, *ir.Config, *ir.RouteMap, *ir.RouteMap) {
	t.Helper()
	pair := policygen.Generate(policygen.Params{Seed: seed, Clauses: clauses, Differences: 3})
	c, err := cisco.Parse("c.cfg", pair.CiscoText)
	if err != nil {
		t.Fatal(err)
	}
	j, err := juniper.Parse("j.cfg", pair.JuniperText)
	if err != nil {
		t.Fatal(err)
	}
	return c, j, c.RouteMaps[pair.PolicyName], j.RouteMaps[pair.PolicyName]
}

// takenKey identifies a path by the clause positions it takes.
func takenKey(rm *ir.RouteMap, p RoutePath) string {
	idx := map[*ir.RouteMapClause]int{}
	for i, cl := range rm.Clauses {
		idx[cl] = i
	}
	var b strings.Builder
	for _, cl := range p.Taken {
		b.WriteByte(byte(idx[cl]))
	}
	return b.String()
}

// TestEnumeratePathsRegionUnion: for several stripe counts, the union of
// each class's per-region guards equals the unrestricted class guard —
// the exactness invariant the striped merge relies on — and no region
// invents a class the full walk doesn't have.
func TestEnumeratePathsRegionUnion(t *testing.T) {
	for _, seed := range []uint64{1, 9, 42} {
		c, j, rm1, _ := genPolicyPair(t, seed, 8)
		e := NewRouteEncoding(c, j)
		full, err := e.EnumeratePaths(c, rm1)
		if err != nil {
			t.Fatal(err)
		}
		want := map[string]bdd.Node{}
		for _, p := range full {
			want[takenKey(rm1, p)] = p.Guard
		}
		for _, stripes := range []int{2, 5, 32} {
			got := map[string]bdd.Node{}
			for _, r := range StripeRegions(stripes) {
				region := e.RegionBDD(r[0], r[1])
				rsig := RegionSig(r[0], r[1])
				paths, err := e.EnumeratePathsRegion(c, rm1, region, rsig)
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range paths {
					k := takenKey(rm1, p)
					if _, ok := want[k]; !ok {
						t.Fatalf("seed %d stripes %d: region invented class %q", seed, stripes, k)
					}
					got[k] = e.F.Or(got[k], p.Guard)
				}
			}
			for k, g := range want {
				if got[k] != g {
					t.Fatalf("seed %d stripes %d: class %q union != full guard", seed, stripes, k)
				}
			}
			for k := range got {
				if _, ok := want[k]; !ok {
					t.Fatalf("seed %d stripes %d: extra class %q", seed, stripes, k)
				}
			}
		}
	}
}

// TestACLRegionUnion: AcceptSetRegion and EnumerateACLPathsRegion union
// back to their unrestricted forms over any region partition.
func TestACLRegionUnion(t *testing.T) {
	for _, seed := range []uint64{1, 5} {
		pair := aclgen.Generate(aclgen.Params{Seed: seed, Rules: 40, Differences: 4})
		for _, acl := range []*ir.ACL{pair.Cisco, pair.Juniper} {
			e := NewPacketEncoding()
			sigs := NewACLSigTable(pair.Cisco, pair.Juniper)
			w := sigs.SrcWindow()
			fullAccept := e.AcceptSet(acl)
			fullPaths := e.EnumerateACLPaths(acl)
			wantGuard := map[*ir.ACLLine]bdd.Node{}
			for _, p := range fullPaths {
				wantGuard[p.Line] = p.Guard
			}
			for _, stripes := range []int{3, 32} {
				accept := bdd.False
				gotGuard := map[*ir.ACLLine]bdd.Node{}
				for _, r := range StripeRegions(stripes) {
					region := e.SrcRegionBDD(w, r[0], r[1])
					rsig := RegionSig(r[0], r[1])
					accept = e.F.Or(accept, e.AcceptSetRegion(acl, region, rsig, sigs))
					for _, p := range e.EnumerateACLPathsRegion(acl, region, rsig, sigs) {
						if _, ok := wantGuard[p.Line]; !ok {
							t.Fatalf("seed %d stripes %d: region invented class", seed, stripes)
						}
						gotGuard[p.Line] = e.F.Or(gotGuard[p.Line], p.Guard)
					}
				}
				if accept != fullAccept {
					t.Fatalf("seed %d stripes %d: accept-set union differs", seed, stripes)
				}
				for l, g := range wantGuard {
					if gotGuard[l] != g {
						t.Fatalf("seed %d stripes %d: class guard union differs", seed, stripes)
					}
				}
			}
		}
	}
}

// TestChooseRouteOrderDeterministic: repeated searches over the same
// configurations return identical results, and any returned order is a
// valid permutation of the encoding's variables.
func TestChooseRouteOrderDeterministic(t *testing.T) {
	c, j, _, _ := genPolicyPair(t, 7, 12)
	o1, id1, best1 := ChooseRouteOrder(c, j)
	o2, id2, best2 := ChooseRouteOrder(c, j)
	if id1 != id2 || best1 != best2 || len(o1) != len(o2) {
		t.Fatalf("search not deterministic: (%d,%d,%d) vs (%d,%d,%d)",
			len(o1), id1, best1, len(o2), id2, best2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("orders differ at %d", i)
		}
	}
	if best1 > id1 {
		t.Fatalf("winner scored worse than identity: %d > %d", best1, id1)
	}
	if o1 != nil {
		e := NewRouteEncoding(c, j)
		if len(o1) != e.NumVars() {
			t.Fatalf("order length %d, want %d", len(o1), e.NumVars())
		}
		seen := make([]bool, len(o1))
		for _, v := range o1 {
			if v < 0 || v >= len(o1) || seen[v] {
				t.Fatalf("not a permutation")
			}
			seen[v] = true
		}
		// The ordered constructor must accept the chosen order.
		NewRouteEncodingIntoOrdered(nil, o1, c, j)
	}
}

// TestRouteEncodingGC: collection preserves the encoding — recompiling a
// clause guard from the reseated memo tables yields exactly the remapped
// node — and reclaims the extra garbage.
func TestRouteEncodingGC(t *testing.T) {
	c, j, rm1, _ := genPolicyPair(t, 3, 10)
	e := NewRouteEncoding(c, j)
	var guards []bdd.Node
	for _, cl := range rm1.Clauses {
		guards = append(guards, e.ClauseGuardBDD(c, cl))
	}
	// Garbage: products that nothing roots.
	for i := 1; i < len(guards); i++ {
		e.F.And(guards[i-1], guards[i])
	}
	before := e.F.Stats()
	keep := []bdd.Node{guards[0], guards[1]}
	keep = e.GC(keep)
	after := e.F.Stats()
	if after.GCRuns != before.GCRuns+1 {
		t.Fatalf("GCRuns = %d, want %d", after.GCRuns, before.GCRuns+1)
	}
	if after.GCReclaimed == before.GCReclaimed {
		t.Fatal("nothing reclaimed")
	}
	// Recompiling on the compacted arena must reproduce the remapped
	// guards exactly (hash-consing is canonical and the memo tables were
	// reseated, so the rebuild takes the same path).
	if g := e.ClauseGuardBDD(c, rm1.Clauses[0]); g != keep[0] {
		t.Fatalf("clause 0 guard %d != remapped %d", g, keep[0])
	}
	if g := e.ClauseGuardBDD(c, rm1.Clauses[1]); g != keep[1] {
		t.Fatalf("clause 1 guard %d != remapped %d", g, keep[1])
	}
	// WellFormed must still be a live, satisfiable constraint.
	if e.WellFormed == bdd.False {
		t.Fatal("WellFormed collapsed")
	}
	if got := e.F.AnySat(e.WellFormed); got == nil {
		t.Fatal("WellFormed unsatisfiable after GC")
	}
}
