package symbolic

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/bdd"
	"repro/internal/ir"
	"repro/internal/netaddr"
)

func TestBitVecAgainstBruteForce(t *testing.T) {
	f := bdd.NewFactory(4)
	v := bitVec{f: f, first: 0, width: 4}
	evalAt := func(n bdd.Node, x uint64) bool {
		a := make(bdd.Assignment, 4)
		for i := 0; i < 4; i++ {
			if x&(1<<uint(3-i)) != 0 {
				a[i] = 1
			}
		}
		return f.Eval(n, a)
	}
	for c := uint64(0); c < 16; c++ {
		eq := v.eqConst(c)
		geq := v.geqConst(c)
		leq := v.leqConst(c)
		for x := uint64(0); x < 16; x++ {
			if evalAt(eq, x) != (x == c) {
				t.Fatalf("eqConst(%d) wrong at %d", c, x)
			}
			if evalAt(geq, x) != (x >= c) {
				t.Fatalf("geqConst(%d) wrong at %d", c, x)
			}
			if evalAt(leq, x) != (x <= c) {
				t.Fatalf("leqConst(%d) wrong at %d", c, x)
			}
		}
	}
	for lo := uint64(0); lo < 16; lo++ {
		for hi := uint64(0); hi < 16; hi++ {
			r := v.rangeConst(lo, hi)
			for x := uint64(0); x < 16; x++ {
				if evalAt(r, x) != (lo <= x && x <= hi) {
					t.Fatalf("rangeConst(%d,%d) wrong at %d", lo, hi, x)
				}
			}
		}
	}
}

func TestBitVecPrefixAndMask(t *testing.T) {
	f := bdd.NewFactory(8)
	v := bitVec{f: f, first: 0, width: 8}
	evalAt := func(n bdd.Node, x uint64) bool {
		a := make(bdd.Assignment, 8)
		for i := 0; i < 8; i++ {
			if x&(1<<uint(7-i)) != 0 {
				a[i] = 1
			}
		}
		return f.Eval(n, a)
	}
	// prefixMatch: top 3 bits of 0b101xxxxx
	p := v.prefixMatch(0b10100000, 3)
	for x := uint64(0); x < 256; x++ {
		want := x>>5 == 0b101
		if evalAt(p, x) != want {
			t.Fatalf("prefixMatch wrong at %08b", x)
		}
	}
	// maskedMatch: care mask 0b11000011, value 0b10000001
	m := v.maskedMatch(0b10000001, 0b11000011)
	for x := uint64(0); x < 256; x++ {
		want := x&0b11000011 == 0b10000001
		if evalAt(m, x) != want {
			t.Fatalf("maskedMatch wrong at %08b", x)
		}
	}
}

// buildFigure1 returns the Cisco and Juniper IR configs of Figure 1.
func buildFigure1() (*ir.Config, *ir.Config) {
	cisco := ir.NewConfig("cisco_router", ir.VendorCisco)
	cisco.PrefixLists["NETS"] = &ir.PrefixList{
		Name: "NETS",
		Entries: []ir.PrefixListEntry{
			{Action: ir.Permit, Range: netaddr.MustParsePrefixRange("10.9.0.0/16 : 16-32")},
			{Action: ir.Permit, Range: netaddr.MustParsePrefixRange("10.100.0.0/16 : 16-32")},
		},
	}
	cisco.CommunityLists["COMM"] = &ir.CommunityList{
		Name: "COMM",
		Entries: []ir.CommunityListEntry{
			{Action: ir.Permit, Conjuncts: []ir.CommunityMatcher{{Literal: "10:10"}}},
			{Action: ir.Permit, Conjuncts: []ir.CommunityMatcher{{Literal: "10:11"}}},
		},
	}
	cisco.RouteMaps["POL"] = &ir.RouteMap{
		Name: "POL", DefaultAction: ir.Deny,
		Clauses: []*ir.RouteMapClause{
			{Seq: 10, Action: ir.ClauseDeny, Matches: []ir.Match{ir.MatchPrefixList{Lists: []string{"NETS"}}}},
			{Seq: 20, Action: ir.ClauseDeny, Matches: []ir.Match{ir.MatchCommunity{Lists: []string{"COMM"}}}},
			{Seq: 30, Action: ir.ClausePermit, Sets: []ir.SetAction{ir.SetLocalPref{Value: 30}}},
		},
	}
	juniper := ir.NewConfig("juniper_router", ir.VendorJuniper)
	juniper.PrefixLists["NETS"] = &ir.PrefixList{
		Name: "NETS",
		Entries: []ir.PrefixListEntry{
			{Action: ir.Permit, Range: netaddr.MustParsePrefixRange("10.9.0.0/16 : 16-16")},
			{Action: ir.Permit, Range: netaddr.MustParsePrefixRange("10.100.0.0/16 : 16-16")},
		},
	}
	juniper.CommunityLists["COMM"] = &ir.CommunityList{
		Name: "COMM",
		Entries: []ir.CommunityListEntry{
			{Action: ir.Permit, Conjuncts: []ir.CommunityMatcher{{Literal: "10:10"}, {Literal: "10:11"}}},
		},
	}
	juniper.RouteMaps["POL"] = &ir.RouteMap{
		Name: "POL", DefaultAction: ir.Deny,
		Clauses: []*ir.RouteMapClause{
			{Seq: 1, Name: "rule1", Action: ir.ClauseDeny, Matches: []ir.Match{ir.MatchPrefixList{Lists: []string{"NETS"}}}},
			{Seq: 2, Name: "rule2", Action: ir.ClauseDeny, Matches: []ir.Match{ir.MatchCommunity{Lists: []string{"COMM"}}}},
			{Seq: 3, Name: "rule3", Action: ir.ClausePermit, Sets: []ir.SetAction{ir.SetLocalPref{Value: 30}}},
		},
	}
	return cisco, juniper
}

func TestEnumeratePathsFigure2(t *testing.T) {
	// Figure 2 of the paper: the Cisco POL partitions routes into three
	// classes: NETS, ¬NETS∧COMM, and the rest.
	cisco, juniper := buildFigure1()
	e := NewRouteEncoding(cisco, juniper)
	paths, err := e.EnumeratePaths(cisco, cisco.RouteMaps["POL"])
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("got %d classes, want 3 (Figure 2)", len(paths))
	}
	if paths[0].Accept || paths[1].Accept || !paths[2].Accept {
		t.Error("actions should be reject, reject, accept")
	}
	if lp := paths[2].Transform.LocalPref; lp == nil || *lp != 30 {
		t.Error("accept class should set local-pref 30")
	}
	// The classes partition WellFormed.
	union := bdd.False
	for i, p := range paths {
		union = e.F.Or(union, p.Guard)
		for j := i + 1; j < len(paths); j++ {
			if e.F.And(p.Guard, paths[j].Guard) != bdd.False {
				t.Errorf("classes %d and %d overlap", i, j)
			}
		}
	}
	if union != e.WellFormed {
		t.Error("classes should partition the well-formed space")
	}
}

// routeSamples builds a deterministic set of probe routes covering the
// interesting corners of the Figure 1 policies.
func routeSamples() []*ir.Route {
	mk := func(pfx string, comms ...string) *ir.Route {
		r := ir.NewRoute(netaddr.MustParsePrefix(pfx))
		for _, c := range comms {
			r.Communities[c] = true
		}
		return r
	}
	return []*ir.Route{
		mk("10.9.0.0/16"),
		mk("10.9.1.0/24"),
		mk("10.9.255.255/32"),
		mk("10.100.0.0/16"),
		mk("10.100.3.0/24"),
		mk("10.101.0.0/16"),
		mk("0.0.0.0/0"),
		mk("192.0.2.0/24"),
		mk("192.0.2.0/24", "10:10"),
		mk("192.0.2.0/24", "10:11"),
		mk("192.0.2.0/24", "10:10", "10:11"),
		mk("10.9.4.0/24", "10:10"),
		mk("10.8.0.0/16", "10:10", "10:11"),
	}
}

func TestSymbolicAgreesWithConcrete(t *testing.T) {
	cisco, juniper := buildFigure1()
	e := NewRouteEncoding(cisco, juniper)
	for _, tc := range []struct {
		cfg *ir.Config
	}{{cisco}, {juniper}} {
		rm := tc.cfg.RouteMaps["POL"]
		paths, err := e.EnumeratePaths(tc.cfg, rm)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range routeSamples() {
			cube := e.RouteCube(r)
			var hit *RoutePath
			for i := range paths {
				if e.F.And(paths[i].Guard, cube) != bdd.False {
					if hit != nil {
						t.Fatalf("%s: route %v in two classes", tc.cfg.Hostname, r)
					}
					hit = &paths[i]
				}
			}
			if hit == nil {
				t.Fatalf("%s: route %v in no class", tc.cfg.Hostname, r)
			}
			res := tc.cfg.EvalRouteMap(rm, r)
			if (res.Action == ir.Permit) != hit.Accept {
				t.Errorf("%s: route %v concrete=%v symbolic accept=%v",
					tc.cfg.Hostname, r, res.Action, hit.Accept)
			}
			if res.Action == ir.Permit {
				// Applying the path transform must reproduce the concrete
				// output attributes.
				got := r.Clone()
				hit.Transform.Apply(got)
				if !got.Equal(res.Route) {
					t.Errorf("%s: route %v transform %v gives %v, concrete %v",
						tc.cfg.Hostname, r, hit.Transform, got, res.Route)
				}
			}
		}
	}
}

func TestRouteCubeInWellFormed(t *testing.T) {
	cisco, juniper := buildFigure1()
	e := NewRouteEncoding(cisco, juniper)
	for _, r := range routeSamples() {
		if !e.F.Implies(e.RouteCube(r), e.WellFormed) {
			t.Errorf("cube of %v violates WellFormed", r)
		}
	}
}

func TestRouteFromAssignmentRoundTrip(t *testing.T) {
	cisco, juniper := buildFigure1()
	e := NewRouteEncoding(cisco, juniper)
	for _, r := range routeSamples() {
		a := e.F.AnySat(e.RouteCube(r))
		if a == nil {
			t.Fatalf("cube of %v unsatisfiable", r)
		}
		back := e.RouteFromAssignment(a)
		if back.Prefix != r.Prefix {
			t.Errorf("prefix round trip: %v -> %v", r.Prefix, back.Prefix)
		}
		for c := range r.Communities {
			if !back.Communities[c] {
				t.Errorf("community %s lost in round trip", c)
			}
		}
	}
}

func TestPrefixRangeBDDSemantics(t *testing.T) {
	e := NewRouteEncoding()
	cases := []struct {
		rng    string
		member string
		want   bool
	}{
		{"10.9.0.0/16 : 16-32", "10.9.1.0/24", true},
		{"10.9.0.0/16 : 16-32", "10.9.0.0/16", true},
		{"10.9.0.0/16 : 16-16", "10.9.1.0/24", false},
		{"10.9.0.0/16 : 16-32", "10.10.0.0/24", false},
		{"0.0.0.0/0 : 0-32", "203.0.113.0/28", true},
		{"10.0.0.0/8 : 24-24", "10.1.2.0/24", true},
		{"10.0.0.0/8 : 24-24", "10.1.0.0/16", false},
	}
	for _, c := range cases {
		rng := netaddr.MustParsePrefixRange(c.rng)
		n := e.PrefixRangeBDD(rng)
		cube := e.PrefixBDD(netaddr.MustParsePrefix(c.member))
		got := e.F.And(n, cube) != bdd.False
		if got != c.want {
			t.Errorf("%s contains %s: got %v want %v", c.rng, c.member, got, c.want)
		}
		// Cross-check against the concrete membership test.
		if rng.ContainsPrefix(netaddr.MustParsePrefix(c.member)) != c.want {
			t.Errorf("concrete disagreement for %s in %s", c.member, c.rng)
		}
	}
}

func TestPrefixRangeBDDMatchesConcrete(t *testing.T) {
	e := NewRouteEncoding()
	f := func(a1, a2 uint32, l1, l2, lo, hi uint8) bool {
		rng := netaddr.PrefixRange{Prefix: netaddr.NewPrefix(netaddr.Addr(a1), l1%33), Lo: lo % 33, Hi: hi % 33}
		member := netaddr.NewPrefix(netaddr.Addr(a2), l2%33)
		symbolic := e.F.And(e.PrefixRangeBDD(rng), e.PrefixBDD(member)) != bdd.False
		concrete := rng.ContainsPrefix(member)
		return symbolic == concrete
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestACLPathsAgainstConcrete(t *testing.T) {
	// A small but tricky ACL: overlapping rules, ports, established.
	mkLine := func(action ir.Action, proto ir.ProtocolMatch, src, dst string, dstPorts []netaddr.PortRange) *ir.ACLLine {
		l := ir.NewACLLine(action)
		l.Protocol = proto
		if src != "" {
			l.Src = []netaddr.Wildcard{netaddr.WildcardFromPrefix(netaddr.MustParsePrefix(src))}
		}
		if dst != "" {
			l.Dst = []netaddr.Wildcard{netaddr.WildcardFromPrefix(netaddr.MustParsePrefix(dst))}
		}
		l.DstPorts = dstPorts
		return l
	}
	est := ir.NewACLLine(ir.Permit)
	est.Protocol = ir.ProtoNumber(ir.ProtoNumTCP)
	est.Established = true
	acl := &ir.ACL{Name: "T", Lines: []*ir.ACLLine{
		mkLine(ir.Deny, ir.ProtoNumber(ir.ProtoNumTCP), "", "10.0.0.0/8", []netaddr.PortRange{{Lo: 22, Hi: 22}}),
		mkLine(ir.Permit, ir.ProtoNumber(ir.ProtoNumTCP), "192.0.2.0/24", "10.0.0.0/8", nil),
		est,
		mkLine(ir.Permit, ir.AnyProtocol, "198.51.100.0/24", "", nil),
	}}
	e := NewPacketEncoding()
	paths := e.EnumerateACLPaths(acl)

	// Paths partition the full packet space.
	union := bdd.False
	for i, p := range paths {
		union = e.F.Or(union, p.Guard)
		for j := i + 1; j < len(paths); j++ {
			if e.F.And(p.Guard, paths[j].Guard) != bdd.False {
				t.Errorf("ACL classes %d,%d overlap", i, j)
			}
		}
	}
	if union != bdd.True {
		t.Error("ACL classes should cover the packet space")
	}

	samples := []ir.Packet{
		{Src: netaddr.MustParseAddr("192.0.2.5"), Dst: netaddr.MustParseAddr("10.1.1.1"), Protocol: ir.ProtoNumTCP, DstPort: 22},
		{Src: netaddr.MustParseAddr("192.0.2.5"), Dst: netaddr.MustParseAddr("10.1.1.1"), Protocol: ir.ProtoNumTCP, DstPort: 80},
		{Src: netaddr.MustParseAddr("1.2.3.4"), Dst: netaddr.MustParseAddr("10.1.1.1"), Protocol: ir.ProtoNumTCP, DstPort: 443, TCPAck: true},
		{Src: netaddr.MustParseAddr("198.51.100.9"), Dst: netaddr.MustParseAddr("8.8.8.8"), Protocol: ir.ProtoNumUDP, DstPort: 53},
		{Src: netaddr.MustParseAddr("203.0.113.1"), Dst: netaddr.MustParseAddr("8.8.8.8"), Protocol: ir.ProtoNumICMP, ICMPType: 8},
		{Src: netaddr.MustParseAddr("198.51.100.9"), Dst: netaddr.MustParseAddr("10.0.0.9"), Protocol: ir.ProtoNumTCP, DstPort: 22},
	}
	for _, pkt := range samples {
		cube := e.PacketCube(pkt)
		var hit *ACLPath
		for i := range paths {
			if e.F.And(paths[i].Guard, cube) != bdd.False {
				if hit != nil {
					t.Fatalf("packet %+v in two classes", pkt)
				}
				hit = &paths[i]
			}
		}
		if hit == nil {
			t.Fatalf("packet %+v in no class", pkt)
		}
		action, line := acl.Evaluate(pkt)
		if (action == ir.Permit) != hit.Accept {
			t.Errorf("packet %+v concrete=%v symbolic=%v", pkt, action, hit.Accept)
		}
		if line != hit.Line {
			t.Errorf("packet %+v concrete line %v symbolic line %v", pkt, line, hit.Line)
		}
	}

	// AcceptSet must equal the union of accepting class guards.
	acc := e.AcceptSet(acl)
	fromPaths := bdd.False
	for _, p := range paths {
		if p.Accept {
			fromPaths = e.F.Or(fromPaths, p.Guard)
		}
	}
	if acc != fromPaths {
		t.Error("AcceptSet disagrees with accepting classes")
	}
}

func TestACLPathsRandomizedAgainstConcrete(t *testing.T) {
	// Randomized cross-check: symbolic accept set vs concrete evaluation
	// on generated packets.
	l1 := ir.NewACLLine(ir.Permit)
	l1.Protocol = ir.ProtoNumber(ir.ProtoNumTCP)
	l1.Dst = []netaddr.Wildcard{{Addr: netaddr.MustParseAddr("10.0.0.0"), Mask: netaddr.MustParseAddr("0.63.255.255")}}
	l1.DstPorts = []netaddr.PortRange{{Lo: 1000, Hi: 2000}}
	l2 := ir.NewACLLine(ir.Deny)
	l2.Src = []netaddr.Wildcard{{Addr: netaddr.MustParseAddr("9.140.0.0"), Mask: netaddr.MustParseAddr("0.0.1.255")}}
	l3 := ir.NewACLLine(ir.Permit)
	acl := &ir.ACL{Name: "R", Lines: []*ir.ACLLine{l1, l2, l3}}

	e := NewPacketEncoding()
	acc := e.AcceptSet(acl)
	f := func(src, dst uint32, proto uint8, sport, dport uint16, ack bool) bool {
		pkt := ir.Packet{
			Src: netaddr.Addr(src), Dst: netaddr.Addr(dst),
			Protocol: proto, SrcPort: sport, DstPort: dport, TCPAck: ack,
		}
		action, _ := acl.Evaluate(pkt)
		symbolic := e.F.And(acc, e.PacketCube(pkt)) != bdd.False
		return (action == ir.Permit) == symbolic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTransformCanonicalization(t *testing.T) {
	cfg := ir.NewConfig("r", ir.VendorCisco)
	cfg.CommunityLists["DEL"] = &ir.CommunityList{
		Name:    "DEL",
		Entries: []ir.CommunityListEntry{{Action: ir.Permit, Conjuncts: []ir.CommunityMatcher{{Regex: "^10:.*$"}}}},
	}
	e := NewRouteEncoding(cfg)
	// set community a b; then community add c — same as set community a b c.
	t1 := e.TransformOf(cfg, []ir.SetAction{
		ir.SetCommunities{Communities: []string{"10:1", "10:2"}},
		ir.SetCommunities{Communities: []string{"10:3"}, Additive: true},
	})
	t2 := e.TransformOf(cfg, []ir.SetAction{
		ir.SetCommunities{Communities: []string{"10:3", "10:2", "10:1"}},
	})
	if !t1.Equal(t2) {
		t.Errorf("equivalent community sequences differ: %v vs %v", t1, t2)
	}
	// delete after add removes the added community.
	t3 := e.TransformOf(cfg, []ir.SetAction{
		ir.SetCommunities{Communities: []string{"10:5"}, Additive: true},
		ir.DeleteCommunity{List: "DEL"},
	})
	if len(t3.CommAdd) != 0 {
		t.Errorf("added then deleted community should cancel: %v", t3)
	}
	if len(t3.CommDelete) == 0 {
		t.Error("delete should record deleted universe atoms")
	}
	// add after delete restores.
	t4 := e.TransformOf(cfg, []ir.SetAction{
		ir.DeleteCommunity{List: "DEL"},
		ir.SetCommunities{Communities: []string{"10:5"}, Additive: true},
	})
	for _, d := range t4.CommDelete {
		if d == "10:5" {
			t.Error("re-added atom should not stay deleted")
		}
	}
	// order of independent sets does not matter; last numeric set wins.
	lp1, lp2 := int64(100), int64(200)
	_ = lp1
	t5 := e.TransformOf(cfg, []ir.SetAction{ir.SetLocalPref{Value: lp1}, ir.SetLocalPref{Value: lp2}})
	if t5.LocalPref == nil || *t5.LocalPref != 200 {
		t.Error("last local-pref should win")
	}
	if !(Transform{}).IsIdentity() {
		t.Error("zero transform should be identity")
	}
}

func TestTransformApplyMatchesEval(t *testing.T) {
	cfg := ir.NewConfig("r", ir.VendorCisco)
	e := NewRouteEncoding(cfg)
	sets := []ir.SetAction{
		ir.SetLocalPref{Value: 55},
		ir.SetCommunities{Communities: []string{"7:7"}, Additive: true},
		ir.SetASPathPrepend{ASNs: []int64{65000}},
	}
	tr := e.TransformOf(cfg, sets)
	r := ir.NewRoute(netaddr.MustParsePrefix("10.0.0.0/8"))
	r.ASPath = []int64{1}
	got := r.Clone()
	tr.Apply(got)

	rm := &ir.RouteMap{Name: "X", DefaultAction: ir.Deny,
		Clauses: []*ir.RouteMapClause{{Action: ir.ClausePermit, Sets: sets}}}
	want := cfg.EvalRouteMap(rm, r).Route
	if !got.Equal(want) {
		t.Errorf("Apply %v != Eval %v", got, want)
	}
}

func TestTransformString(t *testing.T) {
	lp := int64(30)
	tr := Transform{LocalPref: &lp}
	if tr.String() != "SET LOCAL PREF 30" {
		t.Errorf("String = %q", tr.String())
	}
	if (Transform{}).String() != "" {
		t.Error("identity transform renders empty")
	}
}

func TestFallthroughPathEnumeration(t *testing.T) {
	cfg := ir.NewConfig("r", ir.VendorJuniper)
	cfg.RouteMaps["P"] = &ir.RouteMap{
		Name: "P", DefaultAction: ir.Permit,
		Clauses: []*ir.RouteMapClause{
			{Action: ir.ClauseFallthrough,
				Matches: []ir.Match{ir.MatchPrefixRanges{Ranges: []netaddr.PrefixRange{netaddr.MustParsePrefixRange("10.0.0.0/8 : 8-32")}}},
				Sets:    []ir.SetAction{ir.SetLocalPref{Value: 200}}},
			{Action: ir.ClausePermit,
				Matches: []ir.Match{ir.MatchPrefixRanges{Ranges: []netaddr.PrefixRange{netaddr.MustParsePrefixRange("10.1.0.0/16 : 16-32")}}},
				Sets:    []ir.SetAction{ir.SetMED{Value: 5}}},
			{Action: ir.ClauseDeny},
		},
	}
	e := NewRouteEncoding(cfg)
	paths, err := e.EnumeratePaths(cfg, cfg.RouteMaps["P"])
	if err != nil {
		t.Fatal(err)
	}
	// Expected classes: 10.1/16-in-10/8 via fallthrough+permit (lp 200,
	// med 5); rest of 10/8 via fallthrough+deny; 10.1 outside 10/8 is
	// impossible; outside 10/8 matching clause2 impossible (10.1 ⊆ 10/8);
	// outside 10/8 deny.
	if len(paths) != 3 {
		t.Fatalf("got %d paths: %+v", len(paths), paths)
	}
	r := ir.NewRoute(netaddr.MustParsePrefix("10.1.2.0/24"))
	cube := e.RouteCube(r)
	for _, p := range paths {
		if e.F.And(p.Guard, cube) != bdd.False {
			if !p.Accept {
				t.Error("10.1.2.0/24 should be accepted")
			}
			if p.Transform.LocalPref == nil || *p.Transform.LocalPref != 200 {
				t.Error("fallthrough local-pref should accumulate")
			}
			if p.Transform.MED == nil || *p.Transform.MED != 5 {
				t.Error("terminal med should apply")
			}
			if len(p.Taken) != 2 {
				t.Errorf("taken = %d clauses", len(p.Taken))
			}
		}
	}
}

func TestNextHopAndProtocolMatches(t *testing.T) {
	cfg := ir.NewConfig("r", ir.VendorCisco)
	cfg.PrefixLists["NH"] = &ir.PrefixList{
		Name:    "NH",
		Entries: []ir.PrefixListEntry{{Action: ir.Permit, Range: netaddr.MustParsePrefixRange("10.0.0.0/24 : 24-32")}},
	}
	cfg.RouteMaps["P"] = &ir.RouteMap{
		Name: "P", DefaultAction: ir.Deny,
		Clauses: []*ir.RouteMapClause{
			{Action: ir.ClausePermit, Matches: []ir.Match{
				ir.MatchNextHop{Lists: []string{"NH"}},
				ir.MatchProtocol{Protocols: []ir.Protocol{ir.ProtoStatic}},
			}},
		},
	}
	e := NewRouteEncoding(cfg)
	paths, err := e.EnumeratePaths(cfg, cfg.RouteMaps["P"])
	if err != nil {
		t.Fatal(err)
	}
	probe := func(nh string, proto ir.Protocol) bool {
		r := ir.NewRoute(netaddr.MustParsePrefix("192.0.2.0/24"))
		r.NextHop = netaddr.MustParseAddr(nh)
		r.Protocol = proto
		cube := e.RouteCube(r)
		for _, p := range paths {
			if p.Accept && e.F.And(p.Guard, cube) != bdd.False {
				return true
			}
		}
		return false
	}
	if !probe("10.0.0.7", ir.ProtoStatic) {
		t.Error("static route via 10.0.0.7 should match")
	}
	if probe("10.0.1.7", ir.ProtoStatic) {
		t.Error("next hop outside NH should not match")
	}
	if probe("10.0.0.7", ir.ProtoBGP) {
		t.Error("bgp protocol should not match")
	}
}

func TestMedTagAtoms(t *testing.T) {
	cfg := ir.NewConfig("r", ir.VendorCisco)
	cfg.RouteMaps["P"] = &ir.RouteMap{
		Name: "P", DefaultAction: ir.Deny,
		Clauses: []*ir.RouteMapClause{
			{Action: ir.ClausePermit, Matches: []ir.Match{ir.MatchMED{Value: 50}}},
			{Action: ir.ClausePermit, Matches: []ir.Match{ir.MatchTag{Value: 7}}},
		},
	}
	e := NewRouteEncoding(cfg)
	paths, _ := e.EnumeratePaths(cfg, cfg.RouteMaps["P"])
	find := func(med, tag int64) *RoutePath {
		r := ir.NewRoute(netaddr.MustParsePrefix("192.0.2.0/24"))
		r.MED = med
		r.Tag = tag
		cube := e.RouteCube(r)
		for i := range paths {
			if e.F.And(paths[i].Guard, cube) != bdd.False {
				return &paths[i]
			}
		}
		return nil
	}
	if p := find(50, 0); p == nil || !p.Accept {
		t.Error("med 50 should be accepted")
	}
	if p := find(0, 7); p == nil || !p.Accept {
		t.Error("tag 7 should be accepted")
	}
	if p := find(0, 0); p == nil || p.Accept {
		t.Error("plain route should be denied")
	}
	// med atoms are mutually exclusive: med=50 matching both atoms is
	// excluded by WellFormed.
	if len(e.medVals) != 1 || len(e.tagVals) != 1 {
		t.Errorf("atom vocab: med=%v tag=%v", e.medVals, e.tagVals)
	}
}

func TestDescribeExample(t *testing.T) {
	e := NewPacketEncoding()
	l := ir.NewACLLine(ir.Deny)
	l.Protocol = ir.ProtoNumber(ir.ProtoNumICMP)
	l.ICMPType = 8
	n := e.LineBDD(l)
	a := e.F.AnySat(n)
	fields, _ := e.DescribeExample(a)
	var sawProto bool
	for _, f := range fields {
		if f == "protocol: icmp" {
			sawProto = true
		}
	}
	if !sawProto {
		t.Errorf("fields = %v, want protocol: icmp", fields)
	}
}

func TestParseASPathHelper(t *testing.T) {
	got := parseASPath("65000 65001")
	if len(got) != 2 || got[0] != 65000 || got[1] != 65001 {
		t.Errorf("parseASPath = %v", got)
	}
	if parseASPath("") != nil {
		t.Error("empty path")
	}
}

func TestEnumeratePathsExplosionGuard(t *testing.T) {
	// 20 fall-through clauses over independent community atoms can take
	// 2^20 distinct paths — the enumerator must stop with an error rather
	// than loop.
	cfg := ir.NewConfig("r", ir.VendorCisco)
	rm := &ir.RouteMap{Name: "BOOM", DefaultAction: ir.Deny}
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("L%d", i)
		cfg.CommunityLists[name] = &ir.CommunityList{Name: name, Entries: []ir.CommunityListEntry{
			{Action: ir.Permit, Conjuncts: []ir.CommunityMatcher{{Literal: fmt.Sprintf("65000:%d", i)}}},
		}}
		rm.Clauses = append(rm.Clauses, &ir.RouteMapClause{
			Action:  ir.ClauseFallthrough,
			Matches: []ir.Match{ir.MatchCommunity{Lists: []string{name}}},
			Sets:    []ir.SetAction{ir.SetMED{Value: int64(i)}},
		})
	}
	rm.Clauses = append(rm.Clauses, &ir.RouteMapClause{Action: ir.ClausePermit})
	cfg.RouteMaps["BOOM"] = rm
	old := MaxPaths
	MaxPaths = 1000
	defer func() { MaxPaths = old }()
	e := NewRouteEncoding(cfg)
	if _, err := e.EnumeratePaths(cfg, rm); err == nil {
		t.Error("path explosion should be reported, not enumerated")
	}
}

// TestASPathSymbolicAgreesWithConcrete covers the as-path atomization:
// the symbolic encoding must agree with concrete evaluation for as-paths
// drawn from the regex exemplar universe.
func TestASPathSymbolicAgreesWithConcrete(t *testing.T) {
	cfg := ir.NewConfig("r", ir.VendorCisco)
	cfg.ASPathLists["AP"] = &ir.ASPathList{Name: "AP", Entries: []ir.ASPathListEntry{
		{Action: ir.Permit, Regex: "^65000$"},
		{Action: ir.Deny, Regex: "^65001$"},
		{Action: ir.Permit, Regex: "^6500[01]$"},
	}}
	cfg.RouteMaps["P"] = &ir.RouteMap{Name: "P", DefaultAction: ir.Deny,
		Clauses: []*ir.RouteMapClause{
			{Action: ir.ClausePermit, Matches: []ir.Match{ir.MatchASPath{Lists: []string{"AP"}}}},
		}}
	e := NewRouteEncoding(cfg)
	paths, err := e.EnumeratePaths(cfg, cfg.RouteMaps["P"])
	if err != nil {
		t.Fatal(err)
	}
	probe := func(asPath []int64) bool {
		r := ir.NewRoute(netaddr.MustParsePrefix("192.0.2.0/24"))
		r.ASPath = asPath
		cube := e.RouteCube(r)
		for _, p := range paths {
			if p.Accept && e.F.And(p.Guard, cube) != bdd.False {
				return true
			}
		}
		return false
	}
	cases := []struct {
		path []int64
		want bool
	}{
		{[]int64{65000}, true},  // first entry permits
		{[]int64{65001}, false}, // second entry denies (first match wins)
		{[]int64{65002}, false}, // matches nothing
	}
	for _, c := range cases {
		symbolicAccept := probe(c.path)
		r := ir.NewRoute(netaddr.MustParsePrefix("192.0.2.0/24"))
		r.ASPath = c.path
		concrete := cfg.EvalRouteMap(cfg.RouteMaps["P"], r).Action == ir.Permit
		if concrete != c.want {
			t.Errorf("concrete eval of %v = %v, want %v", c.path, concrete, c.want)
		}
		if symbolicAccept != c.want {
			t.Errorf("symbolic eval of %v = %v, want %v", c.path, symbolicAccept, c.want)
		}
	}
}

func TestEncodingAccessors(t *testing.T) {
	cfg := ir.NewConfig("r", ir.VendorCisco)
	cfg.CommunityLists["L"] = &ir.CommunityList{Name: "L", Entries: []ir.CommunityListEntry{
		{Action: ir.Permit, Conjuncts: []ir.CommunityMatcher{{Literal: "10:10"}}},
	}}
	e := NewRouteEncoding(cfg)
	if e.NumVars() != len(e.PrefixVars())+len(e.NonPrefixVars()) {
		t.Error("prefix/non-prefix vars must partition the space")
	}
	if len(e.CommunityVars()) != e.Comms.Size() {
		t.Error("CommunityVars size")
	}
	if len(e.CommunityVars())+len(e.NonCommunityVars()) != e.NumVars() {
		t.Error("community/non-community vars must partition the space")
	}
	if e.String() == "" {
		t.Error("String")
	}
	if _, ok := e.CommunityAtomVar("10:10"); !ok {
		t.Error("atom var missing")
	}
	if _, ok := e.CommunityAtomVar("99:99"); ok {
		t.Error("unknown atom should miss")
	}
	pe := NewPacketEncoding()
	if len(pe.SrcIPVars()) != 32 || len(pe.DstIPVars()) != 32 {
		t.Error("address var widths")
	}
	if len(pe.NonAddrVars("src"))+32 != pe.F.NumVars() {
		t.Error("src partition")
	}
	pkt := ir.Packet{Src: netaddr.MustParseAddr("1.2.3.4"), Dst: netaddr.MustParseAddr("5.6.7.8"),
		Protocol: ir.ProtoNumTCP, SrcPort: 1234, DstPort: 80, TCPAck: true, ICMPType: 0}
	a := pe.F.AnySat(pe.PacketCube(pkt))
	back := pe.PacketFromAssignment(a)
	if back != pkt {
		t.Errorf("packet round trip: %+v vs %+v", back, pkt)
	}
	if pe.F.And(pe.SrcPrefixBDD(netaddr.MustParsePrefix("1.2.0.0/16")), pe.PacketCube(pkt)) == bdd.False {
		t.Error("src prefix should contain the packet")
	}
	if pe.F.And(pe.DstPrefixBDD(netaddr.MustParsePrefix("9.0.0.0/8")), pe.PacketCube(pkt)) != bdd.False {
		t.Error("dst prefix should exclude the packet")
	}
}

func TestTransformStringVariants(t *testing.T) {
	med, w, tag := int64(5), int64(7), int64(9)
	nh := netaddr.MustParseAddr("10.0.0.1")
	tr := Transform{
		MED: &med, Weight: &w, Tag: &tag, NextHop: &nh,
		CommClear: true, CommAdd: []string{"1:1"},
		Prepend: []int64{65000},
	}
	s := tr.String()
	for _, want := range []string{"SET MED 5", "SET WEIGHT 7", "SET TAG 9",
		"SET NEXT HOP 10.0.0.1", "SET COMMUNITIES [1:1]", "PREPEND 65000"} {
		if !containsStr(s, want) {
			t.Errorf("Transform.String missing %q in %q", want, s)
		}
	}
	tr2 := Transform{CommAdd: []string{"2:2"}, CommDelete: []string{"3:3"}}
	s2 := tr2.String()
	if !containsStr(s2, "ADD COMMUNITIES [2:2]") || !containsStr(s2, "DELETE COMMUNITIES [3:3]") {
		t.Errorf("String = %q", s2)
	}
	// Apply with every field.
	r := ir.NewRoute(netaddr.MustParsePrefix("10.0.0.0/8"))
	r.Communities["3:3"] = true
	tr2.Apply(r)
	if r.Communities["3:3"] || !r.Communities["2:2"] {
		t.Error("Apply delete/add")
	}
	tr.Apply(r)
	if r.MED != 5 || r.Weight != 7 || r.Tag != 9 || r.NextHop != nh {
		t.Error("Apply numeric fields")
	}
	if len(r.Communities) != 1 || !r.Communities["1:1"] {
		t.Error("Apply clear+set")
	}
	if len(r.ASPath) != 1 || r.ASPath[0] != 65000 {
		t.Error("Apply prepend")
	}
	// Inequalities through Equal.
	if tr.Equal(tr2) {
		t.Error("different transforms must not be equal")
	}
	other := Transform{MED: &w}
	if other.Equal(Transform{MED: &med}) {
		t.Error("different MED values")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
