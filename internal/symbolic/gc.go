package symbolic

import "repro/internal/bdd"

// GC runs unique-table garbage collection on the encoding's factory
// (bdd.GC), rooting everything the encoding itself still needs — the
// WellFormed constraint and every memoized range/list BDD — plus the
// caller's extra roots (a policy cache passes its compiled path guards).
// All memo tables are reseated to the compacted references, and extra is
// remapped in place and returned. Every other Node derived from this
// encoding is invalid afterwards.
//
// Rooting the memo tables (rather than flushing them) is deliberate:
// the memos are the reusable fraction of the arena — the list and range
// BDDs the next comparison recalls — while the reclaimed garbage is the
// product intermediates, dead path guards, and subtracted sets a diff
// leaves behind.
func (e *RouteEncoding) GC(extra []bdd.Node) []bdd.Node {
	roots := make([]bdd.Node, 0,
		1+len(e.lenRange)+len(e.prefixRanges)+len(e.prefixLists)+
			len(e.nextHopLists)+len(e.commLists)+len(e.asPathLists)+len(extra))
	reseat := make([]func(bdd.Node), 0, cap(roots))
	add := func(n bdd.Node, set func(bdd.Node)) {
		roots = append(roots, n)
		reseat = append(reseat, set)
	}
	add(e.WellFormed, func(n bdd.Node) { e.WellFormed = n })
	for k, v := range e.lenRange {
		k := k
		add(v, func(n bdd.Node) { e.lenRange[k] = n })
	}
	for k, v := range e.prefixRanges {
		k := k
		add(v, func(n bdd.Node) { e.prefixRanges[k] = n })
	}
	for k, v := range e.prefixLists {
		k := k
		add(v, func(n bdd.Node) { e.prefixLists[k] = n })
	}
	for k, v := range e.nextHopLists {
		k := k
		add(v, func(n bdd.Node) { e.nextHopLists[k] = n })
	}
	for k, v := range e.commLists {
		k := k
		add(v, func(n bdd.Node) { e.commLists[k] = n })
	}
	for k, v := range e.asPathLists {
		k := k
		add(v, func(n bdd.Node) { e.asPathLists[k] = n })
	}
	for i := range extra {
		i := i
		add(extra[i], func(n bdd.Node) { extra[i] = n })
	}
	for i, n := range e.F.GC(roots) {
		reseat[i](n)
	}
	return extra
}
