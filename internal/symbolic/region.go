package symbolic

import (
	"repro/internal/bdd"
	"repro/internal/ir"
)

// Regions: the disjoint first-match prefix guards the intra-pair striped
// diff partitions on. A region is a contiguous interval [lo, hi] of the
// primary signature window's values — 5 address bits, so the 32 window
// values split exactly into any stripe count up to 32. Regions cover the
// whole input space and are pairwise disjoint, which is what makes the
// striped merge exact: every equivalence-class pair's intersection is
// the union of its per-region intersections.

// windowRunMask returns the window mask with bits lo..hi set.
func windowRunMask(lo, hi uint32) uint32 {
	return uint32((uint64(1)<<(hi-lo+1) - 1) << lo)
}

// StripeRegions partitions the 32 window values into n contiguous
// intervals (n is clamped to [1, 32]).
func StripeRegions(n int) [][2]uint32 {
	if n < 1 {
		n = 1
	}
	if n > 32 {
		n = 32
	}
	out := make([][2]uint32, n)
	for s := 0; s < n; s++ {
		out[s] = [2]uint32{uint32(s * 32 / n), uint32((s+1)*32/n - 1)}
	}
	return out
}

// RegionSig returns the signature of the region [lo, hi] of window A:
// the A half is the interval mask, the B half unconstrained.
func RegionSig(lo, hi uint32) Sig {
	return PackSig(windowRunMask(lo, hi), ^uint32(0))
}

// RegionBDD returns the constraint "window A of the advertised prefix's
// address bits takes a value in [lo, hi]".
func (e *RouteEncoding) RegionBDD(lo, hi uint32) bdd.Node {
	win := bitVec{f: e.F, first: e.prefixBits.first + e.sigWinA, width: sigWindowWidth}
	return win.rangeConst(uint64(lo), uint64(hi))
}

// SrcWindow reports the MSB offset of the table's source-address window
// — the axis ACL striping partitions on.
func (t *ACLSigTable) SrcWindow() int { return t.srcW }

// SrcRegionBDD returns the constraint "the 5-bit window of the source
// address at MSB offset w takes a value in [lo, hi]".
func (e *PacketEncoding) SrcRegionBDD(w int, lo, hi uint32) bdd.Node {
	win := bitVec{f: e.F, first: e.src.first + w, width: sigWindowWidth}
	return win.rangeConst(uint64(lo), uint64(hi))
}

// EnumerateACLPathsRegion is EnumerateACLPaths restricted to a region of
// packet space. regionSig must be a valid signature of the region under
// sigs' windows; lines whose signatures are disjoint from it provably
// cannot match inside the region and are skipped without compiling their
// match BDDs — the reachability set ("remaining") passes through them
// unchanged, exactly as the unrestricted fold would compute.
func (e *PacketEncoding) EnumerateACLPathsRegion(acl *ir.ACL, region bdd.Node, regionSig Sig, sigs *ACLSigTable) []ACLPath {
	var out []ACLPath
	remaining := region
	for _, l := range acl.Lines {
		if !regionSig.Overlap(sigs.LineSig(l)) {
			continue
		}
		g, rest := e.F.AndCofactors(remaining, e.LineBDD(l))
		if g != bdd.False {
			out = append(out, ACLPath{Guard: g, Accept: l.Action == ir.Permit, Line: l})
		}
		remaining = rest
		if remaining == bdd.False {
			break
		}
	}
	if remaining != bdd.False {
		out = append(out, ACLPath{Guard: remaining, Accept: false, Line: nil})
	}
	return out
}

// AcceptSetRegion is AcceptSet restricted to a region: it returns
// AcceptSet(acl) ∧ region, with the same signature-based line skipping
// as EnumerateACLPathsRegion.
func (e *PacketEncoding) AcceptSetRegion(acl *ir.ACL, region bdd.Node, regionSig Sig, sigs *ACLSigTable) bdd.Node {
	out := bdd.False
	remaining := region
	for _, l := range acl.Lines {
		if !regionSig.Overlap(sigs.LineSig(l)) {
			continue
		}
		g, rest := e.F.AndCofactors(remaining, e.LineBDD(l))
		if l.Action == ir.Permit {
			out = e.F.Or(out, g)
		}
		remaining = rest
		if remaining == bdd.False {
			break
		}
	}
	return out
}
