package symbolic

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/ir"
	"repro/internal/netaddr"
)

// PacketEncoding maps packet headers onto BDD variables: source and
// destination IPv4 address, IP protocol, transport ports, the TCP ACK/RST
// bits (for "established"), and the ICMP type.
type PacketEncoding struct {
	F *bdd.Factory

	src      bitVec
	dst      bitVec
	proto    bitVec
	srcPort  bitVec
	dstPort  bitVec
	tcpAck   int
	tcpRst   int
	icmpType bitVec

	lineCache map[*ir.ACLLine]bdd.Node
}

// NewPacketEncoding allocates the packet variable space.
func NewPacketEncoding() *PacketEncoding {
	return NewPacketEncodingInto(nil)
}

// NewPacketEncodingInto is NewPacketEncoding recycling an existing
// factory: if f is non-nil it is Reset and reused, so a worker comparing
// many ACL pairs pays for one arena and op cache, not one per pair.
// Nodes from before the call are invalidated.
func NewPacketEncodingInto(f *bdd.Factory) *PacketEncoding {
	e := &PacketEncoding{lineCache: map[*ir.ACLLine]bdd.Node{}}
	n := 0
	alloc := func(w int) int {
		v := n
		n += w
		return v
	}
	src := alloc(32)
	dst := alloc(32)
	proto := alloc(8)
	sp := alloc(16)
	dp := alloc(16)
	e.tcpAck = alloc(1)
	e.tcpRst = alloc(1)
	it := alloc(8)
	if f != nil {
		f.Reset(n)
		e.F = f
	} else {
		e.F = bdd.NewFactory(n)
	}
	e.src = bitVec{f: e.F, first: src, width: 32}
	e.dst = bitVec{f: e.F, first: dst, width: 32}
	e.proto = bitVec{f: e.F, first: proto, width: 8}
	e.srcPort = bitVec{f: e.F, first: sp, width: 16}
	e.dstPort = bitVec{f: e.F, first: dp, width: 16}
	e.icmpType = bitVec{f: e.F, first: it, width: 8}
	return e
}

// SrcIPVars returns the source address variables (for projection).
func (e *PacketEncoding) SrcIPVars() []int { return e.src.vars() }

// DstIPVars returns the destination address variables (for projection).
func (e *PacketEncoding) DstIPVars() []int { return e.dst.vars() }

// NonAddrVars returns every variable that is not part of the given
// address field ("src" or "dst"), for existential projection in
// header localization.
func (e *PacketEncoding) NonAddrVars(field string) []int {
	keep := map[int]bool{}
	var vars []int
	if field == "src" {
		vars = e.src.vars()
	} else {
		vars = e.dst.vars()
	}
	for _, v := range vars {
		keep[v] = true
	}
	var out []int
	for v := 0; v < e.F.NumVars(); v++ {
		if !keep[v] {
			out = append(out, v)
		}
	}
	return out
}

// SrcPrefixBDD returns packets whose source address lies in the prefix.
func (e *PacketEncoding) SrcPrefixBDD(p netaddr.Prefix) bdd.Node {
	return e.src.prefixMatch(uint64(p.Addr), int(p.Len))
}

// DstPrefixBDD returns packets whose destination address lies in the
// prefix.
func (e *PacketEncoding) DstPrefixBDD(p netaddr.Prefix) bdd.Node {
	return e.dst.prefixMatch(uint64(p.Addr), int(p.Len))
}

func (e *PacketEncoding) wildcardBDD(v bitVec, w netaddr.Wildcard) bdd.Node {
	return v.maskedMatch(uint64(w.Addr), uint64(^uint32(w.Mask)))
}

func (e *PacketEncoding) addrSetBDD(v bitVec, ws []netaddr.Wildcard) bdd.Node {
	if len(ws) == 0 {
		return bdd.True // empty = any
	}
	out := bdd.False
	for _, w := range ws {
		out = e.F.Or(out, e.wildcardBDD(v, w))
	}
	return out
}

func (e *PacketEncoding) portSetBDD(v bitVec, rs []netaddr.PortRange) bdd.Node {
	if len(rs) == 0 {
		return bdd.True
	}
	out := bdd.False
	for _, r := range rs {
		out = e.F.Or(out, v.rangeConst(uint64(r.Lo), uint64(r.Hi)))
	}
	return out
}

// LineBDD compiles one ACL line's match condition. Results are cached per
// line, since path enumeration consults each line twice.
func (e *PacketEncoding) LineBDD(l *ir.ACLLine) bdd.Node {
	if n, ok := e.lineCache[l]; ok {
		return n
	}
	f := e.F
	n := bdd.Node(bdd.True)
	if !l.Protocol.Any {
		n = f.And(n, e.proto.eqConst(uint64(l.Protocol.Number)))
	}
	n = f.And(n, e.addrSetBDD(e.src, l.Src))
	n = f.And(n, e.addrSetBDD(e.dst, l.Dst))
	n = f.And(n, e.portSetBDD(e.srcPort, l.SrcPorts))
	n = f.And(n, e.portSetBDD(e.dstPort, l.DstPorts))
	if l.Established {
		est := f.And(e.proto.eqConst(ir.ProtoNumTCP), f.Or(f.Var(e.tcpAck), f.Var(e.tcpRst)))
		n = f.And(n, est)
	}
	if l.ICMPType >= 0 {
		n = f.And(n, f.And(e.proto.eqConst(ir.ProtoNumICMP), e.icmpType.eqConst(uint64(l.ICMPType))))
	}
	e.lineCache[l] = n
	return n
}

// PacketCube encodes a concrete packet as a total assignment cube.
func (e *PacketEncoding) PacketCube(p ir.Packet) bdd.Node {
	f := e.F
	n := e.src.eqConst(uint64(p.Src))
	n = f.And(n, e.dst.eqConst(uint64(p.Dst)))
	n = f.And(n, e.proto.eqConst(uint64(p.Protocol)))
	n = f.And(n, e.srcPort.eqConst(uint64(p.SrcPort)))
	n = f.And(n, e.dstPort.eqConst(uint64(p.DstPort)))
	n = f.And(n, f.Lit(e.tcpAck, p.TCPAck))
	n = f.And(n, f.Lit(e.tcpRst, p.TCPRst))
	n = f.And(n, e.icmpType.eqConst(uint64(p.ICMPType)))
	return n
}

// PacketFromAssignment reconstructs a concrete example packet from a
// partial assignment; don't-care fields read as zero.
func (e *PacketEncoding) PacketFromAssignment(a bdd.Assignment) ir.Packet {
	return ir.Packet{
		Src:      netaddr.Addr(e.src.valueOf(a)),
		Dst:      netaddr.Addr(e.dst.valueOf(a)),
		Protocol: uint8(e.proto.valueOf(a)),
		SrcPort:  uint16(e.srcPort.valueOf(a)),
		DstPort:  uint16(e.dstPort.valueOf(a)),
		TCPAck:   a[e.tcpAck] == 1,
		TCPRst:   a[e.tcpRst] == 1,
		ICMPType: uint8(e.icmpType.valueOf(a)),
	}
}

// DescribeExample renders the non-address constraints of an assignment as
// "field: value" strings plus a count of additional constrained variables,
// the "+N more" form of the paper's Table 7.
func (e *PacketEncoding) DescribeExample(a bdd.Assignment) (fields []string, more int) {
	constrained := func(v bitVec) bool {
		for _, i := range v.vars() {
			if a[i] != -1 {
				return true
			}
		}
		return false
	}
	if constrained(e.proto) {
		p := uint8(e.proto.valueOf(a))
		fields = append(fields, "protocol: "+ir.ProtoNumber(p).String())
	}
	if constrained(e.srcPort) {
		fields = append(fields, fmt.Sprintf("srcPort: %d", e.srcPort.valueOf(a)))
	}
	if constrained(e.dstPort) {
		fields = append(fields, fmt.Sprintf("dstPort: %d", e.dstPort.valueOf(a)))
	}
	if a[e.tcpAck] != -1 || a[e.tcpRst] != -1 {
		fields = append(fields, fmt.Sprintf("tcpEstablished: %v", a[e.tcpAck] == 1 || a[e.tcpRst] == 1))
	}
	if constrained(e.icmpType) {
		fields = append(fields, fmt.Sprintf("icmpType: %d", e.icmpType.valueOf(a)))
	}
	for i, v := range a {
		if v != -1 && i >= e.proto.first {
			more++
		}
	}
	more -= len(fields)
	if more < 0 {
		more = 0
	}
	return fields, more
}
