package symbolic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bdd"
	"repro/internal/community"
	"repro/internal/ir"
	"repro/internal/netaddr"
)

// protocolOrder fixes the one-hot encoding order of route protocols.
var protocolOrder = []ir.Protocol{
	ir.ProtoConnected, ir.ProtoStatic, ir.ProtoOSPF, ir.ProtoBGP,
	ir.ProtoIBGP, ir.ProtoAggregate, ir.ProtoLocal,
}

// RouteEncoding maps route advertisements onto BDD variables. The
// vocabulary (community atoms, as-path atoms, MED/tag constants) is
// derived from the pair of configurations being compared, following the
// finite-atomization approach of the paper's Batfish/Bonsai substrate.
type RouteEncoding struct {
	F *bdd.Factory

	prefixBits bitVec // 32 vars: advertised prefix address bits
	prefixLen  bitVec // 6 vars: advertised prefix length (0..32)
	nextHop    bitVec // 32 vars: next-hop address bits

	Comms    *community.Universe
	commVar0 int

	asAtoms []string // as-path atom strings; the last entry is "<other>"
	asVar0  int

	medVals []int64
	medVar0 int

	tagVals []int64
	tagVar0 int

	protoVar0 int

	// WellFormed constrains assignments to represent real routes: valid
	// prefix length with zero padding beyond it, at most one MED/tag
	// atom, exactly one protocol and one as-path atom.
	WellFormed bdd.Node

	// cache of prefix length interval BDDs
	lenRange map[[2]uint8]bdd.Node
	regexps  map[string]*community.Matcher

	// Memo tables keyed by range value / list identity: a prefix list or
	// community list referenced by twenty clauses is encoded once per
	// encoding lifetime instead of once per reference. List keys are the
	// parsed *ir pointers — list objects are immutable after parsing, and
	// pointer identity is exactly "same list of the same config".
	prefixRanges map[netaddr.PrefixRange]bdd.Node
	prefixLists  map[*ir.PrefixList]bdd.Node
	nextHopLists map[*ir.PrefixList]bdd.Node
	commLists    map[*ir.CommunityList]bdd.Node
	asPathLists  map[*ir.ASPathList]bdd.Node

	// sigWinA and sigWinB are the MSB offsets of the two guard-signature
	// windows into the prefix address bits (sig.go); clauseSigs memoizes
	// per-clause masks.
	sigWinA, sigWinB int
	clauseSigs       map[*ir.RouteMapClause]Sig

	memo MemoStats
}

// MemoStats counts the encoding-level memo tables' recalls vs encodes —
// how often a prefix range / prefix list / community list / as-path list
// BDD was reused instead of rebuilt. An encoding is single-goroutine
// state (it owns its factory), so plain counters suffice and cost one
// increment per memo probe.
type MemoStats struct {
	RangeHits, RangeMisses int // prefix-range and length-interval BDDs
	ListHits, ListMisses   int // prefix/next-hop/community/as-path lists
}

// Memo reports the encoding's memo-table counters since construction.
func (e *RouteEncoding) Memo() MemoStats { return e.memo }

// NewRouteEncoding builds an encoding whose atom vocabulary covers all the
// given configurations.
func NewRouteEncoding(cfgs ...*ir.Config) *RouteEncoding {
	return NewRouteEncodingInto(nil, cfgs...)
}

// vocab is the atom vocabulary a set of configurations induces on the
// route encoding: the raw gathered lists, in deterministic config order.
type vocab struct {
	literals, regexes, asRegexes []string
	medVals, tagVals             []int64
}

// gatherVocab walks the configurations and collects every community
// literal/regex, as-path regex, and MED/tag constant the encoding must
// atomize.
func gatherVocab(cfgs ...*ir.Config) vocab {
	var v vocab
	medSet := map[int64]bool{}
	tagSet := map[int64]bool{}
	for _, cfg := range cfgs {
		if cfg == nil {
			continue
		}
		for _, cl := range cfg.CommunityLists {
			for _, e := range cl.Entries {
				for _, m := range e.Conjuncts {
					if m.Regex != "" {
						v.regexes = append(v.regexes, m.Regex)
					} else {
						v.literals = append(v.literals, m.Literal)
					}
				}
			}
		}
		for _, al := range cfg.ASPathLists {
			for _, e := range al.Entries {
				v.asRegexes = append(v.asRegexes, e.Regex)
			}
		}
		for _, rm := range cfg.RouteMaps {
			for _, cl := range rm.Clauses {
				for _, m := range cl.Matches {
					switch m := m.(type) {
					case ir.MatchMED:
						medSet[m.Value] = true
					case ir.MatchTag:
						tagSet[m.Value] = true
					}
				}
				for _, s := range cl.Sets {
					if sc, ok := s.(ir.SetCommunities); ok {
						v.literals = append(v.literals, sc.Communities...)
					}
				}
			}
		}
	}
	v.medVals = sortedInt64s(medSet)
	v.tagVals = sortedInt64s(tagSet)
	return v
}

// VocabFingerprint digests the encoding vocabulary the configurations
// induce, canonicalized so gathering order and duplicates don't matter.
// Every step from vocabulary to encoding is a pure function of the
// deduplicated, sorted atom sets (NewUniverse and the as-path atomization
// sort and dedup internally; the variable layout depends only on the
// resulting sizes), so two configuration sets with equal fingerprints
// produce structurally identical RouteEncodings — the invariant the
// cross-pair compiled-policy cache relies on to reuse one factory across
// pairs.
func VocabFingerprint(cfgs ...*ir.Config) string {
	v := gatherVocab(cfgs...)
	var b strings.Builder
	writeSet := func(ss []string) {
		sorted := append([]string(nil), ss...)
		sort.Strings(sorted)
		prev := "\x00" // impossible atom: writes the first element always
		for _, s := range sorted {
			if s != prev {
				b.WriteString(s)
				b.WriteByte(0)
				prev = s
			}
		}
		b.WriteByte(1)
	}
	writeSet(v.literals)
	writeSet(v.regexes)
	writeSet(v.asRegexes)
	for _, m := range v.medVals {
		fmt.Fprintf(&b, "%d\x00", m)
	}
	b.WriteByte(1)
	for _, t := range v.tagVals {
		fmt.Fprintf(&b, "%d\x00", t)
	}
	return b.String()
}

// NewRouteEncodingInto is NewRouteEncoding recycling an existing factory:
// if f is non-nil it is Reset to the encoding's variable count and reused,
// so callers comparing many configuration pairs on one goroutine avoid
// re-allocating the arena and op cache per pair. Nodes from before the
// call are invalidated.
func NewRouteEncodingInto(f *bdd.Factory, cfgs ...*ir.Config) *RouteEncoding {
	return NewRouteEncodingIntoOrdered(f, nil, cfgs...)
}

// NewRouteEncodingIntoOrdered is NewRouteEncodingInto with an explicit
// variable order (order[k] = variable at level k, as bdd.SetOrder): the
// permutation is installed on the freshly reset factory before any node
// is built. A nil order keeps the identity. Orders come from
// ChooseRouteOrder over the same configurations, so the length always
// matches the encoding's variable count.
func NewRouteEncodingIntoOrdered(f *bdd.Factory, order []int, cfgs ...*ir.Config) *RouteEncoding {
	v := gatherVocab(cfgs...)
	comms := community.NewUniverse(v.literals, v.regexes)

	asAtomSet := map[string]bool{}
	for _, r := range v.asRegexes {
		for _, e := range community.Exemplars(r, 8) {
			asAtomSet[e] = true
		}
	}
	asAtoms := make([]string, 0, len(asAtomSet)+1)
	for a := range asAtomSet {
		asAtoms = append(asAtoms, a)
	}
	sort.Strings(asAtoms)
	asAtoms = append(asAtoms, "<other>")

	medVals := v.medVals
	tagVals := v.tagVals

	e := &RouteEncoding{
		Comms:    comms,
		asAtoms:  asAtoms,
		medVals:  medVals,
		tagVals:  tagVals,
		lenRange: map[[2]uint8]bdd.Node{},
		regexps:  map[string]*community.Matcher{},

		prefixRanges: map[netaddr.PrefixRange]bdd.Node{},
		prefixLists:  map[*ir.PrefixList]bdd.Node{},
		nextHopLists: map[*ir.PrefixList]bdd.Node{},
		commLists:    map[*ir.CommunityList]bdd.Node{},
		asPathLists:  map[*ir.ASPathList]bdd.Node{},

		clauseSigs: map[*ir.RouteMapClause]Sig{},
	}
	e.sigWinA, e.sigWinB = chooseSigWindows(gatherSigEntries(cfgs...))
	n := 0
	alloc := func(width int) int {
		v := n
		n += width
		return v
	}
	pb := alloc(32)
	pl := alloc(6)
	nh := alloc(32)
	e.medVar0 = alloc(len(medVals))
	e.tagVar0 = alloc(len(tagVals))
	e.protoVar0 = alloc(len(protocolOrder))
	e.commVar0 = alloc(comms.Size())
	e.asVar0 = alloc(len(asAtoms))
	if f != nil {
		f.Reset(n)
		e.F = f
	} else {
		e.F = bdd.NewFactory(n)
	}
	if order != nil {
		e.F.SetOrder(order)
	}
	e.prefixBits = bitVec{f: e.F, first: pb, width: 32}
	e.prefixLen = bitVec{f: e.F, first: pl, width: 6}
	e.nextHop = bitVec{f: e.F, first: nh, width: 32}
	e.WellFormed = e.buildWellFormed()
	return e
}

func sortedInt64s(set map[int64]bool) []int64 {
	out := make([]int64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumVars returns the total variable count of the encoding.
func (e *RouteEncoding) NumVars() int { return e.F.NumVars() }

// buildWellFormed constructs the validity constraint described on
// RouteEncoding.
func (e *RouteEncoding) buildWellFormed() bdd.Node {
	f := e.F
	// Valid prefix: length L in 0..32 and bits >= L are zero.
	prefixOK := bdd.False
	for L := 0; L <= 32; L++ {
		cube := e.prefixLen.eqConst(uint64(L))
		for i := 31; i >= L; i-- {
			cube = f.And(cube, f.NVar(e.prefixBits.first+i))
		}
		prefixOK = f.Or(prefixOK, cube)
	}
	wf := prefixOK
	wf = f.And(wf, atMostOne(f, e.medVar0, len(e.medVals)))
	wf = f.And(wf, atMostOne(f, e.tagVar0, len(e.tagVals)))
	wf = f.And(wf, exactlyOne(f, e.protoVar0, len(protocolOrder)))
	wf = f.And(wf, exactlyOne(f, e.asVar0, len(e.asAtoms)))
	return wf
}

func atMostOne(f *bdd.Factory, first, n int) bdd.Node {
	out := bdd.True
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = f.And(out, f.Not(f.And(f.Var(first+i), f.Var(first+j))))
		}
	}
	return out
}

func exactlyOne(f *bdd.Factory, first, n int) bdd.Node {
	if n == 0 {
		return bdd.True
	}
	any := bdd.False
	for i := 0; i < n; i++ {
		any = f.Or(any, f.Var(first+i))
	}
	return f.And(any, atMostOne(f, first, n))
}

// PrefixVars returns the variables carrying the advertised prefix (bits
// and length) — the projection HeaderLocalize keeps.
func (e *RouteEncoding) PrefixVars() []int {
	return append(e.prefixBits.vars(), e.prefixLen.vars()...)
}

// NonPrefixVars returns all variables other than the prefix bits/length.
func (e *RouteEncoding) NonPrefixVars() []int {
	keep := map[int]bool{}
	for _, v := range e.PrefixVars() {
		keep[v] = true
	}
	var out []int
	for v := 0; v < e.F.NumVars(); v++ {
		if !keep[v] {
			out = append(out, v)
		}
	}
	return out
}

// lenIn returns the BDD for "prefix length in [lo,hi]".
func (e *RouteEncoding) lenIn(lo, hi uint8) bdd.Node {
	key := [2]uint8{lo, hi}
	if n, ok := e.lenRange[key]; ok {
		e.memo.RangeHits++
		return n
	}
	e.memo.RangeMisses++
	n := e.prefixLen.rangeConst(uint64(lo), uint64(hi))
	e.lenRange[key] = n
	return n
}

// PrefixRangeBDD returns the set of routes whose advertised prefix is a
// member of the range, memoized by range value.
func (e *RouteEncoding) PrefixRangeBDD(r netaddr.PrefixRange) bdd.Node {
	if r.IsEmpty() {
		return bdd.False
	}
	if n, ok := e.prefixRanges[r]; ok {
		e.memo.RangeHits++
		return n
	}
	e.memo.RangeMisses++
	bits := e.prefixBits.prefixMatch(uint64(r.Prefix.Addr), int(r.Prefix.Len))
	n := e.F.And(bits, e.lenIn(r.Lo, r.Hi))
	e.prefixRanges[r] = n
	return n
}

// PrefixBDD returns the set of routes advertising exactly prefix p. All
// 32 address bits are constrained (the canonical zero padding beyond the
// prefix length included), matching the membership semantics of
// netaddr.PrefixRange.
func (e *RouteEncoding) PrefixBDD(p netaddr.Prefix) bdd.Node {
	return e.F.And(
		e.prefixBits.eqConst(uint64(p.Addr)),
		e.prefixLen.eqConst(uint64(p.Len)),
	)
}

// CommunityAtomVar returns the BDD variable for "route carries community
// atom s", if s is in the universe.
func (e *RouteEncoding) CommunityAtomVar(s string) (bdd.Node, bool) {
	i, ok := e.Comms.Index(s)
	if !ok {
		return bdd.False, false
	}
	return e.F.Var(e.commVar0 + i), true
}

func (e *RouteEncoding) matcherFor(pattern string) *community.Matcher {
	if m, ok := e.regexps[pattern]; ok {
		return m
	}
	m, err := community.Compile(pattern)
	if err != nil {
		m = community.CompileLiteral(pattern) // degrade to literal match
	}
	e.regexps[pattern] = m
	return m
}

// communityMatcherBDD returns the set of routes carrying at least one
// community matched by m.
func (e *RouteEncoding) communityMatcherBDD(m ir.CommunityMatcher) bdd.Node {
	if m.Regex == "" {
		n, _ := e.CommunityAtomVar(m.Literal)
		return n
	}
	out := bdd.False
	for _, i := range e.Comms.MatchSet(e.matcherFor(m.Regex)) {
		out = e.F.Or(out, e.F.Var(e.commVar0+i))
	}
	return out
}

// communityListBDD folds a community list's first-match-wins entries,
// memoized by list identity.
func (e *RouteEncoding) communityListBDD(l *ir.CommunityList) bdd.Node {
	if n, ok := e.commLists[l]; ok {
		e.memo.ListHits++
		return n
	}
	e.memo.ListMisses++
	out := bdd.False // no entry matches ⇒ the list does not permit
	for i := len(l.Entries) - 1; i >= 0; i-- {
		entry := l.Entries[i]
		match := bdd.True
		if len(entry.Conjuncts) == 0 {
			match = bdd.False
		}
		for _, c := range entry.Conjuncts {
			match = e.F.And(match, e.communityMatcherBDD(c))
		}
		verdict := bdd.False
		if entry.Action == ir.Permit {
			verdict = bdd.True
		}
		out = e.F.Ite(match, verdict, out)
	}
	e.commLists[l] = out
	return out
}

// prefixListBDD folds a prefix list's first-match-wins entries, memoized
// by list identity.
func (e *RouteEncoding) prefixListBDD(l *ir.PrefixList) bdd.Node {
	if n, ok := e.prefixLists[l]; ok {
		e.memo.ListHits++
		return n
	}
	e.memo.ListMisses++
	out := bdd.False
	for i := len(l.Entries) - 1; i >= 0; i-- {
		entry := l.Entries[i]
		verdict := bdd.False
		if entry.Action == ir.Permit {
			verdict = bdd.True
		}
		out = e.F.Ite(e.PrefixRangeBDD(entry.Range), verdict, out)
	}
	e.prefixLists[l] = out
	return out
}

// nextHopListBDD folds a prefix list applied to the route's next hop
// (a /32 address), memoized by list identity.
func (e *RouteEncoding) nextHopListBDD(l *ir.PrefixList) bdd.Node {
	if n, ok := e.nextHopLists[l]; ok {
		e.memo.ListHits++
		return n
	}
	e.memo.ListMisses++
	out := bdd.False
	for i := len(l.Entries) - 1; i >= 0; i-- {
		entry := l.Entries[i]
		r := entry.Range
		var match bdd.Node = bdd.False
		if !r.IsEmpty() && r.Lo <= 32 && 32 <= r.Hi {
			match = e.nextHop.prefixMatch(uint64(r.Prefix.Addr), int(r.Prefix.Len))
		}
		verdict := bdd.False
		if entry.Action == ir.Permit {
			verdict = bdd.True
		}
		out = e.F.Ite(match, verdict, out)
	}
	e.nextHopLists[l] = out
	return out
}

// asPathListBDD folds an as-path list evaluated over the finite as-path
// atom universe, memoized by list identity. The "<other>" atom matches no
// regex (a conservative under-approximation documented in DESIGN.md).
func (e *RouteEncoding) asPathListBDD(l *ir.ASPathList) bdd.Node {
	if n, ok := e.asPathLists[l]; ok {
		e.memo.ListHits++
		return n
	}
	e.memo.ListMisses++
	out := bdd.False
	for i := len(l.Entries) - 1; i >= 0; i-- {
		entry := l.Entries[i]
		m := e.matcherFor(entry.Regex)
		match := bdd.False
		for j, atom := range e.asAtoms {
			if j == len(e.asAtoms)-1 {
				break // <other>
			}
			if m.Matches(atom) {
				match = e.F.Or(match, e.F.Var(e.asVar0+j))
			}
		}
		verdict := bdd.False
		if entry.Action == ir.Permit {
			verdict = bdd.True
		}
		out = e.F.Ite(match, verdict, out)
	}
	e.asPathLists[l] = out
	return out
}

// protoVar returns the one-hot variable of a protocol.
func (e *RouteEncoding) protoVar(p ir.Protocol) bdd.Node {
	for i, q := range protocolOrder {
		if q == p {
			return e.F.Var(e.protoVar0 + i)
		}
	}
	return bdd.False
}

// medAtomBDD returns the variable for "MED == v" (False if v is not an
// atom, which cannot happen for values gathered from the configs).
func (e *RouteEncoding) medAtomBDD(v int64) bdd.Node {
	for i, m := range e.medVals {
		if m == v {
			return e.F.Var(e.medVar0 + i)
		}
	}
	return bdd.False
}

func (e *RouteEncoding) tagAtomBDD(v int64) bdd.Node {
	for i, m := range e.tagVals {
		if m == v {
			return e.F.Var(e.tagVar0 + i)
		}
	}
	return bdd.False
}

// MatchBDD compiles a single route-map match condition under the named
// lists of cfg.
func (e *RouteEncoding) MatchBDD(cfg *ir.Config, m ir.Match) bdd.Node {
	switch m := m.(type) {
	case ir.MatchPrefixList:
		out := bdd.False
		for _, name := range m.Lists {
			if pl := cfg.PrefixLists[name]; pl != nil {
				out = e.F.Or(out, e.prefixListBDD(pl))
			}
		}
		return out
	case ir.MatchPrefixListFilter:
		pl := cfg.PrefixLists[m.List]
		if pl == nil {
			return bdd.False
		}
		out := bdd.False
		for i := len(pl.Entries) - 1; i >= 0; i-- {
			entry := pl.Entries[i]
			verdict := bdd.False
			if entry.Action == ir.Permit {
				verdict = bdd.True
			}
			rg := ir.ApplyRangeModifier(entry.Range, m.Modifier)
			out = e.F.Ite(e.PrefixRangeBDD(rg), verdict, out)
		}
		return out
	case ir.MatchPrefixRanges:
		out := bdd.False
		for _, r := range m.Ranges {
			out = e.F.Or(out, e.PrefixRangeBDD(r))
		}
		return out
	case ir.MatchCommunity:
		out := bdd.False
		for _, name := range m.Lists {
			if cl := cfg.CommunityLists[name]; cl != nil {
				out = e.F.Or(out, e.communityListBDD(cl))
			}
		}
		return out
	case ir.MatchASPath:
		out := bdd.False
		for _, name := range m.Lists {
			if al := cfg.ASPathLists[name]; al != nil {
				out = e.F.Or(out, e.asPathListBDD(al))
			}
		}
		return out
	case ir.MatchMED:
		return e.medAtomBDD(m.Value)
	case ir.MatchTag:
		return e.tagAtomBDD(m.Value)
	case ir.MatchProtocol:
		out := bdd.False
		for _, p := range m.Protocols {
			out = e.F.Or(out, e.protoVar(p))
		}
		return out
	case ir.MatchNextHop:
		out := bdd.False
		for _, name := range m.Lists {
			if pl := cfg.PrefixLists[name]; pl != nil {
				out = e.F.Or(out, e.nextHopListBDD(pl))
			}
		}
		return out
	}
	return bdd.False
}

// ClauseGuardBDD compiles the conjunction of a clause's match conditions.
func (e *RouteEncoding) ClauseGuardBDD(cfg *ir.Config, cl *ir.RouteMapClause) bdd.Node {
	out := bdd.True
	for _, m := range cl.Matches {
		out = e.F.And(out, e.MatchBDD(cfg, m))
	}
	return out
}

// RouteCube encodes a concrete route as a total assignment cube, used to
// cross-check the symbolic encoding against concrete evaluation.
func (e *RouteEncoding) RouteCube(r *ir.Route) bdd.Node {
	f := e.F
	n := e.prefixBits.eqConst(uint64(r.Prefix.Addr))
	n = f.And(n, e.prefixLen.eqConst(uint64(r.Prefix.Len)))
	n = f.And(n, e.nextHop.eqConst(uint64(r.NextHop)))
	for i, atom := range e.Comms.Atoms() {
		n = f.And(n, f.Lit(e.commVar0+i, r.Communities[atom]))
	}
	// as-path: exact atom if in the universe, else <other>.
	path := r.ASPathString()
	asIdx := len(e.asAtoms) - 1
	for i, atom := range e.asAtoms[:len(e.asAtoms)-1] {
		if atom == path {
			asIdx = i
			break
		}
	}
	for i := range e.asAtoms {
		n = f.And(n, f.Lit(e.asVar0+i, i == asIdx))
	}
	for i, v := range e.medVals {
		n = f.And(n, f.Lit(e.medVar0+i, r.MED == v))
	}
	for i, v := range e.tagVals {
		n = f.And(n, f.Lit(e.tagVar0+i, r.Tag == v))
	}
	for i, p := range protocolOrder {
		n = f.And(n, f.Lit(e.protoVar0+i, r.Protocol == p))
	}
	return n
}

// RouteFromAssignment reconstructs a concrete example route from a
// (possibly partial) satisfying assignment; don't-care fields take
// defaults. Used to render counterexamples and single-example fields.
func (e *RouteEncoding) RouteFromAssignment(a bdd.Assignment) *ir.Route {
	addr := netaddr.Addr(e.prefixBits.valueOf(a))
	length := e.prefixLen.valueOf(a)
	if length > 32 {
		length = 32
	}
	r := ir.NewRoute(netaddr.NewPrefix(addr, uint8(length)))
	r.NextHop = netaddr.Addr(e.nextHop.valueOf(a))
	for i, atom := range e.Comms.Atoms() {
		if a[e.commVar0+i] == 1 {
			r.Communities[atom] = true
		}
	}
	for i, v := range e.medVals {
		if a[e.medVar0+i] == 1 {
			r.MED = v
		}
	}
	for i, v := range e.tagVals {
		if a[e.tagVar0+i] == 1 {
			r.Tag = v
		}
	}
	r.Protocol = ir.ProtoBGP
	for i, p := range protocolOrder {
		if a[e.protoVar0+i] == 1 {
			r.Protocol = p
		}
	}
	for i, atom := range e.asAtoms[:len(e.asAtoms)-1] {
		if a[e.asVar0+i] == 1 {
			r.ASPath = parseASPath(atom)
		}
	}
	return r
}

// MEDValues returns the MED constants the encoding atomizes (sorted).
// Values outside this set are indistinguishable to the symbolic engine:
// they satisfy no MED atom.
func (e *RouteEncoding) MEDValues() []int64 { return e.medVals }

// TagValues returns the atomized tag constants (sorted).
func (e *RouteEncoding) TagValues() []int64 { return e.tagVals }

// ASPathAtoms returns the finite as-path universe, excluding the
// closing "<other>" atom — the exact path strings the symbolic encoding
// distinguishes. Samplers drawing concrete routes should stay inside
// this set (or use the empty path) so the concrete regex semantics and
// the atomized symbolic semantics coincide.
func (e *RouteEncoding) ASPathAtoms() []string {
	return e.asAtoms[:len(e.asAtoms)-1]
}

// FreshMED returns a MED value satisfying no atom of the encoding — the
// concretization of "MED is none of the configuration's constants".
func (e *RouteEncoding) FreshMED() int64 { return freshValue(e.medVals) }

// FreshTag returns a tag value satisfying no atom of the encoding.
func (e *RouteEncoding) FreshTag() int64 { return freshValue(e.tagVals) }

func freshValue(vals []int64) int64 {
	v := int64(0)
	for _, x := range vals {
		if x >= v {
			v = x + 1
		}
	}
	return v
}

// WitnessRoute extracts one concrete route guaranteed to lie inside the
// given non-empty route set (set must be a subset of WellFormed, as every
// SemanticDiff region is). It improves on AnySat + RouteFromAssignment in
// two ways that matter for soundness checking:
//
//   - MED/tag atoms all false or unconstrained concretize to a fresh
//     value outside the atom vocabulary instead of a default that may
//     collide with a forced-false atom;
//   - assignments selecting the "<other>" as-path atom are avoided when
//     any witness with a real atom (or no as-path constraint) exists.
//
// The boolean result reports exactness: false means every witness in the
// set selects "<other>", whose concretization (a synthesized path outside
// the atom universe) is only faithful when no as-path regex of the
// configurations matches the synthesized path — callers should treat such
// witnesses as advisory. A nil route means the set is empty.
func (e *RouteEncoding) WitnessRoute(set bdd.Node) (*ir.Route, bool) {
	if set == bdd.False {
		return nil, false
	}
	n := set
	if len(e.asAtoms) > 1 {
		// Prefer witnesses with a real as-path atom; fall back to the
		// whole set when the region forces "<other>".
		otherVar := e.asVar0 + len(e.asAtoms) - 1
		if m := e.F.And(set, e.F.NVar(otherVar)); m != bdd.False {
			n = m
		}
	}
	return e.ExactRoute(e.F.AnySat(n))
}

// ExactRoute concretizes a satisfying assignment (total or partial) into
// a route guaranteed to re-enter the assignment's constraints, repairing
// the optimistic defaults of RouteFromAssignment: MED/tag blocks with no
// atom selected take a fresh value outside the vocabulary (exact,
// because the concrete matchers only compare vocabulary constants). The
// boolean is false when the assignment selects the "<other>" as-path
// atom, which has no faithful concrete as-path; the returned route then
// carries a synthesized path and is advisory only. (When the
// configurations define no as-path regexes at all, "<other>" covers
// every as-path vacuously and the empty path is an exact
// concretization.)
func (e *RouteEncoding) ExactRoute(a bdd.Assignment) (*ir.Route, bool) {
	r := e.RouteFromAssignment(a)
	if !hasOne(a, e.medVar0, len(e.medVals)) {
		r.MED = e.FreshMED()
	}
	if !hasOne(a, e.tagVar0, len(e.tagVals)) {
		r.Tag = e.FreshTag()
	}
	if otherVar := e.asVar0 + len(e.asAtoms) - 1; len(e.asAtoms) > 1 && a[otherVar] == 1 {
		r.ASPath = e.syntheticOtherPath()
		return r, false
	}
	return r, true
}

// hasOne reports whether some variable of the block is assigned true.
func hasOne(a bdd.Assignment, first, n int) bool {
	for i := 0; i < n; i++ {
		if a[first+i] == 1 {
			return true
		}
	}
	return false
}

// syntheticOtherPath builds an as-path string not present in the atom
// universe and returns its parsed form.
func (e *RouteEncoding) syntheticOtherPath() []int64 {
	path := "64999"
	for {
		found := false
		for _, atom := range e.asAtoms[:len(e.asAtoms)-1] {
			if atom == path {
				found = true
				break
			}
		}
		if !found {
			return parseASPath(path)
		}
		path += " 64999"
	}
}

func parseASPath(s string) []int64 {
	var out []int64
	cur := int64(-1)
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] >= '0' && s[i] <= '9' {
			if cur < 0 {
				cur = 0
			}
			cur = cur*10 + int64(s[i]-'0')
			continue
		}
		if cur >= 0 {
			out = append(out, cur)
			cur = -1
		}
	}
	return out
}

// CommunityVars returns the BDD variables carrying the community atoms,
// in atom order — the projection for exhaustive community localization
// (the extension discussed in the paper's §4).
func (e *RouteEncoding) CommunityVars() []int {
	out := make([]int, e.Comms.Size())
	for i := range out {
		out[i] = e.commVar0 + i
	}
	return out
}

// NonCommunityVars returns every variable outside the community block.
func (e *RouteEncoding) NonCommunityVars() []int {
	var out []int
	for v := 0; v < e.F.NumVars(); v++ {
		if v < e.commVar0 || v >= e.commVar0+e.Comms.Size() {
			out = append(out, v)
		}
	}
	return out
}

// CommunityCube splits a (projected) assignment's community block into
// the atoms required present and required absent; unconstrained atoms are
// omitted.
func (e *RouteEncoding) CommunityCube(a bdd.Assignment) (present, absent []string) {
	for i, atom := range e.Comms.Atoms() {
		switch a[e.commVar0+i] {
		case 1:
			present = append(present, atom)
		case 0:
			absent = append(absent, atom)
		}
	}
	return present, absent
}

// ExampleCommunities renders the community content of an assignment for
// presentation: the atoms set to true, and a count of additional
// constrained-but-false atoms.
func (e *RouteEncoding) ExampleCommunities(a bdd.Assignment) []string {
	var out []string
	for i, atom := range e.Comms.Atoms() {
		if a[e.commVar0+i] == 1 {
			out = append(out, atom)
		}
	}
	return out
}

func (e *RouteEncoding) String() string {
	return fmt.Sprintf("RouteEncoding{vars=%d comms=%d aspaths=%d meds=%d tags=%d}",
		e.F.NumVars(), e.Comms.Size(), len(e.asAtoms), len(e.medVals), len(e.tagVals))
}
