// Package symbolic compiles IR configuration components (ACLs and route
// maps) into BDD-backed symbolic form: an encoding of packet headers and
// route advertisements over boolean variables, and the enumeration of a
// component's execution paths into equivalence classes (guard BDD, action,
// text), which is the input representation for Campion's SemanticDiff
// (§3.1 of the paper).
package symbolic

import (
	"repro/internal/bdd"
)

// bitVec is a fixed-width big-endian field of BDD variables: bit 0 is the
// most significant.
type bitVec struct {
	f     *bdd.Factory
	first int // variable index of the MSB
	width int
}

// eqConst returns the BDD for "field == value".
func (v bitVec) eqConst(value uint64) bdd.Node {
	n := bdd.True
	for i := v.width - 1; i >= 0; i-- {
		bit := value&(1<<uint(v.width-1-i)) != 0
		n = v.f.AndLit(v.first+i, bit, n)
	}
	return n
}

// geqConst returns the BDD for "field >= value".
func (v bitVec) geqConst(value uint64) bdd.Node {
	if value == 0 {
		return bdd.True
	}
	// Build from LSB to MSB: at each bit, if the constant bit is 1 the
	// field bit must be 1 and the rest must be >=; if 0, a 1 here makes
	// the field strictly greater regardless of lower bits.
	n := bdd.True
	for i := v.width - 1; i >= 0; i-- {
		bit := value&(1<<uint(v.width-1-i)) != 0
		if bit {
			n = v.f.AndLit(v.first+i, true, n)
		} else {
			n = v.f.OrLit(v.first+i, true, n)
		}
	}
	return n
}

// leqConst returns the BDD for "field <= value".
func (v bitVec) leqConst(value uint64) bdd.Node {
	n := bdd.True
	for i := v.width - 1; i >= 0; i-- {
		bit := value&(1<<uint(v.width-1-i)) != 0
		if bit {
			n = v.f.OrLit(v.first+i, false, n)
		} else {
			n = v.f.AndLit(v.first+i, false, n)
		}
	}
	return n
}

// rangeConst returns the BDD for "lo <= field <= hi".
func (v bitVec) rangeConst(lo, hi uint64) bdd.Node {
	if lo > hi {
		return bdd.False
	}
	return v.f.And(v.geqConst(lo), v.leqConst(hi))
}

// prefixMatch returns the BDD constraining the top plen bits to match the
// corresponding bits of value.
func (v bitVec) prefixMatch(value uint64, plen int) bdd.Node {
	n := bdd.True
	for i := plen - 1; i >= 0; i-- {
		bit := value&(1<<uint(v.width-1-i)) != 0
		n = v.f.AndLit(v.first+i, bit, n)
	}
	return n
}

// maskedMatch returns the BDD constraining field bits where care is set to
// equal the corresponding bits of value (wildcard matching).
func (v bitVec) maskedMatch(value, care uint64) bdd.Node {
	n := bdd.True
	for i := v.width - 1; i >= 0; i-- {
		m := uint64(1) << uint(v.width-1-i)
		if care&m == 0 {
			continue
		}
		n = v.f.AndLit(v.first+i, value&m != 0, n)
	}
	return n
}

// valueOf extracts the field's value from an assignment; don't-care bits
// read as 0.
func (v bitVec) valueOf(a bdd.Assignment) uint64 {
	var out uint64
	for i := 0; i < v.width; i++ {
		out <<= 1
		if a[v.first+i] == 1 {
			out |= 1
		}
	}
	return out
}

// vars returns the variable indices of the field.
func (v bitVec) vars() []int {
	out := make([]int, v.width)
	for i := range out {
		out[i] = v.first + i
	}
	return out
}
