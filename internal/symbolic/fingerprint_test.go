package symbolic

import (
	"testing"

	"repro/internal/ir"
)

// TestVocabFingerprintCanonical checks the fingerprint is a function of
// the induced vocabulary, not the gathering order: permuting the
// configuration arguments, or duplicating a config, must not change it.
func TestVocabFingerprintCanonical(t *testing.T) {
	c1, c2 := buildFigure1()
	fp12 := VocabFingerprint(c1, c2)
	fp21 := VocabFingerprint(c2, c1)
	if fp12 != fp21 {
		t.Error("fingerprint depends on configuration order")
	}
	if VocabFingerprint(c1, c2, c1) != fp12 {
		t.Error("fingerprint depends on duplication")
	}
	if VocabFingerprint(c1, nil, c2) != fp12 {
		t.Error("fingerprint disturbed by nil config")
	}
	// A config introducing a new atom must shift the fingerprint.
	extra := &ir.Config{RouteMaps: map[string]*ir.RouteMap{
		"X": {Name: "X", Clauses: []*ir.RouteMapClause{{
			Action: ir.ClausePermit,
			Sets:   []ir.SetAction{ir.SetCommunities{Communities: []string{"65000:9999"}}},
		}}},
	}}
	if VocabFingerprint(c1, c2, extra) == fp12 {
		t.Error("adding a config with a new community atom should change the fingerprint")
	}
}

// TestFingerprintEqualityImpliesIdenticalEncoding is the invariant the
// cross-pair compiled-policy cache rests on: when two configuration sets
// fingerprint equally, the encodings they induce are structurally
// identical — same variable count, and compiling a chain on a factory
// that already served the other set reuses the exact same nodes (pointer
// equality under hash-consing).
func TestFingerprintEqualityImpliesIdenticalEncoding(t *testing.T) {
	c1, c2 := buildFigure1()
	if VocabFingerprint(c1, c2) != VocabFingerprint(c2, c1) {
		t.Fatal("precondition: order-insensitive fingerprints")
	}
	eA := NewRouteEncoding(c1, c2)
	eB := NewRouteEncoding(c2, c1)
	if eA.NumVars() != eB.NumVars() {
		t.Fatalf("variable counts differ: %d vs %d", eA.NumVars(), eB.NumVars())
	}
	// Compile the same chain on both encodings; the guards must have the
	// same truth content. With one shared factory that is pointer
	// equality; across factories, compare via an isomorphism check on a
	// third encoding: re-encode both and compare node references.
	pA, err := eA.EnumeratePaths(c1, c1.RouteMaps["POL"])
	if err != nil {
		t.Fatal(err)
	}
	pB, err := eB.EnumeratePaths(c1, c1.RouteMaps["POL"])
	if err != nil {
		t.Fatal(err)
	}
	if len(pA) != len(pB) {
		t.Fatalf("path class counts differ: %d vs %d", len(pA), len(pB))
	}
	for i := range pA {
		if pA[i].Accept != pB[i].Accept || !pA[i].Transform.Equal(pB[i].Transform) {
			t.Fatalf("class %d actions differ", i)
		}
		if eA.F.SatCount(pA[i].Guard) != eB.F.SatCount(pB[i].Guard) {
			t.Fatalf("class %d guards differ in satisfying-set size", i)
		}
	}
	// Same factory, same vocabulary: recompiling must reproduce the exact
	// node references (canonical hash-consing), which is what makes
	// recalled cache entries indistinguishable from fresh compilations.
	pA2, err := eA.EnumeratePaths(c1, c1.RouteMaps["POL"])
	if err != nil {
		t.Fatal(err)
	}
	for i := range pA {
		if pA[i].Guard != pA2[i].Guard {
			t.Fatalf("class %d: recompilation produced different node", i)
		}
	}
}

// TestListMemoIdentity checks the per-encoding memo tables: compiling a
// match that references the same list twice must return the identical
// node, and the memo must not leak across distinct lists.
func TestListMemoIdentity(t *testing.T) {
	c1, c2 := buildFigure1()
	e := NewRouteEncoding(c1, c2)
	var pl1 *ir.PrefixList
	for _, pl := range c1.PrefixLists {
		pl1 = pl
		break
	}
	if pl1 == nil {
		t.Skip("figure 1 config has no prefix lists")
	}
	n1 := e.prefixListBDD(pl1)
	n2 := e.prefixListBDD(pl1)
	if n1 != n2 {
		t.Error("prefix-list memo did not return the identical node")
	}
	other := &ir.PrefixList{Name: pl1.Name, Entries: pl1.Entries}
	if got := e.prefixListBDD(other); got != n1 {
		// Same entries under a different identity must still be the same
		// BDD — hash-consing guarantees it even on a memo miss.
		t.Error("equal list content produced a different node")
	}
}
