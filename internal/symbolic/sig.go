package symbolic

import (
	"math/bits"

	"repro/internal/ir"
	"repro/internal/netaddr"
)

// Guard signatures: a constant-time disjointness filter for the clause
// products at the heart of SemanticDiff. Diffing two path sets is a
// product of BDD Ands, and on real policies almost all of those
// intersections are empty — each path is pinned under a handful of
// prefixes, and unrelated prefixes produce disjoint guards. A Sig is a
// conservative superset, computed from the IR alone (no BDD work), of
// the values two small windows of address bits can take inside a guard,
// packed as one word:
//
//	hi 32 bits: { windowA(x) | x ∈ Guard }    (5-bit window A)
//	lo 32 bits: { windowB(x) | x ∈ Guard }    (5-bit window B)
//
// Two guards can only intersect when BOTH windows may agree, so
// disjointness in either half proves And(Guard(p), Guard(q)) == False
// and the product step can skip the pair without building anything.
// The filter is exact — it only ever skips provably-empty
// intersections — which keeps reports byte-identical with and without
// it.
//
// Route guards place both windows into the advertised prefix's address
// bits (two offsets chosen to see independent bit ranges); packet
// guards place window A in the source address and window B in the
// destination. Offsets are chosen per vocabulary by scoring every
// placement on expected collisions and keeping the most discriminating.

// Sig is a packed guard signature. Bit v set in a half means "that
// window may take value v inside the guard". The zero Sig means "no
// signature computed" and never prunes — a freshly enumerated path
// always has at least one reachable window value per half, so a
// genuine signature has both halves nonzero.
type Sig uint64

// SigFull is the signature carrying no information: every window value
// allowed in both halves.
const SigFull Sig = ^Sig(0)

// sigWindowWidth is the per-half window width: 5 bits = 32 buckets.
const sigWindowWidth = 5

// PackSig assembles a signature from its two window halves.
func PackSig(a, b uint32) Sig { return Sig(a)<<32 | Sig(b) }

// Overlap reports whether the two signatures may intersect: the guards
// are provably disjoint when either window half is. A zero signature
// (not computed) always overlaps.
func (s Sig) Overlap(t Sig) bool {
	if s == 0 || t == 0 {
		return true
	}
	m := s & t
	return m>>32 != 0 && m&0xffffffff != 0
}

// sigEntry is one prefix constraint gathered from the IR: the first
// fixedLen address bits equal the corresponding bits of addr.
type sigEntry struct {
	addr     uint32
	fixedLen int
}

// entryRun returns the bucket interval [lo, hi] of one prefix entry for
// the 5-bit window at MSB offset w: the window values compatible with
// "first fixedLen bits == addr". The interval is always contiguous —
// the entry fixes a (possibly empty) top part of the window and leaves
// the rest free, and addr is canonical (bits beyond fixedLen zero).
func entryRun(w int, e sigEntry) (lo, hi uint32) {
	if e.fixedLen <= w {
		return 0, 31
	}
	base := (e.addr >> uint(32-w-sigWindowWidth)) & 31
	if e.fixedLen >= w+sigWindowWidth {
		return base, base
	}
	free := uint(w + sigWindowWidth - e.fixedLen)
	return base, base + 1<<free - 1
}

// entrySigMask returns the window mask of one prefix entry at offset w.
func entrySigMask(w int, e sigEntry) uint32 {
	lo, hi := entryRun(w, e)
	return windowRunMask(lo, hi)
}

// overlapPairs counts the pairs of bucket intervals [lo_i, hi_i] that
// intersect, in O(N + 32). Two intervals are disjoint exactly when one
// ends before the other starts — the two orderings are mutually
// exclusive — so overlapping pairs = C(N,2) − Σ_i #{j : hi_j < lo_i},
// and the inner count is a prefix sum over a 32-bucket histogram of
// interval ends.
func overlapPairs(los, his []uint32) int64 {
	var endsBelow [33]int64
	for _, h := range his {
		endsBelow[h+1]++
	}
	for v := 1; v <= 32; v++ {
		endsBelow[v] += endsBelow[v-1]
	}
	n := int64(len(los))
	pairs := n * (n - 1) / 2
	for _, l := range los {
		pairs -= endsBelow[l]
	}
	return pairs
}

// windowScore rates one window placement by the exact number of entry
// pairs whose masks intersect there — the pairs a product step could
// NOT skip. Minimizing collisions (not mask size) matters: a deep
// shared prefix makes every entry a single identical bucket, which is
// maximally small and maximally useless, while a shallow window full of
// unconstrained entries overlaps everything. Counting each pair once
// keeps those two failure modes comparable. Entry masks are contiguous
// runs, so pair-overlap reduces to interval intersection.
func windowScore(w int, entries []sigEntry, los, his []uint32) int64 {
	for k, e := range entries {
		los[k], his[k] = entryRun(w, e)
	}
	return overlapPairs(los, his)
}

// chooseSigWindows picks the MSB offsets of the two route signature
// windows: the best-scoring placement, and the best placement whose
// bits don't overlap the first (overlapping windows would see
// correlated values and prune nothing the first didn't). No entries
// (or ties) keep the shallowest placements.
func chooseSigWindows(entries []sigEntry) (wa, wb int) {
	if len(entries) == 0 {
		return 0, sigWindowWidth
	}
	const maxW = 32 - sigWindowWidth
	los := make([]uint32, len(entries))
	his := make([]uint32, len(entries))
	bestA, scoreA := 0, int64(1)<<62
	for w := 0; w <= maxW; w++ {
		if s := windowScore(w, entries, los, his); s < scoreA {
			bestA, scoreA = w, s
		}
	}
	bestB, scoreB := -1, int64(1)<<62
	for w := 0; w <= maxW; w++ {
		if w > bestA-sigWindowWidth && w < bestA+sigWindowWidth {
			continue
		}
		if s := windowScore(w, entries, los, his); s < scoreB {
			bestB, scoreB = w, s
		}
	}
	if bestB < 0 {
		bestB = bestA // no disjoint placement; a duplicate half is harmless
	}
	return bestA, bestB
}

// gatherSigEntries collects every prefix constraint the configurations
// can apply to the advertised prefix: prefix-list permit entries and
// inline prefix ranges. Deny entries never define a match set, so they
// don't inform window placement.
func gatherSigEntries(cfgs ...*ir.Config) []sigEntry {
	var out []sigEntry
	add := func(r netaddr.PrefixRange) {
		if r.IsEmpty() || r.Prefix.Len == 0 {
			return
		}
		out = append(out, sigEntry{addr: uint32(r.Prefix.Addr), fixedLen: int(r.Prefix.Len)})
	}
	for _, cfg := range cfgs {
		if cfg == nil {
			continue
		}
		for _, pl := range cfg.PrefixLists {
			for _, e := range pl.Entries {
				if e.Action == ir.Permit {
					add(e.Range)
				}
			}
		}
		for _, rm := range cfg.RouteMaps {
			for _, cl := range rm.Clauses {
				for _, m := range cl.Matches {
					if m, ok := m.(ir.MatchPrefixRanges); ok {
						for _, r := range m.Ranges {
							add(r)
						}
					}
				}
			}
		}
	}
	return out
}

// rangeSig returns the packed signature of one prefix range under the
// encoding's windows.
func (e *RouteEncoding) rangeSig(r netaddr.PrefixRange) Sig {
	en := sigEntry{addr: uint32(r.Prefix.Addr), fixedLen: int(r.Prefix.Len)}
	return PackSig(entrySigMask(e.sigWinA, en), entrySigMask(e.sigWinB, en))
}

// matchSigMask returns the signature mask of one match condition: a
// superset of the window values its match set allows. Matches that
// don't constrain the advertised prefix return SigFull.
func (e *RouteEncoding) matchSigMask(cfg *ir.Config, m ir.Match) Sig {
	switch m := m.(type) {
	case ir.MatchPrefixList:
		// The match set is at most the union of the found lists' permit
		// entries (first-match deny entries only shrink it).
		var s Sig
		for _, name := range m.Lists {
			if pl := cfg.PrefixLists[name]; pl != nil {
				for _, en := range pl.Entries {
					if en.Action == ir.Permit && !en.Range.IsEmpty() {
						s |= e.rangeSig(en.Range)
					}
				}
			}
		}
		return s
	case ir.MatchPrefixListFilter:
		var s Sig
		if pl := cfg.PrefixLists[m.List]; pl != nil {
			for _, en := range pl.Entries {
				if en.Action == ir.Permit {
					// The modifier widens length bounds only; the
					// address-bit constraint is the entry's own.
					if rg := ir.ApplyRangeModifier(en.Range, m.Modifier); !rg.IsEmpty() {
						s |= e.rangeSig(rg)
					}
				}
			}
		}
		return s
	case ir.MatchPrefixRanges:
		var s Sig
		for _, r := range m.Ranges {
			if !r.IsEmpty() {
				s |= e.rangeSig(r)
			}
		}
		return s
	}
	return SigFull
}

// clauseSig returns the signature mask of a clause's match conjunction,
// memoized by clause identity (clauses are immutable after parsing and
// belong to exactly one configuration).
func (e *RouteEncoding) clauseSig(cfg *ir.Config, cl *ir.RouteMapClause) Sig {
	if s, ok := e.clauseSigs[cl]; ok {
		return s
	}
	s := SigFull
	for _, m := range cl.Matches {
		s &= e.matchSigMask(cfg, m)
	}
	e.clauseSigs[cl] = s
	return s
}

// SigWindow reports the MSB offset of the encoding's primary signature
// window into the prefix address bits — the axis the intra-pair
// partitioner stripes on.
func (e *RouteEncoding) SigWindow() int { return e.sigWinA }

// ACL signatures: same mechanics over packet space, with window A in
// the source address and window B in the destination.

// ACLSigTable computes line signatures for one ACL diff: the windows
// are chosen from both ACLs' lines together, so both sides' signatures
// are comparable.
type ACLSigTable struct {
	srcW, dstW int
	memo       map[*ir.ACLLine]Sig
}

// wildcardSigMask returns the 32-bucket mask of one wildcard matcher
// over the 5-bit window at MSB offset w: every window value compatible
// with the matcher's cared bits. Wildcard care bits need not be
// contiguous, so this enumerates the 32 values.
func wildcardSigMask(w int, wc netaddr.Wildcard) uint32 {
	shift := uint(32 - w - sigWindowWidth)
	careWin := (^uint32(wc.Mask) >> shift) & 31
	if careWin == 0 {
		return ^uint32(0)
	}
	baseVal := (uint32(wc.Addr) >> shift) & 31 & careWin
	var m uint32
	for v := uint32(0); v < 32; v++ {
		if v&careWin == baseVal {
			m |= 1 << v
		}
	}
	return m
}

// fieldSigMask returns the mask of one address field: the union over
// its matchers (a packet must match at least one), full when the field
// is unconstrained.
func fieldSigMask(w int, wcs []netaddr.Wildcard) uint32 {
	if len(wcs) == 0 {
		return ^uint32(0)
	}
	var m uint32
	for _, wc := range wcs {
		m |= wildcardSigMask(w, wc)
	}
	return m
}

// chooseACLWindow scores every placement of one field's window across
// all lines of the given ACLs by the number of line pairs whose masks
// may intersect there (as in windowScore) and keeps the most
// discriminating. Wildcard masks may be non-contiguous, so each mask is
// widened to its interval hull [lowest set bucket, highest set bucket];
// hull overlap over-approximates mask overlap uniformly, which is all a
// relative score needs.
func chooseACLWindow(acls []*ir.ACL, field func(*ir.ACLLine) []netaddr.Wildcard) int {
	n := 0
	for _, acl := range acls {
		n += len(acl.Lines)
	}
	los := make([]uint32, 0, n)
	his := make([]uint32, 0, n)
	bestW, bestScore := 0, int64(1)<<62
	for w := 0; w <= 32-sigWindowWidth; w++ {
		los, his = los[:0], his[:0]
		for _, acl := range acls {
			for _, l := range acl.Lines {
				m := fieldSigMask(w, field(l))
				los = append(los, uint32(bits.TrailingZeros32(m)))
				his = append(his, uint32(31-bits.LeadingZeros32(m)))
			}
		}
		if score := overlapPairs(los, his); score < bestScore {
			bestW, bestScore = w, score
		}
	}
	return bestW
}

// NewACLSigTable chooses signature windows covering all given ACLs.
func NewACLSigTable(acls ...*ir.ACL) *ACLSigTable {
	return &ACLSigTable{
		srcW: chooseACLWindow(acls, func(l *ir.ACLLine) []netaddr.Wildcard { return l.Src }),
		dstW: chooseACLWindow(acls, func(l *ir.ACLLine) []netaddr.Wildcard { return l.Dst }),
		memo: map[*ir.ACLLine]Sig{},
	}
}

// LineSig returns the packed signature of one ACL line's match set; the
// nil line (the implicit deny) is unconstrained. An ACL path's guard is
// a subset of its line's match set, so the line signature is the path
// signature.
func (t *ACLSigTable) LineSig(l *ir.ACLLine) Sig {
	if l == nil {
		return SigFull
	}
	if s, ok := t.memo[l]; ok {
		return s
	}
	s := PackSig(fieldSigMask(t.srcW, l.Src), fieldSigMask(t.dstW, l.Dst))
	t.memo[l] = s
	return s
}
