package symbolic

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/ir"
)

// RoutePath is one equivalence class of a route map: all routes that take
// the same branches through the policy. The triple (Guard, action,
// Terminal text) is the (λ, a, t) of the paper's SemanticDiff (§3.1).
type RoutePath struct {
	// Guard is the symbolic set of routes in the class, already
	// intersected with the encoding's WellFormed constraint.
	Guard bdd.Node
	// Accept reports whether routes in the class are permitted.
	Accept bool
	// Transform is the net attribute change applied to accepted routes.
	Transform Transform
	// Terminal is the deciding clause; nil when the route map's default
	// action decided.
	Terminal *ir.RouteMapClause
	// Taken lists the matched clauses along the path, including
	// fall-through clauses and the terminal.
	Taken []*ir.RouteMapClause
	// Sig is the guard's signature (sig.go): a conservative superset of
	// the values the encoding's address-bit window takes inside Guard.
	// Zero means "not computed" and disables pruning for this path.
	Sig Sig
}

// MaxPaths bounds route-map path enumeration. Fall-through clauses can in
// principle double the path count, so a runaway policy is reported rather
// than looping. It is a variable only so tests can exercise the guard
// cheaply.
var MaxPaths = 100000

// EnumeratePaths partitions the route space into the route map's
// equivalence classes. Classes with empty guards are dropped.
func (e *RouteEncoding) EnumeratePaths(cfg *ir.Config, rm *ir.RouteMap) ([]RoutePath, error) {
	return e.enumeratePaths(cfg, rm, e.WellFormed, SigFull, false)
}

// EnumeratePathsRegion enumerates the equivalence classes of rm
// restricted to a region of route space (intersected with WellFormed).
// regionSig must be a valid signature of the region — a superset of the
// window values reachable inside it — because the walk uses it to skip
// clauses outright: a clause whose signature is disjoint from the spine's
// provably cannot match inside the region, so neither its guard BDD nor
// the two Ands are built and the spine guard passes through unchanged.
// That skip is where intra-pair striping wins on one CPU: each stripe
// compiles only the clauses whose prefixes can fall in its region.
func (e *RouteEncoding) EnumeratePathsRegion(cfg *ir.Config, rm *ir.RouteMap, region bdd.Node, regionSig Sig) ([]RoutePath, error) {
	return e.enumeratePaths(cfg, rm, e.F.And(e.WellFormed, region), regionSig, true)
}

func (e *RouteEncoding) enumeratePaths(cfg *ir.Config, rm *ir.RouteMap, start bdd.Node, startSig Sig, prune bool) ([]RoutePath, error) {
	var out []RoutePath
	var walk func(i int, guard bdd.Node, sig Sig, sets []ir.SetAction, taken []*ir.RouteMapClause) error
	walk = func(i int, guard bdd.Node, sig Sig, sets []ir.SetAction, taken []*ir.RouteMapClause) error {
		if guard == bdd.False {
			return nil
		}
		if len(out) >= MaxPaths {
			return fmt.Errorf("symbolic: route map %s exceeds %d paths", rm.Name, MaxPaths)
		}
		if i == len(rm.Clauses) {
			p := RoutePath{
				Guard:  guard,
				Accept: rm.DefaultAction == ir.Permit,
				Taken:  append([]*ir.RouteMapClause{}, taken...),
				Sig:    sig,
			}
			if p.Accept {
				p.Transform = e.TransformOf(cfg, sets)
			}
			out = append(out, p)
			return nil
		}
		cl := rm.Clauses[i]
		if prune && !sig.Overlap(e.clauseSig(cfg, cl)) {
			// The spine guard is disjoint from the clause's match set:
			// exactly the takenGuard == False branch below, at zero cost.
			return walk(i+1, guard, sig, sets, taken)
		}
		m := e.ClauseGuardBDD(cfg, cl)
		// One fused product walk yields both successors of this clause:
		// the taken guard and the fall-through spine.
		takenGuard, notTaken := e.F.AndCofactors(guard, m)
		if takenGuard != bdd.False {
			// The taken guard is a subset of the clause's match set, so
			// its signature narrows to the clause mask.
			takenSig := sig & e.clauseSig(cfg, cl)
			switch cl.Action {
			case ir.ClausePermit:
				p := RoutePath{
					Guard:     takenGuard,
					Accept:    true,
					Transform: e.TransformOf(cfg, append(append([]ir.SetAction{}, sets...), cl.Sets...)),
					Terminal:  cl,
					Taken:     append(append([]*ir.RouteMapClause{}, taken...), cl),
					Sig:       takenSig,
				}
				out = append(out, p)
			case ir.ClauseDeny:
				p := RoutePath{
					Guard:    takenGuard,
					Accept:   false,
					Terminal: cl,
					Taken:    append(append([]*ir.RouteMapClause{}, taken...), cl),
					Sig:      takenSig,
				}
				out = append(out, p)
			case ir.ClauseFallthrough:
				if err := walk(i+1, takenGuard, takenSig,
					append(append([]ir.SetAction{}, sets...), cl.Sets...),
					append(append([]*ir.RouteMapClause{}, taken...), cl)); err != nil {
					return err
				}
			}
		}
		return walk(i+1, notTaken, sig, sets, taken)
	}
	if err := walk(0, start, startSig, nil, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// ACLPath is one equivalence class of an ACL: the packets that reach and
// match one line (or fall off the end to the implicit deny).
type ACLPath struct {
	Guard  bdd.Node
	Accept bool
	// Line is the matching ACL line; nil for the implicit deny.
	Line *ir.ACLLine
}

// EnumerateACLPaths partitions the packet space into the ACL's equivalence
// classes under first-match-wins semantics. Lines that can never be
// reached produce no class.
func (e *PacketEncoding) EnumerateACLPaths(acl *ir.ACL) []ACLPath {
	var out []ACLPath
	remaining := bdd.Node(bdd.True)
	for _, l := range acl.Lines {
		g, rest := e.F.AndCofactors(remaining, e.LineBDD(l))
		if g != bdd.False {
			out = append(out, ACLPath{Guard: g, Accept: l.Action == ir.Permit, Line: l})
		}
		remaining = rest
		if remaining == bdd.False {
			break
		}
	}
	if remaining != bdd.False {
		out = append(out, ACLPath{Guard: remaining, Accept: false, Line: nil})
	}
	return out
}

// AcceptSet returns the full accept set of the ACL in one BDD — the
// monolithic form used by the Minesweeper-style baseline and the pruning
// pass of SemanticDiff.
func (e *PacketEncoding) AcceptSet(acl *ir.ACL) bdd.Node {
	out := bdd.False
	remaining := bdd.Node(bdd.True)
	for _, l := range acl.Lines {
		g, rest := e.F.AndCofactors(remaining, e.LineBDD(l))
		if l.Action == ir.Permit {
			out = e.F.Or(out, g)
		}
		remaining = rest
		if remaining == bdd.False {
			break
		}
	}
	return out
}
