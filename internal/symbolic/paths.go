package symbolic

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/ir"
)

// RoutePath is one equivalence class of a route map: all routes that take
// the same branches through the policy. The triple (Guard, action,
// Terminal text) is the (λ, a, t) of the paper's SemanticDiff (§3.1).
type RoutePath struct {
	// Guard is the symbolic set of routes in the class, already
	// intersected with the encoding's WellFormed constraint.
	Guard bdd.Node
	// Accept reports whether routes in the class are permitted.
	Accept bool
	// Transform is the net attribute change applied to accepted routes.
	Transform Transform
	// Terminal is the deciding clause; nil when the route map's default
	// action decided.
	Terminal *ir.RouteMapClause
	// Taken lists the matched clauses along the path, including
	// fall-through clauses and the terminal.
	Taken []*ir.RouteMapClause
}

// MaxPaths bounds route-map path enumeration. Fall-through clauses can in
// principle double the path count, so a runaway policy is reported rather
// than looping. It is a variable only so tests can exercise the guard
// cheaply.
var MaxPaths = 100000

// EnumeratePaths partitions the route space into the route map's
// equivalence classes. Classes with empty guards are dropped.
func (e *RouteEncoding) EnumeratePaths(cfg *ir.Config, rm *ir.RouteMap) ([]RoutePath, error) {
	var out []RoutePath
	var walk func(i int, guard bdd.Node, sets []ir.SetAction, taken []*ir.RouteMapClause) error
	walk = func(i int, guard bdd.Node, sets []ir.SetAction, taken []*ir.RouteMapClause) error {
		if guard == bdd.False {
			return nil
		}
		if len(out) >= MaxPaths {
			return fmt.Errorf("symbolic: route map %s exceeds %d paths", rm.Name, MaxPaths)
		}
		if i == len(rm.Clauses) {
			p := RoutePath{
				Guard:  guard,
				Accept: rm.DefaultAction == ir.Permit,
				Taken:  append([]*ir.RouteMapClause{}, taken...),
			}
			if p.Accept {
				p.Transform = e.TransformOf(cfg, sets)
			}
			out = append(out, p)
			return nil
		}
		cl := rm.Clauses[i]
		m := e.ClauseGuardBDD(cfg, cl)
		takenGuard := e.F.And(guard, m)
		if takenGuard != bdd.False {
			switch cl.Action {
			case ir.ClausePermit:
				p := RoutePath{
					Guard:     takenGuard,
					Accept:    true,
					Transform: e.TransformOf(cfg, append(append([]ir.SetAction{}, sets...), cl.Sets...)),
					Terminal:  cl,
					Taken:     append(append([]*ir.RouteMapClause{}, taken...), cl),
				}
				out = append(out, p)
			case ir.ClauseDeny:
				p := RoutePath{
					Guard:    takenGuard,
					Accept:   false,
					Terminal: cl,
					Taken:    append(append([]*ir.RouteMapClause{}, taken...), cl),
				}
				out = append(out, p)
			case ir.ClauseFallthrough:
				if err := walk(i+1, takenGuard,
					append(append([]ir.SetAction{}, sets...), cl.Sets...),
					append(append([]*ir.RouteMapClause{}, taken...), cl)); err != nil {
					return err
				}
			}
		}
		notTaken := e.F.And(guard, e.F.Not(m))
		return walk(i+1, notTaken, sets, taken)
	}
	if err := walk(0, e.WellFormed, nil, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// ACLPath is one equivalence class of an ACL: the packets that reach and
// match one line (or fall off the end to the implicit deny).
type ACLPath struct {
	Guard  bdd.Node
	Accept bool
	// Line is the matching ACL line; nil for the implicit deny.
	Line *ir.ACLLine
}

// EnumerateACLPaths partitions the packet space into the ACL's equivalence
// classes under first-match-wins semantics. Lines that can never be
// reached produce no class.
func (e *PacketEncoding) EnumerateACLPaths(acl *ir.ACL) []ACLPath {
	var out []ACLPath
	remaining := bdd.Node(bdd.True)
	for _, l := range acl.Lines {
		g := e.F.And(remaining, e.LineBDD(l))
		if g != bdd.False {
			out = append(out, ACLPath{Guard: g, Accept: l.Action == ir.Permit, Line: l})
		}
		remaining = e.F.And(remaining, e.F.Not(e.LineBDD(l)))
		if remaining == bdd.False {
			break
		}
	}
	if remaining != bdd.False {
		out = append(out, ACLPath{Guard: remaining, Accept: false, Line: nil})
	}
	return out
}

// AcceptSet returns the full accept set of the ACL in one BDD — the
// monolithic form used by the Minesweeper-style baseline and the pruning
// pass of SemanticDiff.
func (e *PacketEncoding) AcceptSet(acl *ir.ACL) bdd.Node {
	out := bdd.False
	remaining := bdd.Node(bdd.True)
	for _, l := range acl.Lines {
		m := e.LineBDD(l)
		if l.Action == ir.Permit {
			out = e.F.Or(out, e.F.And(remaining, m))
		}
		remaining = e.F.And(remaining, e.F.Not(m))
		if remaining == bdd.False {
			break
		}
	}
	return out
}
