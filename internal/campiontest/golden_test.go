package campiontest_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/campion"
	"repro/internal/core"
	"repro/internal/difftest"
)

var update = flag.Bool("update", false, "rewrite golden expected.txt files")

// TestGoldenCorpus diffs every checked-in configuration pair under
// golden/ and compares the rendered report byte-for-byte against the
// pair's expected.txt (refresh with -update). It then runs the
// differential oracle harness over the same pair, so witness soundness
// is asserted for every diff region the golden reports contain.
func TestGoldenCorpus(t *testing.T) {
	entries, err := os.ReadDir("golden")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 10 {
		t.Fatalf("golden corpus has %d pairs, want at least 10", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() || e.Name() == "repair" {
			// golden/repair holds the repair corpus (buggy pair + expected
			// patch), exercised by TestRepairGoldenCorpus instead.
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			dir := filepath.Join("golden", e.Name())
			cfg1, err := campion.LoadFile(filepath.Join(dir, "a.cfg"))
			if err != nil {
				t.Fatal(err)
			}
			cfg2, err := campion.LoadFile(filepath.Join(dir, "b.cfg"))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := campion.Diff(cfg1, cfg2, campion.Options{})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := campion.Write(&buf, rep); err != nil {
				t.Fatal(err)
			}

			goldenPath := filepath.Join(dir, "expected.txt")
			if *update {
				if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/campiontest/ -update` to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("report changed; rerun with -update if intended\n--- got ---\n%s\n--- want ---\n%s",
					buf.Bytes(), want)
			}

			// Kernel modes are pure optimizations: order search, factory
			// collection, and intra-pair striping must all render the
			// exact bytes the default configuration produced.
			for name, opts := range map[string]campion.Options{
				"reorder": {Reorder: true},
				"workers": {Workers: 4},
				"gc":      {Workers: 1, GC: true, PolicyCache: core.NewPolicyCache()},
				"all":     {Workers: 4, Reorder: true, GC: true},
			} {
				mrep, err := campion.Diff(cfg1, cfg2, opts)
				if err != nil {
					t.Fatalf("mode %s: %v", name, err)
				}
				var mbuf bytes.Buffer
				if err := campion.Write(&mbuf, mrep); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(mbuf.Bytes(), buf.Bytes()) {
					t.Errorf("mode %s diverges from default rendering\n--- mode ---\n%s\n--- default ---\n%s",
						name, mbuf.Bytes(), buf.Bytes())
				}
			}

			// Witness soundness for every region reported on this pair:
			// the oracle harness re-derives the route-map and ACL diffs
			// and confirms each region with concrete counterexamples.
			drep := difftest.CheckConfigs(cfg1, cfg2, difftest.Options{
				Samples: 24, Seed: uint64(len(e.Name())),
			})
			for _, v := range drep.Violations {
				t.Errorf("oracle harness: %s", v)
			}
		})
	}
}
