// Package campiontest provides the shared test fixtures of the
// repository: the paper's Figure 1 configurations in both vendor
// dialects, plus parse helpers. Tests across packages reuse these so the
// canonical example is written once.
package campiontest

import (
	"repro/internal/cisco"
	"repro/internal/ir"
	"repro/internal/juniper"
)

// Figure1Cisco is the Cisco route map of the paper's Figure 1(a).
const Figure1Cisco = `hostname cisco_router
ip prefix-list NETS permit 10.9.0.0/16 le 32
ip prefix-list NETS permit 10.100.0.0/16 le 32
!
ip community-list standard COMM permit 10:10
ip community-list standard COMM permit 10:11
!
route-map POL deny 10
 match ip address NETS
route-map POL deny 20
 match community COMM
route-map POL permit 30
 set local-preference 30
`

// Figure1Juniper is the (buggy) Juniper translation of Figure 1(b).
const Figure1Juniper = `system { host-name juniper_router; }
policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    community COMM members [ 10:10 10:11 ];
    policy-statement POL {
        term rule1 {
            from prefix-list NETS;
            then reject;
        }
        term rule2 {
            from community COMM;
            then reject;
        }
        term rule3 {
            then {
                local-preference 30;
                accept;
            }
        }
    }
}
`

// Figure1JuniperFixed is a behaviorally faithful JunOS translation of
// Figure 1(a) — the policy the university operators intended to write.
const Figure1JuniperFixed = `system { host-name juniper_router; }
policy-options {
    community C10 members 10:10;
    community C11 members 10:11;
    policy-statement POL {
        term rule1 {
            from {
                route-filter 10.9.0.0/16 orlonger;
                route-filter 10.100.0.0/16 orlonger;
            }
            then reject;
        }
        term rule2 { from community [ C10 C11 ]; then reject; }
        term rule3 { then { local-preference 30; accept; } }
    }
}
`

// ParseCisco parses IOS text with a fixed file name.
func ParseCisco(text string) (*ir.Config, error) {
	return cisco.Parse("cisco.cfg", text)
}

// ParseJuniper parses JunOS text with a fixed file name.
func ParseJuniper(text string) (*ir.Config, error) {
	return juniper.Parse("juniper.cfg", text)
}
