// Command gengolden materializes the golden corpus under
// internal/campiontest/golden/: one directory per configuration pair
// with a.cfg and b.cfg. Run it from the repository root after changing
// a source fixture, then `go test ./internal/campiontest/ -update` to
// refresh the expected diff outputs.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/aclgen"
	"repro/internal/campiontest"
	"repro/internal/policygen"
	"repro/internal/testnets"
)

func main() {
	root := filepath.Join("internal", "campiontest", "golden")

	write := func(name, a, b string) {
		dir := filepath.Join(root, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			panic(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "a.cfg"), []byte(a), 0o644); err != nil {
			panic(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "b.cfg"), []byte(b), 0o644); err != nil {
			panic(err)
		}
		fmt.Println("wrote", dir)
	}

	write("fig1-prefixlist-bug", campiontest.Figure1Cisco, campiontest.Figure1Juniper)
	write("fig1-fixed", campiontest.Figure1Cisco, campiontest.Figure1JuniperFixed)

	for _, p := range []testnets.Pair{
		testnets.UniversityCore(),
		testnets.UniversityBorder(),
		testnets.DatacenterReplacement(),
		testnets.DatacenterGateway(),
	} {
		write(p.Name, p.Text1, p.Text2)
	}
	for _, p := range testnets.DatacenterToRPairs() {
		write(p.Name, p.Text1, p.Text2)
	}

	gp := policygen.Generate(policygen.Params{Seed: 11, Clauses: 6, Communities: 4, Differences: 2})
	write("genpol-seed11", gp.CiscoText, gp.JuniperText)
	ga := aclgen.Generate(aclgen.Params{Seed: 5, Rules: 10, Pools: 4, Differences: 2})
	write("genacl-seed5", ga.CiscoText, ga.JuniperText)
}
