package campiontest_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/campiontest"
	"repro/internal/cisco"
	"repro/internal/ir"
	"repro/internal/juniper"
	"repro/internal/policygen"
	"repro/internal/repair"
)

// repairGoldenCase pins one checked-in repair scenario. The generated
// cases are reproducible from (seed, clauses, communities, mutIdx):
// policygen builds an equivalent cross-vendor pair and Mutations[mutIdx]
// is rendered into the Juniper text as the injected fault, so -update
// can regenerate a.cfg and b.cfg along with expected.patch.
type repairGoldenCase struct {
	name      string
	seed      uint64
	clauses   int
	comms     int
	mutIdx    int
	handCased bool // fig1: a.cfg/b.cfg come from fixtures, not policygen
}

var repairGoldenCases = []repairGoldenCase{
	{name: "fig1", handCased: true},
	{name: "gen-flip-clause", seed: 1, clauses: 3, comms: 2, mutIdx: 0},
	{name: "gen-set-localpref", seed: 1, clauses: 3, comms: 2, mutIdx: 5},
	{name: "gen-range-bound", seed: 1, clauses: 3, comms: 2, mutIdx: 7},
	{name: "gen-drop-clause", seed: 1, clauses: 3, comms: 2, mutIdx: 14},
	{name: "gen-extra-community", seed: 2, clauses: 4, comms: 3, mutIdx: 17},
}

func repairGoldenOptions(c repairGoldenCase) repair.Options {
	return repair.Options{Timeout: time.Minute, Samples: 16, Seed: int64(c.seed)}
}

// repairCaseTexts produces the case's config texts: either the Figure 1
// fixtures or a generated pair with the indexed mutation rendered into
// the Juniper side.
func repairCaseTexts(t *testing.T, c repairGoldenCase) (atext, btext string) {
	t.Helper()
	if c.handCased {
		return campiontest.Figure1Cisco, campiontest.Figure1Juniper
	}
	p := policygen.Generate(policygen.Params{Seed: c.seed, Clauses: c.clauses, Communities: c.comms})
	b, err := juniper.Parse("b.cfg", p.JuniperText)
	if err != nil {
		t.Fatalf("parse generated juniper: %v", err)
	}
	muts := repair.Mutations(b, p.PolicyName)
	if c.mutIdx >= len(muts) {
		t.Fatalf("case %s: mutIdx %d out of range (%d mutations)", c.name, c.mutIdx, len(muts))
	}
	mtext, err := repair.ApplyEditsToText(b, p.JuniperText, muts[c.mutIdx].Edit)
	if err != nil {
		t.Fatalf("case %s: render mutation %s: %v", c.name, muts[c.mutIdx].Kind, err)
	}
	return p.CiscoText, mtext
}

// TestRepairGoldenCorpus runs the repair search over every checked-in
// buggy pair and compares the rendered patch byte-for-byte against
// expected.patch (refresh with -update, which also regenerates the
// config pair from its recipe). Each accepted patch is then selfchecked:
// the patched text must re-parse and verify equivalent to config A under
// both the symbolic engine and the concrete oracle.
func TestRepairGoldenCorpus(t *testing.T) {
	for _, c := range repairGoldenCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			dir := filepath.Join("golden", "repair", c.name)
			if *update {
				atext, btext := repairCaseTexts(t, c)
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, "a.cfg"), []byte(atext), 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, "b.cfg"), []byte(btext), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			araw, err := os.ReadFile(filepath.Join(dir, "a.cfg"))
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/campiontest/ -update` to create)", err)
			}
			braw, err := os.ReadFile(filepath.Join(dir, "b.cfg"))
			if err != nil {
				t.Fatal(err)
			}
			a, err := cisco.Parse("a.cfg", string(araw))
			if err != nil {
				t.Fatal(err)
			}
			b, err := juniper.Parse("b.cfg", string(braw))
			if err != nil {
				t.Fatal(err)
			}

			res, err := repair.Run(context.Background(), a, b, repairGoldenOptions(c))
			if err != nil {
				t.Fatalf("repair.Run: %v", err)
			}
			if res.TotalDiffs() == 0 {
				t.Fatal("golden pair reports no diffs; corpus is stale")
			}
			if !res.Repaired() {
				t.Fatalf("golden pair not repaired: %s", describePairs(res))
			}
			patch, err := res.Patch(string(braw))
			if err != nil {
				t.Fatalf("render patch: %v", err)
			}

			goldenPath := filepath.Join(dir, "expected.patch")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(patch.Text), 0o644); err != nil {
					t.Fatal(err)
				}
			} else {
				want, err := os.ReadFile(goldenPath)
				if err != nil {
					t.Fatalf("%v (run `go test ./internal/campiontest/ -update` to create)", err)
				}
				if !bytes.Equal([]byte(patch.Text), want) {
					t.Errorf("patch changed; rerun with -update if intended\n--- got ---\n%s\n--- want ---\n%s",
						patch.Text, want)
				}
			}

			// Selfcheck: the patched TEXT re-parses and verifies
			// equivalent to A symbolically and concretely.
			if _, err := repair.ReparseVerify(a, ir.VendorJuniper, "patched.cfg", patch.Patched,
				repair.Options{Samples: 24, Seed: int64(c.seed) + 1}); err != nil {
				t.Errorf("patched text fails verification: %v", err)
			}
		})
	}
}

func describePairs(res *repair.Result) string {
	out := ""
	for _, p := range res.Pairs {
		out += fmt.Sprintf("[pair %s kind=%s diffs=%d err=%v] ", p.Pair, p.Kind(), p.InitialDiffs, p.Err)
	}
	return out
}
