package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Tracer records one run's span tree. Spans carry explicit parent edges
// (a child is created from its parent, never inferred from goroutine
// identity), so the tree is deterministic even when spans are opened
// concurrently from many workers; only the interleaving of sibling IDs
// varies run to run. A Tracer is safe for concurrent use; span creation
// and completion take one short mutex hold each, which is negligible at
// the granularity traced here (components, workers, chain pairs — never
// individual BDD operations). The nil Tracer (and the nil *Span) make
// every operation a no-op, so call sites thread spans unconditionally.
type Tracer struct {
	mu    sync.Mutex
	t0    time.Time
	spans []spanRec
}

// spanRec is the arena record of one span.
type spanRec struct {
	name   string
	parent int32 // -1 for roots
	lane   int32 // Chrome trace tid: 1 = main, workers get their own
	start  int64 // ns since t0
	end    int64 // ns since t0; -1 while open
	attrs  []Attr
}

// Attr is one key-value annotation on a span.
type Attr struct {
	Key, Value string
}

// Str builds a string attribute.
func Str(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr {
	return Attr{Key: key, Value: strconv.Itoa(value)}
}

// Dur builds a duration attribute.
func Dur(key string, d time.Duration) Attr {
	return Attr{Key: key, Value: d.String()}
}

// NewTracer starts a tracer; all span times are relative to this call.
func NewTracer() *Tracer {
	return &Tracer{t0: time.Now()}
}

// Span is a handle on one recorded span. The nil span ignores Child,
// SetAttrs, and End, so disabled tracing costs one nil check per site.
type Span struct {
	t *Tracer
	i int32
}

// newSpan appends a record and returns its handle. Lane inheritance: a
// span with a "worker" attribute opens its own Chrome lane (worker N →
// tid N+2), everything else renders in its parent's lane (roots in lane 1).
func (t *Tracer) newSpan(name string, parent int32, attrs []Attr) *Span {
	lane := int32(1)
	for _, a := range attrs {
		if a.Key == "worker" {
			if w, err := strconv.Atoi(a.Value); err == nil {
				lane = int32(w) + 2
			}
		}
	}
	t.mu.Lock()
	if lane == 1 && parent >= 0 {
		lane = t.spans[parent].lane
	}
	i := int32(len(t.spans))
	t.spans = append(t.spans, spanRec{
		name:   name,
		parent: parent,
		lane:   lane,
		start:  int64(time.Since(t.t0)),
		end:    -1,
		attrs:  attrs,
	})
	t.mu.Unlock()
	return &Span{t: t, i: i}
}

// Root opens a top-level span.
func (t *Tracer) Root(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, -1, attrs)
}

// Child opens a span nested under s.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(name, s.i, attrs)
}

// SetAttrs appends attributes to an open (or closed) span — typically
// measurements known only at the end of the work.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.t.spans[s.i].attrs = append(s.t.spans[s.i].attrs, attrs...)
	s.t.mu.Unlock()
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.t.spans[s.i].end < 0 {
		s.t.spans[s.i].end = int64(time.Since(s.t.t0))
	}
	s.t.mu.Unlock()
}

// SpanInfo is the exported snapshot of one recorded span.
type SpanInfo struct {
	ID     int
	Parent int // -1 for roots
	Name   string
	Start  time.Duration // offset from the tracer epoch
	End    time.Duration // == Start for still-open spans snapshotted early
	Attrs  []Attr
}

// Duration is the span's wall time.
func (si SpanInfo) Duration() time.Duration { return si.End - si.Start }

// Attr returns the value of the named attribute, or "".
func (si SpanInfo) Attr(key string) string {
	for _, a := range si.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Spans snapshots every recorded span in creation order. Open spans are
// reported as ending now.
func (t *Tracer) Spans() []SpanInfo {
	if t == nil {
		return nil
	}
	now := int64(time.Since(t.t0))
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanInfo, len(t.spans))
	for i, r := range t.spans {
		end := r.end
		if end < 0 {
			end = now
		}
		out[i] = SpanInfo{
			ID:     i,
			Parent: int(r.parent),
			Name:   r.name,
			Start:  time.Duration(r.start),
			End:    time.Duration(end),
			Attrs:  append([]Attr(nil), r.attrs...),
		}
	}
	return out
}

// chromeEvent is one Chrome trace_event "complete" (ph=X) record.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders the spans as a Chrome trace_event JSON array
// (load via chrome://tracing or https://ui.perfetto.dev). Each worker
// renders in its own lane (tid); span attributes become event args.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	spans := t.Spans()
	t.mu.Lock()
	lanes := make([]int32, len(t.spans))
	for i, r := range t.spans {
		lanes[i] = r.lane
	}
	t.mu.Unlock()
	events := make([]chromeEvent, len(spans))
	for i, si := range spans {
		var args map[string]string
		if len(si.Attrs) > 0 {
			args = make(map[string]string, len(si.Attrs))
			for _, a := range si.Attrs {
				args[a.Key] = a.Value
			}
		}
		events[i] = chromeEvent{
			Name: si.Name,
			Ph:   "X",
			Pid:  1,
			Tid:  int(lanes[i]),
			Ts:   float64(si.Start) / 1e3,
			Dur:  float64(si.Duration()) / 1e3,
			Args: args,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// WriteTree renders the span forest as an indented human-readable tree in
// creation order (parents always precede their children).
func (t *Tracer) WriteTree(w io.Writer) error {
	if t == nil {
		return nil
	}
	spans := t.Spans()
	children := make(map[int][]int, len(spans))
	var roots []int
	for _, si := range spans {
		if si.Parent < 0 {
			roots = append(roots, si.ID)
		} else {
			children[si.Parent] = append(children[si.Parent], si.ID)
		}
	}
	var write func(id, depth int) error
	write = func(id, depth int) error {
		si := spans[id]
		line := fmt.Sprintf("%*s%s %s", 2*depth, "", si.Name,
			si.Duration().Round(time.Microsecond))
		for _, a := range si.Attrs {
			line += fmt.Sprintf(" %s=%s", a.Key, a.Value)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		for _, c := range children[id] {
			if err := write(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := write(r, 0); err != nil {
			return err
		}
	}
	return nil
}
