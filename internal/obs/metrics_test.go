package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestBucketIndexBoundaries: every histogram bucket i counts values
// v ≤ 2^i, so the index of an exact power of two is its exponent and the
// next value up spills into the following bucket.
func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, // bucket 0: v ≤ 1
		{2, 1},         // bucket 1: v ≤ 2
		{3, 2}, {4, 2}, // bucket 2: v ≤ 4
		{5, 3}, {8, 3},
		{9, 4},
		{1 << 20, 20}, {1<<20 + 1, 21},
		{1 << (numHistBuckets - 1), numHistBuckets - 1}, // last finite bucket
		{1<<(numHistBuckets-1) + 1, numHistBuckets},     // overflow
		{1 << 62, numHistBuckets},
	}
	for _, c := range cases {
		v := c.v
		if v < 0 {
			v = 0 // Observe clamps; bucketIndex is only called with v ≥ 0
		}
		if got := bucketIndex(v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestBucketBoundInvariant: bucketIndex(v) must return the FIRST bucket
// whose bound covers v — v must exceed the previous bucket's bound.
func TestBucketBoundInvariant(t *testing.T) {
	for _, v := range []int64{1, 2, 3, 7, 100, 1000, 65536, 1 << 30} {
		i := bucketIndex(v)
		if b := BucketBound(i); b != -1 && v > b {
			t.Errorf("v=%d lands in bucket %d with bound %d (too small)", v, i, b)
		}
		if i > 0 {
			if prev := BucketBound(i - 1); v <= prev {
				t.Errorf("v=%d lands in bucket %d but already fits bucket %d (bound %d)", v, i, i-1, prev)
			}
		}
	}
	if BucketBound(numHistBuckets) != -1 {
		t.Errorf("overflow bucket bound = %d, want -1 (+Inf)", BucketBound(numHistBuckets))
	}
	if BucketBound(0) != 1 || BucketBound(3) != 8 {
		t.Errorf("finite bounds wrong: %d, %d", BucketBound(0), BucketBound(3))
	}
}

// TestHistogramObserve: sum, count, and cumulative bucket contents.
func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 1000, -7} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 1006 { // -7 clamps to 0
		t.Errorf("sum = %d, want 1006", h.Sum())
	}
	if got := h.buckets[0].Load(); got != 2 { // 1 and clamped -7
		t.Errorf("bucket 0 = %d, want 2", got)
	}
	if got := h.buckets[10].Load(); got != 1 { // 1000 ≤ 1024
		t.Errorf("bucket 10 = %d, want 1", got)
	}
}

// TestNilInstruments: the whole nil surface must be inert, not panic.
func TestNilInstruments(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(42)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram recorded")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "") != nil {
		t.Error("nil registry handed out a live instrument")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Error(err)
	}
}

// TestRegistryIdentity: the same (name, labels) returns the same
// instrument, and distinct labels return distinct ones.
func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("requests_total", "h", L("vendor", "cisco"))
	b := r.Counter("requests_total", "h", L("vendor", "cisco"))
	c := r.Counter("requests_total", "h", L("vendor", "juniper"))
	if a != b {
		t.Error("same labels returned distinct counters")
	}
	if a == c {
		t.Error("distinct labels shared a counter")
	}
}

// TestRegistryKindMismatchPanics: re-registering a name under another
// instrument kind is a programming error and must fail loudly.
func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

// TestWritePrometheusGolden: the exposition of a small fixed registry,
// byte for byte — families sorted by name, instances by label string,
// histograms as cumulative sparse buckets with +Inf always present.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("campion_parses_total", "configurations parsed", L("vendor", "cisco")).Add(3)
	r.Counter("campion_parses_total", "configurations parsed", L("vendor", "juniper")).Add(1)
	r.Gauge("campion_active_workers", "workers currently busy").Set(2)
	h := r.Histogram("campion_pair_duration_nanoseconds", "pair wall time")
	h.Observe(1) // bucket 0
	h.Observe(3) // bucket 2
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP campion_active_workers workers currently busy
# TYPE campion_active_workers gauge
campion_active_workers 2
# HELP campion_pair_duration_nanoseconds pair wall time
# TYPE campion_pair_duration_nanoseconds histogram
campion_pair_duration_nanoseconds_bucket{le="1"} 1
campion_pair_duration_nanoseconds_bucket{le="4"} 3
campion_pair_duration_nanoseconds_bucket{le="+Inf"} 3
campion_pair_duration_nanoseconds_sum 7
campion_pair_duration_nanoseconds_count 3
# HELP campion_parses_total configurations parsed
# TYPE campion_parses_total counter
campion_parses_total{vendor="cisco"} 3
campion_parses_total{vendor="juniper"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestLabeledHistogramExposition: le must splice into an existing label
// set, not open a second brace block.
func TestLabeledHistogramExposition(t *testing.T) {
	r := NewRegistry()
	r.Histogram("d_ns", "", L("component", "acls")).Observe(100)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`d_ns_bucket{component="acls",le="128"} 1`,
		`d_ns_bucket{component="acls",le="+Inf"} 1`,
		`d_ns_sum{component="acls"} 100`,
		`d_ns_count{component="acls"} 1`,
	} {
		if !strings.Contains(b.String(), want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

// TestLabelEscaping: quotes, backslashes, and newlines in label values
// must be escaped per the text format.
func TestLabelEscaping(t *testing.T) {
	got := labelString([]Label{L("path", `C:\x`), L("name", "a\"b\nc")})
	want := `{path="C:\\x",name="a\"b\nc"}`
	if got != want {
		t.Errorf("labelString = %s, want %s", got, want)
	}
}

// TestRegistryConcurrentUse: concurrent lookup+update under -race.
func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("ops_total", "").Inc()
				r.Histogram("lat_ns", "").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("ops_total", "").Value(); v != 1600 {
		t.Errorf("counter = %d, want 1600", v)
	}
	if n := r.Histogram("lat_ns", "").Count(); n != 1600 {
		t.Errorf("histogram count = %d, want 1600", n)
	}
}
