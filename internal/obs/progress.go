package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Progress renders a single live TTY status line from the journal event
// stream: the current phase, units done over units planned, the event
// rate, and an ETA derived from it. Wire it up with
// journal.Listen(p.Event); it rewrites one line in place with \r and
// never scrolls. Rendering is throttled so a hot event stream (10k hash
// events per second) costs a counter bump, not a write per event.
type Progress struct {
	mu         sync.Mutex
	w          io.Writer
	phase      string
	phaseStart time.Time
	done       int64
	total      int64
	classes    int64
	lastRender time.Time
	lastWidth  int
	closed     bool
}

// progressInterval bounds the redraw rate.
const progressInterval = 100 * time.Millisecond

// NewProgress returns a renderer writing to w (normally os.Stderr).
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w}
}

// Event is the journal listener: it folds one event into the live state
// and redraws when enough has changed.
func (p *Progress) Event(e Event) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	force := false
	switch e.Type {
	case EvPhaseStart:
		p.phase = e.Phase
		p.total = e.Total
		p.done = 0
		p.phaseStart = time.Now()
		force = true
	case EvHash, EvPair:
		// The countable per-unit events: hashing counts devices, the
		// representative diff counts pairs.
		p.done++
	case EvCluster:
		p.classes = e.N
		force = true
	case EvExpand:
		p.done += e.N
		force = true
	case EvRunEnd:
		p.render(true)
		fmt.Fprintln(p.w)
		p.closed = true
		return
	default:
		return
	}
	if force || time.Since(p.lastRender) >= progressInterval {
		p.render(false)
	}
}

// Close finishes the line (for runs that never emit run_end).
func (p *Progress) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.render(true)
	fmt.Fprintln(p.w)
	p.closed = true
}

// render redraws the status line; the caller holds the mutex.
func (p *Progress) render(final bool) {
	p.lastRender = time.Now()
	var b strings.Builder
	b.WriteString("\rcampion")
	if p.phase != "" {
		fmt.Fprintf(&b, " [%s]", p.phase)
	}
	if p.total > 0 {
		fmt.Fprintf(&b, " %d/%d (%d%%)", p.done, p.total, 100*p.done/p.total)
	} else if p.done > 0 {
		fmt.Fprintf(&b, " %d", p.done)
	}
	if p.classes > 0 {
		fmt.Fprintf(&b, " · %d classes", p.classes)
	}
	if elapsed := time.Since(p.phaseStart); !final && p.done > 0 && elapsed > 0 {
		rate := float64(p.done) / elapsed.Seconds()
		fmt.Fprintf(&b, " · %.0f/s", rate)
		if p.total > p.done && rate > 0 {
			eta := time.Duration(float64(p.total-p.done)/rate*1e9) * time.Nanosecond
			fmt.Fprintf(&b, " eta %s", eta.Round(time.Second))
		}
	}
	if final {
		b.WriteString(" · done")
	}
	line := b.String()
	// Pad over the previous, possibly longer, line.
	if pad := p.lastWidth - (len(line) - 1); pad > 0 {
		line += strings.Repeat(" ", pad)
	}
	p.lastWidth = len(line) - 1
	io.WriteString(p.w, line)
}
