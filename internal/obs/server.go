package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Server exposes a registry, a run log, and the Go runtime profiles over
// HTTP: /metrics (Prometheus text format), /runs (JSON, newest first),
// and /debug/pprof/* — enough to watch a long batch audit live and to
// profile it without redeploying.
type Server struct {
	// Registry backs /metrics; nil serves an empty exposition.
	Registry *Registry
	// Runs backs /runs; nil serves an empty list.
	Runs *RunLog
}

// Handler returns the server's route mux. The pprof handlers are mounted
// explicitly (not via net/http/pprof's DefaultServeMux side effects), so
// embedding this handler never leaks profiles onto another mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/runs", s.serveRuns)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", s.serveIndex)
	return mux
}

func (s *Server) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.Registry.WritePrometheus(w)
}

func (s *Server) serveRuns(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.Runs.WriteJSON(w)
}

func (s *Server) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<html><head><title>campion</title></head><body>
<h1>campion observability</h1>
<ul>
<li><a href="/metrics">/metrics</a> — Prometheus exposition</li>
<li><a href="/runs">/runs</a> — recent batch runs (JSON)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — Go runtime profiles</li>
</ul>
</body></html>
`)
}

// ListenAndServe serves the observability endpoints on addr; it blocks
// like http.ListenAndServe.
func (s *Server) ListenAndServe(addr string) error {
	return http.ListenAndServe(addr, s.Handler())
}
