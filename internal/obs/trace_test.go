package obs

import (
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanNesting: parent edges are explicit and exact — children point
// at the span they were created from, in creation order.
func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.Root("diff", Str("host1", "r1"))
	comp := root.Child("route-maps", Str("kind", "SemanticDiff"))
	task := comp.Child("chain-pair")
	task.End()
	comp.End()
	root.SetAttrs(Int("diffs", 2))
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if spans[0].Name != "diff" || spans[0].Parent != -1 {
		t.Errorf("root = %+v", spans[0])
	}
	if spans[1].Name != "route-maps" || spans[1].Parent != 0 {
		t.Errorf("component = %+v", spans[1])
	}
	if spans[2].Name != "chain-pair" || spans[2].Parent != 1 {
		t.Errorf("task = %+v", spans[2])
	}
	if spans[0].Attr("host1") != "r1" || spans[0].Attr("diffs") != "2" {
		t.Errorf("root attrs = %v", spans[0].Attrs)
	}
	// Containment: a child's interval lies within its parent's.
	if spans[2].Start < spans[1].Start || spans[2].End > spans[1].End {
		t.Errorf("task [%v,%v] escapes component [%v,%v]",
			spans[2].Start, spans[2].End, spans[1].Start, spans[1].End)
	}
}

// TestSpanEndTwice: the first End wins.
func TestSpanEndTwice(t *testing.T) {
	tr := NewTracer()
	s := tr.Root("x")
	s.End()
	end1 := tr.Spans()[0].End
	time.Sleep(time.Millisecond)
	s.End()
	if end2 := tr.Spans()[0].End; end2 != end1 {
		t.Errorf("second End moved the end time: %v -> %v", end1, end2)
	}
}

// TestNilTracerAndSpan: the disabled path is completely inert.
func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	s := tr.Root("x", Str("k", "v"))
	if s != nil {
		t.Fatal("nil tracer returned a live span")
	}
	c := s.Child("y")
	c.SetAttrs(Int("n", 1))
	c.End()
	s.End()
	if got := tr.Spans(); got != nil {
		t.Errorf("nil tracer has spans: %v", got)
	}
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Errorf("nil tracer trace = %q, want []", b.String())
	}
	if err := tr.WriteTree(&b); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSpansDeterministicParents: spans opened from many
// goroutines still carry exact parent edges — the tree shape depends only
// on which span each child was created from, never on scheduling. Run
// with -race.
func TestConcurrentSpansDeterministicParents(t *testing.T) {
	tr := NewTracer()
	root := tr.Root("component")
	const workers, tasksPer = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wsp := root.Child("worker", Int("worker", w))
			for i := 0; i < tasksPer; i++ {
				tsp := wsp.Child("task", Int("task", i))
				tsp.End()
			}
			wsp.End()
		}(w)
	}
	wg.Wait()
	root.End()

	spans := tr.Spans()
	byID := map[int]SpanInfo{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	var nWorkers, nTasks int
	for _, s := range spans {
		switch s.Name {
		case "worker":
			nWorkers++
			if p := byID[s.Parent]; p.Name != "component" {
				t.Errorf("worker %s parented by %q", s.Attr("worker"), p.Name)
			}
		case "task":
			nTasks++
			if p := byID[s.Parent]; p.Name != "worker" {
				t.Errorf("task parented by %q, want worker", p.Name)
			}
		}
	}
	if nWorkers != workers || nTasks != workers*tasksPer {
		t.Errorf("got %d workers / %d tasks, want %d / %d", nWorkers, nTasks, workers, workers*tasksPer)
	}
}

// TestChromeTraceLanes: worker spans open their own Chrome lane
// (worker N → tid N+2), their children inherit it, and everything else
// renders in lane 1.
func TestChromeTraceLanes(t *testing.T) {
	tr := NewTracer()
	root := tr.Root("batch")
	w0 := root.Child("worker", Int("worker", 0))
	p := w0.Child("pair", Str("pair", "a vs b"))
	p.End()
	w0.End()
	w3 := root.Child("worker", Int("worker", 3))
	w3.End()
	root.End()

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Ts   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Args map[string]string `json:"args"`
	}
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b.String())
	}
	want := map[string]int{"batch": 1, "pair": 2}
	for _, e := range events {
		if e.Ph != "X" || e.Pid != 1 {
			t.Errorf("event %s: ph=%s pid=%d", e.Name, e.Ph, e.Pid)
		}
		if e.Name == "worker" {
			w, _ := strconv.Atoi(e.Args["worker"])
			if e.Tid != w+2 {
				t.Errorf("worker %d in lane %d, want %d", w, e.Tid, w+2)
			}
			continue
		}
		if lane, ok := want[e.Name]; ok && e.Tid != lane {
			t.Errorf("%s in lane %d, want %d", e.Name, e.Tid, lane)
		}
	}
	if events[2].Args["pair"] != "a vs b" {
		t.Errorf("pair args = %v", events[2].Args)
	}
}

// TestWriteTree: parents precede children, depth renders as indentation,
// attributes append to the line.
func TestWriteTree(t *testing.T) {
	tr := NewTracer()
	root := tr.Root("diff")
	c := root.Child("acls", Str("kind", "SemanticDiff"))
	c.End()
	root.End()
	var b strings.Builder
	if err := tr.WriteTree(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2:\n%s", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[0], "diff ") {
		t.Errorf("root line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  acls ") || !strings.Contains(lines[1], "kind=SemanticDiff") {
		t.Errorf("child line = %q", lines[1])
	}
}

// TestOpenSpanSnapshot: an unfinished span snapshots as ending now, so a
// live /runs-style view never sees negative durations.
func TestOpenSpanSnapshot(t *testing.T) {
	tr := NewTracer()
	tr.Root("open")
	s := tr.Spans()[0]
	if s.Duration() < 0 {
		t.Errorf("open span duration %v < 0", s.Duration())
	}
}
