package obs

import (
	"fmt"
	"runtime/debug"
)

// BuildInfo is the build provenance stamped into the journal run header,
// the -version flag, and the campion_build_info gauge — enough to tie a
// run artifact back to the exact binary that produced it.
type BuildInfo struct {
	// GoVersion is the toolchain that built the binary.
	GoVersion string
	// Revision is the VCS commit, or "unknown" when the binary was built
	// outside a checkout (go run, test binaries).
	Revision string
	// Time is the commit timestamp (RFC 3339), when known.
	Time string
	// Dirty marks a build from a modified working tree.
	Dirty bool
}

// ReadBuild extracts build provenance from the running binary via
// runtime/debug.ReadBuildInfo. It never fails: missing fields degrade to
// "unknown".
func ReadBuild() BuildInfo {
	b := BuildInfo{GoVersion: "unknown", Revision: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if info.GoVersion != "" {
		b.GoVersion = info.GoVersion
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.Time = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
}

// String renders the provenance as a one-line version string.
func (b BuildInfo) String() string {
	rev := b.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	s := fmt.Sprintf("revision %s (%s)", rev, b.GoVersion)
	if b.Dirty {
		s += " dirty"
	}
	return s
}

// Detail renders the provenance as journal-header fields.
func (b BuildInfo) Detail() map[string]string {
	d := map[string]string{
		"go":       b.GoVersion,
		"revision": b.Revision,
	}
	if b.Time != "" {
		d["vcs_time"] = b.Time
	}
	if b.Dirty {
		d["dirty"] = "true"
	}
	return d
}

// RegisterBuildInfo publishes the provenance as the constant-1
// campion_build_info gauge, Prometheus-style: the labels carry the
// facts, joins against other series date a deploy. Returns the info it
// registered.
func RegisterBuildInfo(r *Registry) BuildInfo {
	b := ReadBuild()
	r.Gauge("campion_build_info",
		"build provenance of the running binary (value is always 1)",
		L("revision", b.Revision), L("goversion", b.GoVersion)).Set(1)
	return b
}
