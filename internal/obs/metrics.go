// Package obs is Campion's observability substrate: a run-scoped span
// tracer, a metrics registry (counters, gauges, log-scale histograms with
// Prometheus text exposition), a log of recent batch runs, a structured
// run journal (the flight recorder), and an HTTP server tying the live
// instruments to /metrics, /runs, and /debug/pprof. It depends only
// on the standard library, and every instrument is nil-safe: recording
// into a nil *Counter, *Histogram, *Span, *Journal, or *Registry is a
// no-op costing one branch, so callers thread instruments
// unconditionally and the disabled path stays off the profile.
//
// The journal half has an offline counterpart: ReadJournal parses a
// JSONL journal back into events, AnalyzeJournal replays them into a
// deterministic run summary (JournalAnalysis, rendered by WriteText),
// and WriteJournalTrace exports the same events as a Chrome trace.
// `campion report` is a thin CLI over those three. The event taxonomy
// (the Ev* constants) and the fields each type carries are documented
// in DESIGN.md's "Flight recorder" section and are treated as API.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The nil counter discards
// all updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The nil gauge discards all
// updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// numHistBuckets is the fixed bucket count of every histogram: powers of
// two from 2^0 through 2^(numHistBuckets-1), plus an implicit +Inf
// overflow bucket. 40 base-2 buckets span one nanosecond to ~18 minutes
// when observing durations in nanoseconds, and 1 to ~5·10^11 for sizes.
const numHistBuckets = 40

// Histogram counts observations into fixed log-scale (base-2) buckets:
// bucket i counts values v with v ≤ 2^i, the overflow bucket everything
// larger. Negative observations clamp to zero. The nil histogram discards
// all updates.
type Histogram struct {
	buckets [numHistBuckets + 1]atomic.Uint64
	sum     atomic.Int64
	count   atomic.Uint64
}

// bucketIndex returns the index of the first bucket whose upper bound
// 2^i is ≥ v; numHistBuckets means the +Inf overflow bucket.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(uint64(v - 1)) // smallest i with 2^i >= v
	if i > numHistBuckets {
		return numHistBuckets
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// BucketBound returns the upper bound of bucket i (2^i); the bound of the
// final bucket is reported as -1, meaning +Inf.
func BucketBound(i int) int64 {
	if i >= numHistBuckets {
		return -1
	}
	return 1 << uint(i)
}

// Label is one metric dimension, e.g. {Key: "vendor", Value: "cisco"}.
// Labels are rendered in the order given at the instrument's first use;
// call sites must use a consistent order for a given metric name.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates a family's instrument type.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family groups every labeled instance of one metric name.
type family struct {
	name, help string
	kind       metricKind
	metrics    map[string]any // rendered label string → *Counter/*Gauge/*Histogram
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Instrument lookup takes the registry lock; the
// returned instruments are lock-free atomics, so hot paths fetch their
// instruments once and update them directly. All methods are safe for
// concurrent use; the nil registry hands out nil instruments, which
// silently discard updates.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Default is the process-wide registry: the -serve endpoint exposes it,
// and instrumentation without an explicit registry (the parsers) reports
// into it.
var Default = NewRegistry()

// labelString renders labels as {k1="v1",k2="v2"}, or "" when unlabeled.
// Quotes and backslashes inside values are escaped per the Prometheus
// text format.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns the instrument for (name, labels), creating the family
// and instance on first use. It panics if name was already registered
// with a different kind — that is a programming error, not load-time
// input.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label, make func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, metrics: map[string]any{}}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	ls := labelString(labels)
	m := f.metrics[ls]
	if m == nil {
		m = make()
		f.metrics[ls] = m
	}
	return m
}

// Counter returns the counter for name and labels, registering it on
// first use. The nil registry returns the nil counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, labels, func() any { return new(Counter) }).(*Counter)
}

// Gauge returns the gauge for name and labels, registering it on first
// use. The nil registry returns the nil gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, labels, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram returns the histogram for name and labels, registering it on
// first use. The nil registry returns the nil histogram.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, labels, func() any { return new(Histogram) }).(*Histogram)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, instances
// sorted by label string, histograms as cumulative _bucket/_sum/_count
// series. Empty buckets are elided (the le set of a Prometheus histogram
// may be sparse) so the output stays proportional to what was observed;
// the +Inf bucket is always present.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		lss := make([]string, 0, len(f.metrics))
		// The instance map is append-only under the registry lock, and
		// instruments are atomics: reading without the lock here only
		// risks missing instances registered mid-write.
		for ls := range f.metrics {
			lss = append(lss, ls)
		}
		sort.Strings(lss)
		for _, ls := range lss {
			if err := writeMetric(w, f.name, ls, f.metrics[ls]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeMetric(w io.Writer, name, ls string, m any) error {
	switch m := m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, ls, m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, ls, m.Value())
		return err
	case *Histogram:
		var cum uint64
		for i := 0; i <= numHistBuckets; i++ {
			n := m.buckets[i].Load()
			cum += n
			if n == 0 && i < numHistBuckets {
				continue
			}
			bound := "+Inf"
			if i < numHistBuckets {
				bound = fmt.Sprintf("%d", BucketBound(i))
			}
			if err := writeHistLine(w, name, ls, bound, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, ls, m.Sum()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, ls, m.Count())
		return err
	}
	return nil
}

// writeHistLine writes one cumulative bucket line, splicing le into any
// existing label set.
func writeHistLine(w io.Writer, name, ls, bound string, cum uint64) error {
	var labels string
	if ls == "" {
		labels = fmt.Sprintf(`{le="%s"}`, bound)
	} else {
		labels = fmt.Sprintf(`%s,le="%s"}`, strings.TrimSuffix(ls, "}"), bound)
	}
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labels, cum)
	return err
}
