package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Journal is the flight recorder: a typed, append-only JSONL stream of
// run events — one JSON object per line, written as the run progresses,
// so a crashed or interrupted audit still leaves a replayable artifact
// up to the moment it died. Every stage of the pipeline emits into it
// (parse, hash, cluster, representative diff, cache traffic, expansion,
// per-component timings), each event stamped with a strictly increasing
// sequence number and a monotonic nanosecond offset from the journal's
// creation.
//
// A Journal is safe for concurrent use: Emit takes one short mutex hold
// covering the sequence stamp, the write, and the listener fan-out, so
// the file order always matches the sequence order. The nil *Journal
// discards everything at the cost of one branch, matching the rest of
// this package: call sites thread journals unconditionally and the
// disabled path stays off the profile.
type Journal struct {
	mu        sync.Mutex
	w         io.Writer // nil: events go to listeners only
	t0        time.Time
	seq       int64
	err       error // first write error; the journal degrades, never fails the run
	listeners []func(Event)
}

// Event is one flight-recorder record. Type discriminates the event (the
// Ev* constants); every other field is optional context, omitted from
// the JSONL when zero. Class is 1-based so class 1 survives omitempty;
// 0 means "no class context".
type Event struct {
	// Seq is the strictly increasing event number; T is the monotonic
	// nanosecond offset from journal creation. Both are stamped by Emit.
	Seq int64 `json:"seq"`
	T   int64 `json:"t_ns"`
	// Type is the event taxonomy tag (Ev* constants).
	Type string `json:"type"`

	// Run names the run (run_start) or labels a sub-run.
	Run string `json:"run,omitempty"`
	// Phase names the pipeline phase (phase_start / phase_end, and the
	// phase context of progress-bearing events).
	Phase string `json:"phase,omitempty"`
	// Device is the device name (parse / hash / class events).
	Device string `json:"device,omitempty"`
	// Pair is the pair name (pair / component events).
	Pair string `json:"pair,omitempty"`
	// Class is the 1-based semantic class index.
	Class int `json:"class,omitempty"`
	// Component is the diff component (component events).
	Component string `json:"component,omitempty"`
	// Kind qualifies the event: hash events carry the hashing mode
	// (dag / fallback / cached / given), cache events the entry kind
	// (report / hash), component events the check kind.
	Kind string `json:"kind,omitempty"`
	// Op qualifies cache events (hit / miss / evict / corrupt) and marks
	// cache-served pair events ("cached").
	Op string `json:"op,omitempty"`
	// Dur is the event's duration in nanoseconds.
	Dur int64 `json:"dur_ns,omitempty"`
	// Diffs counts localized differences (pair events).
	Diffs int `json:"diffs,omitempty"`
	// Nodes is the BDD node delta attributable to the event.
	Nodes int64 `json:"nodes,omitempty"`
	// N is the event's count (classes found, class size, pairs expanded);
	// Total is the denominator when the event announces planned work.
	N     int64 `json:"n,omitempty"`
	Total int64 `json:"total,omitempty"`
	// Err is the failure kind (parse / canceled / budget / internal).
	Err string `json:"err,omitempty"`
	// Detail carries free-form header fields (build info, options
	// fingerprint) without widening the schema per field.
	Detail map[string]string `json:"detail,omitempty"`
}

// The event taxonomy. DESIGN.md's Flight recorder section documents the
// fields each type carries; `campion report` and the progress renderer
// consume them, so treat the tags and their field conventions as API.
const (
	EvRunStart   = "run_start"     // run header: name, Total planned units, Detail build info + options fingerprint
	EvRunEnd     = "run_end"       // run footer: Dur wall time, N exit status
	EvPhaseStart = "phase_start"   // Phase, Total planned units (0 = unknown)
	EvPhaseEnd   = "phase_end"     // Phase, Dur, N units processed
	EvParse      = "parse"         // Device, Dur, Err on failure
	EvHash       = "hash"          // Device, Kind dag|fallback|cached|given, Dur
	EvCluster    = "cluster"       // N classes over Total devices
	EvClass      = "class"         // Class (1-based), Device representative, N members
	EvPair       = "pair"          // Pair, Dur, Diffs, Nodes, Op "cached" when served from cache, Err kind
	EvComponent  = "component"     // Pair, Component, Kind, Dur, Nodes
	EvCache      = "cache"         // Op hit|miss|evict|corrupt, Kind report|hash
	EvExpand     = "expand"        // N member pairs expanded, Dur
	EvCheck      = "metrics_check" // end-of-run consistency check, Detail per-counter verdicts
	EvSnapshot   = "snapshot"      // Device, Op ingest|remove|noop, Kind push|watch|seed, N dirty components, Detail changed-line range
	EvAudit      = "audit"         // incremental re-audit: Dur, N rep pairs computed, Total rep pairs needed
	EvRepair     = "repair"        // repair search: Pair, Kind clean|repaired|partial|failed, Dur, Diffs initial regions, N candidates tried, Detail edits/size/depth/oracle rejections
)

// NewJournal starts a journal writing JSONL to w. A nil w is valid: the
// journal then only fans events out to listeners (the -progress-without
// -journal mode). All event times are relative to this call.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w, t0: time.Now()}
}

// Listen registers a listener invoked synchronously, in sequence order,
// for every subsequent event (the progress renderer hooks in here).
// Register listeners before events flow; Listen is nevertheless safe to
// call concurrently with Emit.
func (j *Journal) Listen(fn func(Event)) {
	if j == nil || fn == nil {
		return
	}
	j.mu.Lock()
	j.listeners = append(j.listeners, fn)
	j.mu.Unlock()
}

// Emit stamps the event with the next sequence number and the monotonic
// offset, appends it to the stream, and fans it out to listeners. Write
// errors are remembered (Err) but never interrupt the run — the journal
// is an observer, not a dependency.
func (j *Journal) Emit(e Event) {
	if j == nil {
		return
	}
	now := time.Since(j.t0)
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	e.T = int64(now)
	if j.w != nil {
		// One marshal + one write per event: each line hits the file
		// before Emit returns, so a crash loses at most the event in
		// flight, never a buffered tail.
		data, err := json.Marshal(e)
		if err == nil {
			data = append(data, '\n')
			_, err = j.w.Write(data)
		}
		if err != nil && j.err == nil {
			j.err = err
		}
	}
	listeners := j.listeners
	j.mu.Unlock()
	for _, fn := range listeners {
		fn(e)
	}
}

// Err reports the first write error, or nil. A journal with a failed
// writer keeps serving listeners.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ReadJournal parses a JSONL journal stream. A malformed final line is
// tolerated (a crashed run truncates mid-write; the record up to there
// is still a valid artifact) — any earlier malformed line is an error.
func ReadJournal(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var events []Event
	var pendingErr error
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		if pendingErr != nil {
			// The malformed line was not the last one: corrupt journal.
			return events, pendingErr
		}
		var e Event
		if err := json.Unmarshal(text, &e); err != nil {
			pendingErr = fmt.Errorf("journal line %d: %w", line, err)
			continue
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return events, err
	}
	return events, nil
}
