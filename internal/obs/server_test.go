package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestServerEndpoints: /metrics speaks the Prometheus text format, /runs
// serves the run log as JSON, pprof is mounted, and unknown paths 404.
func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("campion_pairs_total", "pairs compared").Add(7)
	runs := NewRunLog(4)
	run := runs.Start("fleet audit", 3)
	run.PairDone(2, false)
	run.PairDone(0, true)
	run.Finish()

	srv := httptest.NewServer((&Server{Registry: reg, Runs: runs}).Handler())
	defer srv.Close()

	resp, body := get(t, srv, "/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	if !strings.Contains(body, "campion_pairs_total 7\n") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	resp, body = get(t, srv, "/runs")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/runs content-type = %q", ct)
	}
	var sums []RunSummary
	if err := json.Unmarshal([]byte(body), &sums); err != nil {
		t.Fatalf("/runs is not JSON: %v\n%s", err, body)
	}
	if len(sums) != 1 {
		t.Fatalf("/runs entries = %d, want 1", len(sums))
	}
	s := sums[0]
	if s.Name != "fleet audit" || s.Pairs != 3 || s.Completed != 2 ||
		s.Differences != 2 || s.Errors != 1 || !s.Done {
		t.Errorf("run summary = %+v", s)
	}

	resp, _ = get(t, srv, "/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", resp.StatusCode)
	}

	resp, body = get(t, srv, "/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index: status %d body %q", resp.StatusCode, body)
	}
	resp, _ = get(t, srv, "/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/nope status = %d, want 404", resp.StatusCode)
	}
}

// TestServerNilBackends: a zero Server must still answer every endpoint.
func TestServerNilBackends(t *testing.T) {
	srv := httptest.NewServer((&Server{}).Handler())
	defer srv.Close()
	resp, _ := get(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics status = %d", resp.StatusCode)
	}
	resp, body := get(t, srv, "/runs")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Errorf("/runs = %d %q, want 200 []", resp.StatusCode, body)
	}
}

// TestRunLogRing: the log is a bounded ring — starting past the capacity
// evicts the oldest, IDs keep increasing, newest comes first.
func TestRunLogRing(t *testing.T) {
	l := NewRunLog(2)
	l.Start("a", 1).Finish()
	l.Start("b", 1).Finish()
	l.Start("c", 1).Finish()
	sums := l.Summaries()
	if len(sums) != 2 {
		t.Fatalf("entries = %d, want 2", len(sums))
	}
	if sums[0].Name != "c" || sums[1].Name != "b" {
		t.Errorf("order = %s, %s; want c, b", sums[0].Name, sums[1].Name)
	}
	if sums[0].ID != 3 {
		t.Errorf("newest ID = %d, want 3", sums[0].ID)
	}
}

// TestRunLogNil: the nil log and nil run discard everything.
func TestRunLogNil(t *testing.T) {
	var l *RunLog
	r := l.Start("x", 1)
	r.PairDone(1, false)
	r.Finish()
	if l.Summaries() != nil {
		t.Error("nil log has summaries")
	}
	var b strings.Builder
	if err := l.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Errorf("nil log JSON = %q", b.String())
	}
}
