package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// sampleJournal is a tiny synthetic run: two phases, three pairs (one
// cached, one failed), cache traffic, and a footer.
func sampleJournal() []Event {
	return []Event{
		{Seq: 1, T: 10, Type: EvRunStart, Run: "campion fleet",
			Detail: map[string]string{"go": "go1.24.0"}},
		{Seq: 2, T: 20, Type: EvPhaseStart, Phase: "hash", Total: 4},
		{Seq: 3, T: 100, Type: EvHash, Device: "r1", Kind: "dag", Dur: 80},
		{Seq: 4, T: 120, Type: EvHash, Device: "r2", Kind: "cached", Dur: 10},
		{Seq: 5, T: 130, Type: EvCache, Op: "hit", Kind: "hash"},
		{Seq: 6, T: 200, Type: EvPhaseEnd, Phase: "hash", Dur: 180, N: 4},
		{Seq: 7, T: 210, Type: EvCluster, N: 2, Total: 4},
		{Seq: 8, T: 220, Type: EvClass, Class: 1, Device: "r1", N: 3},
		{Seq: 9, T: 230, Type: EvClass, Class: 2, Device: "r2", N: 1},
		{Seq: 10, T: 240, Type: EvPhaseStart, Phase: "rep-pairs"},
		{Seq: 11, T: 1000, Type: EvComponent, Pair: "r1 vs r2", Component: "route-maps",
			Kind: "SemanticDiff", Dur: 700, Nodes: 500},
		{Seq: 12, T: 1100, Type: EvPair, Pair: "r1 vs r2", Dur: 860, Diffs: 2, Nodes: 500},
		{Seq: 13, T: 1200, Type: EvPair, Pair: "r2 vs r1", Op: "cached", Diffs: 2},
		{Seq: 14, T: 1300, Type: EvPair, Pair: "r1 vs r3", Dur: 50, Err: "parse"},
		{Seq: 15, T: 1400, Type: EvPhaseEnd, Phase: "rep-pairs", Dur: 1160, N: 3},
		{Seq: 16, T: 1500, Type: EvExpand, N: 6, Dur: 90},
		{Seq: 17, T: 1600, Type: EvCheck, Detail: map[string]string{"rep_pairs": "ok"}},
		{Seq: 18, T: 1700, Type: EvRunEnd, Dur: 1690, N: 1},
	}
}

func TestAnalyzeJournal(t *testing.T) {
	a := AnalyzeJournal(sampleJournal())
	if a.Run != "campion fleet" || a.Truncated {
		t.Fatalf("header: run=%q truncated=%v", a.Run, a.Truncated)
	}
	if a.Wall != 1690 || a.Status != 1 {
		t.Fatalf("wall=%d status=%d", a.Wall, a.Status)
	}
	if len(a.Phases) != 2 || a.Phases[0].Name != "hash" || a.Phases[1].Name != "rep-pairs" {
		t.Fatalf("phases: %+v", a.Phases)
	}
	if a.Phases[0].Dur != 180 || a.Phases[0].Units != 4 {
		t.Fatalf("hash phase: %+v", a.Phases[0])
	}
	if a.Classes != 2 || a.Devices != 4 || len(a.ClassSizes) != 2 || a.ClassSizes[0] != 3 {
		t.Fatalf("clustering: classes=%d devices=%d sizes=%v", a.Classes, a.Devices, a.ClassSizes)
	}
	if a.Hashes != 2 || a.HashKinds["dag"] != 1 || a.HashKinds["cached"] != 1 {
		t.Fatalf("hashes: %d %v", a.Hashes, a.HashKinds)
	}
	if len(a.Pairs) != 3 || a.Diffs != 4 {
		t.Fatalf("pairs: %d, diffs %d", len(a.Pairs), a.Diffs)
	}
	cached := 0
	for _, p := range a.Pairs {
		if p.Cached {
			cached++
		}
	}
	if cached != 1 {
		t.Fatalf("cached pairs: %d", cached)
	}
	if a.Errors["parse"] != 1 {
		t.Fatalf("errors: %v", a.Errors)
	}
	if len(a.Components) != 1 || a.Components[0].Nodes != 500 {
		t.Fatalf("components: %+v", a.Components)
	}
	if c := a.Cache["hash"]; c == nil || c.Hits != 1 {
		t.Fatalf("cache: %+v", a.Cache)
	}
	if a.Expanded != 6 || a.ExpandDur != 90 {
		t.Fatalf("expand: %d in %d", a.Expanded, a.ExpandDur)
	}
	if len(a.Checks) != 1 || a.Checks[0] != "rep_pairs: ok" {
		t.Fatalf("checks: %v", a.Checks)
	}
}

func TestAnalyzeJournalTruncated(t *testing.T) {
	events := sampleJournal()
	a := AnalyzeJournal(events[:len(events)-1]) // drop run_end
	if !a.Truncated {
		t.Fatal("journal without run_end should analyze as truncated")
	}
	if a.Wall != 1600 {
		t.Fatalf("truncated wall should be the last event offset, got %d", a.Wall)
	}
	// A headerless (library-level) journal is not "truncated".
	if a := AnalyzeJournal(events[1:]); a.Truncated {
		t.Fatal("headerless journal misreported as truncated")
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	a := AnalyzeJournal(sampleJournal())
	var b1, b2 bytes.Buffer
	if err := a.WriteText(&b1, 10); err != nil {
		t.Fatal(err)
	}
	if err := AnalyzeJournal(sampleJournal()).WriteText(&b2, 10); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("WriteText is not deterministic across renderings")
	}
	out := b1.String()
	for _, want := range []string{"status: complete", "rep-pairs", "slowest pairs",
		"r1 vs r2", "failures: parse: 1", "consistency: rep_pairs: ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJournalTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJournalTrace(&buf, sampleJournal()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	lanes := map[string]float64{}
	for _, e := range events {
		name := e["name"].(string)
		names[name] = true
		lanes[name] = e["tid"].(float64)
	}
	for _, want := range []string{"phase:hash", "phase:rep-pairs", "r1 vs r2", "route-maps"} {
		if !names[want] {
			t.Fatalf("trace missing %q; have %v", want, names)
		}
	}
	// Phases render in lane 1; pairs pack into lanes 2+; a pair's
	// components share its lane.
	if lanes["phase:hash"] != 1 {
		t.Fatalf("phase lane = %v", lanes["phase:hash"])
	}
	if lanes["r1 vs r2"] < 2 || lanes["route-maps"] != lanes["r1 vs r2"] {
		t.Fatalf("pair lane %v, component lane %v", lanes["r1 vs r2"], lanes["route-maps"])
	}
	// Empty journal still yields valid JSON (an empty array).
	buf.Reset()
	if err := WriteJournalTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("empty trace = %q", buf.String())
	}
}

func TestTraceLanePacking(t *testing.T) {
	// Two overlapping pairs need two lanes; a third starting after both
	// ended reuses lane 2.
	events := []Event{
		{Seq: 1, T: 100, Type: EvPair, Pair: "a", Dur: 100}, // 0..100
		{Seq: 2, T: 150, Type: EvPair, Pair: "b", Dur: 100}, // 50..150 overlaps a
		{Seq: 3, T: 300, Type: EvPair, Pair: "c", Dur: 50},  // 250..300 reuses first lane
	}
	var buf bytes.Buffer
	if err := WriteJournalTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	tid := map[string]float64{}
	for _, e := range out {
		tid[e["name"].(string)] = e["tid"].(float64)
	}
	if tid["a"] == tid["b"] {
		t.Fatalf("overlapping pairs packed into one lane: %v", tid)
	}
	if tid["c"] != tid["a"] {
		t.Fatalf("pair c should reuse the freed lane: %v", tid)
	}
}
