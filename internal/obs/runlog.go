package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// RunLog remembers the most recent batch executions (DiffBatch/DiffAll
// calls) so a long audit can be watched live over /runs. It is a bounded
// ring: starting a run beyond the capacity evicts the oldest. The nil
// RunLog hands out the nil *Run, which discards all updates.
type RunLog struct {
	mu   sync.Mutex
	cap  int
	next int64
	runs []*Run
}

// NewRunLog returns a log keeping the last capacity runs (16 if
// capacity <= 0).
func NewRunLog(capacity int) *RunLog {
	if capacity <= 0 {
		capacity = 16
	}
	return &RunLog{cap: capacity}
}

// DefaultRuns is the process-wide run log exposed by the -serve endpoint.
var DefaultRuns = NewRunLog(64)

// Run is one recorded batch execution. The progress counters are atomics:
// batch workers update them concurrently while /runs reads them.
type Run struct {
	id      int64
	name    string
	pairs   int
	started time.Time

	completed   atomic.Int64
	differences atomic.Int64
	errors      atomic.Int64
	durationNS  atomic.Int64
	done        atomic.Bool

	// Failure-kind breakdown, indexed parallel to runErrorKinds. Updated
	// by PairFailed from concurrent batch workers.
	errorKinds [len(runErrorKinds)]atomic.Int64

	// phase names the pipeline phase currently executing (fleet runs:
	// hash, cluster, rep-pairs, expand). Guarded by phaseMu because it is
	// a string, not a counter.
	phaseMu sync.Mutex
	phase   string
}

// SetPhase labels the run with its current pipeline phase, shown on
// /runs while the run is live.
func (r *Run) SetPhase(phase string) {
	if r == nil {
		return
	}
	r.phaseMu.Lock()
	r.phase = phase
	r.phaseMu.Unlock()
}

// Advance bulk-updates the progress counters: pairs newly covered, the
// differences they carried, and how many of them failed. Fleet runs use
// it to credit whole member-pair blocks as each representative pair
// resolves.
func (r *Run) Advance(pairs, differences, errs int64) {
	if r == nil {
		return
	}
	r.completed.Add(pairs)
	r.differences.Add(differences)
	r.errors.Add(errs)
}

// runErrorKinds is the failure taxonomy surfaced per run: the labels of
// core.ErrKind, in fixed order so each gets a dedicated atomic slot.
var runErrorKinds = [...]string{"parse", "canceled", "budget", "internal"}

// Start records the beginning of a run over the given number of pairs.
func (l *RunLog) Start(name string, pairs int) *Run {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next++
	r := &Run{id: l.next, name: name, pairs: pairs, started: time.Now()}
	l.runs = append(l.runs, r)
	if len(l.runs) > l.cap {
		l.runs = l.runs[len(l.runs)-l.cap:]
	}
	return r
}

// PairDone records one finished pair with its difference count; pass
// failed for pairs that errored.
func (r *Run) PairDone(differences int, failed bool) {
	if r == nil {
		return
	}
	r.completed.Add(1)
	r.differences.Add(int64(differences))
	if failed {
		r.errors.Add(1)
	}
}

// PairFailed attributes one failed pair to a failure kind ("parse",
// "canceled", "budget", "internal" — the core.ErrKind vocabulary).
// Unknown kinds count as internal. Call it alongside PairDone(_, true);
// the two counters are independent so the summary's total error count
// stays correct even for callers that never classify.
func (r *Run) PairFailed(kind string) {
	if r == nil {
		return
	}
	slot := len(runErrorKinds) - 1 // default: internal
	for i, k := range runErrorKinds {
		if k == kind {
			slot = i
			break
		}
	}
	r.errorKinds[slot].Add(1)
}

// Finish marks the run complete and freezes its duration.
func (r *Run) Finish() {
	if r == nil {
		return
	}
	r.durationNS.Store(int64(time.Since(r.started)))
	r.done.Store(true)
}

// RunSummary is the JSON shape of one run on /runs.
type RunSummary struct {
	ID          int64     `json:"id"`
	Name        string    `json:"name"`
	Started     time.Time `json:"started"`
	Duration    string    `json:"duration"`
	Pairs       int       `json:"pairs"`
	Completed   int64     `json:"completed"`
	Differences int64     `json:"differences"`
	Errors      int64     `json:"errors"`
	// ErrorKinds breaks Errors down by failure kind (parse / canceled /
	// budget / internal); omitted while no classified failure happened.
	ErrorKinds map[string]int64 `json:"errorKinds,omitempty"`
	// Phase is the pipeline phase the run is currently in (fleet runs).
	Phase string `json:"phase,omitempty"`
	Done  bool   `json:"done"`
}

// Summaries snapshots the recorded runs, newest first.
func (l *RunLog) Summaries() []RunSummary {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	runs := append([]*Run(nil), l.runs...)
	l.mu.Unlock()
	out := make([]RunSummary, 0, len(runs))
	for i := len(runs) - 1; i >= 0; i-- {
		r := runs[i]
		d := time.Duration(r.durationNS.Load())
		if !r.done.Load() {
			d = time.Since(r.started)
		}
		r.phaseMu.Lock()
		phase := r.phase
		r.phaseMu.Unlock()
		var kinds map[string]int64
		for i, k := range runErrorKinds {
			if n := r.errorKinds[i].Load(); n > 0 {
				if kinds == nil {
					kinds = map[string]int64{}
				}
				kinds[k] = n
			}
		}
		out = append(out, RunSummary{
			ID:          r.id,
			Name:        r.name,
			Started:     r.started,
			Duration:    d.Round(time.Microsecond).String(),
			Pairs:       r.pairs,
			Completed:   r.completed.Load(),
			Differences: r.differences.Load(),
			Errors:      r.errors.Load(),
			ErrorKinds:  kinds,
			Phase:       phase,
			Done:        r.done.Load(),
		})
	}
	return out
}

// WriteJSON renders the run summaries (newest first) as indented JSON.
func (l *RunLog) WriteJSON(w io.Writer) error {
	sums := l.Summaries()
	if sums == nil {
		sums = []RunSummary{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sums)
}
