package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// This file is the offline half of the flight recorder: replaying a
// journal (a finished or crashed run's JSONL stream) into an analysis —
// per-phase time breakdown, slowest pairs, class-size skew, cache
// efficiency, per-component attribution — and exporting it as a Chrome
// trace. Everything here is a pure function of the event slice, so the
// same journal always renders the same summary.

// PhaseProfile is one pipeline phase's share of the run.
type PhaseProfile struct {
	Name   string
	Dur    time.Duration
	Units  int64 // units processed (phase_end N)
	Events int64 // events attributed to the phase while it ran
}

// PairProfile is one pair comparison as the journal recorded it.
type PairProfile struct {
	Name   string
	Dur    time.Duration
	Diffs  int
	Nodes  int64
	Err    string
	Cached bool
}

// ComponentProfile aggregates the per-component events across all pairs.
type ComponentProfile struct {
	Name  string
	Dur   time.Duration
	Nodes int64
	Count int64
}

// CacheProfile tallies one cache entry kind's traffic.
type CacheProfile struct {
	Hits, Misses, Evictions, Corrupt int64
}

// HitRate is hits over lookups, or 0 when nothing was looked up.
func (c CacheProfile) HitRate() float64 {
	if c.Hits+c.Misses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}

// JournalAnalysis is the replayed summary of one run journal.
type JournalAnalysis struct {
	// Run is the run_start name; Detail its header fields (build info,
	// options fingerprint). Zero values when the journal has no header
	// (library runs emit stages only).
	Run    string
	Detail map[string]string
	// Truncated marks a journal without a run_end — a crashed or
	// interrupted run.
	Truncated bool
	// Wall is the run_end duration when present, else the last event's
	// offset — the best wall-time estimate a truncated journal supports.
	Wall time.Duration
	// Status is the run_end exit status.
	Status int64

	Phases     []PhaseProfile
	Pairs      []PairProfile
	Components []ComponentProfile
	// ClassSizes are the semantic class sizes, largest first; Devices
	// and Classes summarize the clustering.
	ClassSizes []int
	Devices    int64
	Classes    int64
	// Parses and Hashes count the per-device events; HashKinds splits
	// hashing by mode (dag / fallback / cached / given).
	Parses    int64
	Hashes    int64
	HashKinds map[string]int64
	// Cache tallies persistent-cache traffic by entry kind.
	Cache map[string]*CacheProfile
	// Errors counts failure events by kind.
	Errors map[string]int64
	// Expanded is the member-pair count the expansion covered; ExpandDur
	// its wall time.
	Expanded  int64
	ExpandDur time.Duration
	// Diffs sums the localized differences over all pair events.
	Diffs int64
	// Checks lists metrics_check verdicts (the end-of-run consistency
	// check between incremental publication and the final stats).
	Checks []string
}

// AnalyzeJournal replays an event slice into its analysis.
func AnalyzeJournal(events []Event) *JournalAnalysis {
	a := &JournalAnalysis{
		HashKinds: map[string]int64{},
		Cache:     map[string]*CacheProfile{},
		Errors:    map[string]int64{},
	}
	phaseIdx := map[string]int{}
	currentPhase := -1
	sawHeader := false
	for _, e := range events {
		if e.T > int64(a.Wall) {
			a.Wall = time.Duration(e.T)
		}
		if currentPhase >= 0 {
			a.Phases[currentPhase].Events++
		}
		switch e.Type {
		case EvRunStart:
			a.Run, a.Detail, sawHeader = e.Run, e.Detail, true
		case EvRunEnd:
			a.Truncated = false
			if e.Dur > 0 {
				a.Wall = time.Duration(e.Dur)
			}
			a.Status = e.N
		case EvPhaseStart:
			i, ok := phaseIdx[e.Phase]
			if !ok {
				i = len(a.Phases)
				phaseIdx[e.Phase] = i
				a.Phases = append(a.Phases, PhaseProfile{Name: e.Phase})
			}
			currentPhase = i
		case EvPhaseEnd:
			if i, ok := phaseIdx[e.Phase]; ok {
				a.Phases[i].Dur += time.Duration(e.Dur)
				a.Phases[i].Units += e.N
			}
			if currentPhase >= 0 && a.Phases[currentPhase].Name == e.Phase {
				currentPhase = -1
			}
		case EvParse:
			a.Parses++
			if e.Err != "" {
				a.Errors[e.Err]++
			}
		case EvHash:
			a.Hashes++
			a.HashKinds[e.Kind]++
		case EvCluster:
			a.Classes, a.Devices = e.N, e.Total
		case EvClass:
			a.ClassSizes = append(a.ClassSizes, int(e.N))
		case EvPair:
			a.Pairs = append(a.Pairs, PairProfile{
				Name: e.Pair, Dur: time.Duration(e.Dur), Diffs: e.Diffs,
				Nodes: e.Nodes, Err: e.Err, Cached: e.Op == "cached",
			})
			a.Diffs += int64(e.Diffs)
			if e.Err != "" {
				a.Errors[e.Err]++
			}
		case EvComponent:
			// aggregated below
		case EvCache:
			c := a.Cache[e.Kind]
			if c == nil {
				c = &CacheProfile{}
				a.Cache[e.Kind] = c
			}
			n := e.N
			if n == 0 {
				n = 1
			}
			switch e.Op {
			case "hit":
				c.Hits += n
			case "miss":
				c.Misses += n
			case "evict":
				c.Evictions += n
			case "corrupt":
				c.Corrupt += n
			}
		case EvExpand:
			a.Expanded += e.N
			a.ExpandDur += time.Duration(e.Dur)
		case EvCheck:
			keys := make([]string, 0, len(e.Detail))
			for k := range e.Detail {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				a.Checks = append(a.Checks, k+": "+e.Detail[k])
			}
		}
	}
	// A journal with events but no run_end is a truncated artifact —
	// unless it never had a header either (a bare library-level journal).
	if sawHeader {
		a.Truncated = true
		for _, e := range events {
			if e.Type == EvRunEnd {
				a.Truncated = false
				break
			}
		}
	}
	// Component aggregation, in first-appearance order for determinism.
	compIdx := map[string]int{}
	for _, e := range events {
		if e.Type != EvComponent {
			continue
		}
		i, ok := compIdx[e.Component]
		if !ok {
			i = len(a.Components)
			compIdx[e.Component] = i
			a.Components = append(a.Components, ComponentProfile{Name: e.Component})
		}
		a.Components[i].Dur += time.Duration(e.Dur)
		a.Components[i].Nodes += e.Nodes
		a.Components[i].Count++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(a.ClassSizes)))
	return a
}

// WriteText renders the analysis as the `campion report` summary. The
// output is a pure function of the journal, so re-rendering the same
// file is byte-identical. topN bounds the slowest-pairs table.
func (a *JournalAnalysis) WriteText(w io.Writer, topN int) error {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	if a.Run != "" {
		p("run: %s\n", a.Run)
	}
	if len(a.Detail) > 0 {
		keys := make([]string, 0, len(a.Detail))
		for k := range a.Detail {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + "=" + a.Detail[k]
		}
		p("build: %s\n", strings.Join(parts, " "))
	}
	if a.Truncated {
		p("status: TRUNCATED (no run_end — crashed or interrupted after %s)\n", rdur(a.Wall))
	} else {
		p("status: complete in %s (exit %d)\n", rdur(a.Wall), a.Status)
	}

	if len(a.Phases) > 0 {
		p("\nphases:\n")
		var total time.Duration
		for _, ph := range a.Phases {
			total += ph.Dur
		}
		for _, ph := range a.Phases {
			pct := int64(0)
			if total > 0 {
				pct = int64(ph.Dur) * 100 / int64(total)
			}
			p("  %-10s %10s  %3d%%", ph.Name, rdur(ph.Dur), pct)
			if ph.Units > 0 {
				p("  %d units", ph.Units)
			}
			p("\n")
		}
	}

	if a.Devices > 0 || len(a.ClassSizes) > 0 {
		p("\nclustering: %d devices -> %d classes", a.Devices, a.Classes)
		if len(a.ClassSizes) > 0 {
			largest := a.ClassSizes[0]
			singletons := 0
			for _, s := range a.ClassSizes {
				if s == 1 {
					singletons++
				}
			}
			p("; largest %d", largest)
			if a.Devices > 0 {
				p(" (%d%%)", int64(largest)*100/a.Devices)
			}
			p(", singletons %d", singletons)
			top := a.ClassSizes
			if len(top) > 8 {
				top = top[:8]
			}
			p(", sizes %v", top)
		}
		p("\n")
	}
	if a.Hashes > 0 {
		kinds := make([]string, 0, len(a.HashKinds))
		for k := range a.HashKinds {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		parts := make([]string, len(kinds))
		for i, k := range kinds {
			parts[i] = fmt.Sprintf("%s %d", k, a.HashKinds[k])
		}
		p("hashing: %d devices (%s); %d parsed\n", a.Hashes, strings.Join(parts, ", "), a.Parses)
	}

	if len(a.Pairs) > 0 {
		cached, failed := 0, 0
		var pairWall time.Duration
		for _, pr := range a.Pairs {
			if pr.Cached {
				cached++
			}
			if pr.Err != "" {
				failed++
			}
			pairWall += pr.Dur
		}
		p("\npairs: %d compared (%d cached, %d failed), %d differences, %s total pair time\n",
			len(a.Pairs), cached, failed, a.Diffs, rdur(pairWall))
		slowest := append([]PairProfile(nil), a.Pairs...)
		sort.Slice(slowest, func(i, j int) bool {
			if slowest[i].Dur != slowest[j].Dur {
				return slowest[i].Dur > slowest[j].Dur
			}
			return slowest[i].Name < slowest[j].Name
		})
		if topN <= 0 {
			topN = 10
		}
		if len(slowest) > topN {
			slowest = slowest[:topN]
		}
		p("slowest pairs:\n")
		for i, pr := range slowest {
			p("  %2d. %-40s %10s  %3d diffs  %8d nodes", i+1, pr.Name, rdur(pr.Dur), pr.Diffs, pr.Nodes)
			if pr.Err != "" {
				p("  error=%s", pr.Err)
			}
			p("\n")
		}
	}

	if len(a.Components) > 0 {
		p("\ncomponents:\n")
		var total time.Duration
		for _, c := range a.Components {
			total += c.Dur
		}
		for _, c := range a.Components {
			pct := int64(0)
			if total > 0 {
				pct = int64(c.Dur) * 100 / int64(total)
			}
			p("  %-12s %10s  %3d%%  %8d nodes  %d checks\n", c.Name, rdur(c.Dur), pct, c.Nodes, c.Count)
		}
	}

	if len(a.Cache) > 0 {
		kinds := make([]string, 0, len(a.Cache))
		for k := range a.Cache {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		p("\ncache:\n")
		for _, k := range kinds {
			c := a.Cache[k]
			p("  %-7s %d/%d hits (%.1f%%), %d evicted, %d corrupt\n",
				k, c.Hits, c.Hits+c.Misses, 100*c.HitRate(), c.Evictions, c.Corrupt)
		}
	}
	if a.Expanded > 0 {
		p("\nexpansion: %d member pairs in %s\n", a.Expanded, rdur(a.ExpandDur))
	}
	if len(a.Errors) > 0 {
		kinds := make([]string, 0, len(a.Errors))
		for k := range a.Errors {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		parts := make([]string, len(kinds))
		for i, k := range kinds {
			parts[i] = fmt.Sprintf("%s: %d", k, a.Errors[k])
		}
		p("\nfailures: %s\n", strings.Join(parts, ", "))
	}
	for _, c := range a.Checks {
		p("consistency: %s\n", c)
	}
	return nil
}

// rdur renders a duration with microsecond rounding — stable across
// renderings because the value comes from the journal, not the clock.
func rdur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// WriteJournalTrace exports a journal as Chrome trace_event JSON (load
// via chrome://tracing or ui.perfetto.dev): phases render in lane 1,
// pair comparisons pack greedily into lanes 2+ so concurrent pairs
// stack side by side, and each pair's component events nest in its lane.
func WriteJournalTrace(w io.Writer, events []Event) error {
	var out []chromeEvent
	// Phases: lane 1, reconstructed from phase_end (start = end - dur).
	for _, e := range events {
		if e.Type != EvPhaseEnd || e.Dur <= 0 {
			continue
		}
		out = append(out, chromeEvent{
			Name: "phase:" + e.Phase, Ph: "X", Pid: 1, Tid: 1,
			Ts: float64(e.T-e.Dur) / 1e3, Dur: float64(e.Dur) / 1e3,
			Args: map[string]string{"units": fmt.Sprint(e.N)},
		})
	}
	// Pairs: greedy lane packing by start time, so overlap means
	// concurrency in the rendered trace.
	type timed struct {
		e     Event
		start int64
	}
	var pairs []timed
	for _, e := range events {
		if e.Type == EvPair && e.Dur > 0 {
			pairs = append(pairs, timed{e, e.T - e.Dur})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].start != pairs[j].start {
			return pairs[i].start < pairs[j].start
		}
		return pairs[i].e.Seq < pairs[j].e.Seq
	})
	var laneEnd []int64
	pairLane := map[string]int{}
	for _, t := range pairs {
		lane := -1
		for i, end := range laneEnd {
			if end <= t.start {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = t.e.T
		tid := lane + 2
		pairLane[t.e.Pair] = tid
		args := map[string]string{"diffs": fmt.Sprint(t.e.Diffs)}
		if t.e.Err != "" {
			args["error"] = t.e.Err
		}
		out = append(out, chromeEvent{
			Name: t.e.Pair, Ph: "X", Pid: 1, Tid: tid,
			Ts: float64(t.start) / 1e3, Dur: float64(t.e.Dur) / 1e3, Args: args,
		})
	}
	// Components nest inside their pair's lane.
	for _, e := range events {
		if e.Type != EvComponent || e.Dur <= 0 {
			continue
		}
		tid, ok := pairLane[e.Pair]
		if !ok {
			tid = 1 // single-pair runs: no pair event, render with phases
		}
		out = append(out, chromeEvent{
			Name: e.Component, Ph: "X", Pid: 1, Tid: tid,
			Ts: float64(e.T-e.Dur) / 1e3, Dur: float64(e.Dur) / 1e3,
		})
	}
	if out == nil {
		out = []chromeEvent{}
	}
	return json.NewEncoder(w).Encode(out)
}
