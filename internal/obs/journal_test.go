package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Emit(Event{Type: EvPair})
	j.Listen(func(Event) {})
	if err := j.Err(); err != nil {
		t.Fatalf("nil journal Err: %v", err)
	}
}

func TestJournalEmitAndRead(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.Emit(Event{Type: EvRunStart, Run: "test", Detail: map[string]string{"k": "v"}})
	j.Emit(Event{Type: EvPair, Pair: "a vs b", Diffs: 3, Dur: 1000})
	j.Emit(Event{Type: EvRunEnd, Dur: 2000, N: 1})
	if err := j.Err(); err != nil {
		t.Fatalf("journal error: %v", err)
	}
	events, err := ReadJournal(&buf)
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[0].Type != EvRunStart || events[0].Detail["k"] != "v" {
		t.Fatalf("bad header event: %+v", events[0])
	}
	if events[1].Pair != "a vs b" || events[1].Diffs != 3 {
		t.Fatalf("bad pair event: %+v", events[1])
	}
	for i, e := range events {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

func TestJournalConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	var wg sync.WaitGroup
	const goroutines, each = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				j.Emit(Event{Type: EvHash, Device: "d"})
			}
		}()
	}
	wg.Wait()
	events, err := ReadJournal(&buf)
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if len(events) != goroutines*each {
		t.Fatalf("got %d events, want %d", len(events), goroutines*each)
	}
	// File order must match sequence order: both are assigned under the
	// same mutex hold.
	for i, e := range events {
		if e.Seq != int64(i+1) {
			t.Fatalf("line %d carries seq %d — torn write ordering", i+1, e.Seq)
		}
		if prev := int64(0); i > 0 {
			prev = events[i-1].T
			if e.T < prev {
				t.Fatalf("timestamps went backwards at seq %d", e.Seq)
			}
		}
	}
}

func TestJournalListener(t *testing.T) {
	j := NewJournal(nil) // listener-only journal (the -progress mode)
	var got []Event
	j.Listen(func(e Event) { got = append(got, e) })
	j.Emit(Event{Type: EvCluster, N: 5})
	if len(got) != 1 || got[0].N != 5 || got[0].Seq != 1 {
		t.Fatalf("listener got %+v", got)
	}
}

func TestReadJournalTruncatedLastLine(t *testing.T) {
	full := `{"seq":1,"t_ns":10,"type":"run_start"}` + "\n" +
		`{"seq":2,"t_ns":20,"type":"pair","pair":"a vs b"}` + "\n"
	// A crash mid-write truncates the final line: tolerated.
	events, err := ReadJournal(strings.NewReader(full + `{"seq":3,"t_ns":30,"ty`))
	if err != nil {
		t.Fatalf("truncated final line should be tolerated, got %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	// The same malformed line anywhere earlier is corruption: an error.
	_, err = ReadJournal(strings.NewReader(`{"bad` + "\n" + full))
	if err == nil {
		t.Fatal("mid-stream malformed line should be an error")
	}
}

// failWriter errors after n successful writes.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestJournalWriteErrorDegrades(t *testing.T) {
	j := NewJournal(&failWriter{n: 1})
	var heard int
	j.Listen(func(Event) { heard++ })
	j.Emit(Event{Type: EvHash})
	j.Emit(Event{Type: EvHash}) // write fails
	j.Emit(Event{Type: EvHash}) // keeps degrading, listeners still served
	if j.Err() == nil {
		t.Fatal("expected a remembered write error")
	}
	if heard != 3 {
		t.Fatalf("listeners heard %d events, want 3", heard)
	}
}

func TestJournalOmitsZeroFields(t *testing.T) {
	var buf bytes.Buffer
	NewJournal(&buf).Emit(Event{Type: EvHash, Device: "r1"})
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"pair", "class", "dur_ns", "diffs", "err", "detail"} {
		if _, ok := raw[k]; ok {
			t.Fatalf("zero field %q serialized: %s", k, buf.String())
		}
	}
}

func TestRunAdvanceAndPhase(t *testing.T) {
	l := NewRunLog(4)
	r := l.Start("fleet (3 devices)", 3)
	r.SetPhase("hash")
	r.Advance(2, 10, 1)
	s := l.Summaries()[0]
	if s.Phase != "hash" || s.Completed != 2 || s.Differences != 10 || s.Errors != 1 {
		t.Fatalf("summary %+v", s)
	}
	r.SetPhase("cluster")
	if got := l.Summaries()[0].Phase; got != "cluster" {
		t.Fatalf("phase = %q", got)
	}
	// Nil run: all no-ops.
	var nr *Run
	nr.SetPhase("x")
	nr.Advance(1, 1, 1)
}

func TestReadBuild(t *testing.T) {
	b := ReadBuild()
	if b.GoVersion == "" || b.Revision == "" {
		t.Fatalf("ReadBuild left fields empty: %+v", b)
	}
	if s := b.String(); !strings.Contains(s, "revision") {
		t.Fatalf("String() = %q", s)
	}
	if d := b.Detail(); d["go"] == "" || d["revision"] == "" {
		t.Fatalf("Detail() = %v", d)
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "campion_build_info{") {
		t.Fatalf("no build info gauge in exposition:\n%s", buf.String())
	}
}

func TestProgressRenders(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	j := NewJournal(nil)
	j.Listen(p.Event)
	j.Emit(Event{Type: EvPhaseStart, Phase: "hash", Total: 10})
	for i := 0; i < 10; i++ {
		j.Emit(Event{Type: EvHash})
	}
	j.Emit(Event{Type: EvCluster, N: 3})
	j.Emit(Event{Type: EvRunEnd})
	out := buf.String()
	if !strings.Contains(out, "[hash]") || !strings.Contains(out, "3 classes") ||
		!strings.Contains(out, "done") {
		t.Fatalf("progress output %q", out)
	}
	// Events after close are dropped, not rendered.
	n := buf.Len()
	p.Event(Event{Type: EvHash})
	p.Close()
	if buf.Len() != n {
		t.Fatal("progress wrote after close")
	}
	// Nil progress: no-ops.
	var np *Progress
	np.Event(Event{Type: EvHash})
	np.Close()
}
