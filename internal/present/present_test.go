package present

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cisco"
	"repro/internal/core"
	"repro/internal/juniper"
)

const ciscoSide = `hostname cisco_router
ip prefix-list NETS permit 10.9.0.0/16 le 32
ip prefix-list NETS permit 10.100.0.0/16 le 32
ip community-list standard COMM permit 10:10
ip community-list standard COMM permit 10:11
route-map POL deny 10
 match ip address NETS
route-map POL deny 20
 match community COMM
route-map POL permit 30
 set local-preference 30
ip route 10.1.1.2 255.255.255.254 10.2.2.2
router bgp 65001
 neighbor 10.0.12.2 remote-as 65002
 neighbor 10.0.12.2 route-map POL out
`

const juniperSide = `system { host-name juniper_router; }
policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    community COMM members [ 10:10 10:11 ];
    policy-statement POL {
        term rule1 { from prefix-list NETS; then reject; }
        term rule2 { from community COMM; then reject; }
        term rule3 { then { local-preference 30; accept; } }
    }
}
routing-options { autonomous-system 65001; }
protocols {
    bgp {
        group peers {
            type external;
            peer-as 65002;
            neighbor 10.0.12.2 { export POL; }
        }
    }
}
`

func report(t *testing.T) *core.Report {
	t.Helper()
	c, err := cisco.Parse("cisco.cfg", ciscoSide)
	if err != nil {
		t.Fatal(err)
	}
	j, err := juniper.Parse("juniper.cfg", juniperSide)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Diff(c, j, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestFormatTable2Content checks that the rendered report carries the
// content of the paper's Table 2: included/excluded prefixes, the policy
// names, the actions, and the original text of both sides.
func TestFormatTable2Content(t *testing.T) {
	rep := report(t)
	var buf bytes.Buffer
	if err := Format(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"cisco_router",
		"juniper_router",
		"10.9.0.0/16 : 16-32",
		"10.9.0.0/16 : 16-16",
		"10.100.0.0/16 : 16-32",
		"0.0.0.0/0 : 0-32",
		"Included Prefixes",
		"Excluded Prefixes",
		"Community",
		"REJECT",
		"SET LOCAL PREF 30",
		"route-map POL deny 10",
		"match ip address NETS",
		"rule3",
		"10.1.1.2/31", // Table 4 static route
		"next-hop 10.2.2.2",
		"None",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q", want)
		}
	}
}

func TestFormatNoDifferences(t *testing.T) {
	c1, _ := cisco.Parse("a.cfg", ciscoSide)
	c2, _ := cisco.Parse("b.cfg", ciscoSide)
	rep, _ := core.Diff(c1, c2, core.Options{})
	var buf bytes.Buffer
	if err := Format(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "No differences found") {
		t.Errorf("output = %q", buf.String())
	}
}

func TestToJSON(t *testing.T) {
	rep := report(t)
	data, err := ToJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]interface{}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if parsed["router1"] != "cisco_router" || parsed["router2"] != "juniper_router" {
		t.Errorf("routers = %v %v", parsed["router1"], parsed["router2"])
	}
	rmd, ok := parsed["routeMapDiffs"].([]interface{})
	if !ok || len(rmd) != 2 {
		t.Fatalf("routeMapDiffs = %v", parsed["routeMapDiffs"])
	}
	first := rmd[0].(map[string]interface{})
	if first["policy1"] != "POL" || first["action1"] != "REJECT" {
		t.Errorf("first diff = %v", first)
	}
	if first["exact"] != true {
		t.Error("localization should be exact")
	}
	if _, ok := parsed["structuralDiffs"]; !ok {
		t.Error("structural diffs missing")
	}
}

func TestSummary(t *testing.T) {
	rep := report(t)
	var buf bytes.Buffer
	Summary(&buf, rep)
	out := buf.String()
	if !strings.Contains(out, "route-policy (bgp-export)") || !strings.Contains(out, "2") {
		t.Errorf("summary = %q", out)
	}
	if !strings.Contains(out, "static-route") {
		t.Errorf("summary missing static-route: %q", out)
	}
}

func TestClipAndTitle(t *testing.T) {
	if clip("short", 10) != "short" {
		t.Error("clip short")
	}
	if got := clip("aaaaaaaaaaaaaaaa", 5); len(got) > 7 { // ellipsis is multibyte
		t.Errorf("clip long = %q", got)
	}
	if titleCase("presence") != "Presence" || titleCase("") != "" {
		t.Error("titleCase")
	}
}

const gwCisco = `hostname gw-cisco
ip access-list extended VM_FILTER_1
 2299 deny ipv4 9.140.0.0 0.0.1.255 any
 2300 permit tcp any 10.60.0.0 0.0.255.255 eq 80 443
`

const gwJuniper = `system { host-name gw-juniper; }
firewall {
    family inet {
        filter VM_FILTER_1 {
            term web {
                from {
                    protocol tcp;
                    destination-address { 10.60.0.0/16; }
                    destination-port [ 80 443 ];
                }
                then accept;
            }
            term final { then discard; }
        }
    }
}
`

func TestFormatACLDiffsAndJSON(t *testing.T) {
	c, err := cisco.Parse("c.cfg", gwCisco)
	if err != nil {
		t.Fatal(err)
	}
	j, err := juniper.Parse("j.cfg", gwJuniper)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Diff(c, j, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ACLDiffs) == 0 {
		t.Fatal("expected ACL diffs")
	}
	var buf bytes.Buffer
	if err := Format(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ACL VM_FILTER_1", "Src Packets", "9.140.0.0", "2299 deny ipv4"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	data, err := ToJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]interface{}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatal(err)
	}
	if _, ok := parsed["aclDiffs"]; !ok {
		t.Error("JSON missing aclDiffs")
	}
}

func TestFormatExhaustiveCommunitiesAndUnmatchedACLs(t *testing.T) {
	c, _ := cisco.Parse("c.cfg", ciscoSide+`
ip access-list extended ONLY_C
 permit ip any any
`)
	j, _ := juniper.Parse("j.cfg", juniperSide)
	rep, err := core.Diff(c, j, core.Options{ExhaustiveCommunities: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Format(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Communities (all)") {
		t.Error("exhaustive community row missing")
	}
	if !strings.Contains(out, "ACL ONLY_C present only on") {
		t.Error("unmatched ACL section missing")
	}
	data, err := ToJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "communityTerms") {
		t.Error("JSON missing communityTerms")
	}
	if !strings.Contains(string(data), "aclsOnlyOnRouter1") {
		t.Error("JSON missing unmatched ACLs")
	}
}
