// Package present formats Campion reports for people: the two-column
// difference tables of the paper (Tables 2, 4, and 7) and a JSON form for
// tooling. Present is the third stage of the ConfigDiff pipeline (§3).
package present

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/ddnf"
)

// Format writes the full report as text tables.
func Format(w io.Writer, rep *core.Report) error {
	name1, name2 := routerNames(rep)
	if rep.TotalDifferences() == 0 {
		_, err := fmt.Fprintf(w, "No differences found between %s and %s.\n", name1, name2)
		return err
	}
	n := 0
	for _, d := range rep.RouteMapDiffs {
		n++
		fmt.Fprintf(w, "Difference %d: route policy (%s, neighbor %s)\n", n, d.Pair.Kind, d.Pair.Neighbor)
		t := newTable(name1, name2)
		t.addPair("Included Prefixes", joinTerms(includes(d.Localization.Terms)), "")
		t.addPair("Excluded Prefixes", joinTerms(excludes(d.Localization.Terms)), "")
		if !d.Localization.Exact {
			t.addPair("Note", "prefix localization is approximate", "")
		}
		if len(d.Localization.CommunityTerms) > 0 {
			var lines []string
			for _, ct := range d.Localization.CommunityTerms {
				lines = append(lines, ct.String())
			}
			if !d.Localization.CommunityComplete {
				lines = append(lines, "…")
			}
			t.addPair("Communities (all)", strings.Join(lines, "\n"), "")
		} else if len(d.Localization.ExampleCommunities) > 0 {
			t.addPair("Community", strings.Join(d.Localization.ExampleCommunities, " "), "")
		}
		t.addPair("Policy Name", d.Pair.Name1, d.Pair.Name2)
		t.addPair("Action", d.Action1, d.Action2)
		t.addPair("Text", d.Text1.Text(), d.Text2.Text())
		t.write(w)
		fmt.Fprintln(w)
	}
	for _, d := range rep.ACLDiffs {
		n++
		fmt.Fprintf(w, "Difference %d: ACL %s\n", n, d.Name1)
		t := newTable(name1, name2)
		t.addPair("Src Packets", joinFlat(d.Localization.SrcTerms), "")
		t.addPair("Dst Packets", joinFlat(d.Localization.DstTerms), "")
		ex := strings.Join(d.Localization.ExampleFields, "\n")
		if d.Localization.More > 0 {
			ex += fmt.Sprintf("\n+%d more", d.Localization.More)
		}
		if strings.TrimSpace(ex) != "" {
			t.addPair("Example", ex, "")
		}
		t.addPair("ACL Name", d.Name1, d.Name2)
		t.addPair("Action", d.Action1, d.Action2)
		t.addPair("Text", d.Text1.Text(), d.Text2.Text())
		t.write(w)
		fmt.Fprintln(w)
	}
	for _, d := range rep.Structural {
		n++
		fmt.Fprintf(w, "Difference %d: %s %s\n", n, d.Component, d.Key)
		t := newTable(name1, name2)
		t.addPair(titleCase(d.Field), d.Value1, d.Value2)
		t.addPair("Text", d.Span1.Text(), d.Span2.Text())
		t.write(w)
		fmt.Fprintln(w)
	}
	for _, name := range rep.UnmatchedACLs1 {
		n++
		fmt.Fprintf(w, "Difference %d: ACL %s present only on %s\n\n", n, name, name1)
	}
	for _, name := range rep.UnmatchedACLs2 {
		n++
		fmt.Fprintf(w, "Difference %d: ACL %s present only on %s\n\n", n, name, name2)
	}
	return nil
}

func routerNames(rep *core.Report) (string, string) {
	n1, n2 := "router1", "router2"
	if rep.Config1 != nil && rep.Config1.Hostname != "" {
		n1 = rep.Config1.Hostname
	}
	if rep.Config2 != nil && rep.Config2.Hostname != "" {
		n2 = rep.Config2.Hostname
	}
	if n1 == n2 {
		n1 += " (1)"
		n2 += " (2)"
	}
	return n1, n2
}

// includes extracts the included ranges of the flat terms.
func includes(terms []ddnf.FlatTerm) []string {
	var out []string
	for _, t := range terms {
		out = append(out, t.Include.String())
	}
	return out
}

// excludes extracts the union of excluded ranges of the flat terms.
func excludes(terms []ddnf.FlatTerm) []string {
	var out []string
	for _, t := range terms {
		for _, x := range t.Exclude {
			out = append(out, x.String())
		}
	}
	return out
}

func joinTerms(ss []string) string { return strings.Join(ss, "\n") }

func joinFlat(terms []ddnf.FlatTerm) string {
	var out []string
	for _, t := range terms {
		s := t.Include.Prefix.String()
		for _, x := range t.Exclude {
			s += " − " + x.Prefix.String()
		}
		out = append(out, s)
	}
	return strings.Join(out, "\n")
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// table is a minimal two-column (plus label) text table with multi-line
// cells, the shape of the paper's output tables.
type table struct {
	header [2]string
	rows   []row
}

type row struct {
	label  string
	c1, c2 string
}

func newTable(h1, h2 string) *table {
	return &table{header: [2]string{h1, h2}}
}

// addPair adds a row; rows whose cells are all empty are dropped.
func (t *table) addPair(label, c1, c2 string) {
	if strings.TrimSpace(c1) == "" && strings.TrimSpace(c2) == "" {
		return
	}
	t.rows = append(t.rows, row{label: label, c1: c1, c2: c2})
}

func (t *table) write(w io.Writer) {
	labelW, c1W := len(""), len(t.header[0])
	for _, r := range t.rows {
		labelW = maxInt(labelW, len(r.label))
		for _, line := range strings.Split(r.c1, "\n") {
			c1W = maxInt(c1W, len(line))
		}
	}
	sep := fmt.Sprintf("+%s+%s+%s+\n",
		strings.Repeat("-", labelW+2), strings.Repeat("-", c1W+2), strings.Repeat("-", 40))
	fmt.Fprint(w, sep)
	fmt.Fprintf(w, "| %-*s | %-*s | %-38s |\n", labelW, "", c1W, t.header[0], t.header[1])
	fmt.Fprint(w, sep)
	for _, r := range t.rows {
		l1 := strings.Split(r.c1, "\n")
		l2 := strings.Split(r.c2, "\n")
		lines := maxInt(len(l1), len(l2))
		for i := 0; i < lines; i++ {
			label := ""
			if i == 0 {
				label = r.label
			}
			s1, s2 := "", ""
			if i < len(l1) {
				s1 = l1[i]
			}
			if i < len(l2) {
				s2 = l2[i]
			}
			fmt.Fprintf(w, "| %-*s | %-*s | %-38s |\n", labelW, label, c1W, s1, clip(s2, 38))
		}
		fmt.Fprint(w, sep)
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "…"
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// jsonReport is the wire form of a report.
type jsonReport struct {
	Router1       string           `json:"router1"`
	Router2       string           `json:"router2"`
	RouteMapDiffs []jsonRouteDiff  `json:"routeMapDiffs,omitempty"`
	ACLDiffs      []jsonACLDiff    `json:"aclDiffs,omitempty"`
	Structural    []jsonStructDiff `json:"structuralDiffs,omitempty"`
	UnmatchedACL1 []string         `json:"aclsOnlyOnRouter1,omitempty"`
	UnmatchedACL2 []string         `json:"aclsOnlyOnRouter2,omitempty"`
}

type jsonRouteDiff struct {
	Kind             string   `json:"kind"`
	Neighbor         string   `json:"neighbor"`
	Policy1          string   `json:"policy1"`
	Policy2          string   `json:"policy2"`
	IncludedPrefixes []string `json:"includedPrefixes"`
	ExcludedPrefixes []string `json:"excludedPrefixes,omitempty"`
	Exact            bool     `json:"exact"`
	Community        []string `json:"exampleCommunities,omitempty"`
	CommunityTerms   []string `json:"communityTerms,omitempty"`
	CommunityTermsOK bool     `json:"communityTermsComplete,omitempty"`
	Action1          string   `json:"action1"`
	Action2          string   `json:"action2"`
	Text1            string   `json:"text1"`
	Text2            string   `json:"text2"`
	Location1        string   `json:"location1,omitempty"`
	Location2        string   `json:"location2,omitempty"`
}

type jsonACLDiff struct {
	Name    string   `json:"name"`
	Src     []string `json:"srcPackets"`
	Dst     []string `json:"dstPackets"`
	Example []string `json:"example,omitempty"`
	More    int      `json:"moreFields,omitempty"`
	Action1 string   `json:"action1"`
	Action2 string   `json:"action2"`
	Text1   string   `json:"text1"`
	Text2   string   `json:"text2"`
}

type jsonStructDiff struct {
	Component string `json:"component"`
	Key       string `json:"key"`
	Field     string `json:"field"`
	Value1    string `json:"value1"`
	Value2    string `json:"value2"`
	Location1 string `json:"location1,omitempty"`
	Location2 string `json:"location2,omitempty"`
}

// ToJSON renders the report as indented JSON.
func ToJSON(rep *core.Report) ([]byte, error) {
	n1, n2 := routerNames(rep)
	out := jsonReport{
		Router1:       n1,
		Router2:       n2,
		UnmatchedACL1: rep.UnmatchedACLs1,
		UnmatchedACL2: rep.UnmatchedACLs2,
	}
	for _, d := range rep.RouteMapDiffs {
		var commTerms []string
		for _, ct := range d.Localization.CommunityTerms {
			commTerms = append(commTerms, ct.String())
		}
		out.RouteMapDiffs = append(out.RouteMapDiffs, jsonRouteDiff{
			Kind:             d.Pair.Kind,
			Neighbor:         d.Pair.Neighbor,
			Policy1:          d.Pair.Name1,
			Policy2:          d.Pair.Name2,
			IncludedPrefixes: includes(d.Localization.Terms),
			ExcludedPrefixes: excludes(d.Localization.Terms),
			Exact:            d.Localization.Exact,
			Community:        d.Localization.ExampleCommunities,
			CommunityTerms:   commTerms,
			CommunityTermsOK: d.Localization.CommunityComplete,
			Action1:          d.Action1,
			Action2:          d.Action2,
			Text1:            d.Text1.Text(),
			Text2:            d.Text2.Text(),
			Location1:        d.Text1.Location(),
			Location2:        d.Text2.Location(),
		})
	}
	for _, d := range rep.ACLDiffs {
		var src, dst []string
		for _, t := range d.Localization.SrcTerms {
			src = append(src, t.String())
		}
		for _, t := range d.Localization.DstTerms {
			dst = append(dst, t.String())
		}
		out.ACLDiffs = append(out.ACLDiffs, jsonACLDiff{
			Name:    d.Name1,
			Src:     src,
			Dst:     dst,
			Example: d.Localization.ExampleFields,
			More:    d.Localization.More,
			Action1: d.Action1,
			Action2: d.Action2,
			Text1:   d.Text1.Text(),
			Text2:   d.Text2.Text(),
		})
	}
	for _, d := range rep.Structural {
		out.Structural = append(out.Structural, jsonStructDiff{
			Component: d.Component,
			Key:       d.Key,
			Field:     d.Field,
			Value1:    d.Value1,
			Value2:    d.Value2,
			Location1: d.Span1.Location(),
			Location2: d.Span2.Location(),
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// Summary writes a one-line-per-difference digest grouped by component,
// the form used by the experiment tables (e.g. Table 6's counts).
func Summary(w io.Writer, rep *core.Report) {
	counts := map[string]int{}
	for _, d := range rep.RouteMapDiffs {
		counts["route-policy ("+d.Pair.Kind+")"]++
	}
	for range rep.ACLDiffs {
		counts["acl"]++
	}
	for _, d := range rep.Structural {
		counts[d.Component]++
	}
	if len(rep.UnmatchedACLs1)+len(rep.UnmatchedACLs2) > 0 {
		counts["acl (unmatched)"] = len(rep.UnmatchedACLs1) + len(rep.UnmatchedACLs2)
	}
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%-28s %d\n", k, counts[k])
	}
}
