// Package ddnf implements the prefix-range DAG of Campion's
// HeaderLocalize algorithm (§3.2). The structure is analogous to the ddNF
// data structure for packet header spaces, but nodes are labeled with
// prefix ranges: the root is the universe (0.0.0.0/0, 0-32), labels are
// closed under intersection, and edges encode immediate containment.
// GetMatch traverses the DAG to express an input set S as a minimal union
// of terms "R − X₁ − … − Xₖ" over the configuration's own prefix ranges.
package ddnf

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bdd"
	"repro/internal/netaddr"
)

// Node is a DAG node labeled with a prefix range.
type Node struct {
	Range    netaddr.PrefixRange
	Children []*Node
	parents  []*Node
}

// DAG is the prefix-range containment DAG.
type DAG struct {
	Root  *Node
	Nodes []*Node
}

// Build constructs the DAG from the prefix ranges extracted from a pair
// of configurations: the universe is added, the set is closed under
// intersection, duplicates (semantic) are removed, and immediate
// containment edges are installed (properties 1–4 in the paper).
func Build(ranges []netaddr.PrefixRange) *DAG {
	labels := closeUnderIntersection(ranges)
	nodes := make([]*Node, len(labels))
	for i, r := range labels {
		nodes[i] = &Node{Range: r}
	}
	// Immediate containment: n is a child of m iff n ⊂ m strictly and no
	// intermediate node sits between them.
	strictlyContains := func(a, b netaddr.PrefixRange) bool {
		return a.ContainsRange(b) && !b.ContainsRange(a)
	}
	for _, m := range nodes {
		for _, n := range nodes {
			if m == n || !strictlyContains(m.Range, n.Range) {
				continue
			}
			immediate := true
			for _, k := range nodes {
				if k == m || k == n {
					continue
				}
				if strictlyContains(m.Range, k.Range) && strictlyContains(k.Range, n.Range) {
					immediate = false
					break
				}
			}
			if immediate {
				m.Children = append(m.Children, n)
				n.parents = append(n.parents, m)
			}
		}
	}
	var root *Node
	for _, n := range nodes {
		if n.Range.Equal(netaddr.Universe) {
			root = n
			break
		}
	}
	for _, n := range nodes {
		sort.Slice(n.Children, func(i, j int) bool {
			return n.Children[i].Range.Compare(n.Children[j].Range) < 0
		})
	}
	return &DAG{Root: root, Nodes: nodes}
}

// closeUnderIntersection adds the universe, closes the set under pairwise
// intersection, and removes empty and duplicate ranges. The result is
// sorted for determinism.
func closeUnderIntersection(ranges []netaddr.PrefixRange) []netaddr.PrefixRange {
	seen := map[netaddr.PrefixRange]bool{}
	var out []netaddr.PrefixRange
	add := func(r netaddr.PrefixRange) bool {
		if r.IsEmpty() || seen[r] {
			return false
		}
		seen[r] = true
		out = append(out, r)
		return true
	}
	add(netaddr.Universe)
	for _, r := range ranges {
		add(r)
	}
	for changed := true; changed; {
		changed = false
		n := len(out)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if inter, ok := out[i].Intersect(out[j]); ok {
					if add(inter) {
						changed = true
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Term is one element of GetMatch's result: the range Include minus the
// nested terms Exclude. After Simplify, Exclude entries have no further
// nesting.
type Term struct {
	Include netaddr.PrefixRange
	Exclude []Term
}

// FlatTerm is a simplified term: a range minus a list of plain ranges.
type FlatTerm struct {
	Include netaddr.PrefixRange
	Exclude []netaddr.PrefixRange
}

// SetOps supplies the BDD semantics GetMatch needs: the symbolic set for
// a range, and the universe of valid (well-formed) points. The same DAG
// logic thereby serves both route-advertisement prefix localization and
// ACL address localization.
type SetOps struct {
	F *bdd.Factory
	// RangeBDD returns the well-formed points belonging to the range.
	RangeBDD func(netaddr.PrefixRange) bdd.Node
	// Universe is the BDD of all well-formed points.
	Universe bdd.Node
}

func (o SetOps) contains(sub, super bdd.Node) bool {
	return o.F.Implies(sub, super)
}

// remainder computes node.Range minus its children's ranges, symbolically.
func (o SetOps) remainder(n *Node) bdd.Node {
	r := o.RangeBDD(n.Range)
	for _, c := range n.Children {
		r = o.F.Diff(r, o.RangeBDD(c.Range))
	}
	return r
}

// GetMatch expresses S (a BDD subset of the universe) in terms of the
// DAG's prefix ranges, following the paper's recursive algorithm. The
// boolean result reports whether the representation is exact; it can be
// false when S was built from constructs outside the range vocabulary
// (e.g. non-contiguous wildcard masks), in which case the terms
// under-approximate S.
func (d *DAG) GetMatch(o SetOps, s bdd.Node) ([]Term, bool) {
	if d.Root == nil {
		return nil, s == bdd.False
	}
	s = o.F.And(s, o.Universe)
	terms := d.getMatch(o, s, d.Root)
	// Exactness check: the union of the terms must equal S.
	union := bdd.False
	for _, t := range terms {
		union = o.F.Or(union, d.termBDD(o, t))
	}
	return terms, union == s
}

func (d *DAG) getMatch(o SetOps, s bdd.Node, node *Node) []Term {
	r := o.F.And(o.RangeBDD(node.Range), o.Universe)
	if len(node.Children) == 0 {
		if r != bdd.False && o.contains(r, s) {
			return []Term{{Include: node.Range}}
		}
		return nil
	}
	rem := o.F.And(o.remainder(node), o.Universe)
	if rem != bdd.False && o.contains(rem, s) {
		notS := o.F.And(o.F.Not(s), o.Universe)
		var nonmatches []Term
		for _, c := range node.Children {
			nonmatches = append(nonmatches, d.getMatch(o, notS, c)...)
		}
		return []Term{{Include: node.Range, Exclude: dedupeTerms(nonmatches)}}
	}
	var out []Term
	for _, c := range node.Children {
		out = append(out, d.getMatch(o, s, c)...)
	}
	return dedupeTerms(out)
}

// dedupeTerms removes duplicate terms (a node reachable through two
// parents is visited twice).
func dedupeTerms(ts []Term) []Term {
	var out []Term
	for _, t := range ts {
		dup := false
		for _, u := range out {
			if termsEqual(t, u) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, t)
		}
	}
	return out
}

func termsEqual(a, b Term) bool {
	if !a.Include.Equal(b.Include) || len(a.Exclude) != len(b.Exclude) {
		return false
	}
	for i := range a.Exclude {
		if !termsEqual(a.Exclude[i], b.Exclude[i]) {
			return false
		}
	}
	return true
}

// termBDD evaluates a (possibly nested) term symbolically.
func (d *DAG) termBDD(o SetOps, t Term) bdd.Node {
	n := o.F.And(o.RangeBDD(t.Include), o.Universe)
	for _, x := range t.Exclude {
		n = o.F.Diff(n, d.termBDD(o, x))
	}
	return n
}

// Simplify removes nested differences in a single pass, as in the paper:
// R − (A − B) becomes (R − A) ∪ B. The identity holds because GetMatch
// only nests along DAG containment chains (B ⊆ A ⊆ R).
func Simplify(terms []Term) []FlatTerm {
	var out []FlatTerm
	var walk func(t Term)
	walk = func(t Term) {
		flat := FlatTerm{Include: t.Include}
		for _, x := range t.Exclude {
			flat.Exclude = append(flat.Exclude, x.Include)
			for _, nested := range x.Exclude {
				walk(nested)
			}
		}
		sort.Slice(flat.Exclude, func(i, j int) bool {
			return flat.Exclude[i].Compare(flat.Exclude[j]) < 0
		})
		out = append(out, flat)
	}
	for _, t := range terms {
		walk(t)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Include.Compare(out[j].Include) < 0
	})
	return out
}

// String renders a flat term as "R − X₁ − X₂".
func (t FlatTerm) String() string {
	s := t.Include.String()
	for _, x := range t.Exclude {
		s += " − " + x.String()
	}
	return s
}

// Dot renders the DAG in Graphviz dot format, for visual inspection of
// Figure 3-style structures.
func (d *DAG) Dot() string {
	var b strings.Builder
	b.WriteString("digraph ddnf {\n  rankdir=TB;\n")
	id := map[*Node]int{}
	for i, n := range d.Nodes {
		id[n] = i
		fmt.Fprintf(&b, "  n%d [label=%q];\n", i, n.Range.String())
	}
	for _, n := range d.Nodes {
		for _, c := range n.Children {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", id[n], id[c])
		}
	}
	b.WriteString("}\n")
	return b.String()
}
