package ddnf

import (
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/netaddr"
	"repro/internal/symbolic"
)

// figure3Ranges builds a concrete instance of the paper's Figure 3 DAG:
// A is the universe; B and C sit under A; D, E under B; F under C; G
// under F.
func figure3Ranges() map[string]netaddr.PrefixRange {
	return map[string]netaddr.PrefixRange{
		"A": netaddr.Universe,
		"B": netaddr.MustParsePrefixRange("10.0.0.0/8 : 8-32"),
		"C": netaddr.MustParsePrefixRange("20.0.0.0/8 : 8-32"),
		"D": netaddr.MustParsePrefixRange("10.1.0.0/16 : 16-32"),
		"E": netaddr.MustParsePrefixRange("10.2.0.0/16 : 16-32"),
		"F": netaddr.MustParsePrefixRange("20.1.0.0/16 : 16-32"),
		"G": netaddr.MustParsePrefixRange("20.1.1.0/24 : 24-32"),
	}
}

func routeOps(enc *symbolic.RouteEncoding) SetOps {
	return SetOps{
		F:        enc.F,
		RangeBDD: enc.PrefixRangeBDD,
		Universe: enc.WellFormed,
	}
}

func TestBuildDAGStructure(t *testing.T) {
	rs := figure3Ranges()
	d := Build([]netaddr.PrefixRange{rs["B"], rs["C"], rs["D"], rs["E"], rs["F"], rs["G"]})
	if d.Root == nil || !d.Root.Range.Equal(netaddr.Universe) {
		t.Fatal("root must be the universe")
	}
	if len(d.Nodes) != 7 {
		t.Fatalf("nodes = %d, want 7", len(d.Nodes))
	}
	find := func(r netaddr.PrefixRange) *Node {
		for _, n := range d.Nodes {
			if n.Range.Equal(r) {
				return n
			}
		}
		t.Fatalf("missing node %v", r)
		return nil
	}
	b := find(rs["B"])
	if len(b.Children) != 2 {
		t.Errorf("B children = %d, want D and E", len(b.Children))
	}
	f := find(rs["F"])
	if len(f.Children) != 1 || !f.Children[0].Range.Equal(rs["G"]) {
		t.Errorf("F children = %+v", f.Children)
	}
	if len(d.Root.Children) != 2 {
		t.Errorf("root children = %d, want B and C", len(d.Root.Children))
	}
	// Immediate containment only: G is not a direct child of C.
	c := find(rs["C"])
	for _, ch := range c.Children {
		if ch.Range.Equal(rs["G"]) {
			t.Error("G must hang off F, not C (no transitive edges)")
		}
	}
}

func TestCloseUnderIntersection(t *testing.T) {
	// Two overlapping ranges force their intersection into the label set.
	r1 := netaddr.MustParsePrefixRange("10.0.0.0/8 : 8-24")
	r2 := netaddr.MustParsePrefixRange("10.1.0.0/16 : 16-32")
	labels := closeUnderIntersection([]netaddr.PrefixRange{r1, r2})
	want := netaddr.MustParsePrefixRange("10.1.0.0/16 : 16-24")
	var found bool
	for _, l := range labels {
		if l.Equal(want) {
			found = true
		}
	}
	if !found {
		t.Errorf("intersection %v missing from %v", want, labels)
	}
	// Universe present exactly once.
	count := 0
	for _, l := range labels {
		if l.Equal(netaddr.Universe) {
			count++
		}
	}
	if count != 1 {
		t.Errorf("universe appears %d times", count)
	}
}

// TestGetMatchFigure3 reproduces the paper's Figure 3 walk-through:
// S = (B − D) ∪ (C − F) ∪ G yields GetMatch result {B−D, C−(F−G)} and the
// simplification pass turns it into {B−D, C−F, G}.
func TestGetMatchFigure3(t *testing.T) {
	rs := figure3Ranges()
	enc := symbolic.NewRouteEncoding()
	o := routeOps(enc)
	d := Build([]netaddr.PrefixRange{rs["B"], rs["C"], rs["D"], rs["E"], rs["F"], rs["G"]})

	S := o.F.OrN(
		o.F.Diff(o.F.And(o.RangeBDD(rs["B"]), o.Universe), o.RangeBDD(rs["D"])),
		o.F.Diff(o.F.And(o.RangeBDD(rs["C"]), o.Universe), o.RangeBDD(rs["F"])),
		o.F.And(o.RangeBDD(rs["G"]), o.Universe),
	)
	terms, exact := d.GetMatch(o, S)
	if !exact {
		t.Fatal("representation should be exact")
	}
	if len(terms) != 2 {
		t.Fatalf("terms = %+v, want 2", terms)
	}
	// First term: B − D.
	if !terms[0].Include.Equal(rs["B"]) || len(terms[0].Exclude) != 1 ||
		!terms[0].Exclude[0].Include.Equal(rs["D"]) {
		t.Errorf("term 0 = %+v, want B − D", terms[0])
	}
	// Second term: C − (F − G).
	if !terms[1].Include.Equal(rs["C"]) || len(terms[1].Exclude) != 1 {
		t.Fatalf("term 1 = %+v, want C − (F − G)", terms[1])
	}
	nested := terms[1].Exclude[0]
	if !nested.Include.Equal(rs["F"]) || len(nested.Exclude) != 1 ||
		!nested.Exclude[0].Include.Equal(rs["G"]) {
		t.Errorf("nested = %+v, want F − G", nested)
	}

	flat := Simplify(terms)
	if len(flat) != 3 {
		t.Fatalf("flat = %+v, want 3 terms", flat)
	}
	// Sorted order: 10/8−D, 20/8−F, 20.1.1/24.
	if !flat[0].Include.Equal(rs["B"]) || len(flat[0].Exclude) != 1 || !flat[0].Exclude[0].Equal(rs["D"]) {
		t.Errorf("flat 0 = %v", flat[0])
	}
	if !flat[1].Include.Equal(rs["C"]) || len(flat[1].Exclude) != 1 || !flat[1].Exclude[0].Equal(rs["F"]) {
		t.Errorf("flat 1 = %v", flat[1])
	}
	if !flat[2].Include.Equal(rs["G"]) || len(flat[2].Exclude) != 0 {
		t.Errorf("flat 2 = %v", flat[2])
	}

	// The flattened representation still denotes exactly S.
	union := bdd.False
	for _, ft := range flat {
		n := o.F.And(o.RangeBDD(ft.Include), o.Universe)
		for _, x := range ft.Exclude {
			n = o.F.Diff(n, o.RangeBDD(x))
		}
		union = o.F.Or(union, n)
	}
	if union != S {
		t.Error("simplified terms denote a different set")
	}
}

func TestGetMatchWholeUniverse(t *testing.T) {
	enc := symbolic.NewRouteEncoding()
	o := routeOps(enc)
	d := Build([]netaddr.PrefixRange{netaddr.MustParsePrefixRange("10.0.0.0/8 : 8-32")})
	terms, exact := d.GetMatch(o, o.Universe)
	if !exact || len(terms) != 1 || !terms[0].Include.Equal(netaddr.Universe) || len(terms[0].Exclude) != 0 {
		t.Errorf("whole universe should be the single term U: %+v", terms)
	}
}

func TestGetMatchEmptySet(t *testing.T) {
	enc := symbolic.NewRouteEncoding()
	o := routeOps(enc)
	d := Build([]netaddr.PrefixRange{netaddr.MustParsePrefixRange("10.0.0.0/8 : 8-32")})
	terms, exact := d.GetMatch(o, bdd.False)
	if !exact || len(terms) != 0 {
		t.Errorf("empty set should produce no terms: %+v", terms)
	}
}

// TestGetMatchTable2Shape reproduces the header localization of the
// paper's Table 2(a): the impacted set "NETS_cisco minus NETS_juniper" is
// rendered as included 16-32 ranges minus excluded 16-16 ranges.
func TestGetMatchTable2Shape(t *testing.T) {
	cisco1 := netaddr.MustParsePrefixRange("10.9.0.0/16 : 16-32")
	cisco2 := netaddr.MustParsePrefixRange("10.100.0.0/16 : 16-32")
	jun1 := netaddr.MustParsePrefixRange("10.9.0.0/16 : 16-16")
	jun2 := netaddr.MustParsePrefixRange("10.100.0.0/16 : 16-16")
	enc := symbolic.NewRouteEncoding()
	o := routeOps(enc)
	d := Build([]netaddr.PrefixRange{cisco1, cisco2, jun1, jun2})

	S := o.F.OrN(
		o.F.Diff(o.F.And(o.RangeBDD(cisco1), o.Universe), o.RangeBDD(jun1)),
		o.F.Diff(o.F.And(o.RangeBDD(cisco2), o.Universe), o.RangeBDD(jun2)),
	)
	terms, exact := d.GetMatch(o, S)
	if !exact {
		t.Fatal("should be exact")
	}
	flat := Simplify(terms)
	if len(flat) != 2 {
		t.Fatalf("flat = %+v", flat)
	}
	if !flat[0].Include.Equal(cisco1) || len(flat[0].Exclude) != 1 || !flat[0].Exclude[0].Equal(jun1) {
		t.Errorf("flat 0 = %v, want 10.9/16:16-32 − 10.9/16:16-16", flat[0])
	}
	if !flat[1].Include.Equal(cisco2) || len(flat[1].Exclude) != 1 || !flat[1].Exclude[0].Equal(jun2) {
		t.Errorf("flat 1 = %v", flat[1])
	}
}

func TestGetMatchInexactFallback(t *testing.T) {
	// A set not expressible over the vocabulary: a single /32 when only
	// a /8 range is known. GetMatch must report inexactness.
	enc := symbolic.NewRouteEncoding()
	o := routeOps(enc)
	d := Build([]netaddr.PrefixRange{netaddr.MustParsePrefixRange("10.0.0.0/8 : 8-32")})
	S := o.F.And(enc.PrefixBDD(netaddr.MustParsePrefix("10.1.2.3/32")), o.Universe)
	terms, exact := d.GetMatch(o, S)
	if exact {
		t.Errorf("localization cannot be exact here: %+v", terms)
	}
	// Under-approximation: whatever is returned must be inside S.
	union := bdd.False
	for _, t2 := range terms {
		union = o.F.Or(union, d.termBDD(o, t2))
	}
	if o.F.Diff(union, S) != bdd.False {
		t.Error("terms must under-approximate S")
	}
}

func TestFlatTermString(t *testing.T) {
	ft := FlatTerm{
		Include: netaddr.MustParsePrefixRange("10.0.0.0/8 : 8-32"),
		Exclude: []netaddr.PrefixRange{netaddr.MustParsePrefixRange("10.1.0.0/16 : 16-32")},
	}
	want := "10.0.0.0/8 : 8-32 − 10.1.0.0/16 : 16-32"
	if ft.String() != want {
		t.Errorf("String = %q, want %q", ft.String(), want)
	}
}

func TestBuildWithDuplicatesAndEmpties(t *testing.T) {
	r := netaddr.MustParsePrefixRange("10.0.0.0/8 : 8-32")
	empty := netaddr.PrefixRange{Prefix: netaddr.MustParsePrefix("10.0.0.0/8"), Lo: 20, Hi: 10}
	d := Build([]netaddr.PrefixRange{r, r, empty})
	if len(d.Nodes) != 2 { // universe + r
		t.Errorf("nodes = %d, want 2", len(d.Nodes))
	}
}

func TestDot(t *testing.T) {
	d := Build([]netaddr.PrefixRange{
		netaddr.MustParsePrefixRange("10.0.0.0/8 : 8-32"),
		netaddr.MustParsePrefixRange("10.1.0.0/16 : 16-32"),
	})
	dot := d.Dot()
	for _, want := range []string{"digraph", "10.0.0.0/8 : 8-32", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
}
