package cisco

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/netaddr"
)

// figure1a is the Cisco excerpt from Figure 1(a) of the paper.
const figure1a = `ip prefix-list NETS permit 10.9.0.0/16 le 32
ip prefix-list NETS permit 10.100.0.0/16 le 32
!
ip community-list standard COMM permit 10:10
ip community-list standard COMM permit 10:11
!
route-map POL deny 10
 match ip address NETS
route-map POL deny 20
 match community COMM
route-map POL permit 30
 set local-preference 30
`

func TestParseFigure1a(t *testing.T) {
	cfg, err := Parse("cisco.cfg", figure1a)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Unrecognized) != 0 {
		for _, u := range cfg.Unrecognized {
			t.Errorf("unrecognized: %s %q", u.Location(), u.Text())
		}
	}
	pl := cfg.PrefixLists["NETS"]
	if pl == nil || len(pl.Entries) != 2 {
		t.Fatalf("NETS = %+v", pl)
	}
	want := netaddr.MustParsePrefixRange("10.9.0.0/16 : 16-32")
	if !pl.Entries[0].Range.Equal(want) {
		t.Errorf("NETS[0] = %v, want %v", pl.Entries[0].Range, want)
	}
	if pl.Entries[0].Span.StartLine != 1 {
		t.Errorf("NETS[0] span = %+v", pl.Entries[0].Span)
	}

	cl := cfg.CommunityLists["COMM"]
	if cl == nil || len(cl.Entries) != 2 {
		t.Fatalf("COMM = %+v", cl)
	}
	for i, wantC := range []string{"10:10", "10:11"} {
		if len(cl.Entries[i].Conjuncts) != 1 || cl.Entries[i].Conjuncts[0].Literal != wantC {
			t.Errorf("COMM[%d] = %+v", i, cl.Entries[i])
		}
	}

	rm := cfg.RouteMaps["POL"]
	if rm == nil || len(rm.Clauses) != 3 {
		t.Fatalf("POL = %+v", rm)
	}
	if rm.DefaultAction != ir.Deny {
		t.Error("IOS route-map default must be deny")
	}
	if rm.Clauses[0].Action != ir.ClauseDeny || rm.Clauses[0].Seq != 10 {
		t.Errorf("clause 10 = %+v", rm.Clauses[0])
	}
	if m, ok := rm.Clauses[0].Matches[0].(ir.MatchPrefixList); !ok || m.Lists[0] != "NETS" {
		t.Errorf("clause 10 match = %+v", rm.Clauses[0].Matches)
	}
	if m, ok := rm.Clauses[1].Matches[0].(ir.MatchCommunity); !ok || m.Lists[0] != "COMM" {
		t.Errorf("clause 20 match = %+v", rm.Clauses[1].Matches)
	}
	if rm.Clauses[2].Action != ir.ClausePermit {
		t.Error("clause 30 should permit")
	}
	if s, ok := rm.Clauses[2].Sets[0].(ir.SetLocalPref); !ok || s.Value != 30 {
		t.Errorf("clause 30 set = %+v", rm.Clauses[2].Sets)
	}
	// Text localization: clause 10's span covers its two lines.
	sp := rm.Clauses[0].Span
	if sp.StartLine != 7 || sp.EndLine != 8 {
		t.Errorf("clause 10 span = %d-%d, want 7-8", sp.StartLine, sp.EndLine)
	}
	if !strings.Contains(sp.Text(), "match ip address NETS") {
		t.Errorf("clause 10 text = %q", sp.Text())
	}
}

func TestParsePrefixListGeLe(t *testing.T) {
	cfg, _ := Parse("t", `ip prefix-list A permit 10.0.0.0/8 ge 16 le 24
ip prefix-list B permit 10.0.0.0/8 ge 16
ip prefix-list C permit 10.0.0.0/8 le 16
ip prefix-list D permit 10.0.0.0/8
ip prefix-list E seq 15 deny 0.0.0.0/0 le 32
`)
	cases := []struct {
		name string
		want string
	}{
		{"A", "10.0.0.0/8 : 16-24"},
		{"B", "10.0.0.0/8 : 16-32"},
		{"C", "10.0.0.0/8 : 8-16"},
		{"D", "10.0.0.0/8 : 8-8"},
		{"E", "0.0.0.0/0 : 0-32"},
	}
	for _, c := range cases {
		pl := cfg.PrefixLists[c.name]
		if pl == nil {
			t.Fatalf("missing list %s", c.name)
		}
		if got := pl.Entries[0].Range.String(); got != c.want {
			t.Errorf("%s = %s, want %s", c.name, got, c.want)
		}
	}
	e := cfg.PrefixLists["E"].Entries[0]
	if e.Seq != 15 || e.Action != ir.Deny {
		t.Errorf("E entry = %+v", e)
	}
}

func TestParseStaticRoutes(t *testing.T) {
	cfg, _ := Parse("t", `ip route 10.1.1.2 255.255.255.254 10.2.2.2
ip route 0.0.0.0 0.0.0.0 192.0.2.1 250
ip route 10.5.0.0 255.255.0.0 Null0
ip route 10.6.0.0 255.255.0.0 10.2.2.9 tag 500
`)
	if len(cfg.StaticRoutes) != 4 {
		t.Fatalf("got %d static routes", len(cfg.StaticRoutes))
	}
	r := cfg.StaticRoutes[0]
	if r.Prefix.String() != "10.1.1.2/31" || !r.HasNextHop || r.NextHop.String() != "10.2.2.2" || r.AdminDistance != 1 {
		t.Errorf("route 0 = %+v", r)
	}
	if cfg.StaticRoutes[1].AdminDistance != 250 {
		t.Errorf("route 1 AD = %d", cfg.StaticRoutes[1].AdminDistance)
	}
	if cfg.StaticRoutes[2].Interface != "Null0" || cfg.StaticRoutes[2].HasNextHop {
		t.Errorf("route 2 = %+v", cfg.StaticRoutes[2])
	}
	if !cfg.StaticRoutes[3].HasTag || cfg.StaticRoutes[3].Tag != 500 {
		t.Errorf("route 3 = %+v", cfg.StaticRoutes[3])
	}
	if !strings.Contains(cfg.StaticRoutes[0].Span.Text(), "ip route 10.1.1.2") {
		t.Error("static route should carry its text")
	}
}

func TestParseInterfaces(t *testing.T) {
	cfg, _ := Parse("t", `hostname core1
interface GigabitEthernet0/0
 description uplink
 ip address 10.0.12.1 255.255.255.0
 ip access-group EDGE_IN in
 ip access-group EDGE_OUT out
 ip ospf cost 10
interface GigabitEthernet0/1
 shutdown
`)
	if cfg.Hostname != "core1" {
		t.Errorf("hostname = %q", cfg.Hostname)
	}
	if len(cfg.Interfaces) != 2 {
		t.Fatalf("interfaces = %d", len(cfg.Interfaces))
	}
	i0 := cfg.Interfaces[0]
	if i0.Name != "GigabitEthernet0/0" || i0.Description != "uplink" {
		t.Errorf("i0 = %+v", i0)
	}
	if !i0.HasAddress || i0.Subnet.String() != "10.0.12.0/24" || i0.Address.String() != "10.0.12.1" {
		t.Errorf("i0 address = %+v", i0)
	}
	if i0.ACLIn != "EDGE_IN" || i0.ACLOut != "EDGE_OUT" {
		t.Errorf("i0 acls = %q %q", i0.ACLIn, i0.ACLOut)
	}
	if i0.OSPFCost != 10 {
		t.Errorf("i0 cost = %d", i0.OSPFCost)
	}
	if !cfg.Interfaces[1].Shutdown {
		t.Error("i1 should be shutdown")
	}
}

func TestParseBGP(t *testing.T) {
	cfg, _ := Parse("t", `router bgp 65001
 bgp router-id 10.0.0.1
 neighbor 10.0.12.2 remote-as 65002
 neighbor 10.0.12.2 description to-peer
 neighbor 10.0.12.2 route-map IMPORT in
 neighbor 10.0.12.2 route-map EXPORT out
 neighbor 10.0.12.2 send-community
 neighbor 10.0.13.3 remote-as 65001
 neighbor 10.0.13.3 route-reflector-client
 neighbor 10.0.13.3 next-hop-self
 network 10.99.0.0 mask 255.255.0.0
 redistribute static route-map STATIC-TO-BGP
 distance bgp 20 200 200
`)
	b := cfg.BGP
	if b == nil || b.ASN != 65001 || b.RouterID.String() != "10.0.0.1" {
		t.Fatalf("bgp = %+v", b)
	}
	n := b.Neighbors["10.0.12.2"]
	if n == nil || n.RemoteAS != 65002 || n.Description != "to-peer" {
		t.Fatalf("neighbor = %+v", n)
	}
	if len(n.ImportPolicies) != 1 || n.ImportPolicies[0] != "IMPORT" {
		t.Errorf("import = %v", n.ImportPolicies)
	}
	if len(n.ExportPolicies) != 1 || n.ExportPolicies[0] != "EXPORT" {
		t.Errorf("export = %v", n.ExportPolicies)
	}
	if !n.SendCommunity {
		t.Error("send-community")
	}
	rr := b.Neighbors["10.0.13.3"]
	if rr == nil || !rr.RouteReflectorClient || !rr.NextHopSelf {
		t.Errorf("rr neighbor = %+v", rr)
	}
	if len(b.Networks) != 1 || b.Networks[0].String() != "10.99.0.0/16" {
		t.Errorf("networks = %v", b.Networks)
	}
	if len(b.Redistribute) != 1 || b.Redistribute[0].From != ir.ProtoStatic || b.Redistribute[0].RouteMap != "STATIC-TO-BGP" {
		t.Errorf("redistribute = %+v", b.Redistribute)
	}
	if cfg.AdminDistances[ir.ProtoBGP] != 20 || cfg.AdminDistances[ir.ProtoIBGP] != 200 {
		t.Errorf("distances = %v", cfg.AdminDistances)
	}
}

func TestParseOSPF(t *testing.T) {
	cfg, _ := Parse("t", `interface GigabitEthernet0/0
 ip address 10.0.12.1 255.255.255.0
 ip ospf cost 5
interface GigabitEthernet0/1
 ip address 192.0.2.1 255.255.255.0
!
router ospf 1
 router-id 10.0.0.1
 network 10.0.0.0 0.255.255.255 area 0
 passive-interface GigabitEthernet0/0
 redistribute connected
 distance 115
`)
	o := cfg.OSPF
	if o == nil || o.ProcessID != 1 || o.RouterID.String() != "10.0.0.1" {
		t.Fatalf("ospf = %+v", o)
	}
	oi := o.Interfaces["GigabitEthernet0/0"]
	if oi == nil {
		t.Fatal("Gi0/0 should be OSPF-enabled via the network statement")
	}
	if oi.Cost != 5 || oi.Area != 0 || !oi.Passive {
		t.Errorf("Gi0/0 ospf = %+v", oi)
	}
	if _, ok := o.Interfaces["GigabitEthernet0/1"]; ok {
		t.Error("192.0.2.1 is outside the network statement; Gi0/1 must not be enabled")
	}
	if cfg.AdminDistances[ir.ProtoOSPF] != 115 {
		t.Errorf("ospf distance = %d", cfg.AdminDistances[ir.ProtoOSPF])
	}
	if len(o.Redistribute) != 1 || o.Redistribute[0].From != ir.ProtoConnected {
		t.Errorf("redistribute = %+v", o.Redistribute)
	}
}

func TestParseExtendedACL(t *testing.T) {
	cfg, _ := Parse("t", `ip access-list extended EDGE
 permit tcp any host 10.0.0.5 eq 80 443
 deny icmp 192.0.2.0 0.0.0.255 any echo
 10 permit udp any range 1000 2000 any eq domain
 2299 deny ipv4 9.140.0.0 0.0.1.255 any
 permit tcp any any established
`)
	acl := cfg.ACLs["EDGE"]
	if acl == nil {
		t.Fatal("missing ACL")
	}
	if len(acl.Lines) != 5 {
		t.Fatalf("lines = %d: unrecognized=%v", len(acl.Lines), cfg.Unrecognized)
	}
	l0 := acl.Lines[0]
	if l0.Action != ir.Permit || l0.Protocol.Number != ir.ProtoNumTCP {
		t.Errorf("l0 = %+v", l0)
	}
	if len(l0.Dst) != 1 || !l0.Dst[0].Matches(netaddr.MustParseAddr("10.0.0.5")) || l0.Dst[0].Matches(netaddr.MustParseAddr("10.0.0.6")) {
		t.Errorf("l0 dst = %+v", l0.Dst)
	}
	if len(l0.DstPorts) != 2 || l0.DstPorts[0].Lo != 80 || l0.DstPorts[1].Lo != 443 {
		t.Errorf("l0 ports = %+v", l0.DstPorts)
	}
	l1 := acl.Lines[1]
	if l1.ICMPType != 8 || l1.Action != ir.Deny {
		t.Errorf("l1 = %+v", l1)
	}
	l2 := acl.Lines[2]
	if l2.Seq != 10 || len(l2.SrcPorts) != 1 || l2.SrcPorts[0].Hi != 2000 || l2.DstPorts[0].Lo != 53 {
		t.Errorf("l2 = %+v", l2)
	}
	l3 := acl.Lines[3]
	if l3.Seq != 2299 || !l3.Protocol.Any {
		t.Errorf("l3 = %+v", l3)
	}
	if !l3.Src[0].Matches(netaddr.MustParseAddr("9.140.0.3")) || l3.Src[0].Matches(netaddr.MustParseAddr("9.141.0.3")) {
		t.Errorf("l3 src = %+v", l3.Src)
	}
	if !acl.Lines[4].Established {
		t.Error("l4 established")
	}
}

func TestParseNumberedACLs(t *testing.T) {
	cfg, _ := Parse("t", `access-list 5 permit 10.0.0.0 0.255.255.255
access-list 101 deny tcp any any eq telnet
`)
	std := cfg.ACLs["5"]
	if std == nil || len(std.Lines) != 1 {
		t.Fatalf("acl 5 = %+v", std)
	}
	if !std.Lines[0].Src[0].Matches(netaddr.MustParseAddr("10.9.9.9")) {
		t.Error("acl 5 src")
	}
	ext := cfg.ACLs["101"]
	if ext == nil || len(ext.Lines) != 1 || ext.Lines[0].DstPorts[0].Lo != 23 {
		t.Fatalf("acl 101 = %+v", ext)
	}
}

func TestParseASPathAndExpandedCommunity(t *testing.T) {
	cfg, _ := Parse("t", `ip as-path access-list 10 permit _65000_
ip community-list expanded CREG permit ^10:1[01]$
ip community-list standard BOTH permit 10:10 10:11
`)
	al := cfg.ASPathLists["10"]
	if al == nil || al.Entries[0].Regex != "_65000_" {
		t.Fatalf("as-path list = %+v", al)
	}
	cl := cfg.CommunityLists["CREG"]
	if cl == nil || cl.Entries[0].Conjuncts[0].Regex != "^10:1[01]$" {
		t.Fatalf("expanded list = %+v", cl)
	}
	both := cfg.CommunityLists["BOTH"]
	if both == nil || len(both.Entries[0].Conjuncts) != 2 {
		t.Fatal("one-line standard entry should form a conjunction")
	}
}

func TestParseRouteMapSets(t *testing.T) {
	cfg, _ := Parse("t", `route-map ADJUST permit 10
 match metric 50
 match tag 7
 set metric 100
 set weight 200
 set tag 9
 set community 65000:1 65000:2 additive
 set comm-list STRIP delete
 set ip next-hop 10.0.0.254
 set as-path prepend 65000 65000
`)
	rm := cfg.RouteMaps["ADJUST"]
	if rm == nil || len(rm.Clauses) != 1 {
		t.Fatalf("ADJUST = %+v; unrecognized = %v", rm, cfg.Unrecognized)
	}
	cl := rm.Clauses[0]
	if len(cl.Matches) != 2 {
		t.Errorf("matches = %+v", cl.Matches)
	}
	if len(cl.Sets) != 7 {
		t.Fatalf("sets = %+v", cl.Sets)
	}
	if sc, ok := cl.Sets[3].(ir.SetCommunities); !ok || !sc.Additive || len(sc.Communities) != 2 {
		t.Errorf("set community = %+v", cl.Sets[3])
	}
	if dc, ok := cl.Sets[4].(ir.DeleteCommunity); !ok || dc.List != "STRIP" {
		t.Errorf("comm-list delete = %+v", cl.Sets[4])
	}
}

func TestUnrecognizedCollected(t *testing.T) {
	cfg, _ := Parse("t", `spanning-tree mode rapid-pvst
interface GigabitEthernet0/0
 mystery knob 42
`)
	if len(cfg.Unrecognized) != 2 {
		t.Errorf("unrecognized = %v", cfg.Unrecognized)
	}
}

func TestCommentsAndBlanksResetMode(t *testing.T) {
	cfg, _ := Parse("t", `route-map X permit 10
 set local-preference 100
!
ip route 10.0.0.0 255.0.0.0 192.0.2.1
`)
	if len(cfg.RouteMaps["X"].Clauses[0].Sets) != 1 {
		t.Error("set should attach to clause")
	}
	if len(cfg.StaticRoutes) != 1 {
		t.Error("static route after comment should parse at top level")
	}
}

func TestRouteMapContinue(t *testing.T) {
	cfg, _ := Parse("t", `route-map C permit 10
 set community 65000:1 additive
 continue 30
route-map C permit 30
 set local-preference 90
`)
	rm := cfg.RouteMaps["C"]
	if rm == nil || len(rm.Clauses) != 2 {
		t.Fatalf("C = %+v", rm)
	}
	if rm.Clauses[0].Action != ir.ClauseFallthrough {
		t.Errorf("continue should make the clause fall through: %v", rm.Clauses[0].Action)
	}
	if rm.Clauses[1].Action != ir.ClausePermit {
		t.Error("clause 30 should permit")
	}
	if len(cfg.Unrecognized) != 0 {
		t.Errorf("unrecognized: %v", cfg.Unrecognized)
	}
}

func TestStandardNamedACLBody(t *testing.T) {
	cfg, _ := Parse("t", `ip access-list standard MGMT
 permit 10.0.0.0 0.255.255.255
 deny 192.168.0.0 0.0.255.255
`)
	acl := cfg.ACLs["MGMT"]
	if acl == nil || len(acl.Lines) != 2 {
		t.Fatalf("MGMT = %+v (unrecognized %v)", acl, cfg.Unrecognized)
	}
	if !acl.Lines[0].Src[0].Matches(netaddr.MustParseAddr("10.9.9.9")) {
		t.Error("standard body src match")
	}
	if acl.Lines[1].Action != ir.Deny {
		t.Error("second line deny")
	}
}
