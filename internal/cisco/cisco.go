// Package cisco parses the Cisco IOS configuration dialect subset that
// Campion's components need (Table 1 of the paper): route-maps,
// prefix-lists, community-lists, as-path access-lists, ACLs, static
// routes, interfaces, and the BGP/OSPF processes. Parsed elements carry
// exact source spans for text localization.
package cisco

import (
	"strconv"
	"strings"

	"repro/internal/ir"
	"repro/internal/netaddr"
)

// Parse parses an IOS configuration. The file name is recorded in spans.
// Parsing is lenient: unrecognized lines are collected on the returned
// Config rather than failing, matching how Batfish degrades.
func Parse(file, text string) (*ir.Config, error) {
	return ParseWithVendor(ir.VendorCisco, file, text)
}

// ParseWithVendor parses an IOS-family dialect (Cisco IOS or Arista EOS,
// whose configuration language is IOS-compatible for the components
// Campion models) tagging the result with the given vendor and its
// default administrative distances.
func ParseWithVendor(vendor ir.Vendor, file, text string) (*ir.Config, error) {
	p := &parser{
		file: file,
		cfg:  ir.NewConfig("", vendor),
	}
	p.cfg.File = file
	p.cfg.AdminDistances = ir.DefaultAdminDistances(vendor)
	lines := strings.Split(text, "\n")
	for i := 0; i < len(lines); i++ {
		p.lineNo = i + 1
		raw := strings.TrimRight(lines[i], " \t\r")
		line := strings.TrimSpace(raw)
		if line == "" || line == "!" || strings.HasPrefix(line, "!") {
			p.mode = modeTop
			continue
		}
		indented := len(raw) > 0 && (raw[0] == ' ' || raw[0] == '\t')
		p.parseLine(line, indented)
	}
	p.finish()
	if p.err != nil {
		return nil, p.err
	}
	return p.cfg, nil
}

type mode int

const (
	modeTop mode = iota
	modeInterface
	modeRouteMapClause
	modeRouterBGP
	modeRouterOSPF
	modeACL
)

type parser struct {
	file   string
	cfg    *ir.Config
	lineNo int
	mode   mode
	err    error

	curIface  *ir.Interface
	curClause *ir.RouteMapClause
	curMap    *ir.RouteMap
	curACL    *ir.ACL

	// ospfNetworks collects `network A.B.C.D WILD area N` statements to
	// associate interfaces with OSPF at finish().
	ospfNetworks []ospfNetwork
	// passive collects passive-interface names.
	passive map[string]bool
}

type ospfNetwork struct {
	wild netaddr.Wildcard
	area int64
}

func (p *parser) span(line string) ir.TextSpan {
	return ir.TextSpan{File: p.file, StartLine: p.lineNo, EndLine: p.lineNo, Lines: []string{line}}
}

func (p *parser) unrecognized(line string) {
	p.cfg.Unrecognized = append(p.cfg.Unrecognized, p.span(line))
}

func (p *parser) parseLine(line string, indented bool) {
	f := strings.Fields(line)
	if len(f) == 0 {
		return
	}
	// Mode-entering and top-level commands are recognized regardless of
	// indentation; indented lines extend the current mode.
	switch f[0] {
	case "hostname":
		if len(f) >= 2 {
			p.cfg.Hostname = f[1]
		}
		p.mode = modeTop
		return
	case "interface":
		if len(f) >= 2 {
			p.curIface = &ir.Interface{Name: f[1], Span: p.span(line)}
			p.cfg.Interfaces = append(p.cfg.Interfaces, p.curIface)
			p.mode = modeInterface
		}
		return
	case "route-map":
		p.enterRouteMapClause(line, f)
		return
	case "router":
		if len(f) >= 3 && f[1] == "bgp" {
			asn, _ := strconv.ParseInt(f[2], 10, 64)
			if p.cfg.BGP == nil {
				p.cfg.BGP = ir.NewBGPConfig(asn)
			}
			p.cfg.BGP.Span = p.span(line)
			p.mode = modeRouterBGP
			return
		}
		if len(f) >= 3 && f[1] == "ospf" {
			pid, _ := strconv.Atoi(f[2])
			if p.cfg.OSPF == nil {
				p.cfg.OSPF = ir.NewOSPFConfig(pid)
			}
			p.cfg.OSPF.Span = p.span(line)
			p.mode = modeRouterOSPF
			return
		}
		p.unrecognized(line)
		return
	case "ip":
		if p.parseIPCommand(line, f) {
			return
		}
	case "access-list":
		p.parseNumberedACL(line, f)
		return
	}

	// Context-sensitive continuation lines.
	switch p.mode {
	case modeInterface:
		p.parseInterfaceLine(line, f)
	case modeRouteMapClause:
		p.parseRouteMapLine(line, f)
	case modeRouterBGP:
		p.parseBGPLine(line, f)
	case modeRouterOSPF:
		p.parseOSPFLine(line, f)
	case modeACL:
		p.parseACLBodyLine(line, f)
	default:
		p.unrecognized(line)
	}
}

// parseIPCommand handles top-level "ip ..." commands. It returns false when
// the line is actually a mode continuation (e.g. "ip address" inside an
// interface, "ip ospf cost" inside an interface).
func (p *parser) parseIPCommand(line string, f []string) bool {
	if len(f) < 2 {
		return false
	}
	switch f[1] {
	case "route":
		p.parseStaticRoute(line, f)
		return true
	case "prefix-list":
		p.parsePrefixList(line, f)
		return true
	case "community-list":
		p.parseCommunityList(line, f)
		return true
	case "as-path":
		p.parseASPathList(line, f)
		return true
	case "access-list":
		// ip access-list extended NAME / standard NAME
		if len(f) >= 4 {
			p.curACL = p.getACL(f[3])
			p.curACL.Span = p.curACL.Span.Merge(p.span(line))
			p.mode = modeACL
			return true
		}
		return true
	case "address", "ospf", "access-group":
		// interface-mode continuations spelled with the "ip" prefix
		if p.mode == modeInterface {
			p.parseInterfaceLine(line, f)
			return true
		}
		return false
	}
	return false
}

func (p *parser) getACL(name string) *ir.ACL {
	if acl, ok := p.cfg.ACLs[name]; ok {
		return acl
	}
	acl := &ir.ACL{Name: name}
	p.cfg.ACLs[name] = acl
	return acl
}

// parseStaticRoute parses: ip route PREFIX MASK (NEXTHOP|INTERFACE) [AD]
// [tag T] [name ...]
func (p *parser) parseStaticRoute(line string, f []string) {
	if len(f) < 5 {
		p.unrecognized(line)
		return
	}
	addr, err1 := netaddr.ParseAddr(f[2])
	mask, err2 := netaddr.ParseAddr(f[3])
	if err1 != nil || err2 != nil {
		p.unrecognized(line)
		return
	}
	pfx, ok := netaddr.PrefixFromMask(addr, mask)
	if !ok {
		p.unrecognized(line)
		return
	}
	sr := &ir.StaticRoute{
		Prefix:        pfx,
		AdminDistance: p.cfg.AdminDistances[ir.ProtoStatic],
		Span:          p.span(line),
	}
	if nh, err := netaddr.ParseAddr(f[4]); err == nil {
		sr.NextHop = nh
		sr.HasNextHop = true
	} else {
		sr.Interface = f[4]
	}
	i := 5
	for i < len(f) {
		switch {
		case f[i] == "tag" && i+1 < len(f):
			t, err := strconv.ParseInt(f[i+1], 10, 64)
			if err == nil {
				sr.Tag, sr.HasTag = t, true
			}
			i += 2
		case f[i] == "name" && i+1 < len(f):
			i += 2
		default:
			if ad, err := strconv.Atoi(f[i]); err == nil && ad >= 1 && ad <= 255 {
				sr.AdminDistance = ad
			}
			i++
		}
	}
	p.cfg.StaticRoutes = append(p.cfg.StaticRoutes, sr)
}

// parsePrefixList parses: ip prefix-list NAME [seq N] permit|deny PFX
// [ge N] [le N]
func (p *parser) parsePrefixList(line string, f []string) {
	if len(f) < 5 {
		p.unrecognized(line)
		return
	}
	name := f[2]
	i := 3
	seq := 0
	if f[i] == "seq" && i+1 < len(f) {
		seq, _ = strconv.Atoi(f[i+1])
		i += 2
	}
	if i >= len(f) {
		p.unrecognized(line)
		return
	}
	var action ir.Action
	switch f[i] {
	case "permit":
		action = ir.Permit
	case "deny":
		action = ir.Deny
	default:
		p.unrecognized(line)
		return
	}
	i++
	if i >= len(f) {
		p.unrecognized(line)
		return
	}
	pfx, err := netaddr.ParsePrefix(f[i])
	if err != nil {
		p.unrecognized(line)
		return
	}
	i++
	lo, hi := pfx.Len, pfx.Len
	for i+1 < len(f) {
		n, err := strconv.Atoi(f[i+1])
		if err != nil || n < 0 || n > 32 {
			break
		}
		switch f[i] {
		case "ge":
			lo = uint8(n)
			if hi < 32 && hi == pfx.Len {
				hi = 32 // ge without le extends to /32
			}
		case "le":
			hi = uint8(n)
			if lo == pfx.Len {
				lo = pfx.Len
			}
		}
		i += 2
	}
	// IOS semantics: ge alone means [ge,32]; le alone means [len,le];
	// both mean [ge,le]; neither means exact.
	pl := p.cfg.PrefixLists[name]
	if pl == nil {
		pl = &ir.PrefixList{Name: name}
		p.cfg.PrefixLists[name] = pl
	}
	entry := ir.PrefixListEntry{
		Seq:    seq,
		Action: action,
		Range:  netaddr.PrefixRange{Prefix: pfx, Lo: lo, Hi: hi},
		Span:   p.span(line),
	}
	pl.Entries = append(pl.Entries, entry)
	pl.Span = pl.Span.Merge(entry.Span)
}

// parseCommunityList parses standard and expanded community lists.
func (p *parser) parseCommunityList(line string, f []string) {
	// ip community-list standard NAME permit C1 C2...
	// ip community-list expanded NAME permit REGEX
	// ip community-list NAME permit ...   (implicitly standard)
	i := 2
	kind := "standard"
	if i < len(f) && (f[i] == "standard" || f[i] == "expanded") {
		kind = f[i]
		i++
	}
	if i+1 >= len(f) {
		p.unrecognized(line)
		return
	}
	name := f[i]
	i++
	var action ir.Action
	switch f[i] {
	case "permit":
		action = ir.Permit
	case "deny":
		action = ir.Deny
	default:
		p.unrecognized(line)
		return
	}
	i++
	cl := p.cfg.CommunityLists[name]
	if cl == nil {
		cl = &ir.CommunityList{Name: name}
		p.cfg.CommunityLists[name] = cl
	}
	entry := ir.CommunityListEntry{Action: action, Span: p.span(line)}
	if kind == "expanded" {
		entry.Conjuncts = []ir.CommunityMatcher{{Regex: strings.Join(f[i:], " ")}}
	} else {
		// All communities on one line form a conjunction (the route must
		// carry each of them).
		for ; i < len(f); i++ {
			entry.Conjuncts = append(entry.Conjuncts, ir.CommunityMatcher{Literal: f[i]})
		}
	}
	if len(entry.Conjuncts) == 0 {
		p.unrecognized(line)
		return
	}
	cl.Entries = append(cl.Entries, entry)
	cl.Span = cl.Span.Merge(entry.Span)
}

// parseASPathList parses: ip as-path access-list NAME|NUM permit|deny REGEX
func (p *parser) parseASPathList(line string, f []string) {
	if len(f) < 6 || f[2] != "access-list" {
		p.unrecognized(line)
		return
	}
	name := f[3]
	var action ir.Action
	switch f[4] {
	case "permit":
		action = ir.Permit
	case "deny":
		action = ir.Deny
	default:
		p.unrecognized(line)
		return
	}
	al := p.cfg.ASPathLists[name]
	if al == nil {
		al = &ir.ASPathList{Name: name}
		p.cfg.ASPathLists[name] = al
	}
	entry := ir.ASPathListEntry{Action: action, Regex: strings.Join(f[5:], " "), Span: p.span(line)}
	al.Entries = append(al.Entries, entry)
	al.Span = al.Span.Merge(entry.Span)
}

func (p *parser) parseInterfaceLine(line string, f []string) {
	if p.curIface == nil {
		p.unrecognized(line)
		return
	}
	ifc := p.curIface
	ifc.Span = ifc.Span.Merge(p.span(line))
	switch {
	case f[0] == "description":
		ifc.Description = strings.TrimSpace(strings.TrimPrefix(line, "description"))
	case f[0] == "shutdown":
		ifc.Shutdown = true
	case f[0] == "ip" && len(f) >= 4 && f[1] == "address":
		addr, err1 := netaddr.ParseAddr(f[2])
		mask, err2 := netaddr.ParseAddr(f[3])
		if err1 != nil || err2 != nil {
			p.unrecognized(line)
			return
		}
		if pfx, ok := netaddr.PrefixFromMask(addr, mask); ok {
			ifc.Address = addr
			ifc.Subnet = pfx
			ifc.HasAddress = true
		}
	case f[0] == "ip" && len(f) >= 4 && f[1] == "access-group":
		if f[3] == "in" {
			ifc.ACLIn = f[2]
		} else {
			ifc.ACLOut = f[2]
		}
	case f[0] == "ip" && len(f) >= 4 && f[1] == "ospf" && f[2] == "cost":
		ifc.OSPFCost, _ = strconv.Atoi(f[3])
	case f[0] == "ip" && len(f) >= 5 && f[1] == "ospf" && f[3] == "area":
		// ip ospf PID area N
		ifc.OSPFEnabled = true
		ifc.OSPFArea, _ = strconv.ParseInt(f[4], 10, 64)
	default:
		p.unrecognized(line)
	}
}

func (p *parser) enterRouteMapClause(line string, f []string) {
	// route-map NAME permit|deny SEQ
	if len(f) < 3 {
		p.unrecognized(line)
		return
	}
	name := f[1]
	action := ir.ClausePermit
	if f[2] == "deny" {
		action = ir.ClauseDeny
	}
	seq := 10
	if len(f) >= 4 {
		if n, err := strconv.Atoi(f[3]); err == nil {
			seq = n
		}
	}
	rm := p.cfg.RouteMaps[name]
	if rm == nil {
		rm = &ir.RouteMap{Name: name, DefaultAction: ir.Deny}
		p.cfg.RouteMaps[name] = rm
	}
	p.curMap = rm
	p.curClause = &ir.RouteMapClause{Seq: seq, Action: action, Span: p.span(line)}
	rm.Clauses = append(rm.Clauses, p.curClause)
	rm.Span = rm.Span.Merge(p.curClause.Span)
	p.mode = modeRouteMapClause
}

func (p *parser) parseRouteMapLine(line string, f []string) {
	if p.curClause == nil {
		p.unrecognized(line)
		return
	}
	cl := p.curClause
	cl.Span = cl.Span.Merge(p.span(line))
	p.curMap.Span = p.curMap.Span.Merge(p.span(line))
	switch f[0] {
	case "match":
		p.parseRouteMapMatch(line, f, cl)
	case "set":
		p.parseRouteMapSet(line, f, cl)
	case "continue":
		// "continue [SEQ]": processing proceeds with the next clause
		// after applying this clause's sets. Jumping to a specific later
		// sequence is approximated by plain fall-through (clauses between
		// this one and the target still evaluate their matches); exact
		// targeted continues are rare and this keeps the model loop-free.
		cl.Action = ir.ClauseFallthrough
	case "description":
		// ignore
	default:
		p.unrecognized(line)
	}
}

func (p *parser) parseRouteMapMatch(line string, f []string, cl *ir.RouteMapClause) {
	if len(f) < 3 {
		p.unrecognized(line)
		return
	}
	switch f[1] {
	case "ip":
		switch {
		case len(f) >= 5 && f[2] == "address" && f[3] == "prefix-list":
			cl.Matches = append(cl.Matches, ir.MatchPrefixList{Lists: f[4:]})
		case len(f) >= 4 && f[2] == "address":
			// Legacy: match ip address PREFIX-LIST-NAME-or-ACL. Campion
			// treats the name as a prefix list reference.
			cl.Matches = append(cl.Matches, ir.MatchPrefixList{Lists: f[3:]})
		case len(f) >= 5 && f[2] == "next-hop" && f[3] == "prefix-list":
			cl.Matches = append(cl.Matches, ir.MatchNextHop{Lists: f[4:]})
		default:
			p.unrecognized(line)
		}
	case "community":
		cl.Matches = append(cl.Matches, ir.MatchCommunity{Lists: f[2:]})
	case "as-path":
		cl.Matches = append(cl.Matches, ir.MatchASPath{Lists: f[2:]})
	case "metric":
		v, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			p.unrecognized(line)
			return
		}
		cl.Matches = append(cl.Matches, ir.MatchMED{Value: v})
	case "tag":
		v, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			p.unrecognized(line)
			return
		}
		cl.Matches = append(cl.Matches, ir.MatchTag{Value: v})
	case "source-protocol":
		var protos []ir.Protocol
		for _, s := range f[2:] {
			switch s {
			case "connected":
				protos = append(protos, ir.ProtoConnected)
			case "static":
				protos = append(protos, ir.ProtoStatic)
			case "ospf":
				protos = append(protos, ir.ProtoOSPF)
			case "bgp":
				protos = append(protos, ir.ProtoBGP)
			}
		}
		cl.Matches = append(cl.Matches, ir.MatchProtocol{Protocols: protos})
	default:
		p.unrecognized(line)
	}
}

func (p *parser) parseRouteMapSet(line string, f []string, cl *ir.RouteMapClause) {
	if len(f) < 3 {
		p.unrecognized(line)
		return
	}
	switch f[1] {
	case "local-preference":
		v, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			p.unrecognized(line)
			return
		}
		cl.Sets = append(cl.Sets, ir.SetLocalPref{Value: v})
	case "metric":
		v, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			p.unrecognized(line)
			return
		}
		cl.Sets = append(cl.Sets, ir.SetMED{Value: v})
	case "weight":
		v, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			p.unrecognized(line)
			return
		}
		cl.Sets = append(cl.Sets, ir.SetWeight{Value: v})
	case "tag":
		v, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			p.unrecognized(line)
			return
		}
		cl.Sets = append(cl.Sets, ir.SetTag{Value: v})
	case "community":
		comms := f[2:]
		additive := false
		if len(comms) > 0 && comms[len(comms)-1] == "additive" {
			additive = true
			comms = comms[:len(comms)-1]
		}
		cl.Sets = append(cl.Sets, ir.SetCommunities{Communities: comms, Additive: additive})
	case "comm-list":
		if len(f) >= 4 && f[3] == "delete" {
			cl.Sets = append(cl.Sets, ir.DeleteCommunity{List: f[2]})
		} else {
			p.unrecognized(line)
		}
	case "ip":
		if len(f) >= 4 && f[2] == "next-hop" {
			if a, err := netaddr.ParseAddr(f[3]); err == nil {
				cl.Sets = append(cl.Sets, ir.SetNextHop{Addr: a})
				return
			}
		}
		p.unrecognized(line)
	case "as-path":
		if len(f) >= 4 && f[2] == "prepend" {
			var asns []int64
			for _, s := range f[3:] {
				if n, err := strconv.ParseInt(s, 10, 64); err == nil {
					asns = append(asns, n)
				}
			}
			cl.Sets = append(cl.Sets, ir.SetASPathPrepend{ASNs: asns})
			return
		}
		p.unrecognized(line)
	default:
		p.unrecognized(line)
	}
}

func (p *parser) parseBGPLine(line string, f []string) {
	bgp := p.cfg.BGP
	if bgp == nil {
		p.unrecognized(line)
		return
	}
	bgp.Span = bgp.Span.Merge(p.span(line))
	switch f[0] {
	case "bgp":
		if len(f) >= 3 && f[1] == "router-id" {
			if a, err := netaddr.ParseAddr(f[2]); err == nil {
				bgp.RouterID = a
			}
		}
	case "neighbor":
		p.parseBGPNeighbor(line, f, bgp)
	case "network":
		p.parseBGPNetwork(line, f, bgp)
	case "redistribute":
		p.parseRedistribute(line, f, &bgp.Redistribute)
	case "distance":
		// distance bgp EXTERNAL INTERNAL LOCAL
		if len(f) >= 4 && f[1] == "bgp" {
			if d, err := strconv.Atoi(f[2]); err == nil {
				p.cfg.AdminDistances[ir.ProtoBGP] = d
				p.cfg.ExplicitDistances[ir.ProtoBGP] = true
			}
			if len(f) >= 4 {
				if d, err := strconv.Atoi(f[3]); err == nil {
					p.cfg.AdminDistances[ir.ProtoIBGP] = d
					p.cfg.ExplicitDistances[ir.ProtoIBGP] = true
				}
			}
		}
	case "address-family", "exit-address-family":
		// IPv4 unicast assumed; ignore the wrapper.
	default:
		p.unrecognized(line)
	}
}

func (p *parser) parseBGPNeighbor(line string, f []string, bgp *ir.BGPConfig) {
	if len(f) < 3 {
		p.unrecognized(line)
		return
	}
	addr, err := netaddr.ParseAddr(f[1])
	if err != nil {
		p.unrecognized(line)
		return
	}
	key := addr.String()
	n := bgp.Neighbors[key]
	if n == nil {
		n = &ir.BGPNeighbor{Addr: addr}
		bgp.Neighbors[key] = n
	}
	n.Span = n.Span.Merge(p.span(line))
	switch f[2] {
	case "remote-as":
		if len(f) >= 4 {
			n.RemoteAS, _ = strconv.ParseInt(f[3], 10, 64)
		}
	case "description":
		n.Description = strings.Join(f[3:], " ")
	case "route-map":
		if len(f) >= 5 {
			if f[4] == "in" {
				n.ImportPolicies = append(n.ImportPolicies, f[3])
			} else {
				n.ExportPolicies = append(n.ExportPolicies, f[3])
			}
		}
	case "route-reflector-client":
		n.RouteReflectorClient = true
	case "send-community":
		n.SendCommunity = true
	case "next-hop-self":
		n.NextHopSelf = true
	case "ebgp-multihop":
		n.EBGPMultihop = true
	case "shutdown":
		n.Shutdown = true
	case "weight":
		if len(f) >= 4 {
			n.Weight, _ = strconv.ParseInt(f[3], 10, 64)
		}
	case "local-as":
		if len(f) >= 4 {
			n.LocalAS, _ = strconv.ParseInt(f[3], 10, 64)
		}
	default:
		p.unrecognized(line)
	}
}

func (p *parser) parseBGPNetwork(line string, f []string, bgp *ir.BGPConfig) {
	if len(f) < 2 {
		p.unrecognized(line)
		return
	}
	if len(f) >= 4 && f[2] == "mask" {
		addr, err1 := netaddr.ParseAddr(f[1])
		mask, err2 := netaddr.ParseAddr(f[3])
		if err1 == nil && err2 == nil {
			if pfx, ok := netaddr.PrefixFromMask(addr, mask); ok {
				bgp.Networks = append(bgp.Networks, pfx)
				return
			}
		}
		p.unrecognized(line)
		return
	}
	if pfx, err := netaddr.ParsePrefix(f[1]); err == nil {
		bgp.Networks = append(bgp.Networks, pfx)
		return
	}
	p.unrecognized(line)
}

func (p *parser) parseRedistribute(line string, f []string, out *[]ir.Redistribution) {
	if len(f) < 2 {
		p.unrecognized(line)
		return
	}
	var proto ir.Protocol
	switch f[1] {
	case "connected":
		proto = ir.ProtoConnected
	case "static":
		proto = ir.ProtoStatic
	case "ospf":
		proto = ir.ProtoOSPF
	case "bgp":
		proto = ir.ProtoBGP
	default:
		p.unrecognized(line)
		return
	}
	r := ir.Redistribution{From: proto, Span: p.span(line)}
	for i := 2; i+1 < len(f); i++ {
		switch f[i] {
		case "route-map":
			r.RouteMap = f[i+1]
		case "metric":
			r.Metric, _ = strconv.ParseInt(f[i+1], 10, 64)
		}
	}
	*out = append(*out, r)
}

func (p *parser) parseOSPFLine(line string, f []string) {
	ospf := p.cfg.OSPF
	if ospf == nil {
		p.unrecognized(line)
		return
	}
	ospf.Span = ospf.Span.Merge(p.span(line))
	switch f[0] {
	case "router-id":
		if len(f) >= 2 {
			if a, err := netaddr.ParseAddr(f[1]); err == nil {
				ospf.RouterID = a
			}
		}
	case "network":
		// network A.B.C.D WILDCARD area N
		if len(f) >= 5 && f[3] == "area" {
			addr, err1 := netaddr.ParseAddr(f[1])
			wild, err2 := netaddr.ParseAddr(f[2])
			area, err3 := strconv.ParseInt(f[4], 10, 64)
			if err1 == nil && err2 == nil && err3 == nil {
				p.ospfNetworks = append(p.ospfNetworks, ospfNetwork{
					wild: netaddr.Wildcard{Addr: addr, Mask: wild},
					area: area,
				})
				return
			}
		}
		p.unrecognized(line)
	case "passive-interface":
		if len(f) >= 2 {
			if p.passive == nil {
				p.passive = map[string]bool{}
			}
			p.passive[f[1]] = true
		}
	case "redistribute":
		p.parseRedistribute(line, f, &ospf.Redistribute)
	case "distance":
		if len(f) >= 2 {
			if d, err := strconv.Atoi(f[1]); err == nil {
				p.cfg.AdminDistances[ir.ProtoOSPF] = d
				p.cfg.ExplicitDistances[ir.ProtoOSPF] = true
			}
		}
	default:
		p.unrecognized(line)
	}
}

// finish associates interfaces with OSPF based on network statements and
// fills the OSPF interface table.
func (p *parser) finish() {
	if p.cfg.OSPF == nil {
		return
	}
	for _, ifc := range p.cfg.Interfaces {
		enabled := ifc.OSPFEnabled
		area := ifc.OSPFArea
		if !enabled && ifc.HasAddress {
			for _, n := range p.ospfNetworks {
				if n.wild.Matches(ifc.Address) {
					enabled = true
					area = n.area
					break
				}
			}
		}
		if !enabled {
			continue
		}
		cost := ifc.OSPFCost
		if cost == 0 {
			cost = 1 // IOS default for >=100Mb interfaces
		}
		p.cfg.OSPF.Interfaces[ifc.Name] = &ir.OSPFInterface{
			Name:    ifc.Name,
			Cost:    cost,
			Area:    area,
			Passive: p.passive[ifc.Name],
			Subnet:  ifc.Subnet,
			Span:    ifc.Span,
		}
	}
}
