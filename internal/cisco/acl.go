package cisco

import (
	"strconv"

	"repro/internal/ir"
	"repro/internal/netaddr"
)

func portByName(s string) (uint16, bool) {
	return ir.PortByName(s)
}

// parseNumberedACL handles top-level "access-list N ..." lines: numbers
// 1-99 are standard (source-only), 100-199 extended.
func (p *parser) parseNumberedACL(line string, f []string) {
	if len(f) < 3 {
		p.unrecognized(line)
		return
	}
	num, err := strconv.Atoi(f[1])
	if err != nil {
		p.unrecognized(line)
		return
	}
	acl := p.getACL(f[1])
	acl.Span = acl.Span.Merge(p.span(line))
	var rule *ir.ACLLine
	if num < 100 {
		rule = p.parseStandardACLRule(f[2:])
	} else {
		rule = p.parseExtendedACLRule(f[2:])
	}
	if rule == nil {
		p.unrecognized(line)
		return
	}
	rule.Span = p.span(line)
	acl.Lines = append(acl.Lines, rule)
}

// parseACLBodyLine handles lines inside "ip access-list extended NAME":
// "[seq] permit|deny PROTO SRC [ports] DST [ports] [flags]".
func (p *parser) parseACLBodyLine(line string, f []string) {
	if p.curACL == nil {
		p.unrecognized(line)
		return
	}
	seq := 0
	if n, err := strconv.Atoi(f[0]); err == nil {
		seq = n
		f = f[1:]
	}
	if len(f) == 0 {
		p.unrecognized(line)
		return
	}
	if f[0] == "remark" {
		return
	}
	rule := p.parseExtendedACLRule(f)
	if rule == nil {
		// Standard named ACLs share the body syntax "permit SRC [WILD]".
		rule = p.parseStandardACLRule(f)
	}
	if rule == nil {
		p.unrecognized(line)
		return
	}
	rule.Seq = seq
	rule.Span = p.span(line)
	p.curACL.Lines = append(p.curACL.Lines, rule)
	p.curACL.Span = p.curACL.Span.Merge(rule.Span)
}

// parseStandardACLRule parses "permit|deny SRC [WILD]" (standard lists
// match on source address only).
func (p *parser) parseStandardACLRule(f []string) *ir.ACLLine {
	if len(f) < 2 {
		return nil
	}
	rule := ir.NewACLLine(ir.Deny)
	switch f[0] {
	case "permit":
		rule.Action = ir.Permit
	case "deny":
		rule.Action = ir.Deny
	default:
		return nil
	}
	src, rest, ok := parseAddrSpec(f[1:])
	if !ok || len(rest) > 1 { // allow a trailing "log"
		return nil
	}
	rule.Src = src
	return rule
}

// parseExtendedACLRule parses "permit|deny PROTO SRC [ports] DST [ports]
// [established] [icmp-type]".
func (p *parser) parseExtendedACLRule(f []string) *ir.ACLLine {
	if len(f) < 2 {
		return nil
	}
	rule := ir.NewACLLine(ir.Deny)
	switch f[0] {
	case "permit":
		rule.Action = ir.Permit
	case "deny":
		rule.Action = ir.Deny
	default:
		return nil
	}
	proto, ok := ir.ProtocolByName(f[1])
	if !ok {
		if n, err := strconv.Atoi(f[1]); err == nil && n >= 0 && n <= 255 {
			proto = ir.ProtoNumber(uint8(n))
		} else {
			return nil
		}
	}
	rule.Protocol = proto
	rest := f[2:]

	src, rest, ok := parseAddrSpec(rest)
	if !ok {
		return nil
	}
	rule.Src = src
	ports, rest := parsePortSpec(rest)
	rule.SrcPorts = ports

	dst, rest, ok := parseAddrSpec(rest)
	if !ok {
		return nil
	}
	rule.Dst = dst
	ports, rest = parsePortSpec(rest)
	rule.DstPorts = ports

	for len(rest) > 0 {
		switch rest[0] {
		case "established":
			rule.Established = true
			rest = rest[1:]
		case "echo":
			rule.ICMPType = 8
			rest = rest[1:]
		case "echo-reply":
			rule.ICMPType = 0
			rest = rest[1:]
		case "log", "log-input":
			rest = rest[1:]
		default:
			if rule.Protocol.Matches(ir.ProtoNumICMP) && !rule.Protocol.Any {
				if n, err := strconv.Atoi(rest[0]); err == nil && n >= 0 && n <= 255 {
					rule.ICMPType = n
					rest = rest[1:]
					continue
				}
			}
			return nil
		}
	}
	return rule
}

// parseAddrSpec consumes "any" | "host A" | "A WILD" | "A.B.C.D/len" from
// the front of f.
func parseAddrSpec(f []string) ([]netaddr.Wildcard, []string, bool) {
	if len(f) == 0 {
		return nil, nil, false
	}
	switch f[0] {
	case "any", "any4":
		return nil, f[1:], true // nil means any
	case "host":
		if len(f) < 2 {
			return nil, nil, false
		}
		a, err := netaddr.ParseAddr(f[1])
		if err != nil {
			return nil, nil, false
		}
		return []netaddr.Wildcard{{Addr: a, Mask: 0}}, f[2:], true
	}
	// Prefix notation (IOS XR style).
	if pfx, err := netaddr.ParsePrefix(f[0]); err == nil && indexByte(f[0], '/') {
		return []netaddr.Wildcard{netaddr.WildcardFromPrefix(pfx)}, f[1:], true
	}
	a, err := netaddr.ParseAddr(f[0])
	if err != nil {
		return nil, nil, false
	}
	if len(f) >= 2 {
		if w, err := netaddr.ParseAddr(f[1]); err == nil {
			return []netaddr.Wildcard{{Addr: a, Mask: w}}, f[2:], true
		}
	}
	// Bare address: treat as host.
	return []netaddr.Wildcard{{Addr: a, Mask: 0}}, f[1:], true
}

func indexByte(s string, c byte) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return true
		}
	}
	return false
}

// parsePortSpec consumes an optional "eq N" | "range A B" | "gt N" |
// "lt N" from the front of f.
func parsePortSpec(f []string) ([]netaddr.PortRange, []string) {
	if len(f) == 0 {
		return nil, f
	}
	switch f[0] {
	case "eq":
		if len(f) >= 2 {
			if port, ok := portByName(f[1]); ok {
				// eq accepts multiple ports.
				ranges := []netaddr.PortRange{netaddr.SinglePort(port)}
				rest := f[2:]
				for len(rest) > 0 {
					p, ok := portByName(rest[0])
					if !ok {
						break
					}
					ranges = append(ranges, netaddr.SinglePort(p))
					rest = rest[1:]
				}
				return ranges, rest
			}
		}
	case "range":
		if len(f) >= 3 {
			lo, ok1 := portByName(f[1])
			hi, ok2 := portByName(f[2])
			if ok1 && ok2 && lo <= hi {
				return []netaddr.PortRange{{Lo: lo, Hi: hi}}, f[3:]
			}
		}
	case "gt":
		if len(f) >= 2 {
			if port, ok := portByName(f[1]); ok && port < 65535 {
				return []netaddr.PortRange{{Lo: port + 1, Hi: 65535}}, f[2:]
			}
		}
	case "lt":
		if len(f) >= 2 {
			if port, ok := portByName(f[1]); ok && port > 0 {
				return []netaddr.PortRange{{Lo: 0, Hi: port - 1}}, f[2:]
			}
		}
	}
	return nil, f
}
