package cisco

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics mutates a realistic configuration — truncations,
// duplicated lines, corrupted tokens, random byte flips — and checks that
// the parser always returns (leniently) instead of panicking, and that
// whatever it cannot interpret lands in Unrecognized rather than being
// silently dropped.
func TestParseNeverPanics(t *testing.T) {
	base := figure1a + `
interface GigabitEthernet0/0
 ip address 10.0.12.1 255.255.255.0
router bgp 65001
 neighbor 10.0.12.2 remote-as 65002
ip route 10.1.1.2 255.255.255.254 10.2.2.2
access-list 101 permit tcp any any eq 80
`
	f := func(seed uint32) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*1664525 + 1013904223
			if n <= 0 {
				return 0
			}
			return int(rng>>16) % n
		}
		lines := strings.Split(base, "\n")
		// Apply up to 5 random mutations.
		for k := 0; k < 1+next(5); k++ {
			if len(lines) == 0 {
				break
			}
			i := next(len(lines))
			switch next(5) {
			case 0: // truncate the line
				if len(lines[i]) > 0 {
					lines[i] = lines[i][:next(len(lines[i]))]
				}
			case 1: // duplicate
				lines = append(lines[:i], append([]string{lines[i]}, lines[i:]...)...)
			case 2: // delete
				lines = append(lines[:i], lines[i+1:]...)
			case 3: // corrupt a token
				fields := strings.Fields(lines[i])
				if len(fields) > 0 {
					fields[next(len(fields))] = "###"
					lines[i] = " " + strings.Join(fields, " ")
				}
			case 4: // inject garbage
				lines = append(lines[:i], append([]string{"%$ garbage \x01 line"}, lines[i:]...)...)
			}
		}
		cfg, err := Parse("mut.cfg", strings.Join(lines, "\n"))
		return err == nil && cfg != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseEmptyAndWeirdInputs(t *testing.T) {
	for _, text := range []string{
		"",
		"\n\n\n",
		"!",
		"ip",
		"ip route",
		"route-map",
		"router",
		"neighbor 1.2.3.4 remote-as 1", // mode line with no mode
		strings.Repeat("x", 100000),
		"ip prefix-list X permit 999.1.1.1/8",
		"access-list 101 permit tcp",
		"ip route 1.2.3.4 255.0.255.0 5.6.7.8", // non-contiguous mask
	} {
		cfg, err := Parse("t", text)
		if err != nil || cfg == nil {
			t.Errorf("Parse(%.30q) errored: %v", text, err)
		}
	}
}
