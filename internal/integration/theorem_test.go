package integration

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/cisco"
	"repro/internal/ir"
	"repro/internal/juniper"
	"repro/internal/netaddr"
	"repro/internal/policygen"
	"repro/internal/semdiff"
	"repro/internal/srp"
	"repro/internal/symbolic"
)

// TestTheorem33RandomPolicies validates the soundness theorem across
// randomly generated policy pairs: whenever SemanticDiff finds no
// difference between the Cisco and Juniper renderings, the two networks
// built from them compute identical routing solutions for advertisements
// sampled from the policies' own prefix vocabulary. When differences
// exist, some sampled advertisement must witness a divergence inside the
// localized input sets.
func TestTheorem33RandomPolicies(t *testing.T) {
	for seed := uint64(100); seed < 112; seed++ {
		nDiffs := int(seed % 3) // 0, 1, or 2 injected differences
		pair := policygen.Generate(policygen.Params{Seed: seed, Clauses: 8, Differences: nDiffs})
		c, err := cisco.Parse("c.cfg", pair.CiscoText)
		if err != nil {
			t.Fatal(err)
		}
		j, err := juniper.Parse("j.cfg", pair.JuniperText)
		if err != nil {
			t.Fatal(err)
		}
		rm1, rm2 := c.RouteMaps[pair.PolicyName], j.RouteMaps[pair.PolicyName]
		enc := symbolic.NewRouteEncoding(c, j)
		diffs, err := semdiff.DiffRouteMaps(enc, c, rm1, j, rm2)
		if err != nil {
			t.Fatal(err)
		}

		// Sample advertisements from both policies' prefix vocabulary.
		var adverts []*ir.Route
		seen := map[netaddr.Prefix]bool{}
		addPrefix := func(p netaddr.Prefix) {
			if seen[p] {
				return
			}
			seen[p] = true
			r := ir.NewRoute(p)
			r.ASPath = []int64{65002}
			adverts = append(adverts, r)
		}
		for _, cfg := range []*ir.Config{c, j} {
			for _, pl := range cfg.PrefixLists {
				for _, e := range pl.Entries {
					addPrefix(netaddr.NewPrefix(e.Range.Prefix.Addr, e.Range.Lo))
					addPrefix(netaddr.NewPrefix(e.Range.Prefix.Addr, e.Range.Hi))
				}
			}
			for _, rm := range cfg.RouteMaps {
				for _, cl := range rm.Clauses {
					for _, m := range cl.Matches {
						if mr, ok := m.(ir.MatchPrefixRanges); ok {
							for _, rg := range mr.Ranges {
								addPrefix(netaddr.NewPrefix(rg.Prefix.Addr, rg.Lo))
								addPrefix(netaddr.NewPrefix(rg.Prefix.Addr, rg.Hi))
							}
						}
					}
				}
			}
		}
		addPrefix(netaddr.MustParsePrefix("203.0.113.0/24"))

		solve := func(mid *ir.Config) *srp.Solution {
			net := &srp.BGPNetwork{
				Nodes: 3,
				Sessions: []srp.BGPSession{
					{Edge: srp.Edge{From: 0, To: 1}, FromASN: 65002, ToASN: 65001,
						ImportConfig: mid, Import: []string{pair.PolicyName}},
					{Edge: srp.Edge{From: 1, To: 2}, FromASN: 65001, ToASN: 65001},
				},
			}
			sol, ok := net.NewBGPProblem(0, adverts).Solve()
			if !ok {
				t.Fatal("no convergence")
			}
			return sol
		}
		cSol, jSol := solve(c), solve(j)

		if len(diffs) == 0 {
			if !cSol.Equal(jSol) {
				t.Errorf("seed %d: Campion-equivalent pair routed differently (Theorem 3.3 violated)", seed)
			}
			continue
		}
		// With differences: any advertisement where the solutions diverge
		// must lie inside some localized difference's input set.
		for _, r := range adverts {
			c2 := cSol.Selected[2][r.Prefix]
			j2 := jSol.Selected[2][r.Prefix]
			diverge := (c2 == nil) != (j2 == nil) ||
				(c2 != nil && j2 != nil && !c2.Equal(j2))
			if !diverge {
				continue
			}
			cube := enc.RouteCube(r)
			var localized bool
			for _, d := range diffs {
				if enc.F.And(d.Inputs, cube) != bdd.False {
					localized = true
					break
				}
			}
			if !localized {
				t.Errorf("seed %d: divergence on %v not covered by any localized difference", seed, r.Prefix)
			}
		}
	}
}

// TestTheorem33RandomTopologies extends the validation to random
// topologies: a ring of ASes with random chords, where every eBGP edge
// applies the same generated import policy — once as the Cisco rendering,
// once as the Juniper rendering. Locally equivalent by construction, the
// two networks must compute identical solutions on every topology.
func TestTheorem33RandomTopologies(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		pair := policygen.Generate(policygen.Params{Seed: 500 + seed, Clauses: 6, Differences: 0})
		c, err := cisco.Parse("c.cfg", pair.CiscoText)
		if err != nil {
			t.Fatal(err)
		}
		j, err := juniper.Parse("j.cfg", pair.JuniperText)
		if err != nil {
			t.Fatal(err)
		}

		rng := seed*2654435761 + 1
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int((rng >> 33) % uint64(n))
		}
		nodes := 4 + next(4)
		type edgeSpec struct {
			from, to   int
			withPolicy bool
		}
		var edges []edgeSpec
		for i := 0; i < nodes; i++ {
			edges = append(edges,
				edgeSpec{i, (i + 1) % nodes, next(2) == 0},
				edgeSpec{(i + 1) % nodes, i, next(2) == 0})
		}
		for k := 0; k < next(3); k++ {
			a, b := next(nodes), next(nodes)
			if a != b {
				edges = append(edges, edgeSpec{a, b, next(2) == 0})
			}
		}
		build := func(cfg *ir.Config) *srp.BGPNetwork {
			net := &srp.BGPNetwork{Nodes: nodes}
			for _, e := range edges {
				s := srp.BGPSession{
					Edge:    srp.Edge{From: e.from, To: e.to},
					FromASN: int64(65000 + e.from),
					ToASN:   int64(65000 + e.to),
				}
				if e.withPolicy {
					s.ImportConfig = cfg
					s.Import = []string{pair.PolicyName}
				}
				net.Sessions = append(net.Sessions, s)
			}
			return net
		}
		var adverts []*ir.Route
		for _, pl := range c.PrefixLists {
			for _, e := range pl.Entries {
				r := ir.NewRoute(netaddr.NewPrefix(e.Range.Prefix.Addr, e.Range.Lo))
				r.ASPath = []int64{65000}
				adverts = append(adverts, r)
				if len(adverts) >= 6 {
					break
				}
			}
			if len(adverts) >= 6 {
				break
			}
		}
		cSol, ok1 := build(c).NewBGPProblem(0, adverts).Solve()
		jSol, ok2 := build(j).NewBGPProblem(0, adverts).Solve()
		if !ok1 || !ok2 {
			t.Fatalf("seed %d: no convergence", seed)
		}
		if !cSol.Equal(jSol) {
			t.Errorf("seed %d (%d nodes, %d edges): locally equivalent networks diverged",
				seed, nodes, len(edges))
		}
	}
}
