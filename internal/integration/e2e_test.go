// Package integration ties the whole reproduction together: vendor
// configurations are parsed, compared by Campion, propagated through the
// SRP control-plane simulator, installed into FIBs, and finally probed
// with concrete packets — verifying the full chain the paper's Theorem
// 3.3 promises: Campion's modular verdict on a router pair predicts
// whole-network forwarding behavior.
package integration

import (
	"testing"

	"repro/internal/cisco"
	"repro/internal/core"
	"repro/internal/fib"
	"repro/internal/ir"
	"repro/internal/juniper"
	"repro/internal/netaddr"
	"repro/internal/srp"
)

const ciscoPolicy = `hostname policy_router
ip prefix-list NETS permit 10.9.0.0/16 le 32
ip prefix-list NETS permit 10.100.0.0/16 le 32
ip community-list standard COMM permit 10:10
ip community-list standard COMM permit 10:11
route-map POL deny 10
 match ip address NETS
route-map POL deny 20
 match community COMM
route-map POL permit 30
 set local-preference 30
`

const juniperBuggy = `system { host-name backup_router; }
policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    community COMM members [ 10:10 10:11 ];
    policy-statement POL {
        term rule1 { from prefix-list NETS; then reject; }
        term rule2 { from community COMM; then reject; }
        term rule3 { then { local-preference 30; accept; } }
    }
}
`

const juniperFixed = `system { host-name backup_router; }
policy-options {
    community C10 members 10:10;
    community C11 members 10:11;
    policy-statement POL {
        term rule1 {
            from {
                route-filter 10.9.0.0/16 orlonger;
                route-filter 10.100.0.0/16 orlonger;
            }
            then reject;
        }
        term rule2 { from community [ C10 C11 ]; then reject; }
        term rule3 { then { local-preference 30; accept; } }
    }
}
`

// observerRoutes runs the 3-node network with the given middle router and
// returns the routes the observer node selects.
func observerRoutes(t *testing.T, mid *ir.Config, adverts []*ir.Route) []*ir.Route {
	t.Helper()
	net := &srp.BGPNetwork{
		Nodes: 3,
		Sessions: []srp.BGPSession{
			{Edge: srp.Edge{From: 0, To: 1}, FromASN: 65002, ToASN: 65001,
				ImportConfig: mid, Import: []string{"POL"}},
			{Edge: srp.Edge{From: 1, To: 2}, FromASN: 65001, ToASN: 65001},
		},
	}
	sol, ok := net.NewBGPProblem(0, adverts).Solve()
	if !ok {
		t.Fatal("no convergence")
	}
	var out []*ir.Route
	for _, r := range sol.Selected[2] {
		out = append(out, r)
	}
	return out
}

func TestEndToEndForwarding(t *testing.T) {
	c, err := cisco.Parse("c.cfg", ciscoPolicy)
	if err != nil {
		t.Fatal(err)
	}
	buggy, err := juniper.Parse("b.cfg", juniperBuggy)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := juniper.Parse("f.cfg", juniperFixed)
	if err != nil {
		t.Fatal(err)
	}

	// Step 1: Campion verdicts.
	repFixed, err := core.Diff(c, fixed, core.Options{Components: []core.Component{core.ComponentRouteMaps}})
	if err != nil {
		t.Fatal(err)
	}
	repBuggy, err := core.Diff(c, buggy, core.Options{Components: []core.Component{core.ComponentRouteMaps}})
	if err != nil {
		t.Fatal(err)
	}
	if len(repFixed.RouteMapDiffs) != 0 {
		t.Fatalf("fixed translation should be clean, got %d diffs", len(repFixed.RouteMapDiffs))
	}
	if len(repBuggy.RouteMapDiffs) != 2 {
		t.Fatalf("buggy translation should have 2 diffs, got %d", len(repBuggy.RouteMapDiffs))
	}

	// Step 2: control plane.
	mk := func(pfx string, comms ...string) *ir.Route {
		r := ir.NewRoute(netaddr.MustParsePrefix(pfx))
		r.NextHop = netaddr.MustParseAddr("198.18.0.1")
		r.ASPath = []int64{65002}
		for _, cm := range comms {
			r.Communities[cm] = true
		}
		return r
	}
	adverts := []*ir.Route{
		mk("10.9.1.0/24"),             // Difference 1 witness
		mk("192.0.2.0/24"),            // clean
		mk("203.0.113.0/24", "10:10"), // Difference 2 witness
		mk("10.100.0.0/16"),           // rejected by both
		mk("198.51.100.0/24", "other:1"),
	}
	// The observer is the same "hardware" in all three networks; give it
	// an identical local configuration.
	observerCfg, _ := cisco.Parse("obs.cfg", `hostname observer
interface Gi0/0
 ip address 10.0.3.10 255.255.255.0
`)

	// Step 3: FIBs.
	fibVia := func(mid *ir.Config) *fib.Table {
		return fib.Build(observerCfg, observerRoutes(t, mid, adverts))
	}
	fibCisco := fibVia(c)
	fibFixed := fibVia(fixed)
	fibBuggy := fibVia(buggy)

	if !fibCisco.Equal(fibFixed) {
		t.Errorf("Theorem 3.3 at the FIB level: equivalent pair must forward identically\ncisco:\n%s\nfixed:\n%s",
			fibCisco, fibFixed)
	}
	if fibCisco.Equal(fibBuggy) {
		t.Error("buggy pair must forward differently")
	}

	// Step 4: concrete packets. The divergence is exactly where Campion
	// localized it.
	probes := []struct {
		dst      string
		ciscoFwd bool
		buggyFwd bool
	}{
		{"10.9.1.77", false, true},   // inside Difference 1's prefix space
		{"192.0.2.9", true, true},    // clean traffic unaffected
		{"203.0.113.5", false, true}, // Difference 2 (community-driven)
		{"10.100.3.3", false, false}, // rejected by both (only the /16 was advertised)
		{"8.8.8.8", false, false},    // never advertised
	}
	for _, p := range probes {
		dst := netaddr.MustParseAddr(p.dst)
		_, cOK := fibCisco.Forwards(dst)
		_, bOK := fibBuggy.Forwards(dst)
		if cOK != p.ciscoFwd || bOK != p.buggyFwd {
			t.Errorf("dst %s: cisco-fwd=%v (want %v) buggy-fwd=%v (want %v)",
				p.dst, cOK, p.ciscoFwd, bOK, p.buggyFwd)
		}
	}
	// The connected subnet forwards everywhere.
	if _, ok := fibCisco.Forwards(netaddr.MustParseAddr("10.0.3.99")); !ok {
		t.Error("connected subnet should forward")
	}
}
