package testnets

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
)

// FleetParams sizes a synthetic fleet. Real fleets are stamped from a
// handful of configuration templates — most devices are byte-identical
// except for their hostname — with a small fraction carrying local
// mutations (operator edits, workarounds, drift). The generator mirrors
// that: Devices configurations drawn round-robin from Templates
// semantic templates, with MutationRate of them receiving a unique
// semantic edit that puts each mutant in its own equivalence class.
type FleetParams struct {
	// Devices is the fleet size.
	Devices int
	// Templates is the number of distinct semantic templates (default 8).
	Templates int
	// MutationRate is the fraction of devices mutated (e.g. 0.01).
	MutationRate float64
	// Seed drives mutation placement; the output is a pure function of
	// FleetParams.
	Seed int64
}

// FleetMember is one generated device: its name (used for file names and
// pair labels) and raw Cisco configuration text.
type FleetMember struct {
	Name string
	Text string
	// Template is the semantic template index; Mutated marks devices
	// carrying a unique edit (their own equivalence class).
	Template int
	Mutated  bool
}

// ExpectedClasses reports how many semantic equivalence classes the
// fleet should cluster into: one per template in use plus one per
// mutated device.
func ExpectedClasses(members []FleetMember) int {
	templates := map[int]bool{}
	mutants := 0
	for _, m := range members {
		if m.Mutated {
			mutants++
		} else {
			templates[m.Template] = true
		}
	}
	return len(templates) + mutants
}

// Fleet generates a deterministic synthetic fleet.
func Fleet(p FleetParams) []FleetMember {
	if p.Templates <= 0 {
		p.Templates = 8
	}
	rng := rand.New(rand.NewSource(p.Seed))
	out := make([]FleetMember, p.Devices)
	for i := range out {
		t := i % p.Templates
		name := fmt.Sprintf("fleet-%04d", i)
		text := fleetTemplate(name, t)
		mutated := rng.Float64() < p.MutationRate
		if mutated {
			// A unique trailing edit: an extra static route naming this
			// device's index, so every mutant is semantically distinct
			// from its template and from every other mutant. Appending
			// keeps all other line numbers identical to the template.
			text += fmt.Sprintf("ip route 10.99.%d.%d 255.255.255.0 10.0.0.254\n", i/256, i%256)
		}
		out[i] = FleetMember{Name: name, Text: text, Template: t, Mutated: mutated}
	}
	return out
}

// fleetTemplate renders semantic template t for the named device. The
// hostname line is the only per-device text; everything else — prefix
// lists, policies, an ACL, static routes, BGP — varies per template so
// cross-template pairs have genuine differences to report.
func fleetTemplate(hostname string, t int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hostname %s\n!\n", hostname)
	fmt.Fprintf(&b, "interface GigabitEthernet0/0\n description uplink\n ip address 10.%d.1.1 255.255.255.0\n ip access-group EDGE in\n", 200+t)
	b.WriteString("interface GigabitEthernet0/1\n description fabric\n ip address 10.128.1.1 255.255.255.0\n!\n")
	fmt.Fprintf(&b, "ip prefix-list CUST-NETS permit 10.%d.0.0/16 le 24\n", 10+t)
	fmt.Fprintf(&b, "ip prefix-list CUST-NETS permit 10.%d.0.0/16 le 24\n", 30+t)
	b.WriteString("ip prefix-list DEFAULT-ONLY permit 0.0.0.0/0\n!\n")
	fmt.Fprintf(&b, "ip community-list standard BLOCK permit 65000:%d\n!\n", 100+t)
	b.WriteString("route-map CUSTOMER-IN deny 10\n match community BLOCK\n")
	fmt.Fprintf(&b, "route-map CUSTOMER-IN permit 20\n match ip address CUST-NETS\n set local-preference %d\n", 110+10*t)
	b.WriteString("route-map CUSTOMER-IN permit 30\n match ip address DEFAULT-ONLY\n!\n")
	fmt.Fprintf(&b, "route-map EXPORT-DC permit 10\n match ip address CUST-NETS\n set community 65000:%d\n!\n", 200+t)
	// Realistic configs run hundreds of lines; the bulk below (a wide
	// bogon ACL, per-customer prefix entries, per-VLAN interfaces and
	// statics) makes parsing and hashing cost what they cost in the
	// field, so fleet benchmarks measure honest per-device work.
	b.WriteString("ip access-list extended EDGE\n")
	fmt.Fprintf(&b, " 10 deny ip 192.168.%d.0 0.0.0.255 any\n", t)
	b.WriteString(" 20 permit tcp any any eq 179\n")
	for i := 0; i < 96; i++ {
		fmt.Fprintf(&b, " %d deny ip 10.250.%d.0 0.0.0.255 any\n", 30+5*i, i)
	}
	b.WriteString(" 1000 permit ip any any\n!\n")
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&b, "ip prefix-list CUST-NETS permit 172.%d.%d.0/24\n", 16+t, i)
	}
	b.WriteString("!\n")
	for v := 0; v < 32; v++ {
		fmt.Fprintf(&b, "interface Vlan%d\n description tenant %d\n ip address 10.%d.%d.1 255.255.255.0\n", 100+v, v, 64+t, v)
	}
	b.WriteString("!\n")
	fmt.Fprintf(&b, "ip route 10.%d.0.0 255.255.0.0 10.128.1.254\n", 10+t)
	for i := 0; i < 48; i++ {
		fmt.Fprintf(&b, "ip route 10.%d.%d.0 255.255.255.0 10.128.1.254\n", 140+t, i)
	}
	b.WriteString("!\n")
	fmt.Fprintf(&b, "router bgp 65%03d\n bgp router-id 10.128.1.1\n", t)
	b.WriteString(" neighbor 10.128.1.254 remote-as 64600\n")
	b.WriteString(" neighbor 10.128.1.254 route-map CUSTOMER-IN in\n")
	b.WriteString(" neighbor 10.128.1.254 route-map EXPORT-DC out\n")
	b.WriteString(" neighbor 10.128.1.254 send-community\n")
	return b.String()
}

// WriteFleetDir writes each member as "<name>.cfg" under dir, creating
// it if needed — the on-disk shape `campion -all DIR` consumes.
func WriteFleetDir(dir string, members []FleetMember) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, m := range members {
		path := filepath.Join(dir, m.Name+".cfg")
		if err := os.WriteFile(path, []byte(m.Text), 0o644); err != nil {
			return err
		}
	}
	return nil
}
