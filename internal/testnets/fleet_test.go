package testnets

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cisco"
)

func TestFleetDeterminism(t *testing.T) {
	p := FleetParams{Devices: 40, Templates: 5, MutationRate: 0.2, Seed: 42}
	a, b := Fleet(p), Fleet(p)
	if len(a) != 40 {
		t.Fatalf("got %d devices", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("device %d not deterministic", i)
		}
	}
	c := Fleet(FleetParams{Devices: 40, Templates: 5, MutationRate: 0.2, Seed: 43})
	same := true
	for i := range a {
		if a[i].Text != c[i].Text {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced an identical fleet")
	}
}

func TestFleetExpectedClasses(t *testing.T) {
	members := Fleet(FleetParams{Devices: 100, Templates: 4, MutationRate: 0.1, Seed: 7})
	mutants := 0
	for _, m := range members {
		if m.Mutated {
			mutants++
		}
	}
	want := 4 + mutants
	if got := ExpectedClasses(members); got != want {
		t.Fatalf("ExpectedClasses = %d, want %d (4 templates + %d mutants)", got, want, mutants)
	}
	// Zero mutation rate: classes == templates.
	pure := Fleet(FleetParams{Devices: 50, Templates: 6, MutationRate: 0, Seed: 1})
	if got := ExpectedClasses(pure); got != 6 {
		t.Fatalf("pure fleet classes = %d, want 6", got)
	}
}

func TestFleetParses(t *testing.T) {
	members := Fleet(FleetParams{Devices: 16, Templates: 8, MutationRate: 0.5, Seed: 3})
	for _, m := range members {
		cfg, err := cisco.Parse(m.Name+".cfg", m.Text)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if cfg.Hostname != m.Name {
			t.Fatalf("%s: hostname %q", m.Name, cfg.Hostname)
		}
		if len(cfg.Unrecognized) != 0 {
			t.Fatalf("%s: %d unrecognized spans (first: %v)", m.Name, len(cfg.Unrecognized), cfg.Unrecognized[0])
		}
		if len(cfg.RouteMaps) == 0 || len(cfg.ACLs) == 0 || cfg.BGP == nil {
			t.Fatalf("%s: template missing policy content", m.Name)
		}
	}
}

func TestWriteFleetDir(t *testing.T) {
	dir := t.TempDir()
	members := Fleet(FleetParams{Devices: 5, Templates: 2, MutationRate: 0, Seed: 1})
	if err := WriteFleetDir(dir, members); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("%d files written, want 5", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, members[0].Name+".cfg"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != members[0].Text {
		t.Fatal("written file does not match member text")
	}
	if !strings.HasPrefix(string(data), "hostname "+members[0].Name) {
		t.Fatal("config does not open with its hostname")
	}
}
