package testnets

// Scenario 1 — debugging redundant routers (§5.1). Two ToR backup pairs.
// Across the pairs Campion should find five BGP policy bugs (missing
// policy fragments and a wrong local preference) and two static-route
// next-hop bugs, the counts of Table 6's first row.

// tor1Cisco is the primary of the first ToR pair. Its CUST-NETS import
// filter is missing 10.13.0.0/16 (present on the backup — the "missing
// prefix in the primary" bug the paper highlights), and its EXPORT-DC
// correctly drops RFC1918 space.
const tor1Cisco = `hostname tor1-primary
!
interface GigabitEthernet0/0
 ip address 10.128.1.1 255.255.255.0
interface GigabitEthernet0/1
 ip address 10.128.2.1 255.255.255.0
!
ip prefix-list CUST-NETS permit 10.10.0.0/16 le 24
ip prefix-list CUST-NETS permit 10.11.0.0/16 le 24
ip prefix-list CUST-NETS permit 10.12.0.0/16 le 24
!
ip prefix-list RFC1918 permit 192.168.0.0/16 le 32
ip prefix-list RFC1918 permit 172.16.0.0/12 le 32
!
route-map CUSTOMER-IN permit 10
 match ip address CUST-NETS
 set local-preference 200
route-map CUSTOMER-IN deny 20
!
route-map EXPORT-DC deny 10
 match ip address RFC1918
route-map EXPORT-DC permit 20
!
route-map PARTNER-IN permit 10
 set local-preference 150
!
ip route 10.70.0.0 255.255.0.0 10.128.1.254
ip route 10.71.0.0 255.255.0.0 10.128.2.254
!
router bgp 65010
 bgp router-id 10.128.0.1
 neighbor 10.128.1.2 remote-as 65020
 neighbor 10.128.1.2 route-map CUSTOMER-IN in
 neighbor 10.128.1.2 route-map EXPORT-DC out
 neighbor 10.128.1.2 send-community
 neighbor 10.128.2.2 remote-as 65030
 neighbor 10.128.2.2 route-map PARTNER-IN in
 neighbor 10.128.2.2 send-community
`

// tor1Juniper is the backup: CUST-NETS has the fourth prefix, EXPORT-DC
// is missing the RFC1918 deny fragment, PARTNER-IN sets local preference
// 250 instead of 150, and the 10.70/16 static route points at a wrong
// next hop.
const tor1Juniper = `system { host-name tor1-backup; }
interfaces {
    ge-0/0/0 { unit 0 { family inet { address 10.128.1.1/24; } } }
    ge-0/0/1 { unit 0 { family inet { address 10.128.2.1/24; } } }
}
policy-options {
    policy-statement CUSTOMER-IN {
        term customers {
            from {
                route-filter 10.10.0.0/16 upto /24;
                route-filter 10.11.0.0/16 upto /24;
                route-filter 10.12.0.0/16 upto /24;
                route-filter 10.13.0.0/16 upto /24;
            }
            then {
                local-preference 200;
                accept;
            }
        }
        term final {
            then reject;
        }
    }
    policy-statement EXPORT-DC {
        term all {
            then accept;
        }
    }
    policy-statement PARTNER-IN {
        term all {
            then {
                local-preference 250;
                accept;
            }
        }
    }
}
routing-options {
    static {
        route 10.70.0.0/16 {
            next-hop 10.128.1.250;
            preference 1;
        }
        route 10.71.0.0/16 {
            next-hop 10.128.2.254;
            preference 1;
        }
    }
    autonomous-system 65010;
}
protocols {
    bgp {
        group customers {
            type external;
            peer-as 65020;
            neighbor 10.128.1.2 {
                import CUSTOMER-IN;
                export EXPORT-DC;
            }
        }
        group partners {
            type external;
            peer-as 65030;
            neighbor 10.128.2.2 {
                import PARTNER-IN;
            }
        }
    }
}
`

// tor2Cisco is the primary of the second ToR pair.
const tor2Cisco = `hostname tor2-primary
!
interface GigabitEthernet0/0
 ip address 10.129.1.1 255.255.255.0
!
ip prefix-list SVC-NETS permit 10.20.0.0/16 le 24
ip prefix-list SVC-NETS permit 10.21.0.0/16 le 24
!
route-map SERVICE-IN permit 10
 match ip address SVC-NETS
 set local-preference 300
route-map SERVICE-IN deny 20
!
route-map SERVICE-OUT permit 10
 set community 65010:77
!
ip route 10.80.0.0 255.255.0.0 10.129.1.254
!
router bgp 65010
 bgp router-id 10.129.0.1
 neighbor 10.129.1.2 remote-as 65040
 neighbor 10.129.1.2 route-map SERVICE-IN in
 neighbor 10.129.1.2 route-map SERVICE-OUT out
 neighbor 10.129.1.2 send-community
`

// tor2Juniper is the backup: SVC-NETS is missing 10.21.0.0/16 and
// SERVICE-OUT does not tag routes with the 65010:77 community.
const tor2Juniper = `system { host-name tor2-backup; }
interfaces {
    ge-0/0/0 { unit 0 { family inet { address 10.129.1.1/24; } } }
}
policy-options {
    policy-statement SERVICE-IN {
        term services {
            from {
                route-filter 10.20.0.0/16 upto /24;
            }
            then {
                local-preference 300;
                accept;
            }
        }
        term final {
            then reject;
        }
    }
    policy-statement SERVICE-OUT {
        term all {
            then accept;
        }
    }
}
routing-options {
    static {
        route 10.80.0.0/16 {
            next-hop 10.129.1.200;
            preference 1;
        }
    }
    autonomous-system 65010;
}
protocols {
    bgp {
        group services {
            type external;
            peer-as 65040;
            neighbor 10.129.1.2 {
                import SERVICE-IN;
                export SERVICE-OUT;
            }
        }
    }
}
`

// DatacenterToRPairs returns the Scenario 1 backup pairs.
func DatacenterToRPairs() []Pair {
	return []Pair{
		mustPair("dc-tor1", tor1Cisco, tor1Juniper),
		mustPair("dc-tor2", tor2Cisco, tor2Juniper),
	}
}

// Scenario 2 — router replacement (§5.1). The old Cisco configuration is
// manually rewritten into JunOS; the rewrite contains one incorrect
// community number and three incorrect local preferences, one of them on
// the route-reflector policy whose failure would have caused a severe
// outage.

const replacementCisco = `hostname agg-old-cisco
!
interface GigabitEthernet0/0
 ip address 10.140.1.1 255.255.255.0
!
ip prefix-list TIER1 permit 10.30.0.0/16 le 24
ip prefix-list TIER2 permit 10.31.0.0/16 le 24
ip prefix-list TIER3 permit 10.32.0.0/16 le 24
ip prefix-list TAGGED permit 10.33.0.0/16 le 24
!
route-map RR-POLICY permit 10
 match ip address TIER1
 set local-preference 400
route-map RR-POLICY permit 20
 match ip address TIER2
 set local-preference 300
route-map RR-POLICY permit 30
 match ip address TIER3
 set local-preference 200
route-map RR-POLICY permit 40
 match ip address TAGGED
 set community 65010:100 additive
route-map RR-POLICY deny 50
!
router bgp 65010
 bgp router-id 10.140.0.1
 neighbor 10.140.1.2 remote-as 65010
 neighbor 10.140.1.2 route-reflector-client
 neighbor 10.140.1.2 route-map RR-POLICY out
 neighbor 10.140.1.2 send-community
`

const replacementJuniper = `system { host-name agg-new-juniper; }
interfaces {
    ge-0/0/0 { unit 0 { family inet { address 10.140.1.1/24; } } }
}
policy-options {
    community TAG members 65010:101;
    policy-statement RR-POLICY {
        term tier1 {
            from {
                route-filter 10.30.0.0/16 upto /24;
            }
            then {
                local-preference 410;
                accept;
            }
        }
        term tier2 {
            from {
                route-filter 10.31.0.0/16 upto /24;
            }
            then {
                local-preference 310;
                accept;
            }
        }
        term tier3 {
            from {
                route-filter 10.32.0.0/16 upto /24;
            }
            then {
                local-preference 210;
                accept;
            }
        }
        term tagged {
            from {
                route-filter 10.33.0.0/16 upto /24;
            }
            then {
                community add TAG;
                accept;
            }
        }
        term final {
            then reject;
        }
    }
}
routing-options {
    autonomous-system 65010;
}
protocols {
    bgp {
        group rr-clients {
            type internal;
            cluster 10.140.0.2;
            neighbor 10.140.1.2 {
                export RR-POLICY;
            }
        }
    }
}
`

// DatacenterReplacement returns the Scenario 2 replacement pair.
func DatacenterReplacement() Pair {
	return mustPair("dc-replacement", replacementCisco, replacementJuniper)
}

// Scenario 3 — access control in gateway routers (§5.1, Table 7). The
// Juniper gateway filter is missing the 9.140.0.0/23 blacklist term and
// additionally accepts NTP toward the DNS block.

const gatewayCisco = `hostname gw-cisco
!
interface GigabitEthernet0/0
 ip address 10.150.1.1 255.255.255.0
 ip access-group VM_FILTER_1 in
!
ip access-list extended VM_FILTER_1
 2299 deny ipv4 9.140.0.0 0.0.1.255 any
 2300 permit tcp any 10.60.0.0 0.0.255.255 eq 80 443
 2301 permit udp any 10.61.0.0 0.0.255.255 eq 53
`

const gatewayJuniper = `system { host-name gw-juniper; }
interfaces {
    ge-0/0/0 {
        unit 0 {
            family inet {
                address 10.150.1.2/24;
                filter { input VM_FILTER_1; }
            }
        }
    }
}
firewall {
    family inet {
        filter VM_FILTER_1 {
            term permit_whitelist {
                from {
                    protocol tcp;
                    destination-address { 10.60.0.0/16; }
                    destination-port [ 80 443 ];
                }
                then accept;
            }
            term permit_dns {
                from {
                    protocol udp;
                    destination-address { 10.61.0.0/16; }
                    destination-port [ 53 123 ];
                }
                then accept;
            }
            term final {
                then discard;
            }
        }
    }
}
`

// DatacenterGateway returns the Scenario 3 gateway pair.
func DatacenterGateway() Pair {
	return mustPair("dc-gateway", gatewayCisco, gatewayJuniper)
}
