// Package testnets contains the synthetic configuration pairs behind the
// paper's evaluation (§5): a university network with a Cisco/Juniper core
// pair and border pair (Table 8), and a data-center network with backup
// ToR pairs, a router replacement, and gateway ACLs (Tables 6 and 7).
// The production configurations are confidential; these pairs are
// engineered to contain exactly the bug classes the paper describes, so
// the experiment harness can regenerate each table's difference counts.
package testnets

import (
	"fmt"

	"repro/internal/cisco"
	"repro/internal/ir"
	"repro/internal/juniper"
)

// Pair is a named pair of configurations intended to be equivalent. The
// raw texts are kept so pairs can be scaled with filler (see Scaled).
type Pair struct {
	Name             string
	Config1, Config2 *ir.Config
	Text1, Text2     string
}

func mustPair(name, text1, text2 string) Pair {
	c1, err := cisco.Parse(name+"-1.cfg", text1)
	if err != nil {
		panic(fmt.Sprintf("testnets %s cisco: %v", name, err))
	}
	c2, err := juniper.Parse(name+"-2.cfg", text2)
	if err != nil {
		panic(fmt.Sprintf("testnets %s juniper: %v", name, err))
	}
	return Pair{Name: name, Config1: c1, Config2: c2, Text1: text1, Text2: text2}
}

// universityCoreCisco is the Cisco member of the core backup pair. Its
// EXPORT1 policy is the paper's Figure 1 extended with the third-clause
// and fall-through discrepancies §5.2 describes; EXPORT2 shares the NETS
// prefix-list bug; IMPORT-ALL is correctly translated on both sides.
const universityCoreCisco = `hostname core-cisco
!
interface GigabitEthernet0/0
 description to-peer1
 ip address 10.0.1.1 255.255.255.0
interface GigabitEthernet0/1
 description to-peer2
 ip address 10.0.2.1 255.255.255.0
interface GigabitEthernet0/2
 description backbone
 ip address 10.0.3.1 255.255.255.0
!
ip prefix-list NETS permit 10.9.0.0/16 le 32
ip prefix-list NETS permit 10.100.0.0/16 le 32
!
ip prefix-list ANNOUNCE permit 10.50.0.0/16 le 24
!
ip prefix-list INBOUND permit 0.0.0.0/0 le 24
!
ip community-list standard COMM permit 10:10
ip community-list standard COMM permit 10:11
!
route-map EXPORT1 deny 10
 match ip address NETS
route-map EXPORT1 deny 20
 match community COMM
route-map EXPORT1 permit 30
 match ip address ANNOUNCE
 set local-preference 30
!
route-map EXPORT2 deny 10
 match ip address NETS
route-map EXPORT2 permit 20
 set local-preference 100
!
route-map IMPORT-ALL permit 10
 match ip address INBOUND
!
ip route 10.200.0.0 255.255.0.0 10.0.1.1
ip route 10.201.0.0 255.255.0.0 10.0.3.254
ip route 10.202.0.0 255.255.0.0 10.0.3.254
!
router ospf 1
 router-id 10.0.0.1
 network 10.0.0.0 0.0.255.255 area 0
!
router bgp 64900
 bgp router-id 10.0.0.1
 neighbor 192.0.2.1 remote-as 65101
 neighbor 192.0.2.1 route-map EXPORT1 out
 neighbor 192.0.2.1 route-map IMPORT-ALL in
 neighbor 192.0.2.1 send-community
 neighbor 198.51.100.1 remote-as 65102
 neighbor 198.51.100.1 route-map EXPORT2 out
 neighbor 198.51.100.1 send-community
 neighbor 10.0.3.10 remote-as 64900
 neighbor 10.0.3.11 remote-as 64900
`

// universityCoreJuniper is the Juniper member of the core pair. Its
// prefix-lists are exact-match (Difference 1), its COMM community uses
// AND semantics (Difference 2), EXPORT1's third term carries an extra
// community condition, and the policies fall through to JunOS
// default-accept rather than IOS implicit deny. Static route 10.200/16
// has a different next hop and preference (the intentional difference
// class of §5.2), and the 10.201/16, 10.202/16 workaround routes are
// missing. The iBGP neighbors send communities by default while the
// Cisco side's iBGP neighbors lack send-community.
const universityCoreJuniper = `system { host-name core-juniper; }
interfaces {
    ge-0/0/0 {
        description "to-peer1";
        unit 0 { family inet { address 10.0.1.2/24; } }
    }
    ge-0/0/1 {
        description "to-peer2";
        unit 0 { family inet { address 10.0.2.2/24; } }
    }
    ge-0/0/2 {
        description "backbone";
        unit 0 { family inet { address 10.0.3.2/24; } }
    }
}
policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    prefix-list ANNOUNCE {
        10.50.0.0/16;
    }
    community COMM members [ 10:10 10:11 ];
    community CUST members 65000:500;
    policy-statement EXPORT1 {
        term rule1 {
            from prefix-list NETS;
            then reject;
        }
        term rule2 {
            from community COMM;
            then reject;
        }
        term rule3 {
            from {
                prefix-list ANNOUNCE;
                community CUST;
            }
            then {
                local-preference 30;
                accept;
            }
        }
    }
    policy-statement EXPORT2 {
        term rule1 {
            from prefix-list NETS;
            then reject;
        }
        term rule2 {
            then {
                local-preference 100;
                accept;
            }
        }
    }
    policy-statement IMPORT-ALL {
        term rule1 {
            from {
                route-filter 0.0.0.0/0 upto /24;
            }
            then accept;
        }
        term rule2 {
            then reject;
        }
    }
}
routing-options {
    static {
        route 10.200.0.0/16 {
            next-hop 10.0.1.9;
            preference 5;
        }
    }
    autonomous-system 64900;
    router-id 10.0.0.2;
}
protocols {
    ospf {
        area 0 {
            interface ge-0/0/0.0 { metric 1; }
            interface ge-0/0/1.0 { metric 1; }
            interface ge-0/0/2.0 { metric 1; }
        }
    }
    bgp {
        group peer1 {
            type external;
            peer-as 65101;
            neighbor 192.0.2.1 {
                export EXPORT1;
                import IMPORT-ALL;
            }
        }
        group peer2 {
            type external;
            peer-as 65102;
            neighbor 198.51.100.1 {
                export EXPORT2;
            }
        }
        group backbone {
            type internal;
            neighbor 10.0.3.10;
            neighbor 10.0.3.11;
        }
    }
}
`

// UniversityCore returns the core router backup pair of §5.2.
func UniversityCore() Pair {
	return mustPair("university-core", universityCoreCisco, universityCoreJuniper)
}

// universityBorderCisco is the Cisco member of the border pair: three
// export policies keyed by community regexes and a prefix list, plus an
// import policy shared with the Juniper side.
const universityBorderCisco = `hostname border-cisco
!
interface GigabitEthernet0/0
 description to-isp1
 ip address 172.16.1.1 255.255.255.0
interface GigabitEthernet0/1
 description to-isp2
 ip address 172.16.2.1 255.255.255.0
!
ip community-list expanded TRANSIT permit ^65000:1[012]$
ip community-list expanded PEERCOMM permit _65100_
!
ip prefix-list EXPORT-NETS permit 10.9.0.0/16
ip prefix-list EXPORT-NETS permit 10.100.0.0/16
ip prefix-list EXPORT-NETS permit 10.50.0.0/16
!
ip prefix-list DEFAULT-ONLY permit 0.0.0.0/0
!
route-map EXPORT3 permit 10
 match community TRANSIT
route-map EXPORT3 deny 20
!
route-map EXPORT4 permit 10
 match community PEERCOMM
 set local-preference 80
route-map EXPORT4 deny 20
!
route-map EXPORT5 permit 10
 match ip address EXPORT-NETS
 set local-preference 50
route-map EXPORT5 deny 20
!
route-map IMPORT-DEFAULT permit 10
 match ip address DEFAULT-ONLY
route-map IMPORT-DEFAULT deny 20
!
router bgp 64900
 bgp router-id 10.0.0.3
 neighbor 203.0.113.1 remote-as 65201
 neighbor 203.0.113.1 route-map EXPORT3 out
 neighbor 203.0.113.1 route-map IMPORT-DEFAULT in
 neighbor 203.0.113.1 send-community
 neighbor 203.0.113.5 remote-as 65202
 neighbor 203.0.113.5 route-map EXPORT4 out
 neighbor 203.0.113.5 send-community
 neighbor 203.0.113.9 remote-as 65203
 neighbor 203.0.113.9 route-map EXPORT5 out
 neighbor 203.0.113.9 send-community
`

// universityBorderJuniper differs in two community regexes (EXPORT3 and
// EXPORT4, the §5.2 border findings) and omits 10.50.0.0/16 from
// EXPORT-NETS (EXPORT5, two outputted differences because the missing
// prefix region splits on the DEPRECATED community). IMPORT-DEFAULT is a
// faithful translation.
const universityBorderJuniper = `system { host-name border-juniper; }
interfaces {
    ge-0/0/0 {
        description "to-isp1";
        unit 0 { family inet { address 172.16.1.2/24; } }
    }
    ge-0/0/1 {
        description "to-isp2";
        unit 0 { family inet { address 172.16.2.2/24; } }
    }
}
policy-options {
    community TRANSIT members "^65000:1[01]$";
    community PEERCOMM members "^65100:.*$";
    community DEPRECATED members 65000:666;
    prefix-list EXPORT-NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    policy-statement EXPORT3 {
        term allow {
            from community TRANSIT;
            then accept;
        }
        term final {
            then reject;
        }
    }
    policy-statement EXPORT4 {
        term allow {
            from community PEERCOMM;
            then {
                local-preference 80;
                accept;
            }
        }
        term final {
            then reject;
        }
    }
    policy-statement EXPORT5 {
        term allow {
            from prefix-list EXPORT-NETS;
            then {
                local-preference 50;
                accept;
            }
        }
        term drop-deprecated {
            from community DEPRECATED;
            then reject;
        }
        term final {
            then reject;
        }
    }
    policy-statement IMPORT-DEFAULT {
        term allow {
            from {
                route-filter 0.0.0.0/0 exact;
            }
            then accept;
        }
        term final {
            then reject;
        }
    }
}
routing-options {
    autonomous-system 64900;
    router-id 10.0.0.4;
}
protocols {
    bgp {
        group isp1 {
            type external;
            peer-as 65201;
            neighbor 203.0.113.1 {
                export EXPORT3;
                import IMPORT-DEFAULT;
            }
        }
        group isp2 {
            type external;
            peer-as 65202;
            neighbor 203.0.113.5 {
                export EXPORT4;
            }
        }
        group isp3 {
            type external;
            peer-as 65203;
            neighbor 203.0.113.9 {
                export EXPORT5;
            }
        }
    }
}
`

// UniversityBorder returns the border router backup pair of §5.2.
func UniversityBorder() Pair {
	return mustPair("university-border", universityBorderCisco, universityBorderJuniper)
}
