package testnets

import (
	"testing"

	"repro/internal/core"
)

// countByPolicy groups route-map diffs by the compared policy pair.
func countByPolicy(rep *core.Report) map[string]int {
	out := map[string]int{}
	for _, d := range rep.RouteMapDiffs {
		out[d.Pair.Name1] = out[d.Pair.Name1] + 1
	}
	return out
}

// staticClasses groups static-route structural diffs by prefix (the
// paper's "classes of errors").
func staticClasses(rep *core.Report) map[string]bool {
	out := map[string]bool{}
	for _, d := range rep.Structural {
		if d.Component == "static-route" {
			out[d.Key] = true
		}
	}
	return out
}

// TestUniversityCoreTable8 pins the Table 8 counts for the core pair:
// EXPORT1 has 5 outputted differences, EXPORT2 has 1, IMPORT-ALL has 0;
// static routes show 2 classes of differences; the BGP properties show
// the send-community class.
func TestUniversityCoreTable8(t *testing.T) {
	p := UniversityCore()
	rep, err := core.Diff(p.Config1, p.Config2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	counts := countByPolicy(rep)
	if counts["EXPORT1"] != 5 {
		t.Errorf("EXPORT1 outputted differences = %d, want 5 (Table 8a)", counts["EXPORT1"])
	}
	if counts["EXPORT2"] != 1 {
		t.Errorf("EXPORT2 outputted differences = %d, want 1 (Table 8a)", counts["EXPORT2"])
	}
	if counts["IMPORT-ALL"] != 0 {
		t.Errorf("IMPORT-ALL outputted differences = %d, want 0 (Table 8a)", counts["IMPORT-ALL"])
	}

	classes := staticClasses(rep)
	if len(classes) != 3 { // 10.200/16 attribute class + 10.201, 10.202 presence
		t.Errorf("static route prefixes with diffs = %v", classes)
	}
	// The paper groups these as two classes of errors: differing
	// attributes for a shared prefix, and routes present on one side.
	var attributeClass, presenceClass int
	seenField := map[string]string{}
	for _, d := range rep.Structural {
		if d.Component != "static-route" {
			continue
		}
		if _, dup := seenField[d.Key]; !dup {
			seenField[d.Key] = d.Field
			if d.Field == "attributes" {
				attributeClass++
			} else {
				presenceClass++
			}
		}
	}
	if attributeClass == 0 || presenceClass == 0 {
		t.Errorf("want both static diff classes, got attr=%d presence=%d", attributeClass, presenceClass)
	}

	var sendCommunity int
	for _, d := range rep.Structural {
		if d.Component == "bgp-neighbor" && d.Field == "send-community" {
			sendCommunity++
		}
	}
	if sendCommunity != 2 { // the two iBGP neighbors
		t.Errorf("send-community diffs = %d, want 2 (one class)", sendCommunity)
	}

	// No spurious diffs in other components.
	for _, d := range rep.Structural {
		switch d.Component {
		case "static-route", "bgp-neighbor":
		default:
			t.Errorf("unexpected structural diff: %+v", d)
		}
	}
	if len(rep.ACLDiffs) != 0 || len(rep.UnmatchedACLs1)+len(rep.UnmatchedACLs2) != 0 {
		t.Error("core pair has no ACLs")
	}
}

// TestUniversityBorderTable8 pins the border pair counts: EXPORT3 = 1,
// EXPORT4 = 1, EXPORT5 = 2, IMPORT-DEFAULT = 0.
func TestUniversityBorderTable8(t *testing.T) {
	p := UniversityBorder()
	rep, err := core.Diff(p.Config1, p.Config2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	counts := countByPolicy(rep)
	want := map[string]int{"EXPORT3": 1, "EXPORT4": 1, "EXPORT5": 2}
	for name, n := range want {
		if counts[name] != n {
			t.Errorf("%s outputted differences = %d, want %d (Table 8a)", name, counts[name], n)
		}
	}
	if counts["IMPORT-DEFAULT"] != 0 {
		t.Errorf("IMPORT-DEFAULT = %d, want 0", counts["IMPORT-DEFAULT"])
	}
	if len(staticClasses(rep)) != 0 {
		t.Error("border pair should have no static diffs")
	}
}

// TestDatacenterScenario1 pins Table 6's first row: five semantic BGP
// differences and two static-route bugs across the ToR backup pairs.
func TestDatacenterScenario1(t *testing.T) {
	var bgpDiffs int
	staticBugs := map[string]bool{}
	for _, p := range DatacenterToRPairs() {
		rep, err := core.Diff(p.Config1, p.Config2, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		bgpDiffs += len(rep.RouteMapDiffs)
		for prefix := range staticClasses(rep) {
			staticBugs[p.Name+"/"+prefix] = true
		}
		if len(rep.ACLDiffs) != 0 {
			t.Errorf("%s: unexpected ACL diffs", p.Name)
		}
	}
	if bgpDiffs != 5 {
		t.Errorf("scenario 1 BGP semantic differences = %d, want 5 (Table 6)", bgpDiffs)
	}
	if len(staticBugs) != 2 {
		t.Errorf("scenario 1 static-route bugs = %v, want 2 (Table 6)", staticBugs)
	}
}

// TestDatacenterScenario2 pins Table 6's second row: four semantic BGP
// differences (three wrong local preferences and one wrong community).
func TestDatacenterScenario2(t *testing.T) {
	p := DatacenterReplacement()
	rep, err := core.Diff(p.Config1, p.Config2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RouteMapDiffs) != 4 {
		for _, d := range rep.RouteMapDiffs {
			t.Logf("diff: %s %s vs %s", d.Pair, d.Action1, d.Action2)
		}
		t.Errorf("scenario 2 differences = %d, want 4 (Table 6)", len(rep.RouteMapDiffs))
	}
	var lpDiffs, commDiffs int
	for _, d := range rep.RouteMapDiffs {
		switch {
		case contains(d.Action1, "LOCAL PREF") || contains(d.Action2, "LOCAL PREF"):
			lpDiffs++
		case contains(d.Action1, "COMMUNI") || contains(d.Action2, "COMMUNI"):
			commDiffs++
		}
	}
	if lpDiffs != 3 || commDiffs != 1 {
		t.Errorf("lp diffs = %d (want 3), community diffs = %d (want 1)", lpDiffs, commDiffs)
	}
	// The structural check must confirm the route reflector client flag
	// was translated correctly (no diff).
	for _, d := range rep.Structural {
		if d.Field == "route-reflector-client" {
			t.Error("RR client flag should match on both sides")
		}
	}
}

// TestDatacenterScenario3 pins Table 6's third row: three semantic ACL
// differences, including the Table 7 example (source 9.140.0.0/23
// rejected by the Cisco gateway, accepted by the Juniper one).
func TestDatacenterScenario3(t *testing.T) {
	p := DatacenterGateway()
	rep, err := core.Diff(p.Config1, p.Config2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ACLDiffs) != 3 {
		for _, d := range rep.ACLDiffs {
			t.Logf("acl diff: %s %s vs %s", d.Name1, d.Action1, d.Action2)
		}
		t.Fatalf("scenario 3 ACL differences = %d, want 3 (Table 6)", len(rep.ACLDiffs))
	}
	// Table 7's featured difference: REJECT on the Cisco side, ACCEPT on
	// the Juniper side, source localized to 9.140.0.0/23, text localized
	// to the numbered deny line and the permitting term.
	var found bool
	for _, d := range rep.ACLDiffs {
		if d.Action1 != "REJECT" || d.Action2 != "ACCEPT" {
			continue
		}
		for _, term := range d.Localization.SrcTerms {
			if term.Include.Prefix.String() == "9.140.0.0/23" {
				found = true
				if !contains(d.Text1.Text(), "2299 deny ipv4 9.140.0.0 0.0.1.255 any") {
					t.Errorf("text1 = %q", d.Text1.Text())
				}
				if !contains(d.Text2.Text(), "term permit_") {
					t.Errorf("text2 = %q", d.Text2.Text())
				}
			}
		}
	}
	if !found {
		t.Error("Table 7 difference (src 9.140.0.0/23) not found")
	}
	if len(rep.RouteMapDiffs) != 0 {
		t.Error("gateway pair has no BGP policies")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestNoParseGaps ensures the synthetic configurations are fully
// understood by the parsers (no unrecognized lines sneak into the
// evaluation).
func TestNoParseGaps(t *testing.T) {
	pairs := []Pair{UniversityCore(), UniversityBorder(), DatacenterReplacement(), DatacenterGateway()}
	pairs = append(pairs, DatacenterToRPairs()...)
	for _, p := range pairs {
		for _, u := range p.Config1.Unrecognized {
			t.Errorf("%s config1 unrecognized: %s %q", p.Name, u.Location(), u.Text())
		}
		for _, u := range p.Config2.Unrecognized {
			t.Errorf("%s config2 unrecognized: %s %q", p.Name, u.Location(), u.Text())
		}
	}
}

// TestScaledPairsKeepCounts grows the university core pair to the paper's
// config sizes and checks that the filler is behaviorally neutral: the
// difference counts are unchanged.
func TestScaledPairsKeepCounts(t *testing.T) {
	base := UniversityCore()
	scaled := Scaled(base, 120, 150)
	l1, l2 := scaled.LineCount()
	if l1 < 300 || l2 < 300 {
		t.Errorf("scaled configs too small: %d / %d lines", l1, l2)
	}
	repBase, err := core.Diff(base.Config1, base.Config2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	repScaled, err := core.Diff(scaled.Config1, scaled.Config2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(repScaled.RouteMapDiffs) != len(repBase.RouteMapDiffs) {
		t.Errorf("route map diffs changed: %d vs %d",
			len(repScaled.RouteMapDiffs), len(repBase.RouteMapDiffs))
	}
	if len(repScaled.ACLDiffs) != 0 {
		t.Errorf("filler ACLs must be equivalent, got %d diffs", len(repScaled.ACLDiffs))
	}
	if len(repScaled.Structural) != len(repBase.Structural) {
		t.Errorf("structural diffs changed: %d vs %d",
			len(repScaled.Structural), len(repBase.Structural))
	}
	for _, u := range scaled.Config1.Unrecognized {
		t.Errorf("scaled cisco unrecognized: %q", u.Text())
	}
	for _, u := range scaled.Config2.Unrecognized {
		t.Errorf("scaled juniper unrecognized: %q", u.Text())
	}
}
