package testnets

import (
	"fmt"
	"strings"

	"repro/internal/aclgen"
)

// Scaled returns a variant of the pair grown with semantically neutral
// filler — loopback interfaces with identical subnets on both sides and a
// large ACL rendered equivalently for each vendor — bringing the
// configurations up to the size range the paper evaluated ("300 lines to
// more than 1000 lines", data-center devices "thousands of lines")
// without changing any difference count.
func Scaled(p Pair, loopbacks, aclRules int) Pair {
	var cb, jb strings.Builder
	cb.WriteString(p.Text1)
	cb.WriteString("\n!\n")
	for i := 0; i < loopbacks; i++ {
		fmt.Fprintf(&cb, "interface Loopback%d\n ip address 172.20.%d.%d 255.255.255.255\n",
			i, i/256, i%256)
	}
	pair := aclgen.Generate(aclgen.Params{Seed: 0xf111e4, Rules: aclRules, Differences: 0})
	cb.WriteString("!\n")
	cb.WriteString(pair.CiscoText)

	jb.WriteString(p.Text2)
	jb.WriteString("\n")
	jb.WriteString("interfaces {\n")
	for i := 0; i < loopbacks; i++ {
		fmt.Fprintf(&jb, "    lo0-%d { unit 0 { family inet { address 172.20.%d.%d/32; } } }\n",
			i, i/256, i%256)
	}
	jb.WriteString("}\n")
	jb.WriteString(pair.JuniperText)

	return mustPair(p.Name+"-scaled", cb.String(), jb.String())
}

// LineCount reports the configuration sizes of the pair.
func (p Pair) LineCount() (int, int) {
	return strings.Count(p.Text1, "\n") + 1, strings.Count(p.Text2, "\n") + 1
}
