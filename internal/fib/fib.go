// Package fib implements the router's RIB→FIB pipeline at the bottom of
// the paper's Figure 4: candidate routes from every protocol (connected,
// static, OSPF, BGP) compete per prefix by administrative distance and
// metric, and the winners form a longest-prefix-match forwarding table
// (a binary trie). Together with internal/srp this closes the loop from
// configurations to concrete packet forwarding, which is what the
// monolithic baseline's counterexamples (Tables 3 and 5) talk about.
package fib

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/netaddr"
)

// Entry is one candidate or installed route.
type Entry struct {
	Prefix        netaddr.Prefix
	NextHop       netaddr.Addr
	HasNextHop    bool
	Interface     string
	Protocol      ir.Protocol
	AdminDistance int
	Metric        int64
}

func (e Entry) String() string {
	nh := e.Interface
	if e.HasNextHop {
		nh = e.NextHop.String()
	}
	return fmt.Sprintf("%s via %s (%s, ad %d, metric %d)",
		e.Prefix, nh, e.Protocol, e.AdminDistance, e.Metric)
}

// better reports whether e should be preferred over o for the same
// prefix: lower administrative distance, then lower metric, then a
// deterministic tiebreak.
func (e Entry) better(o Entry) bool {
	if e.AdminDistance != o.AdminDistance {
		return e.AdminDistance < o.AdminDistance
	}
	if e.Metric != o.Metric {
		return e.Metric < o.Metric
	}
	return e.NextHop < o.NextHop
}

// trieNode is a node of the binary prefix trie; children[0] follows a 0
// bit, children[1] a 1 bit.
type trieNode struct {
	children [2]*trieNode
	entry    *Entry
}

// Table is a longest-prefix-match forwarding table.
type Table struct {
	root *trieNode
	size int
}

// New returns an empty table.
func New() *Table {
	return &Table{root: &trieNode{}}
}

// Size returns the number of installed prefixes.
func (t *Table) Size() int { return t.size }

// Insert installs the entry, replacing any previous entry for the exact
// prefix (RIB selection happens in Build; Insert is last-write-wins).
func (t *Table) Insert(e Entry) {
	n := t.root
	for i := 0; i < int(e.Prefix.Len); i++ {
		b := 0
		if e.Prefix.Addr.Bit(i) {
			b = 1
		}
		if n.children[b] == nil {
			n.children[b] = &trieNode{}
		}
		n = n.children[b]
	}
	if n.entry == nil {
		t.size++
	}
	cp := e
	n.entry = &cp
}

// Lookup returns the longest-prefix-match entry for the address.
func (t *Table) Lookup(a netaddr.Addr) (Entry, bool) {
	var best *Entry
	n := t.root
	for i := 0; ; i++ {
		if n.entry != nil {
			best = n.entry
		}
		if i == 32 {
			break
		}
		b := 0
		if a.Bit(i) {
			b = 1
		}
		if n.children[b] == nil {
			break
		}
		n = n.children[b]
	}
	if best == nil {
		return Entry{}, false
	}
	return *best, true
}

// Entries returns the installed entries sorted by prefix.
func (t *Table) Entries() []Entry {
	var out []Entry
	var walk func(n *trieNode)
	walk = func(n *trieNode) {
		if n == nil {
			return
		}
		if n.entry != nil {
			out = append(out, *n.entry)
		}
		walk(n.children[0])
		walk(n.children[1])
	}
	walk(t.root)
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Compare(out[j].Prefix) < 0 })
	return out
}

// Equal reports whether two tables install identical entries.
func (t *Table) Equal(o *Table) bool {
	a, b := t.Entries(), o.Entries()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders the table like "show ip route".
func (t *Table) String() string {
	var b strings.Builder
	for _, e := range t.Entries() {
		fmt.Fprintln(&b, e)
	}
	return b.String()
}

// Build runs RIB route selection over a configuration's local routes plus
// externally learned routes (e.g. an SRP solution), and installs the per-
// prefix winners:
//
//   - connected routes from active interfaces (distance 0)
//   - static routes at their configured administrative distance
//   - learned routes at the configuration's per-protocol distance,
//     with the route's MED as the metric
func Build(cfg *ir.Config, learned []*ir.Route) *Table {
	best := map[netaddr.Prefix]Entry{}
	offer := func(e Entry) {
		if cur, ok := best[e.Prefix]; !ok || e.better(cur) {
			best[e.Prefix] = e
		}
	}
	for _, ifc := range cfg.Interfaces {
		if !ifc.HasAddress || ifc.Shutdown {
			continue
		}
		offer(Entry{
			Prefix:        ifc.Subnet,
			Interface:     ifc.Name,
			Protocol:      ir.ProtoConnected,
			AdminDistance: cfg.AdminDistances[ir.ProtoConnected],
		})
	}
	for _, sr := range cfg.StaticRoutes {
		offer(Entry{
			Prefix:        sr.Prefix,
			NextHop:       sr.NextHop,
			HasNextHop:    sr.HasNextHop,
			Interface:     sr.Interface,
			Protocol:      ir.ProtoStatic,
			AdminDistance: sr.AdminDistance,
		})
	}
	for _, r := range learned {
		ad, ok := cfg.AdminDistances[r.Protocol]
		if !ok {
			ad = 200
		}
		offer(Entry{
			Prefix:        r.Prefix,
			NextHop:       r.NextHop,
			HasNextHop:    true,
			Protocol:      r.Protocol,
			AdminDistance: ad,
			Metric:        r.MED,
		})
	}
	t := New()
	for _, e := range best {
		t.Insert(e)
	}
	return t
}

// Forwards reports whether the table forwards packets to the address
// (Table 3/5's "router forwards" column) and through which protocol.
func (t *Table) Forwards(a netaddr.Addr) (ir.Protocol, bool) {
	e, ok := t.Lookup(a)
	if !ok {
		return 0, false
	}
	return e.Protocol, true
}
