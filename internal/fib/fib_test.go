package fib

import (
	"testing"
	"testing/quick"

	"repro/internal/cisco"
	"repro/internal/ir"
	"repro/internal/juniper"
	"repro/internal/netaddr"
)

func entry(prefix string, nh string, proto ir.Protocol, ad int) Entry {
	e := Entry{
		Prefix:        netaddr.MustParsePrefix(prefix),
		Protocol:      proto,
		AdminDistance: ad,
	}
	if nh != "" {
		e.NextHop = netaddr.MustParseAddr(nh)
		e.HasNextHop = true
	}
	return e
}

func TestLongestPrefixMatch(t *testing.T) {
	tb := New()
	tb.Insert(entry("0.0.0.0/0", "192.0.2.1", ir.ProtoStatic, 1))
	tb.Insert(entry("10.0.0.0/8", "10.0.0.1", ir.ProtoBGP, 20))
	tb.Insert(entry("10.1.0.0/16", "10.0.0.2", ir.ProtoOSPF, 110))
	tb.Insert(entry("10.1.2.0/24", "10.0.0.3", ir.ProtoStatic, 1))

	cases := []struct {
		dst  string
		want string
	}{
		{"10.1.2.3", "10.0.0.3"},
		{"10.1.9.9", "10.0.0.2"},
		{"10.9.9.9", "10.0.0.1"},
		{"8.8.8.8", "192.0.2.1"},
	}
	for _, c := range cases {
		e, ok := tb.Lookup(netaddr.MustParseAddr(c.dst))
		if !ok || e.NextHop.String() != c.want {
			t.Errorf("Lookup(%s) = %v ok=%v, want via %s", c.dst, e, ok, c.want)
		}
	}
	if tb.Size() != 4 {
		t.Errorf("size = %d", tb.Size())
	}
}

func TestLookupMiss(t *testing.T) {
	tb := New()
	tb.Insert(entry("10.0.0.0/8", "10.0.0.1", ir.ProtoStatic, 1))
	if _, ok := tb.Lookup(netaddr.MustParseAddr("192.0.2.1")); ok {
		t.Error("no default route: lookup should miss")
	}
	if _, ok := New().Lookup(netaddr.MustParseAddr("1.2.3.4")); ok {
		t.Error("empty table should miss")
	}
}

// TestLPMAgainstBruteForce is the property test: trie lookup must agree
// with a linear scan choosing the longest containing prefix.
func TestLPMAgainstBruteForce(t *testing.T) {
	f := func(seedAddrs []uint32, probe uint32) bool {
		if len(seedAddrs) > 40 {
			seedAddrs = seedAddrs[:40]
		}
		tb := New()
		var entries []Entry
		for i, a := range seedAddrs {
			p := netaddr.NewPrefix(netaddr.Addr(a), uint8((a>>3)%33))
			e := Entry{Prefix: p, NextHop: netaddr.Addr(uint32(i) + 1), HasNextHop: true, Protocol: ir.ProtoStatic}
			tb.Insert(e)
			// Last write wins for duplicate prefixes, like Insert.
			replaced := false
			for j := range entries {
				if entries[j].Prefix == p {
					entries[j] = e
					replaced = true
					break
				}
			}
			if !replaced {
				entries = append(entries, e)
			}
		}
		dst := netaddr.Addr(probe)
		var want *Entry
		for i := range entries {
			if entries[i].Prefix.Contains(dst) {
				if want == nil || entries[i].Prefix.Len > want.Prefix.Len {
					want = &entries[i]
				}
			}
		}
		got, ok := tb.Lookup(dst)
		if want == nil {
			return !ok
		}
		return ok && got == *want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBuildSelectionByAdminDistance(t *testing.T) {
	cfg, _ := cisco.Parse("t", `interface Gi0/0
 ip address 10.0.12.1 255.255.255.0
ip route 10.50.0.0 255.255.0.0 10.0.12.9
`)
	learned := []*ir.Route{
		// BGP route for the same prefix as the static: static (ad 1) wins.
		func() *ir.Route {
			r := ir.NewRoute(netaddr.MustParsePrefix("10.50.0.0/16"))
			r.NextHop = netaddr.MustParseAddr("10.0.12.77")
			return r
		}(),
		// BGP route for the connected subnet: connected (ad 0) wins.
		func() *ir.Route {
			r := ir.NewRoute(netaddr.MustParsePrefix("10.0.12.0/24"))
			r.NextHop = netaddr.MustParseAddr("10.0.12.78")
			return r
		}(),
		// BGP-only prefix installs.
		func() *ir.Route {
			r := ir.NewRoute(netaddr.MustParsePrefix("203.0.113.0/24"))
			r.NextHop = netaddr.MustParseAddr("10.0.12.79")
			return r
		}(),
	}
	tb := Build(cfg, learned)
	e, _ := tb.Lookup(netaddr.MustParseAddr("10.50.1.1"))
	if e.Protocol != ir.ProtoStatic || e.NextHop.String() != "10.0.12.9" {
		t.Errorf("static should win: %v", e)
	}
	e, _ = tb.Lookup(netaddr.MustParseAddr("10.0.12.5"))
	if e.Protocol != ir.ProtoConnected {
		t.Errorf("connected should win: %v", e)
	}
	e, _ = tb.Lookup(netaddr.MustParseAddr("203.0.113.5"))
	if e.Protocol != ir.ProtoBGP {
		t.Errorf("bgp should install: %v", e)
	}
	if proto, ok := tb.Forwards(netaddr.MustParseAddr("203.0.113.5")); !ok || proto != ir.ProtoBGP {
		t.Error("Forwards")
	}
	if _, ok := tb.Forwards(netaddr.MustParseAddr("8.8.8.8")); ok {
		t.Error("no route: should not forward")
	}
}

// TestTable5ViaFIB re-derives the paper's Table 5 through the data plane:
// the Cisco FIB forwards to 10.1.1.2 via a static route; the Juniper FIB
// does not forward at all.
func TestTable5ViaFIB(t *testing.T) {
	c, _ := cisco.Parse("c.cfg", "ip route 10.1.1.2 255.255.255.254 10.2.2.2\n")
	j, _ := juniper.Parse("j.cfg", "routing-options { static { } }\n")
	fc, fj := Build(c, nil), Build(j, nil)
	dst := netaddr.MustParseAddr("10.1.1.2")
	if proto, ok := fc.Forwards(dst); !ok || proto != ir.ProtoStatic {
		t.Error("cisco should forward via static")
	}
	if _, ok := fj.Forwards(dst); ok {
		t.Error("juniper should not forward")
	}
	if fc.Equal(fj) {
		t.Error("tables differ")
	}
}

func TestEqualAndString(t *testing.T) {
	a, b := New(), New()
	e := entry("10.0.0.0/8", "10.0.0.1", ir.ProtoStatic, 1)
	a.Insert(e)
	b.Insert(e)
	if !a.Equal(b) {
		t.Error("identical tables should be equal")
	}
	b.Insert(entry("10.0.0.0/8", "10.0.0.2", ir.ProtoStatic, 1))
	if a.Equal(b) {
		t.Error("replaced entry should break equality")
	}
	if a.String() == "" || len(a.Entries()) != 1 {
		t.Error("rendering")
	}
}

func TestDefaultRouteAndHostRoute(t *testing.T) {
	tb := New()
	tb.Insert(entry("0.0.0.0/0", "1.1.1.1", ir.ProtoStatic, 1))
	tb.Insert(entry("10.1.1.2/32", "2.2.2.2", ir.ProtoStatic, 1))
	e, ok := tb.Lookup(netaddr.MustParseAddr("10.1.1.2"))
	if !ok || e.NextHop.String() != "2.2.2.2" {
		t.Errorf("host route should win: %v", e)
	}
	e, ok = tb.Lookup(netaddr.MustParseAddr("10.1.1.3"))
	if !ok || e.NextHop.String() != "1.1.1.1" {
		t.Errorf("default should catch: %v", e)
	}
}
