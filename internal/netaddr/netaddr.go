// Package netaddr provides IPv4 addresses, prefixes, wildcard matchers, and
// prefix ranges (a prefix paired with an interval of prefix lengths), the
// address vocabulary used throughout Campion's semantic and structural
// checks. Prefix ranges are the representation HeaderLocalize reasons over:
// the pair (1.2.0.0/16, 16-32) denotes all prefixes whose first 16 bits
// match 1.2 and whose length lies in [16, 32].
package netaddr

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netaddr: invalid IPv4 address %q", s)
	}
	var a uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("netaddr: invalid IPv4 address %q", s)
		}
		a = a<<8 | uint32(n)
	}
	return Addr(a), nil
}

// MustParseAddr is ParseAddr that panics on error, for tests and literals.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Bit returns bit i of the address, counting from the most significant bit
// (bit 0 is the top bit). It is used by the BDD encodings.
func (a Addr) Bit(i int) bool {
	return a&(1<<(31-uint(i))) != 0
}

// Mask returns the network mask with the top length bits set.
func Mask(length int) uint32 {
	if length <= 0 {
		return 0
	}
	if length >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - uint(length))
}

// Prefix is an IPv4 prefix in canonical form: all bits beyond Len are zero.
type Prefix struct {
	Addr Addr
	Len  uint8
}

// NewPrefix canonicalizes addr to length len (host bits zeroed).
func NewPrefix(addr Addr, length uint8) Prefix {
	if length > 32 {
		length = 32
	}
	return Prefix{Addr: Addr(uint32(addr) & Mask(int(length))), Len: length}
}

// ParsePrefix parses "a.b.c.d/len" or a bare address (treated as /32).
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		a, err := ParseAddr(s)
		if err != nil {
			return Prefix{}, err
		}
		return Prefix{Addr: a, Len: 32}, nil
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	n, err := strconv.Atoi(s[slash+1:])
	if err != nil || n < 0 || n > 32 {
		return Prefix{}, fmt.Errorf("netaddr: invalid prefix length in %q", s)
	}
	return NewPrefix(a, uint8(n)), nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// PrefixFromMask converts an address and a contiguous network mask
// (e.g. 255.255.255.254) to a prefix. It reports false if the mask has
// non-contiguous set bits.
func PrefixFromMask(addr, mask Addr) (Prefix, bool) {
	m := uint32(mask)
	length := 0
	for length < 32 && m&(1<<(31-uint(length))) != 0 {
		length++
	}
	if m != Mask(length) {
		return Prefix{}, false
	}
	return NewPrefix(addr, uint8(length)), true
}

func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Addr, p.Len)
}

// NetMask returns the contiguous network mask for the prefix length.
func (p Prefix) NetMask() Addr {
	return Addr(Mask(int(p.Len)))
}

// Contains reports whether address a lies inside p.
func (p Prefix) Contains(a Addr) bool {
	return uint32(a)&Mask(int(p.Len)) == uint32(p.Addr)
}

// ContainsPrefix reports whether q is a (non-strict) refinement of p:
// q's length is at least p's and q's address matches p's bits.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.Len >= p.Len && uint32(q.Addr)&Mask(int(p.Len)) == uint32(p.Addr)
}

// Compare orders prefixes by address then length, for deterministic output.
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.Addr < q.Addr:
		return -1
	case p.Addr > q.Addr:
		return 1
	case p.Len < q.Len:
		return -1
	case p.Len > q.Len:
		return 1
	}
	return 0
}

// Wildcard matches addresses against a pattern with a Cisco-style wildcard
// mask: set bits in Mask are "don't care".
type Wildcard struct {
	Addr Addr
	Mask Addr // 1 bits are wildcarded
}

// WildcardFromPrefix converts a prefix to the equivalent wildcard matcher.
func WildcardFromPrefix(p Prefix) Wildcard {
	return Wildcard{Addr: p.Addr, Mask: Addr(^Mask(int(p.Len)))}
}

// AnyWildcard matches every address.
var AnyWildcard = Wildcard{Addr: 0, Mask: Addr(^uint32(0))}

// Matches reports whether a matches the wildcard pattern.
func (w Wildcard) Matches(a Addr) bool {
	care := ^uint32(w.Mask)
	return uint32(a)&care == uint32(w.Addr)&care
}

// AsPrefix reports the prefix equivalent of the wildcard if its mask is
// contiguous (all wildcard bits at the bottom).
func (w Wildcard) AsPrefix() (Prefix, bool) {
	care := ^uint32(w.Mask)
	length := 0
	for length < 32 && care&(1<<(31-uint(length))) != 0 {
		length++
	}
	if care != Mask(length) {
		return Prefix{}, false
	}
	return NewPrefix(w.Addr, uint8(length)), true
}

func (w Wildcard) String() string {
	return fmt.Sprintf("%s %s", w.Addr, w.Mask)
}

// PrefixRange is a set of prefixes: those whose address matches
// Prefix.Addr on the first Prefix.Len bits and whose length lies in
// [Lo, Hi]. This is the unit of HeaderLocalize's output vocabulary.
type PrefixRange struct {
	Prefix Prefix
	Lo, Hi uint8
}

// Universe is the range of all prefixes, (0.0.0.0/0, 0-32).
var Universe = PrefixRange{Prefix: Prefix{}, Lo: 0, Hi: 32}

// NewPrefixRange builds a canonical prefix range. Lo is clamped up to the
// prefix length when below it would be vacuous for membership semantics;
// callers that need the raw bounds should construct the struct directly.
func NewPrefixRange(p Prefix, lo, hi uint8) PrefixRange {
	if hi > 32 {
		hi = 32
	}
	return PrefixRange{Prefix: p, Lo: lo, Hi: hi}
}

// ExactRange is the range containing only prefix p itself.
func ExactRange(p Prefix) PrefixRange {
	return PrefixRange{Prefix: p, Lo: p.Len, Hi: p.Len}
}

// IsEmpty reports whether the range denotes no prefixes.
func (r PrefixRange) IsEmpty() bool {
	return r.Lo > r.Hi
}

// ContainsPrefix reports whether prefix q is a member of r: q's address
// matches r's prefix bits and q's length is within [Lo, Hi].
func (r PrefixRange) ContainsPrefix(q Prefix) bool {
	if r.IsEmpty() {
		return false
	}
	if q.Len < r.Lo || q.Len > r.Hi {
		return false
	}
	return uint32(q.Addr)&Mask(int(r.Prefix.Len)) == uint32(r.Prefix.Addr)
}

// Intersect returns the intersection of two prefix ranges and whether it is
// non-empty. Members must match both address patterns (so the longer
// pattern must refine the shorter) and both length intervals.
func (r PrefixRange) Intersect(s PrefixRange) (PrefixRange, bool) {
	if r.IsEmpty() || s.IsEmpty() {
		return PrefixRange{}, false
	}
	longer, shorter := r, s
	if s.Prefix.Len > r.Prefix.Len {
		longer, shorter = s, r
	}
	if !shorter.Prefix.ContainsPrefix(longer.Prefix) {
		return PrefixRange{}, false
	}
	lo := r.Lo
	if s.Lo > lo {
		lo = s.Lo
	}
	hi := r.Hi
	if s.Hi < hi {
		hi = s.Hi
	}
	if lo > hi {
		return PrefixRange{}, false
	}
	// A member must have length >= its own length... membership only
	// constrains the first longer.Prefix.Len address bits, but a prefix of
	// length L has all bits beyond L zero, so patterns longer than hi can
	// still be satisfied; no extra clamping is needed.
	return PrefixRange{Prefix: longer.Prefix, Lo: lo, Hi: hi}, true
}

// ContainsRange reports whether every member of s is a member of r.
// Empty ranges are contained in everything.
func (r PrefixRange) ContainsRange(s PrefixRange) bool {
	if s.IsEmpty() {
		return true
	}
	if r.IsEmpty() {
		return false
	}
	if s.Lo < r.Lo || s.Hi > r.Hi {
		// s admits a length outside r's interval. That length might still
		// be unrealizable only if s were empty, which it is not.
		return false
	}
	if !r.Prefix.ContainsPrefix(s.Prefix) {
		// s's pattern does not refine r's. There can still be containment
		// only when s is empty.
		return false
	}
	// s's members additionally must have length >= s.Lo; if s.Lo is
	// below s.Prefix.Len, members shorter than the pattern length exist
	// only when the pattern's tail bits are zero. Membership as defined
	// compares the full pattern length bits against the member's canonical
	// (zero-padded) address, which the checks above already cover.
	return true
}

// Equal reports semantic equality of two ranges (both empty, or identical
// pattern and interval).
func (r PrefixRange) Equal(s PrefixRange) bool {
	if r.IsEmpty() && s.IsEmpty() {
		return true
	}
	return r.Prefix == s.Prefix && r.Lo == s.Lo && r.Hi == s.Hi
}

// Compare orders ranges for deterministic output: by prefix, then Lo, Hi.
func (r PrefixRange) Compare(s PrefixRange) int {
	if c := r.Prefix.Compare(s.Prefix); c != 0 {
		return c
	}
	switch {
	case r.Lo < s.Lo:
		return -1
	case r.Lo > s.Lo:
		return 1
	case r.Hi < s.Hi:
		return -1
	case r.Hi > s.Hi:
		return 1
	}
	return 0
}

func (r PrefixRange) String() string {
	return fmt.Sprintf("%s : %d-%d", r.Prefix, r.Lo, r.Hi)
}

// ParsePrefixRange parses the "a.b.c.d/len : lo-hi" form produced by
// String, and also accepts a bare prefix (meaning the exact range).
func ParsePrefixRange(s string) (PrefixRange, error) {
	parts := strings.Split(s, ":")
	p, err := ParsePrefix(strings.TrimSpace(parts[0]))
	if err != nil {
		return PrefixRange{}, err
	}
	if len(parts) == 1 {
		return ExactRange(p), nil
	}
	if len(parts) != 2 {
		return PrefixRange{}, fmt.Errorf("netaddr: invalid prefix range %q", s)
	}
	bounds := strings.Split(strings.TrimSpace(parts[1]), "-")
	if len(bounds) != 2 {
		return PrefixRange{}, fmt.Errorf("netaddr: invalid prefix range bounds %q", s)
	}
	lo, err := strconv.Atoi(strings.TrimSpace(bounds[0]))
	if err != nil || lo < 0 || lo > 32 {
		return PrefixRange{}, fmt.Errorf("netaddr: invalid prefix range low bound %q", s)
	}
	hi, err := strconv.Atoi(strings.TrimSpace(bounds[1]))
	if err != nil || hi < 0 || hi > 32 {
		return PrefixRange{}, fmt.Errorf("netaddr: invalid prefix range high bound %q", s)
	}
	return PrefixRange{Prefix: p, Lo: uint8(lo), Hi: uint8(hi)}, nil
}

// MustParsePrefixRange is ParsePrefixRange that panics on error.
func MustParsePrefixRange(s string) PrefixRange {
	r, err := ParsePrefixRange(s)
	if err != nil {
		panic(err)
	}
	return r
}

// PortRange is an inclusive range of transport-layer ports.
type PortRange struct {
	Lo, Hi uint16
}

// AllPorts matches every port.
var AllPorts = PortRange{Lo: 0, Hi: 65535}

// SinglePort is the range containing only p.
func SinglePort(p uint16) PortRange { return PortRange{Lo: p, Hi: p} }

// Contains reports whether p lies in the range.
func (r PortRange) Contains(p uint16) bool { return p >= r.Lo && p <= r.Hi }

func (r PortRange) String() string {
	if r.Lo == r.Hi {
		return strconv.Itoa(int(r.Lo))
	}
	return fmt.Sprintf("%d-%d", r.Lo, r.Hi)
}
