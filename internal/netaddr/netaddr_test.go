package netaddr

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"10.9.0.1", 10<<24 | 9<<16 | 1, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.0", 0, false},
		{"-1.0.0.0", 0, false},
		{"01.2.3.4", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		back, err := ParseAddr(addr.String())
		return err == nil && back == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrBit(t *testing.T) {
	a := MustParseAddr("128.0.0.1")
	if !a.Bit(0) {
		t.Error("bit 0 of 128.0.0.1 should be set")
	}
	if !a.Bit(31) {
		t.Error("bit 31 of 128.0.0.1 should be set")
	}
	for i := 1; i < 31; i++ {
		if a.Bit(i) {
			t.Errorf("bit %d of 128.0.0.1 should be clear", i)
		}
	}
}

func TestMask(t *testing.T) {
	cases := []struct {
		len  int
		want uint32
	}{
		{0, 0},
		{1, 0x80000000},
		{8, 0xff000000},
		{16, 0xffff0000},
		{24, 0xffffff00},
		{31, 0xfffffffe},
		{32, 0xffffffff},
		{-3, 0},
		{40, 0xffffffff},
	}
	for _, c := range cases {
		if got := Mask(c.len); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.len, got, c.want)
		}
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("10.9.1.77/24")
	if p.String() != "10.9.1.0/24" {
		t.Errorf("canonicalization: got %s, want 10.9.1.0/24", p)
	}
	p = MustParsePrefix("10.1.1.2")
	if p.Len != 32 {
		t.Errorf("bare address should parse as /32, got /%d", p.Len)
	}
	if _, err := ParsePrefix("10.0.0.0/33"); err == nil {
		t.Error("ParsePrefix should reject /33")
	}
	if _, err := ParsePrefix("10.0.0.0/-1"); err == nil {
		t.Error("ParsePrefix should reject /-1")
	}
	if _, err := ParsePrefix("10.0.0/8"); err == nil {
		t.Error("ParsePrefix should reject malformed address")
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.9.0.0/16")
	if !p.Contains(MustParseAddr("10.9.200.3")) {
		t.Error("10.9.0.0/16 should contain 10.9.200.3")
	}
	if p.Contains(MustParseAddr("10.10.0.0")) {
		t.Error("10.9.0.0/16 should not contain 10.10.0.0")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseAddr("255.255.255.255")) {
		t.Error("0.0.0.0/0 should contain everything")
	}
}

func TestPrefixContainsPrefix(t *testing.T) {
	p16 := MustParsePrefix("10.9.0.0/16")
	p24 := MustParsePrefix("10.9.1.0/24")
	if !p16.ContainsPrefix(p24) {
		t.Error("/16 should contain refining /24")
	}
	if p24.ContainsPrefix(p16) {
		t.Error("/24 should not contain /16")
	}
	if !p16.ContainsPrefix(p16) {
		t.Error("containment should be reflexive")
	}
	other := MustParsePrefix("10.10.0.0/24")
	if p16.ContainsPrefix(other) {
		t.Error("unrelated prefixes should not be contained")
	}
}

func TestPrefixFromMask(t *testing.T) {
	p, ok := PrefixFromMask(MustParseAddr("10.1.1.2"), MustParseAddr("255.255.255.254"))
	if !ok || p.String() != "10.1.1.2/31" {
		t.Errorf("got %v ok=%v, want 10.1.1.2/31", p, ok)
	}
	if _, ok := PrefixFromMask(MustParseAddr("10.0.0.0"), MustParseAddr("255.0.255.0")); ok {
		t.Error("non-contiguous mask should be rejected")
	}
	p, ok = PrefixFromMask(MustParseAddr("1.2.3.4"), MustParseAddr("255.255.255.255"))
	if !ok || p.Len != 32 {
		t.Errorf("host mask should give /32, got %v", p)
	}
	p, ok = PrefixFromMask(MustParseAddr("1.2.3.4"), MustParseAddr("0.0.0.0"))
	if !ok || p.Len != 0 || p.Addr != 0 {
		t.Errorf("zero mask should give 0.0.0.0/0, got %v", p)
	}
}

func TestWildcard(t *testing.T) {
	// Cisco-style: "9.140.0.0 0.0.1.255" matches 9.140.0.0/23.
	w := Wildcard{Addr: MustParseAddr("9.140.0.0"), Mask: MustParseAddr("0.0.1.255")}
	if !w.Matches(MustParseAddr("9.140.0.3")) {
		t.Error("wildcard should match 9.140.0.3")
	}
	if !w.Matches(MustParseAddr("9.140.1.255")) {
		t.Error("wildcard should match 9.140.1.255")
	}
	if w.Matches(MustParseAddr("9.140.2.0")) {
		t.Error("wildcard should not match 9.140.2.0")
	}
	p, ok := w.AsPrefix()
	if !ok || p.String() != "9.140.0.0/23" {
		t.Errorf("AsPrefix: got %v ok=%v, want 9.140.0.0/23", p, ok)
	}
	nc := Wildcard{Addr: 0, Mask: MustParseAddr("0.255.0.255")}
	if _, ok := nc.AsPrefix(); ok {
		t.Error("non-contiguous wildcard should not convert to prefix")
	}
	if !AnyWildcard.Matches(MustParseAddr("203.0.113.9")) {
		t.Error("AnyWildcard should match everything")
	}
}

func TestWildcardFromPrefixAgrees(t *testing.T) {
	f := func(a uint32, l uint8) bool {
		p := NewPrefix(Addr(a), l%33)
		w := WildcardFromPrefix(p)
		// The wildcard must match exactly the addresses the prefix contains.
		probes := []Addr{Addr(a), p.Addr, Addr(a ^ 1), Addr(a ^ 0x80000000), 0, ^Addr(0)}
		for _, x := range probes {
			if w.Matches(x) != p.Contains(x) {
				return false
			}
		}
		back, ok := w.AsPrefix()
		return ok && back == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixRangeMembership(t *testing.T) {
	r := MustParsePrefixRange("10.9.0.0/16 : 16-32")
	if !r.ContainsPrefix(MustParsePrefix("10.9.1.0/24")) {
		t.Error("range should contain 10.9.1.0/24")
	}
	if !r.ContainsPrefix(MustParsePrefix("10.9.0.0/16")) {
		t.Error("range should contain 10.9.0.0/16 itself")
	}
	if r.ContainsPrefix(MustParsePrefix("10.10.0.0/24")) {
		t.Error("range should not contain 10.10.0.0/24")
	}
	if r.ContainsPrefix(MustParsePrefix("10.0.0.0/8")) {
		t.Error("range should not contain /8 (length below Lo)")
	}
	exact := MustParsePrefixRange("10.9.0.0/16 : 16-16")
	if exact.ContainsPrefix(MustParsePrefix("10.9.1.0/24")) {
		t.Error("exact range should not contain /24")
	}
	if !Universe.ContainsPrefix(MustParsePrefix("203.0.113.0/28")) {
		t.Error("universe should contain everything")
	}
}

func TestPrefixRangeIntersect(t *testing.T) {
	a := MustParsePrefixRange("10.9.0.0/16 : 16-32")
	b := MustParsePrefixRange("10.9.1.0/24 : 24-28")
	got, ok := a.Intersect(b)
	if !ok || !got.Equal(b) {
		t.Errorf("intersect: got %v ok=%v, want %v", got, ok, b)
	}
	// Disjoint address patterns.
	c := MustParsePrefixRange("10.10.0.0/16 : 16-32")
	if _, ok := a.Intersect(c); ok {
		t.Error("disjoint patterns should not intersect")
	}
	// Overlapping patterns, disjoint length intervals.
	d := MustParsePrefixRange("10.9.0.0/16 : 16-16")
	e := MustParsePrefixRange("10.9.0.0/16 : 17-32")
	if _, ok := d.Intersect(e); ok {
		t.Error("disjoint length intervals should not intersect")
	}
	// Universe intersection is identity.
	got, ok = Universe.Intersect(a)
	if !ok || !got.Equal(a) {
		t.Errorf("universe intersect: got %v, want %v", got, a)
	}
}

func TestPrefixRangeContainsRange(t *testing.T) {
	outer := MustParsePrefixRange("10.0.0.0/8 : 8-32")
	inner := MustParsePrefixRange("10.9.0.0/16 : 16-24")
	if !outer.ContainsRange(inner) {
		t.Error("outer should contain inner")
	}
	if inner.ContainsRange(outer) {
		t.Error("inner should not contain outer")
	}
	if !Universe.ContainsRange(outer) {
		t.Error("universe should contain everything")
	}
	empty := PrefixRange{Prefix: MustParsePrefix("10.0.0.0/8"), Lo: 20, Hi: 10}
	if !outer.ContainsRange(empty) {
		t.Error("everything should contain the empty range")
	}
	if empty.ContainsRange(inner) {
		t.Error("empty range should not contain a non-empty one")
	}
}

// Property: intersection agrees with pointwise membership on sampled prefixes.
func TestPrefixRangeIntersectSemantics(t *testing.T) {
	f := func(a1, a2 uint32, l1, l2, lo1, hi1, lo2, hi2 uint8) bool {
		r1 := PrefixRange{Prefix: NewPrefix(Addr(a1), l1%33), Lo: lo1 % 33, Hi: hi1 % 33}
		r2 := PrefixRange{Prefix: NewPrefix(Addr(a2), l2%33), Lo: lo2 % 33, Hi: hi2 % 33}
		inter, ok := r1.Intersect(r2)
		// Sample member candidates derived from both patterns.
		samples := []Prefix{
			NewPrefix(Addr(a1), l1%33), NewPrefix(Addr(a2), l2%33),
			NewPrefix(Addr(a1), 32), NewPrefix(Addr(a2), 32),
			NewPrefix(Addr(a1|a2), (l1%33+l2%33)/2),
			NewPrefix(Addr(a1), lo1%33), NewPrefix(Addr(a2), hi2%33),
		}
		for _, q := range samples {
			in1, in2 := r1.ContainsPrefix(q), r2.ContainsPrefix(q)
			inBoth := in1 && in2
			inInter := ok && inter.ContainsPrefix(q)
			if inBoth != inInter {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: containment agrees with pointwise membership on sampled prefixes.
func TestPrefixRangeContainsRangeSemantics(t *testing.T) {
	f := func(a1, a2 uint32, l1, l2, lo2, hi2 uint8) bool {
		r1 := PrefixRange{Prefix: NewPrefix(Addr(a1), l1%33), Lo: 0, Hi: 32}
		r2 := PrefixRange{Prefix: NewPrefix(Addr(a2), l2%33), Lo: lo2 % 33, Hi: hi2 % 33}
		if !r1.ContainsRange(r2) {
			return true // only verify the positive direction here
		}
		samples := []Prefix{
			NewPrefix(Addr(a2), l2%33), NewPrefix(Addr(a2), 32),
			NewPrefix(Addr(a2), lo2%33), NewPrefix(Addr(a2), hi2%33),
			NewPrefix(Addr(a2|1), 32),
		}
		for _, q := range samples {
			if r2.ContainsPrefix(q) && !r1.ContainsPrefix(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPrefixRangeParseRoundTrip(t *testing.T) {
	for _, s := range []string{
		"10.9.0.0/16 : 16-32",
		"0.0.0.0/0 : 0-32",
		"10.100.0.0/16 : 16-16",
	} {
		r := MustParsePrefixRange(s)
		back := MustParsePrefixRange(r.String())
		if !back.Equal(r) {
			t.Errorf("round trip %q -> %v -> %v", s, r, back)
		}
	}
	if _, err := ParsePrefixRange("10.0.0.0/8 : 8"); err == nil {
		t.Error("should reject missing high bound")
	}
	if _, err := ParsePrefixRange("10.0.0.0/8 : 8-99"); err == nil {
		t.Error("should reject out-of-range bound")
	}
}

func TestPrefixRangeCompareAndString(t *testing.T) {
	a := MustParsePrefixRange("10.9.0.0/16 : 16-32")
	b := MustParsePrefixRange("10.100.0.0/16 : 16-32")
	if a.Compare(b) >= 0 {
		t.Error("10.9/16 should sort before 10.100/16")
	}
	if a.Compare(a) != 0 {
		t.Error("Compare should be reflexive zero")
	}
	if got := a.String(); got != "10.9.0.0/16 : 16-32" {
		t.Errorf("String = %q", got)
	}
}

func TestPortRange(t *testing.T) {
	r := PortRange{Lo: 100, Hi: 200}
	if !r.Contains(100) || !r.Contains(200) || !r.Contains(150) {
		t.Error("port range bounds should be inclusive")
	}
	if r.Contains(99) || r.Contains(201) {
		t.Error("port range should exclude outside values")
	}
	if SinglePort(80).String() != "80" {
		t.Errorf("SinglePort(80).String() = %q", SinglePort(80).String())
	}
	if r.String() != "100-200" {
		t.Errorf("range String = %q", r.String())
	}
	if !AllPorts.Contains(0) || !AllPorts.Contains(65535) {
		t.Error("AllPorts should contain 0 and 65535")
	}
}
