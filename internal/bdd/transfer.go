package bdd

import "fmt"

// Transfer copies the function rooted at n in src into dst, returning the
// equivalent node on dst. The copy goes variable-by-variable — each src
// node (branching on variable v under src's order) becomes an
// Ite(Var(v), high', low') on dst — so the two factories may use
// different variable orders; dst re-canonicalizes under its own. memo
// caches src-to-dst translations across calls for the same factory pair
// (pass the same map when transferring many roots); complement edges
// translate for free by memoizing only regular references and re-applying
// the complement bit, so a function and its negation cost one traversal.
//
// The caller must guarantee every variable in n's support exists on dst.
// Transfer is the merge primitive of the intra-pair striped diff: stripe
// results computed on private factories are replayed onto the main
// factory before localization.
func Transfer(dst, src *Factory, n Node, memo map[Node]Node) Node {
	if src.numVars > dst.numVars {
		panic(fmt.Sprintf("bdd: Transfer from %d-var factory into %d-var factory",
			src.numVars, dst.numVars))
	}
	var rec func(Node) Node
	rec = func(m Node) Node {
		if m <= True {
			return m
		}
		reg := m &^ 1
		if r, ok := memo[reg]; ok {
			return r ^ (m & 1)
		}
		d := src.nodes[reg>>1]
		v := src.varAtLevel(d.level)
		lo := rec(d.low)
		hi := rec(d.high)
		r := dst.Ite(dst.Var(int(v)), hi, lo)
		memo[reg] = r
		return r ^ (m & 1)
	}
	return rec(n)
}
