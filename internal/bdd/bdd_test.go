package bdd

import (
	"testing"
	"testing/quick"
)

func TestTerminals(t *testing.T) {
	f := NewFactory(4)
	if f.Not(True) != False || f.Not(False) != True {
		t.Error("Not on terminals")
	}
	if f.And(True, False) != False || f.And(True, True) != True {
		t.Error("And on terminals")
	}
	if f.Or(True, False) != True || f.Or(False, False) != False {
		t.Error("Or on terminals")
	}
	if f.Xor(True, True) != False || f.Xor(True, False) != True {
		t.Error("Xor on terminals")
	}
}

func TestVarBasics(t *testing.T) {
	f := NewFactory(3)
	x := f.Var(0)
	if f.Not(f.Not(x)) != x {
		t.Error("double negation should be identity (hash consing)")
	}
	if f.NVar(0) != f.Not(x) {
		t.Error("NVar should equal Not(Var)")
	}
	if f.And(x, f.Not(x)) != False {
		t.Error("x ∧ ¬x should be false")
	}
	if f.Or(x, f.Not(x)) != True {
		t.Error("x ∨ ¬x should be true")
	}
	if f.Lit(1, true) != f.Var(1) || f.Lit(1, false) != f.NVar(1) {
		t.Error("Lit dispatch")
	}
}

func TestVarOutOfRangePanics(t *testing.T) {
	f := NewFactory(2)
	defer func() {
		if recover() == nil {
			t.Error("Var(5) should panic")
		}
	}()
	f.Var(5)
}

func TestHashConsingCanonicity(t *testing.T) {
	f := NewFactory(4)
	a := f.Or(f.And(f.Var(0), f.Var(1)), f.And(f.Var(2), f.Var(3)))
	b := f.Or(f.And(f.Var(2), f.Var(3)), f.And(f.Var(1), f.Var(0)))
	if a != b {
		t.Error("equivalent formulas should be the same node")
	}
	// De Morgan.
	l := f.Not(f.And(f.Var(0), f.Var(1)))
	r := f.Or(f.Not(f.Var(0)), f.Not(f.Var(1)))
	if l != r {
		t.Error("De Morgan should hold structurally")
	}
}

// truth builds the full truth table of a node over nvars variables.
func truth(f *Factory, n Node, nvars int) []bool {
	out := make([]bool, 1<<uint(nvars))
	a := make(Assignment, nvars)
	for m := 0; m < len(out); m++ {
		for i := 0; i < nvars; i++ {
			if m&(1<<uint(i)) != 0 {
				a[i] = 1
			} else {
				a[i] = 0
			}
		}
		out[m] = f.Eval(n, a)
	}
	return out
}

// randomNode builds a node from a seed via a little expression generator,
// so quick.Check can explore the operation algebra.
func randomNode(f *Factory, seed uint64, nvars int, depth int) Node {
	if depth == 0 {
		v := int(seed % uint64(nvars))
		if (seed>>8)%2 == 0 {
			return f.Var(v)
		}
		return f.NVar(v)
	}
	l := randomNode(f, seed/7, nvars, depth-1)
	r := randomNode(f, seed/13+5, nvars, depth-1)
	switch (seed >> 4) % 4 {
	case 0:
		return f.And(l, r)
	case 1:
		return f.Or(l, r)
	case 2:
		return f.Xor(l, r)
	default:
		return f.Not(l)
	}
}

func TestOpsAgainstTruthTables(t *testing.T) {
	const nvars = 5
	check := func(s1, s2 uint64) bool {
		f := NewFactory(nvars)
		a := randomNode(f, s1, nvars, 3)
		b := randomNode(f, s2, nvars, 3)
		ta, tb := truth(f, a, nvars), truth(f, b, nvars)
		tAnd := truth(f, f.And(a, b), nvars)
		tOr := truth(f, f.Or(a, b), nvars)
		tXor := truth(f, f.Xor(a, b), nvars)
		tNot := truth(f, f.Not(a), nvars)
		tIte := truth(f, f.Ite(a, b, f.Not(b)), nvars)
		for i := range ta {
			if tAnd[i] != (ta[i] && tb[i]) {
				return false
			}
			if tOr[i] != (ta[i] || tb[i]) {
				return false
			}
			if tXor[i] != (ta[i] != tb[i]) {
				return false
			}
			if tNot[i] != !ta[i] {
				return false
			}
			want := tb[i]
			if !ta[i] {
				want = !tb[i]
			}
			if tIte[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExists(t *testing.T) {
	f := NewFactory(3)
	// n = (x0 ∧ x1) ∨ (¬x0 ∧ x2)
	n := f.Or(f.And(f.Var(0), f.Var(1)), f.And(f.NVar(0), f.Var(2)))
	// ∃x0. n  =  x1 ∨ x2
	got := f.Exists(n, []int{0})
	want := f.Or(f.Var(1), f.Var(2))
	if got != want {
		t.Errorf("Exists: got node %d, want %d", got, want)
	}
	// Quantifying everything from a satisfiable node yields True.
	if f.Exists(n, []int{0, 1, 2}) != True {
		t.Error("Exists over all vars of satisfiable node should be True")
	}
	if f.Exists(False, []int{0, 1, 2}) != False {
		t.Error("Exists of False should be False")
	}
	if f.Exists(n, nil) != n {
		t.Error("Exists over no vars should be identity")
	}
}

func TestExistsAgainstTruthTables(t *testing.T) {
	const nvars = 5
	check := func(s uint64, vraw uint8) bool {
		f := NewFactory(nvars)
		n := randomNode(f, s, nvars, 3)
		v := int(vraw) % nvars
		q := f.Exists(n, []int{v})
		tn, tq := truth(f, n, nvars), truth(f, q, nvars)
		for i := range tq {
			// q(i) should equal n(i with v=0) || n(i with v=1)
			lo := i &^ (1 << uint(v))
			hi := i | 1<<uint(v)
			if tq[i] != (tn[lo] || tn[hi]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRestrict(t *testing.T) {
	f := NewFactory(3)
	n := f.Or(f.And(f.Var(0), f.Var(1)), f.And(f.NVar(0), f.Var(2)))
	if f.Restrict(n, 0, true) != f.Var(1) {
		t.Error("restrict x0=1 should give x1")
	}
	if f.Restrict(n, 0, false) != f.Var(2) {
		t.Error("restrict x0=0 should give x2")
	}
	if f.Restrict(n, 2, true) == n {
		t.Error("restrict on a support variable should change the node")
	}
}

func TestAnySatAndEval(t *testing.T) {
	f := NewFactory(4)
	n := f.AndN(f.Var(0), f.NVar(2), f.Var(3))
	a := f.AnySat(n)
	if a == nil {
		t.Fatal("satisfiable node returned nil assignment")
	}
	if a[0] != 1 || a[2] != 0 || a[3] != 1 {
		t.Errorf("AnySat = %v, want fixed 1,_,0,1", a)
	}
	if a[1] != -1 {
		t.Errorf("variable 1 should be don't-care, got %d", a[1])
	}
	if !f.Eval(n, Assignment{1, 0, 0, 1}) {
		t.Error("Eval should satisfy")
	}
	if f.Eval(n, Assignment{0, 0, 0, 1}) {
		t.Error("Eval should reject x0=0")
	}
	if f.AnySat(False) != nil {
		t.Error("AnySat(False) should be nil")
	}
}

func TestAnySatSatisfies(t *testing.T) {
	check := func(s uint64) bool {
		const nvars = 6
		f := NewFactory(nvars)
		n := randomNode(f, s, nvars, 4)
		a := f.AnySat(n)
		if n == False {
			return a == nil
		}
		// Complete don't-cares with 0 and with 1; both must satisfy.
		for _, fill := range []int8{0, 1} {
			b := make(Assignment, len(a))
			for i, v := range a {
				if v == -1 {
					b[i] = fill
				} else {
					b[i] = v
				}
			}
			if !f.Eval(n, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCube(t *testing.T) {
	f := NewFactory(4)
	a := Assignment{1, -1, 0, -1}
	c := f.Cube(a)
	want := f.And(f.Var(0), f.NVar(2))
	if c != want {
		t.Error("Cube should build the literal conjunction")
	}
	if f.Cube(Assignment{-1, -1, -1, -1}) != True {
		t.Error("all-don't-care cube should be True")
	}
}

func TestSatCount(t *testing.T) {
	f := NewFactory(4)
	if got := f.SatCount(True); got != 16 {
		t.Errorf("SatCount(True) = %v, want 16", got)
	}
	if got := f.SatCount(False); got != 0 {
		t.Errorf("SatCount(False) = %v, want 0", got)
	}
	if got := f.SatCount(f.Var(0)); got != 8 {
		t.Errorf("SatCount(x0) = %v, want 8", got)
	}
	n := f.And(f.Var(0), f.Var(3))
	if got := f.SatCount(n); got != 4 {
		t.Errorf("SatCount(x0∧x3) = %v, want 4", got)
	}
}

func TestSatCountAgainstTruthTables(t *testing.T) {
	check := func(s uint64) bool {
		const nvars = 6
		f := NewFactory(nvars)
		n := randomNode(f, s, nvars, 4)
		tt := truth(f, n, nvars)
		var want float64
		for _, b := range tt {
			if b {
				want++
			}
		}
		return f.SatCount(n) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSupport(t *testing.T) {
	f := NewFactory(5)
	n := f.Or(f.And(f.Var(1), f.Var(3)), f.NVar(4))
	got := f.Support(n)
	want := []int{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Support = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Support = %v, want %v", got, want)
		}
	}
	if f.Support(True) != nil {
		t.Error("Support of terminal should be empty")
	}
}

func TestWalkCubes(t *testing.T) {
	f := NewFactory(3)
	n := f.Or(f.And(f.Var(0), f.Var(1)), f.NVar(0))
	var count int
	var total float64
	f.WalkCubes(n, func(a Assignment) bool {
		count++
		free := 0
		for _, v := range a {
			if v == -1 {
				free++
			}
		}
		total += float64(int(1) << uint(free))
		return true
	})
	if count == 0 {
		t.Fatal("expected cubes")
	}
	if total != f.SatCount(n) {
		t.Errorf("cube weights sum to %v, SatCount is %v", total, f.SatCount(n))
	}
	// Early termination.
	calls := 0
	f.WalkCubes(n, func(Assignment) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early-stop walk made %d calls, want 1", calls)
	}
}

func TestImpliesAndDiff(t *testing.T) {
	f := NewFactory(3)
	a := f.And(f.Var(0), f.Var(1))
	b := f.Var(0)
	if !f.Implies(a, b) {
		t.Error("x0∧x1 should imply x0")
	}
	if f.Implies(b, a) {
		t.Error("x0 should not imply x0∧x1")
	}
	if f.Diff(a, b) != False {
		t.Error("Diff of subset should be empty")
	}
	d := f.Diff(b, a)
	if d != f.And(f.Var(0), f.NVar(1)) {
		t.Error("Diff(x0, x0∧x1) should be x0∧¬x1")
	}
}

func TestEquivIte(t *testing.T) {
	f := NewFactory(3)
	a, b := f.Var(0), f.Var(1)
	if f.Equiv(a, a) != True {
		t.Error("Equiv(a,a) should be True")
	}
	got := f.Ite(a, b, b)
	if got != b {
		t.Error("Ite with equal branches should collapse")
	}
	if f.Ite(a, True, False) != a {
		t.Error("Ite(a, 1, 0) should be a")
	}
	if f.Ite(a, False, True) != f.Not(a) {
		t.Error("Ite(a, 0, 1) should be ¬a")
	}
}

func TestNodeCount(t *testing.T) {
	f := NewFactory(4)
	if f.NodeCount(True) != 0 || f.NodeCount(False) != 0 {
		t.Error("terminals have node count 0")
	}
	if f.NodeCount(f.Var(0)) != 1 {
		t.Error("a literal has node count 1")
	}
	n := f.And(f.Var(0), f.And(f.Var(1), f.Var(2)))
	if f.NodeCount(n) != 3 {
		t.Errorf("chain of 3 conjuncts should have 3 nodes, got %d", f.NodeCount(n))
	}
}

func TestLargeConjunction(t *testing.T) {
	const nvars = 64
	f := NewFactory(nvars)
	n := True
	for i := 0; i < nvars; i++ {
		n = f.And(n, f.Lit(i, i%2 == 0))
	}
	if f.SatCount(n) != 1 {
		t.Error("full cube should have exactly one model")
	}
	a := f.AnySat(n)
	for i := 0; i < nvars; i++ {
		want := int8(0)
		if i%2 == 0 {
			want = 1
		}
		if a[i] != want {
			t.Fatalf("var %d = %d, want %d", i, a[i], want)
		}
	}
}

func TestExistsMultiVarAgainstTruthTables(t *testing.T) {
	const nvars = 6
	check := func(s uint64, v1raw, v2raw uint8) bool {
		f := NewFactory(nvars)
		n := randomNode(f, s, nvars, 3)
		v1 := int(v1raw) % nvars
		v2 := int(v2raw) % nvars
		if v1 == v2 {
			return true
		}
		q := f.Exists(n, []int{v1, v2})
		tn, tq := truth(f, n, nvars), truth(f, q, nvars)
		for i := range tq {
			want := false
			for b1 := 0; b1 < 2 && !want; b1++ {
				for b2 := 0; b2 < 2 && !want; b2++ {
					j := i &^ (1 << uint(v1)) &^ (1 << uint(v2))
					j |= b1 << uint(v1)
					j |= b2 << uint(v2)
					want = want || tn[j]
				}
			}
			if tq[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRestrictAgainstTruthTables(t *testing.T) {
	const nvars = 6
	check := func(s uint64, vraw uint8, val bool) bool {
		f := NewFactory(nvars)
		n := randomNode(f, s, nvars, 3)
		v := int(vraw) % nvars
		r := f.Restrict(n, v, val)
		tn, tr := truth(f, n, nvars), truth(f, r, nvars)
		for i := range tr {
			j := i &^ (1 << uint(v))
			if val {
				j |= 1 << uint(v)
			}
			if tr[i] != tn[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestUniqueTableGrowth forces several rehashes and checks canonicity
// survives them.
func TestUniqueTableGrowth(t *testing.T) {
	f := NewFactory(24)
	// Build a large structure, then rebuild it and require identical
	// node identities (hash consing across rehashes).
	build := func() Node {
		n := True
		for i := 0; i < 24; i += 2 {
			n = f.And(n, f.Or(f.Var(i), f.Var(i+1)))
		}
		m := False
		for i := 0; i < 24; i += 3 {
			m = f.Or(m, f.And(f.Var(i), f.NVar((i+5)%24)))
		}
		return f.Xor(n, m)
	}
	a := build()
	b := build()
	if a != b {
		t.Error("hash consing must survive table growth")
	}
	if f.Size() < 100 {
		t.Errorf("expected a non-trivial arena, got %d nodes", f.Size())
	}
}

// TestOpCacheGrowth: the op cache starts at its initial size and doubles
// as the arena grows, without affecting results.
func TestOpCacheGrowth(t *testing.T) {
	f := NewFactory(24)
	if got := f.Stats().CacheSlots; got != 1<<resetMaxCacheBits {
		t.Fatalf("initial cache slots = %d, want %d", got, 1<<resetMaxCacheBits)
	}
	n := True
	for i := 0; i < 24; i += 2 {
		n = f.And(n, f.Or(f.Var(i), f.Var(i+1)))
	}
	m := False
	for i := 0; i < 24; i++ {
		m = f.Or(m, f.And(f.Var(i), f.NVar((i+7)%24)))
	}
	x := f.Xor(n, m)
	if x == False || x == True {
		t.Fatal("degenerate test structure")
	}
	st := f.Stats()
	if st.Nodes > st.CacheSlots && st.CacheSlots < 1<<opCacheMaxBits {
		t.Errorf("cache (%d slots) lags arena (%d nodes)", st.CacheSlots, st.Nodes)
	}
	// Cached and recomputed results agree.
	if f.Xor(n, m) != x {
		t.Error("cache growth broke op results")
	}
	if st.CacheHits == 0 || st.CacheMisses == 0 {
		t.Errorf("stats counters not moving: %+v", st)
	}
}

// TestFactoryReset: a reset factory behaves exactly like a fresh one and
// reuses its allocations.
func TestFactoryReset(t *testing.T) {
	f := NewFactory(16)
	build := func(g *Factory) Node {
		n := True
		for i := 0; i < 16; i += 2 {
			n = g.And(n, g.Or(g.Var(i), g.NVar(i+1)))
		}
		return n
	}
	before := build(f)
	f.Reset(16)
	if f.Size() != 1 {
		t.Fatalf("arena after reset = %d nodes, want 1", f.Size())
	}
	after := build(f)
	fresh := build(NewFactory(16))
	if after != fresh {
		t.Errorf("reset factory diverges from fresh one: %v vs %v", after, fresh)
	}
	if before != after {
		// Same deterministic build sequence must yield the same node ids.
		t.Errorf("reset changed node numbering: %v vs %v", before, after)
	}
	// Reset can change the variable count.
	f.Reset(8)
	if f.NumVars() != 8 {
		t.Errorf("numVars after reset = %d", f.NumVars())
	}
	got := build2Vars(f)
	if got == False {
		t.Error("reset-to-smaller factory unusable")
	}
	// Exists scratch must have been resized.
	if r := f.Exists(got, []int{0}); r == False {
		t.Error("exists after reset broken")
	}
}

func build2Vars(g *Factory) Node { return g.And(g.Var(0), g.Or(g.Var(1), g.NVar(2))) }

// TestAndNOrNBalanced: the balanced reductions agree with left folds and
// handle the edge arities.
func TestAndNOrNBalanced(t *testing.T) {
	f := NewFactory(12)
	if f.AndN() != True || f.OrN() != False {
		t.Fatal("empty arities")
	}
	if f.AndN(f.Var(3)) != f.Var(3) || f.OrN(f.NVar(4)) != f.NVar(4) {
		t.Fatal("single arities")
	}
	var lits []Node
	for i := 0; i < 12; i++ {
		if i%3 == 0 {
			lits = append(lits, f.NVar(i))
		} else {
			lits = append(lits, f.Var(i))
		}
	}
	foldAnd := True
	foldOr := False
	for _, l := range lits {
		foldAnd = f.And(foldAnd, l)
		foldOr = f.Or(foldOr, l)
	}
	if f.AndN(lits...) != foldAnd {
		t.Error("AndN disagrees with fold")
	}
	if f.OrN(lits...) != foldOr {
		t.Error("OrN disagrees with fold")
	}
	// Short circuits.
	if f.AndN(f.Var(0), False, f.Var(1)) != False {
		t.Error("AndN absorbing")
	}
	if f.OrN(f.Var(0), True, f.Var(1)) != True {
		t.Error("OrN absorbing")
	}
	// Odd operand counts.
	if f.AndN(lits[:5]...) != f.And(f.And(f.And(lits[0], lits[1]), f.And(lits[2], lits[3])), lits[4]) {
		t.Error("odd-arity AndN wrong")
	}
}
