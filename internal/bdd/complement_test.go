package bdd

import (
	"math"
	"testing"
	"testing/quick"
)

// The tests in this file pin down the complement-edge kernel: the
// canonical form of stored nodes, the O(1)-negation identities, and a
// wide differential check of every operation against a naive truth-table
// evaluator at 12 variables (4096-row tables — big enough to exercise
// deep recursions and the op cache, small enough to enumerate).

// TestCanonicalFormInvariant walks the arena after a pile of random
// operations and asserts the representation invariant: the low edge of a
// stored node is never complemented, levels strictly increase downward,
// and no node has equal children.
func TestCanonicalFormInvariant(t *testing.T) {
	const nvars = 12
	f := NewFactory(nvars)
	for s := uint64(1); s < 200; s++ {
		randomNode(f, s*2654435761, nvars, 4)
	}
	for i := 1; i < f.Size(); i++ {
		d := f.nodes[i]
		if d.low&1 != 0 {
			t.Fatalf("node %d: complemented low edge %d", i, d.low)
		}
		if d.low == d.high {
			t.Fatalf("node %d: unreduced equal children %d", i, d.low)
		}
		if d.level >= f.nodes[d.low>>1].level || d.level >= f.nodes[d.high>>1].level {
			t.Fatalf("node %d: level %d not above children (%d, %d)",
				i, d.level, f.nodes[d.low>>1].level, f.nodes[d.high>>1].level)
		}
	}
}

// TestComplementSharing asserts the structural-sharing properties that
// motivate complement edges: Not allocates nothing, a function and its
// negation have identical node counts, and De Morgan duals are pointer
// equal.
func TestComplementSharing(t *testing.T) {
	const nvars = 12
	f := NewFactory(nvars)
	check := func(s1, s2 uint64) bool {
		a := randomNode(f, s1, nvars, 4)
		b := randomNode(f, s2, nvars, 4)
		before := f.Size()
		na := f.Not(a)
		if f.Size() != before {
			t.Fatal("Not allocated nodes")
		}
		if f.Not(na) != a {
			return false
		}
		if f.NodeCount(a) != f.NodeCount(na) {
			return false
		}
		// O(1) structural identities, all checked by pointer equality.
		if f.And(a, na) != False || f.Or(a, na) != True || f.Xor(a, na) != True {
			return false
		}
		if f.Not(f.And(a, b)) != f.Or(f.Not(a), f.Not(b)) {
			return false
		}
		if f.Not(f.Xor(a, b)) != f.Xor(f.Not(a), b) {
			return false
		}
		// Commuted and sign-flipped calls are cache-key-normalized to the
		// same slot and must return identical nodes.
		if f.And(a, b) != f.And(b, a) || f.Xor(a, b) != f.Xor(b, a) {
			return false
		}
		if f.Xor(f.Not(a), f.Not(b)) != f.Xor(a, b) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDifferentialTruthTables12 is the wide differential check: every
// exported operation of the kernel against the naive evaluator at 12
// variables, including the derived ones (Diff, Imp, Equiv) and the
// three-operand Ite with all operands random.
func TestDifferentialTruthTables12(t *testing.T) {
	const nvars = 12
	check := func(s1, s2, s3 uint64) bool {
		f := NewFactory(nvars)
		a := randomNode(f, s1, nvars, 4)
		b := randomNode(f, s2, nvars, 4)
		c := randomNode(f, s3, nvars, 4)
		ta, tb, tc := truth(f, a, nvars), truth(f, b, nvars), truth(f, c, nvars)
		ops := []struct {
			name string
			got  []bool
			want func(i int) bool
		}{
			{"And", truth(f, f.And(a, b), nvars), func(i int) bool { return ta[i] && tb[i] }},
			{"Or", truth(f, f.Or(a, b), nvars), func(i int) bool { return ta[i] || tb[i] }},
			{"Xor", truth(f, f.Xor(a, b), nvars), func(i int) bool { return ta[i] != tb[i] }},
			{"Diff", truth(f, f.Diff(a, b), nvars), func(i int) bool { return ta[i] && !tb[i] }},
			{"Imp", truth(f, f.Imp(a, b), nvars), func(i int) bool { return !ta[i] || tb[i] }},
			{"Equiv", truth(f, f.Equiv(a, b), nvars), func(i int) bool { return ta[i] == tb[i] }},
			{"Ite", truth(f, f.Ite(a, b, c), nvars), func(i int) bool {
				if ta[i] {
					return tb[i]
				}
				return tc[i]
			}},
		}
		for _, op := range ops {
			for i := range op.got {
				if op.got[i] != op.want(i) {
					t.Logf("%s wrong at row %d (seeds %d %d %d)", op.name, i, s1, s2, s3)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSatCountComplement checks the counting identity complement edges
// must preserve: SatCount(n) + SatCount(¬n) = 2^nvars, and SatCount
// agrees with the naive table for both signs.
func TestSatCountComplement(t *testing.T) {
	const nvars = 12
	f := NewFactory(nvars)
	total := math.Exp2(nvars)
	for s := uint64(1); s < 60; s++ {
		n := randomNode(f, s*7919, nvars, 4)
		cn, cnot := f.SatCount(n), f.SatCount(f.Not(n))
		if cn+cnot != total {
			t.Fatalf("seed %d: SatCount(n)+SatCount(¬n) = %v+%v ≠ %v", s, cn, cnot, total)
		}
		want := 0.0
		for _, v := range truth(f, n, nvars) {
			if v {
				want++
			}
		}
		if cn != want {
			t.Fatalf("seed %d: SatCount = %v, table says %v", s, cn, want)
		}
	}
}

// TestExistsComplement checks quantification through complemented
// references — the one traversal where the complement bit must be pushed
// down rather than hoisted (∃x.¬g ≠ ¬∃x.g), so the memo has to key on the
// tagged reference.
func TestExistsComplement(t *testing.T) {
	const nvars = 12
	f := NewFactory(nvars)
	vars := []int{0, 3, 5, 8, 11}
	for s := uint64(1); s < 40; s++ {
		n := randomNode(f, s*104729, nvars, 4)
		for _, m := range []Node{n, f.Not(n)} {
			q := f.Exists(m, vars)
			tm, tq := truth(f, m, nvars), truth(f, q, nvars)
			for row := range tq {
				// ∃-semantics on the table: q(row) iff some setting of the
				// quantified vars makes m true with the rest of row fixed.
				want := false
				for sub := 0; sub < 1<<len(vars) && !want; sub++ {
					r := row
					for j, v := range vars {
						r &^= 1 << v
						if sub&(1<<j) != 0 {
							r |= 1 << v
						}
					}
					want = tm[r]
				}
				if tq[row] != want {
					t.Fatalf("seed %d row %d: Exists = %v, want %v", s, row, tq[row], want)
				}
			}
		}
	}
}

// TestSatisfyInvariants checks AnySat and WalkCubes against Eval for both
// signs of random functions: every returned assignment must satisfy the
// node, and the negation must reject it.
func TestSatisfyInvariants(t *testing.T) {
	const nvars = 12
	f := NewFactory(nvars)
	for s := uint64(1); s < 100; s++ {
		n := randomNode(f, s*31337, nvars, 4)
		if n == False {
			continue
		}
		a := f.AnySat(n)
		if a == nil {
			t.Fatalf("seed %d: non-empty node has no satisfying assignment", s)
		}
		// Complete don't-cares both ways: a cube's every completion
		// satisfies n (don't-care-as-false is what Eval does).
		if !f.Eval(n, a) {
			t.Fatalf("seed %d: AnySat assignment does not satisfy n", s)
		}
		if f.Eval(f.Not(n), a) {
			t.Fatalf("seed %d: AnySat assignment satisfies ¬n", s)
		}
		cubes := 0
		f.WalkCubes(n, func(c Assignment) bool {
			if !f.Eval(n, c) {
				t.Fatalf("seed %d: WalkCubes cube does not satisfy n", s)
			}
			cubes++
			return cubes < 64
		})
		if cubes == 0 {
			t.Fatalf("seed %d: WalkCubes found no cubes for satisfiable n", s)
		}
	}
}

// FuzzKernelDifferential drives the kernel with a byte-program — a stack
// machine over variables and operations — and compares the resulting BDD
// to the naive truth-table evaluation of the same program, at up to 12
// variables.
func FuzzKernelDifferential(fuzz *testing.F) {
	fuzz.Add([]byte{0x01, 0x12, 0x23, 0x80, 0x91, 0xa2, 0xb0, 0xc1})
	fuzz.Add([]byte{0x00, 0x10, 0x80, 0x00, 0x10, 0x90, 0xd0})
	fuzz.Fuzz(func(t *testing.T, prog []byte) {
		const nvars = 12
		if len(prog) > 64 {
			prog = prog[:64]
		}
		f := NewFactory(nvars)
		var stack []Node
		var tables [][]bool
		push := func(n Node, tt []bool) {
			stack = append(stack, n)
			tables = append(tables, tt)
		}
		pop2 := func() (Node, Node, []bool, []bool, bool) {
			if len(stack) < 2 {
				return 0, 0, nil, nil, false
			}
			a, b := stack[len(stack)-2], stack[len(stack)-1]
			ta, tb := tables[len(tables)-2], tables[len(tables)-1]
			stack, tables = stack[:len(stack)-2], tables[:len(tables)-2]
			return a, b, ta, tb, true
		}
		combine := func(ta, tb []bool, op func(x, y bool) bool) []bool {
			out := make([]bool, len(ta))
			for i := range ta {
				out[i] = op(ta[i], tb[i])
			}
			return out
		}
		for _, ins := range prog {
			switch {
			case ins < 0x80: // push literal of variable ins%nvars
				v := int(ins) % nvars
				val := (ins>>5)&1 == 0
				n := f.Lit(v, val)
				tt := make([]bool, 1<<nvars)
				for i := range tt {
					tt[i] = (i&(1<<v) != 0) == val
				}
				push(n, tt)
			case ins < 0x90:
				if a, b, ta, tb, ok := pop2(); ok {
					push(f.And(a, b), combine(ta, tb, func(x, y bool) bool { return x && y }))
				}
			case ins < 0xa0:
				if a, b, ta, tb, ok := pop2(); ok {
					push(f.Or(a, b), combine(ta, tb, func(x, y bool) bool { return x || y }))
				}
			case ins < 0xb0:
				if a, b, ta, tb, ok := pop2(); ok {
					push(f.Xor(a, b), combine(ta, tb, func(x, y bool) bool { return x != y }))
				}
			case ins < 0xc0:
				if len(stack) > 0 {
					i := len(stack) - 1
					stack[i] = f.Not(stack[i])
					nt := make([]bool, len(tables[i]))
					for j, v := range tables[i] {
						nt[j] = !v
					}
					tables[i] = nt
				}
			default:
				if a, b, ta, tb, ok := pop2(); ok {
					push(f.Diff(a, b), combine(ta, tb, func(x, y bool) bool { return x && !y }))
				}
			}
		}
		for i, n := range stack {
			got := truth(f, n, nvars)
			for row, want := range tables[i] {
				if got[row] != want {
					t.Fatalf("stack %d row %d: kernel %v, naive %v", i, row, got[row], want)
				}
			}
		}
	})
}
