package bdd

import "fmt"

// Variable ordering. A factory may decouple variable indices from
// decision levels: nodes branch in *level* order, while the public API
// (Var, Restrict, Exists, Assignment, ...) keeps speaking variable
// indices. The permutation is fixed for the lifetime of a workload — it
// may only be installed on an empty arena — so the apply kernels stay
// permutation-free: they compare the level fields stored in the nodes,
// exactly as before. Only the variable-facing boundary translates.
//
// The zero state (no SetOrder call, or an identity order) keeps the
// historical var == level identity and costs nothing.

// SetOrder installs a variable order: order[k] is the variable index
// branching at level k (order[0] is the topmost variable). The slice
// must be a permutation of [0, NumVars). The arena must be empty — call
// SetOrder immediately after NewFactory or Reset, before any node is
// built — because existing nodes already fixed their levels. An
// identity permutation resets the factory to the fast unpermuted state.
func (f *Factory) SetOrder(order []int) {
	if len(f.nodes) != 1 {
		panic(fmt.Sprintf("bdd: SetOrder on a non-empty arena (%d nodes)", len(f.nodes)))
	}
	if len(order) != f.numVars {
		panic(fmt.Sprintf("bdd: order has %d entries, factory has %d variables", len(order), f.numVars))
	}
	identity := true
	seen := make([]bool, f.numVars)
	for k, v := range order {
		if v < 0 || v >= f.numVars || seen[v] {
			panic(fmt.Sprintf("bdd: order is not a permutation of [0,%d)", f.numVars))
		}
		seen[v] = true
		if v != k {
			identity = false
		}
	}
	if identity {
		f.var2level, f.level2var = nil, nil
		return
	}
	f.var2level = make([]int32, f.numVars)
	f.level2var = make([]int32, f.numVars)
	for k, v := range order {
		f.var2level[v] = int32(k)
		f.level2var[k] = int32(v)
	}
}

// Order returns the current variable order, top level first. With no
// permutation installed it is the identity.
func (f *Factory) Order() []int {
	out := make([]int, f.numVars)
	for k := range out {
		if f.level2var != nil {
			out[k] = int(f.level2var[k])
		} else {
			out[k] = k
		}
	}
	return out
}

// levelOfVar maps a variable index to its decision level.
func (f *Factory) levelOfVar(i int) int32 {
	if f.var2level == nil {
		return int32(i)
	}
	return f.var2level[i]
}

// varAtLevel maps a decision level to the variable branching there; the
// terminal pseudo-level numVars maps to itself.
func (f *Factory) varAtLevel(l int32) int32 {
	if f.level2var == nil || int(l) >= f.numVars {
		return l
	}
	return f.level2var[l]
}

// anySatOrdered is the permutation-aware AnySat: the greedy low-first
// descent of the fast path enumerates variables in *level* order, so its
// witness would change whenever the order does. This variant fixes each
// support variable in increasing variable-index order, preferring false,
// which yields exactly the same assignment the descent produces under
// the identity order (the lexicographically least satisfying input, with
// don't-cares reading as false) — so reports built from witnesses are
// byte-identical across variable orders.
func (f *Factory) anySatOrdered(n Node) Assignment {
	a := make(Assignment, f.numVars)
	for i := range a {
		a[i] = -1
	}
	cur := n
	for _, v := range f.Support(n) {
		if cur <= True {
			a[v] = 0
			continue
		}
		lo := f.Restrict(cur, v, false)
		if lo != False {
			a[v] = 0
			cur = lo
		} else {
			a[v] = 1
			cur = f.Restrict(cur, v, true)
		}
	}
	return a
}
