// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// with complement edges, the symbolic set representation underlying
// Campion's SemanticDiff and HeaderLocalize algorithms (the role JavaBDD
// plays in the original system).
//
// A Factory owns an arena of nodes; a Node is a tagged reference into that
// arena: the high bits index the arena, the lowest bit marks a complemented
// (negated) edge. Nodes are hash-consed and the complement tag is kept
// canonical (the low edge of a stored node is never complemented), so
// structural equality of Node values implies semantic equivalence of the
// represented boolean functions — equivalence checks are O(1) once the
// operands are built, and Not is a single bit flip that allocates nothing:
// a function and its negation share every arena node.
package bdd

import (
	"errors"
	"fmt"
	"math"
)

// Node is a reference to a BDD node inside its Factory, tagged with a
// complement bit (bit 0). The zero value is the constant false; True is
// the complemented edge to the same terminal.
type Node int32

// Terminal nodes. The arena has a single sink (index 0, the empty set);
// True is its complement. A Node n is a terminal exactly when n <= True.
const (
	False Node = 0
	True  Node = 1
)

type nodeData struct {
	level     int32 // variable index; the terminal uses the factory's var count
	low, high Node  // low is never complemented (canonical form)
}

// Binary operations of the shared op cache. With complement edges only two
// kernels are needed: Or is And under De Morgan (a ∨ b = ¬(¬a ∧ ¬b)), which
// lands on the same cache slots as the dual And. 0 marks an empty slot.
const (
	opAnd uint32 = iota + 1
	opXor
)

// opCacheEntry is a slot of the direct-mapped operation cache. Collisions
// overwrite; a miss merely recomputes, so the cache never affects
// correctness. Keys are normalized (operands sorted; complement bits
// stripped where the operation allows), so commuted and negated calls hit
// the same slot.
type opCacheEntry struct {
	op     uint32
	a, b   Node
	result Node
}

// The op cache starts small and doubles as the node arena grows, up to
// the former fixed size. Small policies stay at a few KB instead of the
// old unconditional 256k-entry (≈4 MB) table, which made factories too
// expensive to spawn per worker or per pair.
const (
	opCacheMinBits = 10 // 1k entries
	opCacheMaxBits = 18 // 256k entries ≈ 4 MB
)

// Factory allocates and operates on BDD nodes over a fixed number of
// boolean variables. Variable i branches before variable j whenever i < j.
// A Factory is not safe for concurrent use; spawn one per goroutine
// (they are cheap) or guard with a mutex.
type Factory struct {
	nodes   []nodeData
	numVars int

	// unique is an open-addressed hash table over the node arena
	// (hash-consing). Entries hold node index + 1; 0 is empty.
	unique     []int32
	uniqueMask uint32

	cache     []opCacheEntry
	cacheMask uint32
	iteTmp    map[[3]Node]Node

	// varCache memoizes Var(i): one hash probe per variable lifetime
	// instead of one per literal use. 0 (False) marks an empty slot — a
	// variable node can never be a terminal.
	varCache []Node

	// Variable order (see order.go): var2level maps a variable index to
	// its decision level, level2var is the inverse. nil means identity —
	// the fast path every factory starts in.
	var2level []int32
	level2var []int32

	// quantification scratch, reused across Exists calls
	existsMask []bool

	cacheHits, cacheMisses uint64
	gcRuns, gcReclaimed    uint64

	// Interrupt state (see SetInterrupt). maxNodes bounds the nodes
	// allocated since the last BeginWork; poll is the cancellation check
	// called every interruptPollInterval operations. Both survive Reset —
	// they are factory configuration, not workload state — and are removed
	// with ClearInterrupt before a factory returns to a shared pool.
	maxNodes  int
	workBase  int
	poll      func() error
	sincePoll int32
}

// ErrNodeBudget is the sentinel wrapped by the Abort a factory panics
// with when a computation exceeds the node budget set via SetInterrupt.
var ErrNodeBudget = errors.New("bdd: node budget exceeded")

// Abort is the panic payload a factory throws when an installed interrupt
// fires: either the node budget was exceeded (Err wraps ErrNodeBudget) or
// the poll function returned an error (Err is that error, typically a
// context's). BDD apply kernels recurse deeply, so abandoning a
// computation by unwinding is the only shape that keeps the hot loops
// free of error returns; callers recover the Abort at task boundaries and
// convert it into a structured error. The factory itself stays
// consistent after an Abort unwind — the arena, unique table, and caches
// only ever hold fully-built entries — so it may be Reset and reused.
type Abort struct{ Err error }

// Error makes an Abort usable directly as an error value after recovery.
func (a Abort) Error() string { return a.Err.Error() }

// Unwrap exposes the underlying cause to errors.Is/As.
func (a Abort) Unwrap() error { return a.Err }

// interruptPollInterval is how many operations (apply-kernel recursion
// steps and node allocations) pass between poll calls. Polling a context
// costs a mutex acquisition, so the interval keeps that off the hot path
// while still bounding cancellation latency to microseconds of BDD work.
const interruptPollInterval = 8192

// SetInterrupt installs a resource guard on the factory: computations
// that allocate more than maxNodes nodes since the last BeginWork panic
// with an Abort wrapping ErrNodeBudget (0 disables the bound), and poll —
// when non-nil — is invoked every few thousand operations, aborting the
// computation with its error when it returns one (the caller's
// cancellation check, typically ctx.Err). The disabled configuration
// costs one predictable branch per allocation and per cache probe.
func (f *Factory) SetInterrupt(maxNodes int, poll func() error) {
	f.maxNodes = maxNodes
	f.poll = poll
	f.workBase = len(f.nodes)
	f.sincePoll = 0
}

// BeginWork marks the start of one budgeted unit of work: the node
// budget set via SetInterrupt counts allocations from this point. Task
// runners call it per task so the budget bounds each comparison, not the
// factory's cumulative lifetime.
func (f *Factory) BeginWork() {
	f.workBase = len(f.nodes)
	f.sincePoll = 0
}

// ClearInterrupt removes the budget and poll installed by SetInterrupt —
// mandatory before handing a factory to a pool or another owner, so a
// stale poll closure (over a finished request's context) cannot abort an
// unrelated computation.
func (f *Factory) ClearInterrupt() {
	f.maxNodes = 0
	f.poll = nil
}

// checkInterrupt runs the installed poll and resets the countdown. It is
// kept out of line so the hot-path guard stays a counter compare.
func (f *Factory) checkInterrupt() {
	f.sincePoll = 0
	if f.poll == nil {
		return
	}
	if err := f.poll(); err != nil {
		panic(Abort{Err: err})
	}
}

// NewFactory creates a factory over numVars variables.
func NewFactory(numVars int) *Factory {
	if numVars < 0 || numVars >= 1<<20 {
		panic(fmt.Sprintf("bdd: invalid variable count %d", numVars))
	}
	// Initial table sizes match the Reset decay caps: real workloads
	// blow well past 1k nodes immediately, and starting small just
	// front-loads a cascade of O(n) rehash/regrow steps (measurably ~15%
	// of a medium diff). A factory costs ~0.5 MB up front and the pool
	// recycles it.
	f := &Factory{
		nodes:      make([]nodeData, 1, resetMaxUniqueSlots/4),
		unique:     make([]int32, resetMaxUniqueSlots),
		uniqueMask: resetMaxUniqueSlots - 1,
		cache:      make([]opCacheEntry, 1<<resetMaxCacheBits),
		cacheMask:  1<<resetMaxCacheBits - 1,
		iteTmp:     make(map[[3]Node]Node),
		varCache:   make([]Node, numVars),
		numVars:    numVars,
	}
	f.nodes[0] = nodeData{level: int32(numVars), low: False, high: False}
	return f
}

// Reset table-decay thresholds. One oversized workload used to inflate a
// recycled factory for good: the unique table and op cache only ever
// grew, so every later Reset paid an O(peak) clear (megabytes of memclr
// per pair for a pooled factory that once saw a 10k-rule policy) and the
// memory stayed pinned. Reset now reallocates tables above these caps
// back to the cap; a workload that genuinely needs more simply regrows.
const (
	resetMaxUniqueSlots = 1 << 17 // 128k slots = 512 KB
	resetMaxCacheBits   = 16      // 64k entries = 1 MB
)

// Reset recycles the factory for a fresh workload over numVars variables:
// all nodes and cached results are discarded, but the arena, hash table,
// op-cache, and quantification-scratch allocations are kept (decayed to
// a bounded size when a previous workload left them oversized), so
// resetting between independent comparisons avoids re-paying the
// allocation cost. Any Node obtained before the Reset is invalid
// afterwards.
func (f *Factory) Reset(numVars int) {
	if numVars < 0 || numVars >= 1<<20 {
		panic(fmt.Sprintf("bdd: invalid variable count %d", numVars))
	}
	f.numVars = numVars
	if cap(f.nodes) > 4*resetMaxUniqueSlots {
		f.nodes = make([]nodeData, 1, resetMaxUniqueSlots)
	} else {
		f.nodes = f.nodes[:1]
	}
	f.nodes[0] = nodeData{level: int32(numVars), low: False, high: False}
	if len(f.unique) > resetMaxUniqueSlots {
		f.unique = make([]int32, resetMaxUniqueSlots)
		f.uniqueMask = resetMaxUniqueSlots - 1
	} else {
		clear(f.unique)
	}
	if len(f.cache) > 1<<resetMaxCacheBits {
		f.cache = make([]opCacheEntry, 1<<resetMaxCacheBits)
		f.cacheMask = 1<<resetMaxCacheBits - 1
	} else {
		clear(f.cache)
	}
	clear(f.iteTmp)
	if cap(f.varCache) >= numVars {
		f.varCache = f.varCache[:numVars]
		clear(f.varCache)
	} else {
		f.varCache = make([]Node, numVars)
	}
	// Keep the scratch buffer's capacity — dropping it would defeat the
	// allocation recycling Reset exists for — but clear its contents.
	if cap(f.existsMask) >= numVars {
		f.existsMask = f.existsMask[:numVars]
		clear(f.existsMask)
	} else {
		f.existsMask = nil
	}
	f.cacheHits, f.cacheMisses = 0, 0
	// The variable order belongs to the workload being discarded; the
	// next owner installs its own (or inherits the identity).
	f.var2level, f.level2var = nil, nil
	// The interrupt configuration survives (it belongs to the factory's
	// current owner), but the budget baseline moves to the fresh arena.
	f.workBase = len(f.nodes)
	f.sincePoll = 0
}

// Stats is a snapshot of a factory's allocation and op-cache behavior.
type Stats struct {
	Nodes       int    // live nodes in the arena, including the terminal
	CacheSlots  int    // current op-cache capacity
	UniqueSlots int    // current hash-consing table capacity
	CacheHits   uint64 // op-cache hits since creation or Reset
	CacheMisses uint64 // op-cache misses since creation or Reset
	GCRuns      uint64 // garbage collections since creation (survives Reset)
	GCReclaimed uint64 // nodes reclaimed by those collections
}

// Stats reports the factory's current allocation and cache counters.
func (f *Factory) Stats() Stats {
	return Stats{
		Nodes:       len(f.nodes),
		CacheSlots:  len(f.cache),
		UniqueSlots: len(f.unique),
		CacheHits:   f.cacheHits,
		CacheMisses: f.cacheMisses,
		GCRuns:      f.gcRuns,
		GCReclaimed: f.gcReclaimed,
	}
}

// Delta returns the growth of the monotonic counters since an earlier
// snapshot of the same factory (with no intervening Reset): nodes
// allocated and op-cache hits/misses incurred between the two snapshots.
// The capacity fields keep their current values — they are sizes, not
// counters. Per-interval attribution is what observability wants: a
// factory shared across many comparisons (a policy cache, a pooled
// worker factory) must charge each comparison only its own work, never
// the cumulative totals.
func (s Stats) Delta(since Stats) Stats {
	return Stats{
		Nodes:       s.Nodes - since.Nodes,
		CacheSlots:  s.CacheSlots,
		UniqueSlots: s.UniqueSlots,
		CacheHits:   s.CacheHits - since.CacheHits,
		CacheMisses: s.CacheMisses - since.CacheMisses,
		GCRuns:      s.GCRuns - since.GCRuns,
		GCReclaimed: s.GCReclaimed - since.GCReclaimed,
	}
}

// HitRatio returns the op-cache hit fraction of the snapshot (0 when no
// operations were recorded).
func (s Stats) HitRatio() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

func nodeHash(level int32, low, high Node) uint32 {
	h := uint64(uint32(level))*0x9e3779b1 ^ uint64(uint32(low))*0x85ebca77 ^ uint64(uint32(high))*0xc2b2ae3d
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return uint32(h)
}

func (f *Factory) rehashUnique() {
	newSize := uint32(len(f.unique)) * 2
	table := make([]int32, newSize)
	mask := newSize - 1
	for i := 1; i < len(f.nodes); i++ {
		d := f.nodes[i]
		h := nodeHash(d.level, d.low, d.high) & mask
		for table[h] != 0 {
			h = (h + 1) & mask
		}
		table[h] = int32(i) + 1
	}
	f.unique = table
	f.uniqueMask = mask
}

// cacheIndex maps an op-cache key to a slot by the low bits of the mixed
// key after discarding bit 0. Low-bit multiplicative indexing keeps slots
// near-bijective for the sequential arena indices apply kernels generate,
// but under the tagged node encoding operands are indices shifted left by
// the complement bit, so raw bit 0 is parity-locked by the op constant and
// would crowd each operation's keys into half the table; one right shift
// restores the bijective index bits.
func (f *Factory) cacheIndex(op uint32, a, b Node) uint32 {
	h := uint32(a)*0x9e3779b1 ^ uint32(b)*0x85ebca77 ^ op*0x27d4eb2f
	return (h >> 1) & f.cacheMask
}

// cacheLookup must stay small enough for the compiler to inline into the
// apply kernels — the cancellation poll lives in the kernels' recursion
// steps and in mkRaw, never here.
func (f *Factory) cacheLookup(op uint32, a, b Node) (Node, bool) {
	e := &f.cache[f.cacheIndex(op, a, b)]
	if e.op == op && e.a == a && e.b == b {
		f.cacheHits++
		return e.result, true
	}
	f.cacheMisses++
	return 0, false
}

func (f *Factory) cacheStore(op uint32, a, b, result Node) {
	f.cache[f.cacheIndex(op, a, b)] = opCacheEntry{op: op, a: a, b: b, result: result}
}

// growCache doubles the op cache, re-slotting live entries under the new
// mask. Called when the arena outgrows the cache, so the cache tracks the
// working-set size instead of paying the worst case up front.
func (f *Factory) growCache() {
	old := f.cache
	f.cache = make([]opCacheEntry, len(old)*2)
	f.cacheMask = uint32(len(f.cache)) - 1
	for _, e := range old {
		if e.op != 0 {
			f.cacheStore(e.op, e.a, e.b, e.result)
		}
	}
}

// NumVars returns the number of variables the factory was created with.
func (f *Factory) NumVars() int { return f.numVars }

// Size returns the number of live nodes in the arena (including the
// terminal).
func (f *Factory) Size() int { return len(f.nodes) }

// NodeCount returns the number of distinct arena nodes reachable from n,
// excluding the terminal — the conventional "BDD size" metric. With
// complement edges a function and its negation have the same count.
func (f *Factory) NodeCount(n Node) int {
	seen := map[int32]bool{}
	var walk func(Node)
	var count int
	walk = func(m Node) {
		i := int32(m) >> 1
		if i == 0 || seen[i] {
			return
		}
		seen[i] = true
		count++
		walk(f.nodes[i].low)
		walk(f.nodes[i].high)
	}
	walk(n)
	return count
}

// level returns the branching variable of n (numVars for terminals).
func (f *Factory) level(n Node) int32 { return f.nodes[n>>1].level }

// mk returns the canonical node (level, low, high), enforcing both
// reduction (low == high collapses) and the complement-edge canonical
// form: the low edge of a stored node is never complemented. A request
// with a complemented low edge is stored negated and returned through a
// complemented reference.
func (f *Factory) mk(level int32, low, high Node) Node {
	if low == high {
		return low
	}
	if low&1 != 0 {
		return f.mkRaw(level, low^1, high^1) ^ 1
	}
	return f.mkRaw(level, low, high)
}

// mkRaw hash-conses a node whose low edge is already regular.
func (f *Factory) mkRaw(level int32, low, high Node) Node {
	h := nodeHash(level, low, high) & f.uniqueMask
	for {
		slot := f.unique[h]
		if slot == 0 {
			break
		}
		d := f.nodes[slot-1]
		if d.level == level && d.low == low && d.high == high {
			return Node(slot-1) << 1
		}
		h = (h + 1) & f.uniqueMask
	}
	i := int32(len(f.nodes))
	f.nodes = append(f.nodes, nodeData{level: level, low: low, high: high})
	f.unique[h] = i + 1
	// Budget check after the insert, so the structure is consistent when
	// the Abort unwinds; one compare on the disabled (maxNodes == 0) path.
	if f.maxNodes != 0 && len(f.nodes)-f.workBase > f.maxNodes {
		panic(Abort{Err: fmt.Errorf("%w: %d nodes allocated (budget %d)",
			ErrNodeBudget, len(f.nodes)-f.workBase, f.maxNodes)})
	}
	if f.sincePoll++; f.sincePoll >= interruptPollInterval {
		f.checkInterrupt()
	}
	if uint32(len(f.nodes))*4 > uint32(len(f.unique))*3 {
		f.rehashUnique()
	}
	if len(f.nodes) > 2*len(f.cache) && len(f.cache) < 1<<opCacheMaxBits {
		f.growCache()
	}
	return Node(i) << 1
}

// Var returns the BDD for "variable i is true".
func (f *Factory) Var(i int) Node {
	f.checkVar(i)
	if v := f.varCache[i]; v != 0 {
		return v
	}
	v := f.mk(f.levelOfVar(i), False, True)
	f.varCache[i] = v
	return v
}

// NVar returns the BDD for "variable i is false".
func (f *Factory) NVar(i int) Node {
	return f.Var(i) ^ 1
}

func (f *Factory) checkVar(i int) {
	if i < 0 || i >= f.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, f.numVars))
	}
}

// Lit returns Var(i) if val, else NVar(i).
func (f *Factory) Lit(i int, val bool) Node {
	if val {
		return f.Var(i)
	}
	return f.NVar(i)
}

// Not returns the negation of n: with complement edges, a single bit flip.
// It allocates no nodes and touches no caches.
func (f *Factory) Not(n Node) Node { return n ^ 1 }

// And returns the conjunction of a and b through the specialized And
// kernel: op-specific terminal short-circuits (including the
// complement-edge rule a ∧ ¬a = ∅) and a commutative cache key (operands
// sorted), so And(a,b) and And(b,a) share one slot.
func (f *Factory) And(a, b Node) Node {
	// Cancellation poll. And is the shared recursion step of every binary
	// kernel (Or and the derived operations route here), it is never
	// inlined, and fully-memoized recursions still pass through it — so
	// this counter is a reliable heartbeat that costs an increment and a
	// never-taken branch when no interrupt is installed.
	if f.sincePoll++; f.sincePoll >= interruptPollInterval {
		f.checkInterrupt()
	}
	switch {
	case a == False || b == False:
		return False
	case a == True:
		return b
	case b == True:
		return a
	case a == b:
		return a
	case a^1 == b:
		return False
	}
	if a > b {
		a, b = b, a
	}
	if r, ok := f.cacheLookup(opAnd, a, b); ok {
		return r
	}
	da, db := f.nodes[a>>1], f.nodes[b>>1]
	level := da.level
	if db.level < level {
		level = db.level
	}
	al, ah := a, a
	if da.level == level {
		ca := a & 1
		al, ah = da.low^ca, da.high^ca
	}
	bl, bh := b, b
	if db.level == level {
		cb := b & 1
		bl, bh = db.low^cb, db.high^cb
	}
	r := f.mk(level, f.And(al, bl), f.And(ah, bh))
	f.cacheStore(opAnd, a, b, r)
	return r
}

// AndCofactors returns (a ∧ b, a ∧ ¬b) in one product traversal. This is
// the split every first-match walk performs per clause — the taken guard
// and the fall-through guard — and the two conjunctions recurse over the
// same (a, b) product DAG, so computing them together visits each
// subproblem once instead of twice. Both halves are looked up from and
// stored into the regular And cache under And's own commutative keys, so
// the fused kernel and And stay fully interchangeable: either can serve
// the other's warm entries.
func (f *Factory) AndCofactors(a, b Node) (ab, anb Node) {
	// Cancellation poll — see And.
	if f.sincePoll++; f.sincePoll >= interruptPollInterval {
		f.checkInterrupt()
	}
	switch {
	case a == False:
		return False, False
	case b == True:
		return a, False
	case b == False:
		return False, a
	case a == True:
		return b, b ^ 1
	case a == b:
		return a, False
	case a^1 == b:
		return False, a
	}
	sa1, sb1 := a, b
	if sa1 > sb1 {
		sa1, sb1 = sb1, sa1
	}
	sa2, sb2 := a, b^1
	if sa2 > sb2 {
		sa2, sb2 = sb2, sa2
	}
	r1, ok1 := f.cacheLookup(opAnd, sa1, sb1)
	r2, ok2 := f.cacheLookup(opAnd, sa2, sb2)
	if ok1 && ok2 {
		return r1, r2
	}
	// One half warm: finish the other through the plain kernel rather
	// than re-walking the product for both.
	if ok1 {
		return r1, f.And(a, b^1)
	}
	if ok2 {
		return f.And(a, b), r2
	}
	da, db := f.nodes[a>>1], f.nodes[b>>1]
	level := da.level
	if db.level < level {
		level = db.level
	}
	al, ah := a, a
	if da.level == level {
		ca := a & 1
		al, ah = da.low^ca, da.high^ca
	}
	bl, bh := b, b
	if db.level == level {
		cb := b & 1
		bl, bh = db.low^cb, db.high^cb
	}
	abl, anbl := f.AndCofactors(al, bl)
	abh, anbh := f.AndCofactors(ah, bh)
	ab = f.mk(level, abl, abh)
	anb = f.mk(level, anbl, anbh)
	f.cacheStore(opAnd, sa1, sb1, ab)
	f.cacheStore(opAnd, sa2, sb2, anb)
	return ab, anb
}

// Or returns the disjunction of a and b. After its own terminal
// short-circuits it is the And kernel under De Morgan — with complement
// edges the negations are free, and the dual And shares the cache slots.
func (f *Factory) Or(a, b Node) Node {
	switch {
	case a == True || b == True:
		return True
	case a == False:
		return b
	case b == False:
		return a
	case a == b:
		return a
	case a^1 == b:
		return True
	}
	return f.And(a^1, b^1) ^ 1
}

// AndLit returns Lit(i, val) ∧ n. When the literal branches above n's
// root — the common case in field encoders, which conjoin literals from
// the least significant level upward — the result is a single fresh node
// and the call bypasses the op cache entirely: no lookup, no store, no
// recursion. Other shapes fall back to the And kernel.
func (f *Factory) AndLit(i int, val bool, n Node) Node {
	if n == False {
		return False
	}
	lv := f.levelOfVar(i)
	if n == True || lv < f.level(n) {
		f.checkVar(i)
		if val {
			return f.mk(lv, False, n)
		}
		return f.mk(lv, n, False)
	}
	return f.And(f.Lit(i, val), n)
}

// OrLit returns Lit(i, val) ∨ n, the dual of AndLit with the same
// above-the-root fast path.
func (f *Factory) OrLit(i int, val bool, n Node) Node {
	if n == True {
		return True
	}
	lv := f.levelOfVar(i)
	if n == False || lv < f.level(n) {
		f.checkVar(i)
		if val {
			return f.mk(lv, n, True)
		}
		return f.mk(lv, True, n)
	}
	return f.Or(f.Lit(i, val), n)
}

// Xor returns the exclusive-or of a and b — the "symmetric difference" of
// the two sets, which is exactly the space of behavioral differences when
// a and b encode two components' accept sets. Xor is invariant under
// operand complement up to output complement (¬a ⊕ b = ¬(a ⊕ b)), so the
// cache key strips both complement bits and sorts: all four sign
// combinations of a commuted pair hit one slot.
func (f *Factory) Xor(a, b Node) Node {
	// Cancellation poll — see And.
	if f.sincePoll++; f.sincePoll >= interruptPollInterval {
		f.checkInterrupt()
	}
	switch {
	case a == b:
		return False
	case a^1 == b:
		return True
	case a == False:
		return b
	case b == False:
		return a
	case a == True:
		return b ^ 1
	case b == True:
		return a ^ 1
	}
	c := (a ^ b) & 1
	a &^= 1
	b &^= 1
	if a > b {
		a, b = b, a
	}
	if r, ok := f.cacheLookup(opXor, a, b); ok {
		return r ^ c
	}
	da, db := f.nodes[a>>1], f.nodes[b>>1]
	level := da.level
	if db.level < level {
		level = db.level
	}
	al, ah := a, a
	if da.level == level {
		al, ah = da.low, da.high
	}
	bl, bh := b, b
	if db.level == level {
		bl, bh = db.low, db.high
	}
	r := f.mk(level, f.Xor(al, bl), f.Xor(ah, bh))
	f.cacheStore(opXor, a, b, r)
	return r ^ c
}

// Diff returns a ∧ ¬b, the set difference.
func (f *Factory) Diff(a, b Node) Node { return f.And(a, b^1) }

// Imp returns ¬a ∨ b, logical implication.
func (f *Factory) Imp(a, b Node) Node { return f.Or(a^1, b) }

// Equiv returns the biconditional of a and b as a BDD.
func (f *Factory) Equiv(a, b Node) Node { return f.Xor(a, b) ^ 1 }

// Implies reports whether a ⊆ b as sets (a → b is a tautology).
func (f *Factory) Implies(a, b Node) bool { return f.And(a, b^1) == False }

// Ite returns if-then-else(c, t, e). Operand cases that reduce to a binary
// operation are routed through the specialized kernels; only the
// irreducible three-operand shape recurses here, under the standard
// complement normalization (condition and then-edge regular).
func (f *Factory) Ite(c, t, e Node) Node {
	// Cancellation poll — see And. The irreducible three-operand recursion
	// memoizes in iteTmp, not the op cache, so it needs its own heartbeat.
	if f.sincePoll++; f.sincePoll >= interruptPollInterval {
		f.checkInterrupt()
	}
	if c == True {
		return t
	}
	if c == False {
		return e
	}
	if t == e {
		return t
	}
	// Branches that repeat (or negate) the condition collapse to
	// constants under that branch.
	if t == c {
		t = True
	} else if t == c^1 {
		t = False
	}
	if e == c {
		e = False
	} else if e == c^1 {
		e = True
	}
	switch {
	case t == True && e == False:
		return c
	case t == False && e == True:
		return c ^ 1
	case t == True:
		return f.Or(c, e)
	case t == False:
		return f.And(c^1, e)
	case e == False:
		return f.And(c, t)
	case e == True:
		return f.Or(c^1, t)
	case t == e^1:
		return f.Xor(c, e)
	}
	// Normalize: Ite(¬c, t, e) = Ite(c, e, t); Ite(c, ¬t, ¬e) = ¬Ite(c, t, e).
	if c&1 != 0 {
		c ^= 1
		t, e = e, t
	}
	var neg Node
	if t&1 != 0 {
		t ^= 1
		e ^= 1
		neg = 1
	}
	key := [3]Node{c, t, e}
	if r, ok := f.iteTmp[key]; ok {
		return r ^ neg
	}
	dc, dt, de := f.nodes[c>>1], f.nodes[t>>1], f.nodes[e>>1]
	level := dc.level
	if dt.level < level {
		level = dt.level
	}
	if de.level < level {
		level = de.level
	}
	cl, ch := c, c
	if dc.level == level {
		cl, ch = dc.low, dc.high // c is regular here
	}
	tl, th := t, t
	if dt.level == level {
		tl, th = dt.low, dt.high // t is regular here
	}
	el, eh := e, e
	if de.level == level {
		ce := e & 1
		el, eh = de.low^ce, de.high^ce
	}
	r := f.mk(level, f.Ite(cl, tl, el), f.Ite(ch, th, eh))
	f.iteTmp[key] = r
	return r ^ neg
}

// AndN conjoins its arguments by balanced-tree reduction, which keeps the
// intermediate BDDs of wide conjunctions small compared to a left fold
// (each round halves the operand count instead of accumulating one giant
// running product). AndN() is True.
func (f *Factory) AndN(ns ...Node) Node {
	return f.reduceN(ns, False, f.And)
}

// OrN disjoins its arguments by balanced-tree reduction; OrN() is False.
func (f *Factory) OrN(ns ...Node) Node {
	return f.reduceN(ns, True, f.Or)
}

// reduceN pairwise-combines work until one node remains, short-circuiting
// on the absorbing element of the operation.
func (f *Factory) reduceN(ns []Node, absorbing Node, op func(a, b Node) Node) Node {
	switch len(ns) {
	case 0:
		// The identity element is the negation of the absorbing one.
		return absorbing ^ 1
	case 1:
		return ns[0]
	}
	work := make([]Node, len(ns))
	copy(work, ns)
	for len(work) > 1 {
		k := 0
		for i := 0; i < len(work); i += 2 {
			if i+1 == len(work) {
				work[k] = work[i]
			} else {
				r := op(work[i], work[i+1])
				if r == absorbing {
					return absorbing
				}
				work[k] = r
			}
			k++
		}
		work = work[:k]
	}
	return work[0]
}

// Exists existentially quantifies the given variables out of n.
func (f *Factory) Exists(n Node, vars []int) Node {
	if len(vars) == 0 || n <= True {
		return n
	}
	if len(f.existsMask) < f.numVars {
		f.existsMask = make([]bool, f.numVars)
	}
	for _, v := range vars {
		f.checkVar(v)
		f.existsMask[f.levelOfVar(v)] = true
	}
	memo := make(map[Node]Node)
	r := f.exists(n, memo)
	for _, v := range vars {
		f.existsMask[f.levelOfVar(v)] = false
	}
	return r
}

func (f *Factory) exists(n Node, memo map[Node]Node) Node {
	if n <= True {
		return n
	}
	// Quantification does not commute with complement (∃x.¬g ≠ ¬∃x.g),
	// so the memo keys on the full tagged reference and the complement
	// bit is pushed down onto the cofactors.
	if r, ok := memo[n]; ok {
		return r
	}
	d := f.nodes[n>>1]
	c := n & 1
	lo := f.exists(d.low^c, memo)
	hi := f.exists(d.high^c, memo)
	var r Node
	if f.existsMask[d.level] {
		r = f.Or(lo, hi)
	} else {
		r = f.mk(d.level, lo, hi)
	}
	memo[n] = r
	return r
}

// Restrict fixes variable v to val inside n.
func (f *Factory) Restrict(n Node, v int, val bool) Node {
	f.checkVar(v)
	lv := f.levelOfVar(v)
	memo := make(map[Node]Node)
	var walk func(Node) Node
	walk = func(m Node) Node {
		if m <= True {
			return m
		}
		d := f.nodes[m>>1]
		if d.level > lv {
			return m
		}
		if r, ok := memo[m]; ok {
			return r
		}
		c := m & 1
		lo, hi := d.low^c, d.high^c
		var r Node
		if d.level == lv {
			if val {
				r = hi
			} else {
				r = lo
			}
		} else {
			r = f.mk(d.level, walk(lo), walk(hi))
		}
		memo[m] = r
		return r
	}
	return walk(n)
}

// Assignment is a partial truth assignment: for each variable index,
// 0 means false, 1 means true, -1 means don't-care.
type Assignment []int8

// AnySat returns one satisfying partial assignment of n, or nil if n is
// unsatisfiable. Unmentioned variables are -1 (don't care). The witness
// is canonical across variable orders: it reads as the lexicographically
// least satisfying input by variable index (don't-cares as false), so
// reordering a factory never changes witness-derived output.
func (f *Factory) AnySat(n Node) Assignment {
	if n == False {
		return nil
	}
	if f.level2var != nil {
		return f.anySatOrdered(n)
	}
	a := make(Assignment, f.numVars)
	for i := range a {
		a[i] = -1
	}
	for n != True {
		d := f.nodes[n>>1]
		c := n & 1
		if d.low^c != False {
			a[d.level] = 0
			n = d.low ^ c
		} else {
			a[d.level] = 1
			n = d.high ^ c
		}
	}
	return a
}

// RandSat returns one satisfying total assignment of n, drawn by a random
// descent: at every node with two live branches the coin picks one, and
// variables the path does not constrain are coined too. AnySat always
// returns the same (mostly-zero) witness; RandSat lets samplers draw
// diverse concrete inputs from one difference region. The coin supplies
// the randomness, so callers control determinism (seeded PRNG in tests,
// crypto source never needed). Returns nil if n is unsatisfiable.
func (f *Factory) RandSat(n Node, coin func() bool) Assignment {
	if n == False {
		return nil
	}
	a := make(Assignment, f.numVars)
	level := 0
	for {
		nodeLevel := f.numVars
		if n != True {
			nodeLevel = int(f.nodes[n>>1].level)
		}
		// Variables skipped by the path are unconstrained: coin them.
		for ; level < nodeLevel; level++ {
			if coin() {
				a[f.varAtLevel(int32(level))] = 1
			} else {
				a[f.varAtLevel(int32(level))] = 0
			}
		}
		if n == True {
			return a
		}
		d := f.nodes[n>>1]
		c := n & 1
		lo, hi := d.low^c, d.high^c
		var bit int8
		switch {
		case lo == False:
			bit = 1
		case hi == False:
			bit = 0
		default:
			// Both cofactors satisfiable (non-False ⇒ satisfiable in an
			// ROBDD): free choice.
			if coin() {
				bit = 1
			}
		}
		a[f.varAtLevel(int32(level))] = bit
		level++
		if bit == 1 {
			n = hi
		} else {
			n = lo
		}
	}
}

// Eval evaluates n under a total assignment (don't-cares treated as false).
func (f *Factory) Eval(n Node, a Assignment) bool {
	for n > True {
		d := f.nodes[n>>1]
		c := n & 1
		if v := f.varAtLevel(d.level); int(v) < len(a) && a[v] == 1 {
			n = d.high ^ c
		} else {
			n = d.low ^ c
		}
	}
	return n == True
}

// Cube returns the conjunction of literals described by the assignment
// (don't-care entries are skipped).
func (f *Factory) Cube(a Assignment) Node {
	r := True
	for l := int32(f.numVars) - 1; l >= 0; l-- {
		v := f.varAtLevel(l)
		if int(v) >= len(a) {
			continue
		}
		switch a[v] {
		case 0:
			r = f.mk(l, r, False)
		case 1:
			r = f.mk(l, False, r)
		}
	}
	return r
}

// SatCount returns the number of total assignments satisfying n,
// as a float64 (it can exceed 2^63 for wide factories).
func (f *Factory) SatCount(n Node) float64 {
	memo := map[Node]float64{}
	var walk func(Node) float64
	walk = func(m Node) float64 {
		if m == False {
			return 0
		}
		if m == True {
			return 1
		}
		if c, ok := memo[m]; ok {
			return c
		}
		d := f.nodes[m>>1]
		cb := m & 1
		lo, hi := d.low^cb, d.high^cb
		cl := walk(lo) * math.Exp2(float64(f.level(lo)-d.level-1))
		ch := walk(hi) * math.Exp2(float64(f.level(hi)-d.level-1))
		c := cl + ch
		memo[m] = c
		return c
	}
	return walk(n) * math.Exp2(float64(f.level(n)))
}

// Support returns the sorted list of variables n depends on.
func (f *Factory) Support(n Node) []int {
	seen := map[int32]bool{}
	inSupport := make([]bool, f.numVars)
	var walk func(Node)
	walk = func(m Node) {
		i := int32(m) >> 1
		if i == 0 || seen[i] {
			return
		}
		seen[i] = true
		inSupport[f.varAtLevel(f.nodes[i].level)] = true
		walk(f.nodes[i].low)
		walk(f.nodes[i].high)
	}
	walk(n)
	var vars []int
	for i, b := range inSupport {
		if b {
			vars = append(vars, i)
		}
	}
	return vars
}

// WalkCubes calls fn for each cube (path to True) of n, passing a partial
// assignment valid only for the duration of the call. It stops early if fn
// returns false. The number of cubes can be exponential; callers should
// bound their own iteration.
func (f *Factory) WalkCubes(n Node, fn func(Assignment) bool) {
	a := make(Assignment, f.numVars)
	for i := range a {
		a[i] = -1
	}
	var walk func(Node) bool
	walk = func(m Node) bool {
		if m == False {
			return true
		}
		if m == True {
			return fn(a)
		}
		d := f.nodes[m>>1]
		c := m & 1
		v := f.varAtLevel(d.level)
		a[v] = 0
		if !walk(d.low ^ c) {
			return false
		}
		a[v] = 1
		if !walk(d.high ^ c) {
			return false
		}
		a[v] = -1
		return true
	}
	walk(n)
}

// Level exposes the variable index at the root of n (numVars for
// terminals).
func (f *Factory) Level(n Node) int { return int(f.varAtLevel(f.level(n))) }

// Low and High expose node structure for traversals: the effective
// cofactors of n, with the complement bit pushed down (terminals
// self-loop).
func (f *Factory) Low(n Node) Node  { return f.nodes[n>>1].low ^ (n & 1) }
func (f *Factory) High(n Node) Node { return f.nodes[n>>1].high ^ (n & 1) }
