// Package bdd implements reduced ordered binary decision diagrams (ROBDDs),
// the symbolic set representation underlying Campion's SemanticDiff and
// HeaderLocalize algorithms (the role JavaBDD plays in the original system).
//
// A Factory owns an arena of nodes; a Node is an index into that arena.
// Nodes are hash-consed, so structural equality of the Node values implies
// semantic equivalence of the represented boolean functions, which makes
// equivalence checks O(1) once the operands are built.
package bdd

import (
	"fmt"
	"math"
)

// Node is a reference to a BDD node inside its Factory. The zero value is
// the constant false; True is the constant true.
type Node int32

// Terminal nodes.
const (
	False Node = 0
	True  Node = 1
)

type nodeData struct {
	level     int32 // variable index; terminals use the factory's var count
	low, high Node
}

const (
	opAnd = iota + 1
	opOr
	opXor
	opNot
	opExists
	opIte
)

// opCacheEntry is a slot of the direct-mapped operation cache. Collisions
// overwrite; a miss merely recomputes, so the cache never affects
// correctness.
type opCacheEntry struct {
	op     uint32
	a, b   Node
	result Node
}

// The op cache starts small and doubles as the node arena grows, up to
// the former fixed size. Small policies stay at a few KB instead of the
// old unconditional 256k-entry (≈4 MB) table, which made factories too
// expensive to spawn per worker or per pair.
const (
	opCacheMinBits = 10 // 1k entries
	opCacheMaxBits = 18 // 256k entries ≈ 4 MB
)

// Factory allocates and operates on BDD nodes over a fixed number of
// boolean variables. Variable i branches before variable j whenever i < j.
// A Factory is not safe for concurrent use; spawn one per goroutine
// (they are cheap) or guard with a mutex.
type Factory struct {
	nodes   []nodeData
	numVars int

	// unique is an open-addressed hash table over the node arena
	// (hash-consing). Entries hold node index + 1; 0 is empty.
	unique     []int32
	uniqueMask uint32

	cache     []opCacheEntry
	cacheMask uint32
	iteTmp    map[[3]Node]Node

	// quantification scratch, reused across Exists calls
	existsMask []bool

	cacheHits, cacheMisses uint64
}

// NewFactory creates a factory over numVars variables.
func NewFactory(numVars int) *Factory {
	if numVars < 0 || numVars >= 1<<20 {
		panic(fmt.Sprintf("bdd: invalid variable count %d", numVars))
	}
	f := &Factory{
		nodes:      make([]nodeData, 2, 1024),
		unique:     make([]int32, 1024),
		uniqueMask: 1023,
		cache:      make([]opCacheEntry, 1<<opCacheMinBits),
		cacheMask:  1<<opCacheMinBits - 1,
		iteTmp:     make(map[[3]Node]Node),
		numVars:    numVars,
	}
	f.nodes[False] = nodeData{level: int32(numVars), low: False, high: False}
	f.nodes[True] = nodeData{level: int32(numVars), low: True, high: True}
	return f
}

// Reset recycles the factory for a fresh workload over numVars variables:
// all nodes and cached results are discarded, but the arena, hash table,
// and op-cache allocations are kept, so resetting between independent
// comparisons avoids re-paying the allocation cost. Any Node obtained
// before the Reset is invalid afterwards.
func (f *Factory) Reset(numVars int) {
	if numVars < 0 || numVars >= 1<<20 {
		panic(fmt.Sprintf("bdd: invalid variable count %d", numVars))
	}
	f.numVars = numVars
	f.nodes = f.nodes[:2]
	f.nodes[False] = nodeData{level: int32(numVars), low: False, high: False}
	f.nodes[True] = nodeData{level: int32(numVars), low: True, high: True}
	for i := range f.unique {
		f.unique[i] = 0
	}
	for i := range f.cache {
		f.cache[i] = opCacheEntry{}
	}
	clear(f.iteTmp)
	f.existsMask = nil
	f.cacheHits, f.cacheMisses = 0, 0
}

// Stats is a snapshot of a factory's allocation and op-cache behavior.
type Stats struct {
	Nodes       int    // live nodes in the arena, including terminals
	CacheSlots  int    // current op-cache capacity
	CacheHits   uint64 // op-cache hits since creation or Reset
	CacheMisses uint64 // op-cache misses since creation or Reset
}

// Stats reports the factory's current allocation and cache counters.
func (f *Factory) Stats() Stats {
	return Stats{
		Nodes:       len(f.nodes),
		CacheSlots:  len(f.cache),
		CacheHits:   f.cacheHits,
		CacheMisses: f.cacheMisses,
	}
}

func nodeHash(level int32, low, high Node) uint32 {
	h := uint64(uint32(level))*0x9e3779b1 ^ uint64(uint32(low))*0x85ebca77 ^ uint64(uint32(high))*0xc2b2ae3d
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return uint32(h)
}

func (f *Factory) rehashUnique() {
	newSize := uint32(len(f.unique)) * 2
	table := make([]int32, newSize)
	mask := newSize - 1
	for i := 2; i < len(f.nodes); i++ {
		d := f.nodes[i]
		h := nodeHash(d.level, d.low, d.high) & mask
		for table[h] != 0 {
			h = (h + 1) & mask
		}
		table[h] = int32(i) + 1
	}
	f.unique = table
	f.uniqueMask = mask
}

func (f *Factory) cacheLookup(op uint32, a, b Node) (Node, bool) {
	idx := (uint32(a)*0x9e3779b1 ^ uint32(b)*0x85ebca77 ^ op*0x27d4eb2f) & f.cacheMask
	e := &f.cache[idx]
	if e.op == op && e.a == a && e.b == b {
		f.cacheHits++
		return e.result, true
	}
	f.cacheMisses++
	return 0, false
}

func (f *Factory) cacheStore(op uint32, a, b, result Node) {
	idx := (uint32(a)*0x9e3779b1 ^ uint32(b)*0x85ebca77 ^ op*0x27d4eb2f) & f.cacheMask
	f.cache[idx] = opCacheEntry{op: op, a: a, b: b, result: result}
}

// growCache doubles the op cache, re-slotting live entries under the new
// mask. Called when the arena outgrows the cache, so the cache tracks the
// working-set size instead of paying the worst case up front.
func (f *Factory) growCache() {
	old := f.cache
	f.cache = make([]opCacheEntry, len(old)*2)
	f.cacheMask = uint32(len(f.cache)) - 1
	for _, e := range old {
		if e.op != 0 {
			f.cacheStore(e.op, e.a, e.b, e.result)
		}
	}
}

// NumVars returns the number of variables the factory was created with.
func (f *Factory) NumVars() int { return f.numVars }

// Size returns the number of live nodes in the arena (including terminals).
func (f *Factory) Size() int { return len(f.nodes) }

// NodeCount returns the number of distinct nodes reachable from n,
// excluding terminals — the conventional "BDD size" metric.
func (f *Factory) NodeCount(n Node) int {
	seen := map[Node]bool{}
	var walk func(Node)
	var count int
	walk = func(m Node) {
		if m <= True || seen[m] {
			return
		}
		seen[m] = true
		count++
		walk(f.nodes[m].low)
		walk(f.nodes[m].high)
	}
	walk(n)
	return count
}

func (f *Factory) mk(level int32, low, high Node) Node {
	if low == high {
		return low
	}
	h := nodeHash(level, low, high) & f.uniqueMask
	for {
		slot := f.unique[h]
		if slot == 0 {
			break
		}
		d := f.nodes[slot-1]
		if d.level == level && d.low == low && d.high == high {
			return Node(slot - 1)
		}
		h = (h + 1) & f.uniqueMask
	}
	n := Node(len(f.nodes))
	f.nodes = append(f.nodes, nodeData{level: level, low: low, high: high})
	f.unique[h] = int32(n) + 1
	if uint32(len(f.nodes))*4 > uint32(len(f.unique))*3 {
		f.rehashUnique()
	}
	if len(f.nodes) > len(f.cache) && len(f.cache) < 1<<opCacheMaxBits {
		f.growCache()
	}
	return n
}

// Var returns the BDD for "variable i is true".
func (f *Factory) Var(i int) Node {
	f.checkVar(i)
	return f.mk(int32(i), False, True)
}

// NVar returns the BDD for "variable i is false".
func (f *Factory) NVar(i int) Node {
	f.checkVar(i)
	return f.mk(int32(i), True, False)
}

func (f *Factory) checkVar(i int) {
	if i < 0 || i >= f.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, f.numVars))
	}
}

// Lit returns Var(i) if val, else NVar(i).
func (f *Factory) Lit(i int, val bool) Node {
	if val {
		return f.Var(i)
	}
	return f.NVar(i)
}

// Not returns the negation of n.
func (f *Factory) Not(n Node) Node {
	switch n {
	case False:
		return True
	case True:
		return False
	}
	if r, ok := f.cacheLookup(opNot, n, 0); ok {
		return r
	}
	d := f.nodes[n]
	r := f.mk(d.level, f.Not(d.low), f.Not(d.high))
	f.cacheStore(opNot, n, 0, r)
	return r
}

// And returns the conjunction of a and b.
func (f *Factory) And(a, b Node) Node {
	switch {
	case a == False || b == False:
		return False
	case a == True:
		return b
	case b == True:
		return a
	case a == b:
		return a
	}
	if a > b {
		a, b = b, a
	}
	if r, ok := f.cacheLookup(opAnd, a, b); ok {
		return r
	}
	r := f.apply(opAnd, a, b)
	f.cacheStore(opAnd, a, b, r)
	return r
}

// Or returns the disjunction of a and b.
func (f *Factory) Or(a, b Node) Node {
	switch {
	case a == True || b == True:
		return True
	case a == False:
		return b
	case b == False:
		return a
	case a == b:
		return a
	}
	if a > b {
		a, b = b, a
	}
	if r, ok := f.cacheLookup(opOr, a, b); ok {
		return r
	}
	r := f.apply(opOr, a, b)
	f.cacheStore(opOr, a, b, r)
	return r
}

// Xor returns the exclusive-or of a and b — the "symmetric difference" of
// the two sets, which is exactly the space of behavioral differences when
// a and b encode two components' accept sets.
func (f *Factory) Xor(a, b Node) Node {
	switch {
	case a == b:
		return False
	case a == False:
		return b
	case b == False:
		return a
	case a == True:
		return f.Not(b)
	case b == True:
		return f.Not(a)
	}
	if a > b {
		a, b = b, a
	}
	if r, ok := f.cacheLookup(opXor, a, b); ok {
		return r
	}
	r := f.apply(opXor, a, b)
	f.cacheStore(opXor, a, b, r)
	return r
}

func (f *Factory) apply(op uint8, a, b Node) Node {
	da, db := f.nodes[a], f.nodes[b]
	level := da.level
	if db.level < level {
		level = db.level
	}
	al, ah := a, a
	if da.level == level {
		al, ah = da.low, da.high
	}
	bl, bh := b, b
	if db.level == level {
		bl, bh = db.low, db.high
	}
	var lo, hi Node
	switch op {
	case opAnd:
		lo, hi = f.And(al, bl), f.And(ah, bh)
	case opOr:
		lo, hi = f.Or(al, bl), f.Or(ah, bh)
	case opXor:
		lo, hi = f.Xor(al, bl), f.Xor(ah, bh)
	default:
		panic("bdd: unknown op")
	}
	return f.mk(level, lo, hi)
}

// Diff returns a ∧ ¬b, the set difference.
func (f *Factory) Diff(a, b Node) Node { return f.And(a, f.Not(b)) }

// Imp returns ¬a ∨ b, logical implication.
func (f *Factory) Imp(a, b Node) Node { return f.Or(f.Not(a), b) }

// Equiv returns the biconditional of a and b as a BDD.
func (f *Factory) Equiv(a, b Node) Node { return f.Not(f.Xor(a, b)) }

// Implies reports whether a ⊆ b as sets (a → b is a tautology).
func (f *Factory) Implies(a, b Node) bool { return f.Diff(a, b) == False }

// Ite returns if-then-else(c, t, e).
func (f *Factory) Ite(c, t, e Node) Node {
	switch {
	case c == True:
		return t
	case c == False:
		return e
	case t == e:
		return t
	case t == True && e == False:
		return c
	case t == False && e == True:
		return f.Not(c)
	}
	key := [3]Node{c, t, e}
	if r, ok := f.iteTmp[key]; ok {
		return r
	}
	dc, dt, de := f.nodes[c], f.nodes[t], f.nodes[e]
	level := dc.level
	if dt.level < level {
		level = dt.level
	}
	if de.level < level {
		level = de.level
	}
	branch := func(n Node, d nodeData, high bool) Node {
		if d.level != level {
			return n
		}
		if high {
			return d.high
		}
		return d.low
	}
	lo := f.Ite(branch(c, dc, false), branch(t, dt, false), branch(e, de, false))
	hi := f.Ite(branch(c, dc, true), branch(t, dt, true), branch(e, de, true))
	r := f.mk(level, lo, hi)
	f.iteTmp[key] = r
	return r
}

// AndN conjoins its arguments by balanced-tree reduction, which keeps the
// intermediate BDDs of wide conjunctions small compared to a left fold
// (each round halves the operand count instead of accumulating one giant
// running product). AndN() is True.
func (f *Factory) AndN(ns ...Node) Node {
	return f.reduceN(ns, False, f.And)
}

// OrN disjoins its arguments by balanced-tree reduction; OrN() is False.
func (f *Factory) OrN(ns ...Node) Node {
	return f.reduceN(ns, True, f.Or)
}

// reduceN pairwise-combines work until one node remains, short-circuiting
// on the absorbing element of the operation.
func (f *Factory) reduceN(ns []Node, absorbing Node, op func(a, b Node) Node) Node {
	switch len(ns) {
	case 0:
		// The identity element is the negation of the absorbing one.
		if absorbing == False {
			return True
		}
		return False
	case 1:
		return ns[0]
	}
	work := make([]Node, len(ns))
	copy(work, ns)
	for len(work) > 1 {
		k := 0
		for i := 0; i < len(work); i += 2 {
			if i+1 == len(work) {
				work[k] = work[i]
			} else {
				r := op(work[i], work[i+1])
				if r == absorbing {
					return absorbing
				}
				work[k] = r
			}
			k++
		}
		work = work[:k]
	}
	return work[0]
}

// Exists existentially quantifies the given variables out of n.
func (f *Factory) Exists(n Node, vars []int) Node {
	if len(vars) == 0 || n <= True {
		return n
	}
	if f.existsMask == nil {
		f.existsMask = make([]bool, f.numVars)
	}
	for _, v := range vars {
		f.checkVar(v)
		f.existsMask[v] = true
	}
	memo := make(map[Node]Node)
	r := f.exists(n, memo)
	for _, v := range vars {
		f.existsMask[v] = false
	}
	return r
}

func (f *Factory) exists(n Node, memo map[Node]Node) Node {
	if n <= True {
		return n
	}
	if r, ok := memo[n]; ok {
		return r
	}
	d := f.nodes[n]
	lo := f.exists(d.low, memo)
	hi := f.exists(d.high, memo)
	var r Node
	if f.existsMask[d.level] {
		r = f.Or(lo, hi)
	} else {
		r = f.mk(d.level, lo, hi)
	}
	memo[n] = r
	return r
}

// Restrict fixes variable v to val inside n.
func (f *Factory) Restrict(n Node, v int, val bool) Node {
	f.checkVar(v)
	memo := make(map[Node]Node)
	var walk func(Node) Node
	walk = func(m Node) Node {
		if m <= True {
			return m
		}
		d := f.nodes[m]
		if int(d.level) > v {
			return m
		}
		if r, ok := memo[m]; ok {
			return r
		}
		var r Node
		if int(d.level) == v {
			if val {
				r = d.high
			} else {
				r = d.low
			}
		} else {
			r = f.mk(d.level, walk(d.low), walk(d.high))
		}
		memo[m] = r
		return r
	}
	return walk(n)
}

// Assignment is a partial truth assignment: for each variable index,
// 0 means false, 1 means true, -1 means don't-care.
type Assignment []int8

// AnySat returns one satisfying partial assignment of n, or nil if n is
// unsatisfiable. Unmentioned variables are -1 (don't care).
func (f *Factory) AnySat(n Node) Assignment {
	if n == False {
		return nil
	}
	a := make(Assignment, f.numVars)
	for i := range a {
		a[i] = -1
	}
	for n != True {
		d := f.nodes[n]
		if d.low != False {
			a[d.level] = 0
			n = d.low
		} else {
			a[d.level] = 1
			n = d.high
		}
	}
	return a
}

// Eval evaluates n under a total assignment (don't-cares treated as false).
func (f *Factory) Eval(n Node, a Assignment) bool {
	for n > True {
		d := f.nodes[n]
		if int(d.level) < len(a) && a[d.level] == 1 {
			n = d.high
		} else {
			n = d.low
		}
	}
	return n == True
}

// Cube returns the conjunction of literals described by the assignment
// (don't-care entries are skipped).
func (f *Factory) Cube(a Assignment) Node {
	r := True
	for i := len(a) - 1; i >= 0; i-- {
		switch a[i] {
		case 0:
			r = f.mk(int32(i), r, False)
		case 1:
			r = f.mk(int32(i), False, r)
		}
	}
	return r
}

// SatCount returns the number of total assignments satisfying n,
// as a float64 (it can exceed 2^63 for wide factories).
func (f *Factory) SatCount(n Node) float64 {
	memo := map[Node]float64{}
	var walk func(Node) float64
	walk = func(m Node) float64 {
		if m == False {
			return 0
		}
		if m == True {
			return 1
		}
		if c, ok := memo[m]; ok {
			return c
		}
		d := f.nodes[m]
		cl := walk(d.low) * math.Exp2(float64(f.nodes[d.low].level-d.level-1))
		ch := walk(d.high) * math.Exp2(float64(f.nodes[d.high].level-d.level-1))
		c := cl + ch
		memo[m] = c
		return c
	}
	return walk(n) * math.Exp2(float64(f.nodes[n].level))
}

// Support returns the sorted list of variables n depends on.
func (f *Factory) Support(n Node) []int {
	seen := map[Node]bool{}
	inSupport := make([]bool, f.numVars)
	var walk func(Node)
	walk = func(m Node) {
		if m <= True || seen[m] {
			return
		}
		seen[m] = true
		inSupport[f.nodes[m].level] = true
		walk(f.nodes[m].low)
		walk(f.nodes[m].high)
	}
	walk(n)
	var vars []int
	for i, b := range inSupport {
		if b {
			vars = append(vars, i)
		}
	}
	return vars
}

// WalkCubes calls fn for each cube (path to True) of n, passing a partial
// assignment valid only for the duration of the call. It stops early if fn
// returns false. The number of cubes can be exponential; callers should
// bound their own iteration.
func (f *Factory) WalkCubes(n Node, fn func(Assignment) bool) {
	a := make(Assignment, f.numVars)
	for i := range a {
		a[i] = -1
	}
	var walk func(Node) bool
	walk = func(m Node) bool {
		if m == False {
			return true
		}
		if m == True {
			return fn(a)
		}
		d := f.nodes[m]
		a[d.level] = 0
		if !walk(d.low) {
			return false
		}
		a[d.level] = 1
		if !walk(d.high) {
			return false
		}
		a[d.level] = -1
		return true
	}
	walk(n)
}

// Level exposes the variable index at the root of n (numVars for terminals).
func (f *Factory) Level(n Node) int { return int(f.nodes[n].level) }

// Low and High expose node structure for traversals (terminals self-loop).
func (f *Factory) Low(n Node) Node  { return f.nodes[n].low }
func (f *Factory) High(n Node) Node { return f.nodes[n].high }
