package bdd

// Unique-table garbage collection. Long-lived factories — the pooled
// per-worker factories and the PolicyCache factory that survives across
// pair diffs — otherwise grow monotonically: the arena is append-only
// and hash-consing keeps every node ever built. GC reclaims the nodes
// unreachable from a caller-supplied root set by mark-and-sweep with
// arena compaction, then rebuilds the unique table over the survivors.
//
// Safety with complement edges: a complement bit lives in the Node
// *reference* (bit 0), never in the arena, so marking strips the bit and
// a function and its negation are one arena node — marking either keeps
// both. Compaction preserves arena order, so the "low edge stored
// regular" canonical form and the child-before-parent invariant survive
// unchanged, and levels are untouched (GC composes with SetOrder).
//
// The op cache and the Ite memo key on arena references, which
// compaction invalidates wholesale; both are cleared. That is the memo
// flush that un-pins dead nodes: stale cache entries are the only other
// place arena references could hide. varCache entries are treated as
// implicit roots (one node per variable — negligible — and every caller
// holds literal nodes implicitly).

// GC reclaims all nodes not reachable from roots (plus the factory's
// variable literals), compacts the arena, and returns the roots
// translated to their post-compaction references, in input order. Every
// Node held by the caller that was NOT passed as a root is invalid
// afterwards. Terminals are always valid. The node-budget baseline moves
// to the compacted arena, so an in-flight budget never double-charges
// reclaimed nodes.
func (f *Factory) GC(roots []Node) []Node {
	marked := make([]bool, len(f.nodes))
	marked[0] = true
	stack := make([]int32, 0, 1024)
	push := func(n Node) {
		i := int32(n) >> 1
		if !marked[i] {
			marked[i] = true
			stack = append(stack, i)
		}
	}
	for _, r := range roots {
		push(r)
	}
	for _, v := range f.varCache {
		if v != 0 {
			push(v)
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		d := f.nodes[i]
		push(d.low)
		push(d.high)
	}

	remap := make([]int32, len(f.nodes))
	live := int32(0)
	for i := range f.nodes {
		if marked[i] {
			remap[i] = live
			live++
		}
	}
	reclaimed := len(f.nodes) - int(live)
	f.gcRuns++
	f.gcReclaimed += uint64(reclaimed)
	if reclaimed == 0 {
		return roots
	}
	ref := func(n Node) Node {
		return Node(remap[n>>1])<<1 | n&1
	}
	// Compact in place: children precede parents in the arena, and
	// remap[i] <= i with writes in ascending order, so every source slot
	// is read before it can be overwritten.
	for i := 1; i < len(f.nodes); i++ {
		if !marked[i] {
			continue
		}
		d := f.nodes[i]
		f.nodes[remap[i]] = nodeData{level: d.level, low: ref(d.low), high: ref(d.high)}
	}
	f.nodes = f.nodes[:live]

	// Rebuild hash-consing over the survivors; shrink a table the dead
	// majority had inflated (keeping load below ~40% post-shrink).
	slots := uint32(len(f.unique))
	for slots > 1024 && uint32(live)*4 < slots {
		slots /= 2
	}
	if int(slots) != len(f.unique) {
		f.unique = make([]int32, slots)
	} else {
		clear(f.unique)
	}
	f.uniqueMask = slots - 1
	for i := 1; i < int(live); i++ {
		d := f.nodes[i]
		h := nodeHash(d.level, d.low, d.high) & f.uniqueMask
		for f.unique[h] != 0 {
			h = (h + 1) & f.uniqueMask
		}
		f.unique[h] = int32(i) + 1
	}

	// All memoized results refer to pre-compaction references: flush.
	cacheSlots := len(f.cache)
	for cacheSlots > 1<<opCacheMinBits && int(live) < cacheSlots/2 {
		cacheSlots /= 2
	}
	if cacheSlots != len(f.cache) {
		f.cache = make([]opCacheEntry, cacheSlots)
		f.cacheMask = uint32(cacheSlots) - 1
	} else {
		clear(f.cache)
	}
	clear(f.iteTmp)

	for i, v := range f.varCache {
		if v != 0 {
			f.varCache[i] = ref(v)
		}
	}
	out := make([]Node, len(roots))
	for i, r := range roots {
		out[i] = ref(r)
	}
	if f.workBase > len(f.nodes) {
		f.workBase = len(f.nodes)
	}
	return out
}
