package bdd

import "testing"

// randomFn builds a pseudo-random function over nvars variables on f,
// deterministic in seed, mixing And/Or/Xor/Not so complement edges and
// shared subgraphs both appear.
func randomFn(f *Factory, nvars int, seed uint64, ops int) Node {
	state := seed
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	n := f.Var(next(nvars))
	for i := 0; i < ops; i++ {
		v := f.Var(next(nvars))
		switch next(4) {
		case 0:
			n = f.And(n, v)
		case 1:
			n = f.Or(n, v)
		case 2:
			n = f.Xor(n, v)
		default:
			n = f.Or(f.Not(n), v)
		}
	}
	return n
}

// TestTransferPreservesFunction: a transferred node denotes the same
// boolean function on the destination factory, across different variable
// orders, including complemented references.
func TestTransferPreservesFunction(t *testing.T) {
	const nvars = 8
	for seed := uint64(1); seed <= 20; seed++ {
		src := NewFactory(nvars)
		dst := NewFactory(nvars)
		// Destination runs a reversed variable order: transfer must be
		// order-independent because it rebuilds via Ite on variables.
		order := make([]int, nvars)
		for i := range order {
			order[i] = nvars - 1 - i
		}
		dst.SetOrder(order)

		n := randomFn(src, nvars, seed, 30)
		memo := map[Node]Node{}
		got := Transfer(dst, src, n, memo)
		gotNeg := Transfer(dst, src, n^1, memo)
		if gotNeg != got^1 {
			t.Fatalf("seed %d: complement not preserved", seed)
		}
		a := make(Assignment, nvars)
		for bits := 0; bits < 1<<nvars; bits++ {
			for v := 0; v < nvars; v++ {
				a[v] = int8(bits >> v & 1)
			}
			if src.Eval(n, a) != dst.Eval(got, a) {
				t.Fatalf("seed %d: functions differ at assignment %b", seed, bits)
			}
		}
	}
}

// TestAndCofactors: the fused kernel agrees with the plain And pair on
// random functions, in both cold and warm cache states, including every
// terminal shape.
func TestAndCofactors(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		f := NewFactory(10)
		a := randomFn(f, 10, seed, 40)
		b := randomFn(f, 10, seed*31+7, 40)
		ab, anb := f.AndCofactors(a, b)
		if want := f.And(a, b); ab != want {
			t.Fatalf("seed %d: a∧b = %d, want %d", seed, ab, want)
		}
		if want := f.And(a, b^1); anb != want {
			t.Fatalf("seed %d: a∧¬b = %d, want %d", seed, anb, want)
		}
		// Warm path: the plain-And results above populated the cache; the
		// fused call must return identical nodes from it.
		ab2, anb2 := f.AndCofactors(a, b)
		if ab2 != ab || anb2 != anb {
			t.Fatalf("seed %d: warm fused call diverges", seed)
		}
		for _, c := range []struct{ x, y Node }{
			{False, b}, {True, b}, {a, False}, {a, True}, {a, a}, {a, a ^ 1},
		} {
			gotAB, gotANB := f.AndCofactors(c.x, c.y)
			if gotAB != f.And(c.x, c.y) || gotANB != f.And(c.x, c.y^1) {
				t.Fatalf("seed %d: terminal shape (%d,%d) diverges", seed, c.x, c.y)
			}
		}
	}
}

// TestTransferMemoSharing: the memo makes repeated transfers of the same
// node free and consistent.
func TestTransferMemoSharing(t *testing.T) {
	src := NewFactory(6)
	dst := NewFactory(6)
	n := randomFn(src, 6, 7, 25)
	memo := map[Node]Node{}
	a := Transfer(dst, src, n, memo)
	b := Transfer(dst, src, n, memo)
	if a != b {
		t.Fatalf("repeated transfer differs: %d vs %d", a, b)
	}
	if got := Transfer(dst, src, False, memo); got != False {
		t.Fatalf("Transfer(False) = %d", got)
	}
	if got := Transfer(dst, src, True, memo); got != True {
		t.Fatalf("Transfer(True) = %d", got)
	}
}
