package bdd

import (
	"context"
	"errors"
	"testing"
)

// buildWide allocates plenty of distinct nodes: the conjunction-of-xors
// over many variables has no sharing to exploit, so every step allocates.
func buildWide(f *Factory, vars int) Node {
	acc := True
	for i := 0; i+1 < vars; i += 2 {
		acc = f.And(acc, f.Xor(f.Var(i), f.Var(i+1)))
	}
	return acc
}

// recoverAbort runs fn and returns the Abort it panicked with (nil if it
// returned normally).
func recoverAbort(fn func()) (a *Abort) {
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(Abort)
			if !ok {
				panic(r)
			}
			a = &ab
		}
	}()
	fn()
	return nil
}

func TestNodeBudgetAborts(t *testing.T) {
	f := NewFactory(64)
	f.SetInterrupt(16, nil)
	a := recoverAbort(func() { buildWide(f, 64) })
	if a == nil {
		t.Fatal("expected a budget Abort")
	}
	if !errors.Is(a, ErrNodeBudget) {
		t.Fatalf("Abort should wrap ErrNodeBudget, got %v", a.Err)
	}
	// The factory must remain consistent: Reset and redo the same work
	// without a budget.
	f.ClearInterrupt()
	f.Reset(64)
	if n := buildWide(f, 64); n == False {
		t.Fatal("post-abort rebuild produced the empty set")
	}
}

func TestBudgetCountsFromBeginWork(t *testing.T) {
	f := NewFactory(64)
	buildWide(f, 32) // pre-existing arena contents
	f.SetInterrupt(0, nil)
	f.maxNodes = 1 << 20 // wide budget: nothing should abort
	f.BeginWork()
	if a := recoverAbort(func() { buildWide(f, 64) }); a != nil {
		t.Fatalf("wide budget aborted: %v", a.Err)
	}
	// A tight budget measured from BeginWork ignores the earlier nodes.
	f.Reset(64)
	big := buildWide(f, 48)
	f.maxNodes = 8
	f.BeginWork()
	a := recoverAbort(func() {
		// Fresh structure, disjoint variables: must allocate > 8 nodes.
		r := f.And(big, buildWide(f, 64))
		_ = r
	})
	if a == nil {
		t.Fatal("tight post-BeginWork budget did not abort")
	}
}

func TestInterruptPollAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := NewFactory(128)
	f.SetInterrupt(0, func() error { return ctx.Err() })
	a := recoverAbort(func() {
		// Enough work to cross the poll interval several times.
		for i := 0; i < 64; i++ {
			f.Reset(128)
			buildWide(f, 128)
		}
	})
	if a == nil {
		t.Fatal("canceled context never aborted the computation")
	}
	if !errors.Is(a, context.Canceled) {
		t.Fatalf("Abort should wrap the context error, got %v", a.Err)
	}
}

func TestClearInterruptStopsAborting(t *testing.T) {
	f := NewFactory(64)
	f.SetInterrupt(4, func() error { return context.Canceled })
	f.ClearInterrupt()
	if a := recoverAbort(func() { buildWide(f, 64) }); a != nil {
		t.Fatalf("cleared interrupt still aborted: %v", a.Err)
	}
}
