package juniper

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/netaddr"
)

// figure1b is the Juniper excerpt from Figure 1(b) of the paper (formatted
// as standard JunOS).
const figure1b = `policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    community COMM members [ 10:10 10:11 ];
    policy-statement POL {
        term rule1 {
            from prefix-list NETS;
            then reject;
        }
        term rule2 {
            from community COMM;
            then reject;
        }
        term rule3 {
            then {
                local-preference 30;
                accept;
            }
        }
    }
}
`

func TestParseFigure1b(t *testing.T) {
	cfg, err := Parse("juniper.cfg", figure1b)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range cfg.Unrecognized {
		t.Errorf("unrecognized: %s %q", u.Location(), u.Text())
	}
	pl := cfg.PrefixLists["NETS"]
	if pl == nil || len(pl.Entries) != 2 {
		t.Fatalf("NETS = %+v", pl)
	}
	// Juniper prefix-list entries are EXACT: 16-16, not 16-32. This is
	// Difference 1 of the paper.
	want := netaddr.MustParsePrefixRange("10.9.0.0/16 : 16-16")
	if !pl.Entries[0].Range.Equal(want) {
		t.Errorf("NETS[0] = %v, want %v", pl.Entries[0].Range, want)
	}

	cl := cfg.CommunityLists["COMM"]
	if cl == nil || len(cl.Entries) != 1 {
		t.Fatalf("COMM = %+v", cl)
	}
	// Juniper members are a conjunction: the route must carry BOTH
	// communities. This is Difference 2 of the paper.
	if len(cl.Entries[0].Conjuncts) != 2 {
		t.Errorf("COMM conjuncts = %+v", cl.Entries[0].Conjuncts)
	}

	rm := cfg.RouteMaps["POL"]
	if rm == nil || len(rm.Clauses) != 3 {
		t.Fatalf("POL = %+v", rm)
	}
	if rm.DefaultAction != ir.Permit {
		t.Error("JunOS policy default should be permit")
	}
	if rm.Clauses[0].Name != "rule1" || rm.Clauses[0].Action != ir.ClauseDeny {
		t.Errorf("rule1 = %+v", rm.Clauses[0])
	}
	if m, ok := rm.Clauses[0].Matches[0].(ir.MatchPrefixList); !ok || m.Lists[0] != "NETS" {
		t.Errorf("rule1 match = %+v", rm.Clauses[0].Matches)
	}
	if rm.Clauses[2].Action != ir.ClausePermit {
		t.Errorf("rule3 = %+v", rm.Clauses[2])
	}
	if s, ok := rm.Clauses[2].Sets[0].(ir.SetLocalPref); !ok || s.Value != 30 {
		t.Errorf("rule3 sets = %+v", rm.Clauses[2].Sets)
	}
	// Text localization: rule3's span includes its then block.
	if !strings.Contains(rm.Clauses[2].Span.Text(), "local-preference 30") {
		t.Errorf("rule3 text = %q", rm.Clauses[2].Span.Text())
	}
}

func TestParseInterfacesAndFilters(t *testing.T) {
	cfg, err := Parse("t", `system { host-name borderJ; }
interfaces {
    ge-0/0/0 {
        description "uplink to ISP";
        unit 0 {
            family inet {
                address 10.0.12.2/24;
                filter {
                    input EDGE_IN;
                    output EDGE_OUT;
                }
            }
        }
    }
    ge-0/0/1 {
        disable;
        unit 0 { family inet { address 192.0.2.1/30; } }
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Hostname != "borderJ" {
		t.Errorf("hostname = %q", cfg.Hostname)
	}
	if len(cfg.Interfaces) != 2 {
		t.Fatalf("interfaces = %d", len(cfg.Interfaces))
	}
	i0 := cfg.Interfaces[0]
	if i0.Name != "ge-0/0/0.0" {
		t.Errorf("i0 name = %q", i0.Name)
	}
	if !i0.HasAddress || i0.Subnet.String() != "10.0.12.0/24" || i0.Address.String() != "10.0.12.2" {
		t.Errorf("i0 addr = %+v", i0)
	}
	if i0.ACLIn != "EDGE_IN" || i0.ACLOut != "EDGE_OUT" {
		t.Errorf("i0 filters = %q %q", i0.ACLIn, i0.ACLOut)
	}
	if i0.Description != "uplink to ISP" {
		t.Errorf("i0 description = %q", i0.Description)
	}
	if !cfg.Interfaces[1].Shutdown {
		t.Error("disabled interface should be shutdown")
	}
}

func TestParseFirewallFilter(t *testing.T) {
	cfg, err := Parse("t", `firewall {
    family inet {
        filter VM_FILTER {
            term permit_whitelist {
                from {
                    source-address {
                        9.140.0.0/23;
                    }
                    protocol tcp;
                    destination-port [ 80 443 ];
                }
                then accept;
            }
            term block_icmp {
                from {
                    protocol icmp;
                    icmp-type echo-request;
                }
                then {
                    count rejected;
                    discard;
                }
            }
            term allow-established {
                from {
                    protocol tcp;
                    tcp-established;
                    source-port 1024-65535;
                }
                then accept;
            }
        }
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	acl := cfg.ACLs["VM_FILTER"]
	if acl == nil || len(acl.Lines) != 3 {
		t.Fatalf("VM_FILTER = %+v (unrecognized %v)", acl, cfg.Unrecognized)
	}
	l0 := acl.Lines[0]
	if l0.Action != ir.Permit || l0.Protocol.Number != ir.ProtoNumTCP {
		t.Errorf("l0 = %+v", l0)
	}
	if len(l0.Src) != 1 || !l0.Src[0].Matches(netaddr.MustParseAddr("9.140.1.9")) {
		t.Errorf("l0 src = %+v", l0.Src)
	}
	if len(l0.DstPorts) != 2 || l0.DstPorts[1].Lo != 443 {
		t.Errorf("l0 ports = %+v", l0.DstPorts)
	}
	l1 := acl.Lines[1]
	if l1.Action != ir.Deny || l1.ICMPType != 8 {
		t.Errorf("l1 = %+v", l1)
	}
	l2 := acl.Lines[2]
	if !l2.Established || len(l2.SrcPorts) != 1 || l2.SrcPorts[0].Lo != 1024 || l2.SrcPorts[0].Hi != 65535 {
		t.Errorf("l2 = %+v", l2)
	}
}

func TestParseStaticRoutes(t *testing.T) {
	cfg, err := Parse("t", `routing-options {
    static {
        route 10.1.1.2/31 {
            next-hop 10.2.2.2;
            preference 7;
            tag 500;
        }
        route 0.0.0.0/0 next-hop 192.0.2.1;
        route 10.5.0.0/16 discard;
    }
    autonomous-system 65001;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.StaticRoutes) != 3 {
		t.Fatalf("routes = %d", len(cfg.StaticRoutes))
	}
	r0 := cfg.StaticRoutes[0]
	if r0.Prefix.String() != "10.1.1.2/31" || !r0.HasNextHop || r0.NextHop.String() != "10.2.2.2" {
		t.Errorf("r0 = %+v", r0)
	}
	if r0.AdminDistance != 7 || !r0.HasTag || r0.Tag != 500 {
		t.Errorf("r0 attrs = %+v", r0)
	}
	r1 := cfg.StaticRoutes[1]
	if r1.Prefix.Len != 0 || !r1.HasNextHop || r1.AdminDistance != 5 {
		t.Errorf("r1 = %+v (JunOS default preference is 5)", r1)
	}
	if cfg.StaticRoutes[2].Interface != "discard" {
		t.Errorf("r2 = %+v", cfg.StaticRoutes[2])
	}
	if cfg.BGP == nil || cfg.BGP.ASN != 65001 {
		t.Errorf("asn = %+v", cfg.BGP)
	}
}

func TestParseBGP(t *testing.T) {
	cfg, err := Parse("t", `routing-options { autonomous-system 65001; }
protocols {
    bgp {
        group ebgp-peers {
            type external;
            peer-as 65002;
            export [ EXP1 EXP2 ];
            neighbor 10.0.12.1 {
                description "to core";
                import IMP1;
            }
            neighbor 10.0.12.5 {
                peer-as 65003;
                export EXP3;
            }
        }
        group rr-clients {
            type internal;
            cluster 10.0.0.2;
            neighbor 10.0.13.3;
        }
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	b := cfg.BGP
	if b == nil || b.ASN != 65001 {
		t.Fatalf("bgp = %+v", b)
	}
	n1 := b.Neighbors["10.0.12.1"]
	if n1 == nil || n1.RemoteAS != 65002 || n1.Description != "to core" {
		t.Fatalf("n1 = %+v", n1)
	}
	if len(n1.ImportPolicies) != 1 || n1.ImportPolicies[0] != "IMP1" {
		t.Errorf("n1 import = %v", n1.ImportPolicies)
	}
	if len(n1.ExportPolicies) != 2 || n1.ExportPolicies[0] != "EXP1" {
		t.Errorf("n1 export (group inherit) = %v", n1.ExportPolicies)
	}
	if !n1.SendCommunity {
		t.Error("JunOS neighbors send communities by default")
	}
	n2 := b.Neighbors["10.0.12.5"]
	if n2.RemoteAS != 65003 {
		t.Errorf("neighbor peer-as should override group: %+v", n2)
	}
	if len(n2.ExportPolicies) != 1 || n2.ExportPolicies[0] != "EXP3" {
		t.Errorf("n2 export override = %v", n2.ExportPolicies)
	}
	rr := b.Neighbors["10.0.13.3"]
	if rr == nil || !rr.RouteReflectorClient {
		t.Errorf("cluster group should make clients: %+v", rr)
	}
	if rr.RemoteAS != 65001 {
		t.Errorf("internal group should default peer-as to local: %+v", rr)
	}
}

func TestParseOSPF(t *testing.T) {
	cfg, err := Parse("t", `interfaces {
    ge-0/0/0 { unit 0 { family inet { address 10.0.12.2/24; } } }
}
protocols {
    ospf {
        export BGP-TO-OSPF;
        area 0.0.0.0 {
            interface ge-0/0/0.0 {
                metric 5;
                hello-interval 10;
                dead-interval 40;
            }
            interface lo0.0 {
                passive;
            }
        }
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	o := cfg.OSPF
	if o == nil {
		t.Fatal("no ospf")
	}
	oi := o.Interfaces["ge-0/0/0.0"]
	if oi == nil || oi.Cost != 5 || oi.Area != 0 || oi.HelloInterval != 10 || oi.DeadInterval != 40 {
		t.Fatalf("oi = %+v", oi)
	}
	if oi.Subnet.String() != "10.0.12.0/24" {
		t.Errorf("oi subnet = %v", oi.Subnet)
	}
	lo := o.Interfaces["lo0.0"]
	if lo == nil || !lo.Passive {
		t.Errorf("lo = %+v", lo)
	}
	if len(o.Redistribute) != 1 || o.Redistribute[0].RouteMap != "BGP-TO-OSPF" {
		t.Errorf("redistribute = %+v", o.Redistribute)
	}
}

func TestRouteFilterModifiers(t *testing.T) {
	cfg, err := Parse("t", `policy-options {
    policy-statement RF {
        term t1 {
            from {
                route-filter 10.0.0.0/8 orlonger;
                route-filter 10.9.0.0/16 exact;
                route-filter 10.10.0.0/16 upto /24;
                route-filter 10.11.0.0/16 prefix-length-range /20-/24;
                route-filter 10.12.0.0/16 longer;
            }
            then accept;
        }
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	rm := cfg.RouteMaps["RF"]
	if rm == nil || len(rm.Clauses) != 1 {
		t.Fatalf("RF = %+v", rm)
	}
	m, ok := rm.Clauses[0].Matches[0].(ir.MatchPrefixRanges)
	if !ok || len(m.Ranges) != 5 {
		t.Fatalf("ranges = %+v", rm.Clauses[0].Matches)
	}
	wants := []string{
		"10.0.0.0/8 : 8-32",
		"10.9.0.0/16 : 16-16",
		"10.10.0.0/16 : 16-24",
		"10.11.0.0/16 : 20-24",
		"10.12.0.0/16 : 17-32",
	}
	for i, want := range wants {
		if got := m.Ranges[i].String(); got != want {
			t.Errorf("range %d = %s, want %s", i, got, want)
		}
	}
}

func TestPolicyActionsAndCommunitySets(t *testing.T) {
	cfg, err := Parse("t", `policy-options {
    community TAG members 65000:99;
    policy-statement ACT {
        term add-tag {
            from protocol static;
            then {
                community add TAG;
                metric 10;
                next term;
            }
        }
        term reroute {
            from {
                metric 10;
                tag 5;
            }
            then {
                next-hop 10.0.0.254;
                as-path-prepend 65000 65000;
                reject;
            }
        }
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	rm := cfg.RouteMaps["ACT"]
	if rm == nil || len(rm.Clauses) != 2 {
		t.Fatalf("ACT = %+v", rm)
	}
	t1 := rm.Clauses[0]
	if t1.Action != ir.ClauseFallthrough {
		t.Errorf("next term should fall through: %+v", t1)
	}
	if sc, ok := t1.Sets[0].(ir.SetCommunities); !ok || !sc.Additive || sc.Communities[0] != "65000:99" {
		t.Errorf("community add = %+v", t1.Sets)
	}
	if mp, ok := t1.Matches[0].(ir.MatchProtocol); !ok || mp.Protocols[0] != ir.ProtoStatic {
		t.Errorf("from protocol = %+v", t1.Matches)
	}
	t2 := rm.Clauses[1]
	if t2.Action != ir.ClauseDeny {
		t.Errorf("t2 action = %v", t2.Action)
	}
	if len(t2.Matches) != 2 {
		t.Errorf("t2 matches = %+v", t2.Matches)
	}
	var sawNH, sawPrepend bool
	for _, s := range t2.Sets {
		switch s := s.(type) {
		case ir.SetNextHop:
			sawNH = s.Addr.String() == "10.0.0.254"
		case ir.SetASPathPrepend:
			sawPrepend = len(s.ASNs) == 2
		}
	}
	if !sawNH || !sawPrepend {
		t.Errorf("t2 sets = %+v", t2.Sets)
	}
}

func TestTermWithoutThenFallsThrough(t *testing.T) {
	cfg, _ := Parse("t", `policy-options {
    policy-statement P {
        term silent {
            from protocol bgp;
        }
        term final {
            then accept;
        }
    }
}
`)
	rm := cfg.RouteMaps["P"]
	if rm.Clauses[0].Action != ir.ClauseFallthrough {
		t.Error("term without then should fall through")
	}
}

func TestRegexCommunityMembers(t *testing.T) {
	cfg, _ := Parse("t", `policy-options {
    community WILD members "^65000:.*$";
    community PLAIN members 65000:1;
}
`)
	wild := cfg.CommunityLists["WILD"]
	if wild == nil || wild.Entries[0].Conjuncts[0].Regex != "^65000:.*$" {
		t.Fatalf("WILD = %+v", wild)
	}
	plain := cfg.CommunityLists["PLAIN"]
	if plain == nil || plain.Entries[0].Conjuncts[0].Literal != "65000:1" {
		t.Fatalf("PLAIN = %+v", plain)
	}
}

func TestCommentsAndStrings(t *testing.T) {
	cfg, err := Parse("t", `/* block
comment */
system {
    # line comment
    host-name r1;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Hostname != "r1" {
		t.Errorf("hostname = %q", cfg.Hostname)
	}
}

func TestSyntaxErrors(t *testing.T) {
	if _, err := Parse("t", `system { host-name r1;`); err == nil {
		t.Error("missing brace should error")
	}
	if _, err := Parse("t", `system { "unterminated`); err == nil {
		t.Error("unterminated string should error")
	}
	if _, err := Parse("t", `a { b [ c; }`); err == nil {
		t.Error("unterminated bracket list should error")
	}
	if _, err := Parse("t", `}`); err == nil {
		t.Error("stray brace should error")
	}
}

func TestUnrecognizedCollected(t *testing.T) {
	cfg, _ := Parse("t", `snmp { community public; }
policy-options {
    policy-statement P {
        term t {
            from { rib inet.0; }
            then accept;
        }
    }
}
`)
	if len(cfg.Unrecognized) != 2 {
		t.Errorf("unrecognized = %d: %v", len(cfg.Unrecognized), cfg.Unrecognized)
	}
}

func TestAnonymousTerm(t *testing.T) {
	// JunOS allows from/then directly under the policy-statement.
	cfg, _ := Parse("t", `policy-options {
    policy-statement SIMPLE {
        from protocol bgp;
        then accept;
    }
}
`)
	rm := cfg.RouteMaps["SIMPLE"]
	if rm == nil || len(rm.Clauses) != 1 {
		t.Fatalf("SIMPLE = %+v", rm)
	}
	if rm.Clauses[0].Action != ir.ClausePermit || len(rm.Clauses[0].Matches) != 1 {
		t.Errorf("clause = %+v", rm.Clauses[0])
	}
}

func TestPrefixListFilterModifiers(t *testing.T) {
	cfg, err := Parse("t", `policy-options {
    prefix-list NETS {
        10.9.0.0/16;
    }
    policy-statement P {
        term t1 {
            from {
                prefix-list-filter NETS orlonger;
            }
            then accept;
        }
        term t2 { then reject; }
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := cfg.RouteMaps["P"].Clauses[0].Matches[0].(ir.MatchPrefixListFilter)
	if !ok || m.List != "NETS" || m.Modifier != "orlonger" {
		t.Fatalf("match = %+v", cfg.RouteMaps["P"].Clauses[0].Matches)
	}
	// Concrete semantics: orlonger matches the /24 refinement.
	r := ir.NewRoute(netaddr.MustParsePrefix("10.9.1.0/24"))
	if res := cfg.EvalRouteMap(cfg.RouteMaps["P"], r); res.Action != ir.Permit {
		t.Error("orlonger should match the /24")
	}
	r16 := ir.NewRoute(netaddr.MustParsePrefix("10.9.0.0/16"))
	if res := cfg.EvalRouteMap(cfg.RouteMaps["P"], r16); res.Action != ir.Permit {
		t.Error("orlonger should match the exact /16 too")
	}
	out := ir.NewRoute(netaddr.MustParsePrefix("10.10.0.0/16"))
	if res := cfg.EvalRouteMap(cfg.RouteMaps["P"], out); res.Action != ir.Deny {
		t.Error("outside the list should be rejected")
	}
}
