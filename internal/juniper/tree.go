package juniper

import (
	"fmt"
	"strings"
)

// stmt is a node of the JunOS curly-brace syntax tree. A statement is
// either a leaf ("words ... ;") or a block ("words ... { children }").
// Bracketed lists are spliced into the word list, so
// "export [ A B ];" has words {"export", "A", "B"}.
type stmt struct {
	words     []string
	children  []*stmt
	startLine int // 1-based
	endLine   int
}

type token struct {
	text string
	line int
	kind tokenKind
}

type tokenKind int

const (
	tokWord tokenKind = iota
	tokLBrace
	tokRBrace
	tokSemi
	tokLBracket
	tokRBracket
)

// tokenize splits JunOS configuration text into tokens, handling quoted
// strings, '#' line comments, and '/* */' block comments.
func tokenize(text string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(text) {
		c := text[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(text) && text[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(text) && text[i+1] == '*':
			i += 2
			for i+1 < len(text) && !(text[i] == '*' && text[i+1] == '/') {
				if text[i] == '\n' {
					line++
				}
				i++
			}
			i += 2
		case c == '{':
			toks = append(toks, token{"{", line, tokLBrace})
			i++
		case c == '}':
			toks = append(toks, token{"}", line, tokRBrace})
			i++
		case c == ';':
			toks = append(toks, token{";", line, tokSemi})
			i++
		case c == '[':
			toks = append(toks, token{"[", line, tokLBracket})
			i++
		case c == ']':
			toks = append(toks, token{"]", line, tokRBracket})
			i++
		case c == '"':
			j := i + 1
			for j < len(text) && text[j] != '"' {
				if text[j] == '\n' {
					line++
				}
				j++
			}
			if j >= len(text) {
				return nil, fmt.Errorf("juniper: unterminated string at line %d", line)
			}
			toks = append(toks, token{text[i+1 : j], line, tokWord})
			i = j + 1
		default:
			j := i
			for j < len(text) && !strings.ContainsRune(" \t\r\n{};[]#\"", rune(text[j])) {
				j++
			}
			toks = append(toks, token{text[i:j], line, tokWord})
			i = j
		}
	}
	return toks, nil
}

// parseTree parses a token stream into a list of top-level statements.
func parseTree(toks []token) ([]*stmt, error) {
	p := &treeParser{toks: toks}
	stmts, err := p.statements()
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.toks) {
		return nil, fmt.Errorf("juniper: unexpected %q at line %d", p.toks[p.pos].text, p.toks[p.pos].line)
	}
	return stmts, nil
}

type treeParser struct {
	toks []token
	pos  int
}

func (p *treeParser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

// statements parses a sequence of statements until '}' or EOF.
func (p *treeParser) statements() ([]*stmt, error) {
	var out []*stmt
	for {
		t, ok := p.peek()
		if !ok || t.kind == tokRBrace {
			return out, nil
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

// statement parses "words [bracket-lists] (; | { statements })".
func (p *treeParser) statement() (*stmt, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("juniper: unexpected end of input")
	}
	if t.kind != tokWord {
		return nil, fmt.Errorf("juniper: unexpected %q at line %d", t.text, t.line)
	}
	s := &stmt{startLine: t.line}
	for {
		t, ok := p.peek()
		if !ok {
			// Tolerate a missing trailing semicolon at EOF.
			s.endLine = s.startLine
			if len(s.words) > 0 {
				return s, nil
			}
			return nil, fmt.Errorf("juniper: unexpected end of input")
		}
		switch t.kind {
		case tokWord:
			s.words = append(s.words, t.text)
			p.pos++
		case tokLBracket:
			p.pos++
			for {
				t, ok := p.peek()
				if !ok {
					return nil, fmt.Errorf("juniper: unterminated [ list")
				}
				if t.kind == tokRBracket {
					p.pos++
					break
				}
				if t.kind != tokWord {
					return nil, fmt.Errorf("juniper: unexpected %q in [ list at line %d", t.text, t.line)
				}
				s.words = append(s.words, t.text)
				p.pos++
			}
		case tokSemi:
			s.endLine = t.line
			p.pos++
			return s, nil
		case tokLBrace:
			p.pos++
			children, err := p.statements()
			if err != nil {
				return nil, err
			}
			t2, ok := p.peek()
			if !ok || t2.kind != tokRBrace {
				return nil, fmt.Errorf("juniper: missing } for block at line %d", s.startLine)
			}
			p.pos++
			s.children = children
			s.endLine = t2.line
			return s, nil
		default:
			return nil, fmt.Errorf("juniper: unexpected %q at line %d", t.text, t.line)
		}
	}
}

// find returns the first child whose first word is w, or nil.
func (s *stmt) find(w string) *stmt {
	for _, c := range s.children {
		if len(c.words) > 0 && c.words[0] == w {
			return c
		}
	}
	return nil
}

// word returns word i or "".
func (s *stmt) word(i int) string {
	if i < len(s.words) {
		return s.words[i]
	}
	return ""
}
