// Package juniper parses the Juniper JunOS configuration dialect subset
// that Campion's components need: policy-options (prefix-lists,
// communities, as-paths, policy-statements), firewall filters, static
// routes, interfaces, and the BGP/OSPF stanzas. Parsed elements carry
// exact source spans for text localization.
package juniper

import (
	"strconv"
	"strings"

	"repro/internal/community"
	"repro/internal/ir"
	"repro/internal/netaddr"
)

// Parse parses a JunOS configuration, accepting both the curly-brace
// hierarchy and the "display set" form (auto-detected). Unrecognized
// statements are collected on the Config, not fatal.
func Parse(file, text string) (*ir.Config, error) {
	var tree []*stmt
	var err error
	if isSetFormat(text) {
		tree, err = buildSetTree(text)
	} else {
		var toks []token
		toks, err = tokenize(text)
		if err == nil {
			tree, err = parseTree(toks)
		}
	}
	if err != nil {
		return nil, err
	}
	w := &walker{
		file:  file,
		lines: strings.Split(text, "\n"),
		cfg:   ir.NewConfig("", ir.VendorJuniper),
	}
	w.cfg.File = file
	w.cfg.AdminDistances = ir.DefaultAdminDistances(ir.VendorJuniper)
	for _, s := range tree {
		w.topLevel(s)
	}
	return w.cfg, nil
}

type walker struct {
	file  string
	lines []string
	cfg   *ir.Config
}

// span converts a statement's line range into a TextSpan with raw text.
func (w *walker) span(s *stmt) ir.TextSpan {
	start, end := s.startLine, s.endLine
	if end < start {
		end = start
	}
	var lines []string
	for i := start; i <= end && i-1 < len(w.lines); i++ {
		lines = append(lines, strings.TrimRight(w.lines[i-1], " \t\r"))
	}
	return ir.TextSpan{File: w.file, StartLine: start, EndLine: end, Lines: lines}
}

func (w *walker) unrecognized(s *stmt) {
	sp := w.span(s)
	// Collapse huge blocks to their header line to keep reports readable.
	if len(sp.Lines) > 3 {
		sp.Lines = sp.Lines[:1]
	}
	w.cfg.Unrecognized = append(w.cfg.Unrecognized, sp)
}

func (w *walker) topLevel(s *stmt) {
	switch s.word(0) {
	case "system":
		if hn := s.find("host-name"); hn != nil {
			w.cfg.Hostname = hn.word(1)
		}
	case "interfaces":
		for _, c := range s.children {
			w.interfaceStmt(c)
		}
	case "policy-options":
		for _, c := range s.children {
			w.policyOption(c)
		}
	case "firewall":
		w.firewall(s)
	case "routing-options":
		for _, c := range s.children {
			w.routingOption(c)
		}
	case "protocols":
		for _, c := range s.children {
			switch c.word(0) {
			case "bgp":
				w.bgp(c)
			case "ospf":
				w.ospf(c)
			default:
				w.unrecognized(c)
			}
		}
	default:
		w.unrecognized(s)
	}
}

func (w *walker) interfaceStmt(s *stmt) {
	name := s.word(0)
	base := &ir.Interface{Name: name, Span: w.span(s)}
	var units []*ir.Interface
	for _, c := range s.children {
		switch c.word(0) {
		case "description":
			base.Description = strings.Join(c.words[1:], " ")
		case "disable":
			base.Shutdown = true
		case "unit":
			u := &ir.Interface{
				Name:        name + "." + c.word(1),
				Description: base.Description,
				Shutdown:    base.Shutdown,
				Span:        w.span(c),
			}
			w.unit(c, u)
			units = append(units, u)
		}
	}
	if len(units) == 0 {
		w.cfg.Interfaces = append(w.cfg.Interfaces, base)
		return
	}
	for _, u := range units {
		u.Shutdown = u.Shutdown || base.Shutdown
		w.cfg.Interfaces = append(w.cfg.Interfaces, u)
	}
}

func (w *walker) unit(s *stmt, ifc *ir.Interface) {
	fam := s.find("family")
	if fam == nil || fam.word(1) != "inet" {
		return
	}
	for _, c := range fam.children {
		switch c.word(0) {
		case "address":
			if pfx, err := netaddr.ParsePrefix(c.word(1)); err == nil {
				// The configured address keeps its host bits; the subnet
				// is the canonical prefix.
				if a, err := netaddr.ParseAddr(strings.Split(c.word(1), "/")[0]); err == nil {
					ifc.Address = a
				}
				ifc.Subnet = pfx
				ifc.HasAddress = true
			}
		case "filter":
			for _, fc := range c.children {
				switch fc.word(0) {
				case "input":
					ifc.ACLIn = fc.word(1)
				case "output":
					ifc.ACLOut = fc.word(1)
				}
			}
		}
	}
}

func (w *walker) policyOption(s *stmt) {
	switch s.word(0) {
	case "prefix-list":
		pl := &ir.PrefixList{Name: s.word(1), Span: w.span(s)}
		for _, c := range s.children {
			pfx, err := netaddr.ParsePrefix(c.word(0))
			if err != nil {
				w.unrecognized(c)
				continue
			}
			pl.Entries = append(pl.Entries, ir.PrefixListEntry{
				Action: ir.Permit,
				Range:  netaddr.ExactRange(pfx),
				Span:   w.span(c),
			})
		}
		w.cfg.PrefixLists[pl.Name] = pl
	case "community":
		// community NAME members [ A B ]; — the route must carry a
		// community matching EACH member (JunOS AND semantics).
		name := s.word(1)
		var members []string
		if s.word(2) == "members" {
			members = s.words[3:]
		} else if m := s.find("members"); m != nil {
			members = m.words[1:]
		}
		entry := ir.CommunityListEntry{Action: ir.Permit, Span: w.span(s)}
		for _, m := range members {
			if community.IsRegexPattern(m) {
				entry.Conjuncts = append(entry.Conjuncts, ir.CommunityMatcher{Regex: m})
			} else {
				entry.Conjuncts = append(entry.Conjuncts, ir.CommunityMatcher{Literal: m})
			}
		}
		cl := w.cfg.CommunityLists[name]
		if cl == nil {
			cl = &ir.CommunityList{Name: name, Span: w.span(s)}
			w.cfg.CommunityLists[name] = cl
		}
		cl.Entries = append(cl.Entries, entry)
	case "as-path":
		// as-path NAME "REGEX";
		al := w.cfg.ASPathLists[s.word(1)]
		if al == nil {
			al = &ir.ASPathList{Name: s.word(1), Span: w.span(s)}
			w.cfg.ASPathLists[al.Name] = al
		}
		al.Entries = append(al.Entries, ir.ASPathListEntry{
			Action: ir.Permit,
			Regex:  strings.Join(s.words[2:], " "),
			Span:   w.span(s),
		})
	case "policy-statement":
		w.policyStatement(s)
	default:
		w.unrecognized(s)
	}
}

func (w *walker) policyStatement(s *stmt) {
	rm := &ir.RouteMap{
		Name: s.word(1),
		// JunOS BGP policies default-accept when no term decides; the
		// cross-vendor fall-through difference the university study found
		// comes exactly from this asymmetry with IOS's default deny.
		DefaultAction: ir.Permit,
		Span:          w.span(s),
	}
	seq := 0
	addTerm := func(name string, body *stmt) {
		seq++
		cl := &ir.RouteMapClause{Seq: seq, Name: name, Span: w.span(body)}
		w.term(body, cl)
		rm.Clauses = append(rm.Clauses, cl)
	}
	var anonymous []*stmt // from/then directly under the policy
	for _, c := range s.children {
		switch c.word(0) {
		case "term":
			addTerm(c.word(1), c)
		case "from", "then":
			anonymous = append(anonymous, c)
		default:
			w.unrecognized(c)
		}
	}
	if len(anonymous) > 0 {
		body := &stmt{children: anonymous, startLine: s.startLine, endLine: s.endLine}
		addTerm("", body)
	}
	w.cfg.RouteMaps[rm.Name] = rm
}

// term fills a clause from a policy term's from/then blocks.
func (w *walker) term(s *stmt, cl *ir.RouteMapClause) {
	cl.Action = ir.ClauseFallthrough // no terminal action ⇒ fall through
	for _, c := range s.children {
		switch c.word(0) {
		case "from":
			w.fromConditions(c, cl)
		case "then":
			w.thenActions(c, cl)
		default:
			w.unrecognized(c)
		}
	}
}

func (w *walker) fromConditions(s *stmt, cl *ir.RouteMapClause) {
	// "from prefix-list NETS;" (inline) or "from { ... }" (block).
	if len(s.words) > 1 {
		w.fromCondition(&stmt{words: s.words[1:], startLine: s.startLine, endLine: s.endLine}, cl)
		return
	}
	for _, c := range s.children {
		w.fromCondition(c, cl)
	}
}

func (w *walker) fromCondition(c *stmt, cl *ir.RouteMapClause) {
	switch c.word(0) {
	case "prefix-list":
		cl.Matches = append(cl.Matches, ir.MatchPrefixList{Lists: []string{c.word(1)}})
	case "prefix-list-filter":
		modifier := c.word(2)
		if modifier == "" {
			modifier = "exact"
		}
		cl.Matches = append(cl.Matches, ir.MatchPrefixListFilter{List: c.word(1), Modifier: modifier})
	case "route-filter":
		pfx, err := netaddr.ParsePrefix(c.word(1))
		if err != nil {
			w.unrecognized(c)
			return
		}
		r, ok := routeFilterRange(pfx, c.words[2:])
		if !ok {
			w.unrecognized(c)
			return
		}
		// Multiple route-filters in one from block are alternatives;
		// merge into a single MatchPrefixRanges.
		for i, m := range cl.Matches {
			if mr, ok := m.(ir.MatchPrefixRanges); ok {
				mr.Ranges = append(mr.Ranges, r)
				cl.Matches[i] = mr
				return
			}
		}
		cl.Matches = append(cl.Matches, ir.MatchPrefixRanges{Ranges: []netaddr.PrefixRange{r}})
	case "community":
		cl.Matches = append(cl.Matches, ir.MatchCommunity{Lists: c.words[1:]})
	case "as-path":
		cl.Matches = append(cl.Matches, ir.MatchASPath{Lists: c.words[1:]})
	case "protocol":
		var protos []ir.Protocol
		for _, p := range c.words[1:] {
			switch p {
			case "bgp":
				protos = append(protos, ir.ProtoBGP)
			case "ospf":
				protos = append(protos, ir.ProtoOSPF)
			case "static":
				protos = append(protos, ir.ProtoStatic)
			case "direct":
				protos = append(protos, ir.ProtoConnected)
			case "aggregate":
				protos = append(protos, ir.ProtoAggregate)
			case "local":
				protos = append(protos, ir.ProtoLocal)
			}
		}
		cl.Matches = append(cl.Matches, ir.MatchProtocol{Protocols: protos})
	case "metric":
		if v, err := strconv.ParseInt(c.word(1), 10, 64); err == nil {
			cl.Matches = append(cl.Matches, ir.MatchMED{Value: v})
		}
	case "tag":
		if v, err := strconv.ParseInt(c.word(1), 10, 64); err == nil {
			cl.Matches = append(cl.Matches, ir.MatchTag{Value: v})
		}
	case "next-hop":
		// Model as an inline /32 prefix list on the next hop.
		if a, err := netaddr.ParseAddr(c.word(1)); err == nil {
			name := "__nh_" + a.String()
			w.cfg.PrefixLists[name] = &ir.PrefixList{
				Name: name,
				Entries: []ir.PrefixListEntry{{
					Action: ir.Permit,
					Range:  netaddr.ExactRange(netaddr.Prefix{Addr: a, Len: 32}),
				}},
			}
			cl.Matches = append(cl.Matches, ir.MatchNextHop{Lists: []string{name}})
			return
		}
		w.unrecognized(c)
	default:
		w.unrecognized(c)
	}
}

// routeFilterRange maps a JunOS route-filter modifier to a prefix range.
func routeFilterRange(pfx netaddr.Prefix, mods []string) (netaddr.PrefixRange, bool) {
	if len(mods) == 0 {
		return netaddr.ExactRange(pfx), true
	}
	switch mods[0] {
	case "exact":
		return netaddr.ExactRange(pfx), true
	case "orlonger":
		return netaddr.PrefixRange{Prefix: pfx, Lo: pfx.Len, Hi: 32}, true
	case "longer":
		if pfx.Len >= 32 {
			return netaddr.PrefixRange{Prefix: pfx, Lo: 33, Hi: 32}, true // empty
		}
		return netaddr.PrefixRange{Prefix: pfx, Lo: pfx.Len + 1, Hi: 32}, true
	case "upto":
		if len(mods) >= 2 {
			if n, err := strconv.Atoi(strings.TrimPrefix(mods[1], "/")); err == nil && n >= 0 && n <= 32 {
				return netaddr.PrefixRange{Prefix: pfx, Lo: pfx.Len, Hi: uint8(n)}, true
			}
		}
		return netaddr.PrefixRange{}, false
	case "prefix-length-range":
		if len(mods) >= 2 {
			parts := strings.SplitN(mods[1], "-", 2)
			if len(parts) == 2 {
				lo, err1 := strconv.Atoi(strings.TrimPrefix(parts[0], "/"))
				hi, err2 := strconv.Atoi(strings.TrimPrefix(parts[1], "/"))
				if err1 == nil && err2 == nil && lo >= 0 && hi <= 32 {
					return netaddr.PrefixRange{Prefix: pfx, Lo: uint8(lo), Hi: uint8(hi)}, true
				}
			}
		}
		return netaddr.PrefixRange{}, false
	}
	return netaddr.PrefixRange{}, false
}

func (w *walker) thenActions(s *stmt, cl *ir.RouteMapClause) {
	// "then reject;" (inline) or "then { ... }" (block).
	if len(s.words) > 1 {
		w.thenAction(&stmt{words: s.words[1:], startLine: s.startLine, endLine: s.endLine}, cl)
		return
	}
	for _, c := range s.children {
		w.thenAction(c, cl)
	}
}

func (w *walker) thenAction(c *stmt, cl *ir.RouteMapClause) {
	switch c.word(0) {
	case "accept":
		cl.Action = ir.ClausePermit
	case "reject":
		cl.Action = ir.ClauseDeny
	case "next":
		// "next term" — explicit fall-through.
		cl.Action = ir.ClauseFallthrough
	case "local-preference":
		if v, err := strconv.ParseInt(c.word(1), 10, 64); err == nil {
			cl.Sets = append(cl.Sets, ir.SetLocalPref{Value: v})
		}
	case "metric":
		if v, err := strconv.ParseInt(c.word(1), 10, 64); err == nil {
			cl.Sets = append(cl.Sets, ir.SetMED{Value: v})
		}
	case "tag":
		if v, err := strconv.ParseInt(c.word(1), 10, 64); err == nil {
			cl.Sets = append(cl.Sets, ir.SetTag{Value: v})
		}
	case "community":
		switch c.word(1) {
		case "add":
			cl.Sets = append(cl.Sets, ir.SetCommunities{Communities: w.communityMembers(c.word(2)), Additive: true})
		case "set":
			cl.Sets = append(cl.Sets, ir.SetCommunities{Communities: w.communityMembers(c.word(2))})
		case "delete":
			cl.Sets = append(cl.Sets, ir.DeleteCommunity{List: c.word(2)})
		default:
			w.unrecognized(c)
		}
	case "next-hop":
		if a, err := netaddr.ParseAddr(c.word(1)); err == nil {
			cl.Sets = append(cl.Sets, ir.SetNextHop{Addr: a})
		}
	case "as-path-prepend":
		var asns []int64
		for _, s := range c.words[1:] {
			if n, err := strconv.ParseInt(s, 10, 64); err == nil {
				asns = append(asns, n)
			}
		}
		cl.Sets = append(cl.Sets, ir.SetASPathPrepend{ASNs: asns})
	default:
		w.unrecognized(c)
	}
}

// communityMembers resolves a named community's literal members for
// community add/set actions.
func (w *walker) communityMembers(name string) []string {
	cl := w.cfg.CommunityLists[name]
	if cl == nil {
		return []string{name} // inline literal
	}
	var out []string
	for _, e := range cl.Entries {
		for _, m := range e.Conjuncts {
			if m.Literal != "" {
				out = append(out, m.Literal)
			}
		}
	}
	return out
}

func (w *walker) firewall(s *stmt) {
	fam := s.find("family")
	filters := s.children
	if fam != nil && fam.word(1) == "inet" {
		filters = fam.children
	}
	for _, f := range filters {
		if f.word(0) != "filter" {
			w.unrecognized(f)
			continue
		}
		acl := &ir.ACL{Name: f.word(1), Span: w.span(f)}
		for _, t := range f.children {
			if t.word(0) != "term" {
				w.unrecognized(t)
				continue
			}
			line := ir.NewACLLine(ir.Deny)
			line.Span = w.span(t)
			w.filterTerm(t, line)
			acl.Lines = append(acl.Lines, line)
		}
		w.cfg.ACLs[acl.Name] = acl
	}
}

func (w *walker) filterTerm(s *stmt, line *ir.ACLLine) {
	for _, c := range s.children {
		switch c.word(0) {
		case "from":
			for _, fc := range c.children {
				w.filterFrom(fc, line)
			}
			if len(c.words) > 1 {
				w.filterFrom(&stmt{words: c.words[1:], startLine: c.startLine, endLine: c.endLine}, line)
			}
		case "then":
			acts := c.words[1:]
			for _, a := range c.children {
				acts = append(acts, a.word(0))
			}
			for _, a := range acts {
				switch a {
				case "accept":
					line.Action = ir.Permit
				case "reject", "discard":
					line.Action = ir.Deny
				case "count", "log", "syslog":
					// side effects, ignored
				}
			}
		}
	}
}

func (w *walker) filterFrom(c *stmt, line *ir.ACLLine) {
	parseAddrs := func(c *stmt) []netaddr.Wildcard {
		var out []netaddr.Wildcard
		add := func(s string) {
			if pfx, err := netaddr.ParsePrefix(s); err == nil {
				out = append(out, netaddr.WildcardFromPrefix(pfx))
			}
		}
		for _, a := range c.children {
			add(a.word(0))
		}
		for _, wd := range c.words[1:] {
			add(wd)
		}
		return out
	}
	switch c.word(0) {
	case "source-address":
		line.Src = append(line.Src, parseAddrs(c)...)
	case "destination-address":
		line.Dst = append(line.Dst, parseAddrs(c)...)
	case "address":
		addrs := parseAddrs(c)
		line.Src = append(line.Src, addrs...)
		line.Dst = append(line.Dst, addrs...)
	case "protocol":
		for _, p := range c.words[1:] {
			if m, ok := ir.ProtocolByName(p); ok {
				line.Protocol = m
			} else if n, err := strconv.Atoi(p); err == nil && n >= 0 && n <= 255 {
				line.Protocol = ir.ProtoNumber(uint8(n))
			}
		}
	case "source-port":
		line.SrcPorts = append(line.SrcPorts, parseJuniperPorts(c.words[1:])...)
	case "destination-port":
		line.DstPorts = append(line.DstPorts, parseJuniperPorts(c.words[1:])...)
	case "icmp-type":
		switch c.word(1) {
		case "echo-request":
			line.ICMPType = 8
		case "echo-reply":
			line.ICMPType = 0
		default:
			if n, err := strconv.Atoi(c.word(1)); err == nil {
				line.ICMPType = n
			}
		}
	case "tcp-established":
		line.Established = true
	default:
		w.unrecognized(c)
	}
}

// parseJuniperPorts parses port words: "80", "1024-65535", "ssh".
func parseJuniperPorts(words []string) []netaddr.PortRange {
	var out []netaddr.PortRange
	for _, s := range words {
		if i := strings.IndexByte(s, '-'); i > 0 {
			lo, ok1 := ir.PortByName(s[:i])
			hi, ok2 := ir.PortByName(s[i+1:])
			if ok1 && ok2 && lo <= hi {
				out = append(out, netaddr.PortRange{Lo: lo, Hi: hi})
			}
			continue
		}
		if p, ok := ir.PortByName(s); ok {
			out = append(out, netaddr.SinglePort(p))
		}
	}
	return out
}

func (w *walker) routingOption(s *stmt) {
	switch s.word(0) {
	case "static":
		for _, c := range s.children {
			if c.word(0) != "route" {
				w.unrecognized(c)
				continue
			}
			w.staticRoute(c)
		}
	case "router-id":
		// recorded on both processes if present
		if a, err := netaddr.ParseAddr(s.word(1)); err == nil {
			if w.cfg.BGP != nil {
				w.cfg.BGP.RouterID = a
			}
			if w.cfg.OSPF != nil {
				w.cfg.OSPF.RouterID = a
			}
		}
	case "autonomous-system":
		if n, err := strconv.ParseInt(s.word(1), 10, 64); err == nil {
			if w.cfg.BGP == nil {
				w.cfg.BGP = ir.NewBGPConfig(n)
			} else {
				w.cfg.BGP.ASN = n
			}
		}
	default:
		w.unrecognized(s)
	}
}

func (w *walker) staticRoute(c *stmt) {
	pfx, err := netaddr.ParsePrefix(c.word(1))
	if err != nil {
		w.unrecognized(c)
		return
	}
	sr := &ir.StaticRoute{
		Prefix:        pfx,
		AdminDistance: w.cfg.AdminDistances[ir.ProtoStatic],
		Span:          w.span(c),
	}
	// Inline form: route P next-hop A; single-word attributes like
	// discard/reject take no value.
	for i := 2; i < len(c.words); {
		key := c.words[i]
		if key == "discard" || key == "reject" || i+1 >= len(c.words) {
			w.staticAttr(sr, key, "")
			i++
			continue
		}
		w.staticAttr(sr, key, c.words[i+1])
		i += 2
	}
	for _, a := range c.children {
		w.staticAttr(sr, a.word(0), a.word(1))
	}
	w.cfg.StaticRoutes = append(w.cfg.StaticRoutes, sr)
}

func (w *walker) staticAttr(sr *ir.StaticRoute, key, val string) {
	switch key {
	case "next-hop":
		if a, err := netaddr.ParseAddr(val); err == nil {
			sr.NextHop = a
			sr.HasNextHop = true
		} else {
			sr.Interface = val
		}
	case "preference":
		if n, err := strconv.Atoi(val); err == nil {
			sr.AdminDistance = n
		}
	case "tag":
		if n, err := strconv.ParseInt(val, 10, 64); err == nil {
			sr.Tag, sr.HasTag = n, true
		}
	case "discard", "reject":
		sr.Interface = key
	}
}

func (w *walker) bgp(s *stmt) {
	if w.cfg.BGP == nil {
		w.cfg.BGP = ir.NewBGPConfig(0)
	}
	b := w.cfg.BGP
	b.Span = b.Span.Merge(w.span(s))
	for _, g := range s.children {
		switch g.word(0) {
		case "group":
			w.bgpGroup(g, b)
		case "export", "import":
			// process-level policies apply to all neighbors; modeled by
			// appending to each group neighbor as it is parsed — JunOS
			// precedence (neighbor > group > process) simplified to
			// "most specific wins", so we only record them when a
			// neighbor has none of its own. Handled in bgpGroup.
		default:
			w.unrecognized(g)
		}
	}
}

func (w *walker) bgpGroup(g *stmt, b *ir.BGPConfig) {
	var groupImport, groupExport []string
	var groupPeerAS int64
	groupRR := false
	ibgp := false
	for _, c := range g.children {
		switch c.word(0) {
		case "type":
			ibgp = c.word(1) == "internal"
		case "import":
			groupImport = c.words[1:]
		case "export":
			groupExport = c.words[1:]
		case "peer-as":
			groupPeerAS, _ = strconv.ParseInt(c.word(1), 10, 64)
		case "cluster":
			groupRR = true
		case "neighbor":
			// handled below
		default:
			w.unrecognized(c)
		}
	}
	for _, c := range g.children {
		if c.word(0) != "neighbor" {
			continue
		}
		addr, err := netaddr.ParseAddr(c.word(1))
		if err != nil {
			w.unrecognized(c)
			continue
		}
		n := b.Neighbors[addr.String()]
		if n == nil {
			n = &ir.BGPNeighbor{Addr: addr}
			b.Neighbors[addr.String()] = n
		}
		n.Span = n.Span.Merge(w.span(c))
		n.RemoteAS = groupPeerAS
		if ibgp && n.RemoteAS == 0 {
			n.RemoteAS = b.ASN
		}
		n.ImportPolicies = append([]string{}, groupImport...)
		n.ExportPolicies = append([]string{}, groupExport...)
		n.RouteReflectorClient = groupRR
		// JunOS propagates communities by default.
		n.SendCommunity = true
		for _, a := range c.children {
			switch a.word(0) {
			case "peer-as":
				n.RemoteAS, _ = strconv.ParseInt(a.word(1), 10, 64)
			case "description":
				n.Description = strings.Join(a.words[1:], " ")
			case "import":
				n.ImportPolicies = append([]string{}, a.words[1:]...)
			case "export":
				n.ExportPolicies = append([]string{}, a.words[1:]...)
			case "cluster":
				n.RouteReflectorClient = true
			case "multihop":
				n.EBGPMultihop = true
			case "shutdown":
				n.Shutdown = true
			case "local-as":
				n.LocalAS, _ = strconv.ParseInt(a.word(1), 10, 64)
			default:
				w.unrecognized(a)
			}
		}
	}
}

func (w *walker) ospf(s *stmt) {
	if w.cfg.OSPF == nil {
		w.cfg.OSPF = ir.NewOSPFConfig(0)
	}
	o := w.cfg.OSPF
	o.Span = o.Span.Merge(w.span(s))
	for _, c := range s.children {
		switch c.word(0) {
		case "area":
			area := parseAreaID(c.word(1))
			for _, ic := range c.children {
				if ic.word(0) != "interface" {
					w.unrecognized(ic)
					continue
				}
				oi := &ir.OSPFInterface{
					Name: ic.word(1),
					Area: area,
					Cost: 1,
					Span: w.span(ic),
				}
				for _, a := range ic.children {
					switch a.word(0) {
					case "metric":
						oi.Cost, _ = strconv.Atoi(a.word(1))
					case "passive":
						oi.Passive = true
					case "hello-interval":
						oi.HelloInterval, _ = strconv.Atoi(a.word(1))
					case "dead-interval":
						oi.DeadInterval, _ = strconv.Atoi(a.word(1))
					case "interface-type":
						oi.NetworkType = a.word(1)
					default:
						w.unrecognized(a)
					}
				}
				// Attach the interface subnet if we know it.
				for _, ifc := range w.cfg.Interfaces {
					if ifc.Name == oi.Name && ifc.HasAddress {
						oi.Subnet = ifc.Subnet
					}
				}
				o.Interfaces[oi.Name] = oi
			}
		case "export":
			// OSPF export policy = redistribution into OSPF.
			for _, name := range c.words[1:] {
				o.Redistribute = append(o.Redistribute, ir.Redistribution{
					From:     ir.ProtoBGP, // source protocols constrained inside the policy
					RouteMap: name,
					Span:     w.span(c),
				})
			}
		default:
			w.unrecognized(c)
		}
	}
}

// parseAreaID parses "0", "0.0.0.0", or "0.0.0.5" area identifiers.
func parseAreaID(s string) int64 {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	if a, err := netaddr.ParseAddr(s); err == nil {
		return int64(a)
	}
	return 0
}
