package juniper

import (
	"fmt"
	"strings"
)

// JunOS configurations are stored and exchanged in two formats: the
// curly-brace hierarchy and the "display set" form, where every leaf is a
// full path from the root:
//
//	set policy-options policy-statement POL term rule1 from prefix-list NETS
//	set policy-options policy-statement POL term rule1 then reject
//
// isSetFormat detects the latter; buildSetTree folds the set lines into
// the same statement tree the brace parser produces, so the semantic
// walker is shared between the two formats.
func isSetFormat(text string) bool {
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return strings.HasPrefix(line, "set ") || line == "set" ||
			strings.HasPrefix(line, "delete ")
	}
	return false
}

// blockArity decides whether a keyword opens a sub-block in the given
// ancestor context and how many following tokens belong to its header.
// A return of -1 means the keyword is a leaf statement (the rest of the
// line is its words). This is the small schema real set-format tools also
// need: the flat form does not itself mark where hierarchy ends.
func blockArity(path []string, word string) int {
	parent := ""
	if len(path) > 0 {
		parent = path[len(path)-1]
	}
	has := func(w string) bool {
		for _, p := range path {
			if p == w {
				return true
			}
		}
		return false
	}
	switch word {
	case "system", "policy-options", "firewall", "interfaces",
		"routing-options", "protocols":
		if len(path) == 0 {
			return 0
		}
	case "policy-statement":
		if parent == "policy-options" {
			return 1
		}
	case "prefix-list":
		// A block under policy-options; a leaf condition under from.
		if parent == "policy-options" {
			return 1
		}
	case "term":
		if parent == "policy-statement" || parent == "filter" {
			return 1
		}
	case "from", "then":
		if parent == "term" || parent == "policy-statement" {
			return 0
		}
	case "source-address", "destination-address", "address":
		// Blocks inside firewall-filter from clauses; the interface
		// "address 10.0.0.1/24" falls through to the leaf default.
		if has("filter") && parent == "from" {
			return 0
		}
	case "family":
		if parent == "firewall" || has("interfaces") {
			return 1
		}
	case "filter":
		if has("firewall") {
			return 1
		}
		if has("interfaces") {
			return 0 // interface filter { input X; output Y; }
		}
	case "unit":
		if has("interfaces") {
			return 1
		}
	case "static":
		if parent == "routing-options" {
			return 0
		}
	case "route":
		if parent == "static" {
			return 1
		}
	case "bgp", "ospf":
		if parent == "protocols" {
			return 0
		}
	case "group":
		if parent == "bgp" {
			return 1
		}
	case "neighbor":
		if parent == "group" {
			return 1
		}
	case "area":
		if parent == "ospf" {
			return 1
		}
	case "interface":
		if parent == "area" {
			return 1
		}
	}
	return -1
}

// buildSetTree parses a display-set configuration into statement trees.
func buildSetTree(text string) ([]*stmt, error) {
	root := &stmt{}
	lines := strings.Split(text, "\n")
	for lineNo, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		toks, err := tokenize(line)
		if err != nil {
			return nil, fmt.Errorf("juniper: set line %d: %v", lineNo+1, err)
		}
		words := make([]string, 0, len(toks))
		for _, t := range toks {
			switch t.kind {
			case tokWord:
				words = append(words, t.text)
			case tokLBracket, tokRBracket:
				// brackets in set lines delimit value lists; drop them
			case tokSemi:
				// tolerated trailing semicolons
			default:
				return nil, fmt.Errorf("juniper: set line %d: unexpected %q", lineNo+1, t.text)
			}
		}
		if len(words) == 0 {
			continue
		}
		switch words[0] {
		case "set":
			words = words[1:]
		case "delete", "deactivate", "activate":
			// Deletions/deactivations cannot be applied without the full
			// candidate config; skip them (they are rare in snapshots).
			continue
		default:
			return nil, fmt.Errorf("juniper: set line %d: expected 'set', got %q", lineNo+1, words[0])
		}
		if err := insertSetPath(root, nil, words, lineNo+1); err != nil {
			return nil, err
		}
	}
	return root.children, nil
}

// insertSetPath walks/creates the block chain for one set line and
// attaches the trailing leaf statement.
func insertSetPath(cur *stmt, path []string, words []string, line int) error {
	for len(words) > 0 {
		w := words[0]
		arity := blockArity(path, w)
		if arity < 0 {
			// Leaf: the rest of the line is one statement.
			leaf := &stmt{words: words, startLine: line, endLine: line}
			cur.children = append(cur.children, leaf)
			touchSpan(cur, line)
			return nil
		}
		if len(words) < 1+arity {
			return fmt.Errorf("juniper: set line %d: %q needs %d argument(s)", line, w, arity)
		}
		header := words[:1+arity]
		words = words[1+arity:]
		cur = getOrCreateChild(cur, header, line)
		path = append(path, w)
		// Special shape: under "interfaces" the next token is itself a
		// block (the interface name).
		if w == "interfaces" && len(words) > 0 {
			cur = getOrCreateChild(cur, words[:1], line)
			words = words[1:]
			path = append(path, "ifname")
		}
	}
	// The line named a block with no leaf (e.g. "set protocols bgp group X
	// neighbor 1.2.3.4"): the empty block is meaningful and already built.
	return nil
}

func touchSpan(s *stmt, line int) {
	if s.startLine == 0 || line < s.startLine {
		s.startLine = line
	}
	if line > s.endLine {
		s.endLine = line
	}
}

// getOrCreateChild finds a child block with the same header words or
// appends a new one.
func getOrCreateChild(cur *stmt, header []string, line int) *stmt {
	for _, c := range cur.children {
		if sameWords(c.words, header) {
			touchSpan(c, line)
			return c
		}
	}
	c := &stmt{words: append([]string{}, header...), startLine: line, endLine: line}
	cur.children = append(cur.children, c)
	touchSpan(cur, line)
	return c
}

func sameWords(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
