package juniper

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics mutates a realistic JunOS configuration and checks
// the parser either succeeds leniently or returns a syntax error —
// never panicking.
func TestParseNeverPanics(t *testing.T) {
	base := figure1b + `
interfaces {
    ge-0/0/0 { unit 0 { family inet { address 10.0.12.2/24; } } }
}
routing-options {
    static { route 10.1.1.2/31 next-hop 10.2.2.2; }
    autonomous-system 65001;
}
protocols {
    bgp {
        group peers { type external; peer-as 65002; neighbor 10.0.12.1; }
    }
}
`
	f := func(seed uint32) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*1664525 + 1013904223
			if n <= 0 {
				return 0
			}
			return int(rng>>16) % n
		}
		text := []byte(base)
		for k := 0; k < 1+next(6); k++ {
			if len(text) == 0 {
				break
			}
			i := next(len(text))
			switch next(4) {
			case 0:
				text[i] = byte("{};\"[]#"[next(7)])
			case 1:
				text = append(text[:i], text[i+1:]...)
			case 2:
				text = append(text[:i], append([]byte("}"), text[i:]...)...)
			case 3:
				text = append(text[:i], append([]byte("{"), text[i:]...)...)
			}
		}
		// Either outcome is fine; panicking is not.
		cfg, err := Parse("mut.cfg", string(text))
		return err != nil || cfg != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseWeirdInputs(t *testing.T) {
	// These must not panic; syntax errors are acceptable.
	for _, text := range []string{
		"",
		";;;",
		"a;",
		"a { }",
		"a { b { c; } }",
		"[ ]",
		strings.Repeat("a { ", 1000) + strings.Repeat("} ", 1000),
		`policy-options { prefix-list X { 999.9.9.9/99; } }`,
		`routing-options { static { route bogus next-hop 1.2.3.4; } }`,
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Parse(%.30q) panicked: %v", text, r)
				}
			}()
			Parse("t", text)
		}()
	}
}

func TestDeeplyNestedDoesNotOverflow(t *testing.T) {
	depth := 10000
	text := strings.Repeat("a { ", depth) + "b;" + strings.Repeat(" }", depth)
	if _, err := Parse("t", text); err != nil {
		t.Logf("deep nesting rejected: %v (acceptable)", err)
	}
}
