package juniper

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/netaddr"
)

// figure1bSet is Figure 1(b) in "display set" form.
const figure1bSet = `set policy-options prefix-list NETS 10.9.0.0/16
set policy-options prefix-list NETS 10.100.0.0/16
set policy-options community COMM members [ 10:10 10:11 ]
set policy-options policy-statement POL term rule1 from prefix-list NETS
set policy-options policy-statement POL term rule1 then reject
set policy-options policy-statement POL term rule2 from community COMM
set policy-options policy-statement POL term rule2 then reject
set policy-options policy-statement POL term rule3 then local-preference 30
set policy-options policy-statement POL term rule3 then accept
`

func TestSetFormatDetection(t *testing.T) {
	if !isSetFormat(figure1bSet) {
		t.Error("set format should be detected")
	}
	if isSetFormat("policy-options {\n}") {
		t.Error("brace format misdetected")
	}
	if !isSetFormat("# comment\nset system host-name r1\n") {
		t.Error("comments before set lines")
	}
}

func TestParseSetFormatFigure1b(t *testing.T) {
	cfg, err := Parse("j.set", figure1bSet)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range cfg.Unrecognized {
		t.Errorf("unrecognized: %q", u.Text())
	}
	pl := cfg.PrefixLists["NETS"]
	if pl == nil || len(pl.Entries) != 2 {
		t.Fatalf("NETS = %+v", pl)
	}
	if !pl.Entries[0].Range.Equal(netaddr.MustParsePrefixRange("10.9.0.0/16 : 16-16")) {
		t.Errorf("NETS[0] = %v", pl.Entries[0].Range)
	}
	cl := cfg.CommunityLists["COMM"]
	if cl == nil || len(cl.Entries[0].Conjuncts) != 2 {
		t.Fatalf("COMM = %+v", cl)
	}
	rm := cfg.RouteMaps["POL"]
	if rm == nil || len(rm.Clauses) != 3 {
		t.Fatalf("POL = %+v", rm)
	}
	if rm.Clauses[0].Action != ir.ClauseDeny || rm.Clauses[0].Name != "rule1" {
		t.Errorf("rule1 = %+v", rm.Clauses[0])
	}
	if rm.Clauses[2].Action != ir.ClausePermit {
		t.Errorf("rule3 = %+v", rm.Clauses[2])
	}
	if s, ok := rm.Clauses[2].Sets[0].(ir.SetLocalPref); !ok || s.Value != 30 {
		t.Errorf("rule3 sets = %+v", rm.Clauses[2].Sets)
	}
	// Text localization points at the contributing set lines.
	if !strings.Contains(rm.Clauses[0].Span.Text(), "term rule1") {
		t.Errorf("rule1 text = %q", rm.Clauses[0].Span.Text())
	}
}

// TestSetAndBraceFormatsAgree parses the same configuration in both forms
// and checks the IRs are semantically interchangeable (no diffs).
func TestSetAndBraceFormatsAgree(t *testing.T) {
	braceCfg, err := Parse("brace.cfg", figure1b)
	if err != nil {
		t.Fatal(err)
	}
	setCfg, err := Parse("set.cfg", figure1bSet)
	if err != nil {
		t.Fatal(err)
	}
	// Structural spot checks (full behavioral agreement is covered by the
	// semdiff-based tests in internal/policygen).
	for name, pl1 := range braceCfg.PrefixLists {
		pl2 := setCfg.PrefixLists[name]
		if pl2 == nil || len(pl2.Entries) != len(pl1.Entries) {
			t.Fatalf("prefix list %s differs", name)
		}
		for i := range pl1.Entries {
			if !pl1.Entries[i].Range.Equal(pl2.Entries[i].Range) {
				t.Errorf("%s entry %d: %v vs %v", name, i, pl1.Entries[i].Range, pl2.Entries[i].Range)
			}
		}
	}
	rm1, rm2 := braceCfg.RouteMaps["POL"], setCfg.RouteMaps["POL"]
	if len(rm1.Clauses) != len(rm2.Clauses) {
		t.Fatalf("clause counts differ: %d vs %d", len(rm1.Clauses), len(rm2.Clauses))
	}
	for i := range rm1.Clauses {
		if rm1.Clauses[i].Action != rm2.Clauses[i].Action {
			t.Errorf("clause %d action: %v vs %v", i, rm1.Clauses[i].Action, rm2.Clauses[i].Action)
		}
	}
}

func TestSetFormatFullRouter(t *testing.T) {
	cfg, err := Parse("r.set", `set system host-name setrouter
set interfaces ge-0/0/0 description "uplink to core"
set interfaces ge-0/0/0 unit 0 family inet address 10.0.12.2/24
set interfaces ge-0/0/0 unit 0 family inet filter input EDGE_IN
set firewall family inet filter EDGE_IN term web from protocol tcp
set firewall family inet filter EDGE_IN term web from destination-address 10.60.0.0/16
set firewall family inet filter EDGE_IN term web from destination-port [ 80 443 ]
set firewall family inet filter EDGE_IN term web then accept
set firewall family inet filter EDGE_IN term final then discard
set routing-options static route 10.1.1.2/31 next-hop 10.2.2.2
set routing-options static route 10.1.1.2/31 preference 7
set routing-options autonomous-system 65001
set protocols bgp group peers type external
set protocols bgp group peers peer-as 65002
set protocols bgp group peers neighbor 10.0.12.1 export POL
set protocols ospf area 0.0.0.0 interface ge-0/0/0.0 metric 5
set protocols ospf area 0.0.0.0 interface ge-0/0/0.0 hello-interval 10
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range cfg.Unrecognized {
		t.Errorf("unrecognized: %q", u.Text())
	}
	if cfg.Hostname != "setrouter" {
		t.Errorf("hostname = %q", cfg.Hostname)
	}
	if len(cfg.Interfaces) != 1 {
		t.Fatalf("interfaces = %d", len(cfg.Interfaces))
	}
	ifc := cfg.Interfaces[0]
	if ifc.Name != "ge-0/0/0.0" || !ifc.HasAddress || ifc.Subnet.String() != "10.0.12.0/24" {
		t.Errorf("interface = %+v", ifc)
	}
	if ifc.ACLIn != "EDGE_IN" || ifc.Description != "uplink to core" {
		t.Errorf("interface attrs = %+v", ifc)
	}
	acl := cfg.ACLs["EDGE_IN"]
	if acl == nil || len(acl.Lines) != 2 {
		t.Fatalf("EDGE_IN = %+v", acl)
	}
	if acl.Lines[0].Action != ir.Permit || len(acl.Lines[0].DstPorts) != 2 {
		t.Errorf("web term = %+v", acl.Lines[0])
	}
	if !acl.Lines[0].Dst[0].Matches(netaddr.MustParseAddr("10.60.1.1")) {
		t.Error("web term dst")
	}
	if len(cfg.StaticRoutes) != 1 {
		t.Fatalf("static routes = %d", len(cfg.StaticRoutes))
	}
	sr := cfg.StaticRoutes[0]
	if sr.Prefix.String() != "10.1.1.2/31" || sr.NextHop.String() != "10.2.2.2" || sr.AdminDistance != 7 {
		t.Errorf("static = %+v", sr)
	}
	if cfg.BGP == nil || cfg.BGP.ASN != 65001 {
		t.Fatalf("bgp = %+v", cfg.BGP)
	}
	n := cfg.BGP.Neighbors["10.0.12.1"]
	if n == nil || n.RemoteAS != 65002 || len(n.ExportPolicies) != 1 || n.ExportPolicies[0] != "POL" {
		t.Errorf("neighbor = %+v", n)
	}
	oi := cfg.OSPF.Interfaces["ge-0/0/0.0"]
	if oi == nil || oi.Cost != 5 || oi.HelloInterval != 10 {
		t.Errorf("ospf = %+v", oi)
	}
}

func TestSetFormatDeleteLinesSkipped(t *testing.T) {
	cfg, err := Parse("r.set", `set system host-name r1
delete system host-name r2
deactivate protocols bgp
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Hostname != "r1" {
		t.Errorf("hostname = %q", cfg.Hostname)
	}
}

func TestSetFormatErrors(t *testing.T) {
	if _, err := Parse("t", "set\nbogus line without keyword\n"); err == nil {
		t.Error("non-set line in set file should error")
	}
	if _, err := Parse("t", "set policy-options policy-statement\n"); err == nil {
		t.Error("missing block argument should error")
	}
}
