package minesweeper

import (
	"testing"

	"repro/internal/cisco"
	"repro/internal/ir"
	"repro/internal/juniper"
	"repro/internal/netaddr"
)

const figure1a = `ip prefix-list NETS permit 10.9.0.0/16 le 32
ip prefix-list NETS permit 10.100.0.0/16 le 32
ip community-list standard COMM permit 10:10
ip community-list standard COMM permit 10:11
route-map POL deny 10
 match ip address NETS
route-map POL deny 20
 match community COMM
route-map POL permit 30
 set local-preference 30
`

const figure1b = `policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    community COMM members [ 10:10 10:11 ];
    policy-statement POL {
        term rule1 { from prefix-list NETS; then reject; }
        term rule2 { from community COMM; then reject; }
        term rule3 { then { local-preference 30; accept; } }
    }
}
`

func figure1Checker(t *testing.T) *RouteMapChecker {
	t.Helper()
	c, err := cisco.Parse("c.cfg", figure1a)
	if err != nil {
		t.Fatal(err)
	}
	j, err := juniper.Parse("j.cfg", figure1b)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewRouteMapChecker(c, c.RouteMaps["POL"], j, j.RouteMaps["POL"])
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

// TestSingleCounterexampleTable3 reproduces the shape of the paper's
// Table 3: the baseline yields one concrete route treated differently,
// with no localization.
func TestSingleCounterexampleTable3(t *testing.T) {
	ch := figure1Checker(t)
	if ch.Equivalent() {
		t.Fatal("Figure 1 maps are not equivalent")
	}
	cex, ok := ch.NextCounterexample()
	if !ok {
		t.Fatal("expected a counterexample")
	}
	// The concrete route must genuinely be treated differently.
	if (cex.Result1.Action == ir.Permit) == (cex.Result2.Action == ir.Permit) &&
		cex.Result1.Action == cex.Result2.Action {
		// Both same action: if both permit, the transforms must differ —
		// not possible here, so this is a failure.
		t.Errorf("counterexample not differing: %v / %v on %v",
			cex.Result1.Action, cex.Result2.Action, cex.Route)
	}
}

func TestCounterexamplesAreDistinctAndReal(t *testing.T) {
	ch := figure1Checker(t)
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		cex, ok := ch.NextCounterexample()
		if !ok {
			t.Fatalf("expected 50 counterexamples, got %d", i)
		}
		a1 := cex.Result1.Action == ir.Permit
		a2 := cex.Result2.Action == ir.Permit
		if a1 == a2 {
			t.Fatalf("iteration %d: not a real difference: %v", i, cex.Route)
		}
		key := cex.Route.String() + "|" + cex.Route.NextHop.String() + "|" + cex.Route.Protocol.String()
		seen[key] = true
	}
	// Concrete models are blocked one by one, so most must be distinct.
	if len(seen) < 40 {
		t.Errorf("only %d distinct rendered counterexamples out of 50", len(seen))
	}
}

// TestFragilityExperiment reproduces the §2 observation: a single
// localized difference (Difference 1) spans multiple prefix ranges, and
// the model-by-model baseline needs several counterexamples before every
// range is witnessed, while Campion reports the whole class at once.
func TestFragilityExperiment(t *testing.T) {
	ch := figure1Checker(t)
	// Difference 1's relevant ranges: sub-prefixes of 10.9/16 and
	// 10.100/16 with length > 16 (the exact /16s are excluded).
	targets := []func(*ir.Route) bool{
		func(r *ir.Route) bool {
			return netaddr.MustParsePrefixRange("10.9.0.0/16 : 17-32").ContainsPrefix(r.Prefix)
		},
		func(r *ir.Route) bool {
			return netaddr.MustParsePrefixRange("10.100.0.0/16 : 17-32").ContainsPrefix(r.Prefix)
		},
	}
	n, covered := ch.CountUntilCovered(targets, 500)
	if !covered {
		t.Fatalf("coverage not reached in %d counterexamples", n)
	}
	if n < 2 {
		t.Errorf("coverage in %d counterexamples; expected the baseline to need several", n)
	}
	t.Logf("baseline needed %d counterexamples to cover Difference 1's ranges", n)

	// The le 32 → le 31 variant makes coverage strictly harder or equal.
	ch.Reset()
	n2, _ := ch.CountUntilCovered(targets, 500)
	if n2 != n {
		t.Errorf("reset should reproduce the deterministic count: %d vs %d", n, n2)
	}
}

func TestEquivalentMapsNoCounterexample(t *testing.T) {
	c1, _ := cisco.Parse("a.cfg", figure1a)
	c2, _ := cisco.Parse("b.cfg", figure1a)
	ch, err := NewRouteMapChecker(c1, c1.RouteMaps["POL"], c2, c2.RouteMaps["POL"])
	if err != nil {
		t.Fatal(err)
	}
	if !ch.Equivalent() {
		t.Fatal("identical maps should be equivalent")
	}
	if _, ok := ch.NextCounterexample(); ok {
		t.Error("no counterexample expected")
	}
}

// TestStaticForwardingTable5 reproduces the shape of the paper's Table 5:
// the baseline reports a destination address forwarded by one router
// only, without identifying the static route.
func TestStaticForwardingTable5(t *testing.T) {
	c, _ := cisco.Parse("c.cfg", "ip route 10.1.1.2 255.255.255.254 10.2.2.2\n")
	j, _ := juniper.Parse("j.cfg", "routing-options { static { } }\n")
	cex, ok := StaticForwardingCounterexample(c, j)
	if !ok {
		t.Fatal("expected a counterexample")
	}
	if !cex.Forward1 || cex.Forward2 {
		t.Errorf("cex = %+v, want forwarded by router 1 only", cex)
	}
	if cex.DstIP != netaddr.MustParseAddr("10.1.1.2") && cex.DstIP != netaddr.MustParseAddr("10.1.1.3") {
		t.Errorf("dst = %v, want inside 10.1.1.2/31", cex.DstIP)
	}
	// Equal static routes: no counterexample.
	c2, _ := cisco.Parse("c2.cfg", "ip route 10.1.1.2 255.255.255.254 10.9.9.9\n")
	if _, ok := StaticForwardingCounterexample(c, c2); ok {
		t.Error("same prefixes should have no forwarding counterexample (next hops differ but coverage is equal)")
	}
}

func TestACLChecker(t *testing.T) {
	permit80 := ir.NewACLLine(ir.Permit)
	permit80.Protocol = ir.ProtoNumber(ir.ProtoNumTCP)
	permit80.DstPorts = []netaddr.PortRange{{Lo: 80, Hi: 80}}
	acl1 := &ir.ACL{Name: "A", Lines: []*ir.ACLLine{permit80}}

	permitBoth := ir.NewACLLine(ir.Permit)
	permitBoth.Protocol = ir.ProtoNumber(ir.ProtoNumTCP)
	permitBoth.DstPorts = []netaddr.PortRange{{Lo: 80, Hi: 80}, {Lo: 443, Hi: 443}}
	acl2 := &ir.ACL{Name: "A", Lines: []*ir.ACLLine{permitBoth}}

	ch := NewACLChecker(acl1, acl2)
	if ch.Equivalent() {
		t.Fatal("ACLs differ")
	}
	pkt, ok := ch.NextCounterexample()
	if !ok {
		t.Fatal("expected packet")
	}
	a1, _ := acl1.Evaluate(pkt)
	a2, _ := acl2.Evaluate(pkt)
	if a1 == a2 {
		t.Errorf("packet %+v not differing", pkt)
	}
	if pkt.DstPort != 443 || pkt.Protocol != ir.ProtoNumTCP {
		t.Errorf("differing packet should be tcp/443: %+v", pkt)
	}
	same := NewACLChecker(acl1, acl1)
	if !same.Equivalent() {
		t.Error("identical ACLs equivalent")
	}
	if _, ok := same.NextCounterexample(); ok {
		t.Error("no counterexample for identical ACLs")
	}
}

// TestFullRouterTable3 reproduces the whole-router shape of the paper's
// Table 3: the Juniper router forwards a packet for 10.9.0.0 (it accepted
// the 10.9.0.0/17 advertisement through the buggy policy) while the Cisco
// router does not.
func TestFullRouterTable3(t *testing.T) {
	c, _ := cisco.Parse("c.cfg", figure1a)
	j, _ := juniper.Parse("j.cfg", figure1b)
	advert := ir.NewRoute(netaddr.MustParsePrefix("10.9.0.0/17"))
	advert.NextHop = netaddr.MustParseAddr("198.18.0.1")
	cex, ok := FullRouterCounterexample(c, j, []string{"POL"}, []string{"POL"}, []*ir.Route{advert})
	if !ok {
		t.Fatal("expected a forwarding counterexample")
	}
	if cex.Forward1 || !cex.Forward2 {
		t.Errorf("cex = %+v: juniper should forward, cisco should not (Table 3)", cex)
	}
	if cex.Proto2 != ir.ProtoBGP {
		t.Errorf("juniper forwards via %v, want bgp", cex.Proto2)
	}
	if cex.Advert == nil || cex.Advert.Prefix.String() != "10.9.0.0/17" {
		t.Errorf("advert = %+v", cex.Advert)
	}
	if !advert.Prefix.Contains(cex.DstIP) {
		t.Errorf("dst %v should be inside the advertised prefix", cex.DstIP)
	}
	// Equivalent routers: no counterexample.
	c2, _ := cisco.Parse("c2.cfg", figure1a)
	if _, ok := FullRouterCounterexample(c, c2, []string{"POL"}, []string{"POL"}, []*ir.Route{advert}); ok {
		t.Error("identical routers should have no forwarding counterexample")
	}
}
