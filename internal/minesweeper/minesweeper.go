// Package minesweeper implements the monolithic baseline Campion is
// compared against in §2 of the paper: a Minesweeper-style equivalence
// checker that models both components as one symbolic relation and
// reports a single concrete counterexample at a time, with no header or
// text localization. The iterative mode excludes each concrete model and
// re-queries, reproducing the paper's observation that many
// counterexamples are needed before every relevant prefix range of a
// single underlying difference is witnessed (7 for Figure 1, 27 after
// changing "le 32" to "le 31").
package minesweeper

import (
	"sort"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/headerloc"
	"repro/internal/ir"
	"repro/internal/netaddr"
	"repro/internal/semdiff"
	"repro/internal/symbolic"
)

// lcg is a small deterministic generator used to complete don't-care
// variables of a model, mimicking an SMT solver's arbitrary choices.
type lcg struct{ state uint64 }

func (l *lcg) next() uint64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return l.state >> 33
}

// Counterexample is one concrete route advertisement treated differently
// by the two route maps — the entirety of what the monolithic baseline
// reports (compare the paper's Table 3).
type Counterexample struct {
	Route *ir.Route
	// Result1 and Result2 are the two routers' concrete dispositions.
	Result1, Result2 ir.PolicyResult
}

// RouteMapChecker checks behavioral equivalence of two route maps
// monolithically.
type RouteMapChecker struct {
	Enc        *symbolic.RouteEncoding
	cfg1, cfg2 *ir.Config
	rm1, rm2   *ir.RouteMap

	full    bdd.Node // the full difference relation
	pending bdd.Node // full minus the blocked models
	// candidates are boundary regions derived from the constants of the
	// symbolic formula (prefix-range endpoints), emulating how an SMT
	// solver assembles models from the constraint constants. They are
	// consumed in a seeded pseudo-random order.
	candidates []bdd.Node
	rng        lcg
}

// NewRouteMapChecker builds the monolithic difference relation for the
// pair of route maps.
func NewRouteMapChecker(cfg1 *ir.Config, rm1 *ir.RouteMap, cfg2 *ir.Config, rm2 *ir.RouteMap) (*RouteMapChecker, error) {
	enc := symbolic.NewRouteEncoding(cfg1, cfg2)
	diffs, err := semdiff.DiffRouteMaps(enc, cfg1, rm1, cfg2, rm2)
	if err != nil {
		return nil, err
	}
	// Collapse the localized differences into one monolithic relation —
	// the baseline has no notion of per-class structure.
	full := bdd.Node(bdd.False)
	for _, d := range diffs {
		full = enc.F.Or(full, d.Inputs)
	}
	c := &RouteMapChecker{
		Enc: enc, cfg1: cfg1, cfg2: cfg2, rm1: rm1, rm2: rm2,
		full: full, pending: full, rng: lcg{state: seedFor(cfg1, cfg2)},
	}
	c.candidates = boundaryCandidates(enc, cfg1, cfg2, &c.rng)
	return c, nil
}

// seedFor hashes the configurations' prefix-range constants so that — as
// with a real solver — any edit to the formula perturbs the whole model
// sequence (the fragility §2 demonstrates).
func seedFor(cfgs ...*ir.Config) uint64 {
	var ranges []string
	for _, cfg := range cfgs {
		for _, r := range headerloc.ConfigPrefixRanges(cfg) {
			ranges = append(ranges, r.String())
		}
	}
	sort.Strings(ranges)
	h := uint64(1469598103934665603) // FNV offset basis
	for _, s := range ranges {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	return h ^ 0x5eed
}

// boundaryCandidates derives solver-style model seeds from the prefix
// ranges mentioned in the two configurations: for each range, the
// region's exact base prefix at its lower and upper length bounds.
// The order is shuffled deterministically, emulating the unpredictable
// model choices the paper observed.
func boundaryCandidates(enc *symbolic.RouteEncoding, cfg1, cfg2 *ir.Config, rng *lcg) []bdd.Node {
	var ranges []netaddr.PrefixRange
	ranges = append(ranges, headerloc.ConfigPrefixRanges(cfg1)...)
	ranges = append(ranges, headerloc.ConfigPrefixRanges(cfg2)...)
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].Compare(ranges[j]) < 0 })
	var out []bdd.Node
	seen := map[netaddr.Prefix]bool{}
	for _, r := range ranges {
		if r.IsEmpty() {
			continue
		}
		for _, l := range []uint8{r.Lo, r.Hi, r.Lo + 1, r.Hi - 1, (r.Lo + r.Hi) / 2} {
			if l > 32 || l < r.Prefix.Len {
				continue
			}
			p := netaddr.NewPrefix(r.Prefix.Addr, l)
			if seen[p] {
				continue
			}
			seen[p] = true
			out = append(out, enc.PrefixBDD(p))
		}
	}
	// Deterministic shuffle.
	for i := len(out) - 1; i > 0; i-- {
		j := int(rng.next() % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Equivalent reports whether the two route maps are behaviorally equal.
func (c *RouteMapChecker) Equivalent() bool { return c.full == bdd.False }

// Reset restores the excluded-model state so enumeration starts over.
func (c *RouteMapChecker) Reset() {
	c.pending = c.full
	c.rng = lcg{state: seedFor(c.cfg1, c.cfg2)}
	c.candidates = boundaryCandidates(c.Enc, c.cfg1, c.cfg2, &c.rng)
}

// NextCounterexample returns one more concrete differing route, blocking
// the returned model from future queries (the "add a blocking clause and
// re-solve" loop of the paper's modified Minesweeper). Models are drawn
// from the boundary candidates while any remain satisfiable, then from
// the canonical residue. It returns false when the difference space is
// exhausted of enumerable models.
func (c *RouteMapChecker) NextCounterexample() (*Counterexample, bool) {
	var a bdd.Assignment
	// A solver mixes boundary-derived models with arbitrary ones; draw
	// from the shuffled boundary queue roughly every other query.
	if c.rng.next()%3 == 0 {
		for len(c.candidates) > 0 && a == nil {
			cand := c.candidates[0]
			c.candidates = c.candidates[1:]
			a = c.Enc.F.AnySat(c.Enc.F.And(c.pending, cand))
		}
	}
	if a == nil {
		a = c.Enc.F.AnySat(c.pending)
	}
	if a == nil {
		return nil, false
	}
	// Complete don't-cares pseudo-randomly (any completion of a
	// satisfying partial assignment still satisfies the relation), then
	// block the full concrete model.
	total := make(bdd.Assignment, len(a))
	copy(total, a)
	for i, v := range total {
		if v == -1 {
			total[i] = int8(c.rng.next() & 1)
		}
	}
	c.pending = c.Enc.F.Diff(c.pending, c.Enc.F.Cube(total))
	route := c.Enc.RouteFromAssignment(total)
	return &Counterexample{
		Route:   route,
		Result1: c.cfg1.EvalRouteMap(c.rm1, route),
		Result2: c.cfg2.EvalRouteMap(c.rm2, route),
	}, true
}

// CountUntilCovered enumerates counterexamples until every predicate in
// targets has been witnessed by at least one concrete counterexample, up
// to the iteration bound. It returns the number of counterexamples
// consumed and whether coverage was reached — the measurement behind the
// paper's "7 counterexamples / 27 counterexamples" fragility experiment.
func (c *RouteMapChecker) CountUntilCovered(targets []func(*ir.Route) bool, max int) (int, bool) {
	covered := make([]bool, len(targets))
	remaining := len(targets)
	for n := 1; n <= max; n++ {
		cex, ok := c.NextCounterexample()
		if !ok {
			return n - 1, remaining == 0
		}
		for i, f := range targets {
			if !covered[i] && f(cex.Route) {
				covered[i] = true
				remaining--
			}
		}
		if remaining == 0 {
			return n, true
		}
	}
	return max, false
}

// StaticCounterexample is the monolithic static-route result (compare the
// paper's Table 5): one destination address forwarded by exactly one of
// the routers, with no indication of which static route or line is
// responsible.
type StaticCounterexample struct {
	DstIP              netaddr.Addr
	Forward1, Forward2 bool
}

// StaticForwardingCounterexample finds one destination address covered by
// the static routes of exactly one configuration.
func StaticForwardingCounterexample(c1, c2 *ir.Config) (*StaticCounterexample, bool) {
	f := bdd.NewFactory(32)
	cover := func(cfg *ir.Config) bdd.Node {
		out := bdd.Node(bdd.False)
		for _, r := range cfg.StaticRoutes {
			cube := bdd.Node(bdd.True)
			for i := 0; i < int(r.Prefix.Len); i++ {
				cube = f.And(cube, f.Lit(i, r.Prefix.Addr.Bit(i)))
			}
			out = f.Or(out, cube)
		}
		return out
	}
	s1, s2 := cover(c1), cover(c2)
	diff := f.Xor(s1, s2)
	a := f.AnySat(diff)
	if a == nil {
		return nil, false
	}
	var addr uint32
	for i := 0; i < 32; i++ {
		addr <<= 1
		if a[i] == 1 {
			addr |= 1
		}
	}
	dst := netaddr.Addr(addr)
	return &StaticCounterexample{
		DstIP:    dst,
		Forward1: coversAddr(c1, dst),
		Forward2: coversAddr(c2, dst),
	}, true
}

func coversAddr(cfg *ir.Config, a netaddr.Addr) bool {
	for _, r := range cfg.StaticRoutes {
		if r.Prefix.Contains(a) {
			return true
		}
	}
	return false
}

// ACLChecker is the monolithic ACL equivalence baseline.
type ACLChecker struct {
	Enc        *symbolic.PacketEncoding
	acl1, acl2 *ir.ACL
	full       bdd.Node
	pending    bdd.Node
	rng        lcg
}

// NewACLChecker builds the monolithic packet difference relation.
func NewACLChecker(acl1, acl2 *ir.ACL) *ACLChecker {
	enc := symbolic.NewPacketEncoding()
	diff := enc.F.Xor(enc.AcceptSet(acl1), enc.AcceptSet(acl2))
	return &ACLChecker{Enc: enc, acl1: acl1, acl2: acl2, full: diff,
		pending: diff, rng: lcg{state: 0x5eed}}
}

// Equivalent reports whether the ACLs accept the same packets.
func (c *ACLChecker) Equivalent() bool { return c.full == bdd.False }

// NextCounterexample returns one more concrete differing packet,
// blocking it from future queries.
func (c *ACLChecker) NextCounterexample() (ir.Packet, bool) {
	a := c.Enc.F.AnySat(c.pending)
	if a == nil {
		return ir.Packet{}, false
	}
	total := make(bdd.Assignment, len(a))
	copy(total, a)
	for i, v := range total {
		if v == -1 {
			total[i] = int8(c.rng.next() & 1)
		}
	}
	c.pending = c.Enc.F.Diff(c.pending, c.Enc.F.Cube(total))
	return c.Enc.PacketFromAssignment(total), true
}

// RouterCounterexample is the whole-router result of the baseline
// (the paper's Table 3): one received route advertisement, one concrete
// packet, and which router would forward it — with no indication of the
// responsible component or lines.
type RouterCounterexample struct {
	Advert             *ir.Route
	DstIP              netaddr.Addr
	Forward1, Forward2 bool
	Proto1, Proto2     ir.Protocol
}

// FullRouterCounterexample checks whole-router forwarding equivalence the
// monolithic way: the advertisements are run through each router's import
// policy, the survivors are installed into a FIB together with the
// router's static and connected routes, and destination addresses derived
// from the advertised prefixes are probed until the two FIBs disagree.
// Only the first disagreement is reported, like the baseline.
func FullRouterCounterexample(cfg1, cfg2 *ir.Config, policy1, policy2 []string, adverts []*ir.Route) (*RouterCounterexample, bool) {
	accept := func(cfg *ir.Config, chain []string) []*ir.Route {
		var out []*ir.Route
		for _, r := range adverts {
			res := cfg.EvalPolicyChain(chain, r, ir.Permit)
			if res.Action == ir.Permit {
				out = append(out, res.Route)
			}
		}
		return out
	}
	f1 := fib.Build(cfg1, accept(cfg1, policy1))
	f2 := fib.Build(cfg2, accept(cfg2, policy2))

	probeFor := func(p netaddr.Prefix) []netaddr.Addr {
		base := p.Addr
		return []netaddr.Addr{base, base + 1, base | netaddr.Addr(^uint32(netaddr.Mask(int(p.Len))))}
	}
	var probes []netaddr.Addr
	for _, r := range adverts {
		probes = append(probes, probeFor(r.Prefix)...)
	}
	for _, cfg := range []*ir.Config{cfg1, cfg2} {
		for _, sr := range cfg.StaticRoutes {
			probes = append(probes, probeFor(sr.Prefix)...)
		}
	}
	for _, dst := range probes {
		p1, ok1 := f1.Forwards(dst)
		p2, ok2 := f2.Forwards(dst)
		if ok1 != ok2 || (ok1 && p1 != p2) {
			cex := &RouterCounterexample{
				DstIP: dst, Forward1: ok1, Forward2: ok2, Proto1: p1, Proto2: p2,
			}
			for _, r := range adverts {
				if r.Prefix.Contains(dst) {
					cex.Advert = r
					break
				}
			}
			return cex, true
		}
	}
	return nil, false
}
