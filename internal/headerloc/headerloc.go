// Package headerloc implements Campion's header localization (§3.2): it
// renders the symbolic input set of a behavioral difference in terms of
// the prefix ranges appearing in the two configurations, via the ddNF
// prefix-range DAG and GetMatch, and extracts single examples for the
// fields that are not localized exhaustively (communities, ports,
// protocols — exactly the paper's design point in §4).
package headerloc

import (
	"sort"
	"strings"

	"repro/internal/bdd"
	"repro/internal/ddnf"
	"repro/internal/ir"
	"repro/internal/netaddr"
	"repro/internal/symbolic"
)

// RouteLocalization is the human-oriented rendering of a route-map
// difference's input set.
type RouteLocalization struct {
	// Terms is the minimal prefix-range representation: each term is an
	// included range minus excluded ranges (the Included/Excluded
	// Prefixes rows of the paper's Table 2).
	Terms []ddnf.FlatTerm
	// Exact reports whether Terms denote the impacted prefix set
	// precisely.
	Exact bool
	// ExampleCommunities is a single example of community tags under
	// which the difference manifests (nil when communities are
	// unconstrained).
	ExampleCommunities []string
	// ExampleRoute is one concrete impacted route advertisement,
	// extracted so that it is a genuine witness of the difference
	// whenever ExampleExact is true.
	ExampleRoute *ir.Route
	// ExampleExact reports whether ExampleRoute is guaranteed to lie in
	// the difference's input set. It is false only when every witness
	// requires an as-path outside the configurations' regex vocabulary
	// (the encoding's "<other>" atom), whose concretization is
	// synthesized and therefore advisory.
	ExampleExact bool
	// CommunityTerms, when populated (the exhaustive-communities option),
	// renders the community dimension completely; CommunityComplete
	// reports whether the enumeration hit its bound.
	CommunityTerms    []CommunityTerm
	CommunityComplete bool
}

// RouteLocalizer localizes route-map differences over a fixed pair of
// configurations.
type RouteLocalizer struct {
	enc *symbolic.RouteEncoding
	dag *ddnf.DAG
	ops ddnf.SetOps

	nonPrefix []int
}

// NewRouteLocalizer extracts the prefix ranges of both configurations
// (prefix-list entries and inline route-filter ranges) and builds the
// ddNF DAG over them.
func NewRouteLocalizer(enc *symbolic.RouteEncoding, cfgs ...*ir.Config) *RouteLocalizer {
	var ranges []netaddr.PrefixRange
	for _, cfg := range cfgs {
		if cfg == nil {
			continue
		}
		ranges = append(ranges, ConfigPrefixRanges(cfg)...)
	}
	l := &RouteLocalizer{
		enc:       enc,
		dag:       ddnf.Build(ranges),
		nonPrefix: enc.NonPrefixVars(),
	}
	prefixUniverse := enc.F.Exists(enc.WellFormed, l.nonPrefix)
	l.ops = ddnf.SetOps{
		F:        enc.F,
		RangeBDD: enc.PrefixRangeBDD,
		Universe: prefixUniverse,
	}
	return l
}

// ConfigPrefixRanges lists every prefix range mentioned by a
// configuration's routing policy: prefix-list entries and inline
// route-filter ranges.
func ConfigPrefixRanges(cfg *ir.Config) []netaddr.PrefixRange {
	var out []netaddr.PrefixRange
	for _, pl := range cfg.PrefixLists {
		for _, e := range pl.Entries {
			out = append(out, e.Range)
		}
	}
	for _, rm := range cfg.RouteMaps {
		for _, cl := range rm.Clauses {
			for _, m := range cl.Matches {
				switch m := m.(type) {
				case ir.MatchPrefixRanges:
					out = append(out, m.Ranges...)
				case ir.MatchPrefixListFilter:
					// The filter applies its modifier to every list
					// entry; the widened ranges are part of the
					// vocabulary the difference is expressed in.
					if pl := cfg.PrefixLists[m.List]; pl != nil {
						for _, e := range pl.Entries {
							out = append(out, ir.ApplyRangeModifier(e.Range, m.Modifier))
						}
					}
				}
			}
		}
	}
	return out
}

// CommunityTerm is one alternative of an exhaustive community
// localization: the difference manifests when every Present atom is
// carried and every Absent atom is not (other communities are free).
type CommunityTerm struct {
	Present []string
	Absent  []string
}

func (t CommunityTerm) String() string {
	var parts []string
	for _, p := range t.Present {
		parts = append(parts, "+"+p)
	}
	for _, a := range t.Absent {
		parts = append(parts, "−"+a)
	}
	if len(parts) == 0 {
		return "(any)"
	}
	return strings.Join(parts, " ")
}

// LocalizeCommunities renders the community dimension of a difference
// exhaustively, as a union of community terms — the HeaderLocalize
// extension the paper describes in §4 ("it is possible to extend
// HeaderLocalize to provide exhaustive information across multiple parts
// of a route advertisement"). The boolean result reports completeness;
// enumeration stops at limit terms.
func (l *RouteLocalizer) LocalizeCommunities(inputs bdd.Node, limit int) ([]CommunityTerm, bool) {
	projected := l.enc.F.Exists(inputs, l.enc.NonCommunityVars())
	if projected == bdd.True {
		return []CommunityTerm{{}}, true
	}
	var out []CommunityTerm
	complete := true
	l.enc.F.WalkCubes(projected, func(a bdd.Assignment) bool {
		if len(out) >= limit {
			complete = false
			return false
		}
		present, absent := l.enc.CommunityCube(a)
		out = append(out, CommunityTerm{Present: present, Absent: absent})
		return true
	})
	return out, complete
}

// Localize renders the input set of one difference.
func (l *RouteLocalizer) Localize(inputs bdd.Node) RouteLocalization {
	prefixSet := l.enc.F.Exists(inputs, l.nonPrefix)
	terms, exact := l.dag.GetMatch(l.ops, prefixSet)
	loc := RouteLocalization{
		Terms: ddnf.Simplify(terms),
		Exact: exact,
	}
	if r, exact := l.enc.WitnessRoute(inputs); r != nil {
		loc.ExampleRoute = r
		loc.ExampleExact = exact
		for c := range r.Communities {
			loc.ExampleCommunities = append(loc.ExampleCommunities, c)
		}
		sort.Strings(loc.ExampleCommunities)
	}
	return loc
}

// ACLLocalization renders an ACL difference: exhaustive source and
// destination address localization plus a single example for the other
// header fields ("+N more", as in the paper's Table 7).
type ACLLocalization struct {
	SrcTerms []ddnf.FlatTerm
	DstTerms []ddnf.FlatTerm
	SrcExact bool
	DstExact bool
	// ExampleFields are "field: value" strings for the non-address
	// constraints of one example packet; More counts further constrained
	// variables not rendered.
	ExampleFields []string
	More          int
	ExamplePacket ir.Packet
}

// ACLLocalizer localizes ACL differences over a fixed pair of ACLs.
type ACLLocalizer struct {
	enc              *symbolic.PacketEncoding
	srcDag, dstDag   *ddnf.DAG
	srcOps, dstOps   ddnf.SetOps
	nonSrc, nonDst   []int
	srcRoot, dstRoot bdd.Node
}

// aclAddressRanges extracts the address vocabulary of the ACLs: each
// contiguous wildcard becomes the range of /32 addresses under its
// prefix. Non-contiguous masks contribute nothing (and can make
// localization inexact, which is reported).
func aclAddressRanges(field func(*ir.ACLLine) []netaddr.Wildcard, acls ...*ir.ACL) []netaddr.PrefixRange {
	var out []netaddr.PrefixRange
	for _, acl := range acls {
		if acl == nil {
			continue
		}
		for _, line := range acl.Lines {
			for _, w := range field(line) {
				if p, ok := w.AsPrefix(); ok {
					out = append(out, netaddr.PrefixRange{Prefix: p, Lo: 32, Hi: 32})
				}
			}
		}
	}
	return out
}

// NewACLLocalizer builds the source and destination address DAGs from the
// ACL pair's own address constants.
func NewACLLocalizer(enc *symbolic.PacketEncoding, acls ...*ir.ACL) *ACLLocalizer {
	srcRanges := aclAddressRanges(func(l *ir.ACLLine) []netaddr.Wildcard { return l.Src }, acls...)
	dstRanges := aclAddressRanges(func(l *ir.ACLLine) []netaddr.Wildcard { return l.Dst }, acls...)
	l := &ACLLocalizer{
		enc:    enc,
		srcDag: ddnf.Build(srcRanges),
		dstDag: ddnf.Build(dstRanges),
		nonSrc: enc.NonAddrVars("src"),
		nonDst: enc.NonAddrVars("dst"),
	}
	l.srcOps = ddnf.SetOps{
		F: enc.F,
		RangeBDD: func(r netaddr.PrefixRange) bdd.Node {
			return enc.SrcPrefixBDD(r.Prefix)
		},
		Universe: bdd.True,
	}
	l.dstOps = ddnf.SetOps{
		F: enc.F,
		RangeBDD: func(r netaddr.PrefixRange) bdd.Node {
			return enc.DstPrefixBDD(r.Prefix)
		},
		Universe: bdd.True,
	}
	return l
}

// Localize renders the input set of one ACL difference.
func (l *ACLLocalizer) Localize(inputs bdd.Node) ACLLocalization {
	srcSet := l.enc.F.Exists(inputs, l.nonSrc)
	dstSet := l.enc.F.Exists(inputs, l.nonDst)
	srcTerms, srcExact := l.srcDag.GetMatch(l.srcOps, srcSet)
	dstTerms, dstExact := l.dstDag.GetMatch(l.dstOps, dstSet)
	loc := ACLLocalization{
		SrcTerms: ddnf.Simplify(srcTerms),
		DstTerms: ddnf.Simplify(dstTerms),
		SrcExact: srcExact,
		DstExact: dstExact,
	}
	if a := l.enc.F.AnySat(inputs); a != nil {
		loc.ExampleFields, loc.More = l.enc.DescribeExample(a)
		loc.ExamplePacket = l.enc.PacketFromAssignment(a)
	}
	return loc
}
