package headerloc

import (
	"testing"

	"repro/internal/cisco"
	"repro/internal/ir"
	"repro/internal/juniper"
	"repro/internal/netaddr"
	"repro/internal/semdiff"
	"repro/internal/symbolic"
)

const figure1a = `ip prefix-list NETS permit 10.9.0.0/16 le 32
ip prefix-list NETS permit 10.100.0.0/16 le 32
ip community-list standard COMM permit 10:10
ip community-list standard COMM permit 10:11
route-map POL deny 10
 match ip address NETS
route-map POL deny 20
 match community COMM
route-map POL permit 30
 set local-preference 30
`

const figure1b = `policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    community COMM members [ 10:10 10:11 ];
    policy-statement POL {
        term rule1 { from prefix-list NETS; then reject; }
        term rule2 { from community COMM; then reject; }
        term rule3 { then { local-preference 30; accept; } }
    }
}
`

// TestTable2Localization reproduces the header localization rows of the
// paper's Table 2 exactly.
func TestTable2Localization(t *testing.T) {
	c, err := cisco.Parse("cisco.cfg", figure1a)
	if err != nil {
		t.Fatal(err)
	}
	j, err := juniper.Parse("juniper.cfg", figure1b)
	if err != nil {
		t.Fatal(err)
	}
	enc := symbolic.NewRouteEncoding(c, j)
	diffs, err := semdiff.DiffRouteMaps(enc, c, c.RouteMaps["POL"], j, j.RouteMaps["POL"])
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 2 {
		t.Fatalf("diffs = %d, want 2", len(diffs))
	}
	loc := NewRouteLocalizer(enc, c, j)

	// Table 2(a): Included 10.9.0.0/16:16-32 and 10.100.0.0/16:16-32,
	// each excluding its exact-length 16-16 range.
	l1 := loc.Localize(diffs[0].Inputs)
	if !l1.Exact {
		t.Error("difference 1 localization should be exact")
	}
	if len(l1.Terms) != 2 {
		t.Fatalf("difference 1 terms = %v", l1.Terms)
	}
	want1 := []struct{ inc, exc string }{
		{"10.9.0.0/16 : 16-32", "10.9.0.0/16 : 16-16"},
		{"10.100.0.0/16 : 16-32", "10.100.0.0/16 : 16-16"},
	}
	for i, w := range want1 {
		term := l1.Terms[i]
		if term.Include.String() != w.inc {
			t.Errorf("d1 term %d include = %s, want %s", i, term.Include, w.inc)
		}
		if len(term.Exclude) != 1 || term.Exclude[0].String() != w.exc {
			t.Errorf("d1 term %d exclude = %v, want %s", i, term.Exclude, w.exc)
		}
	}

	// Table 2(b): Included 0.0.0.0/0:0-32 excluding both NETS 16-32
	// ranges, with a single example community (10:10 or 10:11 alone).
	l2 := loc.Localize(diffs[1].Inputs)
	if !l2.Exact {
		t.Error("difference 2 localization should be exact")
	}
	if len(l2.Terms) != 1 {
		t.Fatalf("difference 2 terms = %v", l2.Terms)
	}
	term := l2.Terms[0]
	if term.Include.String() != "0.0.0.0/0 : 0-32" {
		t.Errorf("d2 include = %s", term.Include)
	}
	if len(term.Exclude) != 2 ||
		term.Exclude[0].String() != "10.9.0.0/16 : 16-32" ||
		term.Exclude[1].String() != "10.100.0.0/16 : 16-32" {
		t.Errorf("d2 exclude = %v", term.Exclude)
	}
	if len(l2.ExampleCommunities) != 1 ||
		(l2.ExampleCommunities[0] != "10:10" && l2.ExampleCommunities[0] != "10:11") {
		t.Errorf("d2 example communities = %v, want exactly one of 10:10/10:11", l2.ExampleCommunities)
	}
	if l2.ExampleRoute == nil {
		t.Error("d2 should carry an example route")
	}
}

func TestACLLocalizationTable7Shape(t *testing.T) {
	// A gateway ACL pair in the shape of Table 7: one router rejects
	// traffic from a source block that the other accepts.
	denyLine := ir.NewACLLine(ir.Deny)
	denyLine.Src = []netaddr.Wildcard{{Addr: netaddr.MustParseAddr("9.140.0.0"), Mask: netaddr.MustParseAddr("0.0.1.255")}}
	permitAll := ir.NewACLLine(ir.Permit)
	acl1 := &ir.ACL{Name: "VM_FILTER_1", Lines: []*ir.ACLLine{denyLine, permitAll}}

	permitAll2 := ir.NewACLLine(ir.Permit)
	acl2 := &ir.ACL{Name: "VM_FILTER_1", Lines: []*ir.ACLLine{permitAll2}}

	enc := symbolic.NewPacketEncoding()
	diffs := semdiff.DiffACLs(enc, acl1, acl2)
	if len(diffs) != 1 {
		t.Fatalf("diffs = %d, want 1", len(diffs))
	}
	loc := NewACLLocalizer(enc, acl1, acl2)
	l := loc.Localize(diffs[0].Inputs)
	if !l.SrcExact {
		t.Error("source localization should be exact")
	}
	if len(l.SrcTerms) != 1 || l.SrcTerms[0].Include.Prefix.String() != "9.140.0.0/23" {
		t.Errorf("src terms = %v, want 9.140.0.0/23", l.SrcTerms)
	}
	// Destination unconstrained: the whole space.
	if len(l.DstTerms) != 1 || !l.DstTerms[0].Include.Equal(netaddr.Universe) {
		t.Errorf("dst terms = %v, want universe", l.DstTerms)
	}
	if l.ExamplePacket.Src>>9 != netaddr.MustParseAddr("9.140.0.0")>>9 {
		t.Errorf("example packet src = %v", l.ExamplePacket.Src)
	}
}

func TestACLLocalizationPortDifference(t *testing.T) {
	// Difference depends on ports; addresses are shared. The example
	// fields should mention the constrained port space.
	l1 := ir.NewACLLine(ir.Permit)
	l1.Protocol = ir.ProtoNumber(ir.ProtoNumTCP)
	l1.Dst = []netaddr.Wildcard{netaddr.WildcardFromPrefix(netaddr.MustParsePrefix("10.0.0.0/8"))}
	l1.DstPorts = []netaddr.PortRange{{Lo: 80, Hi: 80}}
	acl1 := &ir.ACL{Name: "A", Lines: []*ir.ACLLine{l1}}

	l2 := ir.NewACLLine(ir.Permit)
	l2.Protocol = ir.ProtoNumber(ir.ProtoNumTCP)
	l2.Dst = []netaddr.Wildcard{netaddr.WildcardFromPrefix(netaddr.MustParsePrefix("10.0.0.0/8"))}
	l2.DstPorts = []netaddr.PortRange{{Lo: 80, Hi: 80}, {Lo: 443, Hi: 443}}
	acl2 := &ir.ACL{Name: "A", Lines: []*ir.ACLLine{l2}}

	enc := symbolic.NewPacketEncoding()
	diffs := semdiff.DiffACLs(enc, acl1, acl2)
	if len(diffs) != 1 {
		t.Fatalf("diffs = %d", len(diffs))
	}
	loc := NewACLLocalizer(enc, acl1, acl2)
	l := loc.Localize(diffs[0].Inputs)
	if len(l.DstTerms) != 1 || l.DstTerms[0].Include.Prefix.String() != "10.0.0.0/8" {
		t.Errorf("dst terms = %v", l.DstTerms)
	}
	if l.ExamplePacket.DstPort != 443 {
		t.Errorf("example packet port = %d, want 443", l.ExamplePacket.DstPort)
	}
	var sawPort bool
	for _, f := range l.ExampleFields {
		if f == "dstPort: 443" {
			sawPort = true
		}
	}
	if !sawPort {
		t.Errorf("example fields = %v, want dstPort: 443", l.ExampleFields)
	}
}

func TestConfigPrefixRanges(t *testing.T) {
	cfg := ir.NewConfig("r", ir.VendorCisco)
	cfg.PrefixLists["A"] = &ir.PrefixList{Name: "A", Entries: []ir.PrefixListEntry{
		{Action: ir.Permit, Range: netaddr.MustParsePrefixRange("10.0.0.0/8 : 8-32")},
	}}
	cfg.RouteMaps["P"] = &ir.RouteMap{Name: "P", Clauses: []*ir.RouteMapClause{
		{Action: ir.ClausePermit, Matches: []ir.Match{ir.MatchPrefixRanges{
			Ranges: []netaddr.PrefixRange{netaddr.MustParsePrefixRange("192.0.2.0/24 : 24-24")},
		}}},
	}}
	got := ConfigPrefixRanges(cfg)
	if len(got) != 2 {
		t.Errorf("ranges = %v", got)
	}
}

// TestLocalizeCommunities exercises the §4 extension: for Figure 1's
// Difference 2 the impacted community space is "exactly one of 10:10,
// 10:11", rendered as two exhaustive terms.
func TestLocalizeCommunities(t *testing.T) {
	c, err := cisco.Parse("cisco.cfg", figure1a)
	if err != nil {
		t.Fatal(err)
	}
	j, err := juniper.Parse("juniper.cfg", figure1b)
	if err != nil {
		t.Fatal(err)
	}
	enc := symbolic.NewRouteEncoding(c, j)
	diffs, err := semdiff.DiffRouteMaps(enc, c, c.RouteMaps["POL"], j, j.RouteMaps["POL"])
	if err != nil {
		t.Fatal(err)
	}
	loc := NewRouteLocalizer(enc, c, j)

	// Difference 2 (community-driven): exactly one of the two tags.
	terms, complete := loc.LocalizeCommunities(diffs[1].Inputs, 100)
	if !complete {
		t.Fatal("should be complete")
	}
	if len(terms) != 2 {
		t.Fatalf("terms = %+v, want 2 (one-of-two)", terms)
	}
	want := map[string]bool{"+10:11 −10:10": false, "+10:10 −10:11": false}
	for _, term := range terms {
		key := ""
		for _, p := range term.Present {
			key += "+" + p
		}
		for _, a := range term.Absent {
			if key != "" {
				key += " "
			}
			key += "−" + a
		}
		if _, ok := want[key]; !ok {
			t.Errorf("unexpected term %q", key)
		}
		want[key] = true
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("missing term %q", k)
		}
	}

	// Difference 1 (prefix-driven): the community dimension is
	// constrained only by "not both" (clause 20 shadowing is handled by
	// the prefix part); check the terms cover everything except both.
	terms1, complete1 := loc.LocalizeCommunities(diffs[0].Inputs, 100)
	if !complete1 || len(terms1) == 0 {
		t.Fatalf("terms1 = %+v", terms1)
	}
	// Truncation is reported.
	_, complete2 := loc.LocalizeCommunities(diffs[1].Inputs, 1)
	if complete2 {
		t.Error("limit 1 must report incompleteness")
	}
	// Stringer sanity.
	if (CommunityTerm{}).String() != "(any)" {
		t.Error("empty term renders (any)")
	}
	if got := (CommunityTerm{Present: []string{"a"}, Absent: []string{"b"}}).String(); got != "+a −b" {
		t.Errorf("String = %q", got)
	}
}

func TestPrefixListFilterLocalization(t *testing.T) {
	// A prefix-list-filter orlonger vs an exact prefix-list: the widened
	// range must appear in the localization vocabulary so the difference
	// renders exactly.
	jText := `policy-options {
    prefix-list NETS {
        10.9.0.0/16;
    }
    policy-statement P {
        term t1 {
            from { prefix-list-filter NETS orlonger; }
            then reject;
        }
        term t2 { then accept; }
    }
}
`
	cText := `route-map P deny 10
 match ip address NETS
route-map P permit 20
ip prefix-list NETS permit 10.9.0.0/16
`
	j, err := juniper.Parse("j.cfg", jText)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cisco.Parse("c.cfg", cText)
	if err != nil {
		t.Fatal(err)
	}
	enc := symbolic.NewRouteEncoding(c, j)
	diffs, err := semdiff.DiffRouteMaps(enc, c, c.RouteMaps["P"], j, j.RouteMaps["P"])
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 {
		t.Fatalf("diffs = %d, want 1 (the 17-32 refinements)", len(diffs))
	}
	loc := NewRouteLocalizer(enc, c, j)
	l := loc.Localize(diffs[0].Inputs)
	if !l.Exact {
		t.Errorf("localization should be exact with the widened range in vocabulary: %v", l.Terms)
	}
	if len(l.Terms) != 1 ||
		l.Terms[0].Include.String() != "10.9.0.0/16 : 16-32" ||
		len(l.Terms[0].Exclude) != 1 ||
		l.Terms[0].Exclude[0].String() != "10.9.0.0/16 : 16-16" {
		t.Errorf("terms = %v", l.Terms)
	}
}
