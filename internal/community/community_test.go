package community

import (
	"testing"
)

func TestLiteralMatcher(t *testing.T) {
	m := CompileLiteral("10:10")
	if !m.Matches("10:10") {
		t.Error("literal should match itself")
	}
	if m.Matches("10:100") || m.Matches("110:10") {
		t.Error("literal should not match supersets")
	}
	if !m.IsLiteral() {
		t.Error("IsLiteral")
	}
	if m.Pattern() != "10:10" {
		t.Error("Pattern")
	}
}

func TestRegexMatcher(t *testing.T) {
	cases := []struct {
		pattern string
		comm    string
		want    bool
	}{
		{"^10:1[01]$", "10:10", true},
		{"^10:1[01]$", "10:11", true},
		{"^10:1[01]$", "10:12", false},
		{"^10:1[01]$", "110:10", false},
		// Unanchored IOS semantics: substring match.
		{"10:1", "10:10", true},
		{"10:1", "210:15", true},
		{"10:1", "10:2", false},
		// IOS "_" delimiter: start, end, or colon.
		{"_65000_", "65000:100", true},
		{"_65000_", "100:65000", true},
		{"_65000_", "165000:1", false},
		{"_65000_", "65000", true},
		{"^10:.*$", "10:999", true},
		{"^10:.*$", "11:999", false},
	}
	for _, c := range cases {
		m, err := Compile(c.pattern)
		if err != nil {
			t.Fatalf("Compile(%q): %v", c.pattern, err)
		}
		if got := m.Matches(c.comm); got != c.want {
			t.Errorf("%q.Matches(%q) = %v, want %v", c.pattern, c.comm, got, c.want)
		}
	}
}

func TestCompileError(t *testing.T) {
	if _, err := Compile("[unclosed"); err == nil {
		t.Error("bad regex should fail to compile")
	}
}

func TestIsRegexPattern(t *testing.T) {
	if IsRegexPattern("10:10") {
		t.Error("plain literal should not be regex")
	}
	for _, p := range []string{"^10:10$", "10:1*", "10:1[01]", "_65000_"} {
		if !IsRegexPattern(p) {
			t.Errorf("%q should be detected as regex", p)
		}
	}
}

func TestExemplarsMatchTheirPattern(t *testing.T) {
	patterns := []string{
		"^10:1[01]$",
		"^10:1[012]$",
		"^65000:[0-9]+$",
		"^10:(10|20)$",
		"10:1.*",
		"_65000_",
	}
	for _, p := range patterns {
		ex := Exemplars(p, 16)
		if len(ex) == 0 {
			t.Errorf("Exemplars(%q) produced nothing", p)
			continue
		}
		m := MustCompile(p)
		for _, e := range ex {
			if !m.Matches(e) {
				t.Errorf("exemplar %q of %q does not match its own pattern", e, p)
			}
		}
	}
}

func TestExemplarsSeparateDifferentRegexes(t *testing.T) {
	// The university border-router bugs (Export 3/4) were differences in
	// community regexes. The universe must contain a separating atom.
	r1, r2 := "^10:1[01]$", "^10:1[012]$"
	u := NewUniverse(nil, []string{r1, r2})
	m1, m2 := MustCompile(r1), MustCompile(r2)
	var separated bool
	for _, a := range u.Atoms() {
		if m1.Matches(a) != m2.Matches(a) {
			separated = true
			break
		}
	}
	if !separated {
		t.Errorf("universe %v fails to separate %q from %q", u.Atoms(), r1, r2)
	}
}

func TestEquivalentRegexesNotSeparated(t *testing.T) {
	// Semantically equal regexes written differently must agree on every
	// atom, so they raise no spurious difference.
	r1, r2 := "^10:(10|11)$", "^10:1[01]$"
	u := NewUniverse([]string{"10:10", "10:11", "10:12"}, []string{r1, r2})
	m1, m2 := MustCompile(r1), MustCompile(r2)
	for _, a := range u.Atoms() {
		if m1.Matches(a) != m2.Matches(a) {
			t.Errorf("atom %q separates equivalent regexes %q and %q", a, r1, r2)
		}
	}
}

func TestUniverse(t *testing.T) {
	u := NewUniverse([]string{"10:10", "10:11", "10:10"}, nil)
	if u.Size() != 2 {
		t.Fatalf("universe size = %d, want 2 (dedup)", u.Size())
	}
	i, ok := u.Index("10:10")
	if !ok {
		t.Fatal("10:10 should be in universe")
	}
	if u.Atoms()[i] != "10:10" {
		t.Error("Index/Atoms disagree")
	}
	if _, ok := u.Index("99:99"); ok {
		t.Error("99:99 should not be in universe")
	}
	ms := u.MatchSet(MustCompile("^10:1[01]$"))
	if len(ms) != 2 {
		t.Errorf("MatchSet = %v, want both atoms", ms)
	}
	ms = u.MatchSet(CompileLiteral("10:11"))
	if len(ms) != 1 || u.Atoms()[ms[0]] != "10:11" {
		t.Errorf("literal MatchSet = %v", ms)
	}
}

func TestLooksLikeCommunity(t *testing.T) {
	good := []string{"10:10", "65000:100", "100", "0:0"}
	bad := []string{"", ":", "10:", ":10", "10:10:10", "1a:10", "10 10"}
	for _, s := range good {
		if !looksLikeCommunity(s) {
			t.Errorf("%q should look like a community", s)
		}
	}
	for _, s := range bad {
		if looksLikeCommunity(s) {
			t.Errorf("%q should not look like a community", s)
		}
	}
}

func TestUniverseFiltersJunkExemplars(t *testing.T) {
	u := NewUniverse(nil, []string{".*"})
	for _, a := range u.Atoms() {
		if !looksLikeCommunity(a) {
			t.Errorf("universe contains junk atom %q", a)
		}
	}
}
