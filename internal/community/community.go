// Package community implements matching and atomization of BGP community
// tags. Route maps test communities either as literals ("10:10") or as
// vendor regular expressions ("^10:1[01]$", "_65000_"). Campion's symbolic
// encoding assigns one BDD variable per *relevant* community string; this
// package computes that finite universe and evaluates every matcher over
// it, so that semantically equal regexes written differently do not raise
// spurious differences, while regexes that genuinely differ are separated
// by generated witness strings (exemplars).
package community

import (
	"fmt"
	"regexp"
	"regexp/syntax"
	"sort"
	"strings"
)

// Matcher is a compiled community matcher: either an exact literal or a
// vendor regular expression.
type Matcher struct {
	pattern string
	literal bool
	re      *regexp.Regexp
}

// IsRegexPattern reports whether a vendor community expression needs regex
// interpretation (it contains metacharacters) rather than exact matching.
func IsRegexPattern(s string) bool {
	return strings.ContainsAny(s, "^$*+?.[]()|\\_")
}

// CompileLiteral returns a matcher for the exact community string.
func CompileLiteral(s string) *Matcher {
	return &Matcher{pattern: s, literal: true}
}

// Compile compiles a vendor (IOS-style) community regular expression.
// The IOS "_" metacharacter matches a delimiter: start or end of the
// community string or a colon. Patterns are unanchored unless they use
// ^/$, matching IOS semantics.
func Compile(pattern string) (*Matcher, error) {
	translated := translate(pattern)
	re, err := regexp.Compile(translated)
	if err != nil {
		return nil, fmt.Errorf("community: bad regex %q: %v", pattern, err)
	}
	return &Matcher{pattern: pattern, re: re}, nil
}

// MustCompile is Compile that panics on error, for tests and tables.
func MustCompile(pattern string) *Matcher {
	m, err := Compile(pattern)
	if err != nil {
		panic(err)
	}
	return m
}

// translate rewrites an IOS-flavored regex into Go regexp syntax.
func translate(pattern string) string {
	var b strings.Builder
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		switch c {
		case '_':
			// IOS delimiter: start/end of string, colon (communities),
			// or whitespace/braces/parens (as-path lists).
			b.WriteString(`(?:^|$|[:,\s{}()])`)
		case '\\':
			if i+1 < len(pattern) {
				b.WriteByte(c)
				i++
				b.WriteByte(pattern[i])
			} else {
				b.WriteString(`\\`)
			}
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Pattern returns the original vendor pattern text.
func (m *Matcher) Pattern() string { return m.pattern }

// IsLiteral reports whether the matcher is an exact literal.
func (m *Matcher) IsLiteral() bool { return m.literal }

// Matches reports whether the community string satisfies the matcher.
func (m *Matcher) Matches(comm string) bool {
	if m.literal {
		return m.pattern == comm
	}
	return m.re.MatchString(comm)
}

// String implements fmt.Stringer.
func (m *Matcher) String() string {
	if m.literal {
		return m.pattern
	}
	return "regex:" + m.pattern
}

// Exemplars generates up to limit community strings matched by the
// pattern, by bounded enumeration of the regex syntax tree. Exemplars from
// two different regexes seed the atom universe so that regexes differing
// in behaviour get separating atoms even when no config literal separates
// them.
func Exemplars(pattern string, limit int) []string {
	re, err := syntax.Parse(translate(pattern), syntax.Perl)
	if err != nil {
		return nil
	}
	re = re.Simplify()
	seen := map[string]bool{}
	var out []string
	var emit func(parts []string) bool
	gen := exemplarGen{limit: limit}
	emit = func(parts []string) bool {
		s := strings.Join(parts, "")
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
		return len(out) < limit
	}
	gen.enumerate(re, nil, emit)
	sort.Strings(out)
	return out
}

type exemplarGen struct {
	limit int
}

// enumerate walks the syntax tree accumulating string fragments and calls
// emit for each complete expansion. It bounds repetition operators at
// small counts to keep enumeration finite.
func (g *exemplarGen) enumerate(re *syntax.Regexp, prefix []string, emit func([]string) bool) bool {
	switch re.Op {
	case syntax.OpEmptyMatch, syntax.OpBeginText, syntax.OpEndText,
		syntax.OpBeginLine, syntax.OpEndLine, syntax.OpWordBoundary,
		syntax.OpNoWordBoundary:
		return emit(prefix)
	case syntax.OpLiteral:
		return emit(append(prefix, string(re.Rune)))
	case syntax.OpCharClass:
		// Expand a few representatives: up to 4 runes from the class,
		// preferring digits so community-shaped strings come out.
		runes := classReps(re, 4)
		for _, r := range runes {
			if !emit(append(prefix, string(r))) {
				return false
			}
		}
		return true
	case syntax.OpAnyChar, syntax.OpAnyCharNotNL:
		for _, r := range []rune{'0', '1', ':'} {
			if !emit(append(prefix, string(r))) {
				return false
			}
		}
		return true
	case syntax.OpStar, syntax.OpQuest:
		// zero occurrences, then one.
		if !emit(prefix) {
			return false
		}
		return g.enumerate(re.Sub[0], prefix, emit)
	case syntax.OpPlus:
		// one occurrence, then two.
		if !g.enumerate(re.Sub[0], prefix, emit) {
			return false
		}
		return g.enumerate(re.Sub[0], prefix, func(p []string) bool {
			return g.enumerate(re.Sub[0], p, emit)
		})
	case syntax.OpRepeat:
		min := re.Min
		if min == 0 {
			if !emit(prefix) {
				return false
			}
			min = 1
		}
		// Emit the minimum repetition count only.
		var rep func(n int, p []string) bool
		rep = func(n int, p []string) bool {
			if n == 0 {
				return emit(p)
			}
			return g.enumerate(re.Sub[0], p, func(q []string) bool {
				return rep(n-1, q)
			})
		}
		return rep(min, prefix)
	case syntax.OpCapture:
		return g.enumerate(re.Sub[0], prefix, emit)
	case syntax.OpConcat:
		var chain func(i int, p []string) bool
		chain = func(i int, p []string) bool {
			if i == len(re.Sub) {
				return emit(p)
			}
			return g.enumerate(re.Sub[i], p, func(q []string) bool {
				return chain(i+1, q)
			})
		}
		return chain(0, prefix)
	case syntax.OpAlternate:
		for _, sub := range re.Sub {
			if !g.enumerate(sub, prefix, emit) {
				return false
			}
		}
		return true
	}
	return emit(prefix)
}

// classReps picks up to n representative runes from a character class,
// digits first.
func classReps(re *syntax.Regexp, n int) []rune {
	var digits, others []rune
	for i := 0; i+1 < len(re.Rune); i += 2 {
		lo, hi := re.Rune[i], re.Rune[i+1]
		for r := lo; r <= hi && len(digits)+len(others) < 64; r++ {
			if r >= '0' && r <= '9' {
				digits = append(digits, r)
			} else if r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') {
				others = append(others, r)
			}
		}
	}
	reps := append(digits, others...)
	if len(reps) > n {
		reps = reps[:n]
	}
	return reps
}

// Universe is the finite set of community strings over which all matchers
// in a pair of configurations are evaluated. Each atom corresponds to one
// BDD variable in the symbolic route encoding.
type Universe struct {
	atoms []string
	index map[string]int
}

// NewUniverse builds a universe from literal community strings and vendor
// regex patterns appearing in the two configurations. Literals enter
// directly; each regex contributes bounded exemplars so that behaviourally
// different regexes are separated by at least one atom whenever the
// difference is witnessed within the exemplar bound.
func NewUniverse(literals []string, regexes []string) *Universe {
	seen := map[string]bool{}
	var atoms []string
	add := func(s string) {
		if s == "" || seen[s] {
			return
		}
		seen[s] = true
		atoms = append(atoms, s)
	}
	for _, l := range literals {
		add(l)
	}
	for _, r := range regexes {
		for _, e := range Exemplars(r, 16) {
			if looksLikeCommunity(e) {
				add(e)
			}
		}
	}
	sort.Strings(atoms)
	u := &Universe{atoms: atoms, index: make(map[string]int, len(atoms))}
	for i, a := range atoms {
		u.index[a] = i
	}
	return u
}

// looksLikeCommunity filters exemplar junk: a community atom should be a
// non-empty string of digits and at most one colon separating two digit
// runs ("NN:NN" or plain "NN").
func looksLikeCommunity(s string) bool {
	if s == "" {
		return false
	}
	colons := 0
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == ':':
			colons++
			if colons > 1 || i == 0 || i == len(s)-1 {
				return false
			}
		case s[i] < '0' || s[i] > '9':
			return false
		}
	}
	return true
}

// Atoms returns the sorted universe atoms.
func (u *Universe) Atoms() []string { return u.atoms }

// Size returns the number of atoms.
func (u *Universe) Size() int { return len(u.atoms) }

// Index returns the variable index of a community atom.
func (u *Universe) Index(comm string) (int, bool) {
	i, ok := u.index[comm]
	return i, ok
}

// MatchSet returns the indices of universe atoms matched by m, sorted.
func (u *Universe) MatchSet(m *Matcher) []int {
	var out []int
	for i, a := range u.atoms {
		if m.Matches(a) {
			out = append(out, i)
		}
	}
	return out
}
