package ir

// ClonePolicy deep-copies the routing-policy surface of a configuration —
// route maps, prefix lists, community lists, and as-path lists — so that
// clause- and entry-level edits can be applied without aliasing the
// original. Everything else (interfaces, static routes, ACLs, BGP, OSPF,
// admin distances) is shared by reference: the repair search never
// mutates those components, and sharing keeps a candidate clone cheap
// enough to take per candidate.
func (c *Config) ClonePolicy() *Config {
	out := *c
	out.PrefixLists = make(map[string]*PrefixList, len(c.PrefixLists))
	for n, pl := range c.PrefixLists {
		out.PrefixLists[n] = pl.Clone()
	}
	out.CommunityLists = make(map[string]*CommunityList, len(c.CommunityLists))
	for n, cl := range c.CommunityLists {
		out.CommunityLists[n] = cl.Clone()
	}
	out.ASPathLists = make(map[string]*ASPathList, len(c.ASPathLists))
	for n, al := range c.ASPathLists {
		out.ASPathLists[n] = al.Clone()
	}
	out.RouteMaps = make(map[string]*RouteMap, len(c.RouteMaps))
	for n, rm := range c.RouteMaps {
		out.RouteMaps[n] = rm.Clone()
	}
	return &out
}

// Clone deep-copies the prefix list. Entry ranges are values; spans share
// their line slices (spans are never edited in place).
func (l *PrefixList) Clone() *PrefixList {
	if l == nil {
		return nil
	}
	out := *l
	out.Entries = append([]PrefixListEntry(nil), l.Entries...)
	return &out
}

// Clone deep-copies the community list including each entry's conjunct
// slice.
func (l *CommunityList) Clone() *CommunityList {
	if l == nil {
		return nil
	}
	out := *l
	out.Entries = make([]CommunityListEntry, len(l.Entries))
	for i, e := range l.Entries {
		e.Conjuncts = append([]CommunityMatcher(nil), e.Conjuncts...)
		out.Entries[i] = e
	}
	return &out
}

// Clone deep-copies the as-path list.
func (l *ASPathList) Clone() *ASPathList {
	if l == nil {
		return nil
	}
	out := *l
	out.Entries = append([]ASPathListEntry(nil), l.Entries...)
	return &out
}

// Clone deep-copies the route map down to per-clause match and set
// slices. The Match and SetAction elements themselves are shared: edits
// replace whole elements rather than mutating their interiors, so
// element sharing is safe and keeps clones allocation-light.
func (rm *RouteMap) Clone() *RouteMap {
	if rm == nil {
		return nil
	}
	out := *rm
	out.Clauses = make([]*RouteMapClause, len(rm.Clauses))
	for i, cl := range rm.Clauses {
		out.Clauses[i] = cl.Clone()
	}
	return &out
}

// Clone deep-copies one clause (fresh Matches/Sets slices, shared
// elements).
func (cl *RouteMapClause) Clone() *RouteMapClause {
	if cl == nil {
		return nil
	}
	out := *cl
	out.Matches = append([]Match(nil), cl.Matches...)
	out.Sets = append([]SetAction(nil), cl.Sets...)
	return &out
}
