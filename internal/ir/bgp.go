package ir

import (
	"sort"

	"repro/internal/netaddr"
)

// BGPNeighbor holds the per-peer BGP session configuration — the unit
// Campion's MatchPolicies heuristic pairs across the two routers (by
// neighbor address) and whose non-route-map attributes StructuralDiff
// compares (Table 1, "Other BGP Properties").
type BGPNeighbor struct {
	Addr        netaddr.Addr
	RemoteAS    int64
	Description string

	// Policy chains applied to routes received from / advertised to the
	// peer; names refer to Config.RouteMaps. These are compared with
	// SemanticDiff, not StructuralDiff.
	ImportPolicies []string
	ExportPolicies []string

	RouteReflectorClient bool
	SendCommunity        bool
	NextHopSelf          bool
	EBGPMultihop         bool
	Shutdown             bool
	LocalAS              int64
	Weight               int64

	Span TextSpan
}

// IsIBGP reports whether the session is internal given the router's ASN.
func (n *BGPNeighbor) IsIBGP(localAS int64) bool {
	return n.RemoteAS == localAS
}

// Redistribution injects routes from one protocol into another, filtered
// through an optional route map.
type Redistribution struct {
	From     Protocol
	RouteMap string
	Metric   int64
	Span     TextSpan
}

// BGPConfig is the router's BGP process configuration.
type BGPConfig struct {
	ASN          int64
	RouterID     netaddr.Addr
	Neighbors    map[string]*BGPNeighbor // keyed by peer address string
	Redistribute []Redistribution
	Networks     []netaddr.Prefix // locally originated prefixes
	Span         TextSpan
}

// NewBGPConfig allocates an empty BGP process.
func NewBGPConfig(asn int64) *BGPConfig {
	return &BGPConfig{ASN: asn, Neighbors: map[string]*BGPNeighbor{}}
}

// NeighborAddrs returns the peer addresses in sorted order, for
// deterministic iteration.
func (b *BGPConfig) NeighborAddrs() []string {
	out := make([]string, 0, len(b.Neighbors))
	for a := range b.Neighbors {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// OSPFInterface holds the per-link OSPF attributes StructuralDiff compares
// (Table 1, "OSPF Properties").
type OSPFInterface struct {
	Name          string
	Cost          int
	Area          int64
	Passive       bool
	HelloInterval int
	DeadInterval  int
	NetworkType   string
	Subnet        netaddr.Prefix
	Span          TextSpan
}

// OSPFConfig is the router's OSPF process configuration.
type OSPFConfig struct {
	ProcessID    int
	RouterID     netaddr.Addr
	Interfaces   map[string]*OSPFInterface // keyed by interface name
	Redistribute []Redistribution
	Span         TextSpan
}

// NewOSPFConfig allocates an empty OSPF process.
func NewOSPFConfig(pid int) *OSPFConfig {
	return &OSPFConfig{ProcessID: pid, Interfaces: map[string]*OSPFInterface{}}
}

// InterfaceNames returns interface names in sorted order.
func (o *OSPFConfig) InterfaceNames() []string {
	out := make([]string, 0, len(o.Interfaces))
	for n := range o.Interfaces {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DefaultAdminDistances returns the vendor's default administrative
// distances for the protocols Campion models.
func DefaultAdminDistances(v Vendor) map[Protocol]int {
	switch v {
	case VendorJuniper:
		// JunOS route preferences.
		return map[Protocol]int{
			ProtoConnected: 0,
			ProtoStatic:    5,
			ProtoOSPF:      10,
			ProtoBGP:       170,
			ProtoIBGP:      170,
		}
	case VendorArista:
		// EOS distances (eBGP and iBGP both 200).
		return map[Protocol]int{
			ProtoConnected: 0,
			ProtoStatic:    1,
			ProtoOSPF:      110,
			ProtoBGP:       200,
			ProtoIBGP:      200,
		}
	default:
		// IOS administrative distances.
		return map[Protocol]int{
			ProtoConnected: 0,
			ProtoStatic:    1,
			ProtoOSPF:      110,
			ProtoBGP:       20,
			ProtoIBGP:      200,
		}
	}
}
