package ir

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netaddr"
)

// ClauseAction is the disposition of a route-map clause when its matches
// succeed.
type ClauseAction int

// Clause actions. Fallthrough models JunOS terms that set attributes but
// have no terminal accept/reject: processing continues with the next term.
const (
	ClauseDeny ClauseAction = iota
	ClausePermit
	ClauseFallthrough
)

func (a ClauseAction) String() string {
	switch a {
	case ClausePermit:
		return "permit"
	case ClauseDeny:
		return "deny"
	}
	return "fallthrough"
}

// Match is a route-map match condition. All matches in a clause must hold
// (conjunction); values within one match are alternatives (disjunction),
// mirroring both IOS and JunOS semantics.
type Match interface {
	isMatch()
	String() string
}

// MatchPrefixList matches when any named prefix list permits the route's
// prefix.
type MatchPrefixList struct{ Lists []string }

// MatchPrefixRanges matches the route's prefix against inline prefix
// ranges (JunOS route-filter).
type MatchPrefixRanges struct{ Ranges []netaddr.PrefixRange }

// MatchPrefixListFilter matches the route's prefix against a named prefix
// list with a JunOS match-type modifier applied to every entry:
// "exact" (entry ranges as written), "orlonger" (entry length .. 32), or
// "longer" (entry length+1 .. 32).
type MatchPrefixListFilter struct {
	List     string
	Modifier string
}

// MatchCommunity matches when any named community list matches the route.
type MatchCommunity struct{ Lists []string }

// MatchASPath matches when any named as-path list matches the route.
type MatchASPath struct{ Lists []string }

// MatchMED matches the route's MED exactly.
type MatchMED struct{ Value int64 }

// MatchTag matches the route's tag exactly.
type MatchTag struct{ Value int64 }

// MatchProtocol matches the route's source protocol (redistribution
// policies).
type MatchProtocol struct{ Protocols []Protocol }

// MatchNextHop matches the route's next hop against named prefix lists.
type MatchNextHop struct{ Lists []string }

func (MatchPrefixList) isMatch()       {}
func (MatchPrefixListFilter) isMatch() {}
func (MatchPrefixRanges) isMatch()     {}
func (MatchCommunity) isMatch()        {}
func (MatchASPath) isMatch()           {}
func (MatchMED) isMatch()              {}
func (MatchTag) isMatch()              {}
func (MatchProtocol) isMatch()         {}
func (MatchNextHop) isMatch()          {}

func (m MatchPrefixList) String() string {
	return "prefix-list " + strings.Join(m.Lists, " ")
}
func (m MatchPrefixListFilter) String() string {
	return "prefix-list-filter " + m.List + " " + m.Modifier
}
func (m MatchPrefixRanges) String() string {
	parts := make([]string, len(m.Ranges))
	for i, r := range m.Ranges {
		parts[i] = r.String()
	}
	return "route-filter " + strings.Join(parts, " ")
}
func (m MatchCommunity) String() string {
	return "community " + strings.Join(m.Lists, " ")
}
func (m MatchASPath) String() string {
	return "as-path " + strings.Join(m.Lists, " ")
}
func (m MatchMED) String() string { return fmt.Sprintf("metric %d", m.Value) }
func (m MatchTag) String() string { return fmt.Sprintf("tag %d", m.Value) }
func (m MatchProtocol) String() string {
	parts := make([]string, len(m.Protocols))
	for i, p := range m.Protocols {
		parts[i] = p.String()
	}
	return "protocol " + strings.Join(parts, " ")
}
func (m MatchNextHop) String() string {
	return "next-hop " + strings.Join(m.Lists, " ")
}

// SetAction is a route attribute transformation applied by a permitting
// (or falling-through) clause.
type SetAction interface {
	isSet()
	String() string
}

// SetLocalPref sets the BGP local preference.
type SetLocalPref struct{ Value int64 }

// SetMED sets the multi-exit discriminator.
type SetMED struct{ Value int64 }

// SetCommunities sets or adds community tags. With Additive the tags are
// added to the route's existing set, otherwise they replace it.
type SetCommunities struct {
	Communities []string
	Additive    bool
}

// DeleteCommunity removes communities matching a named community list.
type DeleteCommunity struct{ List string }

// SetNextHop rewrites the route's next hop.
type SetNextHop struct{ Addr netaddr.Addr }

// SetWeight sets the Cisco-proprietary weight.
type SetWeight struct{ Value int64 }

// SetTag sets the route tag.
type SetTag struct{ Value int64 }

// SetASPathPrepend prepends ASNs to the as-path.
type SetASPathPrepend struct{ ASNs []int64 }

func (SetLocalPref) isSet()     {}
func (SetMED) isSet()           {}
func (SetCommunities) isSet()   {}
func (DeleteCommunity) isSet()  {}
func (SetNextHop) isSet()       {}
func (SetWeight) isSet()        {}
func (SetTag) isSet()           {}
func (SetASPathPrepend) isSet() {}

func (s SetLocalPref) String() string { return fmt.Sprintf("local-preference %d", s.Value) }
func (s SetMED) String() string       { return fmt.Sprintf("metric %d", s.Value) }
func (s SetCommunities) String() string {
	mode := ""
	if s.Additive {
		mode = " additive"
	}
	return "community " + strings.Join(s.Communities, " ") + mode
}
func (s DeleteCommunity) String() string { return "comm-list " + s.List + " delete" }
func (s SetNextHop) String() string      { return "next-hop " + s.Addr.String() }
func (s SetWeight) String() string       { return fmt.Sprintf("weight %d", s.Value) }
func (s SetTag) String() string          { return fmt.Sprintf("tag %d", s.Value) }
func (s SetASPathPrepend) String() string {
	parts := make([]string, len(s.ASNs))
	for i, a := range s.ASNs {
		parts[i] = fmt.Sprintf("%d", a)
	}
	return "as-path prepend " + strings.Join(parts, " ")
}

// RouteMapClause is one term of a routing policy.
type RouteMapClause struct {
	Seq     int
	Name    string // JunOS term name, empty for IOS
	Action  ClauseAction
	Matches []Match
	Sets    []SetAction
	Span    TextSpan
}

// RouteMap is an ordered routing policy with an explicit default action
// for routes matching no clause. IOS route-maps default to deny; JunOS
// policy default actions depend on the protocol context and are resolved
// by the parser/translator.
type RouteMap struct {
	Name          string
	Clauses       []*RouteMapClause
	DefaultAction Action
	Span          TextSpan
}

// Route is a concrete route advertisement: the input to route-map
// evaluation, the unit the SRP simulator propagates, and the form in
// which counterexamples are rendered.
type Route struct {
	Prefix      netaddr.Prefix
	Communities map[string]bool
	LocalPref   int64
	MED         int64
	Weight      int64
	Tag         int64
	NextHop     netaddr.Addr
	ASPath      []int64
	Protocol    Protocol
}

// NewRoute returns a route for the prefix with BGP-default attributes.
func NewRoute(p netaddr.Prefix) *Route {
	return &Route{
		Prefix:      p,
		Communities: map[string]bool{},
		LocalPref:   100,
		Protocol:    ProtoBGP,
	}
}

// Clone deep-copies the route so transfer functions can mutate freely.
func (r *Route) Clone() *Route {
	out := *r
	out.Communities = make(map[string]bool, len(r.Communities))
	for c, v := range r.Communities {
		out.Communities[c] = v
	}
	out.ASPath = append([]int64(nil), r.ASPath...)
	return &out
}

// CommunityStrings returns the route's communities in sorted order.
func (r *Route) CommunityStrings() []string {
	out := make([]string, 0, len(r.Communities))
	for c, ok := range r.Communities {
		if ok {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// ASPathString renders the as-path as a space-separated string for regex
// matching, e.g. "65001 65002".
func (r *Route) ASPathString() string {
	parts := make([]string, len(r.ASPath))
	for i, a := range r.ASPath {
		parts[i] = fmt.Sprintf("%d", a)
	}
	return strings.Join(parts, " ")
}

// Equal reports full attribute equality, used by the SRP solver's fixpoint
// detection and by tests.
func (r *Route) Equal(o *Route) bool {
	if r == nil || o == nil {
		return r == o
	}
	if r.Prefix != o.Prefix || r.LocalPref != o.LocalPref || r.MED != o.MED ||
		r.Weight != o.Weight || r.Tag != o.Tag || r.NextHop != o.NextHop ||
		r.Protocol != o.Protocol || len(r.ASPath) != len(o.ASPath) {
		return false
	}
	for i := range r.ASPath {
		if r.ASPath[i] != o.ASPath[i] {
			return false
		}
	}
	if len(r.CommunityStrings()) != len(o.CommunityStrings()) {
		return false
	}
	for _, c := range r.CommunityStrings() {
		if !o.Communities[c] {
			return false
		}
	}
	return true
}

func (r *Route) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s lp=%d med=%d", r.Prefix, r.LocalPref, r.MED)
	if cs := r.CommunityStrings(); len(cs) > 0 {
		fmt.Fprintf(&b, " comm=[%s]", strings.Join(cs, " "))
	}
	if len(r.ASPath) > 0 {
		fmt.Fprintf(&b, " path=[%s]", r.ASPathString())
	}
	return b.String()
}
