package ir

import (
	"repro/internal/community"
	"repro/internal/netaddr"
)

// PolicyResult is the outcome of evaluating a route map on a route.
type PolicyResult struct {
	Action Action
	Route  *Route          // transformed route (nil when denied)
	Clause *RouteMapClause // deciding clause, nil when the default applied
}

// EvalRouteMap runs the route through the route map under the
// configuration's named lists, implementing the concrete semantics that
// the symbolic encoding must agree with (tests cross-check the two).
func (c *Config) EvalRouteMap(rm *RouteMap, in *Route) PolicyResult {
	r := in.Clone()
	for _, cl := range rm.Clauses {
		if !c.clauseMatches(cl, r) {
			continue
		}
		switch cl.Action {
		case ClauseDeny:
			return PolicyResult{Action: Deny, Clause: cl}
		case ClausePermit:
			c.applySets(cl.Sets, r)
			return PolicyResult{Action: Permit, Route: r, Clause: cl}
		case ClauseFallthrough:
			c.applySets(cl.Sets, r)
		}
	}
	if rm.DefaultAction == Permit {
		return PolicyResult{Action: Permit, Route: r}
	}
	return PolicyResult{Action: Deny}
}

func (c *Config) clauseMatches(cl *RouteMapClause, r *Route) bool {
	for _, m := range cl.Matches {
		if !c.matchHolds(m, r) {
			return false
		}
	}
	return true
}

func (c *Config) matchHolds(m Match, r *Route) bool {
	switch m := m.(type) {
	case MatchPrefixList:
		for _, name := range m.Lists {
			pl := c.PrefixLists[name]
			if pl == nil {
				continue // unknown list matches nothing
			}
			if act, ok := pl.Matches(r.Prefix); ok && act == Permit {
				return true
			}
		}
		return false
	case MatchPrefixListFilter:
		pl := c.PrefixLists[m.List]
		if pl == nil {
			return false
		}
		for _, e := range pl.Entries {
			rg := ApplyRangeModifier(e.Range, m.Modifier)
			if rg.ContainsPrefix(r.Prefix) {
				return e.Action == Permit
			}
		}
		return false
	case MatchPrefixRanges:
		for _, pr := range m.Ranges {
			if pr.ContainsPrefix(r.Prefix) {
				return true
			}
		}
		return false
	case MatchCommunity:
		for _, name := range m.Lists {
			clist := c.CommunityLists[name]
			if clist == nil {
				continue
			}
			if act, ok := communityListMatches(clist, r); ok && act == Permit {
				return true
			}
		}
		return false
	case MatchASPath:
		for _, name := range m.Lists {
			al := c.ASPathLists[name]
			if al == nil {
				continue
			}
			if act, ok := asPathListMatches(al, r); ok && act == Permit {
				return true
			}
		}
		return false
	case MatchMED:
		return r.MED == m.Value
	case MatchTag:
		return r.Tag == m.Value
	case MatchProtocol:
		for _, p := range m.Protocols {
			if r.Protocol == p {
				return true
			}
		}
		return false
	case MatchNextHop:
		for _, name := range m.Lists {
			pl := c.PrefixLists[name]
			if pl == nil {
				continue
			}
			nh := netaddr.Prefix{Addr: r.NextHop, Len: 32}
			if act, ok := pl.Matches(nh); ok && act == Permit {
				return true
			}
		}
		return false
	}
	return false
}

// ApplyRangeModifier widens a prefix range per a JunOS match-type
// modifier ("exact" leaves it unchanged, "orlonger" extends the upper
// length bound to 32, "longer" additionally excludes the entry's own
// lengths).
func ApplyRangeModifier(r netaddr.PrefixRange, modifier string) netaddr.PrefixRange {
	switch modifier {
	case "orlonger":
		return netaddr.PrefixRange{Prefix: r.Prefix, Lo: r.Lo, Hi: 32}
	case "longer":
		lo := r.Hi + 1
		return netaddr.PrefixRange{Prefix: r.Prefix, Lo: lo, Hi: 32}
	}
	return r
}

// communityListMatches returns the action of the first entry whose
// conjuncts all match some community of the route, or (Deny, false) when
// no entry matches.
func communityListMatches(l *CommunityList, r *Route) (Action, bool) {
	for _, e := range l.Entries {
		if communityEntryMatches(e, r) {
			return e.Action, true
		}
	}
	return Deny, false
}

func communityEntryMatches(e CommunityListEntry, r *Route) bool {
	for _, m := range e.Conjuncts {
		if !routeHasCommunityMatching(r, m) {
			return false
		}
	}
	return len(e.Conjuncts) > 0
}

func routeHasCommunityMatching(r *Route, m CommunityMatcher) bool {
	if m.Regex == "" {
		return r.Communities[m.Literal]
	}
	cm, err := community.Compile(m.Regex)
	if err != nil {
		return false
	}
	for comm, ok := range r.Communities {
		if ok && cm.Matches(comm) {
			return true
		}
	}
	return false
}

func asPathListMatches(l *ASPathList, r *Route) (Action, bool) {
	path := r.ASPathString()
	for _, e := range l.Entries {
		m, err := community.Compile(e.Regex)
		if err != nil {
			continue
		}
		if m.Matches(path) {
			return e.Action, true
		}
	}
	return Deny, false
}

func (c *Config) applySets(sets []SetAction, r *Route) {
	for _, s := range sets {
		switch s := s.(type) {
		case SetLocalPref:
			r.LocalPref = s.Value
		case SetMED:
			r.MED = s.Value
		case SetWeight:
			r.Weight = s.Value
		case SetTag:
			r.Tag = s.Value
		case SetNextHop:
			r.NextHop = s.Addr
		case SetCommunities:
			if !s.Additive {
				r.Communities = map[string]bool{}
			}
			for _, comm := range s.Communities {
				r.Communities[comm] = true
			}
		case DeleteCommunity:
			clist := c.CommunityLists[s.List]
			if clist == nil {
				continue
			}
			for comm := range r.Communities {
				if deleteListMatchesCommunity(clist, comm) {
					delete(r.Communities, comm)
				}
			}
		case SetASPathPrepend:
			r.ASPath = append(append([]int64{}, s.ASNs...), r.ASPath...)
		}
	}
}

// deleteListMatchesCommunity applies the comm-list delete semantics: a
// community is deleted when a single-matcher permit entry matches it.
func deleteListMatchesCommunity(l *CommunityList, comm string) bool {
	for _, e := range l.Entries {
		if len(e.Conjuncts) != 1 {
			continue
		}
		m := e.Conjuncts[0]
		var hit bool
		if m.Regex == "" {
			hit = m.Literal == comm
		} else if cm, err := community.Compile(m.Regex); err == nil {
			hit = cm.Matches(comm)
		}
		if hit {
			return e.Action == Permit
		}
	}
	return false
}

// EvalPolicyChain evaluates a sequence of route maps (a JunOS policy
// chain): the first map that explicitly decides wins; a route permitted by
// map i is *not* re-examined by map i+1 in IOS semantics, so for IOS we
// only ever build single-element chains. For JunOS the chain semantics is
// first-terminal-action-wins with set accumulation; the juniper parser
// therefore pre-merges chains into a single RouteMap, and this helper only
// deals with the degenerate single-policy case plus an explicit default.
func (c *Config) EvalPolicyChain(names []string, in *Route, def Action) PolicyResult {
	for _, name := range names {
		rm := c.RouteMaps[name]
		if rm == nil {
			continue
		}
		return c.EvalRouteMap(rm, in)
	}
	if def == Permit {
		return PolicyResult{Action: Permit, Route: in.Clone()}
	}
	return PolicyResult{Action: Deny}
}
