// Package ir defines Campion's vendor-independent configuration
// representation — the role Batfish's vendor-independent model plays for
// the original system. Parsers for each vendor dialect (internal/cisco,
// internal/juniper) normalize configurations into this IR; the semantic
// and structural differs consume it.
//
// Every IR element carries a TextSpan pointing back at the configuration
// lines it was parsed from. Text localization is therefore exact: a
// difference in an IR element is reported with the original vendor text.
package ir

import (
	"fmt"
	"strings"

	"repro/internal/netaddr"
)

// Vendor identifies the configuration dialect a Config was parsed from.
type Vendor int

// Supported vendors.
const (
	VendorUnknown Vendor = iota
	VendorCisco
	VendorJuniper
	VendorArista
)

func (v Vendor) String() string {
	switch v {
	case VendorCisco:
		return "cisco"
	case VendorJuniper:
		return "juniper"
	case VendorArista:
		return "arista"
	}
	return "unknown"
}

// TextSpan records where an IR element came from in the original
// configuration, including the raw text, for exact text localization.
type TextSpan struct {
	File      string
	StartLine int // 1-based, inclusive
	EndLine   int // 1-based, inclusive
	Lines     []string
}

// Text returns the raw configuration text of the span.
func (s TextSpan) Text() string {
	return strings.Join(s.Lines, "\n")
}

// Location returns "file:start-end" for presentation.
func (s TextSpan) Location() string {
	if s.File == "" && s.StartLine == 0 {
		return ""
	}
	if s.StartLine == s.EndLine {
		return fmt.Sprintf("%s:%d", s.File, s.StartLine)
	}
	return fmt.Sprintf("%s:%d-%d", s.File, s.StartLine, s.EndLine)
}

// IsZero reports whether the span carries no information.
func (s TextSpan) IsZero() bool {
	return s.File == "" && s.StartLine == 0 && len(s.Lines) == 0
}

// Merge extends s to cover t as well (same file assumed).
func (s TextSpan) Merge(t TextSpan) TextSpan {
	if s.IsZero() {
		return t
	}
	if t.IsZero() {
		return s
	}
	out := s
	if t.StartLine < out.StartLine {
		out.StartLine = t.StartLine
	}
	if t.EndLine > out.EndLine {
		out.EndLine = t.EndLine
	}
	out.Lines = append(append([]string{}, s.Lines...), t.Lines...)
	return out
}

// Action is a permit/deny decision.
type Action int

// Actions.
const (
	Deny Action = iota
	Permit
)

func (a Action) String() string {
	if a == Permit {
		return "permit"
	}
	return "deny"
}

// Protocol identifies a routing protocol, used by redistribution and
// administrative distances.
type Protocol int

// Protocols.
const (
	ProtoConnected Protocol = iota
	ProtoStatic
	ProtoOSPF
	ProtoBGP
	ProtoIBGP
	ProtoAggregate
	ProtoLocal
)

func (p Protocol) String() string {
	switch p {
	case ProtoConnected:
		return "connected"
	case ProtoStatic:
		return "static"
	case ProtoOSPF:
		return "ospf"
	case ProtoBGP:
		return "bgp"
	case ProtoIBGP:
		return "ibgp"
	case ProtoAggregate:
		return "aggregate"
	case ProtoLocal:
		return "local"
	}
	return fmt.Sprintf("protocol(%d)", int(p))
}

// Config is a parsed router configuration in vendor-independent form.
type Config struct {
	Hostname string
	Vendor   Vendor
	File     string

	Interfaces   []*Interface
	StaticRoutes []*StaticRoute

	PrefixLists    map[string]*PrefixList
	CommunityLists map[string]*CommunityList
	ASPathLists    map[string]*ASPathList
	ACLs           map[string]*ACL
	RouteMaps      map[string]*RouteMap

	BGP  *BGPConfig
	OSPF *OSPFConfig

	// AdminDistances maps a protocol to its administrative distance;
	// parsers pre-fill vendor defaults and overwrite explicitly
	// configured values.
	AdminDistances map[Protocol]int
	// ExplicitDistances marks protocols whose distance was explicitly
	// configured (vendor defaults differ by design and are only compared
	// when at least one side configured a value).
	ExplicitDistances map[Protocol]bool

	// Unrecognized collects configuration lines the parser did not
	// understand. They are surfaced, never silently dropped.
	Unrecognized []TextSpan
}

// NewConfig returns an empty configuration with all maps allocated.
func NewConfig(hostname string, vendor Vendor) *Config {
	return &Config{
		Hostname:          hostname,
		Vendor:            vendor,
		PrefixLists:       map[string]*PrefixList{},
		CommunityLists:    map[string]*CommunityList{},
		ASPathLists:       map[string]*ASPathList{},
		ACLs:              map[string]*ACL{},
		RouteMaps:         map[string]*RouteMap{},
		AdminDistances:    map[Protocol]int{},
		ExplicitDistances: map[Protocol]bool{},
	}
}

// Interface is a router interface with its L3 and IGP attributes.
type Interface struct {
	Name        string
	Address     netaddr.Addr
	Subnet      netaddr.Prefix // connected subnet (address + mask)
	HasAddress  bool
	Description string
	Shutdown    bool

	// Data-plane filters applied to the interface.
	ACLIn  string
	ACLOut string

	// OSPF per-interface attributes (consolidated into OSPFConfig too).
	OSPFCost    int
	OSPFArea    int64
	OSPFPassive bool
	OSPFEnabled bool

	Span TextSpan
}

// StaticRoute is a single configured static route.
type StaticRoute struct {
	Prefix        netaddr.Prefix
	NextHop       netaddr.Addr
	HasNextHop    bool
	Interface     string // exit interface, if configured instead of next hop
	AdminDistance int
	Tag           int64
	HasTag        bool
	Span          TextSpan
}

func (r *StaticRoute) String() string {
	nh := r.Interface
	if r.HasNextHop {
		nh = r.NextHop.String()
	}
	return fmt.Sprintf("%s via %s (ad %d)", r.Prefix, nh, r.AdminDistance)
}

// PrefixList is a named list of (action, prefix range) entries, matched
// first-entry-wins.
type PrefixList struct {
	Name    string
	Entries []PrefixListEntry
	Span    TextSpan
}

// PrefixListEntry is one line of a prefix list.
type PrefixListEntry struct {
	Seq    int
	Action Action
	Range  netaddr.PrefixRange
	Span   TextSpan
}

// Matches reports the action of the first matching entry, or (Deny, false)
// when nothing matches (the implicit deny).
func (l *PrefixList) Matches(p netaddr.Prefix) (Action, bool) {
	for _, e := range l.Entries {
		if e.Range.ContainsPrefix(p) {
			return e.Action, true
		}
	}
	return Deny, false
}

// CommunityMatcher matches a single community string, either exactly
// (Literal) or by regular expression (Regex). Exactly one field is set.
type CommunityMatcher struct {
	Literal string
	Regex   string
}

func (m CommunityMatcher) String() string {
	if m.Regex != "" {
		return "regex:" + m.Regex
	}
	return m.Literal
}

// CommunityListEntry is one entry of a community list: the entry matches a
// route when ALL of its conjunct matchers match some community on the route
// (this captures both the Cisco one-line-AND semantics and the Juniper
// members-AND semantics). Entries within a list are tried in order.
type CommunityListEntry struct {
	Action    Action
	Conjuncts []CommunityMatcher
	Span      TextSpan
}

// CommunityList is a named list of community entries, first-match-wins
// across entries.
type CommunityList struct {
	Name    string
	Entries []CommunityListEntry
	Span    TextSpan
}

// ASPathListEntry is one regex entry of an as-path access list.
type ASPathListEntry struct {
	Action Action
	Regex  string
	Span   TextSpan
}

// ASPathList is a named list of as-path regex entries.
type ASPathList struct {
	Name    string
	Entries []ASPathListEntry
	Span    TextSpan
}
