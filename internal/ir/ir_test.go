package ir

import (
	"testing"

	"repro/internal/netaddr"
)

func TestTextSpan(t *testing.T) {
	s := TextSpan{File: "r.cfg", StartLine: 3, EndLine: 5, Lines: []string{"a", "b", "c"}}
	if s.Text() != "a\nb\nc" {
		t.Errorf("Text = %q", s.Text())
	}
	if s.Location() != "r.cfg:3-5" {
		t.Errorf("Location = %q", s.Location())
	}
	one := TextSpan{File: "r.cfg", StartLine: 7, EndLine: 7, Lines: []string{"x"}}
	if one.Location() != "r.cfg:7" {
		t.Errorf("Location = %q", one.Location())
	}
	var zero TextSpan
	if !zero.IsZero() || zero.Location() != "" {
		t.Error("zero span")
	}
	m := s.Merge(one)
	if m.StartLine != 3 || m.EndLine != 7 || len(m.Lines) != 4 {
		t.Errorf("Merge = %+v", m)
	}
	if !zero.Merge(zero).IsZero() {
		t.Error("merge of zeros should be zero")
	}
	if s.Merge(zero).StartLine != 3 {
		t.Error("merge with zero should be identity")
	}
}

func TestPrefixListMatches(t *testing.T) {
	pl := &PrefixList{
		Name: "NETS",
		Entries: []PrefixListEntry{
			{Action: Permit, Range: netaddr.MustParsePrefixRange("10.9.0.0/16 : 16-32")},
			{Action: Deny, Range: netaddr.MustParsePrefixRange("10.0.0.0/8 : 8-32")},
			{Action: Permit, Range: netaddr.MustParsePrefixRange("0.0.0.0/0 : 0-32")},
		},
	}
	if a, ok := pl.Matches(netaddr.MustParsePrefix("10.9.1.0/24")); !ok || a != Permit {
		t.Error("first entry should permit 10.9.1.0/24")
	}
	if a, ok := pl.Matches(netaddr.MustParsePrefix("10.8.0.0/16")); !ok || a != Deny {
		t.Error("second entry should deny 10.8.0.0/16")
	}
	if a, ok := pl.Matches(netaddr.MustParsePrefix("192.0.2.0/24")); !ok || a != Permit {
		t.Error("third entry should permit 192.0.2.0/24")
	}
	empty := &PrefixList{Name: "E"}
	if _, ok := empty.Matches(netaddr.MustParsePrefix("10.0.0.0/8")); ok {
		t.Error("empty list matches nothing")
	}
}

func TestACLEvaluate(t *testing.T) {
	tcp := NewACLLine(Permit)
	tcp.Protocol = ProtoNumber(ProtoNumTCP)
	tcp.Dst = []netaddr.Wildcard{netaddr.WildcardFromPrefix(netaddr.MustParsePrefix("10.0.0.0/8"))}
	tcp.DstPorts = []netaddr.PortRange{{Lo: 80, Hi: 80}, {Lo: 443, Hi: 443}}

	icmp := NewACLLine(Deny)
	icmp.Protocol = ProtoNumber(ProtoNumICMP)
	icmp.ICMPType = 8

	anyAllow := NewACLLine(Permit)
	anyAllow.Src = []netaddr.Wildcard{netaddr.WildcardFromPrefix(netaddr.MustParsePrefix("192.0.2.0/24"))}

	acl := &ACL{Name: "T", Lines: []*ACLLine{tcp, icmp, anyAllow}}

	web := Packet{Src: netaddr.MustParseAddr("1.1.1.1"), Dst: netaddr.MustParseAddr("10.2.3.4"), Protocol: ProtoNumTCP, DstPort: 443}
	if a, l := acl.Evaluate(web); a != Permit || l != tcp {
		t.Error("web packet should hit the tcp line")
	}
	sshOut := web
	sshOut.DstPort = 22
	if a, _ := acl.Evaluate(sshOut); a != Deny {
		t.Error("port 22 to 10/8 should fall to implicit deny")
	}
	ping := Packet{Src: netaddr.MustParseAddr("192.0.2.9"), Dst: netaddr.MustParseAddr("8.8.8.8"), Protocol: ProtoNumICMP, ICMPType: 8}
	if a, l := acl.Evaluate(ping); a != Deny || l != icmp {
		t.Error("echo request should hit the icmp deny before the src permit")
	}
	pong := ping
	pong.ICMPType = 0
	if a, l := acl.Evaluate(pong); a != Permit || l != anyAllow {
		t.Error("echo reply from 192.0.2/24 should hit the src permit")
	}
}

func TestACLEstablished(t *testing.T) {
	est := NewACLLine(Permit)
	est.Protocol = ProtoNumber(ProtoNumTCP)
	est.Established = true
	acl := &ACL{Name: "E", Lines: []*ACLLine{est}}

	syn := Packet{Protocol: ProtoNumTCP}
	if a, _ := acl.Evaluate(syn); a != Permit {
		// SYN has neither ACK nor RST: must not match established.
		t.Log("ok: syn denied")
	} else {
		t.Error("plain SYN should not match established")
	}
	ack := Packet{Protocol: ProtoNumTCP, TCPAck: true}
	if a, _ := acl.Evaluate(ack); a != Permit {
		t.Error("ACK should match established")
	}
	rst := Packet{Protocol: ProtoNumTCP, TCPRst: true}
	if a, _ := acl.Evaluate(rst); a != Permit {
		t.Error("RST should match established")
	}
	udp := Packet{Protocol: ProtoNumUDP, TCPAck: true}
	if a, _ := acl.Evaluate(udp); a == Permit {
		t.Error("UDP can never match established")
	}
}

func TestProtocolByName(t *testing.T) {
	for name, num := range map[string]uint8{
		"icmp": ProtoNumICMP, "tcp": ProtoNumTCP, "udp": ProtoNumUDP,
		"gre": ProtoNumGRE, "esp": ProtoNumESP, "ospf": ProtoNumOSPF,
	} {
		m, ok := ProtocolByName(name)
		if !ok || m.Any || m.Number != num {
			t.Errorf("ProtocolByName(%q) = %+v ok=%v", name, m, ok)
		}
	}
	m, ok := ProtocolByName("ip")
	if !ok || !m.Any {
		t.Error("ip should be any-protocol")
	}
	if _, ok := ProtocolByName("bogus"); ok {
		t.Error("bogus protocol should not resolve")
	}
}

// figure1Cisco builds the IR of Figure 1(a): prefix list with le 32,
// community list with OR semantics, three-clause route map, implicit deny.
func figure1Cisco() *Config {
	c := NewConfig("cisco_router", VendorCisco)
	c.PrefixLists["NETS"] = &PrefixList{
		Name: "NETS",
		Entries: []PrefixListEntry{
			{Action: Permit, Range: netaddr.MustParsePrefixRange("10.9.0.0/16 : 16-32")},
			{Action: Permit, Range: netaddr.MustParsePrefixRange("10.100.0.0/16 : 16-32")},
		},
	}
	c.CommunityLists["COMM"] = &CommunityList{
		Name: "COMM",
		Entries: []CommunityListEntry{
			{Action: Permit, Conjuncts: []CommunityMatcher{{Literal: "10:10"}}},
			{Action: Permit, Conjuncts: []CommunityMatcher{{Literal: "10:11"}}},
		},
	}
	c.RouteMaps["POL"] = &RouteMap{
		Name:          "POL",
		DefaultAction: Deny,
		Clauses: []*RouteMapClause{
			{Seq: 10, Action: ClauseDeny, Matches: []Match{MatchPrefixList{Lists: []string{"NETS"}}}},
			{Seq: 20, Action: ClauseDeny, Matches: []Match{MatchCommunity{Lists: []string{"COMM"}}}},
			{Seq: 30, Action: ClausePermit, Sets: []SetAction{SetLocalPref{Value: 30}}},
		},
	}
	return c
}

// figure1Juniper builds the IR of Figure 1(b): exact-length prefix list,
// community with AND semantics, and accept fall-through via rule3.
func figure1Juniper() *Config {
	c := NewConfig("juniper_router", VendorJuniper)
	c.PrefixLists["NETS"] = &PrefixList{
		Name: "NETS",
		Entries: []PrefixListEntry{
			{Action: Permit, Range: netaddr.MustParsePrefixRange("10.9.0.0/16 : 16-16")},
			{Action: Permit, Range: netaddr.MustParsePrefixRange("10.100.0.0/16 : 16-16")},
		},
	}
	c.CommunityLists["COMM"] = &CommunityList{
		Name: "COMM",
		Entries: []CommunityListEntry{
			{Action: Permit, Conjuncts: []CommunityMatcher{{Literal: "10:10"}, {Literal: "10:11"}}},
		},
	}
	c.RouteMaps["POL"] = &RouteMap{
		Name:          "POL",
		DefaultAction: Deny,
		Clauses: []*RouteMapClause{
			{Seq: 1, Name: "rule1", Action: ClauseDeny, Matches: []Match{MatchPrefixList{Lists: []string{"NETS"}}}},
			{Seq: 2, Name: "rule2", Action: ClauseDeny, Matches: []Match{MatchCommunity{Lists: []string{"COMM"}}}},
			{Seq: 3, Name: "rule3", Action: ClausePermit, Sets: []SetAction{SetLocalPref{Value: 30}}},
		},
	}
	return c
}

func TestFigure1ConcreteSemantics(t *testing.T) {
	cisco, juniper := figure1Cisco(), figure1Juniper()
	cpol, jpol := cisco.RouteMaps["POL"], juniper.RouteMaps["POL"]

	// Difference 1: a /24 inside 10.9/16. Cisco rejects (NETS le 32
	// matches), Juniper accepts via rule3 (NETS matches /16 only).
	r := NewRoute(netaddr.MustParsePrefix("10.9.1.0/24"))
	if res := cisco.EvalRouteMap(cpol, r); res.Action != Deny {
		t.Error("cisco should reject 10.9.1.0/24")
	}
	if res := juniper.EvalRouteMap(jpol, r); res.Action != Permit || res.Route.LocalPref != 30 {
		t.Error("juniper should accept 10.9.1.0/24 with local-pref 30")
	}
	// The exact /16 is rejected by both.
	r16 := NewRoute(netaddr.MustParsePrefix("10.9.0.0/16"))
	if res := cisco.EvalRouteMap(cpol, r16); res.Action != Deny {
		t.Error("cisco should reject the /16")
	}
	if res := juniper.EvalRouteMap(jpol, r16); res.Action != Deny {
		t.Error("juniper should reject the /16")
	}

	// Difference 2: a route tagged with only 10:10. Cisco's OR community
	// list rejects; Juniper's AND community accepts via rule3.
	r2 := NewRoute(netaddr.MustParsePrefix("192.0.2.0/24"))
	r2.Communities["10:10"] = true
	if res := cisco.EvalRouteMap(cpol, r2); res.Action != Deny {
		t.Error("cisco should reject a route with community 10:10")
	}
	if res := juniper.EvalRouteMap(jpol, r2); res.Action != Permit {
		t.Error("juniper should accept a route with only community 10:10")
	}
	// Both communities present: both reject.
	r3 := NewRoute(netaddr.MustParsePrefix("192.0.2.0/24"))
	r3.Communities["10:10"] = true
	r3.Communities["10:11"] = true
	if res := cisco.EvalRouteMap(cpol, r3); res.Action != Deny {
		t.Error("cisco should reject both-communities route")
	}
	if res := juniper.EvalRouteMap(jpol, r3); res.Action != Deny {
		t.Error("juniper should reject both-communities route")
	}
	// No communities, prefix outside NETS: both accept with lp 30.
	r4 := NewRoute(netaddr.MustParsePrefix("192.0.2.0/24"))
	cres, jres := cisco.EvalRouteMap(cpol, r4), juniper.EvalRouteMap(jpol, r4)
	if cres.Action != Permit || jres.Action != Permit {
		t.Error("clean route should be accepted by both")
	}
	if cres.Route.LocalPref != 30 || jres.Route.LocalPref != 30 {
		t.Error("both should set local-pref 30")
	}
}

func TestFallthroughClause(t *testing.T) {
	c := NewConfig("r", VendorJuniper)
	c.RouteMaps["P"] = &RouteMap{
		Name:          "P",
		DefaultAction: Deny,
		Clauses: []*RouteMapClause{
			{Action: ClauseFallthrough, Sets: []SetAction{SetCommunities{Communities: []string{"1:1"}, Additive: true}}},
			{Action: ClausePermit, Sets: []SetAction{SetLocalPref{Value: 200}}},
		},
	}
	r := NewRoute(netaddr.MustParsePrefix("10.0.0.0/8"))
	res := c.EvalRouteMap(c.RouteMaps["P"], r)
	if res.Action != Permit {
		t.Fatal("route should be accepted")
	}
	if !res.Route.Communities["1:1"] || res.Route.LocalPref != 200 {
		t.Error("fall-through sets should accumulate before the terminal clause")
	}
}

func TestDefaultActionPermit(t *testing.T) {
	c := NewConfig("r", VendorJuniper)
	rm := &RouteMap{Name: "P", DefaultAction: Permit}
	r := NewRoute(netaddr.MustParsePrefix("10.0.0.0/8"))
	res := c.EvalRouteMap(rm, r)
	if res.Action != Permit || res.Clause != nil {
		t.Error("empty map with default permit should accept via default")
	}
}

func TestSetActions(t *testing.T) {
	c := NewConfig("r", VendorCisco)
	rm := &RouteMap{
		Name:          "S",
		DefaultAction: Deny,
		Clauses: []*RouteMapClause{{
			Action: ClausePermit,
			Sets: []SetAction{
				SetMED{Value: 50},
				SetWeight{Value: 10},
				SetTag{Value: 77},
				SetNextHop{Addr: netaddr.MustParseAddr("10.0.0.1")},
				SetCommunities{Communities: []string{"2:2"}}, // replace
				SetASPathPrepend{ASNs: []int64{65000, 65000}},
			},
		}},
	}
	r := NewRoute(netaddr.MustParsePrefix("10.0.0.0/8"))
	r.Communities["9:9"] = true
	r.ASPath = []int64{1}
	res := c.EvalRouteMap(rm, r)
	if res.Action != Permit {
		t.Fatal("should permit")
	}
	out := res.Route
	if out.MED != 50 || out.Weight != 10 || out.Tag != 77 {
		t.Error("numeric sets")
	}
	if out.NextHop != netaddr.MustParseAddr("10.0.0.1") {
		t.Error("next hop set")
	}
	if out.Communities["9:9"] || !out.Communities["2:2"] {
		t.Error("non-additive community set should replace")
	}
	if len(out.ASPath) != 3 || out.ASPath[0] != 65000 || out.ASPath[2] != 1 {
		t.Errorf("prepend: %v", out.ASPath)
	}
	// Input route must be unchanged.
	if r.MED != 0 || r.Communities["2:2"] {
		t.Error("evaluation must not mutate the input route")
	}
}

func TestDeleteCommunity(t *testing.T) {
	c := NewConfig("r", VendorCisco)
	c.CommunityLists["DEL"] = &CommunityList{
		Name: "DEL",
		Entries: []CommunityListEntry{
			{Action: Permit, Conjuncts: []CommunityMatcher{{Regex: "^10:.*$"}}},
		},
	}
	rm := &RouteMap{
		Name:          "D",
		DefaultAction: Deny,
		Clauses: []*RouteMapClause{{
			Action: ClausePermit,
			Sets:   []SetAction{DeleteCommunity{List: "DEL"}},
		}},
	}
	r := NewRoute(netaddr.MustParsePrefix("10.0.0.0/8"))
	r.Communities["10:5"] = true
	r.Communities["20:5"] = true
	res := c.EvalRouteMap(rm, r)
	if res.Route.Communities["10:5"] {
		t.Error("10:5 should be deleted")
	}
	if !res.Route.Communities["20:5"] {
		t.Error("20:5 should survive")
	}
}

func TestMatchVariants(t *testing.T) {
	c := NewConfig("r", VendorCisco)
	c.PrefixLists["NH"] = &PrefixList{
		Name:    "NH",
		Entries: []PrefixListEntry{{Action: Permit, Range: netaddr.ExactRange(netaddr.MustParsePrefix("10.0.0.1/32"))}},
	}
	r := NewRoute(netaddr.MustParsePrefix("192.0.2.0/24"))
	r.MED = 5
	r.Tag = 7
	r.NextHop = netaddr.MustParseAddr("10.0.0.1")
	r.Protocol = ProtoOSPF

	if !c.matchHolds(MatchMED{Value: 5}, r) || c.matchHolds(MatchMED{Value: 6}, r) {
		t.Error("MED match")
	}
	if !c.matchHolds(MatchTag{Value: 7}, r) || c.matchHolds(MatchTag{Value: 8}, r) {
		t.Error("tag match")
	}
	if !c.matchHolds(MatchProtocol{Protocols: []Protocol{ProtoOSPF, ProtoStatic}}, r) {
		t.Error("protocol match")
	}
	if c.matchHolds(MatchProtocol{Protocols: []Protocol{ProtoStatic}}, r) {
		t.Error("protocol mismatch")
	}
	if !c.matchHolds(MatchNextHop{Lists: []string{"NH"}}, r) {
		t.Error("next-hop match")
	}
	if !c.matchHolds(MatchPrefixRanges{Ranges: []netaddr.PrefixRange{netaddr.MustParsePrefixRange("192.0.2.0/24 : 24-24")}}, r) {
		t.Error("inline range match")
	}
	// Unknown list names match nothing.
	if c.matchHolds(MatchPrefixList{Lists: []string{"NOPE"}}, r) {
		t.Error("unknown prefix list should not match")
	}
	if c.matchHolds(MatchCommunity{Lists: []string{"NOPE"}}, r) {
		t.Error("unknown community list should not match")
	}
	if c.matchHolds(MatchASPath{Lists: []string{"NOPE"}}, r) {
		t.Error("unknown as-path list should not match")
	}
}

func TestASPathMatch(t *testing.T) {
	c := NewConfig("r", VendorCisco)
	c.ASPathLists["AP"] = &ASPathList{
		Name:    "AP",
		Entries: []ASPathListEntry{{Action: Permit, Regex: "_65000_"}},
	}
	r := NewRoute(netaddr.MustParsePrefix("10.0.0.0/8"))
	r.ASPath = []int64{65000, 65001}
	if !c.matchHolds(MatchASPath{Lists: []string{"AP"}}, r) {
		t.Error("as-path 65000 65001 should match _65000_")
	}
	r.ASPath = []int64{165000}
	if c.matchHolds(MatchASPath{Lists: []string{"AP"}}, r) {
		t.Error("165000 should not match _65000_")
	}
}

func TestRouteEqualClone(t *testing.T) {
	r := NewRoute(netaddr.MustParsePrefix("10.0.0.0/8"))
	r.Communities["10:10"] = true
	r.ASPath = []int64{1, 2}
	s := r.Clone()
	if !r.Equal(s) {
		t.Error("clone should be equal")
	}
	s.Communities["10:11"] = true
	if r.Equal(s) {
		t.Error("community change should break equality")
	}
	if r.Communities["10:11"] {
		t.Error("clone must not share the community map")
	}
	s2 := r.Clone()
	s2.ASPath[0] = 9
	if r.ASPath[0] == 9 {
		t.Error("clone must not share the as-path slice")
	}
	if !r.Equal(r) {
		t.Error("reflexive equality")
	}
	var nilr *Route
	if nilr.Equal(r) || r.Equal(nilr) {
		t.Error("nil inequality")
	}
	if !nilr.Equal(nilr) {
		t.Error("nil == nil")
	}
}

func TestEvalPolicyChain(t *testing.T) {
	c := figure1Cisco()
	r := NewRoute(netaddr.MustParsePrefix("10.9.1.0/24"))
	res := c.EvalPolicyChain([]string{"POL"}, r, Permit)
	if res.Action != Deny {
		t.Error("chain should apply POL")
	}
	res = c.EvalPolicyChain(nil, r, Permit)
	if res.Action != Permit {
		t.Error("empty chain should use the default")
	}
	res = c.EvalPolicyChain([]string{"MISSING"}, r, Deny)
	if res.Action != Deny {
		t.Error("missing map should fall to the default")
	}
}

func TestStringers(t *testing.T) {
	if VendorCisco.String() != "cisco" || VendorJuniper.String() != "juniper" || VendorUnknown.String() != "unknown" {
		t.Error("vendor strings")
	}
	if Permit.String() != "permit" || Deny.String() != "deny" {
		t.Error("action strings")
	}
	if ProtoBGP.String() != "bgp" || ProtoConnected.String() != "connected" {
		t.Error("protocol strings")
	}
	if ClausePermit.String() != "permit" || ClauseFallthrough.String() != "fallthrough" {
		t.Error("clause action strings")
	}
	sr := &StaticRoute{Prefix: netaddr.MustParsePrefix("10.1.1.2/31"), NextHop: netaddr.MustParseAddr("10.2.2.2"), HasNextHop: true, AdminDistance: 1}
	if sr.String() != "10.1.1.2/31 via 10.2.2.2 (ad 1)" {
		t.Errorf("static route string = %q", sr.String())
	}
	r := NewRoute(netaddr.MustParsePrefix("10.0.0.0/8"))
	r.Communities["10:10"] = true
	r.ASPath = []int64{65000}
	if got := r.String(); got == "" {
		t.Error("route string empty")
	}
}

func TestBGPOSPFHelpers(t *testing.T) {
	b := NewBGPConfig(65000)
	b.Neighbors["10.0.0.2"] = &BGPNeighbor{Addr: netaddr.MustParseAddr("10.0.0.2"), RemoteAS: 65000}
	b.Neighbors["10.0.0.1"] = &BGPNeighbor{Addr: netaddr.MustParseAddr("10.0.0.1"), RemoteAS: 65001}
	addrs := b.NeighborAddrs()
	if len(addrs) != 2 || addrs[0] != "10.0.0.1" {
		t.Errorf("NeighborAddrs = %v", addrs)
	}
	if !b.Neighbors["10.0.0.2"].IsIBGP(65000) || b.Neighbors["10.0.0.1"].IsIBGP(65000) {
		t.Error("IsIBGP")
	}
	o := NewOSPFConfig(1)
	o.Interfaces["ge-0/0/1"] = &OSPFInterface{Name: "ge-0/0/1"}
	o.Interfaces["ae0"] = &OSPFInterface{Name: "ae0"}
	names := o.InterfaceNames()
	if len(names) != 2 || names[0] != "ae0" {
		t.Errorf("InterfaceNames = %v", names)
	}
	cd := DefaultAdminDistances(VendorCisco)
	jd := DefaultAdminDistances(VendorJuniper)
	if cd[ProtoStatic] != 1 || jd[ProtoStatic] != 5 {
		t.Error("default admin distances")
	}
}

func TestMatchAndSetStringers(t *testing.T) {
	matches := []Match{
		MatchPrefixList{Lists: []string{"A", "B"}},
		MatchPrefixListFilter{List: "A", Modifier: "orlonger"},
		MatchPrefixRanges{Ranges: []netaddr.PrefixRange{netaddr.MustParsePrefixRange("10.0.0.0/8 : 8-32")}},
		MatchCommunity{Lists: []string{"C"}},
		MatchASPath{Lists: []string{"P"}},
		MatchMED{Value: 5},
		MatchTag{Value: 7},
		MatchProtocol{Protocols: []Protocol{ProtoBGP, ProtoStatic}},
		MatchNextHop{Lists: []string{"NH"}},
	}
	wantMatch := []string{
		"prefix-list A B",
		"prefix-list-filter A orlonger",
		"route-filter 10.0.0.0/8 : 8-32",
		"community C",
		"as-path P",
		"metric 5",
		"tag 7",
		"protocol bgp static",
		"next-hop NH",
	}
	for i, m := range matches {
		if m.String() != wantMatch[i] {
			t.Errorf("match %d String = %q, want %q", i, m.String(), wantMatch[i])
		}
	}
	sets := []SetAction{
		SetLocalPref{Value: 100},
		SetMED{Value: 5},
		SetCommunities{Communities: []string{"1:1"}, Additive: true},
		SetCommunities{Communities: []string{"1:1"}},
		DeleteCommunity{List: "DEL"},
		SetNextHop{Addr: netaddr.MustParseAddr("10.0.0.1")},
		SetWeight{Value: 10},
		SetTag{Value: 9},
		SetASPathPrepend{ASNs: []int64{65000, 65000}},
	}
	wantSet := []string{
		"local-preference 100",
		"metric 5",
		"community 1:1 additive",
		"community 1:1",
		"comm-list DEL delete",
		"next-hop 10.0.0.1",
		"weight 10",
		"tag 9",
		"as-path prepend 65000 65000",
	}
	for i, s := range sets {
		if s.String() != wantSet[i] {
			t.Errorf("set %d String = %q, want %q", i, s.String(), wantSet[i])
		}
	}
}

func TestProtocolMatchString(t *testing.T) {
	cases := map[string]ProtocolMatch{
		"ip":   AnyProtocol,
		"icmp": ProtoNumber(ProtoNumICMP),
		"tcp":  ProtoNumber(ProtoNumTCP),
		"udp":  ProtoNumber(ProtoNumUDP),
		"gre":  ProtoNumber(ProtoNumGRE),
		"esp":  ProtoNumber(ProtoNumESP),
		"ah":   ProtoNumber(ProtoNumAH),
		"ospf": ProtoNumber(ProtoNumOSPF),
		"99":   ProtoNumber(99),
	}
	for want, m := range cases {
		if m.String() != want {
			t.Errorf("String = %q, want %q", m.String(), want)
		}
	}
}

func TestPortByName(t *testing.T) {
	cases := []struct {
		in   string
		want uint16
		ok   bool
	}{
		{"80", 80, true},
		{"0", 0, true},
		{"65535", 65535, true},
		{"65536", 0, false},
		{"ssh", 22, true},
		{"BGP", 179, true},
		{"bogus", 0, false},
		{"", 0, false},
		{"-1", 0, false},
	}
	for _, c := range cases {
		got, ok := PortByName(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("PortByName(%q) = %d,%v want %d,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestApplyRangeModifier(t *testing.T) {
	base := netaddr.MustParsePrefixRange("10.9.0.0/16 : 16-16")
	if got := ApplyRangeModifier(base, "exact"); !got.Equal(base) {
		t.Errorf("exact = %v", got)
	}
	if got := ApplyRangeModifier(base, ""); !got.Equal(base) {
		t.Errorf("no modifier = %v", got)
	}
	or := ApplyRangeModifier(base, "orlonger")
	if or.String() != "10.9.0.0/16 : 16-32" {
		t.Errorf("orlonger = %v", or)
	}
	lg := ApplyRangeModifier(base, "longer")
	if lg.String() != "10.9.0.0/16 : 17-32" {
		t.Errorf("longer = %v", lg)
	}
	host := netaddr.MustParsePrefixRange("10.9.0.1/32 : 32-32")
	if !ApplyRangeModifier(host, "longer").IsEmpty() {
		t.Error("longer on a /32 is empty")
	}
}

func TestRegexCommunityOnRoute(t *testing.T) {
	r := NewRoute(netaddr.MustParsePrefix("10.0.0.0/8"))
	r.Communities["65000:1"] = true
	if !routeHasCommunityMatching(r, CommunityMatcher{Regex: "^65000:.*$"}) {
		t.Error("regex should match route community")
	}
	if routeHasCommunityMatching(r, CommunityMatcher{Regex: "^65001:.*$"}) {
		t.Error("non-matching regex")
	}
	if routeHasCommunityMatching(r, CommunityMatcher{Regex: "[invalid"}) {
		t.Error("invalid regex matches nothing")
	}
}
