package ir

import (
	"fmt"
	"strings"

	"repro/internal/netaddr"
)

// IP protocol numbers the differ knows by name.
const (
	ProtoNumICMP = 1
	ProtoNumTCP  = 6
	ProtoNumUDP  = 17
	ProtoNumGRE  = 47
	ProtoNumESP  = 50
	ProtoNumAH   = 51
	ProtoNumOSPF = 89
)

// ProtocolMatch matches the IP protocol field of a packet. The zero value
// matches any protocol.
type ProtocolMatch struct {
	Any    bool
	Number uint8
}

// AnyProtocol matches every IP protocol.
var AnyProtocol = ProtocolMatch{Any: true}

// ProtoNumber matches exactly one IP protocol number.
func ProtoNumber(n uint8) ProtocolMatch { return ProtocolMatch{Number: n} }

// Matches reports whether protocol number n satisfies the match.
func (m ProtocolMatch) Matches(n uint8) bool { return m.Any || m.Number == n }

func (m ProtocolMatch) String() string {
	if m.Any {
		return "ip"
	}
	switch m.Number {
	case ProtoNumICMP:
		return "icmp"
	case ProtoNumTCP:
		return "tcp"
	case ProtoNumUDP:
		return "udp"
	case ProtoNumGRE:
		return "gre"
	case ProtoNumESP:
		return "esp"
	case ProtoNumAH:
		return "ah"
	case ProtoNumOSPF:
		return "ospf"
	}
	return fmt.Sprintf("%d", m.Number)
}

// ProtocolByName resolves the common IOS/JunOS protocol keywords.
func ProtocolByName(name string) (ProtocolMatch, bool) {
	switch strings.ToLower(name) {
	case "ip", "ipv4", "any", "inet":
		return AnyProtocol, true
	case "icmp":
		return ProtoNumber(ProtoNumICMP), true
	case "tcp":
		return ProtoNumber(ProtoNumTCP), true
	case "udp":
		return ProtoNumber(ProtoNumUDP), true
	case "gre":
		return ProtoNumber(ProtoNumGRE), true
	case "esp":
		return ProtoNumber(ProtoNumESP), true
	case "ah", "ahp":
		return ProtoNumber(ProtoNumAH), true
	case "ospf":
		return ProtoNumber(ProtoNumOSPF), true
	}
	return ProtocolMatch{}, false
}

// wellKnownPorts resolves the port keywords shared by the IOS and JunOS
// dialects.
var wellKnownPorts = map[string]uint16{
	"ftp-data": 20, "ftp": 21, "ssh": 22, "telnet": 23, "smtp": 25,
	"domain": 53, "dns": 53, "tftp": 69, "www": 80, "http": 80,
	"pop3": 110, "ntp": 123, "snmp": 161, "snmptrap": 162, "bgp": 179,
	"https": 443, "syslog": 514, "isakmp": 500, "ike": 500,
}

// PortByName resolves a numeric port or a well-known service keyword.
func PortByName(s string) (uint16, bool) {
	var n int
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			n = -1
			break
		}
		n = n*10 + int(s[i]-'0')
		if n > 65535 {
			n = -1
			break
		}
	}
	if n >= 0 && len(s) > 0 {
		return uint16(n), true
	}
	p, ok := wellKnownPorts[strings.ToLower(s)]
	return p, ok
}

// ACLLine is a single rule of an access control list. A packet matches the
// line when every populated field matches; the line's Action then applies.
type ACLLine struct {
	Seq    int
	Action Action

	Protocol ProtocolMatch
	// Src and Dst are sets of address matchers; a packet's address must
	// match at least one (Juniper address lists OR within a field).
	// An empty slice matches any address.
	Src []netaddr.Wildcard
	Dst []netaddr.Wildcard
	// Port constraints; empty means any port. Only meaningful for TCP/UDP.
	SrcPorts []netaddr.PortRange
	DstPorts []netaddr.PortRange
	// Established matches only TCP packets with ACK or RST set.
	Established bool
	// ICMPType restricts ICMP type; -1 means any.
	ICMPType int

	Span TextSpan
}

// NewACLLine returns a line that matches everything with the given action.
func NewACLLine(action Action) *ACLLine {
	return &ACLLine{Action: action, Protocol: AnyProtocol, ICMPType: -1}
}

// ACL is a named, ordered access list with first-match-wins semantics and
// an implicit deny at the end.
type ACL struct {
	Name  string
	Lines []*ACLLine
	Span  TextSpan
}

// Packet is a concrete packet header used by the concrete (non-symbolic)
// evaluation paths: testing, counterexample completion, and the SRP
// simulator's data plane.
type Packet struct {
	Src, Dst netaddr.Addr
	Protocol uint8
	SrcPort  uint16
	DstPort  uint16
	TCPAck   bool
	TCPRst   bool
	ICMPType uint8
}

// MatchesLine reports whether the packet satisfies every constraint of the
// ACL line.
func (l *ACLLine) MatchesPacket(p Packet) bool {
	if !l.Protocol.Matches(p.Protocol) {
		return false
	}
	if !wildcardAnyMatch(l.Src, p.Src) || !wildcardAnyMatch(l.Dst, p.Dst) {
		return false
	}
	if len(l.SrcPorts) > 0 && !portAnyMatch(l.SrcPorts, p.SrcPort) {
		return false
	}
	if len(l.DstPorts) > 0 && !portAnyMatch(l.DstPorts, p.DstPort) {
		return false
	}
	if l.Established {
		if p.Protocol != ProtoNumTCP || (!p.TCPAck && !p.TCPRst) {
			return false
		}
	}
	if l.ICMPType >= 0 {
		if p.Protocol != ProtoNumICMP || int(p.ICMPType) != l.ICMPType {
			return false
		}
	}
	return true
}

func wildcardAnyMatch(ws []netaddr.Wildcard, a netaddr.Addr) bool {
	if len(ws) == 0 {
		return true
	}
	for _, w := range ws {
		if w.Matches(a) {
			return true
		}
	}
	return false
}

func portAnyMatch(rs []netaddr.PortRange, p uint16) bool {
	for _, r := range rs {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// Evaluate runs the packet through the ACL, returning the action and the
// matching line (nil for the implicit deny).
func (a *ACL) Evaluate(p Packet) (Action, *ACLLine) {
	for _, l := range a.Lines {
		if l.MatchesPacket(p) {
			return l.Action, l
		}
	}
	return Deny, nil
}
