package repair

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cisco"
	"repro/internal/juniper"
	"repro/internal/policygen"
)

// metamorphicSeeds is the sweep width: every seed generates an
// equivalent cross-vendor pair, injects one known mutation into the
// Juniper side, and demands the search undo it.
const metamorphicSeeds = 500

// TestRepairMetamorphic is the vocabulary-completeness probe: for each
// seed, A and B start equivalent by construction, a BGPFuzz-style
// size-1 mutation is applied to B, and the repair search must find a
// verified edit sequence no larger than the injected fault whose
// re-diff is empty. A failure means the candidate generator cannot
// express the inverse of a fault class the mutator can express.
func TestRepairMetamorphic(t *testing.T) {
	seeds := metamorphicSeeds
	if testing.Short() {
		seeds = 100
	}
	const shards = 8
	var mutated, repaired, noop int64
	for s := 0; s < shards; s++ {
		s := s
		t.Run(fmt.Sprintf("shard%d", s), func(t *testing.T) {
			t.Parallel()
			for seed := s; seed < seeds; seed += shards {
				runMetamorphicSeed(t, uint64(seed), &mutated, &repaired, &noop)
			}
		})
	}
	t.Cleanup(func() {
		eff := atomic.LoadInt64(&mutated)
		t.Logf("metamorphic: %d effective mutations, %d repaired, %d no-op", eff,
			atomic.LoadInt64(&repaired), atomic.LoadInt64(&noop))
		// The sweep must actually exercise the search; if mutation
		// coverage collapses, the test would pass vacuously.
		if eff < int64(seeds)/4 {
			t.Errorf("only %d/%d seeds produced an effective mutation", eff, seeds)
		}
	})
}

func runMetamorphicSeed(t *testing.T, seed uint64, mutated, repaired, noop *int64) {
	t.Helper()
	p := policygen.Generate(policygen.Params{
		Seed:        seed,
		Clauses:     1 + int(seed%4),
		Communities: 1 + int(seed%3),
		Differences: 0,
	})
	a, err := cisco.Parse("a.cfg", p.CiscoText)
	if err != nil {
		t.Fatalf("seed %d: parse cisco: %v", seed, err)
	}
	b, err := juniper.Parse("b.cfg", p.JuniperText)
	if err != nil {
		t.Fatalf("seed %d: parse juniper: %v", seed, err)
	}
	mut := PickMutation(b, p.PolicyName, seed)
	if mut == nil {
		return
	}
	bm := b.ClonePolicy()
	if err := mut.Edit.Apply(bm); err != nil {
		t.Fatalf("seed %d: apply mutation %s (%s): %v", seed, mut.Kind, mut.Edit.Describe(), err)
	}

	res, err := Run(context.Background(), a, bm, Options{
		Timeout: 30 * time.Second, Samples: 16, Seed: int64(seed),
	})
	if err != nil {
		t.Fatalf("seed %d: Run: %v", seed, err)
	}
	var pr *PairRepair
	for i := range res.Pairs {
		if res.Pairs[i].Pair.Name2 == p.PolicyName {
			pr = &res.Pairs[i]
		}
	}
	if pr == nil {
		t.Fatalf("seed %d: no pair matched policy %s", seed, p.PolicyName)
	}
	if pr.Err != nil {
		t.Fatalf("seed %d: mutation %s: pair degraded: %v", seed, mut.Kind, pr.Err)
	}
	if pr.InitialDiffs == 0 {
		// The mutation was semantically invisible (shadowed clause,
		// unreachable range); nothing to repair.
		atomic.AddInt64(noop, 1)
		return
	}
	atomic.AddInt64(mutated, 1)
	if pr.Repair == nil {
		t.Errorf("seed %d: mutation %s (%s) not repaired; %d initial diffs, depth %d, %d candidates, alternatives %v",
			seed, mut.Kind, mut.Edit.Describe(), pr.InitialDiffs, pr.Depth, pr.Candidates, pr.Alternatives)
		return
	}
	if !pr.Repair.Verified {
		t.Errorf("seed %d: mutation %s: repair not verified", seed, mut.Kind)
	}
	if pr.Repair.Size > mut.Edit.Size() {
		t.Errorf("seed %d: mutation %s (size %d) repaired by larger edit (size %d): %s",
			seed, mut.Kind, mut.Edit.Size(), pr.Repair.Size, pr.Repair.Describe())
	}
	atomic.AddInt64(repaired, 1)

	// The combined patch must hold and re-verify equivalent to A.
	if res.PatchedB == nil {
		t.Errorf("seed %d: mutation %s: repaired but PatchedB unset (conflicts %v)",
			seed, mut.Kind, res.Conflicts)
		return
	}
	if err := VerifyEquivalent(a, res.PatchedB, Options{Samples: 8, Seed: int64(seed)}); err != nil {
		t.Errorf("seed %d: mutation %s: patched IR not equivalent: %v", seed, mut.Kind, err)
	}
}

// TestMutationsDeterministic pins the mutation enumeration order — seed
// selection depends on it.
func TestMutationsDeterministic(t *testing.T) {
	p := policygen.Generate(policygen.Params{Seed: 7, Clauses: 3, Communities: 2})
	b, err := juniper.Parse("b.cfg", p.JuniperText)
	if err != nil {
		t.Fatal(err)
	}
	m1 := Mutations(b, p.PolicyName)
	m2 := Mutations(b, p.PolicyName)
	if len(m1) == 0 {
		t.Fatal("no mutations for generated policy")
	}
	for i := range m1 {
		if m1[i].Kind != m2[i].Kind || m1[i].Edit.Describe() != m2[i].Edit.Describe() {
			t.Fatalf("mutation %d differs across runs: %v vs %v", i, m1[i], m2[i])
		}
	}
	if PickMutation(b, "no-such-map", 3) != nil {
		t.Error("PickMutation on unknown map should be nil")
	}
}
