package repair

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/netaddr"
)

// Mutation is one size-1 BGPFuzz-style fault that can be injected into a
// config for metamorphic testing: apply the mutation to an equivalent
// pair's B side and the repair search must find an edit of size ≤ 1 whose
// re-diff is empty. Every kind here has its inverse in the candidate
// vocabulary (candidates.go), which is exactly what makes the
// metamorphic suite a completeness probe of that vocabulary.
type Mutation struct {
	Kind string
	Edit Edit
}

// Mutations enumerates the mutations applicable to a route map of the
// config, in deterministic order.
func Mutations(cfg *ir.Config, mapName string) []Mutation {
	rm := cfg.RouteMaps[mapName]
	if rm == nil {
		return nil
	}
	var out []Mutation
	add := func(kind string, e Edit) { out = append(out, Mutation{Kind: kind, Edit: e}) }

	for i, cl := range rm.Clauses {
		label := clauseLabel(cl)
		if cl.Action != ir.ClauseFallthrough {
			add("flip-clause", FlipClause{Map: mapName, Idx: i, Label: label})
		}
		if len(rm.Clauses) > 1 {
			add("drop-clause", DropClause{Map: mapName, Idx: i, Label: label})
		}
		if cl.Action == ir.ClausePermit {
			add("set-localpref", ReplaceSets{Map: mapName, Idx: i,
				Sets: mutateSets(cl.Sets), Label: label})
		}
		for mi, m := range cl.Matches {
			switch m := m.(type) {
			case ir.MatchPrefixRanges:
				for ri, rg := range m.Ranges {
					nr := rg
					if nr.Hi < 32 {
						nr.Hi++
					} else if nr.Hi > nr.Lo {
						nr.Hi--
					} else {
						continue
					}
					ranges := append([]netaddr.PrefixRange(nil), m.Ranges...)
					ranges[ri] = nr
					add("range-bound", ReplaceMatches{Map: mapName, Idx: i,
						Matches: swapMatch(cl.Matches, mi, ir.MatchPrefixRanges{Ranges: ranges}),
						Label:   label})
				}
			case ir.MatchCommunity:
				extra := &ir.CommunityList{Name: "MUT_EXTRA", Entries: []ir.CommunityListEntry{
					{Action: ir.Permit, Conjuncts: []ir.CommunityMatcher{{Literal: "65000:999"}}},
				}}
				wider := ir.MatchCommunity{Lists: append(append([]string(nil), m.Lists...), "MUT_EXTRA")}
				add("extra-community", ReplaceMatches{Map: mapName, Idx: i,
					Matches: swapMatch(cl.Matches, mi, wider),
					Needs:   ListBundle{Community: []*ir.CommunityList{extra}}, Label: label})
			}
		}
	}

	// Prefix-list bound changes for lists the map references.
	pnames, _, _ := refNames(rm.Clauses...)
	sort.Strings(pnames)
	for _, n := range pnames {
		pl := cfg.PrefixLists[n]
		if pl == nil {
			continue
		}
		for i, e := range pl.Entries {
			ne := e
			if ne.Range.Hi < 32 {
				ne.Range.Hi++
			} else if ne.Range.Hi > ne.Range.Lo {
				ne.Range.Hi--
			} else {
				continue
			}
			add("prefix-bound", ReplacePrefixEntry{List: n, Idx: i, Entry: ne})
		}
	}
	return out
}

// PickMutation selects one mutation deterministically by seed, or nil
// when the map admits none.
func PickMutation(cfg *ir.Config, mapName string, seed uint64) *Mutation {
	ms := Mutations(cfg, mapName)
	if len(ms) == 0 {
		return nil
	}
	m := ms[int(seed%uint64(len(ms)))]
	return &m
}

// mutateSets perturbs a clause's local-preference: bump an existing one,
// or pin a fresh conspicuous value.
func mutateSets(sets []ir.SetAction) []ir.SetAction {
	out := make([]ir.SetAction, len(sets))
	copy(out, sets)
	for i, s := range out {
		if lp, ok := s.(ir.SetLocalPref); ok {
			out[i] = ir.SetLocalPref{Value: lp.Value + 10}
			return out
		}
	}
	return append(out, ir.SetLocalPref{Value: 777})
}
