package repair

import (
	"fmt"
	"math/rand"

	"repro/internal/arista"
	"repro/internal/bdd"
	"repro/internal/cisco"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/juniper"
	"repro/internal/oracle"
	"repro/internal/semdiff"
)

// VerifyEquivalent checks that cfg1 and patched agree on every matched
// policy pair, first symbolically (SemanticDiff must be empty), then
// concretely (the oracle interpreter must agree on sampled routes). It is
// the final gate both for Result.PatchedB and for text round-trips:
// whatever IR the patched text re-parses to must still be equivalent.
func VerifyEquivalent(cfg1, patched *ir.Config, opts Options) error {
	opts = opts.withDefaults()
	f := bdd.NewFactory(0)
	rng := rand.New(rand.NewSource(opts.Seed))
	coin := func() bool { return rng.Intn(2) == 1 }
	for _, pair := range matchPairs(cfg1, patched) {
		rm1 := core.ResolveChain(cfg1, pair.Names1)
		rm2 := core.ResolveChain(patched, pair.Names2)
		enc := buildEncoding(f, opts, cfg1, patched)
		ds, err := semdiff.DiffRouteMapsLimit(enc, cfg1, rm1, patched, rm2, 1)
		if err != nil {
			return fmt.Errorf("pair %s: %w", pair, err)
		}
		if len(ds) != 0 {
			w, _ := enc.WitnessRoute(ds[0].Inputs)
			return fmt.Errorf("pair %s: symbolic re-diff non-empty (witness %v)", pair, w)
		}
		for i := 0; i < opts.Samples; i++ {
			a := enc.F.RandSat(enc.WellFormed, coin)
			if a == nil {
				break
			}
			r, ok := enc.ExactRoute(a)
			if !ok {
				continue
			}
			d1 := oracle.EvalRouteMap(cfg1, rm1, r)
			d2 := oracle.EvalRouteMap(patched, rm2, r)
			if d1.Disagrees(d2) {
				return fmt.Errorf("pair %s: oracle disagrees on %v (A %v, B %v)",
					pair, r, d1.Action, d2.Action)
			}
		}
	}
	return nil
}

// ReparseVerify parses patched config-B text in the given dialect and
// checks the resulting IR is equivalent to cfg1 — the proof that the
// rendered patch, not just the in-memory IR edit, fixes the difference.
func ReparseVerify(cfg1 *ir.Config, vendor ir.Vendor, file, text string, opts Options) (*ir.Config, error) {
	var (
		patched *ir.Config
		err     error
	)
	switch vendor {
	case ir.VendorCisco:
		patched, err = cisco.Parse(file, text)
	case ir.VendorJuniper:
		patched, err = juniper.Parse(file, text)
	case ir.VendorArista:
		patched, err = arista.Parse(file, text)
	default:
		return nil, fmt.Errorf("unsupported vendor %v", vendor)
	}
	if err != nil {
		return nil, fmt.Errorf("patched text does not parse: %w", err)
	}
	if err := VerifyEquivalent(cfg1, patched, opts); err != nil {
		return nil, err
	}
	return patched, nil
}
