package repair

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// TextPatch is the rendered repair artifact: a human-readable patch
// against config B's source text plus the full patched text.
type TextPatch struct {
	// Text is the patch artifact: a comment header describing the edits
	// followed by @@-hunks with -/+ lines.
	Text string
	// Patched is config B's complete source text with the edits applied.
	Patched string
}

// renderOps renders every edit against the ORIGINAL config B (all line
// numbers refer to the unpatched text) and checks the ops compose
// without overlapping.
func renderOps(cfg *ir.Config, edits []Edit) ([]textOp, error) {
	var ops []textOp
	for _, e := range edits {
		eo, ok := renderEditOps(cfg, e)
		if !ok {
			return nil, fmt.Errorf("edit %q has no %s rendering", e.Describe(), cfg.Vendor)
		}
		ops = append(ops, eo...)
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].start < ops[j].start })
	for i := 1; i < len(ops); i++ {
		if ops[i-1].overlap(ops[i]) {
			return nil, fmt.Errorf("edits touch overlapping lines %d-%d and %d-%d",
				ops[i-1].start, ops[i-1].end, ops[i].start, ops[i].end)
		}
	}
	return ops, nil
}

// splitLines splits source text preserving the absence of a trailing
// newline; joinLines inverts it.
func splitLines(text string) (lines []string, trailingNL bool) {
	trailingNL = strings.HasSuffix(text, "\n")
	text = strings.TrimSuffix(text, "\n")
	if text == "" {
		return nil, trailingNL
	}
	return strings.Split(text, "\n"), trailingNL
}

func joinLines(lines []string, trailingNL bool) string {
	out := strings.Join(lines, "\n")
	if trailingNL {
		out += "\n"
	}
	return out
}

// applyOps rewrites the text bottom-up so earlier ops' line numbers stay
// valid while later (higher) regions are already rewritten.
func applyOps(text string, ops []textOp) (string, error) {
	lines, nl := splitLines(text)
	sorted := append([]textOp(nil), ops...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].start > sorted[j].start })
	for _, op := range sorted {
		if op.start < 1 || op.start > len(lines)+1 || op.end > len(lines) {
			return "", fmt.Errorf("op %d-%d outside %d-line text", op.start, op.end, len(lines))
		}
		end := op.end
		if end < op.start {
			end = op.start - 1 // pure insert
		}
		rest := append([]string(nil), lines[end:]...)
		lines = append(append(lines[:op.start-1:op.start-1], op.lines...), rest...)
	}
	return joinLines(lines, nl), nil
}

// ApplyEditsToText renders the edits against cfg's source text and
// returns the rewritten text. cfg must be the IR parsed from exactly
// this text (the edits' spans index into it). Exported for callers that
// apply edit sequences outside a Run result — the golden-corpus
// generator renders injected mutations with it.
func ApplyEditsToText(cfg *ir.Config, text string, edits ...Edit) (string, error) {
	ops, err := renderOps(cfg, edits)
	if err != nil {
		return "", err
	}
	return applyOps(text, ops)
}

// Patch renders the result's accepted edits as a text patch for config
// B's source text. btext must be the exact text Config2 was parsed from.
func (r *Result) Patch(btext string) (*TextPatch, error) {
	edits := r.Edits()
	if len(edits) == 0 {
		return nil, fmt.Errorf("no accepted repairs to render")
	}
	ops, err := renderOps(r.Config2, edits)
	if err != nil {
		return nil, err
	}
	patched, err := applyOps(btext, ops)
	if err != nil {
		return nil, err
	}

	lines, _ := splitLines(btext)
	file := r.Config2.File
	if file == "" {
		file = "b.cfg"
	}
	var b strings.Builder
	size := 0
	for _, e := range edits {
		size += e.Size()
	}
	fmt.Fprintf(&b, "# campion repair: %d edit(s), size %d\n", len(edits), size)
	for _, p := range r.Pairs {
		if p.Repair == nil {
			continue
		}
		fmt.Fprintf(&b, "# pair %s:\n", p.Pair)
		for _, e := range p.Repair.Edits {
			fmt.Fprintf(&b, "#   - %s\n", e.Describe())
		}
	}
	for _, op := range ops {
		if op.end < op.start {
			fmt.Fprintf(&b, "@@ %s:%d insert\n", file, op.start)
		} else if op.start == op.end {
			fmt.Fprintf(&b, "@@ %s:%d\n", file, op.start)
		} else {
			fmt.Fprintf(&b, "@@ %s:%d-%d\n", file, op.start, op.end)
		}
		for i := op.start; i <= op.end && i <= len(lines); i++ {
			fmt.Fprintf(&b, "-%s\n", lines[i-1])
		}
		for _, l := range op.lines {
			fmt.Fprintf(&b, "+%s\n", l)
		}
	}
	return &TextPatch{Text: b.String(), Patched: patched}, nil
}
