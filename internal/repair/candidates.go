package repair

import (
	"fmt"
	"sort"

	"repro/internal/ddnf"
	"repro/internal/headerloc"
	"repro/internal/ir"
	"repro/internal/netaddr"
	"repro/internal/semdiff"
)

// clauseLoc addresses a clause inside a config's named route maps.
// ResolveChain shares clause pointers with the owning named maps, so a
// diff region's Terminal pointer maps back to an editable address by
// pointer identity.
type clauseLoc struct {
	mapName string
	idx     int
}

func locateClauses(cfg *ir.Config) map[*ir.RouteMapClause]clauseLoc {
	out := map[*ir.RouteMapClause]clauseLoc{}
	for name, rm := range cfg.RouteMaps {
		for i, cl := range rm.Clauses {
			out[cl] = clauseLoc{mapName: name, idx: i}
		}
	}
	return out
}

// genContext is everything candidate generation sees. Config B is the
// side being edited; config A supplies donor clauses, donor lists, and
// the range vocabulary the retarget candidates draw from.
type genContext struct {
	cfg1, cfg2 *ir.Config
	rm1, rm2   *ir.RouteMap
	names2     []string
	loc        map[*ir.RouteMapClause]clauseLoc
	vocab1     []netaddr.PrefixRange
	terms      [][]ddnf.FlatTerm // localized prefix terms, one slice per diff
}

func newGenContext(cfg1, cfg2 *ir.Config, rm1, rm2 *ir.RouteMap, names2 []string, terms [][]ddnf.FlatTerm) genContext {
	vocab := headerloc.ConfigPrefixRanges(cfg1)
	sort.Slice(vocab, func(i, j int) bool { return vocab[i].String() < vocab[j].String() })
	uniq := vocab[:0]
	for i, r := range vocab {
		if i == 0 || vocab[i-1] != r {
			uniq = append(uniq, r)
		}
	}
	return genContext{
		cfg1: cfg1, cfg2: cfg2, rm1: rm1, rm2: rm2,
		names2: names2,
		loc:    locateClauses(cfg2),
		vocab1: uniq,
		terms:  terms,
	}
}

// generate produces the seeded candidate-edit pool for the pair's diff
// regions: every candidate is targeted at a clause, default action, or
// list that some region's equivalence classes actually touch. The result
// is deduplicated by description and sorted by (size, renderability,
// description) so the search's first zero-residual hit is the minimal
// repair under a deterministic order.
func generate(gc genContext, diffs []semdiff.RouteMapDiff) []Edit {
	var edits []Edit
	for di, d := range diffs {
		t1 := d.Path1.Terminal
		t2 := d.Path2.Terminal
		var localTerms []ddnf.FlatTerm
		if di < len(gc.terms) {
			localTerms = gc.terms[di]
		}

		if t2 != nil {
			if at, ok := gc.loc[t2]; ok {
				edits = append(edits, gc.clauseEdits(at, t2, t1, localTerms)...)
			}
		} else {
			edits = append(edits, gc.defaultEdits()...)
		}
		if t1 != nil {
			edits = append(edits, gc.insertEdits(t1, t2)...)
		}
		edits = append(edits, gc.listEdits(t1, t2, localTerms)...)
		edits = append(edits, gc.relatedClauseEdits(t1, t2, localTerms)...)
	}
	return dedupSort(gc, edits)
}

// clauseEdits targets the B-side clause that decided a diff region.
func (gc genContext) clauseEdits(at clauseLoc, t2, t1 *ir.RouteMapClause, terms []ddnf.FlatTerm) []Edit {
	label := clauseLabel(t2)
	var out []Edit
	if t2.Action != ir.ClauseFallthrough {
		out = append(out, FlipClause{Map: at.mapName, Idx: at.idx, Label: label})
	}
	out = append(out, DropClause{Map: at.mapName, Idx: at.idx, Label: label})

	rm2 := gc.cfg2.RouteMaps[at.mapName]
	if rm2 != nil && len(rm2.Clauses) > 1 {
		if at.idx != 0 {
			out = append(out, MoveClause{Map: at.mapName, From: at.idx, To: 0, Label: label})
		}
		if last := len(rm2.Clauses) - 1; at.idx != last {
			out = append(out, MoveClause{Map: at.mapName, From: at.idx, To: last, Label: label})
		}
	}

	if t1 != nil {
		if !setsEqual(t1.Sets, t2.Sets) {
			out = append(out, ReplaceSets{Map: at.mapName, Idx: at.idx,
				Sets: t1.Sets, Label: label})
		}
		if !matchesEqual(t1.Matches, t2.Matches) {
			out = append(out, ReplaceMatches{Map: at.mapName, Idx: at.idx,
				Matches: t1.Matches, Needs: gc.bundleFor(t1.Matches), Label: label})
		}
	}

	out = append(out, gc.surgeryEdits(at, t2, terms)...)
	return out
}

// surgeryEdits rewrites a B clause's own match conditions in place:
// every rewritten match list keeps B's vocabulary, so the edits render
// in B's dialect without donor definitions.
func (gc genContext) surgeryEdits(at clauseLoc, cl *ir.RouteMapClause, terms []ddnf.FlatTerm) []Edit {
	label := clauseLabel(cl)
	var out []Edit
	for mi, m := range cl.Matches {
		switch m := m.(type) {
		case ir.MatchPrefixList:
			if len(m.Lists) == 1 {
				out = append(out, ReplaceMatches{Map: at.mapName, Idx: at.idx,
					Matches: swapMatch(cl.Matches, mi, ir.MatchPrefixListFilter{List: m.Lists[0], Modifier: "orlonger"}),
					Label:   label})
			}
			out = append(out, gc.dropAlternatives(at, cl, mi, m.Lists, func(ls []string) ir.Match {
				return ir.MatchPrefixList{Lists: ls}
			})...)
		case ir.MatchPrefixListFilter:
			for _, mod := range []string{"exact", "orlonger", "longer"} {
				if mod != m.Modifier {
					out = append(out, ReplaceMatches{Map: at.mapName, Idx: at.idx,
						Matches: swapMatch(cl.Matches, mi, ir.MatchPrefixListFilter{List: m.List, Modifier: mod}),
						Label:   label})
				}
			}
		case ir.MatchCommunity:
			out = append(out, gc.dropAlternatives(at, cl, mi, m.Lists, func(ls []string) ir.Match {
				return ir.MatchCommunity{Lists: ls}
			})...)
		case ir.MatchASPath:
			out = append(out, gc.dropAlternatives(at, cl, mi, m.Lists, func(ls []string) ir.Match {
				return ir.MatchASPath{Lists: ls}
			})...)
		case ir.MatchPrefixRanges:
			out = append(out, gc.rangeEdits(at, cl, mi, m, terms)...)
		}
	}
	return out
}

// relatedClauseEdits extends match surgery to B clauses that are NOT a
// region's terminal but reference the same named lists the region's
// deciding clauses do. A translation bug often lives in the clause that
// FAILED to capture a route (Figure 1's rule1 matching NETS exactly
// instead of orlonger), and that clause never appears as a terminal of
// the mis-routed region.
func (gc genContext) relatedClauseEdits(t1, t2 *ir.RouteMapClause, terms []ddnf.FlatTerm) []Edit {
	pn, cn, an := refNames(t1, t2)
	if len(pn) == 0 && len(cn) == 0 && len(an) == 0 {
		return nil
	}
	related := map[string]bool{}
	for _, n := range pn {
		related["p/"+n] = true
	}
	for _, n := range cn {
		related["c/"+n] = true
	}
	for _, n := range an {
		related["a/"+n] = true
	}
	var out []Edit
	for _, name := range gc.names2 {
		rm := gc.cfg2.RouteMaps[name]
		if rm == nil {
			continue
		}
		for i, cl := range rm.Clauses {
			if cl == t2 {
				continue
			}
			cp, cc, ca := refNames(cl)
			hit := false
			for _, n := range cp {
				hit = hit || related["p/"+n]
			}
			for _, n := range cc {
				hit = hit || related["c/"+n]
			}
			for _, n := range ca {
				hit = hit || related["a/"+n]
			}
			if !hit {
				continue
			}
			out = append(out, gc.surgeryEdits(clauseLoc{mapName: name, idx: i}, cl, terms)...)
		}
	}
	return out
}

// dropAlternatives removes one named-list alternative at a time — the
// inverse of the "extra alternative" mutation.
func (gc genContext) dropAlternatives(at clauseLoc, t2 *ir.RouteMapClause, mi int, lists []string, rebuild func([]string) ir.Match) []Edit {
	if len(lists) < 2 {
		return nil
	}
	var out []Edit
	for k := range lists {
		rest := append(append([]string(nil), lists[:k]...), lists[k+1:]...)
		out = append(out, ReplaceMatches{Map: at.mapName, Idx: at.idx,
			Matches: swapMatch(t2.Matches, mi, rebuild(rest)), Label: clauseLabel(t2)})
	}
	return out
}

// rangeEdits rewrites one inline route-filter range at a time: retarget
// to a same-prefix range from A's vocabulary, or widen to cover a
// localized diff term.
func (gc genContext) rangeEdits(at clauseLoc, t2 *ir.RouteMapClause, mi int, m ir.MatchPrefixRanges, terms []ddnf.FlatTerm) []Edit {
	var out []Edit
	label := clauseLabel(t2)
	emit := func(ri int, nr netaddr.PrefixRange) {
		if nr == m.Ranges[ri] || nr.Lo > nr.Hi {
			return
		}
		ranges := append([]netaddr.PrefixRange(nil), m.Ranges...)
		ranges[ri] = nr
		out = append(out, ReplaceMatches{Map: at.mapName, Idx: at.idx,
			Matches: swapMatch(t2.Matches, mi, ir.MatchPrefixRanges{Ranges: ranges}), Label: label})
	}
	for ri, rg := range m.Ranges {
		for _, r1 := range gc.vocab1 {
			if r1.Prefix == rg.Prefix {
				emit(ri, r1)
			}
		}
		for _, t := range terms {
			if t.Include.Prefix == rg.Prefix {
				emit(ri, widenRange(rg, t.Include))
			}
		}
	}
	return out
}

// defaultEdits flips the default action of the chain's deciding map.
func (gc genContext) defaultEdits() []Edit {
	for i := len(gc.names2) - 1; i >= 0; i-- {
		name := gc.names2[i]
		if rm := gc.cfg2.RouteMaps[name]; rm != nil {
			flip := ir.Permit
			if rm.DefaultAction == ir.Permit {
				flip = ir.Deny
			}
			return []Edit{SetDefault{Map: name, Action: flip}}
		}
	}
	return nil
}

// insertEdits copies A's deciding clause into B — before the B clause
// that wrongly captured the region, at the front, and at the end.
func (gc genContext) insertEdits(t1, t2 *ir.RouteMapClause) []Edit {
	target, idx2 := gc.insertTarget(t2)
	if target == "" {
		return nil
	}
	rm := gc.cfg2.RouteMaps[target]
	origin := fmt.Sprintf("A clause %s", clauseLabel(t1))
	needs := gc.bundleFor(t1.Matches)
	positions := []int{0, len(rm.Clauses)}
	if idx2 >= 0 {
		positions = append(positions, idx2)
	}
	var out []Edit
	for _, at := range positions {
		out = append(out, InsertClause{Map: target, At: at, Clause: t1, Needs: needs, Origin: origin})
	}
	return out
}

// insertTarget picks the map to insert into: the one owning B's deciding
// clause, else the chain's last defined map.
func (gc genContext) insertTarget(t2 *ir.RouteMapClause) (string, int) {
	if t2 != nil {
		if at, ok := gc.loc[t2]; ok {
			return at.mapName, at.idx
		}
	}
	for i := len(gc.names2) - 1; i >= 0; i-- {
		if gc.cfg2.RouteMaps[gc.names2[i]] != nil {
			return gc.names2[i], -1
		}
	}
	return "", -1
}

// listEdits edits the named lists the region's deciding clauses
// reference: copy A's same-name list wholesale, rewrite individual
// entries toward A's entries or vocabulary, and widen entries to cover
// localized diff terms.
func (gc genContext) listEdits(t1, t2 *ir.RouteMapClause, terms []ddnf.FlatTerm) []Edit {
	var out []Edit
	pnames, cnames, anames := refNames(t1, t2)

	for _, n := range pnames {
		pl1, pl2 := gc.cfg1.PrefixLists[n], gc.cfg2.PrefixLists[n]
		var e1, e2 []ir.PrefixListEntry
		if pl1 != nil {
			e1 = pl1.Entries
		}
		if pl2 != nil {
			e2 = pl2.Entries
		}
		if pl1 != nil && prefixEntryDistance(e1, e2) > 0 {
			out = append(out, ReplacePrefixList{List: n, Entries: e1,
				EditSz: prefixEntryDistance(e1, e2)})
		}
		if pl1 != nil && pl2 != nil && len(e1) == len(e2) {
			for i := range e2 {
				if e1[i].Action != e2[i].Action || e1[i].Range != e2[i].Range {
					out = append(out, ReplacePrefixEntry{List: n, Idx: i, Entry: e1[i]})
				}
			}
		}
		for i, e := range e2 {
			for _, r1 := range gc.vocab1 {
				if r1.Prefix == e.Range.Prefix && r1 != e.Range {
					out = append(out, ReplacePrefixEntry{List: n, Idx: i,
						Entry: ir.PrefixListEntry{Seq: e.Seq, Action: e.Action, Range: r1}})
				}
			}
			for _, t := range terms {
				if t.Include.Prefix == e.Range.Prefix {
					if w := widenRange(e.Range, t.Include); w != e.Range {
						out = append(out, ReplacePrefixEntry{List: n, Idx: i,
							Entry: ir.PrefixListEntry{Seq: e.Seq, Action: e.Action, Range: w}})
					}
				}
			}
		}
	}

	for _, n := range cnames {
		cl1, cl2 := gc.cfg1.CommunityLists[n], gc.cfg2.CommunityLists[n]
		var e1, e2 []ir.CommunityListEntry
		if cl1 != nil {
			e1 = cl1.Entries
		}
		if cl2 != nil {
			e2 = cl2.Entries
		}
		if cl1 != nil && communityEntryDistance(e1, e2) > 0 {
			out = append(out, ReplaceCommunityList{List: n, Entries: e1,
				EditSz: communityEntryDistance(e1, e2)})
		}
		// Split an AND entry into OR alternatives — the classic
		// members-conjunction translation bug (Figure 1's rule2).
		if cl2 != nil {
			for _, e := range e2 {
				if len(e.Conjuncts) > 1 {
					split := make([]ir.CommunityListEntry, 0, len(e2)+len(e.Conjuncts)-1)
					for _, o := range e2 {
						if len(o.Conjuncts) > 1 {
							for _, m := range o.Conjuncts {
								split = append(split, ir.CommunityListEntry{
									Action: o.Action, Conjuncts: []ir.CommunityMatcher{m}})
							}
						} else {
							split = append(split, o)
						}
					}
					out = append(out, ReplaceCommunityList{List: n, Entries: split,
						EditSz: communityEntryDistance(split, e2)})
					break
				}
			}
		}
	}

	for _, n := range anames {
		al1, al2 := gc.cfg1.ASPathLists[n], gc.cfg2.ASPathLists[n]
		var e1, e2 []ir.ASPathListEntry
		if al1 != nil {
			e1 = al1.Entries
		}
		if al2 != nil {
			e2 = al2.Entries
		}
		if al1 != nil && asPathEntryDistance(e1, e2) > 0 {
			out = append(out, ReplaceASPathList{List: n, Entries: e1,
				EditSz: asPathEntryDistance(e1, e2)})
		}
	}
	return out
}

// refNames collects the prefix-, community-, and as-path-list names two
// clauses reference, sorted.
func refNames(clauses ...*ir.RouteMapClause) (pnames, cnames, anames []string) {
	p, c, a := map[string]bool{}, map[string]bool{}, map[string]bool{}
	for _, cl := range clauses {
		if cl == nil {
			continue
		}
		for _, m := range cl.Matches {
			switch m := m.(type) {
			case ir.MatchPrefixList:
				for _, n := range m.Lists {
					p[n] = true
				}
			case ir.MatchPrefixListFilter:
				p[m.List] = true
			case ir.MatchCommunity:
				for _, n := range m.Lists {
					c[n] = true
				}
			case ir.MatchASPath:
				for _, n := range m.Lists {
					a[n] = true
				}
			}
		}
	}
	return sortedKeys(p), sortedKeys(c), sortedKeys(a)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// bundleFor collects A's definitions of every list a donor clause's
// matches reference, so applying the clause to B carries its vocabulary.
func (gc genContext) bundleFor(matches []ir.Match) ListBundle {
	var b ListBundle
	pn, cn, an := refNames(&ir.RouteMapClause{Matches: matches})
	for _, n := range pn {
		if pl := gc.cfg1.PrefixLists[n]; pl != nil {
			b.Prefix = append(b.Prefix, pl)
		}
	}
	for _, n := range cn {
		if cl := gc.cfg1.CommunityLists[n]; cl != nil {
			b.Community = append(b.Community, cl)
		}
	}
	for _, n := range an {
		if al := gc.cfg1.ASPathLists[n]; al != nil {
			b.ASPath = append(b.ASPath, al)
		}
	}
	return b
}

func swapMatch(ms []ir.Match, i int, m ir.Match) []ir.Match {
	out := append([]ir.Match(nil), ms...)
	out[i] = m
	return out
}

func setsEqual(a, b []ir.SetAction) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return false
		}
	}
	return true
}

func matchesEqual(a, b []ir.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return false
		}
	}
	return true
}

// dedupSort removes duplicate candidates (by description) and orders the
// pool: smallest edit first, renderable before unrenderable within a
// size, then lexicographic description — the order that makes "first
// zero-residual candidate" mean "minimal repair".
func dedupSort(gc genContext, edits []Edit) []Edit {
	seen := map[string]bool{}
	uniq := edits[:0]
	for _, e := range edits {
		d := e.Describe()
		if !seen[d] {
			seen[d] = true
			uniq = append(uniq, e)
		}
	}
	type ranked struct {
		e          Edit
		renderable bool
	}
	rs := make([]ranked, len(uniq))
	for i, e := range uniq {
		_, ok := renderEditOps(gc.cfg2, e)
		rs[i] = ranked{e: e, renderable: ok}
	}
	sort.SliceStable(rs, func(i, j int) bool {
		si, sj := rs[i].e.Size(), rs[j].e.Size()
		if si != sj {
			return si < sj
		}
		if rs[i].renderable != rs[j].renderable {
			return rs[i].renderable
		}
		return rs[i].e.Describe() < rs[j].e.Describe()
	})
	out := make([]Edit, len(rs))
	for i, r := range rs {
		out[i] = r.e
	}
	return out
}
