package repair

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/netaddr"
)

// Edit is one atomic configuration change. Apply mutates a policy clone
// (ir.Config.ClonePolicy) in place; it must never alias state into the
// target that a later Apply of the same Edit value could see mutated.
// Describe is the edit's stable identity: candidate dedup, deterministic
// ordering, and the patch artifact all key on it.
type Edit interface {
	Apply(cfg *ir.Config) error
	Describe() string
	Size() int
}

// clauseAt resolves a (map, index) clause address against a config.
func clauseAt(cfg *ir.Config, mapName string, idx int) (*ir.RouteMap, *ir.RouteMapClause, error) {
	rm := cfg.RouteMaps[mapName]
	if rm == nil {
		return nil, nil, fmt.Errorf("route-map %s undefined", mapName)
	}
	if idx < 0 || idx >= len(rm.Clauses) {
		return nil, nil, fmt.Errorf("route-map %s has no clause %d", mapName, idx)
	}
	return rm, rm.Clauses[idx], nil
}

// clauseLabel names a clause for humans: JunOS term name or IOS sequence.
func clauseLabel(cl *ir.RouteMapClause) string {
	if cl == nil {
		return "(default)"
	}
	if cl.Name != "" {
		return cl.Name
	}
	return fmt.Sprintf("%d", cl.Seq)
}

// ListBundle carries list definitions an edit depends on (taken from
// config A). Apply defines them in the target only when the name is
// absent — an existing same-name list is B's own vocabulary and is only
// changed by an explicit list edit.
type ListBundle struct {
	Prefix    []*ir.PrefixList
	Community []*ir.CommunityList
	ASPath    []*ir.ASPathList
}

func (b ListBundle) empty() bool {
	return len(b.Prefix) == 0 && len(b.Community) == 0 && len(b.ASPath) == 0
}

func (b ListBundle) define(cfg *ir.Config) {
	for _, pl := range b.Prefix {
		if cfg.PrefixLists[pl.Name] == nil {
			c := pl.Clone()
			c.Span = ir.TextSpan{}
			cfg.PrefixLists[pl.Name] = c
		}
	}
	for _, cl := range b.Community {
		if cfg.CommunityLists[cl.Name] == nil {
			c := cl.Clone()
			c.Span = ir.TextSpan{}
			cfg.CommunityLists[cl.Name] = c
		}
	}
	for _, al := range b.ASPath {
		if cfg.ASPathLists[al.Name] == nil {
			c := al.Clone()
			c.Span = ir.TextSpan{}
			cfg.ASPathLists[al.Name] = c
		}
	}
}

// FlipClause inverts a clause's permit/deny disposition.
type FlipClause struct {
	Map   string
	Idx   int
	Label string
}

func (e FlipClause) Apply(cfg *ir.Config) error {
	_, cl, err := clauseAt(cfg, e.Map, e.Idx)
	if err != nil {
		return err
	}
	switch cl.Action {
	case ir.ClausePermit:
		cl.Action = ir.ClauseDeny
	case ir.ClauseDeny:
		cl.Action = ir.ClausePermit
	default:
		return fmt.Errorf("clause %s is fallthrough", e.Label)
	}
	return nil
}

func (e FlipClause) Describe() string {
	return fmt.Sprintf("route-map %s clause %s: flip permit/deny", e.Map, e.Label)
}
func (e FlipClause) Size() int { return 1 }

// SetDefault changes a route map's default action.
type SetDefault struct {
	Map    string
	Action ir.Action
}

func (e SetDefault) Apply(cfg *ir.Config) error {
	rm := cfg.RouteMaps[e.Map]
	if rm == nil {
		return fmt.Errorf("route-map %s undefined", e.Map)
	}
	rm.DefaultAction = e.Action
	return nil
}

func (e SetDefault) Describe() string {
	return fmt.Sprintf("route-map %s: default action %s", e.Map, e.Action)
}
func (e SetDefault) Size() int { return 1 }

// DropClause removes a clause.
type DropClause struct {
	Map   string
	Idx   int
	Label string
}

func (e DropClause) Apply(cfg *ir.Config) error {
	rm, _, err := clauseAt(cfg, e.Map, e.Idx)
	if err != nil {
		return err
	}
	rm.Clauses = append(rm.Clauses[:e.Idx:e.Idx], rm.Clauses[e.Idx+1:]...)
	return nil
}

func (e DropClause) Describe() string {
	return fmt.Sprintf("route-map %s clause %s: drop", e.Map, e.Label)
}
func (e DropClause) Size() int { return 1 }

// InsertClause inserts a copy of a clause (typically taken from config A)
// at position At; At == len(Clauses) appends. Needs defines the lists the
// clause references when B lacks them.
type InsertClause struct {
	Map    string
	At     int
	Clause *ir.RouteMapClause
	Needs  ListBundle
	Origin string // where the clause came from, for Describe
}

func (e InsertClause) Apply(cfg *ir.Config) error {
	rm := cfg.RouteMaps[e.Map]
	if rm == nil {
		return fmt.Errorf("route-map %s undefined", e.Map)
	}
	if e.At < 0 || e.At > len(rm.Clauses) {
		return fmt.Errorf("route-map %s: insert position %d out of range", e.Map, e.At)
	}
	cl := e.Clause.Clone()
	cl.Span = ir.TextSpan{}
	// Keep JunOS term names unique within the target map.
	for _, existing := range rm.Clauses {
		if cl.Name != "" && existing.Name == cl.Name {
			cl.Name += "_r"
		}
	}
	e.Needs.define(cfg)
	rm.Clauses = append(rm.Clauses[:e.At:e.At],
		append([]*ir.RouteMapClause{cl}, rm.Clauses[e.At:]...)...)
	return nil
}

func (e InsertClause) Describe() string {
	return fmt.Sprintf("route-map %s: insert copy of %s at %d", e.Map, e.Origin, e.At)
}
func (e InsertClause) Size() int { return 1 }

// MoveClause reorders a clause: remove from index From, insert so it
// lands at index To of the resulting slice.
type MoveClause struct {
	Map      string
	From, To int
	Label    string
}

func (e MoveClause) Apply(cfg *ir.Config) error {
	rm, _, err := clauseAt(cfg, e.Map, e.From)
	if err != nil {
		return err
	}
	if e.To < 0 || e.To >= len(rm.Clauses) || e.To == e.From {
		return fmt.Errorf("route-map %s: move %d -> %d invalid", e.Map, e.From, e.To)
	}
	cl := rm.Clauses[e.From]
	rest := append(rm.Clauses[:e.From:e.From], rm.Clauses[e.From+1:]...)
	rm.Clauses = append(rest[:e.To:e.To],
		append([]*ir.RouteMapClause{cl}, rest[e.To:]...)...)
	return nil
}

func (e MoveClause) Describe() string {
	return fmt.Sprintf("route-map %s clause %s: move %d -> %d", e.Map, e.Label, e.From, e.To)
}
func (e MoveClause) Size() int { return 1 }

// ReplaceSets replaces a clause's set-actions.
type ReplaceSets struct {
	Map   string
	Idx   int
	Sets  []ir.SetAction
	Label string
}

func (e ReplaceSets) Apply(cfg *ir.Config) error {
	_, cl, err := clauseAt(cfg, e.Map, e.Idx)
	if err != nil {
		return err
	}
	cl.Sets = append([]ir.SetAction(nil), e.Sets...)
	return nil
}

func (e ReplaceSets) Describe() string {
	parts := make([]string, len(e.Sets))
	for i, s := range e.Sets {
		parts[i] = s.String()
	}
	body := strings.Join(parts, ", ")
	if body == "" {
		body = "(none)"
	}
	return fmt.Sprintf("route-map %s clause %s: set %s", e.Map, e.Label, body)
}
func (e ReplaceSets) Size() int { return 1 }

// ReplaceMatches replaces a clause's match conditions.
type ReplaceMatches struct {
	Map     string
	Idx     int
	Matches []ir.Match
	Needs   ListBundle
	Label   string
}

func (e ReplaceMatches) Apply(cfg *ir.Config) error {
	_, cl, err := clauseAt(cfg, e.Map, e.Idx)
	if err != nil {
		return err
	}
	e.Needs.define(cfg)
	cl.Matches = append([]ir.Match(nil), e.Matches...)
	return nil
}

func (e ReplaceMatches) Describe() string {
	parts := make([]string, len(e.Matches))
	for i, m := range e.Matches {
		parts[i] = m.String()
	}
	body := strings.Join(parts, ", ")
	if body == "" {
		body = "(always)"
	}
	return fmt.Sprintf("route-map %s clause %s: match %s", e.Map, e.Label, body)
}
func (e ReplaceMatches) Size() int { return 1 }

// ReplacePrefixList replaces a named prefix list's entries wholesale
// (defining the list when absent). Its size is the entry edit distance
// to the previous content, fixed at construction time.
type ReplacePrefixList struct {
	List    string
	Entries []ir.PrefixListEntry
	EditSz  int
}

func (e ReplacePrefixList) Apply(cfg *ir.Config) error {
	pl := cfg.PrefixLists[e.List]
	if pl == nil {
		pl = &ir.PrefixList{Name: e.List}
		cfg.PrefixLists[e.List] = pl
	}
	pl.Entries = append([]ir.PrefixListEntry(nil), e.Entries...)
	return nil
}

func (e ReplacePrefixList) Describe() string {
	parts := make([]string, len(e.Entries))
	for i, en := range e.Entries {
		parts[i] = fmt.Sprintf("%s %s", en.Action, en.Range)
	}
	return fmt.Sprintf("prefix-list %s := {%s}", e.List, strings.Join(parts, "; "))
}
func (e ReplacePrefixList) Size() int { return maxInt(1, e.EditSz) }

// ReplacePrefixEntry rewrites one entry of a prefix list in place.
type ReplacePrefixEntry struct {
	List  string
	Idx   int
	Entry ir.PrefixListEntry
}

func (e ReplacePrefixEntry) Apply(cfg *ir.Config) error {
	pl := cfg.PrefixLists[e.List]
	if pl == nil || e.Idx < 0 || e.Idx >= len(pl.Entries) {
		return fmt.Errorf("prefix-list %s has no entry %d", e.List, e.Idx)
	}
	en := e.Entry
	en.Span = pl.Entries[e.Idx].Span // text identity of the replaced line
	pl.Entries[e.Idx] = en
	return nil
}

func (e ReplacePrefixEntry) Describe() string {
	return fmt.Sprintf("prefix-list %s entry %d := %s %s", e.List, e.Idx, e.Entry.Action, e.Entry.Range)
}
func (e ReplacePrefixEntry) Size() int { return 1 }

// ReplaceCommunityList replaces a named community list's entries.
type ReplaceCommunityList struct {
	List    string
	Entries []ir.CommunityListEntry
	EditSz  int
}

func (e ReplaceCommunityList) Apply(cfg *ir.Config) error {
	cl := cfg.CommunityLists[e.List]
	if cl == nil {
		cl = &ir.CommunityList{Name: e.List}
		cfg.CommunityLists[e.List] = cl
	}
	cl.Entries = make([]ir.CommunityListEntry, len(e.Entries))
	for i, en := range e.Entries {
		en.Conjuncts = append([]ir.CommunityMatcher(nil), en.Conjuncts...)
		cl.Entries[i] = en
	}
	return nil
}

func (e ReplaceCommunityList) Describe() string {
	parts := make([]string, len(e.Entries))
	for i, en := range e.Entries {
		cj := make([]string, len(en.Conjuncts))
		for k, m := range en.Conjuncts {
			cj[k] = m.String()
		}
		parts[i] = fmt.Sprintf("%s %s", en.Action, strings.Join(cj, "&"))
	}
	return fmt.Sprintf("community-list %s := {%s}", e.List, strings.Join(parts, "; "))
}
func (e ReplaceCommunityList) Size() int { return maxInt(1, e.EditSz) }

// ReplaceASPathList replaces a named as-path list's entries.
type ReplaceASPathList struct {
	List    string
	Entries []ir.ASPathListEntry
	EditSz  int
}

func (e ReplaceASPathList) Apply(cfg *ir.Config) error {
	al := cfg.ASPathLists[e.List]
	if al == nil {
		al = &ir.ASPathList{Name: e.List}
		cfg.ASPathLists[e.List] = al
	}
	al.Entries = append([]ir.ASPathListEntry(nil), e.Entries...)
	return nil
}

func (e ReplaceASPathList) Describe() string {
	parts := make([]string, len(e.Entries))
	for i, en := range e.Entries {
		parts[i] = fmt.Sprintf("%s %s", en.Action, en.Regex)
	}
	return fmt.Sprintf("as-path-list %s := {%s}", e.List, strings.Join(parts, "; "))
}
func (e ReplaceASPathList) Size() int { return maxInt(1, e.EditSz) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// prefixEntryDistance is the symmetric-difference size between two entry
// lists, used as the Size of a whole-list replacement so copying a list
// that differs in one entry costs the same as editing that entry.
func prefixEntryDistance(a, b []ir.PrefixListEntry) int {
	key := func(e ir.PrefixListEntry) string {
		return fmt.Sprintf("%s|%s", e.Action, e.Range)
	}
	return setDistance(keysOf(len(a), func(i int) string { return key(a[i]) }),
		keysOf(len(b), func(i int) string { return key(b[i]) }))
}

func communityEntryDistance(a, b []ir.CommunityListEntry) int {
	key := func(e ir.CommunityListEntry) string {
		cj := make([]string, len(e.Conjuncts))
		for i, m := range e.Conjuncts {
			cj[i] = m.String()
		}
		sort.Strings(cj)
		return fmt.Sprintf("%s|%s", e.Action, strings.Join(cj, "&"))
	}
	return setDistance(keysOf(len(a), func(i int) string { return key(a[i]) }),
		keysOf(len(b), func(i int) string { return key(b[i]) }))
}

func asPathEntryDistance(a, b []ir.ASPathListEntry) int {
	key := func(e ir.ASPathListEntry) string {
		return fmt.Sprintf("%s|%s", e.Action, e.Regex)
	}
	return setDistance(keysOf(len(a), func(i int) string { return key(a[i]) }),
		keysOf(len(b), func(i int) string { return key(b[i]) }))
}

func keysOf(n int, at func(int) string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = at(i)
	}
	return out
}

// setDistance counts multiset symmetric difference.
func setDistance(a, b []string) int {
	count := map[string]int{}
	for _, k := range a {
		count[k]++
	}
	for _, k := range b {
		count[k]--
	}
	d := 0
	for _, c := range count {
		if c < 0 {
			c = -c
		}
		d += c
	}
	return d
}

// widenRange grows a prefix range's length window to cover another
// range's window (same prefix bits assumed checked by the caller).
func widenRange(e, r netaddr.PrefixRange) netaddr.PrefixRange {
	out := e
	if r.Lo < out.Lo {
		out.Lo = r.Lo
	}
	if r.Hi > out.Hi {
		out.Hi = r.Hi
	}
	return out
}
