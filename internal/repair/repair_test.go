package repair

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/campiontest"
	"repro/internal/ir"
	"repro/internal/obs"
)

func mustFigure1(t *testing.T) (*ir.Config, *ir.Config) {
	t.Helper()
	a, err := campiontest.ParseCisco(campiontest.Figure1Cisco)
	if err != nil {
		t.Fatalf("parse cisco: %v", err)
	}
	b, err := campiontest.ParseJuniper(campiontest.Figure1Juniper)
	if err != nil {
		t.Fatalf("parse juniper: %v", err)
	}
	return a, b
}

// TestRepairFigure1 is the package's core promise: the search finds a
// verified, renderable repair for the paper's Figure 1 translation bug
// within the default 2-edit budget, and the repaired config is
// equivalent to the Cisco original under both engines.
func TestRepairFigure1(t *testing.T) {
	a, b := mustFigure1(t)
	j := obs.NewJournal(nil)
	var evs []obs.Event
	j.Listen(func(e obs.Event) { evs = append(evs, e) })
	reg := obs.NewRegistry()
	res, err := Run(context.Background(), a, b, Options{
		Timeout: 2 * time.Minute, Journal: j, Metrics: reg,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Pairs) != 1 {
		t.Fatalf("got %d pairs, want 1: %+v", len(res.Pairs), res.Pairs)
	}
	pr := res.Pairs[0]
	if pr.Err != nil {
		t.Fatalf("pair degraded: %v", pr.Err)
	}
	if pr.InitialDiffs == 0 {
		t.Fatal("Figure 1 pair reported no initial diffs")
	}
	if pr.Repair == nil {
		t.Fatalf("no repair found (kind %s, alternatives %v)", pr.Kind(), pr.Alternatives)
	}
	if !pr.Repair.Verified {
		t.Fatal("accepted repair not oracle-verified")
	}
	if !pr.Repair.Renderable {
		t.Fatalf("minimal repair not renderable: %s", pr.Repair.Describe())
	}
	if len(pr.Repair.Edits) > 2 {
		t.Fatalf("repair uses %d edits, budget is 2: %s", len(pr.Repair.Edits), pr.Repair.Describe())
	}
	if !res.Repaired() {
		t.Fatalf("result not repaired: conflicts %v", res.Conflicts)
	}
	if res.PatchedB == nil {
		t.Fatal("PatchedB not set")
	}
	if err := VerifyEquivalent(a, res.PatchedB, Options{}); err != nil {
		t.Fatalf("patched IR not equivalent: %v", err)
	}

	// The known-minimal fix touches rule1's prefix matching and the COMM
	// conjunction; whatever exact form wins, it must mention both.
	desc := pr.Repair.Describe()
	if !strings.Contains(desc, "NETS") || !strings.Contains(desc, "COMM") {
		t.Errorf("repair %q does not touch both NETS and COMM", desc)
	}

	// Journal and metrics surfaced the outcome.
	if len(evs) != 1 || evs[0].Type != obs.EvRepair || evs[0].Kind != "repaired" {
		t.Errorf("journal events = %+v, want one repaired EvRepair", evs)
	}
	if got := reg.Counter("campion_repair_pairs_total", "", obs.L("outcome", "repaired")).Value(); got != 1 {
		t.Errorf("campion_repair_pairs_total{outcome=repaired} = %d, want 1", got)
	}
	if got := reg.Counter("campion_repair_candidates_total", "").Value(); got == 0 {
		t.Error("campion_repair_candidates_total = 0")
	}
}

// TestRepairFigure1Patch round-trips the repair through vendor text:
// render the patch, re-parse the patched JunOS, and verify equivalence
// of the re-parsed IR — proving the emitted text, not just the in-memory
// edit, fixes the difference.
func TestRepairFigure1Patch(t *testing.T) {
	a, b := mustFigure1(t)
	res, err := Run(context.Background(), a, b, Options{Timeout: 2 * time.Minute})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Repaired() {
		t.Fatalf("not repaired: %+v", res.Pairs)
	}
	p, err := res.Patch(campiontest.Figure1Juniper)
	if err != nil {
		t.Fatalf("Patch: %v", err)
	}
	if !strings.Contains(p.Text, "@@ juniper.cfg:") {
		t.Errorf("patch has no hunks:\n%s", p.Text)
	}
	if _, err := ReparseVerify(a, ir.VendorJuniper, "patched.cfg", p.Patched, Options{}); err != nil {
		t.Fatalf("patched text fails verification: %v\npatched:\n%s", err, p.Patched)
	}
}

// TestRepairClean checks an already-equivalent pair reports clean pairs
// and no patch.
func TestRepairClean(t *testing.T) {
	a, err := campiontest.ParseCisco(campiontest.Figure1Cisco)
	if err != nil {
		t.Fatal(err)
	}
	b, err := campiontest.ParseCisco(campiontest.Figure1Cisco)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), a, b, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, p := range res.Pairs {
		if p.Kind() != "clean" {
			t.Errorf("pair %s kind = %s, want clean", p.Pair, p.Kind())
		}
	}
	if !res.Repaired() {
		t.Error("clean pair should count as repaired")
	}
	if res.PatchedB != nil {
		t.Error("clean pair should not produce a patch")
	}
}
